package gia_test

// A "day in the life" integration test: one device, several stores, DAPP
// running, a mix of clean installs, hijack attempts, uninstalls and an
// escalation — with global consistency checks at the end. Exercises the
// whole stack through the public API plus a few structural invariants.

import (
	"fmt"
	"testing"
	"time"

	"github.com/ghost-installer/gia"
)

// TestConcurrentAITsAreIsolated interleaves three simultaneous
// transactions on one device — two different stores installing different
// apps while an attacker targets only one of them — and checks the attack
// neither leaks into nor is diluted by the concurrent traffic.
func TestConcurrentAITsAreIsolated(t *testing.T) {
	dev, err := gia.BootDevice(gia.DeviceProfile{Name: "s6", Vendor: "samsung", Seed: 9090})
	if err != nil {
		t.Fatal(err)
	}
	amazon, err := gia.DeployInstaller(dev, gia.AmazonProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	baidu, err := gia.DeployInstaller(dev, gia.BaiduProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := gia.BuildAPK(gia.Manifest{Package: "com.victim", VersionCode: 1, Label: "V"},
		map[string][]byte{"classes.dex": []byte("v")}, gia.NewKey("v-dev"))
	bystander := gia.BuildAPK(gia.Manifest{Package: "com.bystander", VersionCode: 1, Label: "B"},
		map[string][]byte{"classes.dex": []byte("b")}, gia.NewKey("b-dev"))
	amazon.Store.Publish(victim)
	baidu.Store.Publish(bystander)

	mal, err := gia.DeployMalware(dev, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	atk := gia.NewTOCTOU(mal, gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver), victim)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()

	// Both transactions start in the same instant and interleave on the
	// virtual clock.
	var resVictim, resBystander gia.InstallResult
	amazon.RequestInstall("com.victim", func(r gia.InstallResult) { resVictim = r })
	baidu.RequestInstall("com.bystander", func(r gia.InstallResult) { resBystander = r })
	dev.Sched.RunUntil(dev.Sched.Now() + 2*time.Minute)

	if !resVictim.Hijacked {
		t.Fatalf("targeted AIT not hijacked: %v", resVictim.Err)
	}
	if !resBystander.Clean() {
		t.Fatalf("concurrent bystander AIT affected: hijacked=%v err=%v",
			resBystander.Hijacked, resBystander.Err)
	}
	if len(atk.Replacements()) != 1 {
		t.Errorf("replacements = %d, want exactly the victim's file", len(atk.Replacements()))
	}
}

func TestDayInTheLife(t *testing.T) {
	dev, err := gia.BootDevice(gia.DeviceProfile{Name: "galaxy-s6-edge", Vendor: "samsung", Seed: 20170706})
	if err != nil {
		t.Fatal(err)
	}

	// Three stores pre-installed by the carrier.
	profiles := []gia.InstallerProfile{gia.AmazonProfile(), gia.XiaomiProfile(), gia.DTIgniteProfile()}
	stores := make([]*gia.InstallerApp, 0, len(profiles))
	dirs := make([]string, 0, len(profiles))
	for _, prof := range profiles {
		store, err := gia.DeployInstaller(dev, prof, nil)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, store)
		dirs = append(dirs, prof.StagingDir)
	}

	// The user installs DAPP from a store on day one.
	dapp, err := gia.DeployDAPP(dev, dirs)
	if err != nil {
		t.Fatal(err)
	}

	// Malware arrives disguised as a game.
	mal, err := gia.DeployMalware(dev, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}

	run := func(store *gia.InstallerApp, pkg string) gia.InstallResult {
		t.Helper()
		var res gia.InstallResult
		store.RequestInstall(pkg, func(r gia.InstallResult) { res = r })
		dev.Sched.RunUntil(dev.Sched.Now() + 2*time.Minute)
		return res
	}

	// Morning: a handful of clean installs across the stores.
	cleanPkgs := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		store := stores[i%len(stores)]
		pkg := fmt.Sprintf("com.daily.app%d", i)
		store.Store.Publish(gia.BuildAPK(gia.Manifest{
			Package: pkg, VersionCode: 1, Label: pkg,
		}, map[string][]byte{"classes.dex": []byte(pkg)}, gia.NewKey(pkg+"-dev")))
		if res := run(store, pkg); !res.Clean() {
			t.Fatalf("clean install %d failed: %v", i, res.Err)
		}
		cleanPkgs = append(cleanPkgs, pkg)
	}
	if alerts := dapp.Alerts(); len(alerts) != 0 {
		t.Fatalf("DAPP false positives during the clean morning: %v", alerts)
	}

	// Afternoon: the malware hijacks an Amazon install.
	target := gia.BuildAPK(gia.Manifest{
		Package: "com.victim.app", VersionCode: 1, Label: "Victim", Icon: "v",
	}, map[string][]byte{"classes.dex": []byte("genuine")}, gia.NewKey("victim-dev"))
	stores[0].Store.Publish(target)
	atk := gia.NewTOCTOU(mal, gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver), target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	hijack := run(stores[0], "com.victim.app")
	atk.Stop()
	if !hijack.Hijacked {
		t.Fatalf("afternoon hijack failed: %v", hijack.Err)
	}
	if !dapp.Thwarted("com.victim.app") {
		t.Fatal("DAPP missed the afternoon hijack")
	}

	// The user, warned by DAPP, uninstalls the bad app via Settings.
	if err := dev.PMS.Uninstall(1000 /* system */, "com.victim.app"); err != nil {
		t.Fatal(err)
	}
	dev.Run()

	// Evening: the same install with the FUSE patch enabled is clean.
	gia.EnableFUSEPatch(dev, true)
	atk2 := gia.NewTOCTOU(mal, gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver), target)
	if err := atk2.Launch(); err != nil {
		t.Fatal(err)
	}
	retry := run(stores[0], "com.victim.app")
	atk2.Stop()
	if !retry.Clean() {
		t.Fatalf("patched retry not clean: hijacked=%v err=%v", retry.Hijacked, retry.Err)
	}

	// Global consistency checks.
	seenUIDs := make(map[gia.UID]string)
	for _, p := range dev.PMS.Packages() {
		if p.Manifest.SharedUserID == "" {
			if prev, dup := seenUIDs[p.UID]; dup {
				t.Errorf("UID %d shared by %s and %s without sharedUserId", p.UID, prev, p.Name())
			}
			seenUIDs[p.UID] = p.Name()
		}
		if p.CodePath != "" && !dev.FS.Exists(p.CodePath) {
			t.Errorf("package %s code path %s missing", p.Name(), p.CodePath)
		}
		dataDir := "/data/data/" + p.Name()
		if !dev.FS.Exists(dataDir) {
			t.Errorf("package %s data dir missing", p.Name())
		}
	}
	for _, pkg := range cleanPkgs {
		if _, ok := dev.PMS.Installed(pkg); !ok {
			t.Errorf("morning install %s vanished", pkg)
		}
	}
	if _, ok := dev.PMS.Installed("com.victim.app"); !ok {
		t.Error("evening install missing")
	}
	if dev.FS.Exists("/data/data/com.fun.game") != true {
		t.Error("malware data dir missing")
	}
	if !dev.DM.Healthy() {
		t.Error("DM database corrupted by normal operation")
	}
}
