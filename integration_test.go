package gia_test

// A "day in the life" integration test: one device, several stores, DAPP
// running, a mix of clean installs, hijack attempts, uninstalls and an
// escalation — with global consistency checks at the end. Exercises the
// whole stack through the public API plus a few structural invariants.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ghost-installer/gia"
	"github.com/ghost-installer/gia/internal/vfs"
)

// TestConcurrentAITsAreIsolated interleaves three simultaneous
// transactions on one device — two different stores installing different
// apps while an attacker targets only one of them — and checks the attack
// neither leaks into nor is diluted by the concurrent traffic.
func TestConcurrentAITsAreIsolated(t *testing.T) {
	dev, err := gia.BootDevice(gia.DeviceProfile{Name: "s6", Vendor: "samsung", Seed: 9090})
	if err != nil {
		t.Fatal(err)
	}
	amazon, err := gia.DeployInstaller(dev, gia.AmazonProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	baidu, err := gia.DeployInstaller(dev, gia.BaiduProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := gia.BuildAPK(gia.Manifest{Package: "com.victim", VersionCode: 1, Label: "V"},
		map[string][]byte{"classes.dex": []byte("v")}, gia.NewKey("v-dev"))
	bystander := gia.BuildAPK(gia.Manifest{Package: "com.bystander", VersionCode: 1, Label: "B"},
		map[string][]byte{"classes.dex": []byte("b")}, gia.NewKey("b-dev"))
	amazon.Store.Publish(victim)
	baidu.Store.Publish(bystander)

	mal, err := gia.DeployMalware(dev, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	atk := gia.NewTOCTOU(mal, gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver), victim)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()

	// Both transactions start in the same instant and interleave on the
	// virtual clock.
	var resVictim, resBystander gia.InstallResult
	amazon.RequestInstall("com.victim", func(r gia.InstallResult) { resVictim = r })
	baidu.RequestInstall("com.bystander", func(r gia.InstallResult) { resBystander = r })
	dev.Sched.RunUntil(dev.Sched.Now() + 2*time.Minute)

	if !resVictim.Hijacked {
		t.Fatalf("targeted AIT not hijacked: %v", resVictim.Err)
	}
	if !resBystander.Clean() {
		t.Fatalf("concurrent bystander AIT affected: hijacked=%v err=%v",
			resBystander.Hijacked, resBystander.Err)
	}
	if len(atk.Replacements()) != 1 {
		t.Errorf("replacements = %d, want exactly the victim's file", len(atk.Replacements()))
	}
}

func TestDayInTheLife(t *testing.T) {
	dev, err := gia.BootDevice(gia.DeviceProfile{Name: "galaxy-s6-edge", Vendor: "samsung", Seed: 20170706})
	if err != nil {
		t.Fatal(err)
	}

	// Three stores pre-installed by the carrier.
	profiles := []gia.InstallerProfile{gia.AmazonProfile(), gia.XiaomiProfile(), gia.DTIgniteProfile()}
	stores := make([]*gia.InstallerApp, 0, len(profiles))
	dirs := make([]string, 0, len(profiles))
	for _, prof := range profiles {
		store, err := gia.DeployInstaller(dev, prof, nil)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, store)
		dirs = append(dirs, prof.StagingDir)
	}

	// The user installs DAPP from a store on day one.
	dapp, err := gia.DeployDAPP(dev, dirs)
	if err != nil {
		t.Fatal(err)
	}

	// Malware arrives disguised as a game.
	mal, err := gia.DeployMalware(dev, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}

	run := func(store *gia.InstallerApp, pkg string) gia.InstallResult {
		t.Helper()
		var res gia.InstallResult
		store.RequestInstall(pkg, func(r gia.InstallResult) { res = r })
		dev.Sched.RunUntil(dev.Sched.Now() + 2*time.Minute)
		return res
	}

	// Morning: a handful of clean installs across the stores.
	cleanPkgs := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		store := stores[i%len(stores)]
		pkg := fmt.Sprintf("com.daily.app%d", i)
		store.Store.Publish(gia.BuildAPK(gia.Manifest{
			Package: pkg, VersionCode: 1, Label: pkg,
		}, map[string][]byte{"classes.dex": []byte(pkg)}, gia.NewKey(pkg+"-dev")))
		if res := run(store, pkg); !res.Clean() {
			t.Fatalf("clean install %d failed: %v", i, res.Err)
		}
		cleanPkgs = append(cleanPkgs, pkg)
	}
	if alerts := dapp.Alerts(); len(alerts) != 0 {
		t.Fatalf("DAPP false positives during the clean morning: %v", alerts)
	}

	// Afternoon: the malware hijacks an Amazon install.
	target := gia.BuildAPK(gia.Manifest{
		Package: "com.victim.app", VersionCode: 1, Label: "Victim", Icon: "v",
	}, map[string][]byte{"classes.dex": []byte("genuine")}, gia.NewKey("victim-dev"))
	stores[0].Store.Publish(target)
	atk := gia.NewTOCTOU(mal, gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver), target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	hijack := run(stores[0], "com.victim.app")
	atk.Stop()
	if !hijack.Hijacked {
		t.Fatalf("afternoon hijack failed: %v", hijack.Err)
	}
	if !dapp.Thwarted("com.victim.app") {
		t.Fatal("DAPP missed the afternoon hijack")
	}

	// The user, warned by DAPP, uninstalls the bad app via Settings.
	if err := dev.PMS.Uninstall(1000 /* system */, "com.victim.app"); err != nil {
		t.Fatal(err)
	}
	dev.Run()

	// Evening: the same install with the FUSE patch enabled is clean.
	gia.EnableFUSEPatch(dev, true)
	atk2 := gia.NewTOCTOU(mal, gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver), target)
	if err := atk2.Launch(); err != nil {
		t.Fatal(err)
	}
	retry := run(stores[0], "com.victim.app")
	atk2.Stop()
	if !retry.Clean() {
		t.Fatalf("patched retry not clean: hijacked=%v err=%v", retry.Hijacked, retry.Err)
	}

	// Global consistency checks.
	seenUIDs := make(map[gia.UID]string)
	for _, p := range dev.PMS.Packages() {
		if p.Manifest.SharedUserID == "" {
			if prev, dup := seenUIDs[p.UID]; dup {
				t.Errorf("UID %d shared by %s and %s without sharedUserId", p.UID, prev, p.Name())
			}
			seenUIDs[p.UID] = p.Name()
		}
		if p.CodePath != "" && !dev.FS.Exists(p.CodePath) {
			t.Errorf("package %s code path %s missing", p.Name(), p.CodePath)
		}
		dataDir := "/data/data/" + p.Name()
		if !dev.FS.Exists(dataDir) {
			t.Errorf("package %s data dir missing", p.Name())
		}
	}
	for _, pkg := range cleanPkgs {
		if _, ok := dev.PMS.Installed(pkg); !ok {
			t.Errorf("morning install %s vanished", pkg)
		}
	}
	if _, ok := dev.PMS.Installed("com.victim.app"); !ok {
		t.Error("evening install missing")
	}
	if dev.FS.Exists("/data/data/com.fun.game") != true {
		t.Error("malware data dir missing")
	}
	if !dev.DM.Healthy() {
		t.Error("DM database corrupted by normal operation")
	}
}

// The full attack × defense matrix, promoted from examples/defense-matrix
// into a pinned regression: every GIA in the repository run under every
// defense configuration, with the exact outcome of each cell asserted. A
// defense gaining or losing coverage — or an attack regressing — flips a
// cell and fails the test. Must stay green under `go test -race -count=2`.

// matrixDefenses are the defense configurations, applied to a fresh device
// per cell.
var matrixDefenses = []string{"none", "dapp", "fuse-patch", "intent-firewall"}

// armDefense applies one named defense to dev and returns the DAPP handle
// when one was deployed (DAPP detects rather than blocks, so its verdict is
// read separately).
func armDefense(t *testing.T, dev *gia.Device, defense string, watchDirs []string) *gia.DAPP {
	t.Helper()
	switch defense {
	case "none":
		return nil
	case "dapp":
		d, err := gia.DeployDAPP(dev, watchDirs)
		if err != nil {
			t.Fatal(err)
		}
		return d
	case "fuse-patch":
		gia.EnableFUSEPatch(dev, true)
		return nil
	case "intent-firewall":
		gia.EnableIntentDetection(dev, true)
		gia.EnableIntentOrigin(dev, true)
		return nil
	default:
		t.Fatalf("unknown defense %q", defense)
		return nil
	}
}

// toctouCell runs one installation-hijack attempt under one defense and
// classifies the outcome: hijacked, detected (landed but DAPP alerted) or
// blocked (install clean, no replacement).
func toctouCell(t *testing.T, strategy gia.AttackStrategy, defense string, seed int64) string {
	t.Helper()
	prof := gia.AmazonProfile()
	scenario, err := gia.NewScenario(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	dapp := armDefense(t, scenario.Dev, defense, []string{prof.StagingDir})
	atk := gia.NewTOCTOU(scenario.Mal, gia.AttackConfigForStore(prof, strategy), scenario.Target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	res := scenario.RunAIT()
	atk.Stop()
	switch {
	case res.Hijacked && dapp != nil && dapp.Thwarted(scenario.Target.Manifest.Package):
		return "detected"
	case res.Hijacked:
		return "hijacked"
	case res.Clean() && len(atk.Replacements()) == 0:
		return "blocked"
	default:
		return fmt.Sprintf("anomalous (hijacked=%v err=%v)", res.Hijacked, res.Err)
	}
}

// dmSymlinkCell runs the Download Manager symlink TOCTOU (stealing a
// private file of another app) under one defense.
func dmSymlinkCell(t *testing.T, defense string, seed int64) string {
	t.Helper()
	dev, err := gia.BootDevice(gia.DeviceProfile{Name: "nexus5", Vendor: "lge", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := dev.PMS.InstallFromParsed(gia.BuildAPK(gia.Manifest{
		Package: "com.android.vending", VersionCode: 1, Label: "Play",
	}, nil, gia.NewKey("play")))
	if err != nil {
		t.Fatal(err)
	}
	dev.Run()
	secret := "/data/data/com.android.vending/files/url-tokens"
	if err := dev.FS.WriteFile(secret, []byte("tokens"), victim.UID, vfs.ModePrivate); err != nil {
		t.Fatal(err)
	}
	armDefense(t, dev, defense, []string{"/sdcard"})
	mal, err := gia.DeployMalware(dev, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	atk, err := gia.NewDMSymlink(mal)
	if err != nil {
		t.Fatal(err)
	}
	stolen := false
	atk.Steal(secret, 50, func(b []byte, err error) {
		stolen = err == nil && string(b) == "tokens"
	})
	dev.Sched.RunUntil(dev.Sched.Now() + 2*time.Minute)
	if stolen {
		return "stolen"
	}
	return "defended"
}

// redirectCell runs the Facebook→Play redirect-Intent attack under one
// defense: deceived (lookalike page shown, no alarm) or alerted (the
// firewall flagged the redirect).
func redirectCell(t *testing.T, defense string, seed int64) string {
	t.Helper()
	dev, err := gia.BootDevice(gia.DeviceProfile{Name: "nexus5", Vendor: "lge", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gia.DeployInstaller(dev, gia.GooglePlayProfile(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.PMS.InstallFromParsed(gia.BuildAPK(gia.Manifest{
		Package: "com.facebook.katana", VersionCode: 1, Label: "Facebook",
	}, nil, gia.NewKey("facebook"))); err != nil {
		t.Fatal(err)
	}
	dev.AMS.RegisterActivity("com.facebook.katana", "Feed", true, "",
		func(gia.Intent) string { return "facebook:feed" })
	dev.Run()
	armDefense(t, dev, defense, []string{"/sdcard"})
	mal, err := gia.DeployMalware(dev, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	red := gia.NewRedirect(mal, gia.RedirectConfig{
		VictimPkg:      "com.facebook.katana",
		StorePkg:       "com.android.vending",
		StoreActivity:  "AppDetails",
		LookalikeAppID: "com.faceb00k.orca",
	})
	if err := red.Launch(); err != nil {
		t.Fatal(err)
	}
	_ = dev.AMS.StartActivity("android", gia.Intent{TargetPkg: "com.facebook.katana", Component: "Feed"})
	dev.Sched.RunUntil(dev.Sched.Now() + 200*time.Millisecond)
	_ = dev.AMS.StartActivity("com.facebook.katana", gia.Intent{
		TargetPkg: "com.android.vending", Component: "AppDetails",
		Extras: map[string]string{"appId": "com.facebook.orca"},
	})
	dev.Sched.RunUntil(dev.Sched.Now() + time.Second)
	red.Stop()

	screen := dev.AMS.Screen()
	alerts := dev.AMS.Firewall().Alerts()
	switch {
	case len(alerts) > 0:
		return "alerted"
	case screen.Pkg == "com.android.vending" && strings.Contains(screen.Content, "com.faceb00k.orca"):
		return "deceived"
	default:
		return fmt.Sprintf("anomalous (screen=%s:%s alerts=%d)", screen.Pkg, screen.Content, len(alerts))
	}
}

// TestDefenseMatrix pins the outcome of every GIA against every defense.
// The matrix documents coverage, not universal success: DAPP and the FUSE
// patch address installation hijacking only, the IntentFirewall addresses
// the redirect Intent only, and nothing here stops the DM symlink attack
// (its fix is the DM recheck/fixed policy, covered by the DM study).
func TestDefenseMatrix(t *testing.T) {
	attacks := []struct {
		name string
		run  func(t *testing.T, defense string, seed int64) string
		want map[string]string
	}{
		{
			name: "toctou-file-observer",
			run: func(t *testing.T, d string, s int64) string {
				return toctouCell(t, gia.StrategyFileObserver, d, s)
			},
			want: map[string]string{
				"none": "hijacked", "dapp": "detected",
				"fuse-patch": "blocked", "intent-firewall": "hijacked",
			},
		},
		{
			name: "toctou-wait-and-see",
			run: func(t *testing.T, d string, s int64) string {
				return toctouCell(t, gia.StrategyWaitAndSee, d, s)
			},
			want: map[string]string{
				"none": "hijacked", "dapp": "detected",
				"fuse-patch": "blocked", "intent-firewall": "hijacked",
			},
		},
		{
			name: "dm-symlink",
			run:  dmSymlinkCell,
			want: map[string]string{
				"none": "stolen", "dapp": "stolen",
				"fuse-patch": "stolen", "intent-firewall": "stolen",
			},
		},
		{
			name: "redirect-intent",
			run:  redirectCell,
			want: map[string]string{
				"none": "deceived", "dapp": "deceived",
				"fuse-patch": "deceived", "intent-firewall": "alerted",
			},
		},
	}
	for row, atk := range attacks {
		atk := atk
		row := row
		t.Run(atk.name, func(t *testing.T) {
			for col, defense := range matrixDefenses {
				seed := int64(4000 + row*10 + col)
				got := atk.run(t, defense, seed)
				if want := atk.want[defense]; got != want {
					t.Errorf("%s vs %s: got %q, want %q", atk.name, defense, got, want)
				}
			}
		})
	}
}
