module github.com/ghost-installer/gia

go 1.22
