package gia_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/ghost-installer/gia"
)

var update = flag.Bool("update", false, "rewrite golden files instead of diffing")

// TestGoldenTOCTOUTimeline pins the FileObserver TOCTOU's full event
// timeline for a fixed seed: every filesystem event in the staging dir,
// every package change and the AIT outcome, in virtual-time order. Any
// change to scheduler ordering, installer timing or attacker reaction shows
// up as a diff against testdata/toctou_timeline.golden; regenerate
// deliberately with `go test -run TestGoldenTOCTOUTimeline -update`.
func TestGoldenTOCTOUTimeline(t *testing.T) {
	prof := gia.AmazonProfile()
	scenario, err := gia.NewScenario(prof, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec := gia.NewTimeline(scenario.Dev)
	defer rec.Close()
	if err := rec.WatchFS(scenario.Dev.FS, prof.StagingDir); err != nil {
		t.Fatal(err)
	}
	rec.WatchPackages(scenario.Dev.PMS)
	rec.WatchFirewall(scenario.Dev.AMS.Firewall())

	atk := gia.NewTOCTOU(scenario.Mal, gia.AttackConfigForStore(prof, gia.StrategyFileObserver), scenario.Target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	res := scenario.RunAIT()
	atk.Stop()
	if !res.Hijacked {
		t.Fatalf("fixed-seed TOCTOU did not hijack: %v", res.Err)
	}
	rec.RecordAIT(res)

	var buf bytes.Buffer
	if err := rec.Render(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "toctou_timeline.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("timeline drifted from %s (rerun with -update if deliberate):\n--- got ---\n%s\n--- want ---\n%s",
			golden, firstDiffWindow(got, want), firstDiffWindow(want, got))
	}
}

// firstDiffWindow returns a readable slice of a around its first divergence
// from b, so the failure message shows the drift, not two whole timelines.
func firstDiffWindow(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	start := i - 200
	if start < 0 {
		start = 0
	}
	end := i + 200
	if end > len(a) {
		end = len(a)
	}
	return a[start:end]
}
