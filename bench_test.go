package gia

// This file is the benchmark harness of deliverable (d): one benchmark per
// table and figure of the paper's evaluation. Run with
//
//	go test -bench=. -benchmem
//
// Tables VIII, IX and X are true micro-benchmarks of the defense code
// paths (the paper's performance experiments); the remaining benchmarks
// regenerate each table's underlying experiment end-to-end, so their ns/op
// measures the cost of reproducing the result, and their correctness is
// asserted inside the loop.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/analysis"
	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/corpus"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/experiment"
	"github.com/ghost-installer/gia/internal/fuse"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/measure"
	"github.com/ghost-installer/gia/internal/procfs"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

// benchCorpus is generated once at a scale that keeps corpus-driven
// benchmarks meaningful but fast.
var (
	benchCorpusOnce sync.Once
	benchCorpusVal  *corpus.Corpus
)

func benchCorpus() *corpus.Corpus {
	benchCorpusOnce.Do(func() {
		benchCorpusVal = corpus.Generate(corpus.Config{Seed: 2017, Scale: 0.2})
	})
	return benchCorpusVal
}

// --- Table I ---------------------------------------------------------------

func BenchmarkTableI_AttackSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiment.TableI(); len(tab.Rows) != 4 {
			b.Fatal("table I shape")
		}
	}
}

// --- Tables II–IV, VI: the measurement study --------------------------------

func BenchmarkTableII_PlayClassification(b *testing.B) {
	c := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls := measure.ClassifyAll(c.PlayApps)
		if cls.VulnerableFracKnown() < 0.8 {
			b.Fatalf("vulnerable frac = %f", cls.VulnerableFracKnown())
		}
	}
}

func BenchmarkTableIII_PreinstalledClassification(b *testing.B) {
	c := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls := measure.ClassifyAll(measure.UniquePreinstalled(c.Images))
		if cls.VulnerableFracKnown() < 0.9 {
			b.Fatalf("vulnerable frac = %f", cls.VulnerableFracKnown())
		}
	}
}

func BenchmarkTableIV_RedirectTargets(b *testing.B) {
	c := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets := measure.RedirectCensus(c.PlayApps)
		if buckets.Redirecting == 0 {
			b.Fatal("no redirecting apps")
		}
	}
}

func BenchmarkTableVI_InstallPackagesCensus(b *testing.B) {
	c := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := measure.InstallPackagesCensus(c.Images)
		if len(rows) != 3 {
			b.Fatal("census shape")
		}
	}
}

// --- Table V: verified vulnerable pre-installed installers ------------------

func BenchmarkTableV_VulnerableInstallers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.TableV(int64(i))
		if err != nil || len(tab.Rows) != 5 {
			b.Fatalf("table V: %v", err)
		}
	}
}

// --- Table VII: defense matrix ----------------------------------------------

func BenchmarkTableVII_DefenseMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.TableVII(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[4] != "yes" {
				b.Fatalf("defense %s ineffective", row[0])
			}
		}
	}
}

// --- Table VIII: FUSE DAC performance ---------------------------------------

func fuseBenchFS(patched bool) (*vfs.FS, vfs.UID) {
	fs := vfs.New(func() time.Duration { return 0 })
	daemon := fuse.New("/sdcard", func(vfs.UID, string) bool { return true })
	daemon.SetPatched(patched)
	_ = fs.MkdirAll("/sdcard/store", vfs.Root, vfs.ModeDir)
	_ = fs.Mount("/sdcard", daemon, 0)
	return fs, vfs.UID(10010)
}

func benchFuseWrite(b *testing.B, patched bool) {
	fs, owner := fuseBenchFS(patched)
	payload := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile("/sdcard/store/app.apk", payload, owner, vfs.ModeShared); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFuseRead(b *testing.B, patched bool) {
	fs, owner := fuseBenchFS(patched)
	payload := make([]byte, 1<<20)
	if err := fs.WriteFile("/sdcard/store/app.apk", payload, owner, vfs.ModeShared); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile("/sdcard/store/app.apk", owner); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVIII_FuseDACWriteOrg(b *testing.B) { benchFuseWrite(b, false) }
func BenchmarkTableVIII_FuseDACWriteMod(b *testing.B) { benchFuseWrite(b, true) }
func BenchmarkTableVIII_FuseDACReadOrg(b *testing.B)  { benchFuseRead(b, false) }
func BenchmarkTableVIII_FuseDACReadMod(b *testing.B)  { benchFuseRead(b, true) }

// --- Tables IX and X: IntentFirewall overhead --------------------------------

func benchIntentDelivery(b *testing.B, detection, origin bool) {
	sched := sim.New(1)
	procs := procfs.NewTable()
	ams := intents.New(sched, procs, intents.Options{
		DeliveryLatency: time.Microsecond,
		Perms:           func(vfs.UID, string) bool { return true },
		UIDOf:           func(string) (vfs.UID, bool) { return 10001, true },
	})
	ams.Firewall().EnableDetection(detection)
	ams.Firewall().EnableOrigin(origin)
	ams.Firewall().SetThreshold(time.Nanosecond)
	ams.RegisterActivity("com.recv", "A", true, "", func(intents.Intent) string { return "x" })
	senders := []string{"com.a", "com.b"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ams.StartActivity(senders[i%2], intents.Intent{TargetPkg: "com.recv", Component: "A"}); err != nil {
			b.Fatal(err)
		}
		sched.Run()
	}
}

func BenchmarkTableIX_IntentDeliveryBaseline(b *testing.B)  { benchIntentDelivery(b, false, false) }
func BenchmarkTableIX_IntentDeliveryDetection(b *testing.B) { benchIntentDelivery(b, true, false) }
func BenchmarkTableX_IntentDeliveryOrigin(b *testing.B)     { benchIntentDelivery(b, false, true) }

// --- Figure 1: AIT traces ----------------------------------------------------

func BenchmarkFigure1_AITTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Figure1(int64(i))
		if err != nil || len(tab.Rows) == 0 {
			b.Fatalf("figure 1: %v", err)
		}
	}
}

// --- Section III-B: hijack studies -------------------------------------------

func benchHijack(b *testing.B, prof installer.Profile, strategy attack.Strategy) {
	for i := 0; i < b.N; i++ {
		s, err := experiment.NewScenario(prof, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, strategy), s.Target)
		if err := atk.Launch(); err != nil {
			b.Fatal(err)
		}
		res := s.RunAIT()
		atk.Stop()
		if !res.Hijacked {
			b.Fatalf("hijack failed: %v", res.Err)
		}
	}
}

func BenchmarkHijack_Amazon_FileObserver(b *testing.B) {
	benchHijack(b, installer.Amazon(), attack.StrategyFileObserver)
}

func BenchmarkHijack_DTIgnite_WaitAndSee(b *testing.B) {
	benchHijack(b, installer.DTIgnite(), attack.StrategyWaitAndSee)
}

func BenchmarkHijack_Xiaomi_FileObserver(b *testing.B) {
	benchHijack(b, installer.Xiaomi(), attack.StrategyFileObserver)
}

// --- Chaos harness: Explorer throughput ---------------------------------------

// benchExplorerSweep measures schedule-exploration throughput: each
// benchmark iteration is one complete AIT hijack scenario checked under the
// chaos harness, swept across b.N seeds by a pool of the given size. Every
// worker draws its device from a private arena (boot once, reset per
// schedule). The schedules/s metric is the headline number for sizing
// seed × jitter grids.
func benchExplorerSweep(b *testing.B, workerCount int) {
	fn := experiment.HijackRunFunc(installer.Amazon(), attack.StrategyFileObserver)
	seeds := make([]int64, b.N)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	ex := &chaos.Explorer{Workers: workerCount, WorkerState: experiment.ArenaWorkerState(nil)}
	b.ResetTimer()
	res := ex.Sweep(seeds, nil, fn)
	b.StopTimer()
	if res.Violations != 0 {
		b.Fatalf("%d violations in a plain sweep (first: %v)", res.Violations, res.First.Err)
	}
	if res.Explored != b.N {
		b.Fatalf("explored %d schedules, want %d", res.Explored, b.N)
	}
	b.ReportMetric(float64(res.Explored)/b.Elapsed().Seconds(), "schedules/s")
}

func BenchmarkExplorerSweep_1Worker(b *testing.B) { benchExplorerSweep(b, 1) }
func BenchmarkExplorerSweep_NumCPU(b *testing.B)  { benchExplorerSweep(b, runtime.NumCPU()) }

// --- Experiment engine: worker-pool scaling ----------------------------------

// benchAllTables regenerates the full 22-table evaluation at reduced scale;
// the 1-worker vs NumCPU pair quantifies the engine's pool speed-up (the
// tables themselves are identical for any worker count).
func benchAllTables(b *testing.B, workerCount int) {
	for i := 0; i < b.N; i++ {
		tables, err := experiment.AllTables(experiment.Options{
			Seed: 2017, Scale: 0.05, PerfReps: 2, DAPPInstalls: 6, Workers: workerCount,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) != 22 {
			b.Fatalf("tables = %d, want 22", len(tables))
		}
	}
}

func BenchmarkAllTables_1Worker(b *testing.B) { benchAllTables(b, 1) }
func BenchmarkAllTables_NumCPU(b *testing.B)  { benchAllTables(b, runtime.NumCPU()) }

func benchFleetStudy(b *testing.B, workerCount int) {
	for i := 0; i < b.N; i++ {
		outcomes, err := experiment.FleetStudy(4, 2017, workerCount)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outcomes {
			if o.Rate() != 1.0 {
				b.Fatalf("%s fleet rate = %.2f, want 1.0", o.Store, o.Rate())
			}
		}
	}
}

func BenchmarkFleetStudy_1Worker(b *testing.B) { benchFleetStudy(b, 1) }
func BenchmarkFleetStudy_NumCPU(b *testing.B)  { benchFleetStudy(b, runtime.NumCPU()) }

// --- Section III-C: DM symlink attack ----------------------------------------

func benchDMSteal(b *testing.B, policy dm.SymlinkPolicy, wantWin bool) {
	for i := 0; i < b.N; i++ {
		dev, err := device.Boot(device.Profile{Name: "n5", Vendor: "lge", DMPolicy: policy, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		mal, err := attack.DeployMalware(dev, "com.fun.game")
		if err != nil {
			b.Fatal(err)
		}
		victim, err := dev.PMS.InstallFromParsed(BuildAPK(Manifest{
			Package: "com.android.vending", VersionCode: 1, Label: "Play",
		}, nil, sig.NewKey("play")))
		if err != nil {
			b.Fatal(err)
		}
		dev.Run()
		secret := "/data/data/com.android.vending/files/secret"
		if err := dev.FS.WriteFile(secret, []byte("tokens"), victim.UID, vfs.ModePrivate); err != nil {
			b.Fatal(err)
		}
		atk, err := attack.NewDMSymlink(mal)
		if err != nil {
			b.Fatal(err)
		}
		won := false
		atk.Steal(secret, 50, func(data []byte, err error) {
			won = err == nil && string(data) == "tokens"
		})
		dev.Sched.RunUntil(dev.Sched.Now() + 2*time.Minute)
		if won != wantWin {
			b.Fatalf("policy %v: won=%v want %v", policy, won, wantWin)
		}
	}
}

func BenchmarkDMSymlink_Legacy(b *testing.B)  { benchDMSteal(b, dm.PolicyLegacy, true) }
func BenchmarkDMSymlink_Recheck(b *testing.B) { benchDMSteal(b, dm.PolicyRecheck, true) }
func BenchmarkDMSymlink_Fixed(b *testing.B)   { benchDMSteal(b, dm.PolicyFixed, false) }

// --- Section III-D: redirect study --------------------------------------------

func BenchmarkRedirect_Study(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outcomes, err := experiment.RedirectStudy(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !outcomes[0].UserDeceived || outcomes[1].UserDeceived {
			b.Fatalf("redirect outcomes = %+v", outcomes)
		}
	}
}

// --- Section IV-A: static-analysis engine throughput ----------------------------

// benchArtifacts prebuilds a slice of corpus APK artifacts once so the scan
// benchmarks measure the analysis engine, not APK construction.
var (
	benchArtifactsOnce sync.Once
	benchArtifactsVal  []*apk.APK
)

func benchArtifacts() []*apk.APK {
	benchArtifactsOnce.Do(func() {
		apps := benchCorpus().PlayApps
		if len(apps) > 600 {
			apps = apps[:600]
		}
		benchArtifactsVal = make([]*apk.APK, len(apps))
		for i, app := range apps {
			benchArtifactsVal[i] = corpus.BuildAPKFor(app)
		}
	})
	return benchArtifactsVal
}

// benchCorpusScan drives the parallel corpus scanner over prebuilt
// artifacts with the given worker-pool size. Compare the serial and
// parallel variants to see the pool's speedup on a multi-core host.
func benchCorpusScan(b *testing.B, workers int) {
	artifacts := benchArtifacts()
	eng := analysis.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := eng.ScanCorpus(len(artifacts), workers, func(j int) *apk.APK {
			return artifacts[j]
		})
		if stats.Findings == 0 || stats.Stats.ParseErrors != 0 {
			b.Fatalf("scan stats = %+v", stats)
		}
	}
}

func BenchmarkCorpusScan_1Worker(b *testing.B) { benchCorpusScan(b, 1) }
func BenchmarkCorpusScan_NumCPU(b *testing.B)  { benchCorpusScan(b, runtime.NumCPU()) }

// --- Section IV-A: content-addressed analysis cache ------------------------------

// scanArtifactsWith runs one full corpus scan over the prebuilt artifacts
// through the given engine and sanity-checks the result.
func scanArtifactsWith(b *testing.B, eng *analysis.Engine, workers int) analysis.ScanStats {
	artifacts := benchArtifacts()
	_, stats := eng.ScanCorpus(len(artifacts), workers, func(j int) *apk.APK {
		return artifacts[j]
	})
	if stats.Findings == 0 || stats.Stats.ParseErrors != 0 {
		b.Fatalf("scan stats = %+v", stats)
	}
	return stats
}

// BenchmarkScanArtifactsNoCache is the uncached baseline: every smali file
// is lexed, parsed and analyzed from scratch on every scan.
func BenchmarkScanArtifactsNoCache(b *testing.B) {
	eng := analysis.NewEngine()
	benchArtifacts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanArtifactsWith(b, eng, runtime.NumCPU())
	}
}

// BenchmarkScanArtifactsCold measures the first scan through a fresh
// cache: every template pays canonicalization + hashing + one analysis,
// and template twins are served by singleflight dedup.
func BenchmarkScanArtifactsCold(b *testing.B) {
	benchArtifacts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := analysis.NewEngineWithOptions(analysis.EngineOptions{CacheCapacity: 4096})
		stats := scanArtifactsWith(b, eng, runtime.NumCPU())
		if stats.CacheMisses == 0 {
			b.Fatalf("cold scan had no misses: %+v", stats)
		}
	}
}

// BenchmarkScanArtifactsWarm measures steady state: the cache is primed,
// so each file costs canonicalization + hashing + finding rehydration.
func BenchmarkScanArtifactsWarm(b *testing.B) {
	eng := analysis.NewEngineWithOptions(analysis.EngineOptions{CacheCapacity: 4096})
	scanArtifactsWith(b, eng, runtime.NumCPU()) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := scanArtifactsWith(b, eng, runtime.NumCPU())
		if stats.CacheHits != stats.Stats.Files {
			b.Fatalf("warm scan not fully cached: %+v", stats)
		}
	}
}

// BenchmarkLexer measures the zero-copy smali front end alone (lexing +
// parsing to IR, no CFG/dataflow/rules).
func BenchmarkLexer(b *testing.B) {
	var src []byte
	for _, a := range benchArtifacts() {
		if s, ok := a.Files["smali/Installer.smali"]; ok {
			src = s
			break
		}
	}
	if len(src) == 0 {
		b.Fatal("no artifact carries smali/Installer.smali")
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.ParseBytes("bench.smali", src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section IV studies --------------------------------------------------------

func BenchmarkKeyStudy(b *testing.B) {
	c := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := measure.PlatformKeyStudy(c)
		if len(rows) != 3 {
			b.Fatal("key study shape")
		}
	}
}

func BenchmarkHareStudy(b *testing.B) {
	c := benchCorpus()
	var samsung []corpus.FactoryImage
	for _, img := range c.Images {
		if img.Vendor == "samsung" {
			samsung = append(samsung, img)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := measure.HareStudy(samsung, 10)
		if res.VulnerableCases == 0 {
			b.Fatal("no hare cases")
		}
	}
}

// --- Ablation sweeps (extensions; DESIGN.md X1–X3) ------------------------------

func BenchmarkAblation_ReactionLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiment.ReactionLatencySweep(installer.Amazon(),
			[]time.Duration{5 * time.Millisecond, 300 * time.Millisecond}, 3, int64(i), 1)
		if err != nil {
			b.Fatal(err)
		}
		if points[0].SuccessRate != 1 || points[1].SuccessRate != 0 {
			b.Fatalf("sweep shape = %+v", points)
		}
	}
}

func BenchmarkAblation_WaitDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiment.WaitDelaySweep(installer.DTIgnite(),
			[]time.Duration{2 * time.Second}, 2, int64(i), 1)
		if err != nil {
			b.Fatal(err)
		}
		if points[0].SuccessRate != 1 {
			b.Fatalf("sweep shape = %+v", points)
		}
	}
}

func BenchmarkAblation_DMGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiment.DMGapSweep([]time.Duration{2 * time.Millisecond}, 30, 1, int64(i), 1)
		if err != nil {
			b.Fatal(err)
		}
		if points[0].SuccessRate != 1 {
			b.Fatalf("sweep shape = %+v", points)
		}
	}
}

func BenchmarkSuggestionStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outcomes, err := experiment.SuggestionStudy(int64(i), 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outcomes {
			if o.HardenedHijacked {
				b.Fatalf("hardened profile fell: %+v", o)
			}
		}
	}
}

// --- Section VI-B: DAPP hot path -----------------------------------------------

func BenchmarkDAPP_SignatureGrab1MiB(b *testing.B) {
	res, err := experiment.DAPPSignaturePerf([]int{1 << 20}, 1)
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	fs := vfs.New(func() time.Duration { return 0 })
	_ = fs.MkdirAll("/sdcard/store", vfs.Root, vfs.ModeDir)
	a := BuildAPK(Manifest{Package: "com.p", VersionCode: 1, Label: "P"}, nil, NewKey("p"))
	a.Padding = 1 << 20
	if err := fs.WriteFile("/sdcard/store/a.apk", a.Encode(), vfs.UID(10010), vfs.ModeShared); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(a.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := fs.ReadFile("/sdcard/store/a.apk", vfs.UID(10020))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeAPK(data); err != nil {
			b.Fatal(err)
		}
	}
}
