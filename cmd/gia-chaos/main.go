// Command gia-chaos drives the schedule-exploration and fault-injection
// harness over the TOCTOU installation-hijack race.
//
// Usage:
//
//	gia-chaos -mode orders  [-store amazon] [-strategy wait-and-see] [-seed N]
//	          [-grid 10ms] [-payload-kb 900] [-max 2000] [-workers N]
//	    enumerate every same-instant event ordering (deadlines quantized
//	    onto -grid) and check the hijack invariant on each
//
//	gia-chaos -mode sweep [-schedules 1000] [-jitter 5ms] [-patched] ...
//	    sweep a seed × jitter grid of schedules
//
//	gia-chaos -mode fault [-store dtignite] [-fault truncate-download] ...
//	    inject a named fault and minimize the resulting violation to a
//	    replay token
//
//	gia-chaos -mode replay -token gia1:SEED:JITTER:CHOICES ...
//	    re-execute one schedule from its token (pass the same world flags
//	    that produced it)
//
//	gia-chaos -mode table [-seed N] [-workers N]
//	    run the full exploration study and print the summary table
//
// The mode (and, for replay, the token) may also be passed positionally:
//
//	gia-chaos -trace=out.json replay gia1:SEED:JITTER:CHOICES
//
// The invariant checked is "the hijack lands" — or, with -patched, "the
// hijack never lands through the FUSE patch".
//
// Observability: -trace=FILE exports a deterministic virtual-time trace of
// every explored run — one track per schedule token carrying the full
// device timeline (fs, packages, firewall, AIT steps) — as Chrome
// trace-event JSON (open in chrome://tracing or Perfetto), or JSONL when
// FILE ends in .jsonl. -metrics prints a counter snapshot (schedules
// explored, violations, scheduler and installer counters) to stderr. Both
// are byte-identical for any -workers value.
//
// Flight recorder: -dump-dir=DIR writes the last -flight-recorder-depth
// events of every violating run into DIR as Chrome-trace JSON + JSONL,
// named by the run's replay token (works with or without -trace;
// -flight-recorder-depth also bounds the -trace tracks to rings). Modes
// that find violations (orders, sweep, fault, replay) exit 1 — after
// flushing every telemetry output.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/ghost-installer/gia"
)

type options struct {
	store     string
	strategy  string
	seed      int64
	workers   int
	patched   bool
	payloadKB int
	grid      time.Duration
	max       int
	schedules int
	jitter    time.Duration
	faultName string
	token     string
	tracePath string
	metrics   bool
	dumpDir   string
	ringDepth int

	reg *gia.ObsRegistry
	tr  *gia.ObsTrace
}

// errViolation marks a run that found (or reproduced) a violation: exit
// status 1, but only after the trace and metrics outputs are flushed.
var errViolation = errors.New("invariant violated")

// violationErr maps an exploration result onto the exit contract replay
// mode already follows: violations exit 1 once telemetry is flushed.
func violationErr(res *gia.ChaosResult) error {
	if res.Violations > 0 {
		return errViolation
	}
	return nil
}

func main() {
	var o options
	mode := flag.String("mode", "table", "orders, sweep, fault, replay or table")
	flag.StringVar(&o.store, "store", "amazon", "store profile under attack")
	flag.StringVar(&o.strategy, "strategy", "file-observer", "attack strategy: file-observer or wait-and-see")
	flag.Int64Var(&o.seed, "seed", 1, "base scenario seed")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = NumCPU)")
	flag.BoolVar(&o.patched, "patched", false, "arm the FUSE patch and invert the invariant")
	flag.IntVar(&o.payloadKB, "payload-kb", 0, "target APK payload in KiB (0 = minimal)")
	flag.DurationVar(&o.grid, "grid", 10*time.Millisecond, "orders: quantization grid creating same-instant ties")
	flag.IntVar(&o.max, "max", 2000, "orders: cap on explored schedules")
	flag.IntVar(&o.schedules, "schedules", 1000, "sweep: number of grid cells (seeds x 4 jitters)")
	flag.DurationVar(&o.jitter, "jitter", 5*time.Millisecond, "sweep: largest event-jitter bound")
	flag.StringVar(&o.faultName, "fault", "truncate-download", "fault: truncate-download, fail-rename, drop-intent")
	flag.StringVar(&o.token, "token", "", "replay: schedule token to re-execute")
	flag.StringVar(&o.tracePath, "trace", "", "export a Chrome trace (or JSONL if the path ends in .jsonl) of every explored run")
	flag.BoolVar(&o.metrics, "metrics", false, "print a metrics snapshot to stderr")
	flag.StringVar(&o.dumpDir, "dump-dir", "", "dump each violating run's last events here as Chrome trace + JSONL, named by replay token")
	flag.IntVar(&o.ringDepth, "flight-recorder-depth", 0, "bound each run's trace track to a ring of this many events (0 = unbounded trace / default dump depth)")
	flag.Parse()
	if flag.NArg() > 0 {
		*mode = flag.Arg(0)
	}
	if flag.NArg() > 1 {
		o.token = flag.Arg(1)
	}
	if o.tracePath != "" || o.dumpDir != "" {
		// -dump-dir without -trace still needs run tracks to dump: keep an
		// internal flight recorder (ring mode, so memory stays bounded over
		// arbitrarily long sweeps) and simply never export it whole.
		o.tr = gia.NewObsTrace()
		// Virtual-time only: wall spans depend on worker scheduling and
		// would break byte-for-byte replay comparisons.
		o.tr.SetWallClock(nil)
		depth := o.ringDepth
		if depth <= 0 && o.tracePath == "" {
			depth = gia.ChaosDefaultDumpDepth
		}
		o.tr.SetRingDepth(depth)
	}
	if o.metrics {
		o.reg = gia.NewObsRegistry()
	}
	err := run(*mode, o)
	if werr := writeObservability(o); werr != nil {
		log.Fatal(werr)
	}
	if errors.Is(err, errViolation) {
		os.Exit(1)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// writeObservability flushes the trace file and the metrics snapshot; it
// runs even when the invariant verdict will exit nonzero.
func writeObservability(o options) error {
	if o.tr != nil && o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(o.tracePath, ".jsonl") {
			err = o.tr.WriteJSONL(f)
		} else {
			err = o.tr.WriteChrome(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", o.tracePath)
	}
	if o.reg != nil {
		if err := o.reg.Snapshot().WriteText(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}

// instrument attaches the session's registry, trace and flight-recorder
// dump sink to an explorer.
func (o options) instrument(ex *gia.ChaosExplorer) *gia.ChaosExplorer {
	ex.Metrics = o.reg
	ex.Trace = o.tr
	ex.DumpDir = o.dumpDir
	ex.DumpDepth = o.ringDepth
	return ex
}

func profileByName(name string) (gia.InstallerProfile, error) {
	switch strings.ToLower(name) {
	case "amazon":
		return gia.AmazonProfile(), nil
	case "xiaomi":
		return gia.XiaomiProfile(), nil
	case "baidu":
		return gia.BaiduProfile(), nil
	case "qihoo360":
		return gia.Qihoo360Profile(), nil
	case "dtignite":
		return gia.DTIgniteProfile(), nil
	case "slideme":
		return gia.SlideMeProfile(), nil
	case "tencent":
		return gia.TencentProfile(), nil
	default:
		return gia.InstallerProfile{}, fmt.Errorf("unknown store %q", name)
	}
}

// invariant builds the RunFunc checked on every explored schedule.
func invariant(o options) (func(r *gia.ChaosRun) error, error) {
	prof, err := profileByName(o.store)
	if err != nil {
		return nil, err
	}
	var strategy gia.AttackStrategy
	switch strings.ToLower(o.strategy) {
	case "file-observer":
		strategy = gia.StrategyFileObserver
	case "wait-and-see":
		strategy = gia.StrategyWaitAndSee
	default:
		return nil, fmt.Errorf("unknown strategy %q", o.strategy)
	}
	var payload []byte
	if o.payloadKB > 0 {
		payload = bytes.Repeat([]byte("x"), o.payloadKB<<10)
	}
	patched := o.patched
	return func(r *gia.ChaosRun) error {
		var (
			s   *gia.Scenario
			err error
		)
		if payload == nil {
			s, err = gia.NewScenario(prof, r.Seed())
		} else {
			s, err = gia.NewScenarioPayload(prof, r.Seed(), payload)
		}
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		if patched {
			gia.EnableFUSEPatch(s.Dev, true)
		}
		gia.InstrumentScenario(s, r)
		if o.reg != nil {
			// Shared atomic counters: totals are worker-count independent.
			gia.InstrumentDevice(s.Dev, o.reg, nil)
			s.Store.Instrument(o.reg, nil)
		}
		var rec *gia.Timeline
		if o.tr != nil {
			rec = gia.NewTimeline(s.Dev)
			if err := rec.WatchFS(s.Dev.FS, prof.StagingDir); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			rec.WatchPackages(s.Dev.PMS)
			rec.WatchFirewall(s.Dev.AMS.Firewall())
		}
		atk := gia.NewTOCTOU(s.Mal, gia.AttackConfigForStore(prof, strategy), s.Target)
		if err := atk.Launch(); err != nil {
			return fmt.Errorf("launch: %w", err)
		}
		res := s.RunAIT()
		atk.Stop()
		if rec != nil {
			// The run's trace lane is the merged device timeline — the same
			// event stream the golden TOCTOU timeline pins.
			rec.RecordAIT(res)
			rec.ExportSpans(r.Track())
			rec.Close()
		}
		if patched {
			if res.Hijacked {
				return fmt.Errorf("hijack landed through the FUSE patch")
			}
			return nil
		}
		if !res.Hijacked {
			return fmt.Errorf("hijack missed (attempts=%d, err=%v)", res.Attempts, res.Err)
		}
		return nil
	}, nil
}

func faultPlan(name string, seed int64) (*gia.FaultPlan, error) {
	switch strings.ToLower(name) {
	case "truncate-download":
		// Every transfer past its first chunk silently truncates: hash
		// verification starves and the AIT fails. Needs a DM-backed store
		// (-store dtignite) and a multi-chunk payload (-payload-kb 200).
		return gia.NewFaultPlan(seed, gia.FaultRule{
			Site: gia.FaultSiteDMChunk, Kind: gia.FaultTruncate, Skip: 1,
		}), nil
	case "fail-rename":
		return gia.NewFaultPlan(seed, gia.FaultRule{
			Site: gia.FaultSiteVFSRename, Kind: gia.FaultError, Count: 1,
		}), nil
	case "drop-intent":
		return gia.NewFaultPlan(seed, gia.FaultRule{
			Site: gia.FaultSiteIntentDeliver, Kind: gia.FaultDrop, Count: 1,
		}), nil
	default:
		return nil, fmt.Errorf("unknown fault %q (want truncate-download, fail-rename or drop-intent)", name)
	}
}

func report(kind string, res *gia.ChaosResult, ex *gia.ChaosExplorer, fn func(r *gia.ChaosRun) error) {
	capped := ""
	if res.Truncated {
		capped = " (capped)"
	}
	fmt.Printf("%s: %d schedules%s, %d violations, widest tie %d\n",
		kind, res.Explored, capped, res.Violations, res.MaxBranch)
	if res.First == nil {
		fmt.Println("invariant held on every explored schedule")
		return
	}
	min := ex.Minimize(res.First.Schedule, fn)
	fmt.Printf("first violation: %v\n", res.First.Err)
	fmt.Printf("minimized replay token: %s\n", min.Token())
	if _, err := ex.Replay(min.Token(), fn); err != nil {
		fmt.Printf("replay reproduces: %v\n", err)
	} else {
		fmt.Println("replay does NOT reproduce (schedule-external nondeterminism?)")
	}
}

func run(mode string, o options) error {
	switch strings.ToLower(mode) {
	case "table":
		tbl, err := gia.ChaosExplorationTable(o.seed, o.workers)
		if err != nil {
			return err
		}
		fmt.Print(tbl.Render())
		return nil
	case "orders":
		fn, err := invariant(o)
		if err != nil {
			return err
		}
		ex := o.instrument(&gia.ChaosExplorer{Workers: o.workers, MaxSchedules: o.max})
		if o.grid > 0 {
			ex.Plan = gia.NewFaultPlan(0, gia.FaultRule{
				Site: gia.FaultSiteSimEvent, Kind: gia.FaultDelay, SnapTo: o.grid,
			})
		}
		res := ex.ExploreOrders(gia.ChaosSchedule{Seed: o.seed}, fn)
		report("orderings", res, ex, fn)
		return violationErr(res)
	case "sweep":
		fn, err := invariant(o)
		if err != nil {
			return err
		}
		jitters := []time.Duration{0, o.jitter / 4, o.jitter / 2, o.jitter}
		nseeds := o.schedules / len(jitters)
		if nseeds < 1 {
			nseeds = 1
		}
		seeds := make([]int64, nseeds)
		for i := range seeds {
			seeds[i] = o.seed + int64(i)
		}
		ex := o.instrument(&gia.ChaosExplorer{Workers: o.workers})
		res := ex.Sweep(seeds, jitters, fn)
		report("sweep", res, ex, fn)
		return violationErr(res)
	case "fault":
		fn, err := invariant(o)
		if err != nil {
			return err
		}
		plan, err := faultPlan(o.faultName, o.seed)
		if err != nil {
			return err
		}
		ex := o.instrument(&gia.ChaosExplorer{Workers: o.workers, Plan: plan})
		res := ex.Sweep([]int64{o.seed}, nil, fn)
		report("fault "+o.faultName, res, ex, fn)
		return violationErr(res)
	case "replay":
		if o.token == "" {
			return fmt.Errorf("replay needs -token")
		}
		fn, err := invariant(o)
		if err != nil {
			return err
		}
		var plan *gia.FaultPlan
		if o.faultName != "" && o.faultName != "none" {
			if plan, err = faultPlan(o.faultName, o.seed); err != nil {
				return err
			}
		}
		ex := o.instrument(&gia.ChaosExplorer{Workers: 1, Plan: plan})
		sched, err := ex.Replay(o.token, fn)
		if err != nil {
			fmt.Printf("schedule %s violates: %v\n", sched.Token(), err)
			return errViolation
		}
		fmt.Printf("schedule %s: invariant holds\n", sched.Token())
		return nil
	default:
		return fmt.Errorf("unknown mode %q (want orders, sweep, fault, replay or table)", mode)
	}
}
