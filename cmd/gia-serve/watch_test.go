package main

import (
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/serve"
)

func TestWatchLine(t *testing.T) {
	rep := serve.SLOReport{
		Devices: 12,
		Tx:      3456,
		Errors:  7,
		ErrRate: 0.004,
		P50NS:   int64(1200 * time.Microsecond),
		P99NS:   int64(8400 * time.Microsecond),
		Shards: []serve.ShardSLOView{
			{Shard: 0, Tx: 2000, ErrRate: 0.001},
			{Shard: 1, Tx: 1456, ErrRate: 0.25},
		},
	}
	got := watchLine(rep)
	want := "devices=12 tx=3456 err=7 (0.4% rolling) p50=1.2ms p99=8.4ms shards=[0:2000/0.1% 1:1456/25.0%]"
	if got != want {
		t.Errorf("watchLine:\n got %q\nwant %q", got, want)
	}
}

func TestWatchLineEmptyFleet(t *testing.T) {
	got := watchLine(serve.SLOReport{})
	want := "devices=0 tx=0 err=0 (0.0% rolling) p50=0s p99=0s shards=[]"
	if got != want {
		t.Errorf("watchLine:\n got %q\nwant %q", got, want)
	}
}
