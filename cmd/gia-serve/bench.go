package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/ghost-installer/gia/internal/serve"
)

// benchFile mirrors BENCH_scan.json's envelope while keeping existing
// result entries opaque: gia-serve only replaces its own "serve/*" rows
// and never re-encodes entries written by gia-bench.
type benchFile struct {
	Seed    int64             `json:"seed"`
	Scale   int               `json:"scale"`
	GoArch  string            `json:"goarch"`
	GoOS    string            `json:"goos"`
	NumCPU  int               `json:"num_cpu"`
	Results []json.RawMessage `json:"results"`
}

// serveBenchRun is the serve entry's shape inside results[]. Field names
// follow the snake_case convention of gia-bench's rows; readers that
// decode with unknown-field tolerance (the committed-snapshot test does)
// are unaffected by the extra columns.
type serveBenchRun struct {
	Name             string  `json:"name"`
	Workers          int     `json:"workers"`
	Devices          int     `json:"devices"`
	Arrivals         int64   `json:"arrivals"`
	Installs         int64   `json:"installs"`
	Attacks          int64   `json:"attacks"`
	Churns           int64   `json:"churns"`
	RateOffered      float64 `json:"rate_offered"`
	CompletedPerSec  float64 `json:"completed_per_sec"`
	P50NS            int64   `json:"p50_ns"`
	P99NS            int64   `json:"p99_ns"`
	ArenaHits        int64   `json:"arena_hits"`
	ArenaMisses      int64   `json:"arena_misses"`
	ArenaResetFails  int64   `json:"arena_reset_failures"`
	ArenaWarmHitRate float64 `json:"arena_warm_hit_rate"`
	ArenaResetMeanNS int64   `json:"arena_reset_mean_ns"`
	ElapsedNS        int64   `json:"elapsed_ns"`
}

// recordBench rewrites path with the latest serve/loadtest entry, keeping
// every non-serve result byte-for-byte as gia-bench wrote it.
func recordBench(path string, shards int, r serve.LoadReport) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}

	kept := doc.Results[:0]
	for _, entry := range doc.Results {
		var probe struct {
			Name string `json:"name"`
		}
		if json.Unmarshal(entry, &probe) == nil && len(probe.Name) >= 6 && probe.Name[:6] == "serve/" {
			continue
		}
		kept = append(kept, entry)
	}
	doc.Results = kept

	run := serveBenchRun{
		Name:             "serve/loadtest",
		Workers:          shards,
		Devices:          r.Devices,
		Arrivals:         r.Arrivals,
		Installs:         r.Installs,
		Attacks:          r.Attacks,
		Churns:           r.Churns,
		RateOffered:      r.Rate,
		CompletedPerSec:  r.CompletedPerSec,
		P50NS:            r.P50NS,
		P99NS:            r.P99NS,
		ArenaHits:        r.ArenaHits,
		ArenaMisses:      r.ArenaMisses,
		ArenaResetFails:  r.ArenaResetFails,
		ArenaWarmHitRate: r.ArenaWarmHitRate,
		ArenaResetMeanNS: r.ArenaResetMeanNS,
		ElapsedNS:        int64(r.TotalWallSeconds * 1e9),
	}
	entry, err := json.Marshal(run)
	if err != nil {
		return err
	}
	doc.Results = append(doc.Results, entry)

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
