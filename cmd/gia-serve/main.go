// Command gia-serve runs the fleet-as-a-service daemon: a long-lived HTTP/
// JSON API managing thousands of concurrent simulated devices (create,
// install, attack, chaos replay, reclaim) backed by per-shard device
// arenas, plus a built-in open-loop load generator.
//
// Serve mode (default):
//
//	gia-serve -addr 127.0.0.1:8436 -shards 4 -idle-reclaim 5m
//
// Load-test mode — boots a fleet, offers an open-loop arrival stream and
// prints p50/p99 arrival-to-completion latency from the obs histogram:
//
//	gia-serve -loadtest -devices 1000 -rate 1500 -duration 10s
//
// Smoke mode — drives one device through the full HTTP lifecycle against
// an already-running daemon (used by verify.sh):
//
//	gia-serve -smoke http://127.0.0.1:8436
//
// Watch mode — polls a running daemon's /slo once per second and prints a
// one-line fleet summary (tx, rolling error rate, p50/p99, per-shard):
//
//	gia-serve -watch http://127.0.0.1:8436
//
// The fleet keeps an always-on flight recorder: one bounded ring of trace
// events per device, sized by -flight-recorder-depth. With -dump-dir set,
// chaos replay violations, serve transaction errors and failed arena
// resets each dump their ring tails retroactively as Chrome-trace JSON +
// JSONL. In loadtest mode, -trace and -metrics export the recorder and
// the metrics snapshot on exit — flushed on error exits too.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8436", "listen address (host:port; port 0 picks a free port)")
		shards      = flag.Int("shards", 4, "goroutine-owned device arena shards")
		seed        = flag.Int64("seed", 2017, "base seed for per-device RNG streams")
		idleReclaim = flag.Duration("idle-reclaim", 0, "reclaim devices idle this long to their shard pool (0 disables)")
		flightDepth = flag.Int("flight-recorder-depth", 0, "per-device flight-recorder ring depth in events (0 = default, negative disables)")
		dumpDir     = flag.String("dump-dir", "", "dump flight-recorder tails here on replay violations, tx errors and failed arena resets")

		loadtest    = flag.Bool("loadtest", false, "run the built-in open-loop load generator instead of serving")
		devices     = flag.Int("devices", 1000, "loadtest: concurrent fleet size")
		rate        = flag.Float64("rate", 1000, "loadtest: offered arrivals per second")
		duration    = flag.Duration("duration", 5*time.Second, "loadtest: arrival window")
		churnEvery  = flag.Int("churn", 4, "loadtest: every Nth arrival reclaims+recreates its device (0 disables)")
		attackEvery = flag.Int("attack-every", 0, "loadtest: every Nth arrival runs an attack (0 disables)")
		store       = flag.String("store", "amazon", "loadtest: store profile for fleet devices")
		benchJSON   = flag.String("benchjson", "", "loadtest: record the serve entry into this BENCH_scan.json")
		tracePath   = flag.String("trace", "", "loadtest: export the flight recorder on exit (Chrome JSON, or JSONL if the path ends in .jsonl)")
		metricsPath = flag.String("metrics", "", "loadtest: write the metrics snapshot to this file on exit (- for stderr)")

		smoke = flag.String("smoke", "", "run the HTTP smoke sequence against a daemon at this URL, then exit")
		watch = flag.String("watch", "", "poll /slo at this daemon URL once per second and print one-line summaries")
	)
	flag.Parse()

	if *smoke != "" {
		if err := runSmoke(*smoke); err != nil {
			fmt.Fprintf(os.Stderr, "gia-serve: smoke failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("gia-serve: smoke ok")
		return
	}
	if *watch != "" {
		if err := runWatch(*watch); err != nil {
			fmt.Fprintf(os.Stderr, "gia-serve: watch: %v\n", err)
			os.Exit(1)
		}
		return
	}

	reg := obs.NewRegistry()
	fleet := serve.NewFleet(serve.Config{
		Shards:      *shards,
		Seed:        *seed,
		IdleReclaim: *idleReclaim,
		FlightDepth: *flightDepth,
		DumpDir:     *dumpDir,
		Registry:    reg,
	})

	if *loadtest {
		report, err := serve.RunLoad(fleet, serve.LoadConfig{
			Devices:     *devices,
			Rate:        *rate,
			Duration:    *duration,
			ChurnEvery:  *churnEvery,
			AttackEvery: *attackEvery,
			Seed:        *seed,
			Store:       *store,
			Registry:    reg,
		})
		// Flush telemetry before inspecting the outcome: an errored or
		// violating run must not drop its trace and metrics.
		if werr := writeTelemetry(fleet, reg, *tracePath, *metricsPath); werr != nil {
			fmt.Fprintf(os.Stderr, "gia-serve: %v\n", werr)
			fleet.Close()
			os.Exit(1)
		}
		fleet.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gia-serve: loadtest: %v\n", err)
			os.Exit(1)
		}
		report.WriteReport(os.Stdout)
		if *benchJSON != "" {
			if err := recordBench(*benchJSON, *shards, report); err != nil {
				fmt.Fprintf(os.Stderr, "gia-serve: record bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("recorded serve entry in %s\n", *benchJSON)
		}
		if report.Errors > 0 {
			os.Exit(1)
		}
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gia-serve: listen: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: serve.NewHandler(fleet, reg)}
	// The listening line is the daemon's readiness signal; verify.sh and
	// scripts scrape the URL from it (port 0 resolves here).
	fmt.Printf("gia-serve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "gia-serve: serve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
	}
	stop()

	// Graceful shutdown: stop accepting, drain HTTP handlers, then drain
	// the fleet's in-flight transactions.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "gia-serve: shutdown: %v\n", err)
	}
	fleet.Close()
	fmt.Println("gia-serve: drained and stopped")
}
