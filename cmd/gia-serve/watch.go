package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ghost-installer/gia/internal/serve"
)

// runWatch polls a running daemon's GET /slo once per second and prints a
// one-line fleet summary per poll until interrupted. A failed poll ends
// the watch with its error so pointing at a dead daemon exits nonzero.
func runWatch(url string) error {
	url = strings.TrimRight(url, "/") + "/slo"
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{Timeout: 5 * time.Second}
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		rep, err := pollSLO(client, url)
		if err != nil {
			return err
		}
		fmt.Println(watchLine(rep))
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}

func pollSLO(client *http.Client, url string) (serve.SLOReport, error) {
	var rep serve.SLOReport
	resp, err := client.Get(url)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, fmt.Errorf("decode %s: %w", url, err)
	}
	return rep, nil
}

// watchLine renders one SLO report as the -watch summary line: fleet
// totals and latency quantiles, then the per-shard rolling error rates.
func watchLine(rep serve.SLOReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "devices=%d tx=%d err=%d (%.1f%% rolling) p50=%s p99=%s shards=[",
		rep.Devices, rep.Tx, rep.Errors, rep.ErrRate*100,
		time.Duration(rep.P50NS), time.Duration(rep.P99NS))
	for i, s := range rep.Shards {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d/%.1f%%", s.Shard, s.Tx, s.ErrRate*100)
	}
	b.WriteByte(']')
	return b.String()
}
