package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/serve"
)

// writeTelemetry flushes the loadtest's -trace and -metrics outputs. It is
// called before every exit path — RunLoad errors and the nonzero
// report.Errors exit included — so a failing run never drops its
// telemetry (that failing run is exactly the one worth inspecting).
func writeTelemetry(fleet *serve.Fleet, reg *obs.Registry, tracePath, metricsPath string) error {
	if tracePath != "" {
		tr := fleet.FlightTrace()
		if tr == nil {
			return fmt.Errorf("-trace needs the flight recorder (do not pass a negative -flight-recorder-depth)")
		}
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(tracePath, ".jsonl") {
			err = tr.WriteJSONL(f)
		} else {
			err = tr.WriteChrome(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", tracePath)
	}
	if metricsPath != "" {
		w, ownFile := os.Stderr, false
		if metricsPath != "-" {
			f, err := os.Create(metricsPath)
			if err != nil {
				return err
			}
			w, ownFile = f, true
		}
		err := reg.Snapshot().WriteText(w)
		if ownFile {
			if cerr := w.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	return nil
}
