package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/serve"
)

// runSmoke drives one device through the daemon's full HTTP lifecycle:
// create (with timeline) → status → install → attack → timeline → chaos
// replay → metrics scrape → reclaim. Any deviation from the expected
// simulation outcome (clean install, successful hijack on an unpatched
// store, counters present in /metrics) is a failure.
func runSmoke(base string) error {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	if body, err := get(client, base+"/healthz"); err != nil {
		return fmt.Errorf("healthz: %w", err)
	} else if !strings.Contains(string(body), "ok") {
		return fmt.Errorf("healthz returned %q", body)
	}

	var dev serve.DeviceInfo
	if err := postJSON(client, base+"/devices", serve.CreateDeviceRequest{Store: "amazon", Timeline: true}, &dev); err != nil {
		return fmt.Errorf("create device: %w", err)
	}
	if dev.ID == "" {
		return fmt.Errorf("create device: empty id in %+v", dev)
	}

	var status serve.DeviceInfo
	if err := getJSON(client, base+"/devices/"+dev.ID, &status); err != nil {
		return fmt.Errorf("device status: %w", err)
	}
	if status.ID != dev.ID || status.Store != "amazon" {
		return fmt.Errorf("device status mismatch: %+v", status)
	}

	var inst serve.InstallResult
	if err := postJSON(client, base+"/devices/"+dev.ID+"/install", nil, &inst); err != nil {
		return fmt.Errorf("install: %w", err)
	}
	if !inst.Installed || !inst.Clean {
		return fmt.Errorf("install not clean: %+v", inst)
	}

	var atk serve.AttackResult
	if err := postJSON(client, base+"/devices/"+dev.ID+"/attack", nil, &atk); err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	if !atk.Hijacked {
		return fmt.Errorf("attack on unpatched amazon device did not hijack: %+v", atk)
	}

	var tl struct {
		Entries []serve.TimelineEntry `json:"entries"`
	}
	if err := getJSON(client, base+"/devices/"+dev.ID+"/timeline", &tl); err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	if len(tl.Entries) == 0 {
		return fmt.Errorf("timeline empty after install+attack")
	}

	var rep serve.ReplayResult
	token := chaos.Schedule{Seed: 7}.Token()
	if err := postJSON(client, base+"/replay", serve.ReplayRequest{Token: token}, &rep); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if rep.Violated {
		return fmt.Errorf("fault-free replay reported violation: %+v", rep)
	}

	metrics, err := get(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{"serve.devices.created", "serve.installs.clean", "serve.attacks.hijacked", "arena.misses", "serve.http.requests"} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/devices/"+dev.ID, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("reclaim: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reclaim status %d", resp.StatusCode)
	}
	if err := getJSON(client, base+"/devices/"+dev.ID, &status); err == nil {
		return fmt.Errorf("device still served after reclaim")
	}
	return nil
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

func getJSON(client *http.Client, url string, out any) error {
	body, err := get(client, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

func postJSON(client *http.Client, url string, in, out any) error {
	var rd io.Reader
	if in != nil {
		payload, err := json.Marshal(in)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(payload)
	}
	resp, err := client.Post(url, "application/json", rd)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}
