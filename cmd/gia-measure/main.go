// Command gia-measure regenerates the Section IV measurement study from a
// seeded synthetic corpus.
//
// Usage:
//
//	gia-measure [-seed N] [-scale F]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/ghost-installer/gia"
)

func main() {
	seed := flag.Int64("seed", 2017, "corpus seed")
	scale := flag.Float64("scale", 1.0, "population scale (1.0 = paper-sized)")
	flag.Parse()
	if err := run(*seed, *scale); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, scale float64) error {
	c := gia.GenerateCorpus(gia.CorpusConfig{Seed: seed, Scale: scale})
	fmt.Printf("corpus: %d play apps, %d factory images, %d store apps\n\n",
		len(c.PlayApps), len(c.Images), len(c.StoreApps))
	for _, tab := range gia.MeasurementTables(c) {
		fmt.Println(tab.Render())
	}
	return nil
}
