// Command gia-attack runs one Ghost Installer Attack scenario against a
// chosen store profile and prints the full AIT + attacker trace.
//
// Usage:
//
//	gia-attack [-store amazon|amazon-v2|xiaomi|baidu|qihoo360|dtignite|slideme|tencent|huawei|sprintzone|play]
//	           [-strategy file-observer|wait-and-see] [-defense none|fuse|dapp] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/ghost-installer/gia"
)

func main() {
	store := flag.String("store", "amazon", "target store profile")
	strategy := flag.String("strategy", "file-observer", "attack strategy")
	defenseName := flag.String("defense", "none", "defense to arm: none, fuse or dapp")
	seed := flag.Int64("seed", 1, "scenario seed")
	showTimeline := flag.Bool("timeline", false, "print the merged device event timeline")
	flag.Parse()
	if err := run(*store, *strategy, *defenseName, *seed, *showTimeline); err != nil {
		log.Fatal(err)
	}
}

func profileByName(name string) (gia.InstallerProfile, bool) {
	switch strings.ToLower(name) {
	case "amazon":
		return gia.AmazonProfile(), true
	case "amazon-v2":
		return gia.AmazonV2Profile(), true
	case "xiaomi":
		return gia.XiaomiProfile(), true
	case "baidu":
		return gia.BaiduProfile(), true
	case "qihoo360":
		return gia.Qihoo360Profile(), true
	case "dtignite":
		return gia.DTIgniteProfile(), true
	case "slideme":
		return gia.SlideMeProfile(), true
	case "tencent":
		return gia.TencentProfile(), true
	case "huawei":
		return gia.HuaweiStoreProfile(), true
	case "sprintzone":
		return gia.SprintZoneProfile(), true
	case "play":
		return gia.GooglePlayProfile(), true
	default:
		return gia.InstallerProfile{}, false
	}
}

func run(storeName, strategyName, defenseName string, seed int64, showTimeline bool) error {
	prof, ok := profileByName(storeName)
	if !ok {
		return fmt.Errorf("unknown store %q", storeName)
	}
	var strat gia.AttackStrategy
	switch strategyName {
	case "file-observer":
		strat = gia.StrategyFileObserver
	case "wait-and-see":
		strat = gia.StrategyWaitAndSee
	default:
		return fmt.Errorf("unknown strategy %q", strategyName)
	}

	scenario, err := gia.NewScenario(prof, seed)
	if err != nil {
		return err
	}
	var rec *gia.Timeline
	if showTimeline {
		rec = gia.NewTimeline(scenario.Dev)
		defer rec.Close()
		if err := rec.WatchFS(scenario.Dev.FS, prof.StagingDir); err != nil {
			return err
		}
		rec.WatchPackages(scenario.Dev.PMS)
		rec.WatchFirewall(scenario.Dev.AMS.Firewall())
	}
	var dapp *gia.DAPP
	switch defenseName {
	case "none":
	case "fuse":
		gia.EnableFUSEPatch(scenario.Dev, true)
	case "dapp":
		dapp, err = gia.DeployDAPP(scenario.Dev, []string{prof.StagingDir})
		if err != nil {
			return err
		}
		if rec != nil {
			rec.WatchDAPP(dapp)
		}
	default:
		return fmt.Errorf("unknown defense %q", defenseName)
	}

	atk := gia.NewTOCTOU(scenario.Mal, gia.AttackConfigForStore(prof, strat), scenario.Target)
	if err := atk.Launch(); err != nil {
		return err
	}
	res := scenario.RunAIT()
	atk.Stop()

	fmt.Printf("store=%s strategy=%s defense=%s\n", prof.Package, strategyName, defenseName)
	fmt.Printf("result: hijacked=%v clean=%v attempts=%d err=%v\n", res.Hijacked, res.Clean(), res.Attempts, res.Err)
	if res.Installed != nil {
		fmt.Printf("installed: %s signed by %q\n", res.Installed.Name(), res.Installed.Cert.Subject)
	}
	fmt.Println("\nAIT trace:")
	for _, step := range res.Trace {
		fmt.Println("  ", step)
	}
	if n := len(atk.Replacements()); n > 0 {
		fmt.Printf("\nattacker replacements: %d\n", n)
		for _, r := range atk.Replacements() {
			fmt.Printf("  %s at t=%v\n", r.Path, r.At)
		}
	}
	if dapp != nil {
		fmt.Printf("\nDAPP alerts: %d\n", len(dapp.Alerts()))
		for _, a := range dapp.Alerts() {
			fmt.Printf("  %s %s: %s\n", a.Kind, a.Package, a.Detail)
		}
	}
	if rec != nil {
		rec.RecordAIT(res)
		fmt.Println("\nmerged device timeline:")
		if err := rec.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
