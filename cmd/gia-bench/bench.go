package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/ghost-installer/gia/internal/analysis"
	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/corpus"
	"github.com/ghost-installer/gia/internal/experiment"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/obs"
)

// benchRun is one measured scanner configuration in the -benchjson
// snapshot.
type benchRun struct {
	Name         string  `json:"name"`
	Workers      int     `json:"workers"`
	APKs         int     `json:"apks"`
	Instructions int     `json:"instructions"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	APKsPerSec   float64 `json:"apks_per_sec"`
	InstrPerSec  float64 `json:"instructions_per_sec"`
	Findings     int     `json:"findings"`
	MeanScore    float64 `json:"mean_score"`

	// Cache layers, present on the cached configurations.
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	SummaryHits    int64 `json:"summary_cache_hits,omitempty"`
	SummaryMisses  int64 `json:"summary_cache_misses,omitempty"`
	SummaryEntries int   `json:"summary_cache_entries,omitempty"`

	// Explorer configuration fields (the explore/sweep run). PORSkipped is
	// a pointer so the key renders (as an explicit 0) on explorer entries
	// and stays absent elsewhere: a plain FIFO sweep never prunes, and the
	// snapshot should say so rather than omit the column.
	Schedules       int     `json:"schedules,omitempty"`
	SchedulesPerSec float64 `json:"schedules_per_sec,omitempty"`
	PORSkipped      *int    `json:"por_skipped,omitempty"`

	// Device-arena fields (explore/sweep): pool effectiveness and in-place
	// reset latency. hits+misses = schedules; misses = one boot per worker.
	ArenaHits        int64   `json:"arena_hits,omitempty"`
	ArenaMisses      int64   `json:"arena_misses,omitempty"`
	ArenaResets      int64   `json:"arena_resets,omitempty"`
	ArenaResetMeanNs float64 `json:"arena_reset_mean_ns,omitempty"`
}

// benchDoc is the whole BENCH_scan.json document.
type benchDoc struct {
	Seed    int64      `json:"seed"`
	Scale   float64    `json:"scale"`
	GoArch  string     `json:"goarch"`
	GoOS    string     `json:"goos"`
	NumCPU  int        `json:"num_cpu"`
	Results []benchRun `json:"results"`
}

// runScanBench measures corpus-scan throughput through three engine
// configurations — uncached, cold cache and warm cache — and writes the
// JSON snapshot to path, preserving any result entries other tools own
// (gia-serve's serve/* rows). The corpus (all three populations) is
// generated once; every configuration scans the same APK stream. The
// returned document carries only this run's entries — what -compare diffs.
func runScanBench(path string, seed int64, scale float64, workers int) (benchDoc, error) {
	// The explorer sweep runs first, before the corpus exists: the scan
	// corpus stays live across all three scan configurations, and the GC
	// pressure it generates would tax the sweep's measurement.
	explore, err := runExplorerBench(2000, workers)
	if err != nil {
		return benchDoc{}, err
	}

	c := corpus.Generate(corpus.Config{Seed: seed, Scale: scale})
	var apps []corpus.AppMeta
	apps = append(apps, c.PlayApps...)
	seen := map[string]bool{}
	for _, img := range c.Images {
		for _, app := range img.Apps {
			if !seen[app.Package] {
				seen[app.Package] = true
				apps = append(apps, app)
			}
		}
	}
	apps = append(apps, c.StoreApps...)

	doc := benchDoc{
		Seed: seed, Scale: scale,
		GoArch: runtime.GOARCH, GoOS: runtime.GOOS, NumCPU: runtime.NumCPU(),
	}
	scan := func(eng *analysis.Engine) analysis.ScanStats {
		_, stats := eng.ScanCorpus(len(apps), workers, func(i int) *apk.APK {
			return corpus.BuildAPKFor(apps[i])
		})
		return stats
	}
	record := func(name string, eng *analysis.Engine, stats analysis.ScanStats) {
		run := benchRun{
			Name:         name,
			Workers:      stats.Workers,
			APKs:         stats.APKs,
			Instructions: stats.Stats.Instructions,
			ElapsedNs:    stats.Elapsed.Nanoseconds(),
			APKsPerSec:   stats.APKsPerSecond(),
			InstrPerSec:  stats.InstructionsPerSecond(),
			Findings:     stats.Findings,
			MeanScore:    stats.MeanScore(),
		}
		if cs, ok := eng.CacheStats(); ok {
			run.CacheHits, run.CacheMisses = cs.Hits, cs.Misses
		}
		if ss, ok := eng.SummaryCacheStats(); ok {
			run.SummaryHits, run.SummaryMisses = ss.Hits, ss.Misses
			run.SummaryEntries = ss.Entries
		}
		doc.Results = append(doc.Results, run)
	}

	uncached := analysis.NewEngine()
	record("scan/uncached", uncached, scan(uncached))

	cached := analysis.NewEngineWithOptions(analysis.EngineOptions{CacheCapacity: 4096})
	record("scan/cached-cold", cached, scan(cached))
	record("scan/cached-warm", cached, scan(cached))

	doc.Results = append(doc.Results, explore)

	foreign := foreignResults(path)
	f, err := os.Create(path)
	if err != nil {
		return benchDoc{}, err
	}
	return doc, writeBenchDoc(f, path, doc, foreign)
}

// runExplorerBench sweeps n complete AIT hijack scenarios (deploy store +
// malware, download, verify, hijack, install) through the chaos explorer
// and reports schedules/s — the headline number for sizing seed x jitter
// grids. Devices come from per-worker arenas, so device.Boot is paid once
// per worker and every other schedule resets a pooled device in place; the
// arena_* fields report the pool's hit/miss/reset counters and mean reset
// latency.
func runExplorerBench(n, workers int) (benchRun, error) {
	reg := obs.NewRegistry()
	fn := experiment.HijackRunFunc(installer.Amazon(), attack.StrategyFileObserver)
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	ex := &chaos.Explorer{Workers: workers, WorkerState: experiment.ArenaWorkerState(reg)}
	start := time.Now()
	res := ex.Sweep(seeds, nil, fn)
	elapsed := time.Since(start)
	if res.Violations != 0 {
		return benchRun{}, fmt.Errorf("explorer bench: %d violations in a plain sweep (first: %v)", res.Violations, res.First.Err)
	}
	run := benchRun{
		Name:            "explore/sweep",
		Workers:         workers,
		ElapsedNs:       elapsed.Nanoseconds(),
		Schedules:       res.Explored,
		SchedulesPerSec: float64(res.Explored) / elapsed.Seconds(),
		PORSkipped:      &res.PORSkipped,
	}
	snap := reg.Snapshot()
	run.ArenaHits = snap.Counter("arena.hits")
	run.ArenaMisses = snap.Counter("arena.misses")
	run.ArenaResets = snap.Counter("arena.resets")
	for _, h := range snap.Histograms {
		if h.Name == "arena.reset_ns" && h.Count > 0 {
			run.ArenaResetMeanNs = float64(h.Sum) / float64(h.Count)
		}
	}
	return run, nil
}

// foreignResults reads the snapshot already at path, if any, and keeps the
// result entries this run does not replace — rows owned by other tools
// (gia-serve's serve/* loadtest) survive a gia-bench refresh byte-for-byte.
func foreignResults(path string) []json.RawMessage {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var doc struct {
		Results []json.RawMessage `json:"results"`
	}
	if json.Unmarshal(raw, &doc) != nil {
		return nil
	}
	var kept []json.RawMessage
	for _, entry := range doc.Results {
		var probe struct {
			Name string `json:"name"`
		}
		if json.Unmarshal(entry, &probe) != nil {
			continue
		}
		if strings.HasPrefix(probe.Name, "scan/") || strings.HasPrefix(probe.Name, "explore/") {
			continue
		}
		kept = append(kept, entry)
	}
	return kept
}

func writeBenchDoc(f *os.File, path string, doc benchDoc, foreign []json.RawMessage) error {
	// Rendered through a raw-entry envelope so preserved foreign rows keep
	// whatever schema their owner wrote.
	envelope := struct {
		Seed    int64             `json:"seed"`
		Scale   float64           `json:"scale"`
		GoArch  string            `json:"goarch"`
		GoOS    string            `json:"goos"`
		NumCPU  int               `json:"num_cpu"`
		Results []json.RawMessage `json:"results"`
	}{Seed: doc.Seed, Scale: doc.Scale, GoArch: doc.GoArch, GoOS: doc.GoOS, NumCPU: doc.NumCPU}
	var err error
	for _, run := range doc.Results {
		var entry json.RawMessage
		if entry, err = json.Marshal(run); err != nil {
			break
		}
		envelope.Results = append(envelope.Results, entry)
	}
	envelope.Results = append(envelope.Results, foreign...)
	if err == nil {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(envelope)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write bench snapshot: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench snapshot written to %s\n", path)
	return nil
}

// benchTolerance is the relative throughput loss the -compare gate accepts
// before calling a run a regression: committed snapshots come from a
// particular host, so small deltas are noise, not signal.
const benchTolerance = 0.20

// compareBench diffs a fresh run against the committed snapshot at basePath
// on the two headline throughput metrics — explorer schedules/s and the
// warm-cache scan rate — and describes every one that fell more than the
// tolerance below its committed value.
func compareBench(fresh benchDoc, basePath string) ([]string, error) {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return nil, err
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("parse %s: %w", basePath, err)
	}
	find := func(doc benchDoc, name string) *benchRun {
		for i := range doc.Results {
			if doc.Results[i].Name == name {
				return &doc.Results[i]
			}
		}
		return nil
	}
	var regressions []string
	check := func(name, metric string, got, want float64) {
		if want <= 0 {
			return
		}
		if got < want*(1-benchTolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s %s = %.0f, committed %.0f (-%.1f%%, tolerance %.0f%%)",
				name, metric, got, want, (1-got/want)*100, benchTolerance*100))
		}
	}
	for _, name := range []string{"explore/sweep", "scan/cached-warm"} {
		f, b := find(fresh, name), find(base, name)
		if f == nil || b == nil {
			return nil, fmt.Errorf("entry %q missing from %s", name,
				map[bool]string{true: "the fresh run", false: basePath}[b != nil])
		}
		check(name, "schedules/s", f.SchedulesPerSec, b.SchedulesPerSec)
		check(name, "apks/s", f.APKsPerSec, b.APKsPerSec)
	}
	return regressions, nil
}
