package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/ghost-installer/gia/internal/analysis"
	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/corpus"
	"github.com/ghost-installer/gia/internal/experiment"
	"github.com/ghost-installer/gia/internal/installer"
)

// benchRun is one measured scanner configuration in the -benchjson
// snapshot.
type benchRun struct {
	Name         string  `json:"name"`
	Workers      int     `json:"workers"`
	APKs         int     `json:"apks"`
	Instructions int     `json:"instructions"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	APKsPerSec   float64 `json:"apks_per_sec"`
	InstrPerSec  float64 `json:"instructions_per_sec"`
	Findings     int     `json:"findings"`
	MeanScore    float64 `json:"mean_score"`

	// Cache layers, present on the cached configurations.
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	SummaryHits    int64 `json:"summary_cache_hits,omitempty"`
	SummaryMisses  int64 `json:"summary_cache_misses,omitempty"`
	SummaryEntries int   `json:"summary_cache_entries,omitempty"`

	// Explorer configuration fields (the explore/sweep run).
	Schedules       int     `json:"schedules,omitempty"`
	SchedulesPerSec float64 `json:"schedules_per_sec,omitempty"`
}

// benchDoc is the whole BENCH_scan.json document.
type benchDoc struct {
	Seed    int64      `json:"seed"`
	Scale   float64    `json:"scale"`
	GoArch  string     `json:"goarch"`
	GoOS    string     `json:"goos"`
	NumCPU  int        `json:"num_cpu"`
	Results []benchRun `json:"results"`
}

// runScanBench measures corpus-scan throughput through three engine
// configurations — uncached, cold cache and warm cache — and writes the
// JSON snapshot to path. The corpus (all three populations) is generated
// once; every configuration scans the same APK stream.
func runScanBench(path string, seed int64, scale float64, workers int) error {
	c := corpus.Generate(corpus.Config{Seed: seed, Scale: scale})
	var apps []corpus.AppMeta
	apps = append(apps, c.PlayApps...)
	seen := map[string]bool{}
	for _, img := range c.Images {
		for _, app := range img.Apps {
			if !seen[app.Package] {
				seen[app.Package] = true
				apps = append(apps, app)
			}
		}
	}
	apps = append(apps, c.StoreApps...)

	doc := benchDoc{
		Seed: seed, Scale: scale,
		GoArch: runtime.GOARCH, GoOS: runtime.GOOS, NumCPU: runtime.NumCPU(),
	}
	scan := func(eng *analysis.Engine) analysis.ScanStats {
		_, stats := eng.ScanCorpus(len(apps), workers, func(i int) *apk.APK {
			return corpus.BuildAPKFor(apps[i])
		})
		return stats
	}
	record := func(name string, eng *analysis.Engine, stats analysis.ScanStats) {
		run := benchRun{
			Name:         name,
			Workers:      stats.Workers,
			APKs:         stats.APKs,
			Instructions: stats.Stats.Instructions,
			ElapsedNs:    stats.Elapsed.Nanoseconds(),
			APKsPerSec:   stats.APKsPerSecond(),
			InstrPerSec:  stats.InstructionsPerSecond(),
			Findings:     stats.Findings,
			MeanScore:    stats.MeanScore(),
		}
		if cs, ok := eng.CacheStats(); ok {
			run.CacheHits, run.CacheMisses = cs.Hits, cs.Misses
		}
		if ss, ok := eng.SummaryCacheStats(); ok {
			run.SummaryHits, run.SummaryMisses = ss.Hits, ss.Misses
			run.SummaryEntries = ss.Entries
		}
		doc.Results = append(doc.Results, run)
	}

	uncached := analysis.NewEngine()
	record("scan/uncached", uncached, scan(uncached))

	cached := analysis.NewEngineWithOptions(analysis.EngineOptions{CacheCapacity: 4096})
	record("scan/cached-cold", cached, scan(cached))
	record("scan/cached-warm", cached, scan(cached))

	explore, err := runExplorerBench(200, workers)
	if err != nil {
		return err
	}
	doc.Results = append(doc.Results, explore)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return writeBenchDoc(f, path, doc)
}

// runExplorerBench sweeps n complete AIT hijack scenarios (boot device,
// deploy store + malware, download, verify, hijack, install) through the
// chaos explorer and reports schedules/s — the headline number for sizing
// seed x jitter grids.
func runExplorerBench(n, workers int) (benchRun, error) {
	prof := installer.Amazon()
	fn := func(r *chaos.Run) error {
		s, err := experiment.NewScenario(prof, r.Seed())
		if err != nil {
			return err
		}
		s.Instrument(r)
		atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), s.Target)
		if err := atk.Launch(); err != nil {
			return err
		}
		res := s.RunAIT()
		atk.Stop()
		if !res.Hijacked {
			return fmt.Errorf("hijack missed: %v", res.Err)
		}
		return nil
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	ex := &chaos.Explorer{Workers: workers}
	start := time.Now()
	res := ex.Sweep(seeds, nil, fn)
	elapsed := time.Since(start)
	if res.Violations != 0 {
		return benchRun{}, fmt.Errorf("explorer bench: %d violations in a plain sweep (first: %v)", res.Violations, res.First.Err)
	}
	return benchRun{
		Name:            "explore/sweep",
		Workers:         workers,
		ElapsedNs:       elapsed.Nanoseconds(),
		Schedules:       res.Explored,
		SchedulesPerSec: float64(res.Explored) / elapsed.Seconds(),
	}, nil
}

func writeBenchDoc(f *os.File, path string, doc benchDoc) error {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err := enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write bench snapshot: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench snapshot written to %s\n", path)
	return nil
}
