package main

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestBenchDocRoundTrip pins the -benchjson schema: a document carrying an
// arena-backed explore/sweep run must encode with the expected keys and
// decode back to the identical value.
func TestBenchDocRoundTrip(t *testing.T) {
	doc := benchDoc{
		Seed: 2017, Scale: 1, GoArch: "amd64", GoOS: "linux", NumCPU: 1,
		Results: []benchRun{
			{
				Name: "scan/uncached", Workers: 2, APKs: 10, Instructions: 100,
				ElapsedNs: 5e6, APKsPerSec: 2000, InstrPerSec: 20000,
				Findings: 3, MeanScore: 1.25,
			},
			{
				Name: "explore/sweep", Workers: 2, ElapsedNs: 1e9,
				Schedules: 2000, SchedulesPerSec: 15000,
				ArenaHits: 1998, ArenaMisses: 2, ArenaResets: 1998,
				ArenaResetMeanNs: 40000,
			},
		},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatalf("encode: %v", err)
	}
	for _, key := range []string{
		`"seed"`, `"num_cpu"`, `"schedules"`, `"schedules_per_sec"`,
		`"arena_hits"`, `"arena_misses"`, `"arena_resets"`, `"arena_reset_mean_ns"`,
	} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("encoded snapshot is missing key %s", key)
		}
	}
	var back benchDoc
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(doc, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, doc)
	}
}

// TestCommittedBenchSnapshotParses guards the snapshot checked in at the
// repo root: it must stay decodable against the current schema and carry an
// arena-backed explorer run.
func TestCommittedBenchSnapshotParses(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_scan.json")
	if err != nil {
		t.Fatalf("read committed snapshot: %v", err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("decode committed snapshot: %v", err)
	}
	var explore *benchRun
	for i := range doc.Results {
		if doc.Results[i].Name == "explore/sweep" {
			explore = &doc.Results[i]
		}
	}
	if explore == nil {
		t.Fatal("committed snapshot has no explore/sweep run")
	}
	if explore.SchedulesPerSec <= 0 || explore.Schedules <= 0 {
		t.Errorf("explore/sweep throughput not recorded: %+v", *explore)
	}
	if explore.ArenaHits+explore.ArenaMisses != int64(explore.Schedules) {
		t.Errorf("arena acquisitions (%d hits + %d misses) != %d schedules",
			explore.ArenaHits, explore.ArenaMisses, explore.Schedules)
	}
	if explore.ArenaResetMeanNs <= 0 {
		t.Errorf("arena reset latency not recorded: %+v", *explore)
	}
}
