package main

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestBenchDocRoundTrip pins the -benchjson schema: a document carrying an
// arena-backed explore/sweep run must encode with the expected keys and
// decode back to the identical value.
func TestBenchDocRoundTrip(t *testing.T) {
	doc := benchDoc{
		Seed: 2017, Scale: 1, GoArch: "amd64", GoOS: "linux", NumCPU: 1,
		Results: []benchRun{
			{
				Name: "scan/uncached", Workers: 2, APKs: 10, Instructions: 100,
				ElapsedNs: 5e6, APKsPerSec: 2000, InstrPerSec: 20000,
				Findings: 3, MeanScore: 1.25,
			},
			{
				Name: "explore/sweep", Workers: 2, ElapsedNs: 1e9,
				Schedules: 2000, SchedulesPerSec: 15000,
				PORSkipped: new(int),
				ArenaHits:  1998, ArenaMisses: 2, ArenaResets: 1998,
				ArenaResetMeanNs: 40000,
			},
		},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatalf("encode: %v", err)
	}
	for _, key := range []string{
		`"seed"`, `"num_cpu"`, `"schedules"`, `"schedules_per_sec"`, `"por_skipped"`,
		`"arena_hits"`, `"arena_misses"`, `"arena_resets"`, `"arena_reset_mean_ns"`,
	} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("encoded snapshot is missing key %s", key)
		}
	}
	var back benchDoc
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(doc, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, doc)
	}
}

// TestCommittedBenchSnapshotParses guards the snapshot checked in at the
// repo root: it must stay decodable against the current schema and carry an
// arena-backed explorer run.
func TestCommittedBenchSnapshotParses(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_scan.json")
	if err != nil {
		t.Fatalf("read committed snapshot: %v", err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("decode committed snapshot: %v", err)
	}
	var explore *benchRun
	for i := range doc.Results {
		if doc.Results[i].Name == "explore/sweep" {
			explore = &doc.Results[i]
		}
	}
	if explore == nil {
		t.Fatal("committed snapshot has no explore/sweep run")
	}
	if explore.SchedulesPerSec <= 0 || explore.Schedules <= 0 {
		t.Errorf("explore/sweep throughput not recorded: %+v", *explore)
	}
	if explore.ArenaHits+explore.ArenaMisses != int64(explore.Schedules) {
		t.Errorf("arena acquisitions (%d hits + %d misses) != %d schedules",
			explore.ArenaHits, explore.ArenaMisses, explore.Schedules)
	}
	if explore.ArenaResetMeanNs <= 0 {
		t.Errorf("arena reset latency not recorded: %+v", *explore)
	}
	if explore.PORSkipped == nil {
		t.Errorf("explore/sweep entry carries no por_skipped field: %+v", *explore)
	}
}

// TestCompareBench pins the -compare gate's arithmetic: a >20% drop in
// either headline metric is a regression, anything inside the tolerance is
// not, and a snapshot missing a headline entry is an error, not a pass.
func TestCompareBench(t *testing.T) {
	mkdoc := func(schedPerSec, warmAPKsPerSec float64) benchDoc {
		return benchDoc{Results: []benchRun{
			{Name: "scan/cached-warm", APKsPerSec: warmAPKsPerSec},
			{Name: "explore/sweep", SchedulesPerSec: schedPerSec},
		}}
	}
	base := mkdoc(30000, 40000)
	basePath := t.TempDir() + "/base.json"
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		fresh benchDoc
		want  int
	}{
		{"identical", mkdoc(30000, 40000), 0},
		{"faster", mkdoc(60000, 80000), 0},
		{"within-tolerance", mkdoc(30000*0.81, 40000*0.81), 0},
		{"explorer-regressed", mkdoc(30000*0.79, 40000), 1},
		{"warm-scan-regressed", mkdoc(30000, 40000*0.5), 1},
		{"both-regressed", mkdoc(100, 100), 2},
	}
	for _, tc := range cases {
		regs, err := compareBench(tc.fresh, basePath)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(regs) != tc.want {
			t.Errorf("%s: %d regressions (%v), want %d", tc.name, len(regs), regs, tc.want)
		}
	}

	if _, err := compareBench(benchDoc{}, basePath); err == nil {
		t.Error("fresh run missing the headline entries compared clean")
	}
	if _, err := compareBench(base, basePath+".nope"); err == nil {
		t.Error("missing base snapshot compared clean")
	}
}

// TestForeignResultsPreserved pins the refresh contract with gia-serve: a
// rewrite through writeBenchDoc keeps rows it does not own (serve/*)
// byte-for-byte while replacing the scan and explorer entries.
func TestForeignResultsPreserved(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	serveRow := `{"name":"serve/loadtest","devices":42,"completed_per_sec":1500}`
	seedDoc := `{"seed":1,"results":[` +
		`{"name":"scan/cached-warm","apks_per_sec":1},` +
		serveRow + `,` +
		`{"name":"explore/sweep","schedules_per_sec":2}]}`
	if err := os.WriteFile(path, []byte(seedDoc), 0o644); err != nil {
		t.Fatal(err)
	}

	foreign := foreignResults(path)
	if len(foreign) != 1 || string(foreign[0]) != serveRow {
		t.Fatalf("foreignResults kept %d entries (%s), want the serve row alone",
			len(foreign), foreign)
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh := benchDoc{Seed: 2, Results: []benchRun{{Name: "explore/sweep", SchedulesPerSec: 3}}}
	if err := writeBenchDoc(f, path, fresh, foreign); err != nil {
		t.Fatal(err)
	}
	rewritten, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(rewritten, []byte(`"completed_per_sec": 1500`)) &&
		!bytes.Contains(rewritten, []byte(`"completed_per_sec":1500`)) {
		t.Errorf("serve row lost on rewrite:\n%s", rewritten)
	}
	if bytes.Contains(rewritten, []byte(`"apks_per_sec": 1`)) {
		t.Errorf("stale scan row survived the rewrite:\n%s", rewritten)
	}
}
