// Command gia-bench runs the full experiment harness and prints every table
// and figure of the paper's evaluation.
//
// Usage:
//
//	gia-bench [-seed N] [-scale F] [-reps N] [-workers N] [-cache on|off]
//	          [-trace FILE] [-metrics] [-cpuprofile FILE] [-memprofile FILE]
//
// Observability: -trace=FILE exports wall-clock spans of the shared worker
// pool (one track per worker, one span per job) as Chrome trace-event JSON,
// or JSONL when FILE ends in .jsonl. -metrics prints a counter snapshot
// (worker-pool throughput, analysis-cache hit rates) to stderr.
// -cpuprofile/-memprofile write pprof profiles; CPU samples carry a
// "par.worker" label so profiles split by pool worker.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/ghost-installer/gia"
)

func main() {
	seed := flag.Int64("seed", 2017, "experiment seed")
	scale := flag.Float64("scale", 1.0, "measurement corpus scale (1.0 = paper-sized)")
	reps := flag.Int("reps", 100, "repetitions for the performance tables")
	workers := flag.Int("workers", runtime.NumCPU(), "experiment worker pool size (tables are identical for any value)")
	cache := flag.String("cache", "on", "content-addressed analysis cache for the artifact-scanning tables: on|off (tables are identical either way)")
	asJSON := flag.Bool("json", false, "emit tables as a JSON array")
	reportPath := flag.String("report", "", "also write a markdown reproduction report to this path")
	tracePath := flag.String("trace", "", "export a Chrome trace (or JSONL if the path ends in .jsonl) of the worker pool")
	metrics := flag.Bool("metrics", false, "print a metrics snapshot to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path")
	benchjson := flag.String("benchjson", "", "measure corpus-scan throughput (uncached / cold cache / warm cache) and write the JSON snapshot to this path, skipping the tables")
	comparePath := flag.String("compare", "", "with -benchjson: diff the fresh run against this committed snapshot and report >20% regressions in explorer schedules/s or warm-scan throughput")
	strict := flag.Bool("strict", false, "with -compare: exit non-zero when a regression exceeds the tolerance (CI mode; the default only warns)")
	flag.Parse()

	if *cache != "on" && *cache != "off" {
		log.Fatalf("-cache=%q: want on or off", *cache)
	}
	if *benchjson != "" {
		doc, err := runScanBench(*benchjson, *seed, *scale, *workers)
		if err != nil {
			log.Fatal(err)
		}
		if *comparePath != "" {
			regressions, err := compareBench(doc, *comparePath)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "bench-compare: REGRESSION: "+r)
			}
			if len(regressions) == 0 {
				fmt.Fprintf(os.Stderr, "bench-compare: within tolerance of %s\n", *comparePath)
			} else if *strict {
				os.Exit(1)
			}
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	var reg *gia.ObsRegistry
	if *metrics {
		reg = gia.NewObsRegistry()
		gia.ObserveAnalysisCache(reg)
	}
	var tr *gia.ObsTrace
	if *tracePath != "" {
		tr = gia.NewObsTrace()
	}
	if reg != nil || tr != nil || *cpuprofile != "" {
		gia.InstrumentWorkerPool(reg, tr, *cpuprofile != "")
		defer gia.InstrumentWorkerPool(nil, nil, false)
	}

	opts := gia.ExperimentOptions{Seed: *seed, Scale: *scale, PerfReps: *reps, Workers: *workers,
		NoAnalysisCache: *cache == "off"}
	tables, err := gia.AllTables(opts)
	if err != nil {
		log.Fatal(err)
	}

	if *tracePath != "" {
		if err := writeTrace(tr, *tracePath); err != nil {
			log.Fatal(err)
		}
	}
	if reg != nil {
		if err := reg.Snapshot().WriteText(os.Stderr); err != nil {
			log.Fatal(err)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := gia.WriteReport(f, opts, tables); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *reportPath)
	}
	if *asJSON {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	for _, tab := range tables {
		fmt.Println(tab.Render())
	}
}

func writeTrace(tr *gia.ObsTrace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	fmt.Fprintf(os.Stderr, "trace written to %s\n", path)
	return nil
}
