// Command gia-bench runs the full experiment harness and prints every table
// and figure of the paper's evaluation.
//
// Usage:
//
//	gia-bench [-seed N] [-scale F] [-reps N] [-workers N] [-cache on|off]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"github.com/ghost-installer/gia"
)

func main() {
	seed := flag.Int64("seed", 2017, "experiment seed")
	scale := flag.Float64("scale", 1.0, "measurement corpus scale (1.0 = paper-sized)")
	reps := flag.Int("reps", 100, "repetitions for the performance tables")
	workers := flag.Int("workers", runtime.NumCPU(), "experiment worker pool size (tables are identical for any value)")
	cache := flag.String("cache", "on", "content-addressed analysis cache for the artifact-scanning tables: on|off (tables are identical either way)")
	asJSON := flag.Bool("json", false, "emit tables as a JSON array")
	reportPath := flag.String("report", "", "also write a markdown reproduction report to this path")
	flag.Parse()

	if *cache != "on" && *cache != "off" {
		log.Fatalf("-cache=%q: want on or off", *cache)
	}
	opts := gia.ExperimentOptions{Seed: *seed, Scale: *scale, PerfReps: *reps, Workers: *workers,
		NoAnalysisCache: *cache == "off"}
	tables, err := gia.AllTables(opts)
	if err != nil {
		log.Fatal(err)
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := gia.WriteReport(f, opts, tables); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *reportPath)
	}
	if *asJSON {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	for _, tab := range tables {
		fmt.Println(tab.Render())
	}
}
