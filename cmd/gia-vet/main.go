// Command gia-vet is the repo's determinism linter. The simulation,
// chaos and experiment layers promise bit-identical output for a given
// seed at any worker count; that promise dies the moment one of them
// reads the wall clock, draws from the process-global rand source, or
// prints in map-iteration order. gia-vet walks those packages' syntax
// trees (stdlib go/ast only — no external analysis framework) and fails
// the build on:
//
//   - time.Now calls — simulated time comes from the scheduler, wall
//     time from the injectable obs.Stopwatch; a site that legitimately
//     needs the wall clock (e.g. the serve layer's idle-reclaim
//     bookkeeping, which never feeds simulation output) carries a
//     `//gia:wallclock — why` comment on the same line to pass;
//   - the global math/rand drawing functions (rand.Intn, rand.Float64,
//     rand.Shuffle, ...) — rand.New(rand.NewSource(seed)) is the only
//     blessed way to randomness;
//   - output emitted from inside a range over a map — Go randomizes map
//     iteration order, so printing or writing per-entry inside the loop
//     is nondeterministic by construction (collect the keys, sort,
//     then emit).
//
// Usage:
//
//	gia-vet [dir ...]    # default: the guarded packages under ./internal
//
// Exit code 0 when clean, 1 with findings, 2 on parse errors. The checks
// are syntactic: map-ness is inferred from declarations visible in the
// same file, which covers the guarded packages without a type checker.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// guardedDirs are the packages under the determinism contract, relative
// to the module root.
var guardedDirs = []string{
	"internal/sim",
	"internal/chaos",
	"internal/experiment",
	"internal/serve",
}

// globalRandFuncs are the math/rand package-level functions that draw
// from (or reseed) the shared global source. Constructors (New,
// NewSource, NewZipf) and the Rand/Source types are deliberately absent:
// seeded private generators are the blessed pattern.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
}

// printFuncs are the fmt emitters whose call inside a map range makes
// the output order nondeterministic.
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 || (len(dirs) == 1 && (dirs[0] == "./..." || dirs[0] == "...")) {
		dirs = guardedDirs
	}
	code := 0
	for _, dir := range dirs {
		files, err := goFiles(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gia-vet: %v\n", err)
			code = 2
			continue
		}
		for _, path := range files {
			findings, err := vetFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gia-vet: %v\n", err)
				code = 2
				continue
			}
			for _, f := range findings {
				fmt.Println(f)
				if code == 0 {
					code = 1
				}
			}
		}
	}
	os.Exit(code)
}

// goFiles lists the .go files directly in dir (no recursion — the
// guarded packages are flat).
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out, nil
}

// vetFile parses one source file and runs all three checks over it.
func vetFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	v := &vetter{fset: fset, randPkg: importName(file, "math/rand"), timePkg: importName(file, "time")}
	v.collectWallclockLines(file)
	v.collectMapIdents(file)
	ast.Inspect(file, v.visit)
	return v.findings, nil
}

// wallclockGuard is the comment marker acknowledging a deliberate wall
// clock read. It must sit on the same line as the time.Now call.
const wallclockGuard = "//gia:wallclock"

// collectWallclockLines records the lines carrying a //gia:wallclock
// guard comment; time.Now findings on those lines are suppressed.
func (v *vetter) collectWallclockLines(file *ast.File) {
	v.wallclockOK = map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, wallclockGuard) {
				v.wallclockOK[v.fset.Position(c.Pos()).Line] = true
			}
		}
	}
}

// importName returns the identifier the file binds an import path to
// ("" when the path is not imported; the default name when unaliased).
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

type vetter struct {
	fset        *token.FileSet
	randPkg     string // identifier math/rand is imported as, "" if absent
	timePkg     string // identifier time is imported as, "" if absent
	mapNames    map[string]bool
	wallclockOK map[int]bool // lines guarded by //gia:wallclock
	findings    []string
}

// collectMapIdents records every identifier the file visibly declares
// with a map type: var/field declarations, make(map...) and map-literal
// assignments, and function parameters. Purely syntactic — good enough
// to decide "is this range over a map" inside the guarded packages.
func (v *vetter) collectMapIdents(file *ast.File) {
	v.mapNames = map[string]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if isMapType(n.Type) {
				for _, name := range n.Names {
					v.mapNames[name.Name] = true
				}
			}
		case *ast.Field:
			if isMapType(n.Type) {
				for _, name := range n.Names {
					v.mapNames[name.Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if isMapExpr(rhs) {
					v.mapNames[id.Name] = true
				}
			}
		}
		return true
	})
}

func isMapType(t ast.Expr) bool {
	_, ok := t.(*ast.MapType)
	return ok
}

// isMapExpr reports whether an expression is syntactically map-valued:
// a map literal, or make(map[...]...).
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return isMapType(e.Type)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			return isMapType(e.Args[0])
		}
	}
	return false
}

func (v *vetter) report(pos token.Pos, format string, args ...any) {
	v.findings = append(v.findings,
		fmt.Sprintf("%s: %s", v.fset.Position(pos), fmt.Sprintf(format, args...)))
}

func (v *vetter) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		sel, ok := n.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Obj != nil { // shadowed by a local binding
			return true
		}
		if v.timePkg != "" && pkg.Name == v.timePkg && sel.Sel.Name == "Now" &&
			!v.wallclockOK[v.fset.Position(n.Pos()).Line] {
			v.report(n.Pos(), "time.Now: wall clock in a deterministic package (use the scheduler's virtual clock or obs.Stopwatch, or justify with //gia:wallclock)")
		}
		if v.randPkg != "" && pkg.Name == v.randPkg && globalRandFuncs[sel.Sel.Name] {
			v.report(n.Pos(), "rand.%s: process-global rand source (use rand.New(rand.NewSource(seed)))", sel.Sel.Name)
		}
	case *ast.RangeStmt:
		if !v.rangesOverMap(n.X) {
			return true
		}
		ast.Inspect(n.Body, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := printCallName(call); ok {
				v.report(call.Pos(), "%s inside a range over a map: iteration order is random (sort the keys first)", name)
			}
			return true
		})
	}
	return true
}

// rangesOverMap decides, syntactically, whether the ranged expression is
// a map: a map literal inline, or an identifier this file declares with
// a map type.
func (v *vetter) rangesOverMap(x ast.Expr) bool {
	switch x := x.(type) {
	case *ast.CompositeLit:
		return isMapType(x.Type)
	case *ast.CallExpr:
		return isMapExpr(x)
	case *ast.Ident:
		return v.mapNames[x.Name]
	}
	return false
}

// printCallName matches the calls that emit output: the fmt print
// family and Write/WriteString on some writer.
func printCallName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" && printFuncs[sel.Sel.Name] {
		return "fmt." + sel.Sel.Name, true
	}
	if sel.Sel.Name == "WriteString" || sel.Sel.Name == "Write" {
		return "." + sel.Sel.Name, true
	}
	return "", false
}
