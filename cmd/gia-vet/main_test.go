package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func vetSource(t *testing.T, src string) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := vetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func wantFinding(t *testing.T, findings []string, substr string) {
	t.Helper()
	for _, f := range findings {
		if strings.Contains(f, substr) {
			return
		}
	}
	t.Errorf("no finding mentions %q in %v", substr, findings)
}

func TestVetFlagsTimeNow(t *testing.T) {
	findings := vetSource(t, `package p
import "time"
func f() time.Time { return time.Now() }
`)
	wantFinding(t, findings, "time.Now")
}

func TestVetFlagsGlobalRand(t *testing.T) {
	findings := vetSource(t, `package p
import "math/rand"
func f() int { return rand.Intn(10) }
`)
	wantFinding(t, findings, "rand.Intn")
}

func TestVetAllowsSeededRand(t *testing.T) {
	findings := vetSource(t, `package p
import "math/rand"
func f() int { return rand.New(rand.NewSource(7)).Intn(10) }
`)
	if len(findings) != 0 {
		t.Errorf("seeded generator flagged: %v", findings)
	}
}

func TestVetRespectsImportAliasAndShadowing(t *testing.T) {
	// Aliased import still caught; a local struct named time is not.
	findings := vetSource(t, `package p
import mrand "math/rand"
func f() int { return mrand.Intn(3) }
func g() int {
	rand := struct{ Intn func(int) int }{}
	_ = rand
	return 0
}
`)
	wantFinding(t, findings, "rand.Intn")
	if len(findings) != 1 {
		t.Errorf("want exactly the aliased finding, got %v", findings)
	}
}

func TestVetFlagsMapOrderedOutput(t *testing.T) {
	findings := vetSource(t, `package p
import "fmt"
func f() {
	m := map[string]int{"a": 1}
	for k := range m {
		fmt.Println(k)
	}
}
`)
	wantFinding(t, findings, "range over a map")
}

func TestVetAllowsSortedMapEmission(t *testing.T) {
	// The blessed pattern: collect keys, sort, emit — the map range only
	// appends, the printing loop ranges over a slice.
	findings := vetSource(t, `package p
import (
	"fmt"
	"sort"
)
func f(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`)
	if len(findings) != 0 {
		t.Errorf("sorted emission flagged: %v", findings)
	}
}

// TestVetGuardedPackagesClean runs the real checks over the packages
// under the determinism contract — the linter's actual job, pinned as a
// test so `go test ./...` fails the same way verify.sh's gate does.
func TestVetGuardedPackagesClean(t *testing.T) {
	for _, dir := range guardedDirs {
		files, err := goFiles(filepath.Join("..", "..", dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if len(files) == 0 {
			t.Fatalf("%s: no Go files — guarded path moved?", dir)
		}
		for _, path := range files {
			findings, err := vetFile(path)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			for _, f := range findings {
				t.Errorf("determinism violation: %s", f)
			}
		}
	}
}

func TestVetWallclockGuardSuppressesTimeNow(t *testing.T) {
	findings := vetSource(t, `package p
import "time"
func f() int64 { return time.Now().UnixNano() //gia:wallclock — idle-reclaim bookkeeping
}
`)
	if len(findings) != 0 {
		t.Errorf("guarded time.Now flagged: %v", findings)
	}
}

func TestVetWallclockGuardIsLineScoped(t *testing.T) {
	// A guard on an adjacent line must not leak onto the call's line.
	findings := vetSource(t, `package p
import "time"
//gia:wallclock — wrong line
func f() time.Time { return time.Now() }
`)
	wantFinding(t, findings, "time.Now")
}

func TestVetWallclockGuardDoesNotCoverRand(t *testing.T) {
	findings := vetSource(t, `package p
import "math/rand"
func f() int { return rand.Intn(10) //gia:wallclock — not a clock
}
`)
	wantFinding(t, findings, "rand.Intn")
}
