// Command gia-lint runs the GIA static-analysis engine — smali IR,
// per-method control-flow graphs, reaching definitions and the pluggable
// rule set — over smali source files or a generated corpus, printing
// findings with class/method/line provenance plus a per-rule summary and
// scan-throughput statistics.
//
// Usage:
//
//	gia-lint file.smali [file2.smali ...]        # lint smali sources
//	gia-lint [-seed N] [-scale F] [-pop play|preinstalled|store|all]
//	         [-workers N] [-findings N] [-cache on|off]
//	         [-trace FILE] [-metrics] [-json]    # scan a synthetic corpus
//
// -json switches the report to machine-readable output on stdout: one
// object with per-APK packages, findings and 0-100 threat scores plus the
// aggregate score distribution. In file mode it emits the same shape with
// file paths in place of package names.
//
// Observability: -trace=FILE exports wall-clock spans of the corpus scan
// (one track per scanner worker, one span per APK) as Chrome trace-event
// JSON, or JSONL when FILE ends in .jsonl. -metrics prints the engine's
// counter snapshot (files, instructions, findings, cache layers) to
// stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"

	"github.com/ghost-installer/gia/internal/analysis"
	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/corpus"
	"github.com/ghost-installer/gia/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 2017, "corpus seed")
	scale := flag.Float64("scale", 0.1, "population scale (1.0 = paper-sized)")
	pop := flag.String("pop", "play", "population: play|preinstalled|store|all")
	workers := flag.Int("workers", runtime.NumCPU(), "scanner worker pool size")
	findings := flag.Int("findings", 10, "example findings to print in corpus mode")
	cache := flag.String("cache", "on", "content-addressed analysis cache: on|off (findings are identical either way)")
	tracePath := flag.String("trace", "", "export a Chrome trace (or JSONL if the path ends in .jsonl) of the corpus scan")
	metrics := flag.Bool("metrics", false, "print the engine's metrics snapshot to stderr")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (per-APK findings and threat scores) on stdout")
	flag.Parse()

	opts := analysis.EngineOptions{}
	switch *cache {
	case "on":
		opts.CacheCapacity = 4096
	case "off":
	default:
		log.Fatalf("-cache=%q: want on or off", *cache)
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		opts.Registry = reg
	}
	var tr *obs.Trace
	if *tracePath != "" {
		tr = obs.NewTrace()
		opts.Trace = tr
	}
	eng := analysis.NewEngineWithOptions(opts)
	if opts.CacheCapacity == 0 && opts.Registry == nil && opts.Trace == nil {
		eng = analysis.NewEngine()
	}
	if flag.NArg() > 0 {
		os.Exit(lintFiles(eng, flag.Args(), *jsonOut))
	}
	if err := scanCorpus(eng, *seed, *scale, *pop, *workers, *findings, *jsonOut); err != nil {
		log.Fatal(err)
	}
	if tr != nil {
		if err := writeTrace(tr, *tracePath); err != nil {
			log.Fatal(err)
		}
	}
	if reg != nil {
		if err := reg.Snapshot().WriteText(os.Stderr); err != nil {
			log.Fatal(err)
		}
	}
}

// writeTrace flushes the scan trace in the format the file extension picks.
func writeTrace(tr *obs.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tr.WriteJSONL(f)
	} else {
		err = tr.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	fmt.Fprintf(os.Stderr, "trace written to %s\n", path)
	return nil
}

// jsonFinding is one finding in -json output.
type jsonFinding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Class    string `json:"class"`
	Method   string `json:"method"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

// jsonReport is one scanned unit (an APK in corpus mode, a source file in
// file mode) with its findings and 0-100 threat score.
type jsonReport struct {
	Package  string        `json:"package"`
	Score    int           `json:"score"`
	Findings []jsonFinding `json:"findings"`
}

// jsonOutput is the -json document: per-unit reports plus the aggregate
// score distribution over the scan.
type jsonOutput struct {
	Scanned   int            `json:"scanned"`
	MeanScore float64        `json:"mean_score"`
	MaxScore  int            `json:"max_score"`
	ScoreHist map[string]int `json:"score_hist"`
	Reports   []jsonReport   `json:"reports"`
}

func toJSONFindings(found []analysis.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(found))
	for _, f := range found {
		out = append(out, jsonFinding{
			Rule:     f.RuleID,
			Severity: f.Severity.String(),
			File:     f.File,
			Class:    f.Class,
			Method:   f.Method,
			Line:     f.Line,
			Message:  f.Message,
		})
	}
	return out
}

func writeJSON(out jsonOutput) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// lintFiles lints smali sources from disk and returns the exit code:
// 0 clean, 1 findings, 2 parse errors.
func lintFiles(eng *analysis.Engine, paths []string, jsonOut bool) int {
	code := 0
	out := jsonOutput{ScoreHist: map[string]int{}}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 2
			continue
		}
		found, _, err := eng.AnalyzeSource(path, string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 2
			continue
		}
		score := analysis.Score(found)
		if jsonOut {
			out.Scanned++
			out.MeanScore += float64(score)
			if score > out.MaxScore {
				out.MaxScore = score
			}
			out.ScoreHist[analysis.ScoreBucketLabel(analysis.ScoreBucket(score))]++
			out.Reports = append(out.Reports, jsonReport{
				Package: path, Score: score, Findings: toJSONFindings(found),
			})
		} else {
			for _, f := range found {
				fmt.Println(f)
			}
			fmt.Printf("%s: threat score %d/%d\n", path, score, analysis.MaxScore)
		}
		if len(found) > 0 && code == 0 {
			code = 1
		}
	}
	if jsonOut {
		if out.Scanned > 0 {
			out.MeanScore /= float64(out.Scanned)
		}
		if err := writeJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 2
		}
	}
	return code
}

func scanCorpus(eng *analysis.Engine, seed int64, scale float64, pop string, workers, maxFindings int, jsonOut bool) error {
	c := corpus.Generate(corpus.Config{Seed: seed, Scale: scale})
	apps, err := population(c, pop)
	if err != nil {
		return err
	}
	if !jsonOut {
		fmt.Printf("scanning %d %s apps with %d workers, %d rules\n\n",
			len(apps), pop, workers, len(eng.Rules()))
	}

	reports, stats := eng.ScanCorpus(len(apps), workers, func(i int) *apk.APK {
		return corpus.BuildAPKFor(apps[i])
	})

	if jsonOut {
		out := jsonOutput{
			Scanned:   stats.APKs,
			MeanScore: stats.MeanScore(),
			MaxScore:  stats.ScoreMax,
			ScoreHist: map[string]int{},
		}
		for b := 0; b < analysis.ScoreBuckets; b++ {
			out.ScoreHist[analysis.ScoreBucketLabel(b)] = stats.ScoreHist[b]
		}
		for i, rep := range reports {
			out.Reports = append(out.Reports, jsonReport{
				Package:  apps[i].Package,
				Score:    rep.Score,
				Findings: toJSONFindings(rep.Findings),
			})
		}
		return writeJSON(out)
	}

	printed := 0
	for i, rep := range reports {
		for _, f := range rep.Findings {
			if printed >= maxFindings {
				break
			}
			fmt.Printf("  %s: %s\n", apps[i].Package, f)
			printed++
		}
	}
	if stats.Findings > printed {
		fmt.Printf("  … and %d more findings (raise -findings to see them)\n", stats.Findings-printed)
	}

	fmt.Printf("\n%-30s %-8s %10s   %s\n", "RULE", "SEV", "HITS", "DESCRIPTION")
	for _, r := range eng.Rules() {
		fmt.Printf("%-30s %-8s %10d   %s\n", r.ID(), r.Severity(), stats.PerRule[r.ID()], r.Description())
	}
	for _, id := range sortedKeys(stats.PerRule) {
		if !knownRule(eng, id) {
			fmt.Printf("%-30s %-8s %10d\n", id, "?", stats.PerRule[id])
		}
	}
	fmt.Printf("\nscanned %d APKs (%d classes, %d methods, %d instructions, %d parse errors) in %v\n",
		stats.APKs, stats.Stats.Classes, stats.Stats.Methods, stats.Stats.Instructions,
		stats.Stats.ParseErrors, stats.Elapsed.Round(1e6))
	fmt.Printf("throughput: %.0f APKs/s, %.0f instructions/s (%d workers)\n",
		stats.APKsPerSecond(), stats.InstructionsPerSecond(), stats.Workers)
	fmt.Printf("threat scores: mean %.1f, max %d; distribution", stats.MeanScore(), stats.ScoreMax)
	for b := 0; b < analysis.ScoreBuckets; b++ {
		fmt.Printf(" %s:%d", analysis.ScoreBucketLabel(b), stats.ScoreHist[b])
	}
	fmt.Println()
	if cs, ok := eng.CacheStats(); ok {
		fmt.Printf("cache: %d hits, %d misses, %d deduped, %d evictions, %d entries\n",
			cs.Hits, cs.Misses, cs.Deduped, cs.Evictions, cs.Entries)
	}
	return nil
}

func population(c *corpus.Corpus, pop string) ([]corpus.AppMeta, error) {
	preinstalled := func() []corpus.AppMeta {
		seen := make(map[string]bool)
		var out []corpus.AppMeta
		for _, img := range c.Images {
			for _, app := range img.Apps {
				if !seen[app.Package] {
					seen[app.Package] = true
					out = append(out, app)
				}
			}
		}
		return out
	}
	switch pop {
	case "play":
		return c.PlayApps, nil
	case "preinstalled":
		return preinstalled(), nil
	case "store":
		return c.StoreApps, nil
	case "all":
		var all []corpus.AppMeta
		all = append(all, c.PlayApps...)
		all = append(all, preinstalled()...)
		all = append(all, c.StoreApps...)
		return all, nil
	default:
		return nil, fmt.Errorf("unknown population %q (want play|preinstalled|store|all)", pop)
	}
}

func knownRule(eng *analysis.Engine, id string) bool {
	for _, r := range eng.Rules() {
		if r.ID() == id {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
