// Command gia-lint runs the GIA static-analysis engine — smali IR,
// per-method control-flow graphs, reaching definitions and the pluggable
// rule set — over smali source files or a generated corpus, printing
// findings with class/method/line provenance plus a per-rule summary and
// scan-throughput statistics.
//
// Usage:
//
//	gia-lint file.smali [file2.smali ...]        # lint smali sources
//	gia-lint [-seed N] [-scale F] [-pop play|preinstalled|store|all]
//	         [-workers N] [-findings N] [-cache on|off]
//	                                             # scan a synthetic corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"

	"github.com/ghost-installer/gia/internal/analysis"
	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/corpus"
)

func main() {
	seed := flag.Int64("seed", 2017, "corpus seed")
	scale := flag.Float64("scale", 0.1, "population scale (1.0 = paper-sized)")
	pop := flag.String("pop", "play", "population: play|preinstalled|store|all")
	workers := flag.Int("workers", runtime.NumCPU(), "scanner worker pool size")
	findings := flag.Int("findings", 10, "example findings to print in corpus mode")
	cache := flag.String("cache", "on", "content-addressed analysis cache: on|off (findings are identical either way)")
	flag.Parse()

	var eng *analysis.Engine
	switch *cache {
	case "on":
		eng = analysis.NewEngineWithOptions(analysis.EngineOptions{CacheCapacity: 4096})
	case "off":
		eng = analysis.NewEngine()
	default:
		log.Fatalf("-cache=%q: want on or off", *cache)
	}
	if flag.NArg() > 0 {
		os.Exit(lintFiles(eng, flag.Args()))
	}
	if err := scanCorpus(eng, *seed, *scale, *pop, *workers, *findings); err != nil {
		log.Fatal(err)
	}
}

// lintFiles lints smali sources from disk and returns the exit code:
// 0 clean, 1 findings, 2 parse errors.
func lintFiles(eng *analysis.Engine, paths []string) int {
	code := 0
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 2
			continue
		}
		found, _, err := eng.AnalyzeSource(path, string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 2
			continue
		}
		for _, f := range found {
			fmt.Println(f)
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

func scanCorpus(eng *analysis.Engine, seed int64, scale float64, pop string, workers, maxFindings int) error {
	c := corpus.Generate(corpus.Config{Seed: seed, Scale: scale})
	apps, err := population(c, pop)
	if err != nil {
		return err
	}
	fmt.Printf("scanning %d %s apps with %d workers, %d rules\n\n",
		len(apps), pop, workers, len(eng.Rules()))

	reports, stats := eng.ScanCorpus(len(apps), workers, func(i int) *apk.APK {
		return corpus.BuildAPKFor(apps[i])
	})

	printed := 0
	for i, rep := range reports {
		for _, f := range rep.Findings {
			if printed >= maxFindings {
				break
			}
			fmt.Printf("  %s: %s\n", apps[i].Package, f)
			printed++
		}
	}
	if stats.Findings > printed {
		fmt.Printf("  … and %d more findings (raise -findings to see them)\n", stats.Findings-printed)
	}

	fmt.Printf("\n%-30s %-8s %10s   %s\n", "RULE", "SEV", "HITS", "DESCRIPTION")
	for _, r := range eng.Rules() {
		fmt.Printf("%-30s %-8s %10d   %s\n", r.ID(), r.Severity(), stats.PerRule[r.ID()], r.Description())
	}
	for _, id := range sortedKeys(stats.PerRule) {
		if !knownRule(eng, id) {
			fmt.Printf("%-30s %-8s %10d\n", id, "?", stats.PerRule[id])
		}
	}
	fmt.Printf("\nscanned %d APKs (%d classes, %d methods, %d instructions, %d parse errors) in %v\n",
		stats.APKs, stats.Stats.Classes, stats.Stats.Methods, stats.Stats.Instructions,
		stats.Stats.ParseErrors, stats.Elapsed.Round(1e6))
	fmt.Printf("throughput: %.0f APKs/s, %.0f instructions/s (%d workers)\n",
		stats.APKsPerSecond(), stats.InstructionsPerSecond(), stats.Workers)
	if cs, ok := eng.CacheStats(); ok {
		fmt.Printf("cache: %d hits, %d misses, %d deduped, %d evictions, %d entries\n",
			cs.Hits, cs.Misses, cs.Deduped, cs.Evictions, cs.Entries)
	}
	return nil
}

func population(c *corpus.Corpus, pop string) ([]corpus.AppMeta, error) {
	preinstalled := func() []corpus.AppMeta {
		seen := make(map[string]bool)
		var out []corpus.AppMeta
		for _, img := range c.Images {
			for _, app := range img.Apps {
				if !seen[app.Package] {
					seen[app.Package] = true
					out = append(out, app)
				}
			}
		}
		return out
	}
	switch pop {
	case "play":
		return c.PlayApps, nil
	case "preinstalled":
		return preinstalled(), nil
	case "store":
		return c.StoreApps, nil
	case "all":
		var all []corpus.AppMeta
		all = append(all, c.PlayApps...)
		all = append(all, preinstalled()...)
		all = append(all, c.StoreApps...)
		return all, nil
	default:
		return nil, fmt.Errorf("unknown population %q (want play|preinstalled|store|all)", pop)
	}
}

func knownRule(eng *analysis.Engine, id string) bool {
	for _, r := range eng.Rules() {
		if r.ID() == id {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
