// Command gia-sweep runs the ablation sweeps (DESIGN.md X1–X4): hijack
// success vs attacker reaction latency, wait-and-see delay sensitivity, the
// Download Manager recheck-gap exposure and the IntentFirewall threshold
// trade-off.
//
// Usage:
//
//	gia-sweep [-trials N] [-seed N] [-workers N]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// -cpuprofile/-memprofile write pprof profiles of the sweep; CPU samples
// carry a "par.worker" label so profiles split by pool worker.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/ghost-installer/gia"
)

func main() {
	trials := flag.Int("trials", 10, "trials per sweep point")
	seed := flag.Int64("seed", 1, "sweep seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker pool size for the sweep grids (results are identical for any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		gia.InstrumentWorkerPool(nil, nil, true)
		defer func() {
			gia.InstrumentWorkerPool(nil, nil, false)
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if err := run(*trials, *seed, *workers); err != nil {
		log.Fatal(err)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

func printPoints(title, param string, points []gia.SweepPoint) {
	fmt.Println(title)
	fmt.Printf("  %-12s  %s\n", param, "hijack success")
	for _, p := range points {
		fmt.Printf("  %-12v  %5.1f%%  (%d trials)\n", p.Param, 100*p.SuccessRate, p.Trials)
	}
	fmt.Println()
}

func run(trials int, seed int64, workers int) error {
	latencies := []time.Duration{
		5 * time.Millisecond, 50 * time.Millisecond, 120 * time.Millisecond,
		160 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond,
	}
	points, err := gia.ReactionLatencySweep(gia.AmazonProfile(), latencies, trials, seed, workers)
	if err != nil {
		return err
	}
	printPoints("X1: attacker reaction latency vs the Amazon check-to-install gap (120-200 ms)", "latency", points)

	delays := []time.Duration{
		100 * time.Millisecond, 500 * time.Millisecond,
		2 * time.Second, 2200 * time.Millisecond, 10 * time.Second,
	}
	points, err = gia.WaitDelaySweep(gia.DTIgniteProfile(), delays, trials, seed+100, workers)
	if err != nil {
		return err
	}
	printPoints("X2: wait-and-see delay vs DTIgnite (check ends ~360 ms, install ~2.1-2.5 s)", "delay", points)

	gaps := []time.Duration{
		2 * time.Millisecond, 500 * time.Microsecond,
		150 * time.Microsecond, 50 * time.Microsecond,
	}
	points, err = gia.DMGapSweep(gaps, 50, trials, seed+200, workers)
	if err != nil {
		return err
	}
	printPoints("X3: DM recheck gap vs the 300 µs link flipper (50 tries/attempt)", "gap", points)

	thresholds := []time.Duration{time.Millisecond, 100 * time.Millisecond, time.Second, 30 * time.Second}
	outcomes, err := gia.DetectionThresholdSweep(thresholds, seed+300, workers)
	if err != nil {
		return err
	}
	fmt.Println("X4: IntentFirewall detection threshold trade-off")
	fmt.Printf("  %-12s  %-16s  %s\n", "threshold", "attack detected", "benign false positives")
	for _, o := range outcomes {
		fmt.Printf("  %-12v  %-16v  %d of %d sends\n", o.Threshold, o.AttackDetected, o.FalsePositives, o.BenignSends)
	}
	return nil
}
