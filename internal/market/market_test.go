package market

import (
	"errors"
	"testing"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/sig"
)

func testAPK(pkg string, version int) *apk.APK {
	return apk.Build(apk.Manifest{Package: pkg, VersionCode: version, Label: pkg},
		map[string][]byte{"classes.dex": []byte(pkg)}, sig.NewKey(pkg+"-dev"))
}

func TestPublishAndFetch(t *testing.T) {
	s := NewServer("store.example.com")
	a := testAPK("com.app", 2)
	l := s.Publish(a)

	if l.Package != "com.app" || l.VersionCode != 2 {
		t.Errorf("listing = %+v", l)
	}
	data, err := s.Fetch(l.URL)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != l.SizeBytes {
		t.Errorf("size = %d, want %d", len(data), l.SizeBytes)
	}
	if apk.ContentDigest(data) != l.ContentHash {
		t.Error("content hash mismatch")
	}
	decoded, err := apk.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.ManifestDigest() != l.ManifestHash {
		t.Error("manifest hash mismatch")
	}
	if _, err := s.Fetch("https://store.example.com/apps/none.apk"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing fetch = %v", err)
	}
}

func TestLookupLatestVersionWins(t *testing.T) {
	s := NewServer("h")
	s.Publish(testAPK("com.app", 1))
	s.Publish(testAPK("com.app", 5))
	s.Publish(testAPK("com.app", 3)) // older upload does not displace v5

	l, ok := s.Lookup("com.app")
	if !ok || l.VersionCode != 5 {
		t.Errorf("Lookup = %+v, %v", l, ok)
	}
	if _, ok := s.Lookup("com.none"); ok {
		t.Error("Lookup found a missing package")
	}
}

func TestCatalogSorted(t *testing.T) {
	s := NewServer("h")
	s.Publish(testAPK("com.b", 1))
	s.Publish(testAPK("com.a", 1))
	cat := s.Catalog()
	if len(cat) != 2 || cat[0].Package != "com.a" || cat[1].Package != "com.b" {
		t.Errorf("catalog = %+v", cat)
	}
}

func TestMuxRoutesByHost(t *testing.T) {
	play := NewServer("play.google.com")
	amazon := NewServer("mas.amazon.com")
	lp := play.Publish(testAPK("com.p", 1))
	la := amazon.Publish(testAPK("com.a", 1))

	m := NewMux()
	m.Add(play)
	m.Add(amazon)

	if _, err := m.Fetch(lp.URL); err != nil {
		t.Errorf("play fetch: %v", err)
	}
	if _, err := m.Fetch(la.URL); err != nil {
		t.Errorf("amazon fetch: %v", err)
	}
	if _, err := m.Fetch("https://unknown.host/x"); !errors.Is(err, ErrNoServer) {
		t.Errorf("unknown host = %v", err)
	}
	if _, err := m.Fetch("not-a-url"); !errors.Is(err, ErrNotFound) {
		t.Errorf("bad url = %v", err)
	}
	if s, ok := m.Server("play.google.com"); !ok || s != play {
		t.Error("Server lookup failed")
	}
}
