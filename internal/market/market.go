// Package market models the remote side of an appstore: servers that host
// APKs and their metadata (content hashes), addressed by URL. A Mux routes
// Download Manager fetches to the right server by host, so one device can
// talk to Google Play, Amazon, Xiaomi and an attacker-controlled CDN at
// once.
package market

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/sig"
)

// Errors returned by servers.
var (
	ErrNotFound = errors.New("market: no such resource")
	ErrNoServer = errors.New("market: no server for host")
)

// Listing is one published app: the APK plus the metadata an installer
// downloads alongside it.
type Listing struct {
	Package     string
	VersionCode int
	URL         string
	SizeBytes   int64
	// ContentHash is the digest of the encoded APK — what installers
	// verify after download.
	ContentHash sig.Digest
	// ManifestHash is what installPackageWithVerification-style callers
	// pass to the PMS.
	ManifestHash sig.Digest
}

// Server hosts one store's catalog.
type Server struct {
	host     string
	byURL    map[string][]byte
	listings map[string]Listing // by package name (latest version wins)
}

// NewServer creates a store server for host (e.g. "play.google.com").
func NewServer(host string) *Server {
	return &Server{
		host:     host,
		byURL:    make(map[string][]byte),
		listings: make(map[string]Listing),
	}
}

// Host returns the server's hostname.
func (s *Server) Host() string { return s.host }

// listingCache memoizes the Listing derived for an APK on a host: sweeps
// re-publish the identical (immutable, shared) APK to a fresh server every
// schedule, and rebuilding the URL string and digests dominated publish
// cost. The cap bounds memory against unbounded corpora.
var listingCache struct {
	sync.Mutex
	m map[listingKey]*Listing
}

type listingKey struct {
	host string
	apk  *apk.APK
}

const listingCacheCap = 4096

// Publish adds an APK to the catalog and returns its listing.
func (s *Server) Publish(a *apk.APK) Listing {
	key := listingKey{s.host, a}
	listingCache.Lock()
	cached := listingCache.m[key]
	listingCache.Unlock()
	if cached == nil {
		encoded := a.Encode()
		cached = &Listing{
			Package:      a.Manifest.Package,
			VersionCode:  a.Manifest.VersionCode,
			URL:          fmt.Sprintf("https://%s/apps/%s-v%d.apk", s.host, a.Manifest.Package, a.Manifest.VersionCode),
			SizeBytes:    int64(len(encoded)),
			ContentHash:  a.EncodedDigest(),
			ManifestHash: a.ManifestDigest(),
		}
		listingCache.Lock()
		if listingCache.m == nil {
			listingCache.m = make(map[listingKey]*Listing)
		}
		if len(listingCache.m) < listingCacheCap {
			listingCache.m[key] = cached
		}
		listingCache.Unlock()
	}
	l := *cached
	s.byURL[l.URL] = a.Encode()
	if prev, ok := s.listings[l.Package]; !ok || l.VersionCode >= prev.VersionCode {
		s.listings[l.Package] = l
	}
	return l
}

// PublishRaw hosts arbitrary bytes (non-APK content, e.g. metadata or an
// attacker's bait file) at /<name> and returns the URL.
func (s *Server) PublishRaw(name string, data []byte) string {
	url := fmt.Sprintf("https://%s/%s", s.host, name)
	s.byURL[url] = append([]byte(nil), data...)
	return url
}

// Lookup finds the latest listing for a package.
func (s *Server) Lookup(pkg string) (Listing, bool) {
	l, ok := s.listings[pkg]
	return l, ok
}

// Catalog lists every published package, sorted.
func (s *Server) Catalog() []Listing {
	pkgs := make([]string, 0, len(s.listings))
	for pkg := range s.listings {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	out := make([]Listing, 0, len(pkgs))
	for _, pkg := range pkgs {
		out = append(out, s.listings[pkg])
	}
	return out
}

// Fetch implements dm.Fetcher for this server's URLs.
func (s *Server) Fetch(url string) ([]byte, error) {
	data, ok := s.byURL[url]
	if !ok {
		return nil, fmt.Errorf("%s: %w", url, ErrNotFound)
	}
	// The hosted bytes are immutable once published; callers (DM and
	// installer download loops) only read the slice while copying it onto
	// the device, so no defensive copy is taken.
	return data, nil
}

// Mux routes fetches to servers by URL host.
type Mux struct {
	servers map[string]*Server
	// retired holds servers dropped by Reset, keyed by host, so a sweep
	// that re-registers the same store every schedule reuses the Server
	// (and its two maps, cleared) instead of allocating fresh ones.
	// Retired servers are invisible to Server and Fetch: a host that the
	// current scenario never registered still resolves to ErrNoServer.
	retired map[string]*Server
}

// NewMux creates an empty router.
func NewMux() *Mux {
	return &Mux{
		servers: make(map[string]*Server),
		retired: make(map[string]*Server),
	}
}

// Reset drops every registered server (the next scenario publishes its own).
func (m *Mux) Reset() {
	for host, s := range m.servers {
		clear(s.byURL)
		clear(s.listings)
		m.retired[host] = s
		delete(m.servers, host)
	}
}

// Acquire returns the registered server for host, creating and registering
// one (recycled from a previous scenario when possible) if none exists.
func (m *Mux) Acquire(host string) *Server {
	if s, ok := m.servers[host]; ok {
		return s
	}
	s, ok := m.retired[host]
	if ok {
		delete(m.retired, host)
	} else {
		s = NewServer(host)
	}
	m.servers[host] = s
	return s
}

// Add registers a server. A server with the same host replaces the old one.
func (m *Mux) Add(s *Server) { m.servers[s.Host()] = s }

// Server returns the server for host.
func (m *Mux) Server(host string) (*Server, bool) {
	s, ok := m.servers[host]
	return s, ok
}

// Fetch implements dm.Fetcher, routing by host.
func (m *Mux) Fetch(url string) ([]byte, error) {
	host, err := hostOf(url)
	if err != nil {
		return nil, err
	}
	s, ok := m.servers[host]
	if !ok {
		return nil, fmt.Errorf("%s: %w", host, ErrNoServer)
	}
	return s.Fetch(url)
}

func hostOf(url string) (string, error) {
	rest, ok := strings.CutPrefix(url, "https://")
	if !ok {
		rest, ok = strings.CutPrefix(url, "http://")
	}
	if !ok {
		return "", fmt.Errorf("%s: no scheme: %w", url, ErrNotFound)
	}
	host, _, _ := strings.Cut(rest, "/")
	if host == "" {
		return "", fmt.Errorf("%s: no host: %w", url, ErrNotFound)
	}
	return host, nil
}
