package intents

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// Property: a single sender, however fast it fires at one recipient, never
// triggers the detection scheme (suppression rule 1).
func TestPropertySingleSenderNeverAlerts(t *testing.T) {
	f := func(gapsMs []uint8) bool {
		fx := newFixture(Options{DeliveryLatency: time.Microsecond})
		fx.ams.Firewall().EnableDetection(true)
		fx.ams.RegisterActivity("com.recv", "A", true, "", echoActivity("r"))
		for _, g := range gapsMs {
			fx.sched.RunUntil(fx.sched.Now() + time.Duration(g)*time.Millisecond)
			if err := fx.ams.StartActivity("com.only", Intent{TargetPkg: "com.recv", Component: "A"}); err != nil {
				return false
			}
		}
		fx.sched.Run()
		return len(fx.ams.Firewall().Alerts()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: alternating senders alert if and only if some consecutive pair
// lands within the threshold (given distinct non-system senders and a
// recipient that is neither).
func TestPropertyAlertIffWithinThreshold(t *testing.T) {
	const threshold = 50 * time.Millisecond
	f := func(gapsMs []uint8) bool {
		fx := newFixture(Options{DeliveryLatency: time.Microsecond})
		fw := fx.ams.Firewall()
		fw.EnableDetection(true)
		fw.SetThreshold(threshold)
		fx.ams.RegisterActivity("com.recv", "A", true, "", echoActivity("r"))

		expectAlert := false
		for i, g := range gapsMs {
			gap := time.Duration(g) * time.Millisecond
			if i > 0 {
				if gap < threshold {
					expectAlert = true
				}
				fx.sched.RunUntil(fx.sched.Now() + gap)
			}
			sender := fmt.Sprintf("com.s%d", i%2)
			if err := fx.ams.StartActivity(sender, Intent{TargetPkg: "com.recv", Component: "A"}); err != nil {
				return false
			}
		}
		fx.sched.Run()
		return (len(fw.Alerts()) > 0) == expectAlert
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: origin stamping is exact for arbitrary sender names, and absent
// when the scheme is off.
func TestPropertyOriginExactness(t *testing.T) {
	f := func(senderSuffix uint16, enabled bool) bool {
		fx := newFixture(Options{DeliveryLatency: time.Microsecond})
		fx.ams.Firewall().EnableOrigin(enabled)
		var got string
		var ok bool
		fx.ams.RegisterActivity("com.recv", "A", true, "", func(in Intent) string {
			got, ok = in.Origin()
			return "x"
		})
		sender := fmt.Sprintf("com.sender%04x", senderSuffix)
		if err := fx.ams.StartActivity(sender, Intent{TargetPkg: "com.recv", Component: "A"}); err != nil {
			return false
		}
		fx.sched.Run()
		if enabled {
			return ok && got == sender
		}
		return !ok && got == ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
