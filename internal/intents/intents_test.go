package intents

import (
	"errors"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/procfs"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

type fixture struct {
	sched *sim.Scheduler
	procs *procfs.Table
	ams   *AMS
}

func newFixture(opts Options) *fixture {
	sched := sim.New(1)
	procs := procfs.NewTable()
	return &fixture{sched: sched, procs: procs, ams: New(sched, procs, opts)}
}

func echoActivity(label string) ActivityHandler {
	return func(in Intent) string { return label + ":" + in.Extra("appId") }
}

func TestStartActivityUpdatesScreenAndForeground(t *testing.T) {
	f := newFixture(Options{})
	f.ams.RegisterActivity("com.android.vending", "AppDetails", true, "", echoActivity("play"))

	err := f.ams.StartActivity("com.facebook", Intent{
		TargetPkg: "com.android.vending", Component: "AppDetails",
		Extras: map[string]string{"appId": "com.facebook.orca"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Not delivered yet: latency applies.
	if f.ams.Screen().Pkg != "" {
		t.Error("screen changed before delivery latency")
	}
	f.sched.Run()

	s := f.ams.Screen()
	if s.Pkg != "com.android.vending" || s.Activity != "AppDetails" || s.Content != "play:com.facebook.orca" {
		t.Errorf("screen = %+v", s)
	}
	if s.Since == 0 {
		t.Error("screen timestamp missing")
	}
	if fg, _ := f.procs.Foreground(); fg != "com.android.vending" {
		t.Errorf("foreground = %q", fg)
	}
}

func TestStartActivityResolutionErrors(t *testing.T) {
	f := newFixture(Options{})
	f.ams.RegisterActivity("com.app", "Private", false, "", echoActivity("x"))

	if err := f.ams.StartActivity("com.other", Intent{TargetPkg: "com.app", Component: "Nope"}); !errors.Is(err, ErrNoSuchComponent) {
		t.Errorf("missing component = %v", err)
	}
	if err := f.ams.StartActivity("com.other", Intent{TargetPkg: "com.app", Component: "Private"}); !errors.Is(err, ErrNotExported) {
		t.Errorf("non-exported = %v", err)
	}
	// The owner can start its own non-exported activity.
	if err := f.ams.StartActivity("com.app", Intent{TargetPkg: "com.app", Component: "Private"}); err != nil {
		t.Errorf("self start = %v", err)
	}
}

func TestGuardedActivityRequiresPermission(t *testing.T) {
	held := map[string]bool{"com.trusted": true}
	f := newFixture(Options{
		Perms: func(uid vfs.UID, p string) bool { return uid == 42 && p == "com.app.CALL" },
		UIDOf: func(pkg string) (vfs.UID, bool) {
			if held[pkg] {
				return 42, true
			}
			return 7, true
		},
	})
	f.ams.RegisterActivity("com.app", "Guarded", true, "com.app.CALL", echoActivity("g"))

	if err := f.ams.StartActivity("com.evil", Intent{TargetPkg: "com.app", Component: "Guarded"}); !errors.Is(err, ErrPermission) {
		t.Errorf("unprivileged = %v", err)
	}
	if err := f.ams.StartActivity("com.trusted", Intent{TargetPkg: "com.app", Component: "Guarded"}); err != nil {
		t.Errorf("privileged = %v", err)
	}
}

func TestSecondIntentReplacesScreenBeforeUserSees(t *testing.T) {
	// The stock-Android behaviour the redirect attack exploits: a second
	// Intent delivered shortly after the first replaces the screen.
	f := newFixture(Options{DeliveryLatency: 5 * time.Millisecond})
	f.ams.RegisterActivity("com.android.vending", "AppDetails", true, "", echoActivity("play"))

	send := func(sender, appID string) {
		if err := f.ams.StartActivity(sender, Intent{
			TargetPkg: "com.android.vending", Component: "AppDetails",
			Extras: map[string]string{"appId": appID},
		}); err != nil {
			t.Fatal(err)
		}
	}
	send("com.facebook", "com.facebook.orca")
	f.sched.RunUntil(100 * time.Millisecond)
	send("com.malware", "com.fake.orca")
	f.sched.Run()

	if got := f.ams.Screen().Content; got != "play:com.fake.orca" {
		t.Errorf("screen = %q — the attacker's intent must win", got)
	}
}

func TestBroadcastDelivery(t *testing.T) {
	f := newFixture(Options{})
	var got []string
	f.ams.RegisterReceiver("com.store", "Push", "com.store.PUSH", true, "", func(in Intent) {
		got = append(got, in.Extra("cmd"))
	})
	f.ams.RegisterReceiver("com.other", "Push", "com.store.PUSH", true, "", func(in Intent) {
		got = append(got, "other")
	})

	n, err := f.ams.SendBroadcast("com.evil", Intent{Action: "com.store.PUSH", Extras: map[string]string{"cmd": "install"}})
	if err != nil || n != 2 {
		t.Fatalf("broadcast = %d, %v", n, err)
	}
	// Narrowed to one package:
	n, err = f.ams.SendBroadcast("com.evil", Intent{Action: "com.store.PUSH", TargetPkg: "com.store", Extras: map[string]string{"cmd": "x"}})
	if err != nil || n != 1 {
		t.Fatalf("narrowed broadcast = %d, %v", n, err)
	}
	f.sched.Run()
	if len(got) != 3 {
		t.Errorf("deliveries = %v", got)
	}
}

func TestGuardedReceiverBlocksUnprivilegedSender(t *testing.T) {
	f := newFixture(Options{
		Perms: func(uid vfs.UID, p string) bool { return uid == 42 },
		UIDOf: func(pkg string) (vfs.UID, bool) {
			if pkg == "com.store" {
				return 42, true
			}
			return 7, true
		},
	})
	delivered := 0
	f.ams.RegisterReceiver("com.store", "Push", "PUSH", true, "com.store.PERM", func(Intent) { delivered++ })

	n, err := f.ams.SendBroadcast("com.evil", Intent{Action: "PUSH"})
	if n != 0 || !errors.Is(err, ErrPermission) {
		t.Errorf("unprivileged broadcast = %d, %v", n, err)
	}
	n, err = f.ams.SendBroadcast("com.store", Intent{Action: "PUSH"})
	if n != 1 || err != nil {
		t.Errorf("privileged broadcast = %d, %v", n, err)
	}
	f.sched.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d", delivered)
	}
}

func TestFirewallDetectionRaisesAlert(t *testing.T) {
	f := newFixture(Options{DeliveryLatency: time.Millisecond})
	f.ams.Firewall().EnableDetection(true)
	f.ams.RegisterActivity("com.android.vending", "AppDetails", true, "", echoActivity("play"))

	var alerted []Alert
	f.ams.Firewall().OnAlert(func(a Alert) { alerted = append(alerted, a) })

	in := func(appID string) Intent {
		return Intent{TargetPkg: "com.android.vending", Component: "AppDetails", Extras: map[string]string{"appId": appID}}
	}
	if err := f.ams.StartActivity("com.facebook", in("orca")); err != nil {
		t.Fatal(err)
	}
	f.sched.RunUntil(300 * time.Millisecond) // attacker reacts within the window
	if err := f.ams.StartActivity("com.malware", in("fake")); err != nil {
		t.Fatal(err)
	}
	f.sched.Run()

	if len(alerted) != 1 {
		t.Fatalf("alerts = %v", alerted)
	}
	a := alerted[0]
	if a.Recipient != "com.android.vending" || a.FirstSender != "com.facebook" || a.SecondSender != "com.malware" {
		t.Errorf("alert = %+v", a)
	}
	if a.Gap >= DefaultThreshold {
		t.Errorf("gap = %v", a.Gap)
	}
	if got := f.ams.Firewall().Alerts(); len(got) != 1 {
		t.Errorf("Alerts() = %v", got)
	}
}

func TestFirewallFalsePositiveSuppressions(t *testing.T) {
	tests := []struct {
		name    string
		sender2 string
		gap     time.Duration
	}{
		{name: "same sender twice", sender2: "com.facebook", gap: 100 * time.Millisecond},
		{name: "self send", sender2: "com.android.vending", gap: 100 * time.Millisecond},
		{name: "system sender", sender2: "com.android.systemui", gap: 100 * time.Millisecond},
		{name: "slow second intent", sender2: "com.other", gap: 2 * time.Second},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := newFixture(Options{
				DeliveryLatency: time.Millisecond,
				IsSystemPkg:     func(pkg string) bool { return pkg == "com.android.systemui" },
			})
			f.ams.Firewall().EnableDetection(true)
			f.ams.RegisterActivity("com.android.vending", "AppDetails", true, "", echoActivity("play"))

			if err := f.ams.StartActivity("com.facebook", Intent{TargetPkg: "com.android.vending", Component: "AppDetails"}); err != nil {
				t.Fatal(err)
			}
			f.sched.RunUntil(tt.gap)
			if err := f.ams.StartActivity(tt.sender2, Intent{TargetPkg: "com.android.vending", Component: "AppDetails"}); err != nil {
				t.Fatal(err)
			}
			f.sched.Run()
			if alerts := f.ams.Firewall().Alerts(); len(alerts) != 0 {
				t.Errorf("alerts = %v, want none", alerts)
			}
		})
	}
}

func TestFirewallDisabledRaisesNothing(t *testing.T) {
	f := newFixture(Options{DeliveryLatency: time.Millisecond})
	f.ams.RegisterActivity("com.play", "A", true, "", echoActivity("p"))
	_ = f.ams.StartActivity("com.a", Intent{TargetPkg: "com.play", Component: "A"})
	_ = f.ams.StartActivity("com.b", Intent{TargetPkg: "com.play", Component: "A"})
	f.sched.Run()
	if alerts := f.ams.Firewall().Alerts(); len(alerts) != 0 {
		t.Errorf("alerts with detection off = %v", alerts)
	}
	if f.ams.Firewall().Checks() != 2 {
		t.Errorf("checks = %d", f.ams.Firewall().Checks())
	}
}

func TestOriginStamping(t *testing.T) {
	f := newFixture(Options{DeliveryLatency: time.Millisecond})
	var seen Intent
	f.ams.RegisterActivity("com.play", "A", true, "", func(in Intent) string {
		seen = in
		return "x"
	})

	// Off: no origin available (stock Android).
	_ = f.ams.StartActivity("com.facebook", Intent{TargetPkg: "com.play", Component: "A"})
	f.sched.Run()
	if origin, ok := seen.Origin(); ok {
		t.Errorf("origin present with scheme off: %q", origin)
	}

	// On: the recipient can identify the sender.
	f.ams.Firewall().EnableOrigin(true)
	_ = f.ams.StartActivity("com.malware", Intent{TargetPkg: "com.play", Component: "A"})
	f.sched.Run()
	origin, ok := seen.Origin()
	if !ok || origin != "com.malware" {
		t.Errorf("origin = %q, %v", origin, ok)
	}
}

func TestSingleTopLaunchModes(t *testing.T) {
	f := newFixture(Options{DeliveryLatency: time.Millisecond})
	f.ams.RegisterActivity("com.store", "Venezia", true, "", echoActivity("v"))
	f.ams.RegisterActivity("com.other", "A", true, "", echoActivity("a"))

	send := func(target, comp string, singleTop bool) {
		if err := f.ams.StartActivity("com.x", Intent{TargetPkg: target, Component: comp, SingleTop: singleTop}); err != nil {
			t.Fatal(err)
		}
		f.sched.Run()
	}

	if got := f.ams.ActivityGeneration("com.store", "Venezia"); got != 0 {
		t.Fatalf("pre-launch generation = %d", got)
	}
	send("com.store", "Venezia", true) // first launch always creates
	if got := f.ams.ActivityGeneration("com.store", "Venezia"); got != 1 {
		t.Fatalf("first-launch generation = %d", got)
	}
	send("com.store", "Venezia", true) // singleTop onto itself: no recreate
	if got := f.ams.ActivityGeneration("com.store", "Venezia"); got != 1 {
		t.Fatalf("singleTop generation = %d, want 1 (instance reused)", got)
	}
	send("com.store", "Venezia", false) // plain launch: recreated
	if got := f.ams.ActivityGeneration("com.store", "Venezia"); got != 2 {
		t.Fatalf("plain relaunch generation = %d, want 2", got)
	}
	// After another activity takes the top, even singleTop recreates.
	send("com.other", "A", false)
	send("com.store", "Venezia", true)
	if got := f.ams.ActivityGeneration("com.store", "Venezia"); got != 3 {
		t.Fatalf("singleTop after losing top = %d, want 3", got)
	}
}

func TestUnregisterPackage(t *testing.T) {
	f := newFixture(Options{})
	f.ams.RegisterActivity("com.app", "A", true, "", echoActivity("a"))
	f.ams.RegisterReceiver("com.app", "R", "ACT", true, "", func(Intent) {})
	f.ams.UnregisterPackage("com.app")

	if err := f.ams.StartActivity("com.x", Intent{TargetPkg: "com.app", Component: "A"}); !errors.Is(err, ErrNoSuchComponent) {
		t.Errorf("start after unregister = %v", err)
	}
	if n, _ := f.ams.SendBroadcast("com.x", Intent{Action: "ACT"}); n != 0 {
		t.Errorf("broadcast after unregister delivered %d", n)
	}
}

func TestFirewallResetAlerts(t *testing.T) {
	f := newFixture(Options{DeliveryLatency: time.Millisecond})
	f.ams.Firewall().EnableDetection(true)
	f.ams.RegisterActivity("com.play", "A", true, "", echoActivity("p"))
	_ = f.ams.StartActivity("com.a", Intent{TargetPkg: "com.play", Component: "A"})
	_ = f.ams.StartActivity("com.b", Intent{TargetPkg: "com.play", Component: "A"})
	f.sched.Run()
	if len(f.ams.Firewall().Alerts()) == 0 {
		t.Fatal("no alert to reset")
	}
	f.ams.Firewall().ResetAlerts()
	if len(f.ams.Firewall().Alerts()) != 0 {
		t.Error("alerts survive reset")
	}
}
