package intents

import (
	"time"
)

// DefaultThreshold is the detection window: two Intents reaching the same
// recipient within it look like a redirect attack (1 second in the paper's
// implementation).
const DefaultThreshold = time.Second

// Alert is one suspected redirect-Intent attack.
type Alert struct {
	At           time.Duration
	Recipient    string
	FirstSender  string
	SecondSender string
	Gap          time.Duration
}

// intentRecord is the IR record of Section V-C: recipient package name
// (the map key), delivery time and the caller's identity.
type intentRecord struct {
	senderPkg string
	at        time.Duration
}

// Firewall is the modified IntentFirewall. Both schemes are independent
// toggles: the detection scheme flags suspiciously quick consecutive
// Intents to the same recipient, and the origin scheme stamps each Intent
// with its sender's package name for the recipient to inspect.
type Firewall struct {
	detection bool
	origin    bool
	threshold time.Duration

	now         func() time.Duration
	isSystemPkg func(pkg string) bool

	// records keeps only the last Intent per recipient package.
	records map[string]intentRecord
	alerts  []Alert
	onAlert func(Alert)

	// checks counts checkIntent invocations (used by the overhead
	// benchmarks of Tables IX and X).
	checks int
}

func newFirewall(now func() time.Duration, isSystemPkg func(string) bool) *Firewall {
	return &Firewall{
		threshold:   DefaultThreshold,
		now:         now,
		isSystemPkg: isSystemPkg,
		records:     make(map[string]intentRecord),
	}
}

// reset restores the firewall to its newFirewall state: both schemes off,
// default threshold, empty record and alert history, counters zeroed.
func (f *Firewall) reset() {
	f.detection = false
	f.origin = false
	f.threshold = DefaultThreshold
	f.records = make(map[string]intentRecord)
	f.alerts = nil
	f.onAlert = nil
	f.checks = 0
}

// EnableDetection toggles the redirect-Intent detection scheme.
func (f *Firewall) EnableDetection(on bool) { f.detection = on }

// DetectionEnabled reports whether detection is active.
func (f *Firewall) DetectionEnabled() bool { return f.detection }

// EnableOrigin toggles the Intent-origin identification scheme.
func (f *Firewall) EnableOrigin(on bool) { f.origin = on }

// OriginEnabled reports whether origin stamping is active.
func (f *Firewall) OriginEnabled() bool { return f.origin }

// SetThreshold overrides the detection window.
func (f *Firewall) SetThreshold(d time.Duration) { f.threshold = d }

// OnAlert registers a callback invoked for each new alert (the "report the
// event to the user" path).
func (f *Firewall) OnAlert(fn func(Alert)) { f.onAlert = fn }

// Alerts returns all alerts raised so far.
func (f *Firewall) Alerts() []Alert { return append([]Alert(nil), f.alerts...) }

// ResetAlerts clears alert history (between experiment runs).
func (f *Firewall) ResetAlerts() { f.alerts = nil }

// Checks reports how many Intents have passed through checkIntent.
func (f *Firewall) Checks() int { return f.checks }

// CheckIntent is the modified IntentFirewall.checkIntent: it stamps the
// origin (when enabled), and compares the Intent against the recipient's
// previous IR record (when detection is enabled). The AMS calls it for
// every startActivity; it is exported so the Table IX/X benchmarks can
// measure exactly the added logic.
//
// No alarm is raised when (1) both Intents come from the same app, (2) the
// sender is the recipient itself, or (3) the sender is a system app or
// service — the paper's three false-positive suppressions.
func (f *Firewall) CheckIntent(senderPkg, recipientPkg string, in *Intent) {
	f.checks++
	if f.origin {
		in.origin = senderPkg
	}
	if !f.detection {
		return
	}
	now := f.now()
	prev, seen := f.records[recipientPkg]
	// Only the last Intent received by the package is preserved.
	f.records[recipientPkg] = intentRecord{senderPkg: senderPkg, at: now}
	if !seen {
		return
	}
	gap := now - prev.at
	if gap >= f.threshold {
		return
	}
	if prev.senderPkg == senderPkg { // same app sent both
		return
	}
	if senderPkg == recipientPkg { // sent and received by the same app
		return
	}
	if f.isSystemPkg(senderPkg) { // system apps and services are trusted
		return
	}
	alert := Alert{
		At:           now,
		Recipient:    recipientPkg,
		FirstSender:  prev.senderPkg,
		SecondSender: senderPkg,
		Gap:          gap,
	}
	f.alerts = append(f.alerts, alert)
	if f.onAlert != nil {
		f.onAlert(alert)
	}
}
