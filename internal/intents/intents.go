// Package intents implements the Intent machinery of the simulated device:
// explicit Intents, activities, broadcast receivers, an
// ActivityManagerService (AMS) with a foreground/back-stack model, and the
// IntentFirewall hosting the paper's two Section V-C Intent defenses —
// redirect-Intent detection and Intent-origin identification.
//
// Android's stock design gives an Intent recipient no way to learn the
// sender's identity, and lets a background app start a foreground app's
// activity, replacing the screen the user is about to see. Both properties
// are preserved here because the Section III-D attacks depend on them.
package intents

import (
	"errors"
	"fmt"
	"time"

	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/procfs"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

// Errors returned by the AMS.
var (
	ErrNoSuchComponent = errors.New("intents: no such component")
	ErrNotExported     = errors.New("intents: component not exported")
	ErrPermission      = errors.New("intents: sender lacks the guarding permission")
)

// Intent is an explicit intent aimed at one component.
type Intent struct {
	Action    string
	TargetPkg string
	Component string
	Extras    map[string]string
	// SingleTop requests singleTop launch mode: if the target activity is
	// already on top it is not recreated — the Amazon command-injection
	// attack relies on this to keep the WebView alive.
	SingleTop bool

	// origin is the hidden mIntentOrigin field added by the paper's
	// Intent-origin enhancement. Empty unless the scheme is enabled.
	origin string
}

// Extra reads an extra with a default of "".
func (in Intent) Extra(key string) string { return in.Extras[key] }

// Origin is the hidden getIntentOrigin API: the sender's package name, if
// the origin scheme stamped it.
func (in Intent) Origin() (string, bool) { return in.origin, in.origin != "" }

// ActivityHandler runs when an activity receives an intent and returns the
// screen content the activity displays.
type ActivityHandler func(in Intent) string

// ReceiverHandler runs when a broadcast receiver gets an intent.
type ReceiverHandler func(in Intent)

// Screen is what the display currently shows.
type Screen struct {
	Pkg      string
	Activity string
	Content  string
	Since    time.Duration
}

type activityReg struct {
	pkg       string
	name      string
	exported  bool
	guardedBy string
	handler   ActivityHandler
	// generation counts instance recreations. A singleTop Intent aimed at
	// the already-top activity is handed to the existing instance
	// (onNewIntent) and does not bump it — the property the Amazon
	// command-injection attack depends on to keep the WebView alive.
	generation int
}

type receiverReg struct {
	pkg       string
	name      string
	action    string
	exported  bool
	guardedBy string
	handler   ReceiverHandler
}

// PermChecker reports whether uid holds an Android permission.
type PermChecker func(uid vfs.UID, permission string) bool

// Options configure an AMS.
type Options struct {
	// DeliveryLatency is the virtual time between startActivity and the
	// activity rendering.
	DeliveryLatency time.Duration
	// Perms resolves permission checks for guarded components.
	Perms PermChecker
	// UIDOf maps a package name to its UID.
	UIDOf func(pkg string) (vfs.UID, bool)
	// IsSystemPkg reports whether a package is a system app (firewall
	// whitelist rule 3).
	IsSystemPkg func(pkg string) bool
}

func (o *Options) fill() {
	if o.DeliveryLatency <= 0 {
		o.DeliveryLatency = 5 * time.Millisecond
	}
	if o.Perms == nil {
		o.Perms = func(vfs.UID, string) bool { return true }
	}
	if o.UIDOf == nil {
		o.UIDOf = func(string) (vfs.UID, bool) { return 0, false }
	}
	if o.IsSystemPkg == nil {
		o.IsSystemPkg = func(string) bool { return false }
	}
}

// AMS is the ActivityManagerService.
type AMS struct {
	sched    *sim.Scheduler
	procs    *procfs.Table
	opts     Options
	firewall *Firewall

	activities map[string]*activityReg // "pkg/name"
	receivers  []receiverReg
	screen     Screen
	stackTop   string // "pkg/name" of the top activity
	injector   fault.Injector

	// regFree recycles activityReg structs across Reset: sweeps register
	// the same components every schedule, and the per-registration
	// allocation showed up in arena-reuse profiles.
	regFree []*activityReg
	// keyCache interns "pkg/name" component keys. It deliberately survives
	// Reset — the keys depend only on the names, which repeat every
	// schedule. The cap bounds memory against unbounded corpora.
	keyCache map[[2]string]string
}

// key returns the interned "pkg/name" map key.
func (a *AMS) key(pkg, name string) string {
	if k, ok := a.keyCache[[2]string{pkg, name}]; ok {
		return k
	}
	k := pkg + "/" + name
	if a.keyCache == nil {
		a.keyCache = make(map[[2]string]string)
	}
	if len(a.keyCache) < 1024 {
		a.keyCache[[2]string{pkg, name}] = k
	}
	return k
}

// SetFaultInjector installs (or, with nil, removes) the fault hook probed on
// every delivery: fault.SiteIntentDeliver for startActivity (subject
// "sender->pkg/component") and fault.SiteIntentBroadcast per matching
// receiver (subject "action->pkg"). Drops model the silent losses of the
// real binder queue under pressure; errors surface as API failures.
func (a *AMS) SetFaultInjector(fi fault.Injector) { a.injector = fi }

// probe consults the injector, returning fault.None when none is installed.
func (a *AMS) probe(site fault.Site, subject string) fault.Action {
	if a.injector == nil {
		return fault.None
	}
	return a.injector.Probe(site, subject, a.sched.Now())
}

// New creates an AMS bound to the scheduler and process table.
func New(sched *sim.Scheduler, procs *procfs.Table, opts Options) *AMS {
	opts.fill()
	a := &AMS{
		sched:      sched,
		procs:      procs,
		opts:       opts,
		activities: make(map[string]*activityReg),
	}
	a.firewall = newFirewall(sched.Now, opts.IsSystemPkg)
	return a
}

// Reset returns the AMS (and its firewall) to the just-booted state: no
// registered components, empty screen and back stack, no fault injector,
// both firewall schemes off with empty history.
func (a *AMS) Reset() {
	for key, reg := range a.activities {
		if len(a.regFree) < 64 {
			*reg = activityReg{}
			a.regFree = append(a.regFree, reg)
		}
		delete(a.activities, key)
	}
	a.receivers = a.receivers[:0]
	a.screen = Screen{}
	a.stackTop = ""
	a.injector = nil
	a.firewall.reset()
}

// Firewall returns the IntentFirewall for defense configuration.
func (a *AMS) Firewall() *Firewall { return a.firewall }

// RegisterActivity declares an activity of pkg.
func (a *AMS) RegisterActivity(pkg, name string, exported bool, guardedBy string, h ActivityHandler) {
	var reg *activityReg
	if n := len(a.regFree); n > 0 {
		reg = a.regFree[n-1]
		a.regFree[n-1] = nil
		a.regFree = a.regFree[:n-1]
	} else {
		reg = new(activityReg)
	}
	*reg = activityReg{pkg: pkg, name: name, exported: exported, guardedBy: guardedBy, handler: h}
	a.activities[a.key(pkg, name)] = reg
	a.procs.Register(pkg)
}

// RegisterReceiver declares a broadcast receiver of pkg for action.
func (a *AMS) RegisterReceiver(pkg, name, action string, exported bool, guardedBy string, h ReceiverHandler) {
	a.receivers = append(a.receivers, receiverReg{
		pkg: pkg, name: name, action: action, exported: exported, guardedBy: guardedBy, handler: h,
	})
	a.procs.Register(pkg)
}

// HasReceiver reports whether any receiver is registered for action.
// Broadcast senders with per-send setup cost (building an Extras map, say)
// can use it to skip a delivery that would reach nobody.
func (a *AMS) HasReceiver(action string) bool {
	for i := range a.receivers {
		if a.receivers[i].action == action {
			return true
		}
	}
	return false
}

// UnregisterPackage removes every component of pkg (uninstall).
func (a *AMS) UnregisterPackage(pkg string) {
	for key, reg := range a.activities {
		if reg.pkg == pkg {
			delete(a.activities, key)
		}
	}
	kept := a.receivers[:0]
	for i := range a.receivers {
		if a.receivers[i].pkg != pkg {
			kept = append(kept, a.receivers[i])
		}
	}
	a.receivers = kept
	a.procs.Unregister(pkg)
}

// Screen returns the currently displayed screen.
func (a *AMS) Screen() Screen { return a.screen }

// StartActivity delivers in to its target activity on behalf of senderPkg.
// The intent passes through the IntentFirewall; delivery (and the screen
// change) happens one DeliveryLatency later in virtual time. The returned
// error reflects resolution and permission failures only — like the real
// API, the sender learns nothing about what the firewall thought.
func (a *AMS) StartActivity(senderPkg string, in Intent) error {
	key := a.key(in.TargetPkg, in.Component)
	reg, ok := a.activities[key]
	if !ok {
		return fmt.Errorf("%s: %w", key, ErrNoSuchComponent)
	}
	if !reg.exported && senderPkg != reg.pkg {
		return fmt.Errorf("%s: %w", key, ErrNotExported)
	}
	if reg.guardedBy != "" {
		uid, ok := a.opts.UIDOf(senderPkg)
		if !ok || !a.opts.Perms(uid, reg.guardedBy) {
			return fmt.Errorf("%s guarded by %s: %w", key, reg.guardedBy, ErrPermission)
		}
	}
	// checkIntent: detection bookkeeping and origin stamping.
	a.firewall.CheckIntent(senderPkg, reg.pkg, &in)

	latency := a.opts.DeliveryLatency
	switch act := a.probe(fault.SiteIntentDeliver, senderPkg+"->"+key); act.Kind {
	case fault.KindError:
		return fmt.Errorf("startActivity %s: %w", key, act.Err)
	case fault.KindDrop:
		// Swallowed in transit; like the real API the sender sees success.
		return nil
	case fault.KindDelay:
		latency += act.Delay
	case fault.KindDuplicate:
		a.sched.AfterFn(latency+act.Delay, func() { a.deliver(reg, in) })
	}
	a.sched.AfterFn(latency, func() {
		a.deliver(reg, in)
	})
	return nil
}

func (a *AMS) deliver(reg *activityReg, in Intent) {
	key := a.key(reg.pkg, reg.name)
	// singleTop: an already-top activity is not recreated; the intent is
	// handed to the existing instance (onNewIntent). Anything else spins
	// up a fresh instance.
	if !(in.SingleTop && a.stackTop == key && reg.generation > 0) {
		reg.generation++
	}
	content := reg.handler(in)
	a.stackTop = key
	_ = a.procs.SetForeground(reg.pkg)
	a.screen = Screen{
		Pkg:      reg.pkg,
		Activity: reg.name,
		Content:  content,
		Since:    a.sched.Now(),
	}
}

// ActivityGeneration reports how many times the named activity has been
// (re)created. Zero means it never launched.
func (a *AMS) ActivityGeneration(pkg, name string) int {
	if reg, ok := a.activities[a.key(pkg, name)]; ok {
		return reg.generation
	}
	return 0
}

// SendBroadcast delivers in to every receiver registered for its action
// (optionally narrowed to in.TargetPkg). Guarded receivers require the
// sender to hold the guarding permission; NOTHING authenticates an
// unguarded receiver's callers — the Xiaomi appstore flaw.
func (a *AMS) SendBroadcast(senderPkg string, in Intent) (delivered int, err error) {
	uid, hasUID := a.opts.UIDOf(senderPkg)
	for i := range a.receivers {
		r := a.receivers[i] // copy: the closures below outlive this call
		if r.action != in.Action {
			continue
		}
		if in.TargetPkg != "" && r.pkg != in.TargetPkg {
			continue
		}
		if !r.exported && senderPkg != r.pkg {
			continue
		}
		if r.guardedBy != "" {
			if !hasUID || !a.opts.Perms(uid, r.guardedBy) {
				err = fmt.Errorf("%s/%s guarded by %s: %w", r.pkg, r.name, r.guardedBy, ErrPermission)
				continue
			}
		}
		inCopy := in
		latency := a.opts.DeliveryLatency
		switch act := a.probe(fault.SiteIntentBroadcast, in.Action+"->"+r.pkg); act.Kind {
		case fault.KindError:
			err = fmt.Errorf("broadcast %s to %s: %w", in.Action, r.pkg, act.Err)
			continue
		case fault.KindDrop:
			continue
		case fault.KindDelay:
			latency += act.Delay
		case fault.KindDuplicate:
			a.sched.AfterFn(latency+act.Delay, func() { r.handler(inCopy) })
		}
		a.sched.AfterFn(latency, func() { r.handler(inCopy) })
		delivered++
	}
	return delivered, err
}
