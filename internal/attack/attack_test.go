package attack

import (
	"errors"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

func bootDev(t *testing.T, seed int64) *device.Device {
	t.Helper()
	d, err := device.Boot(device.Profile{Name: "galaxy-s6-edge", Vendor: "samsung", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// scenario deploys a store, publishes a genuine target app on it, and
// plants the malware.
type scenario struct {
	dev    *device.Device
	store  *installer.App
	mal    *Malware
	target *apk.APK
}

func newScenario(t *testing.T, prof installer.Profile, seed int64) *scenario {
	t.Helper()
	d := bootDev(t, seed)
	store, err := installer.Deploy(d, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := apk.Build(apk.Manifest{
		Package: "com.popular.app", VersionCode: 1, Label: "Popular App", Icon: "icon-popular",
		UsesPerms: []string{perm.Internet},
	}, map[string][]byte{"classes.dex": []byte("genuine")}, sig.NewKey("popular-dev"))
	store.Store.Publish(target)
	mal, err := DeployMalware(d, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	return &scenario{dev: d, store: store, mal: mal, target: target}
}

func (s *scenario) runAIT(t *testing.T) installer.Result {
	t.Helper()
	var res installer.Result
	got := false
	s.store.RequestInstall("com.popular.app", func(r installer.Result) { res, got = r, true })
	// RunUntil, not Run: attacker pollers re-arm forever and would keep
	// the queue alive.
	s.dev.Sched.RunUntil(s.dev.Sched.Now() + 2*time.Minute)
	if !got {
		t.Fatal("AIT never completed")
	}
	return res
}

func TestFileObserverHijackAcrossStores(t *testing.T) {
	profiles := []installer.Profile{
		installer.Amazon(), installer.AmazonV2(), installer.Xiaomi(),
		installer.Baidu(), installer.Qihoo360(), installer.DTIgnite(),
		installer.Tencent(), installer.HuaweiStore(),
	}
	for _, prof := range profiles {
		prof := prof
		t.Run(prof.Package, func(t *testing.T) {
			s := newScenario(t, prof, 11)
			atk := NewTOCTOU(s.mal, ConfigForStore(prof, StrategyFileObserver), s.target)
			if err := atk.Launch(); err != nil {
				t.Fatal(err)
			}
			defer atk.Stop()

			res := s.runAIT(t)
			if !res.Succeeded() {
				t.Fatalf("AIT failed outright: %v", res.Err)
			}
			if !res.Hijacked {
				t.Fatal("install was not hijacked")
			}
			if !res.Installed.Cert.Equal(s.mal.Key.Certificate()) {
				t.Error("installed package not signed by the attacker")
			}
			if string(res.Installed.Image().Files["classes.dex"]) != "gia-payload" {
				t.Errorf("payload = %q", res.Installed.Image().Files["classes.dex"])
			}
			if n := len(atk.Replacements()); n != 1 {
				t.Errorf("replacements = %d, want 1", n)
			}
		})
	}
}

func TestWaitAndSeeHijack(t *testing.T) {
	// The paper's pre-measured delays: 2 s for DTIgnite, 500 ms for
	// Amazon and Baidu.
	for _, prof := range []installer.Profile{installer.DTIgnite(), installer.Amazon(), installer.Baidu()} {
		prof := prof
		t.Run(prof.Package, func(t *testing.T) {
			s := newScenario(t, prof, 23)
			atk := NewTOCTOU(s.mal, ConfigForStore(prof, StrategyWaitAndSee), s.target)
			if err := atk.Launch(); err != nil {
				t.Fatal(err)
			}
			defer atk.Stop()

			res := s.runAIT(t)
			if !res.Succeeded() || !res.Hijacked {
				t.Fatalf("hijack failed: err=%v hijacked=%v", res.Err, res.Hijacked)
			}
		})
	}
}

func TestHijackThroughPIAConsentDialog(t *testing.T) {
	// SlideMe installs via the PIA: the replacement carries the original
	// manifest so the consent dialog shows the genuine label and icon and
	// the pre-dialog manifest checksum matches.
	s := newScenario(t, installer.SlideMe(), 31)
	atk := NewTOCTOU(s.mal, ConfigForStore(installer.SlideMe(), StrategyFileObserver), s.target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()

	res := s.runAIT(t)
	if !res.Succeeded() || !res.Hijacked {
		t.Fatalf("PIA hijack failed: err=%v hijacked=%v", res.Err, res.Hijacked)
	}
}

func TestInternalStorageDefeatsHijack(t *testing.T) {
	// Google Play stages internally: the attacker's replacement rename is
	// rejected by the internal-storage policy, and the install stays clean.
	prof := installer.GooglePlay()
	s := newScenario(t, prof, 41)
	cfg := ConfigForStore(prof, StrategyFileObserver)
	atk := NewTOCTOU(s.mal, cfg, s.target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()

	res := s.runAIT(t)
	if !res.Clean() {
		t.Fatalf("internal-storage AIT not clean: err=%v hijacked=%v", res.Err, res.Hijacked)
	}
	if len(atk.Replacements()) != 0 {
		t.Errorf("replacements on internal storage = %v", atk.Replacements())
	}
}

func TestTooEarlyWaitAndSeeBurnsRetries(t *testing.T) {
	// A wait-and-see strike before the hash check corrupts the file too
	// early: the store re-downloads transparently, and with the same bad
	// delay every attempt fails until the retry budget is exhausted.
	prof := installer.DTIgnite()
	s := newScenario(t, prof, 47)
	cfg := ConfigForStore(prof, StrategyWaitAndSee)
	cfg.WaitDelay = 100 * time.Millisecond // before the ~360 ms check
	atk := NewTOCTOU(s.mal, cfg, s.target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()

	res := s.runAIT(t)
	if !errors.Is(res.Err, installer.ErrHashMismatch) {
		t.Fatalf("err = %v, want ErrHashMismatch", res.Err)
	}
	if res.Attempts != prof.Redownloads+1 {
		t.Errorf("attempts = %d, want %d", res.Attempts, prof.Redownloads+1)
	}
	if len(atk.Replacements()) < 2 {
		t.Errorf("replacements = %d, want one per attempt", len(atk.Replacements()))
	}
}

func TestPatchedFUSEStopsHijack(t *testing.T) {
	for _, strategy := range []Strategy{StrategyFileObserver, StrategyWaitAndSee} {
		t.Run(strategy.String(), func(t *testing.T) {
			prof := installer.Amazon()
			s := newScenario(t, prof, 53)
			s.dev.Fuse.SetPatched(true)
			atk := NewTOCTOU(s.mal, ConfigForStore(prof, strategy), s.target)
			if err := atk.Launch(); err != nil {
				t.Fatal(err)
			}
			defer atk.Stop()

			res := s.runAIT(t)
			if !res.Clean() {
				t.Fatalf("patched FUSE failed to protect: err=%v hijacked=%v", res.Err, res.Hijacked)
			}
			if len(atk.Replacements()) != 0 {
				t.Errorf("replacements despite patch = %v", atk.Replacements())
			}
		})
	}
}

func TestSilentStorageGrantUnderRuntimeModel(t *testing.T) {
	d, err := device.Boot(device.Profile{Name: "m", Vendor: "samsung", RuntimePermissions: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mal, err := DeployMalware(d, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	if !mal.Pkg.Granted(perm.WriteExternalStorage) {
		t.Error("malware lacks WRITE_EXTERNAL_STORAGE after the group trick")
	}
}

func TestDMSymlinkStealAcrossPolicies(t *testing.T) {
	tests := []struct {
		policy   dm.SymlinkPolicy
		wantWin  bool
		maxTries int
	}{
		{policy: dm.PolicyLegacy, wantWin: true, maxTries: 1},
		{policy: dm.PolicyRecheck, wantWin: true, maxTries: 50},
		{policy: dm.PolicyFixed, wantWin: false, maxTries: 50},
	}
	for _, tt := range tests {
		t.Run(tt.policy.String(), func(t *testing.T) {
			d, err := device.Boot(device.Profile{Name: "n5", Vendor: "lge", DMPolicy: tt.policy, Seed: 61})
			if err != nil {
				t.Fatal(err)
			}
			mal, err := DeployMalware(d, "com.fun.game")
			if err != nil {
				t.Fatal(err)
			}
			// A victim app holds a private secret in internal storage.
			victim, err := d.PMS.InstallFromParsed(apk.Build(apk.Manifest{
				Package: "com.android.vending", VersionCode: 1, Label: "Play",
			}, nil, sig.NewKey("play")))
			if err != nil {
				t.Fatal(err)
			}
			d.Run() // create data dirs
			secretPath := "/data/data/com.android.vending/files/url-tokens"
			if err := d.FS.WriteFile(secretPath, []byte("secret-play-tokens"), victim.UID, vfs.ModePrivate); err != nil {
				t.Fatal(err)
			}
			// Directly, the malware cannot read it.
			if _, err := d.FS.ReadFile(secretPath, mal.UID()); !errors.Is(err, vfs.ErrPermission) {
				t.Fatalf("direct read = %v, want ErrPermission", err)
			}

			atk, err := NewDMSymlink(mal)
			if err != nil {
				t.Fatal(err)
			}
			var stolen []byte
			var stealErr error
			done := false
			atk.Steal(secretPath, tt.maxTries, func(b []byte, err error) {
				stolen, stealErr, done = b, err, true
			})
			d.Run()
			if !done {
				t.Fatal("steal never finished")
			}
			if tt.wantWin {
				if stealErr != nil {
					t.Fatalf("steal failed on %v: %v (tries=%d)", tt.policy, stealErr, atk.Tries())
				}
				if string(stolen) != "secret-play-tokens" {
					t.Errorf("stolen = %q", stolen)
				}
			} else {
				if stealErr == nil {
					t.Fatalf("steal succeeded on the fixed policy: %q", stolen)
				}
			}
		})
	}
}

func TestDMSymlinkDoSOnPlay(t *testing.T) {
	d, err := device.Boot(device.Profile{Name: "n5", Vendor: "lge", DMPolicy: dm.PolicyLegacy, Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	mal, err := DeployMalware(d, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	atk, err := NewDMSymlink(mal)
	if err != nil {
		t.Fatal(err)
	}
	var delErr error
	done := false
	atk.Delete(dm.DBPath, 10, func(err error) { delErr, done = err, true })
	d.Run()
	if !done || delErr != nil {
		t.Fatalf("delete: done=%v err=%v", done, delErr)
	}
	if d.DM.Healthy() {
		t.Fatal("DM database survived — Play DoS failed")
	}
	// Google Play can no longer download.
	if _, err := d.DM.Enqueue(vfs.UID(10002), "com.android.vending", "https://x/y", "/sdcard/Download/f", nil); !errors.Is(err, dm.ErrDatabase) {
		t.Errorf("post-DoS enqueue = %v", err)
	}
}

// redirectScenario builds the Facebook → Play → Messenger flow.
func redirectScenario(t *testing.T, seed int64) (*device.Device, *Malware, *Redirect) {
	t.Helper()
	d := bootDev(t, seed)
	play, err := installer.Deploy(d, installer.GooglePlay(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = play
	// Facebook is an installed app with a UI.
	fb, err := d.PMS.InstallFromParsed(apk.Build(apk.Manifest{
		Package: "com.facebook.katana", VersionCode: 1, Label: "Facebook",
	}, nil, sig.NewKey("facebook")))
	if err != nil {
		t.Fatal(err)
	}
	_ = fb
	d.AMS.RegisterActivity("com.facebook.katana", "Feed", true, "", func(intents.Intent) string { return "facebook:feed" })
	d.Run()

	mal, err := DeployMalware(d, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	red := NewRedirect(mal, RedirectConfig{
		VictimPkg:      "com.facebook.katana",
		StorePkg:       "com.android.vending",
		StoreActivity:  installer.ActivityAppDetails,
		LookalikeAppID: "com.faceb00k.orca",
	})
	return d, mal, red
}

func TestRedirectIntentAttack(t *testing.T) {
	d, _, red := redirectScenario(t, 71)
	if err := red.Launch(); err != nil {
		t.Fatal(err)
	}
	defer red.Stop()

	// The user opens Facebook...
	if err := d.AMS.StartActivity(device.SystemSender, intents.Intent{
		TargetPkg: "com.facebook.katana", Component: "Feed",
	}); err != nil {
		t.Fatal(err)
	}
	d.Sched.RunUntil(200 * time.Millisecond)

	// ...and taps "Install Messenger": Facebook redirects to Play.
	if err := d.AMS.StartActivity("com.facebook.katana", intents.Intent{
		TargetPkg: "com.android.vending", Component: installer.ActivityAppDetails,
		Extras: map[string]string{"appId": "com.facebook.orca"},
	}); err != nil {
		t.Fatal(err)
	}
	// The user perceives the screen about a second later.
	d.Sched.RunUntil(1200 * time.Millisecond)

	if !red.Succeeded() {
		t.Fatalf("screen = %+v, fired = %d, lastErr = %v", d.AMS.Screen(), red.Fired(), red.LastErr())
	}
	if red.Fired() != 1 {
		t.Errorf("fired = %d", red.Fired())
	}
}

func TestRedirectDetectedByIntentFirewall(t *testing.T) {
	d, _, red := redirectScenario(t, 73)
	d.AMS.Firewall().EnableDetection(true)
	if err := red.Launch(); err != nil {
		t.Fatal(err)
	}
	defer red.Stop()

	_ = d.AMS.StartActivity(device.SystemSender, intents.Intent{TargetPkg: "com.facebook.katana", Component: "Feed"})
	d.Sched.RunUntil(200 * time.Millisecond)
	_ = d.AMS.StartActivity("com.facebook.katana", intents.Intent{
		TargetPkg: "com.android.vending", Component: installer.ActivityAppDetails,
		Extras: map[string]string{"appId": "com.facebook.orca"},
	})
	d.Sched.RunUntil(1200 * time.Millisecond)

	alerts := d.AMS.Firewall().Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v", alerts)
	}
	if alerts[0].SecondSender != "com.fun.game" || alerts[0].Recipient != "com.android.vending" {
		t.Errorf("alert = %+v", alerts[0])
	}
}

func TestRedirectOriginExposesSender(t *testing.T) {
	d, _, red := redirectScenario(t, 79)
	d.AMS.Firewall().EnableOrigin(true)

	var origins []string
	d.AMS.RegisterActivity("com.android.vending", "OriginProbe", true, "", func(in intents.Intent) string {
		if o, ok := in.Origin(); ok {
			origins = append(origins, o)
		}
		return "probe"
	})
	_ = red

	_ = d.AMS.StartActivity("com.facebook.katana", intents.Intent{TargetPkg: "com.android.vending", Component: "OriginProbe"})
	_ = d.AMS.StartActivity("com.fun.game", intents.Intent{TargetPkg: "com.android.vending", Component: "OriginProbe"})
	d.Run()
	if len(origins) != 2 || origins[0] != "com.facebook.katana" || origins[1] != "com.fun.game" {
		t.Errorf("origins = %v", origins)
	}
}

func TestHareEscalationEndToEnd(t *testing.T) {
	// The malware exploits Xiaomi's unauthenticated push receiver (a GIA)
	// to silently install the platform-signed, Hare-creating system app,
	// then reads the user's contacts through the hijacked permission.
	s := newScenario(t, installer.Xiaomi(), 83)
	hare := NewHareEscalation(s.mal, "com.vlingo.midas.contacts.permission.READ", "com.vlingo.midas")

	// 1. Define the hanging permission before the victim app exists.
	if err := hare.DefinePermission(); err != nil {
		t.Fatal(err)
	}
	// 2. Publish the victim system app on the store and push-install it.
	victimAPK := hare.BuildVictimApp(s.dev.Profile.PlatformKey)
	s.store.Store.Publish(victimAPK)
	n, err := s.dev.AMS.SendBroadcast(s.mal.Name(), intents.Intent{
		Action: installer.PushAction("com.xiaomi.market"),
		Extras: map[string]string{"payload": `{"jsonContent":"{\"type\":\"app\",\"appId\":\"7\",\"packageName\":\"com.vlingo.midas\"}"}`},
	})
	if err != nil || n != 1 {
		t.Fatalf("push = %d, %v", n, err)
	}
	s.dev.Run()
	if _, ok := s.dev.PMS.Installed("com.vlingo.midas"); !ok {
		t.Fatal("victim system app not installed")
	}
	hare.RegisterVictimComponents(s.dev)

	// 3. Steal the contacts.
	content, err := hare.StealContacts()
	if err != nil {
		t.Fatal(err)
	}
	if content != "contacts:[alice:+1-555-0100 bob:+1-555-0101]" {
		t.Errorf("stolen = %q", content)
	}
}

func TestHareBlockedWithoutDefinition(t *testing.T) {
	// Without the prior definition, the permission stays hanging and the
	// malware cannot pass the guard.
	s := newScenario(t, installer.Xiaomi(), 89)
	hare := NewHareEscalation(s.mal, "com.vlingo.midas.contacts.permission.READ", "com.vlingo.midas")
	victimAPK := hare.BuildVictimApp(s.dev.Profile.PlatformKey)
	if _, err := s.dev.PMS.InstallFromParsed(victimAPK); err != nil {
		t.Fatal(err)
	}
	s.dev.Run()
	hare.RegisterVictimComponents(s.dev)
	if _, err := hare.StealContacts(); !errors.Is(err, ErrHareBlocked) {
		t.Fatalf("steal = %v, want ErrHareBlocked", err)
	}
}
