package attack

import (
	"errors"
	"fmt"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
)

// Certifigate models the first privilege-escalation path of Section III-B:
// deliberately install a *vulnerable* platform-signed system app (the
// paper used TeamViewer QuickSupport, exploited with the Check Point
// "Certifi-gate" technique) and then drive its exposed interface to act
// with its system-level permissions.
//
// The vulnerable app holds INSTALL_PACKAGES (granted because it is signed
// with the vendor's platform key) and exposes an exported, unauthenticated
// remote-support receiver whose commands it executes blindly — the
// Certifi-gate flaw. Because every device of the vendor shares one platform
// key and Android forbids two packages with the same name, the attack works
// whenever the patched version is absent from the device, which the
// fragmentation study of Section IV shows is common.
type Certifigate struct {
	mal *Malware
	// VictimPkg is the vulnerable remote-support app.
	VictimPkg string
	// installLog records packages installed through the exploited app.
	installLog []string
}

// ErrNotExploitable reports that the victim app rejected the command (the
// patched variant authenticates its callers).
var ErrNotExploitable = errors.New("attack: remote-support app rejected the command")

// RemoteCommandAction is the broadcast action the support app listens on.
func RemoteCommandAction(pkg string) string { return pkg + ".action.REMOTE_COMMAND" }

// NewCertifigate targets victimPkg on the malware's device.
func NewCertifigate(mal *Malware, victimPkg string) *Certifigate {
	return &Certifigate{mal: mal, VictimPkg: victimPkg}
}

// BuildVulnerableApp constructs the vulnerable remote-support app: platform
// signed, holding INSTALL_PACKAGES, exposing the unauthenticated command
// receiver. If patched, the receiver is guarded by a signature permission
// the app defines — the fixed build the attacker must hope is absent.
func (c *Certifigate) BuildVulnerableApp(platformKey *sig.Key, patched bool) *apk.APK {
	m := apk.Manifest{
		Package: c.VictimPkg, VersionCode: 1, Label: "QuickSupport",
		UsesPerms: []string{perm.InstallPackages, perm.DeletePackages, perm.Internet,
			perm.WriteExternalStorage, perm.ReadExternalStorage},
		Components: []apk.Component{
			{Type: apk.ComponentReceiver, Name: "RemoteCommand", Exported: true},
		},
	}
	if patched {
		m.VersionCode = 2
		guard := c.VictimPkg + ".permission.REMOTE"
		m.DefinesPerms = []apk.PermissionDef{{Name: guard, ProtectionLevel: "signature"}}
		m.Components[0].GuardedBy = guard
	}
	return apk.Build(m, map[string][]byte{"classes.dex": []byte("quicksupport")}, platformKey)
}

// RegisterVictimComponents wires the installed support app's receiver into
// the AMS. store names the market the support app fetches plugins from.
func (c *Certifigate) RegisterVictimComponents(dev *device.Device, storeHost string) error {
	victim, ok := dev.PMS.Installed(c.VictimPkg)
	if !ok {
		return fmt.Errorf("attack: %s not installed", c.VictimPkg)
	}
	guard := ""
	if comp, ok := victim.Manifest.Component("RemoteCommand"); ok {
		guard = comp.GuardedBy
	}
	dev.AMS.RegisterReceiver(c.VictimPkg, "RemoteCommand", RemoteCommandAction(c.VictimPkg), true, guard,
		func(in intents.Intent) {
			// The vulnerable build executes remote-support plugin
			// commands without verifying the requester's certificate.
			pkg := in.Extra("installPlugin")
			if pkg == "" {
				return
			}
			srv, ok := dev.Market.Server(storeHost)
			if !ok {
				return
			}
			listing, ok := srv.Lookup(pkg)
			if !ok {
				return
			}
			data, err := srv.Fetch(listing.URL)
			if err != nil {
				return
			}
			staged := "/sdcard/" + pkg + "-plugin.apk"
			if err := dev.FS.WriteFile(staged, data, victim.UID, 0); err != nil {
				return
			}
			if _, err := dev.PMS.InstallPackage(victim.UID, staged); err != nil {
				return
			}
			c.installLog = append(c.installLog, pkg)
		})
	return nil
}

// Exploit sends the plugin-install command on behalf of the malware. With
// the vulnerable build, pluginPkg gets installed silently under the support
// app's INSTALL_PACKAGES privilege.
func (c *Certifigate) Exploit(pluginPkg string) error {
	n, err := c.mal.Dev.AMS.SendBroadcast(c.mal.Name(), intents.Intent{
		Action: RemoteCommandAction(c.VictimPkg),
		Extras: map[string]string{"installPlugin": pluginPkg},
	})
	if err != nil || n == 0 {
		return fmt.Errorf("%w: %v", ErrNotExploitable, err)
	}
	c.mal.Dev.Run()
	if _, ok := c.mal.Dev.PMS.Installed(pluginPkg); !ok {
		return fmt.Errorf("attack: plugin %s not installed after exploit", pluginPkg)
	}
	return nil
}

// InstallLog lists packages installed through the exploited app.
func (c *Certifigate) InstallLog() []string {
	return append([]string(nil), c.installLog...)
}
