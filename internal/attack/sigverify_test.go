package attack

import (
	"testing"

	"github.com/ghost-installer/gia/internal/installer"
)

// TestSignatureVerificationAPIDefeatsHijack exercises the Section V-A fix:
// an Amazon-style store that records the downloaded APK's signer and
// installs through installPackageWithSignature. The TOCTOU replacement —
// which defeats both the hash check timing and manifest-only verification —
// can no longer result in a foreign-signed install.
func TestSignatureVerificationAPIDefeatsHijack(t *testing.T) {
	for _, strategy := range []Strategy{StrategyFileObserver, StrategyWaitAndSee} {
		t.Run(strategy.String(), func(t *testing.T) {
			prof := installer.Amazon()
			prof.UseSignatureVerification = true
			s := newScenario(t, prof, 503)

			atk := NewTOCTOU(s.mal, ConfigForStore(installer.Amazon(), strategy), s.target)
			if err := atk.Launch(); err != nil {
				t.Fatal(err)
			}
			defer atk.Stop()

			res := s.runAIT(t)
			if res.Hijacked {
				t.Fatalf("hijack succeeded despite signature verification: %+v", res.Installed.Cert)
			}
			// Either the store eventually installed the genuine app (the
			// attacker missed a retry) or the transaction failed safely;
			// in both cases no attacker-signed package is present.
			if res.Installed != nil && res.Installed.Cert.Equal(s.mal.Key.Certificate()) {
				t.Fatal("attacker-signed package installed")
			}
			if p, ok := s.dev.PMS.Installed("com.popular.app"); ok {
				if p.Cert.Equal(s.mal.Key.Certificate()) {
					t.Fatal("attacker package present after the transaction")
				}
			}
		})
	}
}

// TestSignatureVerificationCleanInstall confirms the fixed API does not
// break the benign path.
func TestSignatureVerificationCleanInstall(t *testing.T) {
	prof := installer.Amazon()
	prof.UseSignatureVerification = true
	s := newScenario(t, prof, 509)
	res := s.runAIT(t)
	if !res.Clean() {
		t.Fatalf("clean install failed: %v", res.Err)
	}
	hasRecord := false
	for _, step := range res.Trace {
		if step.Name == "signature-recorded" {
			hasRecord = true
		}
	}
	if !hasRecord {
		t.Errorf("trace lacks the signature grab: %v", res.Trace)
	}
}
