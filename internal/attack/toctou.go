package attack

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/fileobserver"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

// Strategy selects how the TOCTOU attacker finds the replacement window.
type Strategy int

// Attack strategies from Section III-B.
const (
	// StrategyFileObserver counts CLOSE_NOWRITE verification reads after
	// download completion, using the per-store fingerprint.
	StrategyFileObserver Strategy = iota + 1
	// StrategyWaitAndSee polls file tails for the APK's
	// end-of-central-directory record and replaces after a fixed,
	// pre-measured delay.
	StrategyWaitAndSee
)

func (s Strategy) String() string {
	switch s {
	case StrategyFileObserver:
		return "file-observer"
	case StrategyWaitAndSee:
		return "wait-and-see"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ReplaceMethod selects how the replacement lands on the staged file. The
// paper's DAPP analysis (Section V-B) enumerates all three and the events
// each exposes.
type ReplaceMethod int

// Replacement methods.
const (
	// MethodRename moves a pre-stored file over the target in one
	// operation (MOVED_TO) — the default and fastest.
	MethodRename ReplaceMethod = iota + 1
	// MethodOverwrite opens the target and rewrites it in place
	// (OPEN, MODIFY…, CLOSE_WRITE), imitating a download.
	MethodOverwrite
	// MethodDeleteRewrite deletes the target and writes a fresh copy
	// (DELETE, then CREATE…CLOSE_WRITE).
	MethodDeleteRewrite
)

func (m ReplaceMethod) String() string {
	switch m {
	case MethodRename:
		return "rename"
	case MethodOverwrite:
		return "overwrite"
	case MethodDeleteRewrite:
		return "delete-rewrite"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// TOCTOUConfig parameterizes a hijack. The per-store knowledge
// (StagingDir, VerifyReads, WaitDelay) comes from analysing the target
// appstore beforehand, exactly as the paper describes.
type TOCTOUConfig struct {
	Strategy Strategy
	// StagingDir is the store's (stable) download directory.
	StagingDir string
	// VerifyReads is the store's CLOSE_NOWRITE fingerprint
	// (FileObserver strategy).
	VerifyReads int
	// WaitDelay is the pre-measured delay after download completion
	// (wait-and-see strategy): 2 s for DTIgnite, 500 ms for Amazon/Baidu.
	WaitDelay time.Duration
	// PollInterval is the EOCD polling cadence (wait-and-see).
	PollInterval time.Duration
	// ReactMin/ReactMax bound the attacker's code-path latency between
	// deciding to strike and the replacement landing.
	ReactMin, ReactMax time.Duration
	// Payload is the malicious content packed into the replacement APK.
	Payload map[string][]byte
	// StripDRM removes DRM self-check entries while repackaging.
	StripDRM bool
	// Method selects the replacement mechanics (default MethodRename).
	Method ReplaceMethod
}

// defaultPayload is shared by every config that doesn't override it; it is
// only ever read (repackaging copies the entries into the evil APK).
var defaultPayload = map[string][]byte{"classes.dex": []byte("gia-payload")}

func (c *TOCTOUConfig) fill() {
	if c.PollInterval <= 0 {
		c.PollInterval = 50 * time.Millisecond
	}
	if c.ReactMin <= 0 {
		c.ReactMin = 2 * time.Millisecond
	}
	if c.ReactMax < c.ReactMin {
		c.ReactMax = c.ReactMin
	}
	if c.Payload == nil {
		c.Payload = defaultPayload
	}
	if c.Method == 0 {
		c.Method = MethodRename
	}
}

// Replacement records one successful file substitution.
type Replacement struct {
	Path string
	At   time.Duration
}

// TOCTOU is a running installation-hijack attack.
type TOCTOU struct {
	mal      *Malware
	cfg      TOCTOUConfig
	evil     *apk.APK
	evilData []byte
	cacheDir string
	staged   int

	obs    *fileobserver.Observer
	ticker *sim.Ticker

	// FileObserver state machine.
	candidate string
	noWrites  int
	armed     bool

	// Wait-and-see state.
	handled map[string]bool

	replacements []Replacement
}

// evilCache memoizes the repackaged attack APK per (original, signer,
// payload, DRM-strip) tuple: a sweep rebuilds the identical replacement for
// every schedule, and each repackage re-copies, re-signs and re-encodes the
// full original. Cached APKs are shared and immutable.
var evilCache struct {
	sync.Mutex
	m map[evilKey]*apk.APK
}

type evilKey struct {
	orig    *apk.APK
	signer  sig.Digest
	strip   bool
	payload string
}

func repackageCached(orig *apk.APK, payload map[string][]byte, key *sig.Key, strip bool) *apk.APK {
	names := make([]string, 0, len(payload))
	for name := range payload {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		sb.WriteString(name)
		sb.WriteByte(0)
		sb.Write(payload[name])
		sb.WriteByte(0)
	}
	k := evilKey{orig, key.Certificate().Fingerprint, strip, sb.String()}
	evilCache.Lock()
	evil := evilCache.m[k]
	evilCache.Unlock()
	if evil != nil {
		return evil
	}
	evil = apk.Repackage(orig, payload, key, strip)
	evil.Encode()
	evilCache.Lock()
	if evilCache.m == nil {
		evilCache.m = make(map[evilKey]*apk.APK)
	}
	evilCache.m[k] = evil
	evilCache.Unlock()
	return evil
}

// NewTOCTOU prepares a hijack of the store described by cfg, replacing the
// genuine APK `orig` (obtained from the store beforehand) with a
// same-manifest repackage carrying cfg.Payload, signed by the malware's key.
func NewTOCTOU(mal *Malware, cfg TOCTOUConfig, orig *apk.APK) *TOCTOU {
	cfg.fill()
	evil := repackageCached(orig, cfg.Payload, mal.Key, cfg.StripDRM)
	return &TOCTOU{
		mal:      mal,
		cfg:      cfg,
		evil:     evil,
		evilData: evil.Encode(),
		cacheDir: fmt.Sprintf("/sdcard/.gia-%08x", mal.Dev.Sched.Uint32()),
		handled:  make(map[string]bool),
	}
}

// EvilAPK returns the replacement package (for assertions).
func (a *TOCTOU) EvilAPK() *apk.APK { return a.evil }

// Replacements lists the substitutions performed so far.
func (a *TOCTOU) Replacements() []Replacement {
	return append([]Replacement(nil), a.replacements...)
}

// Launch arms the attack. It returns an error only for setup failures; from
// here on the attacker reacts to filesystem events on the virtual clock.
func (a *TOCTOU) Launch() error {
	if err := a.mal.Dev.FS.MkdirAll(a.cacheDir, a.mal.UID(), vfs.ModeDir); err != nil {
		return fmt.Errorf("attack: prepare cache dir: %w", err)
	}
	if err := a.preStage(); err != nil {
		return err
	}
	switch a.cfg.Strategy {
	case StrategyFileObserver:
		a.obs = fileobserver.New(a.mal.Dev.FS, a.cfg.StagingDir, fileobserver.AllEvents, a.onEvent)
		if err := a.obs.StartWatching(); err != nil {
			return fmt.Errorf("attack: watch staging dir: %w", err)
		}
	case StrategyWaitAndSee:
		a.ticker = sim.NewTicker(a.mal.Dev.Sched, a.cfg.PollInterval, a.poll)
	default:
		return fmt.Errorf("attack: unknown strategy %v", a.cfg.Strategy)
	}
	return nil
}

// Stop disarms the attack.
func (a *TOCTOU) Stop() {
	if a.obs != nil {
		a.obs.StopWatching()
	}
	if a.ticker != nil {
		a.ticker.Stop()
	}
}

// preStage writes a fresh copy of the replacement APK into the attacker's
// hidden cache, ready to be renamed over the target in one operation.
func (a *TOCTOU) preStage() error {
	a.staged++
	path := fmt.Sprintf("%s/payload-%d.bin", a.cacheDir, a.staged)
	if err := a.mal.Dev.FS.WriteFileShared(path, a.evilData, a.mal.UID(), vfs.ModeShared); err != nil {
		return fmt.Errorf("attack: pre-stage payload: %w", err)
	}
	return nil
}

func (a *TOCTOU) stagedPath() string {
	return fmt.Sprintf("%s/payload-%d.bin", a.cacheDir, a.staged)
}

// onEvent is the FileObserver strategy's state machine: detect download
// completion (CLOSE_WRITE, or the store's MOVED_TO rename), count the
// store's verification reads, and strike after the fingerprint count.
func (a *TOCTOU) onEvent(ev fileobserver.Event) {
	if ev.Actor == a.mal.UID() {
		return // ignore our own filesystem noise
	}
	switch ev.Mask {
	case fileobserver.CloseWrite, fileobserver.MovedTo:
		if strings.HasSuffix(ev.Name, ".part") {
			return // mid-download temp file
		}
		a.candidate = ev.Path
		a.noWrites = 0
		a.armed = true
	case fileobserver.CloseNoWrite:
		if !a.armed || ev.Path != a.candidate {
			return
		}
		a.noWrites++
		if a.noWrites < a.cfg.VerifyReads {
			return
		}
		a.armed = false
		a.strike(ev.Path)
	case fileobserver.Delete:
		if ev.Path == a.candidate {
			a.armed = false // store discarded the file (re-download)
		}
	}
}

// poll is the wait-and-see strategy: look for a complete EOCD record at the
// tail of any foreign file in the staging directory, then schedule the
// replacement WaitDelay after the completion was first observed.
func (a *TOCTOU) poll(now time.Duration) bool {
	infos, err := a.mal.Dev.FS.List(a.cfg.StagingDir)
	if err != nil {
		return true // directory may not exist yet
	}
	seen := make(map[string]bool, len(infos))
	for _, info := range infos {
		if info.IsDir || info.Owner == a.mal.UID() {
			continue
		}
		path := info.Path
		seen[path] = true
		if a.handled[path] {
			continue
		}
		tail, err := a.mal.Dev.FS.ReadTail(path, 64, a.mal.UID())
		if err != nil || !apk.HasEOCD(tail) {
			continue
		}
		a.handled[path] = true
		target := path
		a.mal.Dev.Sched.AfterFn(a.cfg.WaitDelay, func() { a.strike(target) })
	}
	// Forget files that vanished so a re-download re-arms the attack.
	for path := range a.handled {
		if !seen[path] {
			delete(a.handled, path)
		}
	}
	return true
}

// strike performs the replacement after the attacker's reaction latency,
// using the configured method.
func (a *TOCTOU) strike(path string) {
	latency := a.mal.Dev.Sched.Uniform(a.cfg.ReactMin, a.cfg.ReactMax)
	a.mal.Dev.Sched.AfterFn(latency, func() {
		if err := a.replace(path); err != nil {
			// Blocked (e.g. the patched FUSE daemon) or the file moved.
			return
		}
		a.replacements = append(a.replacements, Replacement{Path: path, At: a.mal.Dev.Sched.Now()})
		// Ready the next copy in case the store re-downloads.
		_ = a.preStage()
	})
}

func (a *TOCTOU) replace(path string) error {
	fs := a.mal.Dev.FS
	switch a.cfg.Method {
	case MethodOverwrite:
		return fs.WriteFileShared(path, a.evilData, a.mal.UID(), vfs.ModeShared)
	case MethodDeleteRewrite:
		if err := fs.Remove(path, a.mal.UID()); err != nil {
			return err
		}
		return fs.WriteFileShared(path, a.evilData, a.mal.UID(), vfs.ModeShared)
	default: // MethodRename
		return fs.Rename(a.stagedPath(), path, a.mal.UID())
	}
}
