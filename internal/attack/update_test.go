package attack

import (
	"errors"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/sig"
)

const horizonDur = 2 * time.Minute

// TestUpdateHijackNuances pins down what a TOCTOU strike against an *update*
// of an installed app achieves: the PMS signature-continuity check rejects
// the attacker-signed replacement, so the outcome is a denial of the update
// rather than code execution — and a fresh install of the same app (not yet
// present) is fully hijackable, which is the paper's phishing scenario.
func TestUpdateHijackNuances(t *testing.T) {
	prof := installer.Baidu()
	s := newScenario(t, prof, 211)

	// Install v1 cleanly first.
	res := s.runAIT(t)
	if !res.Clean() {
		t.Fatalf("baseline install failed: %v", res.Err)
	}
	devCert := res.Installed.Cert

	// Publish v2 from the same developer and attack the update.
	devKey := sig.NewKey("popular-dev")
	v2 := apk.Build(apk.Manifest{
		Package: "com.popular.app", VersionCode: 2, Label: "Popular App", Icon: "icon-popular",
	}, map[string][]byte{"classes.dex": []byte("genuine-v2")}, devKey)
	s.store.Store.Publish(v2)

	atk := NewTOCTOU(s.mal, ConfigForStore(prof, StrategyFileObserver), v2)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()

	var updateRes installer.Result
	s.store.RequestInstall("com.popular.app", func(r installer.Result) { updateRes = r })
	s.dev.Sched.RunUntil(s.dev.Sched.Now() + horizonDur)

	// The replacement landed, but the PMS refused the foreign signature:
	// the update is denied, the installed v1 stays intact.
	if len(atk.Replacements()) == 0 {
		t.Fatal("attack never struck the update download")
	}
	if updateRes.Err == nil {
		t.Fatalf("attacker-signed update was installed: %+v", updateRes)
	}
	if !errors.Is(updateRes.Err, pm.ErrSignatureMismatch) {
		t.Fatalf("update err = %v, want ErrSignatureMismatch", updateRes.Err)
	}
	installed, ok := s.dev.PMS.Installed("com.popular.app")
	if !ok || installed.Manifest.VersionCode != 1 || !installed.Cert.Equal(devCert) {
		t.Fatalf("installed state corrupted: %+v", installed)
	}
}
