package attack

import (
	"fmt"
	"time"

	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/procfs"
	"github.com/ghost-installer/gia/internal/sim"
)

// Redirect is the redirect-Intent attack of Section III-D. The background
// malware polls /proc/<pid>/oom_adj of a victim app (e.g. Facebook). The
// moment the victim leaves the foreground — because it just sent the user
// to an appstore to install a companion app — the malware fires its own
// Intent at the same store activity, repainting the screen with a lookalike
// app before the user perceives the first one.
type RedirectConfig struct {
	// VictimPkg is the app whose redirection is hijacked (Facebook).
	VictimPkg string
	// StorePkg/StoreActivity identify the installer UI (Google Play's
	// AppDetails).
	StorePkg      string
	StoreActivity string
	// LookalikeAppID is the attacker's repackaged/similar app published
	// on the store, shown instead of the legitimate one.
	LookalikeAppID string
	// PollInterval is the oom_adj polling cadence.
	PollInterval time.Duration
}

// Redirect is a running redirect-Intent attack.
type Redirect struct {
	mal    *Malware
	cfg    RedirectConfig
	ticker *sim.Ticker

	sawForeground bool
	fired         int
	lastErr       error
}

// NewRedirect prepares the attack.
func NewRedirect(mal *Malware, cfg RedirectConfig) *Redirect {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 20 * time.Millisecond
	}
	return &Redirect{mal: mal, cfg: cfg}
}

// Fired reports how many racing Intents the malware has sent.
func (a *Redirect) Fired() int { return a.fired }

// LastErr reports the last send failure, if any.
func (a *Redirect) LastErr() error { return a.lastErr }

// Launch starts the oom_adj poller.
func (a *Redirect) Launch() error {
	pid, err := a.mal.Dev.Procs.PIDOf(a.cfg.VictimPkg)
	if err != nil {
		return fmt.Errorf("attack: victim process: %w", err)
	}
	a.ticker = sim.NewTicker(a.mal.Dev.Sched, a.cfg.PollInterval, func(time.Duration) bool {
		adj, err := a.mal.Dev.Procs.OOMAdj(pid)
		if err != nil {
			return false // victim died
		}
		if adj == procfs.OOMForeground {
			a.sawForeground = true
			return true
		}
		// The victim just left the foreground: if the store took its
		// place, the legitimate redirection is in flight — fire ours.
		if !a.sawForeground {
			return true
		}
		a.sawForeground = false
		if fg, ok := a.mal.Dev.Procs.Foreground(); !ok || fg != a.cfg.StorePkg {
			return true
		}
		a.fired++
		a.lastErr = a.mal.Dev.AMS.StartActivity(a.mal.Name(), intents.Intent{
			TargetPkg: a.cfg.StorePkg,
			Component: a.cfg.StoreActivity,
			Extras:    map[string]string{"appId": a.cfg.LookalikeAppID},
		})
		return true
	})
	return nil
}

// Stop disarms the poller.
func (a *Redirect) Stop() {
	if a.ticker != nil {
		a.ticker.Stop()
	}
}

// Succeeded reports whether, at perception time, the store screen shows the
// attacker's lookalike app instead of what the victim app requested.
func (a *Redirect) Succeeded() bool {
	s := a.mal.Dev.AMS.Screen()
	return s.Pkg == a.cfg.StorePkg && s.Content ==
		fmt.Sprintf("%s:details:%s", storeLabel(a.mal, a.cfg.StorePkg), a.cfg.LookalikeAppID)
}

func storeLabel(mal *Malware, pkg string) string {
	if p, ok := mal.Dev.PMS.Installed(pkg); ok {
		return p.Manifest.Label
	}
	return pkg
}
