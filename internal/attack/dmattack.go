package attack

import (
	"fmt"
	"path"
	"time"

	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

// DMSymlink is the Download Manager TOCTOU attack of Section III-C: request
// a download to a symlink that resolves somewhere legal, then re-point the
// link so the DM's privileged identity touches a file the attacker cannot.
//
// Against the legacy (4.4) DM a single retarget suffices. Against the 6.0
// recheck policy the attacker flips the link continuously, retrying until a
// flip lands inside the check-to-use gap. Against the fixed DM no number of
// retries helps.
type DMSymlink struct {
	mal *Malware
	// linkDir is the attacker-owned symlink used as the download parent.
	linkDir string
	// benignDir is where the link points while checks run.
	benignDir string
	tries     int
}

// flipPeriod is how fast the attacker's flipper toggles the link.
const flipPeriod = 300 * time.Microsecond

// attackerBait is the throwaway content the attacker's CDN serves.
var attackerBait = []byte("bait-download")

// NewDMSymlink prepares the attack directories and symlink.
func NewDMSymlink(mal *Malware) (*DMSymlink, error) {
	a := &DMSymlink{
		mal:       mal,
		linkDir:   fmt.Sprintf("/sdcard/.dl-%08x", mal.Dev.Sched.Uint32()),
		benignDir: fmt.Sprintf("/sdcard/.benign-%08x", mal.Dev.Sched.Uint32()),
	}
	if err := mal.Dev.FS.MkdirAll(a.benignDir, mal.UID(), vfs.ModeDir); err != nil {
		return nil, fmt.Errorf("attack: prepare benign dir: %w", err)
	}
	if err := mal.Dev.FS.Symlink(a.benignDir, a.linkDir, mal.UID()); err != nil {
		return nil, fmt.Errorf("attack: create symlink: %w", err)
	}
	return a, nil
}

// Tries reports how many strike attempts the last operation used.
func (a *DMSymlink) Tries() int { return a.tries }

// Steal exfiltrates targetPath — a file only the DM's identity can read,
// such as another app's private files or the DM's own database. cb receives
// the stolen bytes or the final error.
func (a *DMSymlink) Steal(targetPath string, maxTries int, cb func([]byte, error)) {
	a.run(targetPath, maxTries,
		func(id int64, inner func([]byte, error)) {
			a.mal.Dev.DM.Retrieve(a.mal.UID(), a.mal.Name(), id, inner)
		},
		func(out []byte) bool { return string(out) != string(attackerBait) },
		cb)
}

// Delete destroys targetPath using the DM's privilege (deleting
// downloads.db itself is the Play-store DoS).
func (a *DMSymlink) Delete(targetPath string, maxTries int, cb func(error)) {
	fs := a.mal.Dev.FS
	a.run(targetPath, maxTries,
		func(id int64, inner func([]byte, error)) {
			a.mal.Dev.DM.Remove(a.mal.UID(), a.mal.Name(), id, func(err error) { inner(nil, err) })
		},
		func([]byte) bool { return !fs.Exists(targetPath) },
		cb2err(cb))
}

func cb2err(cb func(error)) func([]byte, error) {
	return func(_ []byte, err error) { cb(err) }
}

// run drives the full cycle: enqueue a bait download named after the victim
// file, wait for completion (the DM's checks are then behind us), and
// strike with retries.
func (a *DMSymlink) run(targetPath string, maxTries int,
	op func(id int64, inner func([]byte, error)),
	won func(out []byte) bool,
	cb func([]byte, error),
) {
	if maxTries < 1 {
		maxTries = 1
	}
	a.tries = 0
	basename := path.Base(targetPath)
	victimDir := path.Dir(targetPath)
	fs := a.mal.Dev.FS

	var attempt func(try int)
	attempt = func(try int) {
		a.tries = try
		// Benign while the DM validates the destination at enqueue.
		if err := fs.Retarget(a.linkDir, a.benignDir, a.mal.UID()); err != nil {
			cb(nil, fmt.Errorf("attack: retarget: %w", err))
			return
		}
		id, err := a.mal.Dev.DM.Enqueue(a.mal.UID(), a.mal.Name(), attackerCDNURL(a.mal), a.linkDir+"/"+basename, nil)
		if err != nil {
			cb(nil, fmt.Errorf("attack: enqueue: %w", err))
			return
		}
		sim.NewTicker(a.mal.Dev.Sched, 20*time.Millisecond, func(time.Duration) bool {
			d, qerr := a.mal.Dev.DM.Query(id)
			if qerr != nil {
				cb(nil, qerr)
				return false
			}
			switch d.Status {
			case dm.StatusFailed:
				cb(nil, d.Err)
				return false
			case dm.StatusSuccessful:
				// fall through to the strike below
			default:
				return true // still downloading
			}
			a.strike(victimDir, id, op, func(out []byte, serr error) {
				if serr == nil && won(out) {
					cb(out, nil)
					return
				}
				if try < maxTries {
					attempt(try + 1)
					return
				}
				if serr == nil {
					serr = fmt.Errorf("attack: %d tries without landing in the gap", maxTries)
				}
				cb(nil, serr)
			})
			return false
		})
	}
	attempt(1)
}

// strike retargets the link at the victim, runs a continuous flipper, and
// fires the privileged DM operation after a random phase jitter. The jitter
// (drawn from the seeded scheduler) models the natural misalignment between
// the attacker's flip loop and the DM's internals; retries re-roll it.
func (a *DMSymlink) strike(victimDir string, id int64, op func(int64, func([]byte, error)), cb func([]byte, error)) {
	fs := a.mal.Dev.FS
	if err := fs.Retarget(a.linkDir, victimDir, a.mal.UID()); err != nil {
		cb(nil, fmt.Errorf("attack: retarget to victim: %w", err))
		return
	}
	toVictim := true
	flipper := sim.NewTicker(a.mal.Dev.Sched, flipPeriod, func(time.Duration) bool {
		toVictim = !toVictim
		target := a.benignDir
		if toVictim {
			target = victimDir
		}
		return fs.Retarget(a.linkDir, target, a.mal.UID()) == nil
	})
	jitter := a.mal.Dev.Sched.Uniform(0, 2*flipPeriod)
	a.mal.Dev.Sched.AfterFn(jitter, func() {
		op(id, func(out []byte, err error) {
			flipper.Stop()
			_ = fs.Retarget(a.linkDir, a.benignDir, a.mal.UID())
			cb(out, err)
		})
	})
}

// attackerCDNURL publishes the bait on an attacker-controlled host once and
// returns its URL.
func attackerCDNURL(mal *Malware) string {
	const host = "cdn.attacker.example"
	srv := mal.Dev.Market.Acquire(host)
	return srv.PublishRaw("bait", attackerBait)
}
