package attack

import (
	"time"

	"github.com/ghost-installer/gia/internal/installer"
)

// WaitDelayFor returns the pre-measured wait-and-see delay for a store, as
// reported in Section III-B: 2 seconds after download completion for
// DTIgnite, 500 ms for Amazon and Baidu, and a generic 500 ms elsewhere.
func WaitDelayFor(storePkg string) time.Duration {
	switch storePkg {
	case "com.dti.ignite", "com.sprint.zone":
		return 2 * time.Second
	default:
		return 500 * time.Millisecond
	}
}

// ConfigForStore derives the attacker's per-store knowledge from prior
// analysis of the target installer (the paper's "analyze the target
// appstore beforehand, figuring out its access pattern").
func ConfigForStore(prof installer.Profile, strategy Strategy) TOCTOUConfig {
	return TOCTOUConfig{
		Strategy:    strategy,
		StagingDir:  prof.StagingDir,
		VerifyReads: prof.VerifyReads,
		WaitDelay:   WaitDelayFor(prof.Package),
	}
}
