package attack

import (
	"errors"
	"fmt"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
)

// ErrHareBlocked reports that the guarded resource stayed out of reach.
var ErrHareBlocked = errors.New("attack: hare resource access denied")

// HareEscalation is the privilege-escalation path of Section III-B: the
// malware defines a permission that a platform-signed system app *uses but
// never defines* (a hanging attribute reference), then uses a Ghost
// Installer to put that system app on the device. Because the malware's
// definition came first — at protection level "normal" — the malware holds
// the permission guarding the system app's resource (user contacts for
// S-Voice/Link on the Galaxy Note 3).
type HareEscalation struct {
	mal *Malware
	// HarePerm is the hanging permission
	// (com.vlingo.midas.contacts.permission.READ in the paper).
	HarePerm string
	// VictimPkg is the Hare-creating system app.
	VictimPkg string
	// Contacts is what the guarded component protects.
	Contacts []string
}

// NewHareEscalation targets harePerm as used by victimPkg.
func NewHareEscalation(mal *Malware, harePerm, victimPkg string) *HareEscalation {
	return &HareEscalation{
		mal:       mal,
		HarePerm:  harePerm,
		VictimPkg: victimPkg,
		Contacts:  []string{"alice:+1-555-0100", "bob:+1-555-0101"},
	}
}

// DefinePermission performs the malware's half: define the hanging
// permission (normal level) and grab it. Must run before the victim app
// lands on the device.
func (h *HareEscalation) DefinePermission() error {
	reg := h.mal.Dev.PMS.Registry()
	def := perm.Definition{Name: h.HarePerm, Level: perm.Normal, DefinedBy: h.mal.Name()}
	if err := reg.Define(def); err != nil {
		return fmt.Errorf("attack: define hare perm: %w", err)
	}
	// The malware "updates itself" to request the now-defined permission;
	// at normal level the grant is automatic.
	if err := h.mal.Dev.PMS.Grant(h.mal.Name(), h.HarePerm); err != nil {
		return fmt.Errorf("attack: grant hare perm: %w", err)
	}
	return nil
}

// BuildVictimApp constructs the Hare-creating system app: signed with the
// device's platform key, using (not defining) the hanging permission, and
// exposing a contacts service guarded by it.
func (h *HareEscalation) BuildVictimApp(platformKey *sig.Key) *apk.APK {
	m := apk.Manifest{
		Package: h.VictimPkg, VersionCode: 1, Label: "S Voice",
		UsesPerms: []string{h.HarePerm},
		Components: []apk.Component{
			{Type: apk.ComponentActivity, Name: "ContactsService", Exported: true, GuardedBy: h.HarePerm},
		},
	}
	return apk.Build(m, map[string][]byte{"classes.dex": []byte("svoice")}, platformKey)
}

// RegisterVictimComponents wires the installed victim app's guarded
// contacts service into the AMS. The service hands the caller the contact
// list — legitimately reachable only by holders of the (supposedly
// vendor-controlled) permission.
func (h *HareEscalation) RegisterVictimComponents(dev *device.Device) {
	contacts := h.Contacts
	dev.AMS.RegisterActivity(h.VictimPkg, "ContactsService", true, h.HarePerm,
		func(in intents.Intent) string {
			return fmt.Sprintf("contacts:%v", contacts)
		})
}

// StealContacts exercises the escalation: the malware calls the guarded
// service. It returns the leaked screen content, or ErrHareBlocked if the
// permission guard held.
func (h *HareEscalation) StealContacts() (string, error) {
	err := h.mal.Dev.AMS.StartActivity(h.mal.Name(), intents.Intent{
		TargetPkg: h.VictimPkg, Component: "ContactsService",
	})
	if err != nil {
		if errors.Is(err, intents.ErrPermission) {
			return "", fmt.Errorf("%w: %v", ErrHareBlocked, err)
		}
		return "", err
	}
	h.mal.Dev.Run()
	s := h.mal.Dev.AMS.Screen()
	if s.Pkg != h.VictimPkg {
		return "", fmt.Errorf("attack: unexpected screen %q", s.Pkg)
	}
	return s.Content, nil
}
