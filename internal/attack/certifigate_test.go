package attack

import (
	"errors"
	"testing"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/sig"
)

const teamviewer = "com.teamviewer.quicksupport"

// certifigateScenario sets up: Xiaomi store (the GIA vector), the
// vulnerable platform-signed support app published on it, and the malware.
func certifigateScenario(t *testing.T, patched bool, seed int64) (*scenario, *Certifigate) {
	t.Helper()
	s := newScenario(t, installer.Xiaomi(), seed)
	cg := NewCertifigate(s.mal, teamviewer)

	victimAPK := cg.BuildVulnerableApp(s.dev.Profile.PlatformKey, patched)
	s.store.Store.Publish(victimAPK)

	// The malicious "plugin" the attacker wants installed with system
	// privilege.
	plugin := apk.Build(apk.Manifest{
		Package: "com.evil.plugin", VersionCode: 1, Label: "Plugin",
	}, map[string][]byte{"classes.dex": []byte("plugin")}, sig.NewKey("plugin-dev"))
	s.store.Store.Publish(plugin)

	// GIA step: the malware uses the Xiaomi push flaw to silently install
	// the (vulnerable) support app.
	n, err := s.dev.AMS.SendBroadcast(s.mal.Name(), intents.Intent{
		Action: installer.PushAction("com.xiaomi.market"),
		Extras: map[string]string{"payload": `{"jsonContent":"{\"type\":\"app\",\"appId\":\"9\",\"packageName\":\"` + teamviewer + `\"}"}`},
	})
	if err != nil || n != 1 {
		t.Fatalf("push = %d, %v", n, err)
	}
	s.dev.Run()
	p, ok := s.dev.PMS.Installed(teamviewer)
	if !ok {
		t.Fatal("support app not installed via GIA")
	}
	// Platform-signed → it holds INSTALL_PACKAGES.
	if !p.Granted("android.permission.INSTALL_PACKAGES") {
		t.Fatal("support app lacks INSTALL_PACKAGES despite the platform signature")
	}
	if err := cg.RegisterVictimComponents(s.dev, installer.Xiaomi().StoreHost); err != nil {
		t.Fatal(err)
	}
	return s, cg
}

func TestCertifigateEscalation(t *testing.T) {
	s, cg := certifigateScenario(t, false, 301)
	if err := cg.Exploit("com.evil.plugin"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.dev.PMS.Installed("com.evil.plugin"); !ok {
		t.Fatal("plugin not installed")
	}
	log := cg.InstallLog()
	if len(log) != 1 || log[0] != "com.evil.plugin" {
		t.Errorf("install log = %v", log)
	}
	// The malware itself never held INSTALL_PACKAGES.
	if s.dev.PMS.UIDHolds(s.mal.UID(), "android.permission.INSTALL_PACKAGES") {
		t.Error("malware holds INSTALL_PACKAGES — escalation unnecessary")
	}
}

func TestCertifigatePatchedAppResists(t *testing.T) {
	s, cg := certifigateScenario(t, true, 307)
	err := cg.Exploit("com.evil.plugin")
	if !errors.Is(err, ErrNotExploitable) {
		t.Fatalf("exploit on patched app = %v, want ErrNotExploitable", err)
	}
	if _, ok := s.dev.PMS.Installed("com.evil.plugin"); ok {
		t.Error("plugin installed despite the patch")
	}
}

func TestCertifigateBlockedWhenPatchedVersionPresent(t *testing.T) {
	// Fragmentation is the enabler: when the patched build is already on
	// the device, Android's same-package rule stops the downgrade. The
	// attacker side-loads the vulnerable v1 taken from another device's
	// factory image; the PMS rejects it.
	s, cg := certifigateScenario(t, true, 311)
	vuln := cg.BuildVulnerableApp(s.dev.Profile.PlatformKey, false) // v1
	if err := s.dev.FS.WriteFile("/sdcard/tv-v1.apk", vuln.Encode(), s.mal.UID(), 0); err != nil {
		t.Fatal(err)
	}
	sess, err := s.dev.PIA.Begin("/sdcard/tv-v1.apk")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Approve(); !errors.Is(err, pm.ErrVersionDowngrade) {
		t.Fatalf("downgrade install = %v, want ErrVersionDowngrade", err)
	}
}
