package dm

import (
	"errors"
	"testing"

	"github.com/ghost-installer/gia/internal/vfs"
)

func TestSetPolicyAndRepairDB(t *testing.T) {
	m, fs, sched := setup(t, PolicyLegacy, mapFetcher{"u": []byte("x")})
	if m.Policy() != PolicyLegacy {
		t.Fatalf("policy = %v", m.Policy())
	}
	m.SetPolicy(PolicyFixed)
	if m.Policy() != PolicyFixed {
		t.Fatalf("policy after set = %v", m.Policy())
	}

	// Destroy and repair the database.
	if err := fs.Remove(DBPath, vfs.System); err != nil {
		t.Fatal(err)
	}
	if m.Healthy() {
		t.Fatal("healthy after db removal")
	}
	if _, err := m.Enqueue(storeUID, "com.store", "u", "/sdcard/x", nil); !errors.Is(err, ErrDatabase) {
		t.Fatalf("enqueue with dead db = %v", err)
	}
	if err := m.RepairDB(); err != nil {
		t.Fatal(err)
	}
	if !m.Healthy() {
		t.Fatal("unhealthy after repair")
	}
	if err := fs.MkdirAll("/sdcard/dl", storeUID, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enqueue(storeUID, "com.store", "u", "/sdcard/dl/x", nil); err != nil {
		t.Fatalf("enqueue after repair = %v", err)
	}
	sched.Run()
}

func TestQueryUnknownID(t *testing.T) {
	m, _, _ := setup(t, PolicyLegacy, mapFetcher{})
	if _, err := m.Query(42); !errors.Is(err, ErrUnknownID) {
		t.Errorf("query unknown = %v", err)
	}
}

func TestRemoveRequiresOwnership(t *testing.T) {
	m, fs, sched := setup(t, PolicyLegacy, mapFetcher{"u": []byte("x")})
	if err := fs.MkdirAll("/sdcard/dl", storeUID, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	id, err := m.Enqueue(storeUID, "com.store", "u", "/sdcard/dl/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	var gotErr error
	m.Remove(attacker, "com.other", id, func(err error) { gotErr = err })
	sched.Run()
	if !errors.Is(gotErr, ErrNotOwner) {
		t.Errorf("cross-package remove = %v", gotErr)
	}
}

func TestDownloadStatusProgression(t *testing.T) {
	payload := make([]byte, 300<<10)
	m, fs, sched := setup(t, PolicyLegacy, mapFetcher{"u": payload})
	if err := fs.MkdirAll("/sdcard/dl", storeUID, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	id, err := m.Enqueue(storeUID, "com.store", "u", "/sdcard/dl/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := m.Query(id)
	if q.Status != StatusPending {
		t.Errorf("initial status = %v", q.Status)
	}
	// Step a few events: the fetch starts and chunks flow.
	for i := 0; i < 3; i++ {
		sched.Step()
	}
	q, _ = m.Query(id)
	if q.Status != StatusRunning {
		t.Errorf("mid status = %v", q.Status)
	}
	if q.BytesDone == 0 || q.BytesDone >= q.BytesTotal {
		t.Errorf("mid progress = %d/%d", q.BytesDone, q.BytesTotal)
	}
	sched.Run()
	q, _ = m.Query(id)
	if q.Status != StatusSuccessful || q.BytesDone != int64(len(payload)) {
		t.Errorf("final = %+v", q)
	}
	// The database file records the download.
	db, err := fs.ReadFile(DBPath, ManagerUID)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) == 0 {
		t.Error("empty db")
	}
}

func TestEnqueueMissingDestinationParent(t *testing.T) {
	// A destination whose parent does not exist is rejected at enqueue
	// time (the resolution check cannot complete).
	m, _, _ := setup(t, PolicyLegacy, mapFetcher{"u": []byte("x")})
	if _, err := m.Enqueue(storeUID, "com.store", "u", "/sdcard/noexist/f", nil); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("enqueue with missing parent = %v", err)
	}
}

func TestMidFlightWriteFailureMarksFailed(t *testing.T) {
	// The destination file is deleted mid-download; the next chunk write
	// recreates... no — the handle is pinned, so deleting the node makes
	// subsequent writes target an unlinked file, which still succeeds in
	// a Unix-like model. Instead, exhaust mount capacity mid-flight.
	payload := make([]byte, 300<<10)
	m, fs, sched := setup(t, PolicyLegacy, mapFetcher{"u": payload})
	if err := fs.MkdirAll("/sdcard/dl", storeUID, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mount("/sdcard", nil, 128<<10); err != nil { // half the payload
		t.Fatal(err)
	}
	var final *Download
	if _, err := m.Enqueue(storeUID, "com.store", "u", "/sdcard/dl/f", func(d *Download) { final = d }); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if final == nil || final.Status != StatusFailed || !errors.Is(final.Err, vfs.ErrNoSpace) {
		t.Errorf("final = %+v", final)
	}
}
