package dm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

const (
	storeUID vfs.UID = 10010
	attacker vfs.UID = 10666
	victim   vfs.UID = 10020
)

type mapFetcher map[string][]byte

func (f mapFetcher) Fetch(url string) ([]byte, error) {
	data, ok := f[url]
	if !ok {
		return nil, fmt.Errorf("404: %s", url)
	}
	return data, nil
}

func setup(t *testing.T, policy SymlinkPolicy, content mapFetcher) (*Manager, *vfs.FS, *sim.Scheduler) {
	t.Helper()
	sched := sim.New(1)
	fs := vfs.New(sched.Now)
	for _, dir := range []string{"/sdcard", "/data/data"} {
		if err := fs.MkdirAll(dir, vfs.Root, vfs.ModeDir); err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(fs, sched, content, Options{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return m, fs, sched
}

func TestDownloadCompletesWithContent(t *testing.T) {
	payload := make([]byte, 200<<10) // 200 KiB -> several chunks
	for i := range payload {
		payload[i] = byte(i)
	}
	m, fs, sched := setup(t, PolicyLegacy, mapFetcher{"http://cdn/app.apk": payload})
	if err := fs.MkdirAll("/sdcard/store", storeUID, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}

	var final *Download
	id, err := m.Enqueue(storeUID, "com.store", "http://cdn/app.apk", "/sdcard/store/app.apk", func(d *Download) { final = d })
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if final == nil || final.Status != StatusSuccessful {
		t.Fatalf("final = %+v", final)
	}
	if final.BytesDone != int64(len(payload)) || final.BytesTotal != int64(len(payload)) {
		t.Errorf("bytes = %d/%d", final.BytesDone, final.BytesTotal)
	}
	got, err := fs.ReadFile("/sdcard/store/app.apk", storeUID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Error("downloaded content mismatch")
	}
	// The transfer took nonzero virtual time (chunk cadence).
	if sched.Now() == 0 {
		t.Error("download completed in zero virtual time")
	}
	// Retrieval by the owner returns the bytes.
	var retrieved []byte
	m.Retrieve(storeUID, "com.store", id, func(b []byte, err error) {
		if err != nil {
			t.Errorf("retrieve: %v", err)
		}
		retrieved = b
	})
	sched.Run()
	if string(retrieved) != string(payload) {
		t.Error("retrieved content mismatch")
	}
	// Ownership is visible in Query.
	q, err := m.Query(id)
	if err != nil || q.Package != "com.store" {
		t.Errorf("query = %+v, %v", q, err)
	}
}

func TestDestinationPolicy(t *testing.T) {
	m, fs, _ := setup(t, PolicyLegacy, mapFetcher{"u": []byte("x")})
	if err := fs.MkdirAll("/data/data/com.app/cache", victim, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/data/data/com.victim/files", victim, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}

	// Own cache dir: allowed.
	if _, err := m.Enqueue(storeUID, "com.app", "u", "/data/data/com.app/cache/f", nil); err != nil {
		t.Errorf("cache dest rejected: %v", err)
	}
	// Another app's directory: rejected.
	if _, err := m.Enqueue(storeUID, "com.app", "u", "/data/data/com.victim/files/f", nil); !errors.Is(err, ErrUnauthorizedDest) {
		t.Errorf("foreign dest = %v, want ErrUnauthorizedDest", err)
	}
	// System paths: rejected.
	if err := fs.MkdirAll("/data/system", vfs.Root, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enqueue(storeUID, "com.app", "u", "/data/system/f", nil); !errors.Is(err, ErrUnauthorizedDest) {
		t.Errorf("system dest = %v, want ErrUnauthorizedDest", err)
	}
}

func TestIDBoundToPackage(t *testing.T) {
	m, fs, sched := setup(t, PolicyLegacy, mapFetcher{"u": []byte("data")})
	if err := fs.MkdirAll("/sdcard/dl", storeUID, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	id, err := m.Enqueue(storeUID, "com.store", "u", "/sdcard/dl/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()

	var gotErr error
	m.Retrieve(attacker, "com.other", id, func(_ []byte, err error) { gotErr = err })
	sched.Run()
	if !errors.Is(gotErr, ErrNotOwner) {
		t.Errorf("cross-package retrieve = %v, want ErrNotOwner", gotErr)
	}
	m.Retrieve(storeUID, "com.store", 999, func(_ []byte, err error) { gotErr = err })
	sched.Run()
	if !errors.Is(gotErr, ErrUnknownID) {
		t.Errorf("unknown id = %v, want ErrUnknownID", gotErr)
	}
}

func TestRetrieveBeforeCompleteFails(t *testing.T) {
	m, fs, sched := setup(t, PolicyLegacy, mapFetcher{"u": make([]byte, 1<<20)})
	if err := fs.MkdirAll("/sdcard/dl", storeUID, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	id, err := m.Enqueue(storeUID, "com.store", "u", "/sdcard/dl/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	m.Retrieve(storeUID, "com.store", id, func(_ []byte, err error) { gotErr = err })
	if !errors.Is(gotErr, ErrNotComplete) {
		t.Errorf("early retrieve = %v, want ErrNotComplete", gotErr)
	}
	sched.Run()
}

func TestFetchFailureMarksFailed(t *testing.T) {
	m, fs, sched := setup(t, PolicyLegacy, mapFetcher{})
	if err := fs.MkdirAll("/sdcard/dl", storeUID, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	var final *Download
	if _, err := m.Enqueue(storeUID, "com.store", "http://gone", "/sdcard/dl/f", func(d *Download) { final = d }); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if final == nil || final.Status != StatusFailed || final.Err == nil {
		t.Errorf("final = %+v", final)
	}
}

// setupSymlinkAttack prepares the Section III-C scenario: the attacker owns
// /sdcard/atk, creates the symlink /sdcard/dl -> /sdcard/atk, and a victim
// secret lives at /data/data/com.victim/files/secret.
func setupSymlinkAttack(t *testing.T, policy SymlinkPolicy) (*Manager, *vfs.FS, *sim.Scheduler, int64) {
	t.Helper()
	m, fs, sched := setup(t, policy, mapFetcher{"u": []byte("downloaded")})
	if err := fs.MkdirAll("/sdcard/atk", attacker, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/data/data/com.victim/files", victim, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/data/com.victim/files/secret", []byte("play-url-tokens"), victim, vfs.ModePrivate); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/sdcard/atk", "/sdcard/dl", attacker); err != nil {
		t.Fatal(err)
	}
	// Enqueue passes: /sdcard/dl resolves inside the SD card.
	id, err := m.Enqueue(attacker, "com.attacker", "u", "/sdcard/dl/secret", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	return m, fs, sched, id
}

func TestLegacySymlinkRetrieveStealsFile(t *testing.T) {
	m, fs, sched, id := setupSymlinkAttack(t, PolicyLegacy)
	// After the check (enqueue) the attacker re-points the link at the
	// victim's private directory.
	if err := fs.Retarget("/sdcard/dl", "/data/data/com.victim/files", attacker); err != nil {
		t.Fatal(err)
	}
	var stolen []byte
	m.Retrieve(attacker, "com.attacker", id, func(b []byte, err error) {
		if err != nil {
			t.Errorf("retrieve: %v", err)
		}
		stolen = b
	})
	sched.Run()
	if string(stolen) != "play-url-tokens" {
		t.Errorf("stolen = %q — the 4.4 DM must leak the victim file", stolen)
	}
}

func TestLegacySymlinkRemoveDeletesDMDatabase(t *testing.T) {
	m, fs, sched, id := setupSymlinkAttack(t, PolicyLegacy)
	// Point the link at the DM's own database directory; the stored dest
	// basename must match, so use a fresh download named downloads.db.
	if err := fs.Retarget("/sdcard/dl", "/sdcard/atk", attacker); err != nil {
		t.Fatal(err)
	}
	_ = id
	id2, err := m.Enqueue(attacker, "com.attacker", "u", "/sdcard/dl/downloads.db", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if err := fs.Retarget("/sdcard/dl", "/data/data/com.android.providers.downloads/databases", attacker); err != nil {
		t.Fatal(err)
	}
	var removeErr error
	m.Remove(attacker, "com.attacker", id2, func(err error) { removeErr = err })
	sched.Run()
	if removeErr != nil {
		t.Fatalf("remove: %v", removeErr)
	}
	if m.Healthy() {
		t.Fatal("DM database survived — the DoS on Play must succeed on 4.4")
	}
	// Every later client is now denied service.
	if _, err := m.Enqueue(storeUID, "com.android.vending", "u", "/sdcard/atk/x", nil); !errors.Is(err, ErrDatabase) {
		t.Errorf("post-DoS enqueue = %v, want ErrDatabase", err)
	}
}

func TestRecheckPolicyStopsStaticRetarget(t *testing.T) {
	m, fs, sched, id := setupSymlinkAttack(t, PolicyRecheck)
	if err := fs.Retarget("/sdcard/dl", "/data/data/com.victim/files", attacker); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	m.Retrieve(attacker, "com.attacker", id, func(_ []byte, err error) { gotErr = err })
	sched.Run()
	if !errors.Is(gotErr, ErrUnauthorizedDest) {
		t.Errorf("static retarget on 6.0 = %v, want ErrUnauthorizedDest", gotErr)
	}
}

func TestRecheckPolicyGapExploitedByFlipper(t *testing.T) {
	m, fs, sched, id := setupSymlinkAttack(t, PolicyRecheck)

	// The attacker continuously flips the link. To demonstrate the gap
	// deterministically, flip to the victim path right after the check:
	// the check at time t sees the benign target; the operation at
	// t+RecheckGap dereferences the malicious one.
	var stolen []byte
	var gotErr error
	m.Retrieve(attacker, "com.attacker", id, func(b []byte, err error) { stolen, gotErr = b, err })
	// The callback has not run yet: the op is scheduled after the gap.
	if stolen != nil || gotErr != nil {
		t.Fatal("recheck policy completed synchronously; no gap to exploit")
	}
	if err := fs.Retarget("/sdcard/dl", "/data/data/com.victim/files", attacker); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if gotErr != nil {
		t.Fatalf("retrieve: %v", gotErr)
	}
	if string(stolen) != "play-url-tokens" {
		t.Errorf("stolen = %q — the 6.0 gap must be exploitable", stolen)
	}
}

func TestFixedPolicyImmuneToFlipper(t *testing.T) {
	m, fs, sched, id := setupSymlinkAttack(t, PolicyFixed)

	var stolen []byte
	var gotErr error
	m.Retrieve(attacker, "com.attacker", id, func(b []byte, err error) { stolen, gotErr = b, err })
	// Even an instant flip cannot help: the fixed policy already
	// dereferenced and operated atomically.
	if err := fs.Retarget("/sdcard/dl", "/data/data/com.victim/files", attacker); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if gotErr != nil {
		t.Fatalf("retrieve: %v", gotErr)
	}
	if string(stolen) != "downloaded" {
		t.Errorf("retrieve returned %q, want the legitimately downloaded bytes", stolen)
	}
	if !m.Healthy() {
		t.Error("database damaged under the fixed policy")
	}
}

func TestRemoveMarksRemoved(t *testing.T) {
	m, fs, sched := setup(t, PolicyFixed, mapFetcher{"u": []byte("x")})
	if err := fs.MkdirAll("/sdcard/dl", storeUID, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	id, err := m.Enqueue(storeUID, "com.store", "u", "/sdcard/dl/f", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()
	var removeErr error
	m.Remove(storeUID, "com.store", id, func(err error) { removeErr = err })
	sched.Run()
	if removeErr != nil {
		t.Fatal(removeErr)
	}
	if fs.Exists("/sdcard/dl/f") {
		t.Error("file survives Remove")
	}
	q, _ := m.Query(id)
	if q.Status != StatusRemoved {
		t.Errorf("status = %v", q.Status)
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyLegacy.String() == "" || PolicyRecheck.String() == "" || PolicyFixed.String() == "" {
		t.Error("empty policy name")
	}
	for _, s := range []Status{StatusPending, StatusRunning, StatusSuccessful, StatusFailed, StatusRemoved} {
		if s.String() == "" {
			t.Errorf("empty status name for %d", s)
		}
	}
	if time.Duration(0) != 0 { // keep time import honest
		t.Fatal()
	}
}
