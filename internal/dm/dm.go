// Package dm models the AOSP Download Manager (AIT Step 2) together with
// the symbolic-link TOCTOU weakness of Section III-C.
//
// The manager enforces the real service's security policy: each download ID
// is bound to the requesting package, and the destination must resolve to
// external storage or the caller's cache directory. The flaw is *when* the
// symlink resolution happens relative to when the path is used:
//
//   - PolicyLegacy (Android 4.4): the destination is checked at enqueue
//     time only. Retrieve and Remove later dereference the stored path with
//     the Download Manager's own privileged identity — an attacker who
//     re-points a symlink after the check reads or deletes arbitrary files
//     the DM can access, including the DM's own database.
//   - PolicyRecheck (Android 6.0): the physical path is re-checked right
//     before each request is processed, but a gap remains between the check
//     and the actual operation; a process continuously flipping the link
//     can land a flip inside the gap.
//   - PolicyFixed (the fix shipped after the authors' report): the path is
//     resolved once and the *resolved physical path* is used, atomically.
package dm

import (
	"errors"
	"fmt"
	"path"
	"strings"
	"time"

	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

// SymlinkPolicy selects the destination-path handling behaviour.
type SymlinkPolicy int

// Policies, in historical order.
const (
	PolicyLegacy SymlinkPolicy = iota + 1
	PolicyRecheck
	PolicyFixed
)

func (p SymlinkPolicy) String() string {
	switch p {
	case PolicyLegacy:
		return "legacy-4.4"
	case PolicyRecheck:
		return "recheck-6.0"
	case PolicyFixed:
		return "fixed"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Status of a download.
type Status int

// Download states.
const (
	StatusPending Status = iota + 1
	StatusRunning
	StatusSuccessful
	StatusFailed
	StatusRemoved
)

func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusRunning:
		return "running"
	case StatusSuccessful:
		return "successful"
	case StatusFailed:
		return "failed"
	case StatusRemoved:
		return "removed"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Errors returned by the manager.
var (
	ErrUnauthorizedDest = errors.New("dm: destination outside /sdcard and the caller's cache directory")
	ErrNotOwner         = errors.New("dm: download id belongs to another package")
	ErrUnknownID        = errors.New("dm: unknown download id")
	ErrNotComplete      = errors.New("dm: download not complete")
	ErrDatabase         = errors.New("dm: downloads database unavailable")
)

// DBPath is where the manager keeps its database — the high-value deletion
// target of the Section III-C denial-of-service attack on Google Play.
const DBPath = "/data/data/com.android.providers.downloads/databases/downloads.db"

// ManagerUID is the Download Manager's own Linux identity. It is a system
// UID: acquiring its file-access privilege is the point of the attack.
const ManagerUID vfs.UID = 1001

// Fetcher retrieves remote content by URL (implemented by the market).
type Fetcher interface {
	Fetch(url string) ([]byte, error)
}

// Download is one enqueue request and its state.
type Download struct {
	ID         int64
	Package    string
	Caller     vfs.UID
	URL        string
	Dest       string
	Status     Status
	BytesTotal int64
	BytesDone  int64
	Err        error
}

// Options configure a Manager.
type Options struct {
	Policy SymlinkPolicy
	// ChunkSize and BytesPerSec define the simulated transfer cadence.
	ChunkSize   int64
	BytesPerSec int64
	// RecheckGap is the virtual-time distance between the 6.0 policy's
	// path re-check and the actual file operation.
	RecheckGap time.Duration
}

func (o *Options) fill() {
	if o.Policy == 0 {
		o.Policy = PolicyLegacy
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 64 << 10
	}
	if o.BytesPerSec <= 0 {
		o.BytesPerSec = 4 << 20
	}
	if o.RecheckGap <= 0 {
		o.RecheckGap = 500 * time.Microsecond
	}
}

// Manager is the Download Manager service.
type Manager struct {
	fs    *vfs.FS
	sched *sim.Scheduler
	fetch Fetcher
	opts  Options

	downloads   map[int64]*Download
	nextID      int64
	initialized bool
	injector    fault.Injector
}

// SetFaultInjector installs (or, with nil, removes) the fault hook probed on
// each remote fetch (fault.SiteDMFetch) and each chunk write
// (fault.SiteDMChunk). Chunk faults model the transfer pathologies the AIT
// must survive: error fails the download, delay stretches it, and truncate
// ends it early while still reporting success — a silently truncated
// download landing in the staging directory.
func (m *Manager) SetFaultInjector(fi fault.Injector) { m.injector = fi }

func (m *Manager) probe(site fault.Site, subject string) fault.Action {
	if m.injector == nil {
		return fault.None
	}
	return m.injector.Probe(site, subject, m.sched.Now())
}

// New creates a Manager and initializes its database file.
func New(fs *vfs.FS, sched *sim.Scheduler, fetch Fetcher, opts Options) (*Manager, error) {
	opts.fill()
	m := &Manager{
		fs:        fs,
		sched:     sched,
		fetch:     fetch,
		opts:      opts,
		downloads: make(map[int64]*Download),
		nextID:    1,
	}
	if err := fs.MkdirAll(path.Dir(DBPath), ManagerUID, vfs.ModeDir); err != nil {
		return nil, fmt.Errorf("dm: prepare database dir: %w", err)
	}
	if err := m.persistDB(); err != nil {
		return nil, err
	}
	m.initialized = true
	return m, nil
}

// Reset discards all download state and re-initializes the database file,
// restoring the boot-time options (experiments mutate the policy through
// SetPolicy). The filesystem must already be reset: like New, Reset
// recreates the database directory and file from scratch.
func (m *Manager) Reset(opts Options) error {
	opts.fill()
	m.opts = opts
	m.downloads = make(map[int64]*Download)
	m.nextID = 1
	m.injector = nil
	m.initialized = false
	if err := m.fs.MkdirAll(path.Dir(DBPath), ManagerUID, vfs.ModeDir); err != nil {
		return fmt.Errorf("dm: prepare database dir: %w", err)
	}
	if err := m.persistDB(); err != nil {
		return err
	}
	m.initialized = true
	return nil
}

// RepairDB recreates a destroyed downloads database (factory reset in the
// real world). Used by experiments to restore service between runs.
func (m *Manager) RepairDB() error {
	m.initialized = false
	err := m.persistDB()
	m.initialized = true
	return err
}

// Policy reports the active symlink policy.
func (m *Manager) Policy() SymlinkPolicy { return m.opts.Policy }

// SetPolicy switches the symlink policy (used by the experiments).
func (m *Manager) SetPolicy(p SymlinkPolicy) { m.opts.Policy = p }

// Healthy reports whether the downloads database still exists. Deleting it
// through the symlink attack leaves every DM client (notably the Play
// store) unable to download.
func (m *Manager) Healthy() bool { return m.fs.Exists(DBPath) }

// persistDB writes the database file after every state change. Once the
// database has been destroyed (the DoS of Section III-C), the manager does
// not resurrect it: real clients see a dead service until it is repaired.
func (m *Manager) persistDB() error {
	if m.initialized && !m.fs.Exists(DBPath) {
		return ErrDatabase
	}
	var b strings.Builder
	b.WriteString("downloads.db v1\n")
	for id := int64(1); id < m.nextID; id++ {
		d, ok := m.downloads[id]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%d|%s|%s|%s|%s|%d/%d\n",
			d.ID, d.Package, d.URL, d.Dest, d.Status, d.BytesDone, d.BytesTotal)
	}
	if err := m.fs.WriteFile(DBPath, []byte(b.String()), ManagerUID, vfs.ModePrivate); err != nil {
		return fmt.Errorf("dm: persist database: %w", err)
	}
	return nil
}

// authorized reports whether a *resolved* destination path is one the
// caller may use: external storage or the caller's own cache directory.
func authorized(resolved, pkg string) bool {
	if strings.HasPrefix(resolved, "/sdcard/") {
		return true
	}
	cache := "/data/data/" + pkg + "/cache/"
	return strings.HasPrefix(resolved, cache)
}

// resolveDest resolves the destination's parent directory (the file itself
// may not exist yet) and returns the resolved full path.
func (m *Manager) resolveDest(dest string) (string, error) {
	parent, err := m.fs.Resolve(path.Dir(dest))
	if err != nil {
		return "", err
	}
	return parent + "/" + path.Base(dest), nil
}

// Enqueue registers a download on behalf of caller/pkg and starts the
// simulated transfer. done (optional) fires when the download reaches a
// terminal state.
//
// The destination check happens HERE, against the path as it resolves NOW.
func (m *Manager) Enqueue(caller vfs.UID, pkg, url, dest string, done func(*Download)) (int64, error) {
	if !m.Healthy() {
		return 0, ErrDatabase
	}
	resolved, err := m.resolveDest(dest)
	if err != nil {
		return 0, fmt.Errorf("dm: resolve destination: %w", err)
	}
	if !authorized(resolved, pkg) {
		return 0, fmt.Errorf("%s resolves to %s: %w", dest, resolved, ErrUnauthorizedDest)
	}
	d := &Download{
		ID:      m.nextID,
		Package: pkg,
		Caller:  caller,
		URL:     url,
		Dest:    dest,
		Status:  StatusPending,
	}
	m.nextID++
	m.downloads[d.ID] = d
	if err := m.persistDB(); err != nil {
		return 0, err
	}
	m.sched.AfterFn(0, func() { m.start(d, done) })
	return d.ID, nil
}

func (m *Manager) start(d *Download, done func(*Download)) {
	if act := m.probe(fault.SiteDMFetch, d.URL); act.Kind == fault.KindError {
		m.finish(d, fmt.Errorf("dm: fetch %s: %w", d.URL, act.Err), done)
		return
	}
	data, err := m.fetch.Fetch(d.URL)
	if err != nil {
		m.finish(d, fmt.Errorf("dm: fetch %s: %w", d.URL, err), done)
		return
	}
	d.BytesTotal = int64(len(data))
	d.Status = StatusRunning
	_ = m.persistDB()
	// The destination file is written with the *caller's* identity: the
	// resulting file belongs to the requesting app (which is what the
	// patched FUSE daemon records as the APK owner).
	h, err := m.fs.Open(d.Dest, d.Caller, vfs.FlagWrite|vfs.FlagCreate|vfs.FlagTrunc, vfs.ModeShared)
	if err != nil {
		m.finish(d, fmt.Errorf("dm: open destination: %w", err), done)
		return
	}
	m.writeChunks(d, h, data, done)
}

func (m *Manager) writeChunks(d *Download, h *vfs.Handle, rest []byte, done func(*Download)) {
	if len(rest) == 0 {
		if err := h.Close(); err != nil {
			m.finish(d, err, done)
			return
		}
		m.finish(d, nil, done)
		return
	}
	n := m.opts.ChunkSize
	if int64(len(rest)) < n {
		n = int64(len(rest))
	}
	chunkTime := time.Duration(float64(n) / float64(m.opts.BytesPerSec) * float64(time.Second))
	switch act := m.probe(fault.SiteDMChunk, d.Dest); act.Kind {
	case fault.KindError:
		_ = h.Close()
		m.finish(d, fmt.Errorf("dm: write chunk: %w", act.Err), done)
		return
	case fault.KindDelay:
		chunkTime += act.Delay
	case fault.KindTruncate:
		// The transfer ends here but nothing notices: what has arrived
		// stays on disk and the download is reported successful.
		if err := h.Close(); err != nil {
			m.finish(d, err, done)
			return
		}
		m.finish(d, nil, done)
		return
	}
	fp := sim.Footprint{}
	if int64(len(rest)) > n && m.chunksTaggable() {
		// A non-final chunk event is confined to the destination's
		// directory: its callback writes into the open handle (or closes it
		// when the download was removed mid-flight) and schedules the next
		// chunk strictly later — the final chunk, which closes the file,
		// rewrites the DM database and runs the completion callback, stays
		// opaque. The write's own failure modes (injected vfs faults, a
		// full mount, a watcher with an arbitrary callback) are revalidated
		// at dispatch time by the device's sim.FootprintCheck.
		fp = sim.Footprint{Kind: sim.FootVFS, Key: path.Dir(h.Path())}
	}
	m.sched.AfterFnTagged(chunkTime, fp, func() {
		if d.Status != StatusRunning { // removed mid-flight
			_ = h.Close()
			return
		}
		if _, err := h.Write(rest[:n]); err != nil {
			_ = h.Close()
			m.finish(d, fmt.Errorf("dm: write chunk: %w", err), done)
			return
		}
		d.BytesDone += n
		m.writeChunks(d, h, rest[n:], done)
	})
}

// chunksTaggable reports whether chunk-write events may carry a vfs
// footprint for partial-order reduction. It requires that no fault rule is
// armed at the chunk site — an injected error or truncate finishes the
// download inline, with effects (database rewrite, completion callback) far
// outside the destination directory — and that even a 1-byte chunk takes
// nonzero virtual time, so a tagged chunk's callback never schedules a
// follow-up at the same instant (the sim tagging contract).
func (m *Manager) chunksTaggable() bool {
	return m.opts.BytesPerSec < int64(time.Second) &&
		!fault.Armed(m.injector, fault.SiteDMChunk)
}

func (m *Manager) finish(d *Download, err error, done func(*Download)) {
	if err != nil {
		d.Status = StatusFailed
		d.Err = err
	} else {
		d.Status = StatusSuccessful
	}
	_ = m.persistDB()
	if done != nil {
		done(d)
	}
}

// Query returns a snapshot of the download's state.
func (m *Manager) Query(id int64) (Download, error) {
	d, ok := m.downloads[id]
	if !ok {
		return Download{}, fmt.Errorf("%d: %w", id, ErrUnknownID)
	}
	return *d, nil
}

// Retrieve hands the downloaded bytes to the owning package. cb receives
// the content or an error once the (policy-dependent) processing completes.
//
// The file read is performed with the Download Manager's own identity —
// that privilege, combined with late symlink dereference, is what the
// attacker steals.
func (m *Manager) Retrieve(caller vfs.UID, pkg string, id int64, cb func([]byte, error)) {
	d, err := m.owned(caller, pkg, id)
	if err != nil {
		cb(nil, err)
		return
	}
	if d.Status != StatusSuccessful {
		cb(nil, fmt.Errorf("%d is %s: %w", id, d.Status, ErrNotComplete))
		return
	}
	m.operate(d, cb, func(target string) ([]byte, error) {
		return m.fs.ReadFile(target, ManagerUID)
	})
}

// Remove deletes the downloaded file and the database row. Like Retrieve,
// the deletion runs with the manager's identity and policy-dependent
// symlink handling.
func (m *Manager) Remove(caller vfs.UID, pkg string, id int64, cb func(error)) {
	d, err := m.owned(caller, pkg, id)
	if err != nil {
		cb(err)
		return
	}
	m.operate(d, func(_ []byte, err error) {
		if err == nil {
			d.Status = StatusRemoved
			_ = m.persistDB()
		}
		cb(err)
	}, func(target string) ([]byte, error) {
		return nil, m.fs.Remove(target, ManagerUID)
	})
}

// operate applies op to the download's destination under the active
// symlink policy and delivers the result through cb.
func (m *Manager) operate(d *Download, cb func([]byte, error), op func(target string) ([]byte, error)) {
	switch m.opts.Policy {
	case PolicyLegacy:
		// No re-check at all: dereference the stored path now.
		out, err := op(d.Dest)
		cb(out, err)
	case PolicyRecheck:
		// Check the physical path right before processing the request —
		// then process a beat later, leaving the exploitable gap.
		resolved, err := m.resolveDest(d.Dest)
		if err != nil {
			cb(nil, fmt.Errorf("dm: recheck: %w", err))
			return
		}
		if !authorized(resolved, d.Package) {
			cb(nil, fmt.Errorf("recheck of %s found %s: %w", d.Dest, resolved, ErrUnauthorizedDest))
			return
		}
		m.sched.AfterFn(m.opts.RecheckGap, func() {
			out, err := op(d.Dest) // dereferences AGAIN — the gap
			cb(out, err)
		})
	case PolicyFixed:
		// Resolve once, verify, and operate on the resolved physical
		// path. No second dereference exists to race against.
		resolved, err := m.resolveDest(d.Dest)
		if err != nil {
			cb(nil, fmt.Errorf("dm: resolve: %w", err))
			return
		}
		if !authorized(resolved, d.Package) {
			cb(nil, fmt.Errorf("%s resolves to %s: %w", d.Dest, resolved, ErrUnauthorizedDest))
			return
		}
		out, err := op(resolved)
		cb(out, err)
	default:
		cb(nil, fmt.Errorf("dm: unknown policy %v", m.opts.Policy))
	}
}

func (m *Manager) owned(caller vfs.UID, pkg string, id int64) (*Download, error) {
	d, ok := m.downloads[id]
	if !ok {
		return nil, fmt.Errorf("%d: %w", id, ErrUnknownID)
	}
	if d.Package != pkg || d.Caller != caller {
		return nil, fmt.Errorf("%d requested by %s/%d: %w", id, pkg, caller, ErrNotOwner)
	}
	return d, nil
}
