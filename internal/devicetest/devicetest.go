// Package devicetest is the reset-equivalence harness behind the device
// arena: it proves that driving a scenario on an arena-reset device is
// byte-for-byte indistinguishable from driving it on a freshly booted one.
// Everything observable goes into a Fingerprint — the drive's own
// transcript (timelines, attack results, replay tokens), the device
// snapshot, the scheduler's state digest and a tail of the random stream —
// and CompareBootReset diffs the fingerprints of the two paths.
package devicetest

import (
	"fmt"
	"strings"

	"github.com/ghost-installer/gia/internal/arena"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/sim"
)

// Drive prepares and executes one deterministic scenario on dev — deploy
// apps, launch attacks, drive the virtual clock — and returns a textual
// transcript of everything the scenario observed (AIT results, rendered
// timelines, chaos replay tokens). Transcripts are compared byte-for-byte
// between a fresh boot and a reset device, so a Drive must derive every
// byte from device state and its own constants, never from wall time or
// global randomness.
type Drive func(dev *device.Device) (string, error)

// rngTail is how many post-drive random draws go into the fingerprint.
// Matching draws pin the stream *position*, not just the seed: a reset
// device that consumed one extra or one fewer random number during the
// drive diverges here even if everything else lined up.
const rngTail = 32

// Fingerprint is the complete observable outcome of one drive.
type Fingerprint struct {
	// Transcript is what the Drive returned.
	Transcript string
	// Snapshot is the rendered device.Snapshot after the drive.
	Snapshot string
	// Sched digests the scheduler: virtual clock, event sequence counter
	// and the live pending set (representation-independent).
	Sched sim.Fingerprint
	// RNG is the next rngTail draws of the scheduler's random stream.
	RNG string
}

// Capture runs drive on dev and fingerprints the outcome. It consumes
// rngTail random draws after the drive, so the device is not pristine
// afterwards — release it to an arena (or discard it) rather than reusing
// it directly.
func Capture(dev *device.Device, drive Drive) (Fingerprint, error) {
	out, err := drive(dev)
	if err != nil {
		return Fingerprint{}, err
	}
	var rng strings.Builder
	for i := 0; i < rngTail; i++ {
		fmt.Fprintf(&rng, "%d.", dev.Sched.Uint32())
	}
	return Fingerprint{
		Transcript: out,
		Snapshot:   fmt.Sprintf("%+v", dev.Snapshot()),
		Sched:      dev.Sched.Fingerprint(),
		RNG:        rng.String(),
	}, nil
}

// Diff reports every divergence between the fresh-boot fingerprint and the
// reset fingerprint, one labelled first-difference per section, or "" when
// they are identical.
func Diff(fresh, reset Fingerprint) string {
	var b strings.Builder
	diffText(&b, "transcript", fresh.Transcript, reset.Transcript)
	diffText(&b, "snapshot", fresh.Snapshot, reset.Snapshot)
	if fresh.Sched != reset.Sched {
		fmt.Fprintf(&b, "scheduler:\n  fresh: %+v\n  reset: %+v\n", fresh.Sched, reset.Sched)
	}
	diffText(&b, "rng stream", fresh.RNG, reset.RNG)
	return b.String()
}

// diffText writes the first differing line of a labelled section.
func diffText(b *strings.Builder, label, fresh, reset string) {
	if fresh == reset {
		return
	}
	fl, rl := strings.Split(fresh, "\n"), strings.Split(reset, "\n")
	for i := 0; i < len(fl) || i < len(rl); i++ {
		f, r := lineAt(fl, i), lineAt(rl, i)
		if f != r {
			fmt.Fprintf(b, "%s line %d:\n  fresh: %s\n  reset: %s\n", label, i+1, f, r)
			return
		}
	}
	// Same lines, different bytes (trailing newline): still report it.
	fmt.Fprintf(b, "%s: differs only in trailing bytes (fresh %d bytes, reset %d bytes)\n", label, len(fresh), len(reset))
}

func lineAt(lines []string, i int) string {
	if i < len(lines) {
		return lines[i]
	}
	return "<missing>"
}

// CompareBootReset proves drive is reset-equivalent on profile: it drives
// a freshly booted device under seed, then takes the arena path — boot
// (pool miss), dirty the device with a full drive under dirtySeed, release,
// re-acquire under seed (pool hit, reset in place) — drives again, and
// returns a descriptive error on any fingerprint divergence. It also fails
// if the arena booted instead of resetting, which would silently weaken the
// equivalence being tested.
func CompareBootReset(profile device.Profile, seed, dirtySeed int64, drive Drive) error {
	profile.Seed = seed
	fresh, err := device.Boot(profile)
	if err != nil {
		return fmt.Errorf("devicetest: boot fresh device: %w", err)
	}
	want, err := Capture(fresh, drive)
	if err != nil {
		return fmt.Errorf("devicetest: drive fresh device: %w", err)
	}

	ar := arena.New(profile)
	dirty, err := ar.Acquire(dirtySeed)
	if err != nil {
		return fmt.Errorf("devicetest: arena boot: %w", err)
	}
	if _, err := Capture(dirty, drive); err != nil {
		return fmt.Errorf("devicetest: dirtying drive: %w", err)
	}
	ar.Release(dirty)
	reused, err := ar.Acquire(seed)
	if err != nil {
		return fmt.Errorf("devicetest: arena reset: %w", err)
	}
	if reused != dirty {
		return fmt.Errorf("devicetest: arena booted a fresh device instead of resetting the pooled one")
	}
	got, err := Capture(reused, drive)
	if err != nil {
		return fmt.Errorf("devicetest: drive reset device: %w", err)
	}
	if d := Diff(want, got); d != "" {
		return fmt.Errorf("devicetest: reset device diverged from fresh boot:\n%s", d)
	}
	return nil
}
