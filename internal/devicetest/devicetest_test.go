package devicetest_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/defense"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/devicetest"
	"github.com/ghost-installer/gia/internal/experiment"
	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/timeline"
	"github.com/ghost-installer/gia/internal/vfs"
)

// The two seeds every cell compares across: the fresh boot and the final
// arena acquisition use compareSeed, the dirtying run uses dirtySeed, so
// the reset must scrub a genuinely different execution's state.
const (
	compareSeed = 41
	dirtySeed   = 1009
)

const horizon = 2 * time.Minute

// report writes a defense's observable verdict into the drive transcript.
type report func(b *strings.Builder)

// defenseCase arms one Section V defense on an arbitrary device. watchDirs
// is the staging surface DAPP should observe in this scenario.
type defenseCase struct {
	name  string
	apply func(dev *device.Device, watchDirs []string) (report, error)
}

func defenses() []defenseCase {
	return []defenseCase{
		{name: "none", apply: func(*device.Device, []string) (report, error) {
			return nil, nil
		}},
		{name: "dapp", apply: func(dev *device.Device, watchDirs []string) (report, error) {
			d, err := defense.Deploy(dev, watchDirs)
			if err != nil {
				return nil, err
			}
			return func(b *strings.Builder) {
				fmt.Fprintf(b, "dapp alerts=%d thwarted=%v\n", len(d.Alerts()), d.Thwarted(experiment.TargetPackage))
			}, nil
		}},
		{name: "fuse-patch", apply: func(dev *device.Device, _ []string) (report, error) {
			dev.Fuse.SetPatched(true)
			return nil, nil
		}},
		{name: "intent-detection", apply: func(dev *device.Device, _ []string) (report, error) {
			dev.AMS.Firewall().EnableDetection(true)
			return func(b *strings.Builder) {
				fmt.Fprintf(b, "firewall alerts=%d\n", len(dev.AMS.Firewall().Alerts()))
			}, nil
		}},
		{name: "intent-origin", apply: func(dev *device.Device, _ []string) (report, error) {
			dev.AMS.Firewall().EnableOrigin(true)
			return func(b *strings.Builder) {
				fmt.Fprintf(b, "firewall alerts=%d\n", len(dev.AMS.Firewall().Alerts()))
			}, nil
		}},
	}
}

// toctouDrive runs the Section III-B installation hijack: store scenario,
// TOCTOU attack with the given strategy, one AIT, timeline over the staging
// dir and the package stream.
func toctouDrive(prof installer.Profile, strategy attack.Strategy) func(defenseCase) devicetest.Drive {
	return func(def defenseCase) devicetest.Drive {
		return func(dev *device.Device) (string, error) {
			var b strings.Builder
			tl := timeline.New(dev.Sched.Now)
			defer tl.Close()
			s, err := experiment.NewScenarioOn(dev, prof)
			if err != nil {
				return "", err
			}
			rep, err := def.apply(dev, []string{prof.StagingDir})
			if err != nil {
				return "", err
			}
			if err := tl.WatchFS(dev.FS, prof.StagingDir); err != nil {
				return "", err
			}
			tl.WatchPackages(dev.PMS)
			tl.WatchFirewall(dev.AMS.Firewall())
			atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, strategy), s.Target)
			if err := atk.Launch(); err != nil {
				return "", err
			}
			res := s.RunAIT()
			atk.Stop()
			tl.RecordAIT(res)
			fmt.Fprintf(&b, "hijacked=%v attempts=%d replacements=%d err=%v\n",
				res.Hijacked, res.Attempts, len(atk.Replacements()), res.Err)
			if rep != nil {
				rep(&b)
			}
			if err := tl.Render(&b); err != nil {
				return "", err
			}
			return b.String(), nil
		}
	}
}

// dmDrive runs the Section III-C Download Manager symlink attack: the
// malware steals a private file of the Play store through the DM.
func dmDrive(def defenseCase) devicetest.Drive {
	return func(dev *device.Device) (string, error) {
		var b strings.Builder
		tl := timeline.New(dev.Sched.Now)
		defer tl.Close()
		rep, err := def.apply(dev, []string{"/sdcard/Download"})
		if err != nil {
			return "", err
		}
		if err := tl.WatchFS(dev.FS, "/sdcard/Download"); err != nil {
			return "", err
		}
		tl.WatchPackages(dev.PMS)
		mal, err := attack.DeployMalware(dev, "com.fun.game")
		if err != nil {
			return "", err
		}
		victim, err := dev.PMS.InstallFromParsed(apk.Build(apk.Manifest{
			Package: "com.android.vending", VersionCode: 1, Label: "Play",
		}, nil, sig.NewKey("play")))
		if err != nil {
			return "", err
		}
		dev.Run()
		secret := "/data/data/com.android.vending/files/url-tokens"
		if err := dev.FS.WriteFile(secret, []byte("tokens"), victim.UID, vfs.ModePrivate); err != nil {
			return "", err
		}
		atk, err := attack.NewDMSymlink(mal)
		if err != nil {
			return "", err
		}
		var stole string
		atk.Steal(secret, 50, func(data []byte, err error) {
			stole = fmt.Sprintf("data=%q err=%v", data, err)
		})
		dev.Sched.RunUntil(dev.Sched.Now() + horizon)
		fmt.Fprintf(&b, "steal: %s tries=%d dm_healthy=%v\n", stole, atk.Tries(), dev.DM.Healthy())
		if rep != nil {
			rep(&b)
		}
		if err := tl.Render(&b); err != nil {
			return "", err
		}
		return b.String(), nil
	}
}

// redirectDrive runs the Section III-D Intent redirect: malware steers a
// Facebook→Play navigation onto a lookalike app-details page.
func redirectDrive(def defenseCase) devicetest.Drive {
	return func(dev *device.Device) (string, error) {
		var b strings.Builder
		tl := timeline.New(dev.Sched.Now)
		defer tl.Close()
		if _, err := installer.Deploy(dev, installer.GooglePlay(), nil); err != nil {
			return "", err
		}
		if _, err := dev.PMS.InstallFromParsed(apk.Build(apk.Manifest{
			Package: "com.facebook.katana", VersionCode: 1, Label: "Facebook",
		}, nil, sig.NewKey("facebook"))); err != nil {
			return "", err
		}
		dev.AMS.RegisterActivity("com.facebook.katana", "Feed", true, "",
			func(intents.Intent) string { return "facebook:feed" })
		dev.Run()
		rep, err := def.apply(dev, []string{"/sdcard/Download"})
		if err != nil {
			return "", err
		}
		tl.WatchPackages(dev.PMS)
		tl.WatchFirewall(dev.AMS.Firewall())
		mal, err := attack.DeployMalware(dev, "com.fun.game")
		if err != nil {
			return "", err
		}
		red := attack.NewRedirect(mal, attack.RedirectConfig{
			VictimPkg:      "com.facebook.katana",
			StorePkg:       "com.android.vending",
			StoreActivity:  installer.ActivityAppDetails,
			LookalikeAppID: "com.faceb00k.orca",
		})
		if err := red.Launch(); err != nil {
			return "", err
		}
		navErr := dev.AMS.StartActivity(device.SystemSender, intents.Intent{
			TargetPkg: "com.facebook.katana", Component: "Feed",
		})
		dev.Sched.RunUntil(dev.Sched.Now() + 200*time.Millisecond)
		storeErr := dev.AMS.StartActivity("com.facebook.katana", intents.Intent{
			TargetPkg: "com.android.vending", Component: installer.ActivityAppDetails,
			Extras: map[string]string{"appId": "com.facebook.orca"},
		})
		dev.Sched.RunUntil(dev.Sched.Now() + time.Second)
		red.Stop()
		screen := dev.AMS.Screen()
		fmt.Fprintf(&b, "nav_err=%v store_err=%v screen=%s:%s alerts=%d\n",
			navErr, storeErr, screen.Pkg, screen.Content, len(dev.AMS.Firewall().Alerts()))
		if rep != nil {
			rep(&b)
		}
		if err := tl.Render(&b); err != nil {
			return "", err
		}
		return b.String(), nil
	}
}

// hareDrive runs the Hare privilege escalation: the malware pre-defines a
// hanging permission used by a platform-signed app, then reads the guarded
// contacts service.
func hareDrive(def defenseCase) devicetest.Drive {
	return func(dev *device.Device) (string, error) {
		var b strings.Builder
		rep, err := def.apply(dev, []string{"/sdcard/Download"})
		if err != nil {
			return "", err
		}
		mal, err := attack.DeployMalware(dev, "com.fun.game")
		if err != nil {
			return "", err
		}
		h := attack.NewHareEscalation(mal, "com.vlingo.midas.contacts.permission.READ", "com.vlingo.midas")
		if err := h.DefinePermission(); err != nil {
			return "", err
		}
		if _, err := dev.InstallSystemApp(h.BuildVictimApp(dev.Profile.PlatformKey)); err != nil {
			return "", err
		}
		dev.Run()
		h.RegisterVictimComponents(dev)
		contacts, err := h.StealContacts()
		fmt.Fprintf(&b, "contacts=%q err=%v\n", contacts, err)
		if rep != nil {
			rep(&b)
		}
		return b.String(), nil
	}
}

// faultedDrive wraps a TOCTOU run in a chaos schedule: the explorer imposes
// the fault plan, jitter and arbiter choices, and the resolved replay token
// lands in the transcript — so token bytes are part of the equivalence.
func faultedDrive(prof installer.Profile, payload []byte, sched chaos.Schedule, plan func() *chaos.FaultPlan) devicetest.Drive {
	return func(dev *device.Device) (string, error) {
		var b strings.Builder
		ex := &chaos.Explorer{Workers: 1, Plan: plan()}
		resolved, runErr := ex.Check(sched, func(r *chaos.Run) error {
			s, err := experiment.NewScenarioPayloadOn(dev, prof, payload)
			if err != nil {
				return err
			}
			s.Instrument(r)
			atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), s.Target)
			if err := atk.Launch(); err != nil {
				return err
			}
			res := s.RunAIT()
			atk.Stop()
			fmt.Fprintf(&b, "hijacked=%v attempts=%d err=%v fault_hits=%d\n",
				res.Hijacked, res.Attempts, res.Err, len(r.Hits()))
			return nil
		})
		fmt.Fprintf(&b, "token=%s run_err=%v\n", resolved.Token(), runErr)
		return b.String(), nil
	}
}

// TestArenaResetEquivalence pins the arena's core contract — Reset ≡ Boot —
// across every GIA × defense cell plus fault-injected chaos schedules: a
// fresh device.Boot and an arena-reset device must produce byte-identical
// transcripts (timelines, attack outcomes, replay tokens), snapshots,
// scheduler fingerprints and random streams.
func TestArenaResetEquivalence(t *testing.T) {
	galaxy := experiment.ScenarioDeviceProfile(0)
	nexus := device.Profile{Name: "nexus5", Vendor: "lge"}

	gias := []struct {
		name    string
		profile device.Profile
		drive   func(defenseCase) devicetest.Drive
	}{
		{"toctou-fileobserver", galaxy, toctouDrive(installer.Amazon(), attack.StrategyFileObserver)},
		{"toctou-waitandsee", galaxy, toctouDrive(installer.Amazon(), attack.StrategyWaitAndSee)},
		{"dm-symlink", nexus, dmDrive},
		{"intent-redirect", nexus, redirectDrive},
		{"hare-escalation", galaxy, hareDrive},
	}
	for _, gia := range gias {
		for _, def := range defenses() {
			gia, def := gia, def
			t.Run(gia.name+"/"+def.name, func(t *testing.T) {
				t.Parallel()
				if err := devicetest.CompareBootReset(gia.profile, compareSeed, dirtySeed, gia.drive(def)); err != nil {
					t.Fatal(err)
				}
			})
		}
	}

	faults := []struct {
		name  string
		drive devicetest.Drive
	}{
		{"dm-truncate", faultedDrive(installer.DTIgnite(), bytes.Repeat([]byte("x"), 200<<10),
			chaos.Schedule{Seed: 7},
			func() *chaos.FaultPlan {
				return chaos.NewFaultPlan(7, chaos.Rule{
					Site: fault.SiteDMChunk, Kind: fault.KindTruncate, Skip: 1,
				})
			})},
		{"jitter-quantize", faultedDrive(installer.Amazon(), nil,
			chaos.Schedule{Seed: 7, Jitter: 2 * time.Millisecond, Choices: []int{1}},
			func() *chaos.FaultPlan { return chaos.Quantize(10*time.Millisecond, 0, 0) })},
	}
	for _, fc := range faults {
		fc := fc
		t.Run("fault/"+fc.name, func(t *testing.T) {
			t.Parallel()
			if err := devicetest.CompareBootReset(galaxy, compareSeed, dirtySeed, fc.drive); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeviceResetRestoresRNGStream pins the seeded-stream half of the reset
// contract on its own: after Reset(seed) the scheduler's random draws must
// be bit-identical to a fresh Boot(seed) device's, both immediately and
// after identical activity.
func TestDeviceResetRestoresRNGStream(t *testing.T) {
	prof := experiment.ScenarioDeviceProfile(compareSeed)
	fresh, err := device.Boot(prof)
	if err != nil {
		t.Fatal(err)
	}

	dirtyProf := prof
	dirtyProf.Seed = dirtySeed
	reset, err := device.Boot(dirtyProf)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the stream and the clock, then rewind to the compared seed.
	for i := 0; i < 17; i++ {
		reset.Sched.Uint32()
	}
	reset.Sched.AfterFn(time.Second, func() {})
	reset.Run()
	if err := reset.Reset(compareSeed); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 64; i++ {
		if f, r := fresh.Sched.Uint32(), reset.Sched.Uint32(); f != r {
			t.Fatalf("draw %d diverged: fresh %d, reset %d", i, f, r)
		}
	}
	// Interleave scheduler activity and keep drawing: stream position must
	// track exactly, not just the seed.
	for _, dev := range []*device.Device{fresh, reset} {
		dev.Sched.AfterFn(dev.Sched.Uniform(time.Millisecond, time.Second), func() {})
		dev.Run()
	}
	for i := 0; i < 16; i++ {
		if f, r := fresh.Sched.Float64(), reset.Sched.Float64(); f != r {
			t.Fatalf("post-activity draw %d diverged: fresh %v, reset %v", i, f, r)
		}
	}
	if f, r := fresh.Sched.Fingerprint(), reset.Sched.Fingerprint(); f != r {
		t.Fatalf("scheduler fingerprints diverged: fresh %+v, reset %+v", f, r)
	}
}

// TestCompareDetectsDivergence is the harness's negative control: a drive
// that leaks state across runs (breaking the Drive contract) must be caught
// as a divergence, proving the fingerprint actually bites.
func TestCompareDetectsDivergence(t *testing.T) {
	calls := 0
	leaky := func(dev *device.Device) (string, error) {
		calls++
		return fmt.Sprintf("call=%d", calls), nil
	}
	err := devicetest.CompareBootReset(device.Profile{Name: "nexus5", Vendor: "lge"}, compareSeed, dirtySeed, leaky)
	if err == nil {
		t.Fatal("divergent drive passed the equivalence check")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("unexpected error: %v", err)
	}
}
