// Package fault defines the fault-injection contract between the simulated
// device's substrates (scheduler, filesystem, FUSE daemon, Download Manager,
// Intent system) and the chaos harness that drives them.
//
// Every substrate exposes a SetFaultInjector method and consults its
// injector — when one is installed — at a handful of named sites on its hot
// paths. The injector decides, deterministically, whether the operation at
// that site proceeds normally or suffers a fault: an I/O error, an extra
// delay, a dropped or duplicated delivery, or a truncated transfer. With no
// injector installed every site is a single nil check, so production runs
// pay nothing.
//
// The package holds only the contract (sites, actions, interfaces); the
// policy — which faults fire where and when — lives in internal/chaos.
package fault

import (
	"errors"
	"time"
)

// ErrInjected is the default error surfaced by KindError faults whose plan
// did not name a specific one. Code under test must treat it like any other
// I/O failure; tests can errors.Is against it to tell injected failures from
// organic ones.
var ErrInjected = errors.New("fault: injected error")

// Site names one injection point in a substrate. Sites are stable
// identifiers: fault plans reference them by value and replay tokens depend
// on them not changing meaning between runs.
type Site string

// The injection sites wired into the simulator.
const (
	// SiteSimEvent guards every event scheduled on the virtual clock.
	// Delay shifts the deadline; Duplicate schedules the callback twice;
	// Drop cancels it before it ever fires. The subject is empty: event
	// scheduling is anonymous, so plans select by time window and count.
	// The probe timestamp is the event's effective deadline (clamped to
	// the present), not the instant it was scheduled.
	SiteSimEvent Site = "sim.event"
	// SiteVFSOpen guards FS.Open. Subject: the path. Error-kind only.
	SiteVFSOpen Site = "vfs.open"
	// SiteVFSRead guards Handle.Read/ReadAt. Subject: the path.
	SiteVFSRead Site = "vfs.read"
	// SiteVFSWrite guards Handle.Write. Subject: the path.
	SiteVFSWrite Site = "vfs.write"
	// SiteVFSRename guards FS.Rename. Subject: the source path.
	SiteVFSRename Site = "vfs.rename"
	// SiteDMFetch guards the Download Manager's remote fetch. Subject: the
	// URL. Error-kind fails the download like a network error.
	SiteDMFetch Site = "dm.fetch"
	// SiteDMChunk guards each chunk write of a running download. Subject:
	// the destination path. Error fails the transfer, Delay stretches it,
	// Truncate ends it early with the download reported successful — the
	// classic silently-truncated transfer.
	SiteDMChunk Site = "dm.chunk"
	// SiteFuseCheck guards the FUSE daemon's access check. Subject: the
	// request path. Error-kind surfaces as a transient permission/IO
	// failure from the daemon.
	SiteFuseCheck Site = "fuse.check"
	// SiteIntentDeliver guards activity Intent delivery. Subject:
	// "sender->pkg/component". Drop loses the Intent after the firewall
	// has seen it, Delay adds latency, Duplicate delivers twice, Error is
	// returned to the sender as a binder failure.
	SiteIntentDeliver Site = "intent.deliver"
	// SiteIntentBroadcast guards per-receiver broadcast delivery. Subject:
	// "action->pkg".
	SiteIntentBroadcast Site = "intent.broadcast"
)

// Kind is the fault category an injector can request.
type Kind int

// Fault kinds. Sites ignore kinds that make no sense for them (a synchronous
// filesystem write cannot be delayed, only failed), so a plan targeting the
// wrong kind at a site is inert rather than an error.
const (
	// KindNone means "no fault": proceed normally.
	KindNone Kind = iota
	// KindError fails the operation with Action.Err.
	KindError
	// KindDelay postpones the operation by Action.Delay of virtual time.
	KindDelay
	// KindDrop silently discards the operation (event or Intent).
	KindDrop
	// KindDuplicate performs the operation twice.
	KindDuplicate
	// KindTruncate ends a transfer early, keeping what has arrived.
	KindTruncate
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	case KindDrop:
		return "drop"
	case KindDuplicate:
		return "duplicate"
	case KindTruncate:
		return "truncate"
	default:
		return "kind(?)"
	}
}

// Action is the injector's verdict for one probe.
type Action struct {
	Kind  Kind
	Err   error         // KindError: the error to surface
	Delay time.Duration // KindDelay / KindDuplicate: the virtual-time shift
}

// None is the zero Action: no fault.
var None Action

// Injector decides the fault action for an operation reaching a site.
// Probe is called on the simulation goroutine at virtual time now with a
// site-specific subject (a path, URL or component route); implementations
// must be deterministic functions of their own state and the probe sequence,
// or replay guarantees break.
type Injector interface {
	Probe(site Site, subject string, now time.Duration) Action
}

// Target is any component that accepts a fault injector. Passing nil
// removes a previously installed injector.
type Target interface {
	SetFaultInjector(Injector)
}

// Arming is optionally implemented by injectors that can report, without
// side effects, whether any probe at a site could ever return a non-None
// action. Implementations must be conservative: a false Armed guarantees
// Probe(site, ...) answers None for the rest of the injector's life.
type Arming interface {
	Armed(site Site) bool
}

// Armed reports whether fi might ever act at site: a nil injector never
// acts, an Arming injector answers for itself, and any other injector is
// assumed able to act everywhere. Components use it to decide whether an
// operation's failure paths are reachable (e.g. when tagging a scheduled
// event with a footprint for partial-order reduction).
func Armed(fi Injector, site Site) bool {
	if fi == nil {
		return false
	}
	if a, ok := fi.(Arming); ok {
		return a.Armed(site)
	}
	return true
}
