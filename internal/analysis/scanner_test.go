package analysis

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/sig"
)

func testAPK(files map[string]string) *apk.APK {
	raw := make(map[string][]byte, len(files))
	for name, src := range files {
		raw[name] = []byte(src)
	}
	m := apk.Manifest{Package: "com.t", VersionCode: 1, Label: "t"}
	return apk.Build(m, raw, sig.NewKey("dev"))
}

func TestScanAPKFindingsAndStats(t *testing.T) {
	a := testAPK(map[string]string{
		"smali/Installer.smali": wrap(`    const-string v0, "application/vnd.android.package-archive"
    const-string v2, "/sdcard/stage.apk"
`),
		"smali/Redirects.smali": wrap(`    const-string v0, "market://details?id=com.x"
`),
		"res/strings.txt": "not smali, must be ignored",
	})
	eng := NewEngine()
	rep := eng.ScanAPK(a)
	if len(rep.Errors) != 0 {
		t.Fatalf("errors = %v", rep.Errors)
	}
	if rep.Stats.Files != 2 || rep.Stats.Classes != 2 || rep.Stats.Methods != 2 {
		t.Errorf("stats = %+v", rep.Stats)
	}
	byRule := make(map[string]int)
	for _, f := range rep.Findings {
		byRule[f.RuleID]++
	}
	want := map[string]int{RuleIDInstallAPI: 1, RuleIDSDCardStaging: 1, RuleIDMarketLink: 1}
	if !reflect.DeepEqual(byRule, want) {
		t.Errorf("per-rule = %v, want %v", byRule, want)
	}
	// Deterministic ordering: findings sorted by file then line.
	for i := 1; i < len(rep.Findings); i++ {
		a, b := rep.Findings[i-1], rep.Findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %v before %v", a, b)
		}
	}
}

func TestScanAPKMalformedEntryIsIsolated(t *testing.T) {
	a := testAPK(map[string]string{
		"smali/Bad.smali":  ".class Lb;\n.method m()V\n    const-string v0, \"oops\n.end method\n",
		"smali/Good.smali": wrap("    const-string v2, \"/sdcard/x\"\n"),
	})
	rep := NewEngine().ScanAPK(a)
	if len(rep.Errors) != 1 {
		t.Fatalf("errors = %v, want exactly 1", rep.Errors)
	}
	if rep.Stats.ParseErrors != 1 {
		t.Errorf("parse errors = %d", rep.Stats.ParseErrors)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].RuleID != RuleIDSDCardStaging {
		t.Errorf("good entry not scanned: %v", rep.Findings)
	}
}

// TestScanCorpusParallelMatchesSerial: the scanner must produce identical
// per-index reports and aggregate per-rule counts at any worker count.
func TestScanCorpusParallelMatchesSerial(t *testing.T) {
	apks := make([]*apk.APK, 60)
	for i := range apks {
		switch i % 3 {
		case 0:
			apks[i] = testAPK(map[string]string{"smali/A.smali": wrap(
				"    const-string v2, \"/sdcard/stage.apk\"\n")})
		case 1:
			apks[i] = testAPK(map[string]string{"smali/B.smali": wrap(
				"    const/4 v3, MODE_WORLD_READABLE\n    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;\n")})
		default:
			apks[i] = testAPK(map[string]string{"smali/C.smali": wrap(
				"    const-string v0, \"hello\"\n")})
		}
	}
	eng := NewEngine()
	fetch := func(i int) *apk.APK { return apks[i] }
	serialReports, serialStats := eng.ScanCorpus(len(apks), 1, fetch)
	parallelReports, parallelStats := eng.ScanCorpus(len(apks), runtime.NumCPU(), fetch)
	if serialStats.Workers != 1 || parallelStats.Workers < 1 {
		t.Errorf("workers = %d / %d", serialStats.Workers, parallelStats.Workers)
	}
	if !reflect.DeepEqual(serialReports, parallelReports) {
		t.Fatal("parallel reports differ from serial")
	}
	if !reflect.DeepEqual(serialStats.PerRule, parallelStats.PerRule) {
		t.Errorf("per-rule counts differ: %v vs %v", serialStats.PerRule, parallelStats.PerRule)
	}
	if serialStats.APKs != len(apks) || parallelStats.APKs != len(apks) {
		t.Errorf("APKs = %d / %d, want %d", serialStats.APKs, parallelStats.APKs, len(apks))
	}
	if want := 20 * 2; serialStats.PerRule[RuleIDSDCardStaging] != 20 ||
		serialStats.PerRule[RuleIDWorldReadable] != 20 || serialStats.Findings != want {
		t.Errorf("aggregate = %+v", serialStats)
	}
	if serialStats.Stats.Instructions == 0 || serialStats.Elapsed <= 0 {
		t.Errorf("throughput inputs missing: %+v", serialStats)
	}
	if serialStats.InstructionsPerSecond() <= 0 || serialStats.APKsPerSecond() <= 0 {
		t.Errorf("throughput not computed: %+v", serialStats)
	}
}

func TestScanCorpusNilArtifacts(t *testing.T) {
	reports, stats := NewEngine().ScanCorpus(5, 4, func(i int) *apk.APK { return nil })
	if len(reports) != 5 || stats.APKs != 0 || stats.Findings != 0 {
		t.Errorf("reports = %d, stats = %+v", len(reports), stats)
	}
}

func TestScanCorpusZeroItems(t *testing.T) {
	reports, stats := NewEngine().ScanCorpus(0, 8, func(i int) *apk.APK {
		t.Fatal("fetch called for empty corpus")
		return nil
	})
	if len(reports) != 0 || stats.APKs != 0 {
		t.Errorf("reports = %d, stats = %+v", len(reports), stats)
	}
}

func TestAnalyzeSourceError(t *testing.T) {
	_, stats, err := NewEngine().AnalyzeSource("x.smali", "garbage {")
	if err == nil {
		t.Fatal("no error for garbage input")
	}
	if stats.ParseErrors != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestScanCountersMatchStats pins the re-homing satellite: the per-scan
// ScanStats aggregates and the registry's engine-lifetime counters report
// the same numbers after one corpus scan on a fresh engine.
func TestScanCountersMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	eng := NewEngineWithOptions(EngineOptions{CacheCapacity: 256, Registry: reg})
	apks := []*apk.APK{
		testAPK(map[string]string{"smali/A.smali": wrap(`    const-string v2, "/sdcard/a.apk"
`)}),
		testAPK(map[string]string{"smali/A.smali": wrap(`    const-string v2, "/sdcard/a.apk"
`)}),
		testAPK(map[string]string{"smali/B.smali": wrap(`    const-string v0, "market://details?id=com.x"
`)}),
	}
	reports, stats := eng.ScanCorpus(len(apks), runtime.NumCPU(), func(i int) *apk.APK { return apks[i] })
	if len(reports) != len(apks) {
		t.Fatalf("reports = %d", len(reports))
	}

	snap := reg.Snapshot()
	if got := snap.Counter("analysis.scan.files"); got != int64(stats.Stats.Files) {
		t.Errorf("analysis.scan.files = %d, ScanStats.Files = %d", got, stats.Stats.Files)
	}
	if got := snap.Counter("analysis.scan.instructions"); got != int64(stats.Stats.Instructions) {
		t.Errorf("analysis.scan.instructions = %d, ScanStats = %d", got, stats.Stats.Instructions)
	}
	if got := snap.Counter("analysis.scan.findings"); got != int64(stats.Findings) {
		t.Errorf("analysis.scan.findings = %d, ScanStats.Findings = %d", got, stats.Findings)
	}
	if got := snap.Counter("analysis.scan.cache.hits"); got != int64(stats.CacheHits) {
		t.Errorf("analysis.scan.cache.hits = %d, ScanStats.CacheHits = %d", got, stats.CacheHits)
	}
	if got := snap.Counter("analysis.scan.cache.misses"); got != int64(stats.CacheMisses) {
		t.Errorf("analysis.scan.cache.misses = %d, ScanStats.CacheMisses = %d", got, stats.CacheMisses)
	}
	if got := snap.Counter("analysis.scan.cache.deduped"); got != int64(stats.CacheDeduped) {
		t.Errorf("analysis.scan.cache.deduped = %d, ScanStats.CacheDeduped = %d", got, stats.CacheDeduped)
	}
	// The sum of outcomes is the file count — the ScanStats invariant,
	// now visible through the registry too.
	sum := snap.Counter("analysis.scan.cache.hits") + snap.Counter("analysis.scan.cache.misses") +
		snap.Counter("analysis.scan.cache.deduped")
	if sum != int64(stats.Stats.Files) {
		t.Errorf("cache outcome sum = %d, files = %d", sum, stats.Stats.Files)
	}

	// CacheStats and the memo-layer registry counters must also agree.
	cs, ok := eng.CacheStats()
	if !ok {
		t.Fatal("cached engine reported no cache stats")
	}
	memoSum := snap.Counter("analysis.cache.raw.hits") + snap.Counter("analysis.cache.canon.hits")
	if memoSum != cs.Hits {
		t.Errorf("memo-layer registry hits = %d, CacheStats.Hits = %d", memoSum, cs.Hits)
	}
}
