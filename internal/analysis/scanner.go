package analysis

import (
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/memo"
	"github.com/ghost-installer/gia/internal/obs"
)

// Engine runs a rule set over smali sources and APK artifacts. An Engine
// is immutable after construction and safe for concurrent use.
type Engine struct {
	rules []Rule
	// cache, when non-nil, memoizes per-source analyses by canonicalized
	// content hash (see NewEngineWithOptions and cache.go).
	cache *sourceCache
	// met are the engine's scan counters; all-nil (the default) disables
	// them at zero cost. Observe re-homes them onto a registry.
	met engineMetrics
	// trace, when non-nil, gives ScanCorpus workers per-worker wall spans.
	trace *obs.Trace
}

// engineMetrics mirror the per-scan ScanStats aggregates as cumulative,
// engine-lifetime counters on the obs registry.
type engineMetrics struct {
	files        *obs.Counter
	instructions *obs.Counter
	findings     *obs.Counter
	parseErrors  *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	cacheDeduped *obs.Counter
}

// NewEngine builds an engine; with no arguments it loads DefaultRules.
func NewEngine(rules ...Rule) *Engine {
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	return &Engine{rules: rules}
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule { return e.rules }

// Stats counts what one scan covered.
type Stats struct {
	Files        int
	Classes      int
	Methods      int
	Instructions int
	ParseErrors  int
}

func (s *Stats) add(o Stats) {
	s.Files += o.Files
	s.Classes += o.Classes
	s.Methods += o.Methods
	s.Instructions += o.Instructions
	s.ParseErrors += o.ParseErrors
}

// Report is the outcome of scanning one artifact: findings sorted by
// (file, line, rule), coverage stats and any per-file parse errors. The
// cache counters record how the artifact's files were served when the
// engine's analysis cache is enabled (all zero otherwise).
type Report struct {
	Findings []Finding
	Stats    Stats
	Errors   []error
	// Score is the artifact's 0–100 threat score (see score.go), derived
	// from Findings after the scan — so cached and uncached scans agree by
	// construction.
	Score int

	CacheHits    int
	CacheMisses  int
	CacheDeduped int
}

// AnalyzeSource parses one smali file and checks every rule against it.
// On a cache-enabled engine the result may be served from the
// content-addressed cache; either way it is byte-identical to a direct
// analysis.
func (e *Engine) AnalyzeSource(file, src string) ([]Finding, Stats, error) {
	findings, stats, _, err := e.analyzeSourceBytes(file, []byte(src))
	if e.cache != nil && len(findings) > 0 {
		// analyzeSourceBytes may return a slice owned by a cache entry;
		// hand the caller a private copy.
		findings = append([]Finding(nil), findings...)
	}
	return findings, stats, err
}

// analyzeSourceBytes routes one file through the cache when enabled.
func (e *Engine) analyzeSourceBytes(file string, src []byte) ([]Finding, Stats, memo.Outcome, error) {
	if e.cache != nil {
		return e.cache.analyze(e, file, src)
	}
	findings, stats, err := e.analyzeUncached(file, src)
	return findings, stats, memo.Miss, err
}

// analyzeUncached is the full analysis pipeline: parse, build per-method
// facts lazily, run every rule.
func (e *Engine) analyzeUncached(file string, src []byte) ([]Finding, Stats, error) {
	cls, err := ParseBytes(file, src)
	if err != nil {
		return nil, Stats{Files: 1, ParseErrors: 1}, err
	}
	ci := NewClassInfo(cls)
	if e.cache != nil {
		// Serve taint summaries content-addressed: src here is whatever the
		// cache route analyzed (canonical bytes on the template path), so
		// the key is canonicalization-stable by construction.
		ci.sumTable = e.cache.sums
		ci.sumKey = memo.KeyOf(src)
	}
	var findings []Finding
	for _, rule := range e.rules {
		findings = append(findings, rule.Check(ci)...)
	}
	sortFindings(findings)
	return findings, Stats{
		Files:        1,
		Classes:      1,
		Methods:      len(cls.Methods),
		Instructions: cls.Instructions(),
	}, nil
}

// ScanAPK runs the rule set over every smali entry of an APK. Malformed
// entries are recorded in Report.Errors and skipped; the scan never
// panics on corrupt code.
func (e *Engine) ScanAPK(a *apk.APK) Report {
	var rep Report
	names := make([]string, 0, len(a.Files))
	for name := range a.Files {
		if strings.HasPrefix(name, "smali/") {
			names = append(names, name)
		}
	}
	slices.Sort(names)
	for _, name := range names {
		findings, stats, outcome, err := e.analyzeSourceBytes(name, a.Files[name])
		rep.Stats.add(stats)
		if e.cache != nil {
			switch outcome {
			case memo.Hit:
				rep.CacheHits++
			case memo.Deduped:
				rep.CacheDeduped++
			default:
				rep.CacheMisses++
			}
		}
		if err != nil {
			rep.Errors = append(rep.Errors, err)
			continue
		}
		rep.Findings = append(rep.Findings, findings...)
	}
	sortFindings(rep.Findings)
	rep.Score = Score(rep.Findings)
	e.met.record(rep)
	return rep
}

// record mirrors one report onto the engine's cumulative counters. Called
// once per artifact — never on the per-instruction hot path — and free
// when the counters are nil.
func (m *engineMetrics) record(rep Report) {
	m.files.Add(int64(rep.Stats.Files))
	m.instructions.Add(int64(rep.Stats.Instructions))
	m.findings.Add(int64(len(rep.Findings)))
	m.parseErrors.Add(int64(rep.Stats.ParseErrors))
	m.cacheHits.Add(int64(rep.CacheHits))
	m.cacheMisses.Add(int64(rep.CacheMisses))
	m.cacheDeduped.Add(int64(rep.CacheDeduped))
}

// ScanStats aggregates a corpus scan with per-rule hit counts and
// throughput figures. The cache counters aggregate per-file outcomes of a
// cache-enabled engine (zero otherwise); their split between misses,
// hits and dedups depends on worker scheduling, but their sum is always
// the number of files scanned.
type ScanStats struct {
	APKs     int
	Workers  int
	Findings int
	PerRule  map[string]int
	Stats    Stats
	Elapsed  time.Duration

	// Threat-score aggregates over the scanned artifacts: total, maximum
	// and a ScoreBuckets-bucket histogram (20 points per bucket).
	ScoreSum  int
	ScoreMax  int
	ScoreHist [ScoreBuckets]int

	CacheHits    int
	CacheMisses  int
	CacheDeduped int
}

// MeanScore is the average per-APK threat score of the scan.
func (s ScanStats) MeanScore() float64 {
	if s.APKs == 0 {
		return 0
	}
	return float64(s.ScoreSum) / float64(s.APKs)
}

// InstructionsPerSecond is the scan throughput in IR operations.
func (s ScanStats) InstructionsPerSecond() float64 {
	return rate(s.Stats.Instructions, s.Elapsed)
}

// APKsPerSecond is the scan throughput in artifacts.
func (s ScanStats) APKsPerSecond() float64 { return rate(s.APKs, s.Elapsed) }

func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// ScanCorpus fans a corpus of n artifacts out over a bounded worker pool.
// fetch(i) supplies the i-th artifact and is called concurrently from the
// workers, so expensive artifact materialization (corpus.BuildAPKFor)
// parallelizes with the scan itself. Results are returned index-aligned
// with the input; a nil artifact yields an empty Report.
func (e *Engine) ScanCorpus(n, workers int, fetch func(int) *apk.APK) ([]Report, ScanStats) {
	if workers < 1 {
		workers = 1
	}
	if workers > n && n > 0 {
		workers = n
	}
	start := time.Now()
	reports := make([]Report, n)
	partials := make([]ScanStats, workers)
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, part *ScanStats) {
			defer wg.Done()
			part.PerRule = make(map[string]int)
			var track *obs.Track
			if e.trace != nil {
				track = e.trace.WallTrack("scan/worker-" + strconv.Itoa(w))
			}
			for i := range indices {
				a := fetch(i)
				if a == nil {
					continue
				}
				var sp obs.Span
				if track != nil {
					sp = track.Begin("apk", strconv.Itoa(i))
				}
				rep := e.ScanAPK(a)
				sp.End()
				reports[i] = rep
				part.APKs++
				part.Findings += len(rep.Findings)
				part.Stats.add(rep.Stats)
				part.ScoreSum += rep.Score
				if rep.Score > part.ScoreMax {
					part.ScoreMax = rep.Score
				}
				part.ScoreHist[ScoreBucket(rep.Score)]++
				part.CacheHits += rep.CacheHits
				part.CacheMisses += rep.CacheMisses
				part.CacheDeduped += rep.CacheDeduped
				for _, f := range rep.Findings {
					part.PerRule[f.RuleID]++
				}
			}
		}(w, &partials[w])
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()

	agg := ScanStats{Workers: workers, PerRule: make(map[string]int)}
	for _, p := range partials {
		agg.APKs += p.APKs
		agg.Findings += p.Findings
		agg.Stats.add(p.Stats)
		agg.ScoreSum += p.ScoreSum
		if p.ScoreMax > agg.ScoreMax {
			agg.ScoreMax = p.ScoreMax
		}
		for b, c := range p.ScoreHist {
			agg.ScoreHist[b] += c
		}
		agg.CacheHits += p.CacheHits
		agg.CacheMisses += p.CacheMisses
		agg.CacheDeduped += p.CacheDeduped
		for id, c := range p.PerRule {
			agg.PerRule[id] += c
		}
	}
	agg.Elapsed = time.Since(start)
	return reports, agg
}

// sortFindings orders findings by (file, line, rule, message) so scan
// output is deterministic regardless of rule or map iteration order.
// slices.SortFunc rather than sort.Slice: the latter builds a reflective
// swapper per call, which the cached scan path is hot enough to notice.
func sortFindings(fs []Finding) {
	slices.SortFunc(fs, func(a, b Finding) int {
		if c := strings.Compare(a.File, b.File); c != 0 {
			return c
		}
		if a.Line != b.Line {
			if a.Line < b.Line {
				return -1
			}
			return 1
		}
		if c := strings.Compare(a.RuleID, b.RuleID); c != 0 {
			return c
		}
		return strings.Compare(a.Message, b.Message)
	})
}
