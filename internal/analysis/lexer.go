package analysis

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// tokenKind discriminates lexed tokens. The dialect is line-oriented, so
// the lexer works one line at a time and never crosses newlines.
type tokenKind int

const (
	tokWord   tokenKind = iota // directive, opcode, register, literal, signature
	tokString                  // double-quoted string, escapes resolved
	tokLabel                   // :name
	tokComma
	tokLBrace
	tokRBrace
)

func (k tokenKind) String() string {
	switch k {
	case tokWord:
		return "word"
	case tokString:
		return "string"
	case tokLabel:
		return "label"
	case tokComma:
		return "','"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	default:
		return "token"
	}
}

type token struct {
	kind tokenKind
	text string // word/signature text, label name (no colon), or decoded string
}

// lexLine tokenizes one source line. A '#' outside a string starts a
// comment running to end of line. The only error condition is an
// unterminated or badly escaped string literal.
func lexLine(line string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			return toks, nil
		case c == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{"})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}"})
			i++
		case c == '"':
			text, rest, err := lexString(line[i:])
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokString, text})
			i = len(line) - len(rest)
		case c == ':':
			start := i + 1
			j := start
			for j < len(line) && isWordByte(line[j]) {
				j++
			}
			if j == start {
				return nil, fmt.Errorf("empty label name")
			}
			toks = append(toks, token{tokLabel, line[start:j]})
			i = j
		default:
			j := i
			for j < len(line) && isWordByte(line[j]) {
				j++
			}
			if j == i {
				r, _ := utf8.DecodeRuneInString(line[i:])
				return nil, fmt.Errorf("unexpected character %q", r)
			}
			toks = append(toks, token{tokWord, line[i:j]})
			i = j
		}
	}
	return toks, nil
}

// lexString consumes a leading double-quoted literal and returns the
// decoded text plus the unconsumed remainder.
func lexString(s string) (text, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("unterminated string literal")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("bad string escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated string literal")
}

// isWordByte reports whether b can appear inside a word token: opcodes
// (`const/4`, `invoke-virtual`), registers, numeric literals and full
// method signatures like `Landroid/content/Intent;->setDataAndType(...)V`.
func isWordByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	}
	switch b {
	case '.', '/', ';', '-', '>', '(', ')', '[', '_', '$', '<', '=':
		return true
	}
	return false
}
