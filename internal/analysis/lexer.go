package analysis

import (
	"fmt"
	"unicode/utf8"
)

// tokenKind discriminates lexed tokens. The dialect is line-oriented, so
// the lexer works one line at a time and never crosses newlines.
type tokenKind int

const (
	tokWord   tokenKind = iota // directive, opcode, register, literal, signature
	tokString                  // double-quoted string, escapes resolved
	tokLabel                   // :name
	tokComma
	tokLBrace
	tokRBrace
)

func (k tokenKind) String() string {
	switch k {
	case tokWord:
		return "word"
	case tokString:
		return "string"
	case tokLabel:
		return "label"
	case tokComma:
		return "','"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	default:
		return "token"
	}
}

// token is one lexed unit. text sub-slices the source line (escape-free
// strings included), so tokens are valid only until the next lexLine call
// on the same scratch buffer; the parser materializes what it keeps via
// intern.
type token struct {
	kind tokenKind
	text []byte // word/signature text, label name (no colon), or decoded string
}

// lexLine tokenizes one source line, appending into toks (pass a reused
// scratch slice truncated to zero length). A '#' outside a string starts a
// comment running to end of line. The only error condition is an
// unterminated or badly escaped string literal.
func lexLine(line []byte, toks []token) ([]token, error) {
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			return toks, nil
		case c == ',':
			toks = append(toks, token{kind: tokComma})
			i++
		case c == '{':
			toks = append(toks, token{kind: tokLBrace})
			i++
		case c == '}':
			toks = append(toks, token{kind: tokRBrace})
			i++
		case c == '"':
			text, n, err := lexString(line[i:])
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: text})
			i += n
		case c == ':':
			start := i + 1
			j := start
			for j < len(line) && isWordByte(line[j]) {
				j++
			}
			if j == start {
				return nil, fmt.Errorf("empty label name")
			}
			toks = append(toks, token{kind: tokLabel, text: line[start:j]})
			i = j
		default:
			j := i
			for j < len(line) && isWordByte(line[j]) {
				j++
			}
			if j == i {
				r, _ := utf8.DecodeRune(line[i:])
				return nil, fmt.Errorf("unexpected character %q", r)
			}
			toks = append(toks, token{kind: tokWord, text: line[i:j]})
			i = j
		}
	}
	return toks, nil
}

// lexString consumes a leading double-quoted literal and returns the
// decoded text plus the number of bytes consumed. Escape-free literals —
// the overwhelmingly common case — are returned as a zero-copy sub-slice
// of s; only literals containing backslash escapes allocate a decode
// buffer.
func lexString(s []byte) (text []byte, n int, err error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return s[1:i], i + 1, nil
		case '\\':
			return lexStringEscaped(s, i)
		}
	}
	return nil, 0, fmt.Errorf("unterminated string literal")
}

// lexStringEscaped is the slow path: s[1:esc] is escape-free, s[esc] is
// the first backslash.
func lexStringEscaped(s []byte, esc int) (text []byte, n int, err error) {
	b := make([]byte, 0, len(s))
	b = append(b, s[1:esc]...)
	for i := esc; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b, i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return nil, 0, fmt.Errorf("unterminated string literal")
			}
			i++
			switch s[i] {
			case 'n':
				b = append(b, '\n')
			case 't':
				b = append(b, '\t')
			case '"', '\\':
				b = append(b, s[i])
			default:
				return nil, 0, fmt.Errorf("bad string escape \\%c", s[i])
			}
		default:
			b = append(b, s[i])
		}
	}
	return nil, 0, fmt.Errorf("unterminated string literal")
}

// isWordByte reports whether b can appear inside a word token: opcodes
// (`const/4`, `invoke-virtual`), registers, numeric literals and full
// method signatures like `Landroid/content/Intent;->setDataAndType(...)V`.
func isWordByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	}
	switch b {
	case '.', '/', ';', '-', '>', '(', ')', '[', '_', '$', '<', '=':
		return true
	}
	return false
}

// internTable holds the hot smali vocabulary — directives, mnemonics,
// registers, common literals — as shared string instances. Probing a Go
// map with a string([]byte) key conversion compiles to an allocation-free
// lookup, so interned words cost nothing to materialize.
var internTable = buildInternTable()

func buildInternTable() map[string]string {
	words := []string{
		".class", ".method", ".end", ".field", ".source", ".super",
		"public", "private", "protected", "static", "final", "method",
		"const", "const/4", "const/16", "const-string", "const-wide",
		"invoke-virtual", "invoke-static", "invoke-direct",
		"invoke-super", "invoke-interface",
		"goto", "if-eq", "if-ne", "if-eqz", "if-nez", "if-ltz", "if-gez",
		"return", "return-void", "return-object",
		"nop", "move", "move-result", "move-result-object",
		"0x0", "0x1", "644",
		"MODE_PRIVATE", "MODE_WORLD_READABLE", "MODE_WORLD_WRITEABLE",
	}
	for i := 0; i < 32; i++ {
		words = append(words, fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 16; i++ {
		words = append(words, fmt.Sprintf("p%d", i))
	}
	t := make(map[string]string, len(words))
	for _, w := range words {
		t[w] = w
	}
	return t
}

// intern materializes a token's bytes as a string, reusing the shared
// instance for vocabulary words and allocating only for novel text.
func intern(b []byte) string {
	if s, ok := internTable[string(b)]; ok {
		return s
	}
	return string(b)
}
