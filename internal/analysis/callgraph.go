package analysis

// CallGraph is the class-local call graph the interprocedural pass runs
// over: one node per method, one edge per invoke whose target resolves to
// a method of the same class set. Targets are matched by their full
// descriptor spelling (see Method.Descriptor), so direct, static and
// virtual invokes all resolve the same way; an invoke whose receiver is
// outside the class set simply has no edge and is handled by the taint
// pass as an unknown callee (degrade to a conservative summary, never
// panic).
//
// Recursion is made tractable by SCC condensation: SCCs lists the
// strongly connected components in callee-first (reverse topological)
// order, which is exactly the order the bottom-up summary fixpoint wants —
// every callee outside the current SCC already has its final summary when
// the SCC is processed.
type CallGraph struct {
	// Methods aliases the class's method list; indices below refer to it.
	Methods []*Method
	// Callees[i] lists the method indices i invokes, deduped, in first-call
	// order.
	Callees [][]int
	// SCCs is the condensation in callee-first order: for any edge u→v with
	// sccOf[u] != sccOf[v], the component of v appears before the component
	// of u.
	SCCs [][]int

	index map[string]int
	sccOf []int
}

// BuildCallGraph constructs the call graph and its condensation for one
// parsed class.
func BuildCallGraph(c *Class) *CallGraph {
	g := &CallGraph{
		Methods: c.Methods,
		Callees: make([][]int, len(c.Methods)),
		index:   make(map[string]int, len(c.Methods)),
		sccOf:   make([]int, len(c.Methods)),
	}
	for i, m := range c.Methods {
		// First definition wins on a duplicate descriptor; the parser does
		// not forbid duplicates, and either resolution is sound.
		if _, dup := g.index[m.Descriptor()]; !dup {
			g.index[m.Descriptor()] = i
		}
	}
	for i, m := range c.Methods {
		var seen map[int]bool
		for _, ins := range m.Instructions {
			if ins.Kind != KindInvoke {
				continue
			}
			j, ok := g.index[ins.Target]
			if !ok {
				continue
			}
			if seen == nil {
				seen = make(map[int]bool, 4)
			}
			if !seen[j] {
				seen[j] = true
				g.Callees[i] = append(g.Callees[i], j)
			}
		}
	}
	g.condense()
	return g
}

// Resolve maps an invoke target to its method index within the class set.
func (g *CallGraph) Resolve(target string) (int, bool) {
	i, ok := g.index[target]
	return i, ok
}

// SCCOf returns the condensation component index of method i.
func (g *CallGraph) SCCOf(i int) int { return g.sccOf[i] }

// condense runs Tarjan's SCC algorithm iteratively (an explicit frame
// stack, so deep call chains cannot overflow the goroutine stack). Tarjan
// emits a component only once every component reachable from it has been
// emitted, so SCCs comes out in the callee-first order documented above.
func (g *CallGraph) condense() {
	n := len(g.Methods)
	if n == 0 {
		return
	}
	const unvisited = -1
	order := make([]int, n) // discovery index, or unvisited
	low := make([]int, n)
	onStack := make([]bool, n)
	stack := make([]int, 0, n)
	next := 0

	type frame struct {
		v  int // method being visited
		ci int // next callee position to examine
	}
	frames := make([]frame, 0, 8)
	for i := range order {
		order[i] = unvisited
	}
	for root := 0; root < n; root++ {
		if order[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ci == 0 {
				order[v], low[v] = next, next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			descended := false
			for f.ci < len(g.Callees[v]) {
				w := g.Callees[v][f.ci]
				f.ci++
				if order[w] == unvisited {
					frames = append(frames, frame{v: w})
					descended = true
					break
				}
				if onStack[w] && order[w] < low[v] {
					low[v] = order[w]
				}
			}
			if descended {
				continue
			}
			if low[v] == order[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.sccOf[w] = len(g.SCCs)
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				g.SCCs = append(g.SCCs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
}
