package analysis

import (
	"reflect"
	"testing"
)

// crossMethodStaging is the acceptance fixture for the interprocedural
// engine: the staging path is produced in one method (an Environment
// getter — no /sdcard literal anywhere) and consumed by the install sink
// in another. The old intraprocedural SDCardStagingRule cannot see it; the
// taint rule must.
const crossMethodStaging = `.class public Lcom/t/Installer;
.method private getStageDir()Ljava/lang/String;
    invoke-static {}, Landroid/os/Environment;->getExternalStorageDirectory()Ljava/io/File;
    move-result-object v0
    return-object v0
.end method
.method public installDownloaded()V
    invoke-direct {p0}, Lcom/t/Installer;->getStageDir()Ljava/lang/String;
    move-result-object v2
    invoke-virtual {p1, v2, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
    return-void
.end method
`

// paramSinkStaging exercises the other summary direction: the sink lives
// in a callee and the tainted path is handed to it as an argument, so the
// flow is attributed at the caller's call site via SinkParams.
const paramSinkStaging = `.class public Lcom/t/C;
.method private doInstall(Ljava/lang/String;)V
    invoke-virtual {p0, p1, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
    return-void
.end method
.method public run()V
    const-string v1, "/sdcard/dl/stage.apk"
    invoke-direct {p0, v1}, Lcom/t/C;->doInstall(Ljava/lang/String;)V
    return-void
.end method
`

// TestCrossMethodStagingAcceptance pins the PR's acceptance criterion:
// the cross-method fixture is flagged by the taint rule, NOT by the old
// intraprocedural rule, and not by the taint rule's own intraprocedural
// baseline.
func TestCrossMethodStagingAcceptance(t *testing.T) {
	if got := checkRule(t, SDCardStagingRule{}, crossMethodStaging); len(got) != 0 {
		t.Errorf("intraprocedural rule flagged the cross-method fixture: %v", got)
	}
	if got := checkRule(t, TaintStagingRule{IntraOnly: true}, crossMethodStaging); len(got) != 0 {
		t.Errorf("intra-only taint baseline flagged the cross-method fixture: %v", got)
	}
	got := checkRule(t, TaintStagingRule{}, crossMethodStaging)
	if len(got) != 1 {
		t.Fatalf("taint rule: %d findings, want 1: %v", len(got), got)
	}
	f := got[0]
	if f.RuleID != RuleIDTaintStaging || f.Method != "installDownloaded()V" {
		t.Errorf("finding misattributed: %+v", f)
	}
	if f.Line != 10 {
		t.Errorf("finding at line %d, want the setDataAndType call (10)", f.Line)
	}
}

func TestTaintFlowsIntoCalleeSink(t *testing.T) {
	got := checkRule(t, TaintStagingRule{}, paramSinkStaging)
	if len(got) != 1 {
		t.Fatalf("callee-sink flow: %d findings, want 1: %v", len(got), got)
	}
	if got[0].Method != "run()V" {
		t.Errorf("flow not attributed at the caller's call site: %+v", got[0])
	}
	if intra := checkRule(t, TaintStagingRule{IntraOnly: true}, paramSinkStaging); len(intra) != 0 {
		t.Errorf("intra baseline saw the callee sink: %v", intra)
	}
}

func TestTaintDirectFlowAlsoSeenIntraprocedurally(t *testing.T) {
	src := wrap(`    const-string v2, "/sdcard/dl/stage.apk"
    invoke-virtual {p1, v2, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
`)
	inter := checkRule(t, TaintStagingRule{}, src)
	intra := checkRule(t, TaintStagingRule{IntraOnly: true}, src)
	if len(inter) != 1 || len(intra) != 1 {
		t.Fatalf("direct flow: inter=%v intra=%v", inter, intra)
	}
	if !reflect.DeepEqual(inter, intra) {
		t.Errorf("same-method flow diverges between modes:\ninter %v\nintra %v", inter, intra)
	}
}

func TestTaintRecursiveSummariesTerminate(t *testing.T) {
	// Mutual recursion with a base case: a returns p1 directly on one arm
	// and b(p1) on the other, b returns a(p1). The pass-through fact must
	// circulate around the SCC until both summaries carry it — and a pure
	// cycle with no base case would correctly settle at bottom instead.
	src := `.class public Lcom/t/R;
.method public a(Ljava/lang/String;)Ljava/lang/String;
    if-eqz v5, :rec
    return-object p1
:rec
    invoke-virtual {p0, p1}, Lcom/t/R;->b(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v0
    return-object v0
.end method
.method public b(Ljava/lang/String;)Ljava/lang/String;
    invoke-virtual {p0, p1}, Lcom/t/R;->a(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v0
    return-object v0
.end method
`
	cls, err := ParseFile("r.smali", src)
	if err != nil {
		t.Fatal(err)
	}
	sums := ComputeSummaries(NewClassInfo(cls))
	for _, desc := range []string{
		"Lcom/t/R;->a(Ljava/lang/String;)Ljava/lang/String;",
		"Lcom/t/R;->b(Ljava/lang/String;)Ljava/lang/String;",
	} {
		sum, ok := sums.Of(desc)
		if !ok {
			t.Fatalf("summary missing for %s", desc)
		}
		// p1 passes through the mutual recursion into both returns.
		if sum.Ret&ParamTaint(1) == 0 {
			t.Errorf("%s lost pass-through param taint: %+v", desc, sum)
		}
	}
}

func TestTaintIntentExtraTracked(t *testing.T) {
	src := `.class public Lcom/t/E;
.method public pull(Landroid/content/Intent;)Ljava/lang/String;
    const-string v0, "path"
    invoke-virtual {p1, v0}, Landroid/content/Intent;->getStringExtra(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v1
    return-object v1
.end method
`
	cls, err := ParseFile("e.smali", src)
	if err != nil {
		t.Fatal(err)
	}
	sum, ok := ComputeSummaries(NewClassInfo(cls)).Of("Lcom/t/E;->pull(Landroid/content/Intent;)Ljava/lang/String;")
	if !ok {
		t.Fatal("summary missing")
	}
	if sum.Ret&TaintIntentExtra == 0 {
		t.Errorf("intent-extra source not tracked: %+v", sum)
	}
	// Intent extras are tracked in the lattice but are not the SD-card
	// staging pattern; the staging rule must not fire on them.
	if got := checkRule(t, TaintStagingRule{}, src); len(got) != 0 {
		t.Errorf("staging rule fired on intent extra: %v", got)
	}
}

// TestTaintConstOverwriteKillsTaint mirrors the world-readable overwrite
// regression for the taint lattice: a tainted register overwritten with a
// benign constant before the sink must not flag.
func TestTaintConstOverwriteKillsTaint(t *testing.T) {
	src := wrap(`    const-string v2, "/sdcard/dl/stage.apk"
    const-string v2, "content://downloads/1"
    invoke-virtual {p1, v2, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
`)
	if got := checkRule(t, TaintStagingRule{}, src); len(got) != 0 {
		t.Errorf("killed taint still flagged: %v", got)
	}
}

// FuzzSummaries pins the containment invariant the whole design rests on:
// on any parsable input, the interprocedural findings are a superset of
// the intraprocedural baseline's. Unknown callees degrade to pass-through
// (top) rather than bottom, so adding summary knowledge can only add
// findings, never remove one.
func FuzzSummaries(f *testing.F) {
	f.Add(crossMethodStaging)
	f.Add(paramSinkStaging)
	f.Add(goodSmali)
	f.Add(wrap(`    const-string v2, "/sdcard/dl/stage.apk"
    invoke-virtual {p1, v2, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
`))
	f.Fuzz(func(t *testing.T, src string) {
		cls, err := ParseFile("fuzz.smali", src)
		if err != nil {
			return
		}
		inter := TaintStagingRule{}.Check(NewClassInfo(cls))
		intra := TaintStagingRule{IntraOnly: true}.Check(NewClassInfo(cls))
		interSet := make(map[Finding]bool, len(inter))
		for _, f := range inter {
			interSet[f] = true
		}
		for _, f := range intra {
			if !interSet[f] {
				t.Fatalf("intraprocedural finding missing from interprocedural results: %+v\ninter: %v", f, inter)
			}
		}
	})
}

func TestSummaryAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	cls, err := ParseFile("budget.smali", crossMethodStaging)
	if err != nil {
		t.Fatal(err)
	}
	n := cls.Instructions()
	got := testing.AllocsPerRun(500, func() {
		ComputeSummaries(NewClassInfo(cls))
	}) / float64(n)
	// Ceiling with headroom over the measured value; the summary pass is
	// per-class work over a handful of small maps, not a hot loop, but it
	// must not regress into per-instruction allocation churn.
	const budget = 30.0
	if got > budget {
		t.Errorf("summary pass allocates %.2f/instruction, budget %.1f", got, budget)
	}
}

// TestSummaryCacheParity is the cached-vs-uncached interprocedural gate: a
// corpus of template twins (same shape, different package strings) must
// produce identical findings and scores through the summary-caching engine
// and a plain one.
func TestSummaryCacheParity(t *testing.T) {
	variants := []string{"com/alpha/one", "com/beta/two", "com/gamma/three"}
	srcFor := func(pkg string) string {
		return `.class public L` + pkg + `/Installer;
.method private getStageDir()Ljava/lang/String;
    invoke-static {}, Landroid/os/Environment;->getExternalStorageDirectory()Ljava/io/File;
    move-result-object v0
    return-object v0
.end method
.method public installDownloaded()V
    invoke-direct {p0}, L` + pkg + `/Installer;->getStageDir()Ljava/lang/String;
    move-result-object v2
    invoke-virtual {p1, v2, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
    return-void
.end method
`
	}
	plain := NewEngine()
	cached := NewEngineWithOptions(EngineOptions{CacheCapacity: 64})
	for round := 0; round < 2; round++ { // second round hits the caches
		for _, pkg := range variants {
			src := srcFor(pkg)
			f1, s1, err1 := plain.AnalyzeSource("x.smali", src)
			f2, s2, err2 := cached.AnalyzeSource("x.smali", src)
			if err1 != nil || err2 != nil {
				t.Fatalf("analyze errors: %v / %v", err1, err2)
			}
			if !reflect.DeepEqual(f1, f2) || !reflect.DeepEqual(s1, s2) {
				t.Errorf("round %d %s: cached diverges from uncached\nplain  %v\ncached %v", round, pkg, f1, f2)
			}
			if len(f1) == 0 {
				t.Errorf("fixture produced no findings — parity check is vacuous")
			}
			if Score(f1) != Score(f2) {
				t.Errorf("scores diverge: %d vs %d", Score(f1), Score(f2))
			}
		}
	}
	if st, ok := cached.SummaryCacheStats(); !ok || st.Misses == 0 {
		t.Errorf("summary cache never engaged: %+v ok=%v", st, ok)
	} else if st.Entries == 0 {
		t.Errorf("summary cache retained nothing: %+v", st)
	}
}
