//go:build !race

package analysis

// raceEnabled reports whether the race detector is compiled in; the
// alloc-budget tests skip under it (instrumentation changes allocation
// counts).
const raceEnabled = false
