package analysis

import (
	"strings"
	"testing"
)

const goodSmali = `.class public Lcom/example/Installer;
.method public installDownloaded()V
    const-string v0, "application/vnd.android.package-archive"
    invoke-virtual {p1, v1, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
    const/4 v3, 0x0
    if-eqz v5, :alt
    goto :done
:alt
    const/4 v3, MODE_WORLD_READABLE
:done
    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
    return-void
.end method
`

func TestParseWellFormed(t *testing.T) {
	cls, err := ParseFile("smali/Installer.smali", goodSmali)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Name != "Lcom/example/Installer;" {
		t.Errorf("class name = %q", cls.Name)
	}
	if len(cls.Methods) != 1 {
		t.Fatalf("methods = %d", len(cls.Methods))
	}
	m := cls.Methods[0]
	if !strings.HasPrefix(m.Name, "installDownloaded") {
		t.Errorf("method name = %q", m.Name)
	}
	wantKinds := []Kind{KindConst, KindInvoke, KindConst, KindIf, KindGoto,
		KindLabel, KindConst, KindLabel, KindInvoke, KindReturn}
	if len(m.Instructions) != len(wantKinds) {
		t.Fatalf("instructions = %d, want %d", len(m.Instructions), len(wantKinds))
	}
	for i, want := range wantKinds {
		if m.Instructions[i].Kind != want {
			t.Errorf("instr %d kind = %v, want %v", i, m.Instructions[i].Kind, want)
		}
	}
	// Provenance: instruction lines are 1-based source lines.
	if m.Instructions[0].Line != 3 {
		t.Errorf("first instruction line = %d, want 3", m.Instructions[0].Line)
	}
	// Operand decoding.
	if m.Instructions[0].Dest != "v0" || !strings.Contains(m.Instructions[0].Value, "package-archive") {
		t.Errorf("const-string decoded as %+v", m.Instructions[0])
	}
	inv := m.Instructions[8]
	if len(inv.Args) != 3 || inv.Args[0] != "p0" || inv.Args[2] != "v3" {
		t.Errorf("invoke args = %v", inv.Args)
	}
	if !strings.Contains(inv.Target, "openFileOutput") {
		t.Errorf("invoke target = %q", inv.Target)
	}
	if idx, ok := m.LabelTarget("alt"); !ok || m.Instructions[idx].Kind != KindLabel {
		t.Errorf("label alt → %d, %v", idx, ok)
	}
}

// TestParseMalformed drives every malformed-input class the engine must
// reject with an error (never a panic): unterminated strings, empty and
// truncated register lists, truncated invoke lines, dangling methods,
// undefined labels, and code outside any method.
func TestParseMalformed(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{
			name: "unterminated string",
			src:  ".class Lx;\n.method m()V\n    const-string v0, \"oops\n.end method\n",
			want: "unterminated string",
		},
		{
			name: "bad string escape",
			src:  ".class Lx;\n.method m()V\n    const-string v0, \"a\\q\"\n.end method\n",
			want: "escape",
		},
		{
			name: "unterminated register list",
			src:  ".class Lx;\n.method m()V\n    invoke-virtual {p0, v2\n.end method\n",
			want: "unterminated register list",
		},
		{
			name: "truncated invoke without target",
			src:  ".class Lx;\n.method m()V\n    invoke-virtual {p0, v2}\n.end method\n",
			want: "missing call target",
		},
		{
			name: "invoke without register list",
			src:  ".class Lx;\n.method m()V\n    invoke-virtual Lx;->m()V\n.end method\n",
			want: "{register list}",
		},
		{
			name: "const without operand",
			src:  ".class Lx;\n.method m()V\n    const/4 v3\n.end method\n",
			want: "needs a register and an operand",
		},
		{
			name: "const-string with bare operand",
			src:  ".class Lx;\n.method m()V\n    const-string v0, bare\n.end method\n",
			want: "string literal",
		},
		{
			name: "truncated method at EOF",
			src:  ".class Lx;\n.method m()V\n    return-void\n",
			want: "missing .end method",
		},
		{
			name: "goto without label",
			src:  ".class Lx;\n.method m()V\n    goto\n.end method\n",
			want: "label operand",
		},
		{
			name: "branch to undefined label",
			src:  ".class Lx;\n.method m()V\n    goto :nowhere\n.end method\n",
			want: "undefined label",
		},
		{
			name: "if without label",
			src:  ".class Lx;\n.method m()V\n    if-eqz v0\n.end method\n",
			want: "register and a label",
		},
		{
			name: "duplicate label",
			src:  ".class Lx;\n.method m()V\n:a\n:a\n.end method\n",
			want: "duplicate label",
		},
		{
			name: "instruction outside method",
			src:  ".class Lx;\n    return-void\n",
			want: "outside a method",
		},
		{
			name: "label outside method",
			src:  ".class Lx;\n:stray\n",
			want: "outside a method",
		},
		{
			name: "method before class",
			src:  ".method m()V\n.end method\n",
			want: ".method before .class",
		},
		{
			name: "duplicate class",
			src:  ".class Lx;\n.class Ly;\n",
			want: "duplicate .class",
		},
		{
			name: "end method without method",
			src:  ".class Lx;\n.end method\n",
			want: ".end method outside",
		},
		{
			name: "empty input",
			src:  "",
			want: "no .class directive",
		},
		{
			name: "empty label name",
			src:  ".class Lx;\n.method m()V\n    goto :\n.end method\n",
			want: "empty label",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cls, err := ParseFile("bad.smali", tt.src)
			if err == nil {
				t.Fatalf("parsed without error: %+v", cls)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %q, want substring %q", err, tt.want)
			}
			var pe *ParseError
			if !errorsAs(err, &pe) {
				t.Errorf("error %T is not a *ParseError", err)
			} else if pe.File != "bad.smali" || pe.Line < 1 {
				t.Errorf("provenance = %s:%d", pe.File, pe.Line)
			}
		})
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestParseLenientUnknowns(t *testing.T) {
	src := ".class Lx;\n.source \"x.java\"\n.field private a:I\n" +
		".method m()V\n    nop\n    array-length v0, v1  # comment\n    return-void\n.end method\n"
	cls, err := ParseFile("x.smali", src)
	if err != nil {
		t.Fatal(err)
	}
	m := cls.Methods[0]
	if len(m.Instructions) != 3 {
		t.Fatalf("instructions = %d", len(m.Instructions))
	}
	if m.Instructions[0].Kind != KindOther || m.Instructions[1].Kind != KindOther {
		t.Errorf("unknown opcodes should parse as KindOther: %+v", m.Instructions[:2])
	}
}

// TestParseMoves pins the move family: move-result* writes a destination
// with no source register, plain moves copy Src into Dest, and shapes the
// analyses do not model (move-exception) stay lenient as KindOther.
func TestParseMoves(t *testing.T) {
	src := ".class Lx;\n.method m()V\n" +
		"    invoke-static {}, Lx;->f()Ljava/lang/String;\n" +
		"    move-result-object v0\n" +
		"    move v1, v0\n" +
		"    move-exception v2\n" +
		"    return-object v1\n" +
		".end method\n"
	cls, err := ParseFile("x.smali", src)
	if err != nil {
		t.Fatal(err)
	}
	ins := cls.Methods[0].Instructions
	if ins[0].Kind != KindInvoke || len(ins[0].Args) != 0 {
		t.Errorf("no-arg invoke-static = %+v", ins[0])
	}
	if ins[1].Kind != KindMove || ins[1].Dest != "v0" || ins[1].Src != "" {
		t.Errorf("move-result-object = %+v", ins[1])
	}
	if ins[2].Kind != KindMove || ins[2].Dest != "v1" || ins[2].Src != "v0" {
		t.Errorf("move = %+v", ins[2])
	}
	if ins[3].Kind != KindOther {
		t.Errorf("move-exception should stay KindOther: %+v", ins[3])
	}
	if ins[4].Kind != KindReturn || ins[4].Src != "v1" {
		t.Errorf("return-object = %+v", ins[4])
	}
}

// FuzzParseFile asserts the parser returns errors instead of panicking on
// arbitrary inputs.
func FuzzParseFile(f *testing.F) {
	f.Add(goodSmali)
	f.Add(".class Lx;\n.method m()V\n    const-string v0, \"unterminated\n")
	f.Add(".class Lx;\n.method m()V\n    invoke-virtual {}, Lx;->m()V\n")
	f.Add(".class Lx;\n.method m()V\n    invoke-virtual {p0, \n")
	f.Add(":label\n{}}{\",\"\\")
	f.Add(".class\n.method\n.end\n.end method\n# comment\n")
	f.Fuzz(func(t *testing.T, src string) {
		cls, err := ParseFile("fuzz.smali", src)
		if err == nil && cls == nil {
			t.Fatal("nil class without error")
		}
	})
}
