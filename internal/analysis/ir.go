// Package analysis is the static-analysis engine behind the Section IV-A
// measurement tooling: a lexer/parser for the synthetic smali dialect the
// corpus emits, a typed IR (classes → methods → instructions), per-method
// control-flow graphs with intra-procedural reaching definitions, a
// pluggable GIA lint-rule framework, and a parallel corpus scanner.
//
// The paper's authors first tried heavyweight taint analysis (Flowdroid)
// and watched it fail on ~70% of installer apps, then fell back to a
// lightweight scanner keyed on the world-readable observation. This package
// is that scanner done properly: instead of a flat last-write-wins register
// map over raw lines, constants are resolved through real def-use chains
// over basic blocks, so branch joins, backward jumps, dead stores and
// method boundaries are all handled precisely.
package analysis

// Kind classifies an instruction for the analyses. The dialect is small:
// everything the corpus emitter produces plus enough generality that
// unknown opcodes survive as KindOther instead of failing the parse.
type Kind int

// Instruction kinds.
const (
	// KindOther: an opcode the analyses do not model (treated as a no-op
	// with fallthrough control flow and no register writes).
	KindOther Kind = iota
	// KindConst: const/4, const/16, const-string, … — writes Dest.
	KindConst
	// KindInvoke: invoke-virtual/static/direct — reads Args, calls Target.
	KindInvoke
	// KindGoto: unconditional jump to Label.
	KindGoto
	// KindIf: conditional branch on Cond to Label, else fallthrough.
	KindIf
	// KindReturn: method exit; Src names the returned register when the
	// mnemonic carries one (return-object v0).
	KindReturn
	// KindLabel: a `:name` jump target (no-op at runtime).
	KindLabel
	// KindMove: register copies. `move vA, vB` writes Dest from Src;
	// `move-result*` writes Dest from the preceding invoke's result
	// (Src empty).
	KindMove
)

func (k Kind) String() string {
	switch k {
	case KindConst:
		return "const"
	case KindInvoke:
		return "invoke"
	case KindGoto:
		return "goto"
	case KindIf:
		return "if"
	case KindReturn:
		return "return"
	case KindLabel:
		return "label"
	case KindMove:
		return "move"
	default:
		return "other"
	}
}

// Instruction is one IR operation.
type Instruction struct {
	Index int // position within the method body
	Line  int // 1-based line in the source file
	Kind  Kind
	Op    string // mnemonic as written (e.g. "const-string", "invoke-virtual")

	Dest  string // KindConst/KindMove: destination register
	Value string // KindConst: operand with string quotes stripped

	Args   []string // KindInvoke: argument registers
	Target string   // KindInvoke: callee signature

	Cond  string // KindIf: tested register
	Label string // KindGoto/KindIf/KindLabel: label name without the colon
	Src   string // KindMove: source register ("" for move-result*);
	// KindReturn: returned register ("" for bare return/return-void)
}

// Method is one parsed method body.
type Method struct {
	Name         string
	Class        string // owning class name
	File         string
	Line         int // line of the .method directive
	Instructions []Instruction

	labels map[string]int // label name → instruction index of the label
}

// LabelTarget resolves a label to the index of its KindLabel instruction.
func (m *Method) LabelTarget(name string) (int, bool) {
	idx, ok := m.labels[name]
	return idx, ok
}

// Descriptor is the method's fully qualified call-target spelling —
// `Lpkg/Cls;->name(sig)ret` — exactly the form invoke operands carry, so
// the call graph resolves invokes by string equality with no signature
// parsing.
func (m *Method) Descriptor() string {
	return m.Class + "->" + m.Name
}

// Class is one parsed smali class.
type Class struct {
	Name    string
	File    string
	Methods []*Method
}

// Instructions counts the IR operations across all methods.
func (c *Class) Instructions() int {
	n := 0
	for _, m := range c.Methods {
		n += len(m.Instructions)
	}
	return n
}
