package analysis

import (
	"reflect"
	"testing"
)

func parseMethod(t *testing.T, body string) *Method {
	t.Helper()
	cls, err := ParseFile("t.smali", ".class Lt;\n.method m()V\n"+body+".end method\n")
	if err != nil {
		t.Fatal(err)
	}
	return cls.Methods[0]
}

func TestCFGStraightLine(t *testing.T) {
	m := parseMethod(t, "    const/4 v0, 0x0\n    const/4 v1, 0x1\n    return-void\n")
	g := BuildCFG(m)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	b := g.Blocks[0]
	if b.Start != 0 || b.End != 3 || len(b.Succs) != 0 || !b.Reachable {
		t.Errorf("block = %+v", b)
	}
}

func TestCFGBranchJoin(t *testing.T) {
	// Diamond: entry branches, both arms join at :out.
	m := parseMethod(t, `    const/4 v0, 0x0
    if-eqz v9, :alt
    goto :out
:alt
    const/4 v0, 0x1
:out
    return-void
`)
	g := BuildCFG(m)
	// Blocks: [const,if] [goto] [:alt,const] [:out,return]
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4: %+v", len(g.Blocks), g.Blocks)
	}
	if got := g.Blocks[0].Succs; !reflect.DeepEqual(sortedInts(got), []int{1, 2}) {
		t.Errorf("entry succs = %v", got)
	}
	join := g.Blocks[3]
	if !reflect.DeepEqual(sortedInts(join.Preds), []int{1, 2}) {
		t.Errorf("join preds = %v", join.Preds)
	}
	for _, b := range g.Blocks {
		if !b.Reachable {
			t.Errorf("block %d unreachable in a diamond", b.Index)
		}
	}
	// Both arms' definitions reach the join (may-analysis).
	r := Reaching(g)
	retIdx := len(m.Instructions) - 1
	if got := r.ConstsAt(retIdx, "v0"); !reflect.DeepEqual(got, []string{"0x0", "0x1"}) {
		t.Errorf("consts at join = %v, want [0x0 0x1]", got)
	}
}

func TestCFGUnreachableBlock(t *testing.T) {
	// The middle block is dead: entry jumps straight to :out, and the dead
	// store of 0x7 must not reach the return.
	m := parseMethod(t, `    const/4 v0, 0x0
    goto :out
:dead
    const/4 v0, 0x7
:out
    return-void
`)
	g := BuildCFG(m)
	unreach := g.Unreachable()
	if len(unreach) != 1 {
		t.Fatalf("unreachable blocks = %d, want 1", len(unreach))
	}
	if first := m.Instructions[unreach[0].Start]; first.Kind != KindLabel || first.Label != "dead" {
		t.Errorf("unreachable block starts at %+v", first)
	}
	r := Reaching(g)
	retIdx := len(m.Instructions) - 1
	if got := r.ConstsAt(retIdx, "v0"); !reflect.DeepEqual(got, []string{"0x0"}) {
		t.Errorf("consts at return = %v, want [0x0] (dead store must not flow)", got)
	}
}

// TestReachingBackwardGoto is the register-overwrite regression: in
// execution order v3 is set to MODE_WORLD_READABLE and then overwritten
// with 0x0 before the call, but textual order is reversed by the backward
// jump — a last-write-wins scan over the lines resolves v3 to
// MODE_WORLD_READABLE, while reaching definitions prove only 0x0 arrives.
func TestReachingBackwardGoto(t *testing.T) {
	m := parseMethod(t, `    goto :init
:fix
    const/4 v3, 0x0
    goto :use
:init
    const/4 v3, MODE_WORLD_READABLE
    goto :fix
:use
    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
    return-void
`)
	g := BuildCFG(m)
	for _, b := range g.Blocks {
		if !b.Reachable {
			t.Fatalf("block %d should be reachable (backward goto, not dead code)", b.Index)
		}
	}
	r := Reaching(g)
	var invokeIdx int
	for _, ins := range m.Instructions {
		if ins.Kind == KindInvoke {
			invokeIdx = ins.Index
		}
	}
	if got := r.ConstsAt(invokeIdx, "v3"); !reflect.DeepEqual(got, []string{"0x0"}) {
		t.Errorf("consts at call = %v, want [0x0] only", got)
	}
	// A flattened textual scan gets this wrong: the last const before the
	// call line assigns MODE_WORLD_READABLE.
	lastTextual := ""
	for _, ins := range m.Instructions {
		if ins.Index >= invokeIdx {
			break
		}
		if ins.Kind == KindConst && ins.Dest == "v3" {
			lastTextual = ins.Value
		}
	}
	if lastTextual != "MODE_WORLD_READABLE" {
		t.Fatalf("test fixture broken: textual last write = %q", lastTextual)
	}
}

func TestReachingLoop(t *testing.T) {
	// A loop: the back edge carries the redefinition around, so both the
	// initial and loop-body definitions may reach the header's use.
	m := parseMethod(t, `    const/4 v0, 0x0
:head
    invoke-static {v0}, Lt;->use(I)V
    const/4 v0, 0x1
    if-eqz v9, :head
    return-void
`)
	g := BuildCFG(m)
	r := Reaching(g)
	if got := r.ConstsAt(2, "v0"); !reflect.DeepEqual(got, []string{"0x0", "0x1"}) {
		t.Errorf("consts at loop-header use = %v, want [0x0 0x1]", got)
	}
}

func TestReachingUndefinedRegister(t *testing.T) {
	m := parseMethod(t, "    invoke-virtual {v9, v3}, Ljava/io/File;->setReadable(Z)Z\n    return-void\n")
	r := Reaching(BuildCFG(m))
	if got := r.ConstsAt(0, "v3"); len(got) != 0 {
		t.Errorf("undefined register has consts %v", got)
	}
	if got := r.DefsAt(0, "v3"); len(got) != 0 {
		t.Errorf("undefined register has defs %v", got)
	}
}

func TestCFGEmptyMethod(t *testing.T) {
	m := parseMethod(t, "")
	g := BuildCFG(m)
	if len(g.Blocks) != 0 {
		t.Errorf("blocks = %d", len(g.Blocks))
	}
	if r := Reaching(g); r == nil {
		t.Error("nil reaching defs")
	}
}

func sortedInts(in []int) []int {
	out := append([]int(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
