package analysis

import "strings"

// Taint is the dataflow lattice element: a bitmask whose join is bitwise
// OR. The low bits are source kinds; the remaining bits track which formal
// parameters a value may derive from, which is what lets per-method
// summaries compose across calls.
type Taint uint32

// Source taint kinds.
const (
	// TaintExternalPath: the value may be a shared external-storage path —
	// an /sdcard literal or the result of an Environment getter. Anything
	// staged at such a path is replaceable by any WRITE_EXTERNAL_STORAGE
	// holder, the paper's core GIA condition.
	TaintExternalPath Taint = 1 << iota
	// TaintIntentExtra: the value came out of an Intent extra — attacker
	// influenced when the receiving component is exported.
	TaintIntentExtra
)

// sourceTaints masks the source kinds out of a lattice element.
const sourceTaints = TaintExternalPath | TaintIntentExtra

// taintParamShift is the bit position of parameter 0's bit.
const taintParamShift = 2

// MaxTrackedParams bounds how many formal parameters a summary tracks
// (p0..p15); higher registers degrade soundly to untracked.
const MaxTrackedParams = 30

// ParamTaint returns the lattice bit for formal parameter i, or 0 when i
// is out of the tracked range.
func ParamTaint(i int) Taint {
	if i < 0 || i >= MaxTrackedParams {
		return 0
	}
	return Taint(1) << (taintParamShift + i)
}

// paramBits extracts the parameter-derivation bits of t as a 0-based
// parameter bitmask.
func paramBits(t Taint) uint32 { return uint32(t >> taintParamShift) }

// Dataflow source/sink markers. Every substring here must also appear in
// DefaultCanonMarkers, or the cache's canonicalizer could rewrite a source
// into or out of existence.
var externalPathMarkers = []string{"/sdcard", "/storage/emulated"}

const (
	envGetterPrefix   = "Landroid/os/Environment;->getExternalStorage"
	intentExtraMarker = "->getStringExtra("
)

// installSinkMarkers are the call-target substrings that consume a staged
// APK path: handing one a value derived from external storage is the
// cross-method staging pattern the taint rule flags.
var installSinkMarkers = []string{"setDataAndType", "installPackage"}

func isExternalPathConst(v string) bool {
	for _, m := range externalPathMarkers {
		if strings.Contains(v, m) {
			return true
		}
	}
	return false
}

func isInstallSink(target string) bool {
	for _, m := range installSinkMarkers {
		if strings.Contains(target, m) {
			return true
		}
	}
	return false
}

// MethodSummary is one method's interprocedural behaviour, abstracted to
// the taint lattice.
type MethodSummary struct {
	// Ret is the taint the return value may carry: source bits for taint
	// the method introduces itself, parameter bits for pass-through (bit i
	// set means "the return may derive from formal parameter i").
	Ret Taint
	// SinkParams is a bitmask of formal parameters that may flow into an
	// install sink inside the method (directly or through further calls).
	SinkParams uint32
}

// ClassSummaries holds the bottom-up summary fixpoint for one class. A
// computed ClassSummaries is immutable and safe to share across goroutines
// — which is what lets the engine cache them content-addressed.
type ClassSummaries struct {
	graph   *CallGraph
	byIndex []MethodSummary
}

// Graph returns the call graph the summaries were computed over.
func (s *ClassSummaries) Graph() *CallGraph { return s.graph }

// Of returns the summary for a method descriptor, reporting whether the
// descriptor resolved within the class.
func (s *ClassSummaries) Of(descriptor string) (MethodSummary, bool) {
	if s == nil {
		return MethodSummary{}, false
	}
	i, ok := s.graph.Resolve(descriptor)
	if !ok {
		return MethodSummary{}, false
	}
	return s.byIndex[i], true
}

// ComputeSummaries runs the bottom-up summary fixpoint over the class's
// SCC condensation: components are processed callee-first, and within a
// (possibly recursive) component the member summaries iterate to a fixed
// point. The lattice is a finite bitmask under union and every transfer is
// monotone, so the iteration terminates.
func ComputeSummaries(ci *ClassInfo) *ClassSummaries {
	g := ci.CallGraph()
	s := &ClassSummaries{graph: g, byIndex: make([]MethodSummary, len(g.Methods))}
	for _, scc := range g.SCCs {
		for changed := true; changed; {
			changed = false
			for _, mi := range scc {
				flow := taintFlow{mi: ci.Methods[mi], sums: s, seedParams: true}
				sum := flow.summarize()
				if sum != s.byIndex[mi] {
					s.byIndex[mi] = sum
					changed = true
				}
			}
		}
	}
	return s
}

// paramIndex maps a parameter register name (p0, p1, …) to its index, or
// -1 for non-parameter registers.
func paramIndex(reg string) int {
	if len(reg) < 2 || reg[0] != 'p' {
		return -1
	}
	n := 0
	for i := 1; i < len(reg); i++ {
		d := reg[i]
		if d < '0' || d > '9' {
			return -1
		}
		n = n*10 + int(d-'0')
		if n >= MaxTrackedParams {
			return -1
		}
	}
	return n
}

// taintState maps live registers to their lattice element.
type taintState map[string]Taint

func (t taintState) clone() taintState {
	out := make(taintState, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// merge unions other into t, reporting growth.
func (t taintState) merge(other taintState) bool {
	changed := false
	for reg, taint := range other {
		if t[reg]|taint != t[reg] {
			t[reg] |= taint
			changed = true
		}
	}
	return changed
}

// taintFlow evaluates one method's taint dataflow over its CFG.
//
// Modes:
//   - summaries (seedParams=true): parameter registers are seeded with
//     their ParamTaint bits so the resulting Ret/SinkParams express the
//     method's behaviour as a function of its inputs.
//   - findings (seedParams=false): parameters are seeded empty; only
//     source-introduced taint flows, and sink hits become findings (the
//     caller attributes flows into callee sinks at the call site, so no
//     flow is ever double-reported).
//   - intraprocedural (sums=nil): every call is opaque — results carry no
//     taint unless the callee is a recognized source API. Used as the
//     baseline the fuzz harness proves interprocedural results subsume.
type taintFlow struct {
	mi         *MethodInfo
	sums       *ClassSummaries
	seedParams bool

	in      []taintState
	pending Taint // result taint of the last invoke in the current block walk
}

// fixpoint computes per-block entry states with the same reachable-blocks
// worklist the reaching-definitions pass uses.
func (f *taintFlow) fixpoint() {
	g := f.mi.CFG()
	f.in = make([]taintState, len(g.Blocks))
	for i := range f.in {
		f.in[i] = make(taintState)
	}
	if len(g.Blocks) == 0 {
		return
	}
	if f.seedParams {
		entry := f.in[0]
		for _, ins := range f.mi.Method.Instructions {
			seedParamRegs(entry, ins)
		}
	}
	workPtr := intScratchPool.Get().(*[]int)
	queuedPtr := boolScratchPool.Get().(*[]bool)
	work := (*workPtr)[:0]
	queued := (*queuedPtr)[:0]
	for range g.Blocks {
		queued = append(queued, false)
	}
	for _, b := range g.Blocks {
		if b.Reachable {
			work = append(work, b.Index)
			queued[b.Index] = true
		}
	}
	for head := 0; head < len(work); head++ {
		bi := work[head]
		queued[bi] = false
		out := f.transfer(bi, nil)
		for _, s := range g.Blocks[bi].Succs {
			if f.in[s].merge(out) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	*workPtr = work[:0]
	intScratchPool.Put(workPtr)
	*queuedPtr = queued[:0]
	boolScratchPool.Put(queuedPtr)
}

// seedParamRegs pre-taints every parameter register ins mentions. Walking
// the instructions for mentions (rather than guessing a register count)
// keeps the seeding exact: registers that never occur cannot matter.
func seedParamRegs(entry taintState, ins Instruction) {
	seed := func(reg string) {
		if i := paramIndex(reg); i >= 0 {
			entry[reg] |= ParamTaint(i)
		}
	}
	seed(ins.Dest)
	seed(ins.Src)
	seed(ins.Cond)
	for _, a := range ins.Args {
		seed(a)
	}
}

// transfer walks block bi from its entry state. When visit is non-nil it
// is called at each invoke with the state in effect just before the call —
// the replay mode the findings and summary collectors use.
func (f *taintFlow) transfer(bi int, visit func(ins Instruction, state taintState)) taintState {
	state := f.in[bi].clone()
	b := f.mi.CFG().Blocks[bi]
	f.pending = 0
	for i := b.Start; i < b.End; i++ {
		ins := f.mi.Method.Instructions[i]
		switch ins.Kind {
		case KindConst:
			if isExternalPathConst(ins.Value) {
				state[ins.Dest] = TaintExternalPath
			} else {
				state[ins.Dest] = 0
			}
		case KindMove:
			if ins.Src == "" {
				state[ins.Dest] = f.pending
			} else {
				state[ins.Dest] = state[ins.Src]
			}
		case KindInvoke:
			if visit != nil {
				visit(ins, state)
			}
			f.pending = f.resultTaint(ins, state)
		}
	}
	return state
}

// resultTaint is the abstract call: source APIs introduce taint, resolved
// callees apply their summary, unknown callees degrade to argument
// pass-through (top for what we track — never drops taint, never invents
// sources). The intraprocedural mode drops to bottom instead, so its
// results are always a subset of the interprocedural ones.
func (f *taintFlow) resultTaint(ins Instruction, state taintState) Taint {
	if strings.HasPrefix(ins.Target, envGetterPrefix) {
		return TaintExternalPath
	}
	if strings.Contains(ins.Target, intentExtraMarker) {
		return TaintIntentExtra
	}
	if f.sums == nil {
		return 0 // intraprocedural baseline: opaque call
	}
	if idx, ok := f.sums.graph.Resolve(ins.Target); ok {
		sum := f.sums.byIndex[idx]
		r := sum.Ret & sourceTaints // source taint the callee introduces itself
		for i, reg := range ins.Args {
			if sum.Ret&ParamTaint(i) != 0 {
				r |= state[reg]
			}
		}
		return r
	}
	var r Taint
	for _, reg := range ins.Args {
		r |= state[reg]
	}
	return r
}

// summarize computes the method's summary: fixpoint, then one replay pass
// collecting return taint and parameter-to-sink flows.
func (f *taintFlow) summarize() MethodSummary {
	f.fixpoint()
	var sum MethodSummary
	g := f.mi.CFG()
	for _, b := range g.Blocks {
		if !b.Reachable {
			continue
		}
		state := f.transfer(b.Index, func(ins Instruction, st taintState) {
			f.eachSinkArg(ins, st, func(_ int, argTaint Taint) {
				sum.SinkParams |= paramBits(argTaint)
			})
		})
		last := f.mi.Method.Instructions[b.End-1]
		if last.Kind == KindReturn && last.Src != "" {
			sum.Ret |= state[last.Src]
		}
	}
	return sum
}

// eachSinkArg reports every argument of ins that flows into an install
// sink: directly when ins targets a sink API, or through a resolved callee
// whose summary sinks the corresponding parameter. Unknown callees are
// pass-through, not sinks, so they never report here.
func (f *taintFlow) eachSinkArg(ins Instruction, state taintState, report func(argPos int, argTaint Taint)) {
	if isInstallSink(ins.Target) {
		for i, reg := range ins.Args {
			report(i, state[reg])
		}
		return
	}
	if f.sums == nil {
		return
	}
	if idx, ok := f.sums.graph.Resolve(ins.Target); ok {
		sinks := f.sums.byIndex[idx].SinkParams
		for i, reg := range ins.Args {
			if sinks&(1<<uint(i)) != 0 {
				report(i, state[reg])
			}
		}
	}
}

// classHasTaintSourceAndSink is the cheap gate in front of the dataflow: a
// finding needs an external-path source (literal or Environment getter)
// and an install sink somewhere in the class, so a class missing either
// can skip call-graph, summary and fixpoint work entirely. Flows through
// callee summaries change nothing — the callee is in the same class, so
// its source/sink still shows up in this scan.
func classHasTaintSourceAndSink(c *Class) bool {
	hasSource, hasSink := false, false
	for _, m := range c.Methods {
		for _, ins := range m.Instructions {
			switch ins.Kind {
			case KindConst:
				if !hasSource && isExternalPathConst(ins.Value) {
					hasSource = true
				}
			case KindInvoke:
				if !hasSource && strings.HasPrefix(ins.Target, envGetterPrefix) {
					hasSource = true
				}
				if !hasSink && isInstallSink(ins.Target) {
					hasSink = true
				}
			}
			if hasSource && hasSink {
				return true
			}
		}
	}
	return false
}

// taintFindings runs the findings pass for rule r over every method:
// parameters seeded empty, sink flows of external-path taint reported at
// the instruction that hands the value over.
func taintFindings(r Rule, ci *ClassInfo, sums *ClassSummaries) []Finding {
	var out []Finding
	for _, mi := range ci.Methods {
		f := taintFlow{mi: mi, sums: sums}
		f.fixpoint()
		g := mi.CFG()
		for _, b := range g.Blocks {
			if !b.Reachable {
				continue
			}
			f.transfer(b.Index, func(ins Instruction, st taintState) {
				f.eachSinkArg(ins, st, func(_ int, argTaint Taint) {
					if argTaint&TaintExternalPath == 0 {
						return
					}
					out = append(out, finding(r, mi.Method, ins,
						"external-storage path may reach install sink "+callName(ins.Target)))
				})
			})
		}
	}
	return dedupeFindings(out)
}
