package analysis

import (
	"github.com/ghost-installer/gia/internal/memo"
	"github.com/ghost-installer/gia/internal/obs"
)

// EngineOptions configure optional engine behaviour. The zero value is a
// plain uncached engine, identical to NewEngine.
type EngineOptions struct {
	// CacheCapacity > 0 enables the content-addressed analysis cache,
	// bounded (LRU) to roughly that many distinct canonical sources.
	// Template-shared corpora collapse to a few dozen entries, so even a
	// small capacity turns a corpus re-scan into hash-and-rehydrate work.
	CacheCapacity int
	// CacheMarkers overrides the marker set guarding canonicalization.
	// nil selects DefaultCanonMarkers(), which is sound for DefaultRules.
	// An engine running custom rules with the cache enabled must supply
	// markers covering every substring/constant those rules match on.
	CacheMarkers []string
	// Registry, when non-nil, re-homes the engine's telemetry onto it:
	// scan counters under "analysis.scan.*" and — with the cache enabled —
	// the two memo layers under "analysis.cache.raw.*" and
	// "analysis.cache.canon.*". Equivalent to calling Observe afterwards.
	Registry *obs.Registry
	// Trace, when non-nil, gives ScanCorpus workers wall-clock
	// "scan/worker-K" tracks with one span per scanned artifact.
	Trace *obs.Trace
}

// NewEngineWithOptions builds an engine with the given options; with no
// rules it loads DefaultRules. A cached engine produces byte-identical
// findings and stats to an uncached one — the cache only changes how often
// the analyses actually run.
func NewEngineWithOptions(o EngineOptions, rules ...Rule) *Engine {
	e := NewEngine(rules...)
	if o.CacheCapacity > 0 {
		markers := o.CacheMarkers
		if markers == nil {
			markers = DefaultCanonMarkers()
		}
		e.cache = &sourceCache{
			canon: NewCanonicalizer(markers),
			raw:   memo.New[cachedSource](o.CacheCapacity),
			table: memo.New[cachedSource](o.CacheCapacity),
			sums:  memo.New[*ClassSummaries](o.CacheCapacity),
		}
	}
	e.trace = o.Trace
	e.Observe(o.Registry)
	return e
}

// Observe re-homes the engine's telemetry onto reg: the per-scan counters
// ("analysis.scan.files", ".instructions", ".findings", ".parse_errors"
// and the ".cache.hits/misses/deduped" outcome split) plus, on a cached
// engine, both memo layers. Values accumulated so far carry over. Call it
// before scanning concurrently; a nil registry is a no-op.
func (e *Engine) Observe(reg *obs.Registry) {
	if e == nil || reg == nil {
		return
	}
	obs.Rehome(reg, "analysis.scan.files", &e.met.files)
	obs.Rehome(reg, "analysis.scan.instructions", &e.met.instructions)
	obs.Rehome(reg, "analysis.scan.findings", &e.met.findings)
	obs.Rehome(reg, "analysis.scan.parse_errors", &e.met.parseErrors)
	obs.Rehome(reg, "analysis.scan.cache.hits", &e.met.cacheHits)
	obs.Rehome(reg, "analysis.scan.cache.misses", &e.met.cacheMisses)
	obs.Rehome(reg, "analysis.scan.cache.deduped", &e.met.cacheDeduped)
	if e.cache != nil {
		e.cache.raw.Observe(reg, "analysis.cache.raw")
		e.cache.table.Observe(reg, "analysis.cache.canon")
		e.cache.sums.Observe(reg, "analysis.cache.summaries")
	}
}

// CacheStats snapshots the engine's analysis-cache counters, summed over
// both levels (the raw-content layer and the canonical-template layer).
// ok is false for an uncached engine.
func (e *Engine) CacheStats() (st memo.Stats, ok bool) {
	if e.cache == nil {
		return memo.Stats{}, false
	}
	r, t := e.cache.raw.Stats(), e.cache.table.Stats()
	return memo.Stats{
		Hits:      r.Hits + t.Hits,
		Misses:    r.Misses + t.Misses,
		Deduped:   r.Deduped + t.Deduped,
		Evictions: r.Evictions + t.Evictions,
		Entries:   r.Entries + t.Entries,
	}, true
}

// SummaryCacheStats snapshots the content-addressed summary-object cache —
// the per-class interprocedural summaries the taint rules share across
// template twins. It is reported separately from CacheStats because
// summaries are only computed on template-level misses: its counters are
// a strict subset of the analysis traffic, not a third serving level.
func (e *Engine) SummaryCacheStats() (st memo.Stats, ok bool) {
	if e.cache == nil {
		return memo.Stats{}, false
	}
	return e.cache.sums.Stats(), true
}

// cachedSource is one memoized analysis: the findings and stats of the
// canonical source. Findings still carry placeholders (and the file name
// of whichever artifact missed first); rehydrate fixes both per caller.
type cachedSource struct {
	findings []Finding
	stats    Stats
}

// sourceCache is the engine's two-level content-addressed analysis cache.
// The raw level keys on (file name, exact bytes) and stores fully
// rehydrated findings, so re-scanning an unchanged file — corpus re-scans,
// multiple table renders over one corpus — costs one hash, one lookup and
// one findings clone, skipping canonicalization entirely. The template
// level keys on canonicalized bytes and is what collapses template-shared
// corpora to a few dozen distinct analyses on first contact.
type sourceCache struct {
	canon *Canonicalizer
	raw   *memo.Table[cachedSource]
	table *memo.Table[cachedSource]
	// sums caches per-class summary objects by the content address of the
	// bytes the analysis actually ran on (canonical bytes on the template
	// path), so template twins share one immutable ClassSummaries.
	sums *memo.Table[*ClassSummaries]
}

// analyze serves one file through the cache. The returned findings are
// re-attributed to file with placeholders expanded, but the slice may be
// SHARED with the cache entry: callers must copy the elements (as
// ScanAPK's append does) before exposing a mutable slice. The reported
// outcome is Hit only when an actual analysis was skipped at either
// level; a raw-level miss that hits the template level is a Hit.
func (c *sourceCache) analyze(e *Engine, file string, src []byte) ([]Finding, Stats, memo.Outcome, error) {
	rawKey := memo.KeyOfNamed(file, src)
	var inner memo.Outcome
	v, outcome, err := c.raw.Do(rawKey, func() (cachedSource, error) {
		findings, stats, o, err := c.analyzeShared(e, file, src)
		inner = o
		if err != nil {
			return cachedSource{}, err
		}
		return cachedSource{findings: findings, stats: stats}, nil
	})
	if outcome == memo.Miss {
		// The raw layer didn't have it; report how the template layer
		// served the analysis instead (Hit for template twins).
		outcome = inner
	}
	if err != nil {
		return nil, Stats{Files: 1, ParseErrors: 1}, outcome, err
	}
	// The stored findings already carry this file's names (the raw key
	// includes the file name), so no re-attribution is needed; the slice
	// is returned as-is and stays owned by the cache entry.
	if len(v.findings) == 0 {
		return nil, v.stats, outcome, nil
	}
	return v.findings, v.stats, outcome, nil
}

// analyzeShared is the template-level path: canonicalize, serve from the
// shared table, rehydrate for this file.
func (c *sourceCache) analyzeShared(e *Engine, file string, src []byte) ([]Finding, Stats, memo.Outcome, error) {
	canon, subs, canonOK := c.canon.Canonicalize(src)
	key := memo.KeyOf(canon)
	v, outcome, err := c.table.Do(key, func() (cachedSource, error) {
		findings, stats, err := e.analyzeUncached(file, canon)
		if err != nil {
			return cachedSource{}, err
		}
		return cachedSource{findings: findings, stats: stats}, nil
	})
	if canonOK {
		ReleaseCanon(canon)
	}
	if err != nil {
		if !canonOK {
			// canon aliases src: the error is the real analysis error.
			return nil, Stats{Files: 1, ParseErrors: 1}, outcome, err
		}
		// The canonical source failed to analyze. That can only happen on
		// pathological inputs where a substitution lands outside the
		// guards' reach (e.g. inside an `.end method` operand); fall back
		// to analyzing the original directly, uncached.
		findings, stats, err := e.analyzeUncached(file, src)
		return findings, stats, outcome, err
	}
	return rehydrate(v, subs, file), v.stats, outcome, nil
}

// rehydrate re-attributes a cached analysis to the requesting file:
// findings are cloned, their File overwritten, placeholders expanded back
// to the app's concrete strings, and the result re-sorted (expansion can
// change message order).
func rehydrate(v cachedSource, subs []string, file string) []Finding {
	if len(v.findings) == 0 {
		return nil
	}
	out := make([]Finding, len(v.findings))
	copy(out, v.findings)
	for i := range out {
		out[i].File = file
		if len(subs) > 0 {
			out[i].Class = Expand(out[i].Class, subs)
			out[i].Method = Expand(out[i].Method, subs)
			out[i].Message = Expand(out[i].Message, subs)
		}
	}
	sortFindings(out)
	return out
}
