package analysis

import (
	"fmt"

	"github.com/ghost-installer/gia/internal/memo"
)

// Severity ranks a finding.
type Severity int

// Severities.
const (
	// SeverityInfo: a capability marker (install API, market links).
	SeverityInfo Severity = iota
	// SeverityWarning: a pattern that degrades security or analyzability.
	SeverityWarning
	// SeverityVuln: the GIA-vulnerable pattern itself.
	SeverityVuln
)

func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityVuln:
		return "vuln"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Finding is one rule hit with full provenance.
type Finding struct {
	RuleID   string
	Severity Severity
	File     string
	Class    string
	Method   string
	Line     int
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s (%s %s)", f.File, f.Line, f.RuleID, f.Message, f.Class, f.Method)
}

// MethodInfo bundles a method with lazily built analysis facts so rules
// share one CFG and one reaching-definitions fixpoint per method. A
// MethodInfo is not safe for concurrent use; the scanner gives each worker
// its own.
type MethodInfo struct {
	Method *Method
	cfg    *CFG
	reach  *ReachingDefs
}

// CFG returns the method's control-flow graph, building it on first use.
func (mi *MethodInfo) CFG() *CFG {
	if mi.cfg == nil {
		mi.cfg = BuildCFG(mi.Method)
	}
	return mi.cfg
}

// Reaching returns the method's reaching-definitions facts, computing them
// on first use.
func (mi *MethodInfo) Reaching() *ReachingDefs {
	if mi.reach == nil {
		mi.reach = Reaching(mi.CFG())
	}
	return mi.reach
}

// ClassInfo is the unit rules check: a parsed class plus per-method facts
// and lazily built whole-class facts (call graph, taint summaries).
type ClassInfo struct {
	Class   *Class
	Methods []*MethodInfo

	cg   *CallGraph
	sums *ClassSummaries

	// sumTable/sumKey, when set by a cache-enabled engine, serve Summaries
	// content-addressed: classes with identical (canonical) source share
	// one immutable ClassSummaries object instead of recomputing it.
	sumTable *memo.Table[*ClassSummaries]
	sumKey   memo.Key
}

// NewClassInfo wraps a parsed class for rule checking.
func NewClassInfo(c *Class) *ClassInfo {
	ci := &ClassInfo{Class: c, Methods: make([]*MethodInfo, len(c.Methods))}
	for i, m := range c.Methods {
		ci.Methods[i] = &MethodInfo{Method: m}
	}
	return ci
}

// CallGraph returns the class-local call graph, building it on first use.
func (ci *ClassInfo) CallGraph() *CallGraph {
	if ci.cg == nil {
		ci.cg = BuildCallGraph(ci.Class)
	}
	return ci.cg
}

// Summaries returns the class's interprocedural taint summaries, computing
// them on first use — through the engine's content-addressed summary cache
// when one is attached.
func (ci *ClassInfo) Summaries() *ClassSummaries {
	if ci.sums == nil {
		if ci.sumTable != nil {
			v, _, _ := ci.sumTable.Do(ci.sumKey, func() (*ClassSummaries, error) {
				return ComputeSummaries(ci), nil
			})
			ci.sums = v
		} else {
			ci.sums = ComputeSummaries(ci)
		}
	}
	return ci.sums
}

// Rule is one pluggable GIA detector.
type Rule interface {
	// ID is the stable rule identifier, e.g. "gia/sdcard-staging".
	ID() string
	// Severity is the rank attached to this rule's findings.
	Severity() Severity
	// Description is a one-line summary for CLI output.
	Description() string
	// Check reports every hit in the class.
	Check(ci *ClassInfo) []Finding
}

// dedupeFindings collapses findings sharing (RuleID, Class, Method, Line),
// keeping the first emission. A rule that resolves one call site through
// several registers (or several dataflow paths) otherwise reports the same
// defect once per path — one defect per rule per line is the contract.
func dedupeFindings(fs []Finding) []Finding {
	if len(fs) < 2 {
		return fs
	}
	type site struct {
		rule, class, method string
		line                int
	}
	seen := make(map[site]bool, len(fs))
	out := fs[:0]
	for _, f := range fs {
		k := site{f.RuleID, f.Class, f.Method, f.Line}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// finding builds a Finding for rule r at instruction ins of method m.
func finding(r Rule, m *Method, ins Instruction, msg string) Finding {
	return Finding{
		RuleID:   r.ID(),
		Severity: r.Severity(),
		File:     m.File,
		Class:    m.Class,
		Method:   m.Name,
		Line:     ins.Line,
		Message:  msg,
	}
}
