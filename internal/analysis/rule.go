package analysis

import "fmt"

// Severity ranks a finding.
type Severity int

// Severities.
const (
	// SeverityInfo: a capability marker (install API, market links).
	SeverityInfo Severity = iota
	// SeverityWarning: a pattern that degrades security or analyzability.
	SeverityWarning
	// SeverityVuln: the GIA-vulnerable pattern itself.
	SeverityVuln
)

func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityVuln:
		return "vuln"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Finding is one rule hit with full provenance.
type Finding struct {
	RuleID   string
	Severity Severity
	File     string
	Class    string
	Method   string
	Line     int
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s (%s %s)", f.File, f.Line, f.RuleID, f.Message, f.Class, f.Method)
}

// MethodInfo bundles a method with lazily built analysis facts so rules
// share one CFG and one reaching-definitions fixpoint per method. A
// MethodInfo is not safe for concurrent use; the scanner gives each worker
// its own.
type MethodInfo struct {
	Method *Method
	cfg    *CFG
	reach  *ReachingDefs
}

// CFG returns the method's control-flow graph, building it on first use.
func (mi *MethodInfo) CFG() *CFG {
	if mi.cfg == nil {
		mi.cfg = BuildCFG(mi.Method)
	}
	return mi.cfg
}

// Reaching returns the method's reaching-definitions facts, computing them
// on first use.
func (mi *MethodInfo) Reaching() *ReachingDefs {
	if mi.reach == nil {
		mi.reach = Reaching(mi.CFG())
	}
	return mi.reach
}

// ClassInfo is the unit rules check: a parsed class plus per-method facts.
type ClassInfo struct {
	Class   *Class
	Methods []*MethodInfo
}

// NewClassInfo wraps a parsed class for rule checking.
func NewClassInfo(c *Class) *ClassInfo {
	ci := &ClassInfo{Class: c, Methods: make([]*MethodInfo, len(c.Methods))}
	for i, m := range c.Methods {
		ci.Methods[i] = &MethodInfo{Method: m}
	}
	return ci
}

// Rule is one pluggable GIA detector.
type Rule interface {
	// ID is the stable rule identifier, e.g. "gia/sdcard-staging".
	ID() string
	// Severity is the rank attached to this rule's findings.
	Severity() Severity
	// Description is a one-line summary for CLI output.
	Description() string
	// Check reports every hit in the class.
	Check(ci *ClassInfo) []Finding
}

// finding builds a Finding for rule r at instruction ins of method m.
func finding(r Rule, m *Method, ins Instruction, msg string) Finding {
	return Finding{
		RuleID:   r.ID(),
		Severity: r.Severity(),
		File:     m.File,
		Class:    m.Class,
		Method:   m.Name,
		Line:     ins.Line,
		Message:  msg,
	}
}
