package analysis

import "testing"

func mkFinding(rule string, line int) Finding {
	return Finding{RuleID: rule, File: "t.smali", Class: "Lt;", Method: "m()V", Line: line}
}

func TestScoreWeightsByPresenceNotVolume(t *testing.T) {
	one := []Finding{mkFinding(RuleIDSDCardStaging, 3)}
	three := []Finding{
		mkFinding(RuleIDSDCardStaging, 3),
		mkFinding(RuleIDSDCardStaging, 8),
		mkFinding(RuleIDSDCardStaging, 12),
	}
	if Score(one) != Score(three) {
		t.Errorf("finding volume changed the score: %d vs %d", Score(one), Score(three))
	}
	if Score(one) != 25 {
		t.Errorf("sdcard-staging alone = %d, want 25", Score(one))
	}
}

func TestScoreAdditiveAcrossRules(t *testing.T) {
	fs := []Finding{
		mkFinding(RuleIDTaintStaging, 3),
		mkFinding(RuleIDInstallAPI, 4),
	}
	if got := Score(fs); got != 45 {
		t.Errorf("taint+install = %d, want 45", got)
	}
}

func TestScoreMarketLinksCapped(t *testing.T) {
	var two, many []Finding
	for i := 0; i < 2; i++ {
		two = append(two, mkFinding(RuleIDMarketLink, 3+i))
	}
	for i := 0; i < 40; i++ {
		many = append(many, mkFinding(RuleIDMarketLink, 3+i))
	}
	if got := Score(two); got != 2*marketLinkWeight {
		t.Errorf("two links = %d, want %d", got, 2*marketLinkWeight)
	}
	if got := Score(many); got != marketLinkCap {
		t.Errorf("link farm = %d, want capped %d", got, marketLinkCap)
	}
}

func TestScoreDefenseDeductions(t *testing.T) {
	base := []Finding{mkFinding(RuleIDSDCardStaging, 3)}
	defended := append(append([]Finding{}, base...),
		mkFinding(RuleIDSelfSigCheck, 9),
		mkFinding(RuleIDIntegrityCheck, 14),
	)
	want := 25 - 10 - 8
	if got := Score(defended); got != want {
		t.Errorf("defended app = %d, want %d", got, want)
	}
	// Defenses alone cannot go below zero.
	onlyDefense := []Finding{mkFinding(RuleIDSelfSigCheck, 9)}
	if got := Score(onlyDefense); got != 0 {
		t.Errorf("defense-only score = %d, want clamp at 0", got)
	}
}

func TestScoreClampsAtCeiling(t *testing.T) {
	var fs []Finding
	for rule := range ruleWeights {
		fs = append(fs, mkFinding(rule, len(fs)+1))
	}
	for i := 0; i < 20; i++ {
		fs = append(fs, mkFinding(RuleIDMarketLink, 100+i))
	}
	if got := Score(fs); got != MaxScore {
		t.Errorf("everything at once = %d, want clamp at %d", got, MaxScore)
	}
	if Score(nil) != 0 {
		t.Errorf("empty findings score %d, want 0", Score(nil))
	}
}

func TestScoreBuckets(t *testing.T) {
	cases := map[int]int{0: 0, 19: 0, 20: 1, 59: 2, 79: 3, 80: 4, 100: 4}
	for score, want := range cases {
		if got := ScoreBucket(score); got != want {
			t.Errorf("ScoreBucket(%d) = %d, want %d", score, got, want)
		}
	}
	seen := map[string]bool{}
	for b := 0; b < ScoreBuckets; b++ {
		l := ScoreBucketLabel(b)
		if l == "" || seen[l] {
			t.Errorf("bucket %d label %q empty or duplicated", b, l)
		}
		seen[l] = true
	}
}

// TestReportScore pins the end-to-end wiring: ScanAPK derives the score
// from its sorted findings.
func TestReportScore(t *testing.T) {
	src := wrap(`    const-string v0, "application/vnd.android.package-archive"
    invoke-virtual {p1, v1, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
`)
	eng := NewEngine()
	findings, _, err := eng.AnalyzeSource("t.smali", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := Score(findings); got != ruleWeights[RuleIDInstallAPI] {
		t.Errorf("install-api fixture scores %d, want %d", got, ruleWeights[RuleIDInstallAPI])
	}
}
