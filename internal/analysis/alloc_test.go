package analysis

import "testing"

// Alloc-budget tests pin the front-end's per-instruction allocation cost
// so regressions (a dropped intern, a lost scratch pool, an accidental
// string copy) fail loudly. Budgets carry headroom over measured values
// (~2.1 parse, ~9.6 full at the time of writing); they are ceilings, not
// targets. Race instrumentation changes allocation counts, so these skip
// under -race — verify.sh runs them in a separate non-race pass.

func allocsPerInstruction(t *testing.T, runs int, src []byte, f func()) float64 {
	t.Helper()
	cls, err := ParseBytes("budget.smali", src)
	if err != nil {
		t.Fatal(err)
	}
	n := cls.Instructions()
	if n == 0 {
		t.Fatal("fixture has no instructions")
	}
	return testing.AllocsPerRun(runs, f) / float64(n)
}

func TestParseAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	src := []byte(goodSmali)
	got := allocsPerInstruction(t, 500, src, func() {
		if _, err := ParseBytes("budget.smali", src); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 3.0
	if got > budget {
		t.Errorf("ParseBytes allocates %.2f/instruction, budget %.1f", got, budget)
	}
}

func TestAnalyzeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	eng := NewEngine()
	src := []byte(goodSmali)
	got := allocsPerInstruction(t, 500, src, func() {
		if _, _, err := eng.analyzeUncached("budget.smali", src); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 12.0
	if got > budget {
		t.Errorf("full analysis allocates %.2f/instruction, budget %.1f", got, budget)
	}
}
