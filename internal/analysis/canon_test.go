package analysis

import (
	"reflect"
	"strings"
	"testing"

	"github.com/ghost-installer/gia/internal/corpus"
)

func canonMeta(pkg string, storage corpus.StorageUse, links int) corpus.AppMeta {
	return corpus.AppMeta{
		Package: pkg, VersionCode: 1, Signer: "dev",
		HasInstallAPI: storage != corpus.StorageNone, Storage: storage, MarketLinks: links,
		UsesWriteExternal: storage == corpus.StorageSDCard,
	}
}

// TestCanonicalizeCollapsesTemplates: two template-identical apps that
// differ only in package name must canonicalize to the same bytes — the
// property the cache's hit rate rests on.
func TestCanonicalizeCollapsesTemplates(t *testing.T) {
	c := NewCanonicalizer(DefaultCanonMarkers())
	for _, file := range []string{"smali/Main.smali", "smali/Installer.smali", "smali/Redirects.smali"} {
		for _, storage := range []corpus.StorageUse{
			corpus.StorageSDCard, corpus.StorageInternalWorldReadable, corpus.StorageUnclear,
		} {
			a := corpus.BuildAPKFor(canonMeta("com.play.app00042", storage, 3))
			b := corpus.BuildAPKFor(canonMeta("com.vendor.other999", storage, 3))
			srcA, okA := a.Files[file]
			srcB, okB := b.Files[file]
			if !okA || !okB {
				continue
			}
			if string(srcA) == string(srcB) {
				continue // nothing to collapse
			}
			canonA, subsA, ok := c.Canonicalize(srcA)
			if !ok {
				t.Fatalf("%s storage=%v: canonicalization bailed for app A", file, storage)
			}
			gotA := string(canonA)
			ReleaseCanon(canonA)
			canonB, subsB, ok := c.Canonicalize(srcB)
			if !ok {
				t.Fatalf("%s storage=%v: canonicalization bailed for app B", file, storage)
			}
			gotB := string(canonB)
			ReleaseCanon(canonB)
			if gotA != gotB {
				t.Errorf("%s storage=%v: canonical forms differ:\nA: %q\nB: %q", file, storage, gotA, gotB)
			}
			if reflect.DeepEqual(subsA, subsB) {
				t.Errorf("%s: distinct apps produced identical subs %v", file, subsA)
			}
		}
	}
}

// TestCanonicalizeBailsOnMarkerShadowing: a package whose segments collide
// with rule markers or parser keywords must not be rewritten.
func TestCanonicalizeBailsOnMarkerShadowing(t *testing.T) {
	c := NewCanonicalizer(DefaultCanonMarkers())
	cases := []struct {
		name string
		src  string
	}{
		{"package segment shadows /sdcard content", "" +
			".class public La/sdcard/Main;\n" +
			".method public m()V\n" +
			"    const-string v0, \"/a/sdcard/x\"\n" +
			"    return-void\n" +
			".end method\n"},
		{"short name shadows an opcode", "" +
			".class public La/goto/Main;\n" +
			".method public m()V\n" +
			"    goto :end\n" +
			":end\n" +
			"    return-void\n" +
			".end method\n"},
		{"source already contains the placeholder mark", "" +
			".class public Lcom/x/app1/Main;\n" +
			".method public m()V\n" +
			"    const-string v0, \"GIA_P0\"\n" +
			"    return-void\n" +
			".end method\n"},
	}
	for _, tc := range cases {
		canon, subs, ok := c.Canonicalize([]byte(tc.src))
		if ok {
			t.Errorf("%s: expected bail, got subs=%v canon=%q", tc.name, subs, canon)
		}
		if string(canon) != tc.src {
			t.Errorf("%s: bailed canon must alias the source", tc.name)
		}
	}
}

// TestExpandInvertsCanonicalize: rewritten lines round-trip through Expand.
func TestExpandInvertsCanonicalize(t *testing.T) {
	c := NewCanonicalizer(DefaultCanonMarkers())
	src := corpus.BuildAPKFor(canonMeta("com.play.app00042", corpus.StorageSDCard, 0)).Files["smali/Installer.smali"]
	canon, subs, ok := c.Canonicalize(src)
	if !ok {
		t.Fatal("canonicalization bailed on the SD-card installer template")
	}
	roundTrip := Expand(string(canon), subs)
	ReleaseCanon(canon)
	if roundTrip != string(src) {
		t.Fatalf("Expand(Canonicalize(src)) != src:\ngot  %q\nwant %q", roundTrip, src)
	}
	if !strings.Contains(string(src), "/sdcard/app00042/") {
		t.Fatal("fixture lost the app-specific sdcard path; the test is vacuous")
	}
}

// TestCachedEngineMatchesUncachedScanAPK compares full per-APK reports of
// a cached engine against an uncached one, including repeated scans that
// exercise the hit path.
func TestCachedEngineMatchesUncachedScanAPK(t *testing.T) {
	cached := NewEngineWithOptions(EngineOptions{CacheCapacity: 256})
	plain := NewEngine()
	apps := []corpus.AppMeta{
		canonMeta("com.play.app00001", corpus.StorageSDCard, 2),
		canonMeta("com.play.app00002", corpus.StorageSDCard, 2), // template twin
		canonMeta("com.vendor.sys0001", corpus.StorageInternalWorldReadable, 0),
		canonMeta("com.store.app000003", corpus.StorageUnclear, 5),
		canonMeta("com.none.app4", corpus.StorageNone, 1),
	}
	for round := 0; round < 2; round++ {
		for _, app := range apps {
			a := corpus.BuildAPKFor(app)
			got := cached.ScanAPK(a)
			want := plain.ScanAPK(a)
			got.CacheHits, got.CacheMisses, got.CacheDeduped = 0, 0, 0
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d %s: cached report diverges:\ncached   %+v\nuncached %+v",
					round, app.Package, got, want)
			}
		}
	}
	st, ok := cached.CacheStats()
	if !ok {
		t.Fatal("CacheStats reported no cache on a cached engine")
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache never exercised: %+v", st)
	}
	if _, ok := plain.CacheStats(); ok {
		t.Fatal("uncached engine claims a cache")
	}
}

// TestCacheErrorFallback: malformed sources must error identically through
// the cache, and errors must not be cached.
func TestCacheErrorFallback(t *testing.T) {
	cached := NewEngineWithOptions(EngineOptions{CacheCapacity: 16})
	plain := NewEngine()
	bad := ".class public Lcom/x/app9/Main;\n.method public m()V\n    goto :nowhere\n.end method\n"
	for i := 0; i < 2; i++ {
		_, gotStats, gotErr := cached.AnalyzeSource("bad.smali", bad)
		_, wantStats, wantErr := plain.AnalyzeSource("bad.smali", bad)
		if gotErr == nil || wantErr == nil || gotStats != wantStats {
			t.Fatalf("iter %d: cached (%v, %v) vs uncached (%v, %v)", i, gotStats, gotErr, wantStats, wantErr)
		}
	}
	if st, _ := cached.CacheStats(); st.Entries != 0 {
		t.Fatalf("failed analysis was cached: %+v", st)
	}
}

// FuzzCanonicalKey is the cache's soundness oracle: whenever the
// canonicalizer claims a rewrite applies, analyzing the canonical source
// and rehydrating must equal analyzing the original directly. A failure
// here means two sources with different rule outcomes could share a cache
// key.
func FuzzCanonicalKey(f *testing.F) {
	for _, storage := range []corpus.StorageUse{
		corpus.StorageNone, corpus.StorageSDCard,
		corpus.StorageInternalWorldReadable, corpus.StorageUnclear,
	} {
		a := corpus.BuildAPKFor(canonMeta("com.play.app00042", storage, 4))
		for _, src := range a.Files {
			f.Add(string(src))
		}
	}
	f.Add(".class public La/sdcard/Main;\n.method public m()V\n    const-string v0, \"/a/sdcard/x\"\n    return-void\n.end method\n")
	f.Add(".class public Lcom/a/v2/Main;\n.method public m()V\n    const/4 v2, 0x1\n    invoke-virtual {v2}, Lx;->openFileOutput(I)V\n    return-void\n.end method\n")
	f.Add(".class public Lcom/a/method/Main;\n.method public m()V\n    return-void\n.end method\n")
	f.Add(".class public Lcom/x/app1/Main;\n# GIA_P0 in a comment\n.method public m()V\n    return-void\n.end method\n")

	canonicalizer := NewCanonicalizer(DefaultCanonMarkers())
	eng := NewEngine()
	f.Fuzz(func(t *testing.T, src string) {
		canon, subs, ok := canonicalizer.Canonicalize([]byte(src))
		if !ok {
			return // raw-keyed: trivially sound
		}
		canonCopy := string(canon)
		ReleaseCanon(canon)

		cFindings, cStats, cErr := eng.AnalyzeSource("f.smali", canonCopy)
		if cErr != nil {
			return // the engine falls back to direct analysis on this path
		}
		dFindings, dStats, dErr := eng.AnalyzeSource("f.smali", src)
		if dErr != nil {
			t.Fatalf("canonical form parses but original errors: %v\nsrc: %q\ncanon: %q", dErr, src, canonCopy)
		}
		if cStats != dStats {
			t.Fatalf("stats diverge: canonical %+v, direct %+v\nsrc: %q", cStats, dStats, src)
		}
		rehydrated := rehydrate(cachedSource{findings: cFindings, stats: cStats}, subs, "f.smali")
		if len(rehydrated) == 0 && len(dFindings) == 0 {
			return
		}
		if !reflect.DeepEqual(rehydrated, dFindings) {
			t.Fatalf("findings diverge after rehydration:\ncached %+v\ndirect %+v\nsrc: %q\ncanon: %q",
				rehydrated, dFindings, src, canonCopy)
		}
	})
}
