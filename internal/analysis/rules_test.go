package analysis

import "testing"

// checkRule parses src and runs a single rule over it.
func checkRule(t *testing.T, r Rule, src string) []Finding {
	t.Helper()
	cls, err := ParseFile("t.smali", src)
	if err != nil {
		t.Fatal(err)
	}
	return r.Check(NewClassInfo(cls))
}

func wrap(body string) string {
	return ".class public Lcom/t/C;\n.method public m()V\n" + body + "    return-void\n.end method\n"
}

// Every rule is exercised with one true-positive and one true-negative
// sample.
func TestRuleSamples(t *testing.T) {
	tests := []struct {
		name     string
		rule     Rule
		positive string
		negative string
		wantHits int // hits expected on the positive sample
	}{
		{
			name: "install-api",
			rule: InstallAPIRule{},
			positive: wrap(`    const-string v0, "application/vnd.android.package-archive"
    invoke-virtual {p1, v1, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
`),
			negative: wrap(`    const-string v0, "text/plain"
    invoke-virtual {p1, v1, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;
`),
			wantHits: 1,
		},
		{
			name: "sdcard-staging",
			rule: SDCardStagingRule{},
			positive: wrap(`    const-string v2, "/sdcard/store/stage.apk"
    invoke-static {v2}, Ljava/io/File;-><init>(Ljava/lang/String;)V
`),
			negative: wrap(`    const-string v2, "/data/data/com.t/files/stage.apk"
    invoke-static {v2}, Ljava/io/File;-><init>(Ljava/lang/String;)V
`),
			wantHits: 1,
		},
		{
			name: "world-readable via def-use",
			rule: WorldReadableRule{},
			positive: wrap(`    const-string v2, "stage.apk"
    const/4 v3, MODE_WORLD_READABLE
    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
`),
			negative: wrap(`    const-string v2, "stage.apk"
    const/4 v3, 0x0
    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
`),
			wantHits: 1,
		},
		{
			name: "market-redirect",
			rule: MarketRedirectRule{},
			positive: wrap(`    const-string v0, "market://details?id=com.promoted.one"
    const-string v1, "http://play.google.com/store/apps/details?id=com.promoted.two"
`),
			negative: wrap(`    const-string v0, "https://example.com/details?id=com.promoted.one"
`),
			wantHits: 2,
		},
		{
			name: "reflection-obfuscation",
			rule: ReflectionRule{},
			positive: wrap(`    const-string v2, "open"
    invoke-static {v2}, Lcom/obf/Reflect;->call([Ljava/lang/String;)Ljava/lang/Object;
`),
			negative: wrap(`    const-string v2, "open"
    invoke-static {v2}, Lcom/t/Direct;->call(Ljava/lang/String;)V
`),
			wantHits: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pos := checkRule(t, tt.rule, tt.positive)
			if len(pos) != tt.wantHits {
				t.Errorf("positive sample: %d findings, want %d: %v", len(pos), tt.wantHits, pos)
			}
			for _, f := range pos {
				if f.RuleID != tt.rule.ID() || f.Severity != tt.rule.Severity() {
					t.Errorf("finding carries wrong rule metadata: %+v", f)
				}
				if f.Class == "" || f.Method == "" || f.Line == 0 || f.File == "" {
					t.Errorf("finding lacks provenance: %+v", f)
				}
			}
			if neg := checkRule(t, tt.rule, tt.negative); len(neg) != 0 {
				t.Errorf("negative sample flagged: %v", neg)
			}
		})
	}
}

// TestWorldReadableRegisterOverwrite is the regression the flat
// last-write-wins scanner misclassified: MODE_WORLD_READABLE assigned,
// then overwritten with a benign mode (in execution order) before the
// call. The backward jump puts the benign write textually first, so a
// textual scan flags it; the reaching-definitions rule must not.
func TestWorldReadableRegisterOverwrite(t *testing.T) {
	src := wrap(`    const-string v2, "stage.apk"
    goto :init_mode
:fix_mode
    const/4 v3, 0x0
    goto :stage
:init_mode
    const/4 v3, MODE_WORLD_READABLE
    goto :fix_mode
:stage
    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
`)
	if got := checkRule(t, WorldReadableRule{}, src); len(got) != 0 {
		t.Errorf("benign overwrite flagged: %v", got)
	}
}

func TestWorldReadableBranchJoin(t *testing.T) {
	// One arm assigns the world-readable mode; the may-analysis must flag
	// the call at the join.
	src := wrap(`    const-string v2, "stage.apk"
    const/4 v3, 0x0
    if-eqz v5, :world_readable
    goto :stage
:world_readable
    const/4 v3, MODE_WORLD_READABLE
:stage
    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
`)
	got := checkRule(t, WorldReadableRule{}, src)
	if len(got) != 1 {
		t.Errorf("branch join: %d findings, want 1: %v", len(got), got)
	}
}

func TestWorldReadableDeadStoreDoesNotFlag(t *testing.T) {
	// The world-readable const sits in unreachable code.
	src := wrap(`    const-string v2, "stage.apk"
    const/4 v3, 0x0
    goto :stage
:dead
    const/4 v3, MODE_WORLD_READABLE
:stage
    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
`)
	if got := checkRule(t, WorldReadableRule{}, src); len(got) != 0 {
		t.Errorf("dead store flagged: %v", got)
	}
}

func TestWorldReadableUnreachableCallDoesNotFlag(t *testing.T) {
	// Even a genuinely world-readable call must not flag from dead code.
	src := wrap(`    const/4 v3, MODE_WORLD_READABLE
    goto :out
:dead
    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;
:out
`)
	if got := checkRule(t, WorldReadableRule{}, src); len(got) != 0 {
		t.Errorf("unreachable call flagged: %v", got)
	}
}

func TestWorldReadableNoCrossMethodLeak(t *testing.T) {
	// Method A leaves v3 = MODE_WORLD_READABLE; method B uses v3 undefined.
	// The flat per-file map leaked A's def into B.
	src := `.class public Lcom/t/C;
.method public a()V
    const/4 v3, MODE_WORLD_READABLE
    return-void
.end method
.method public b()V
    invoke-virtual {v9, v3}, Ljava/io/File;->setReadable(Z)Z
    return-void
.end method
`
	if got := checkRule(t, WorldReadableRule{}, src); len(got) != 0 {
		t.Errorf("cross-method leak flagged: %v", got)
	}
}

func TestDefaultRulesRegistry(t *testing.T) {
	rules := DefaultRules()
	if len(rules) < 5 {
		t.Fatalf("default rules = %d, want >= 5", len(rules))
	}
	seen := make(map[string]bool)
	for _, r := range rules {
		if r.ID() == "" || r.Description() == "" {
			t.Errorf("rule %T lacks ID or description", r)
		}
		if seen[r.ID()] {
			t.Errorf("duplicate rule ID %s", r.ID())
		}
		seen[r.ID()] = true
	}
	for _, id := range []string{RuleIDInstallAPI, RuleIDSDCardStaging,
		RuleIDWorldReadable, RuleIDMarketLink, RuleIDReflection} {
		if !seen[id] {
			t.Errorf("rule %s missing from DefaultRules", id)
		}
	}
}

func TestSeverityStrings(t *testing.T) {
	for _, s := range []Severity{SeverityInfo, SeverityWarning, SeverityVuln} {
		if s.String() == "" {
			t.Errorf("empty severity name for %d", s)
		}
	}
}
