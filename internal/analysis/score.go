package analysis

// Threat scoring folds an artifact's findings into one 0–100 number, the
// triage-friendly summary the paper's classification tables imply but
// never compute: how exposed is this installer to GIA-style hijack?
//
// The model is deliberately simple and auditable — per-rule weights for
// attack surface, per-link increments (capped) for redirect volume, flat
// deductions for detected anti-repackaging defenses, clamped to [0, 100].
// Weights count rule *presence*, not finding volume: two staging paths are
// not twice as vulnerable as one, but a staging path plus a world-readable
// stage plus reflection cover is strictly worse than any alone.

// ruleWeights score attack-surface rules by presence.
var ruleWeights = map[string]int{
	// The cross-method taint flow is the strongest signal: an
	// external-storage path demonstrably reaches an install sink.
	RuleIDTaintStaging: 35,
	// A literal /sdcard staging path without a proven flow into the sink.
	RuleIDSDCardStaging: 25,
	// Internal staging opened world-readable: the PMS can read it, so can
	// everyone else.
	RuleIDWorldReadable: 15,
	// The install capability itself (setDataAndType with the archive MIME).
	RuleIDInstallAPI: 10,
	// Reflection cover: storage behaviour resists static analysis.
	RuleIDReflection: 10,
}

// marketLinkWeight/marketLinkCap score redirect volume: each hard-coded
// market link adds a little surface, capped so a link farm cannot dominate
// the real staging signals.
const (
	marketLinkWeight = 2
	marketLinkCap    = 10
)

// defenseDeductions reward detected anti-repackaging defenses.
var defenseDeductions = map[string]int{
	RuleIDSelfSigCheck:   10,
	RuleIDIntegrityCheck: 8,
}

// MaxScore is the score ceiling.
const MaxScore = 100

// Score folds findings into the 0–100 threat score.
func Score(findings []Finding) int {
	var seen map[string]bool
	score, links := 0, 0
	for _, f := range findings {
		if f.RuleID == RuleIDMarketLink {
			links++
			continue
		}
		if seen == nil {
			seen = make(map[string]bool, 8)
		}
		if seen[f.RuleID] {
			continue
		}
		seen[f.RuleID] = true
		score += ruleWeights[f.RuleID]
		score -= defenseDeductions[f.RuleID]
	}
	if lw := links * marketLinkWeight; lw > marketLinkCap {
		score += marketLinkCap
	} else {
		score += lw
	}
	if score < 0 {
		return 0
	}
	if score > MaxScore {
		return MaxScore
	}
	return score
}

// ScoreBuckets is the number of histogram buckets ScanStats tracks: 20
// points per bucket, with the top bucket closed ([80, 100]).
const ScoreBuckets = 5

// ScoreBucket maps a score to its histogram bucket.
func ScoreBucket(score int) int {
	b := score / (MaxScore / ScoreBuckets)
	if b >= ScoreBuckets {
		b = ScoreBuckets - 1
	}
	return b
}

// ScoreBucketLabel names a histogram bucket for table output.
func ScoreBucketLabel(b int) string {
	switch b {
	case 0:
		return "0-19"
	case 1:
		return "20-39"
	case 2:
		return "40-59"
	case 3:
		return "60-79"
	default:
		return "80-100"
	}
}
