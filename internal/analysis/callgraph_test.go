package analysis

import "testing"

func buildGraph(t *testing.T, src string) *CallGraph {
	t.Helper()
	cls, err := ParseFile("g.smali", src)
	if err != nil {
		t.Fatal(err)
	}
	return BuildCallGraph(cls)
}

func methodIdx(t *testing.T, g *CallGraph, desc string) int {
	t.Helper()
	i, ok := g.Resolve(desc)
	if !ok {
		t.Fatalf("method %s not in call graph", desc)
	}
	return i
}

func TestCallGraphDirectRecursion(t *testing.T) {
	g := buildGraph(t, `.class Lcom/t/R;
.method public loop()V
    invoke-virtual {p0}, Lcom/t/R;->loop()V
    return-void
.end method
.method public leaf()V
    return-void
.end method
`)
	loop := methodIdx(t, g, "Lcom/t/R;->loop()V")
	leaf := methodIdx(t, g, "Lcom/t/R;->leaf()V")
	if len(g.Callees[loop]) != 1 || g.Callees[loop][0] != loop {
		t.Errorf("self-recursive callees = %v", g.Callees[loop])
	}
	if g.SCCOf(loop) == g.SCCOf(leaf) {
		t.Errorf("unrelated methods share an SCC")
	}
	if len(g.SCCs) != 2 {
		t.Errorf("SCC count = %d, want 2", len(g.SCCs))
	}
}

func TestCallGraphMutualRecursion(t *testing.T) {
	g := buildGraph(t, `.class Lcom/t/M;
.method public ping()V
    invoke-virtual {p0}, Lcom/t/M;->pong()V
    return-void
.end method
.method public pong()V
    invoke-virtual {p0}, Lcom/t/M;->ping()V
    return-void
.end method
.method public driver()V
    invoke-virtual {p0}, Lcom/t/M;->ping()V
    return-void
.end method
`)
	ping := methodIdx(t, g, "Lcom/t/M;->ping()V")
	pong := methodIdx(t, g, "Lcom/t/M;->pong()V")
	driver := methodIdx(t, g, "Lcom/t/M;->driver()V")
	if g.SCCOf(ping) != g.SCCOf(pong) {
		t.Errorf("mutually recursive pair split across SCCs")
	}
	if g.SCCOf(driver) == g.SCCOf(ping) {
		t.Errorf("driver merged into the recursive SCC")
	}
	// Callee-first condensation order: the pair's component must be
	// emitted before its caller's.
	if g.SCCOf(ping) > g.SCCOf(driver) {
		t.Errorf("SCC order not callee-first: callee %d, caller %d",
			g.SCCOf(ping), g.SCCOf(driver))
	}
}

// TestCallGraphUnknownReceiver pins the degrade-to-top contract: a virtual
// dispatch outside the class set resolves to nothing, the edge is dropped,
// and both the condensation and the taint summaries stay well defined —
// the unknown callee is treated as argument pass-through, never a panic.
func TestCallGraphUnknownReceiver(t *testing.T) {
	cls, err := ParseFile("g.smali", `.class Lcom/t/U;
.method public relay(Ljava/lang/String;)Ljava/lang/String;
    invoke-static {p0}, Lvendor/Blob;->transform(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v0
    return-object v0
.end method
`)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph(cls)
	relay := methodIdx(t, g, "Lcom/t/U;->relay(Ljava/lang/String;)Ljava/lang/String;")
	if len(g.Callees[relay]) != 0 {
		t.Errorf("unknown receiver produced an edge: %v", g.Callees[relay])
	}
	if _, ok := g.Resolve("Lvendor/Blob;->transform(Ljava/lang/String;)Ljava/lang/String;"); ok {
		t.Errorf("external target resolved inside the class")
	}
	// Summary side of the contract: the unknown callee's result carries
	// the union of its argument taints (top for what we track), so the
	// parameter flows through to the return.
	sums := ComputeSummaries(NewClassInfo(cls))
	sum, ok := sums.Of("Lcom/t/U;->relay(Ljava/lang/String;)Ljava/lang/String;")
	if !ok {
		t.Fatal("summary missing")
	}
	if sum.Ret&ParamTaint(0) == 0 {
		t.Errorf("unknown-callee pass-through lost param taint: %+v", sum)
	}
}

func TestCallGraphCalleeFirstAcrossChain(t *testing.T) {
	g := buildGraph(t, `.class Lcom/t/C;
.method public a()V
    invoke-virtual {p0}, Lcom/t/C;->b()V
    return-void
.end method
.method public b()V
    invoke-virtual {p0}, Lcom/t/C;->c()V
    return-void
.end method
.method public c()V
    return-void
.end method
`)
	a := g.SCCOf(methodIdx(t, g, "Lcom/t/C;->a()V"))
	b := g.SCCOf(methodIdx(t, g, "Lcom/t/C;->b()V"))
	c := g.SCCOf(methodIdx(t, g, "Lcom/t/C;->c()V"))
	if !(c < b && b < a) {
		t.Errorf("chain a→b→c condensed out of order: a=%d b=%d c=%d", a, b, c)
	}
}
