package analysis

import "sync"

// Block is one basic block: a maximal straight-line instruction run
// [Start, End) entered only at Start and left only at End-1.
type Block struct {
	Index     int
	Start     int // first instruction index (inclusive)
	End       int // last instruction index (exclusive)
	Succs     []int
	Preds     []int
	Reachable bool // reachable from the method entry
}

// CFG is a method's control-flow graph.
type CFG struct {
	Method  *Method
	Blocks  []*Block
	blockOf []int // instruction index → block index
}

// intScratchPool recycles the transient int slices the CFG and
// reaching-definitions passes use as stacks/worklists; nothing from the
// pool escapes into results.
var intScratchPool = sync.Pool{
	New: func() any { s := make([]int, 0, 64); return &s },
}

// boolScratchPool recycles the queued-markers slice of the reaching
// fixpoint.
var boolScratchPool = sync.Pool{
	New: func() any { s := make([]bool, 0, 64); return &s },
}

// isLeader reports whether instruction i starts a basic block: the entry,
// every label, and every instruction following a goto/if/return. The
// predicate is local, so leader detection needs no scratch array.
func isLeader(ins []Instruction, i int) bool {
	if i == 0 || ins[i].Kind == KindLabel {
		return true
	}
	switch ins[i-1].Kind {
	case KindGoto, KindIf, KindReturn:
		return true
	}
	return false
}

// BuildCFG partitions a method into basic blocks and wires branch edges.
// Leaders are: the entry instruction, every label, and every instruction
// following a goto/if/return.
func BuildCFG(m *Method) *CFG {
	g := &CFG{Method: m}
	n := len(m.Instructions)
	if n == 0 {
		return g
	}
	nBlocks := 0
	for i := 0; i < n; i++ {
		if isLeader(m.Instructions, i) {
			nBlocks++
		}
	}
	// One backing array for the blocks themselves and one for the pointer
	// slice: two allocations regardless of block count.
	backing := make([]Block, nBlocks)
	g.Blocks = make([]*Block, nBlocks)
	g.blockOf = make([]int, n)
	bi := -1
	for i := 0; i < n; i++ {
		if isLeader(m.Instructions, i) {
			bi++
			backing[bi] = Block{Index: bi, Start: i}
			g.Blocks[bi] = &backing[bi]
		}
		g.blockOf[i] = bi
	}
	for bi, b := range g.Blocks {
		if bi+1 < len(g.Blocks) {
			b.End = g.Blocks[bi+1].Start
		} else {
			b.End = n
		}
	}
	// Edges. Branch targets are label instructions, which are always
	// leaders, so BlockOf(target) starts exactly at the target.
	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for bi, b := range g.Blocks {
		last := m.Instructions[b.End-1]
		switch last.Kind {
		case KindGoto:
			if t, ok := m.LabelTarget(last.Label); ok {
				addEdge(bi, g.blockOf[t])
			}
		case KindIf:
			if t, ok := m.LabelTarget(last.Label); ok {
				addEdge(bi, g.blockOf[t])
			}
			if b.End < n {
				addEdge(bi, g.blockOf[b.End])
			}
		case KindReturn:
			// no successors
		default:
			if b.End < n {
				addEdge(bi, g.blockOf[b.End])
			}
		}
	}
	g.markReachable()
	return g
}

// markReachable flood-fills from the entry block. Definitions in
// unreachable blocks must not flow into live code — that is exactly how
// the old line-scanner produced false positives on dead stores.
func (g *CFG) markReachable() {
	if len(g.Blocks) == 0 {
		return
	}
	stackPtr := intScratchPool.Get().(*[]int)
	stack := append((*stackPtr)[:0], 0)
	g.Blocks[0].Reachable = true
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[bi].Succs {
			if !g.Blocks[s].Reachable {
				g.Blocks[s].Reachable = true
				stack = append(stack, s)
			}
		}
	}
	*stackPtr = stack[:0]
	intScratchPool.Put(stackPtr)
}

// BlockOf returns the block containing instruction index idx.
func (g *CFG) BlockOf(idx int) *Block {
	return g.Blocks[g.blockOf[idx]]
}

// Unreachable returns the blocks no path from the entry reaches.
func (g *CFG) Unreachable() []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if !b.Reachable {
			out = append(out, b)
		}
	}
	return out
}
