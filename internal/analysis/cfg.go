package analysis

// Block is one basic block: a maximal straight-line instruction run
// [Start, End) entered only at Start and left only at End-1.
type Block struct {
	Index     int
	Start     int // first instruction index (inclusive)
	End       int // last instruction index (exclusive)
	Succs     []int
	Preds     []int
	Reachable bool // reachable from the method entry
}

// CFG is a method's control-flow graph.
type CFG struct {
	Method  *Method
	Blocks  []*Block
	blockOf []int // instruction index → block index
}

// BuildCFG partitions a method into basic blocks and wires branch edges.
// Leaders are: the entry instruction, every label, and every instruction
// following a goto/if/return.
func BuildCFG(m *Method) *CFG {
	g := &CFG{Method: m}
	n := len(m.Instructions)
	if n == 0 {
		return g
	}
	leader := make([]bool, n)
	leader[0] = true
	for i, ins := range m.Instructions {
		switch ins.Kind {
		case KindLabel:
			leader[i] = true
		case KindGoto, KindIf, KindReturn:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	g.blockOf = make([]int, n)
	for i := 0; i < n; i++ {
		if leader[i] {
			g.Blocks = append(g.Blocks, &Block{Index: len(g.Blocks), Start: i})
		}
		g.blockOf[i] = len(g.Blocks) - 1
	}
	for bi, b := range g.Blocks {
		if bi+1 < len(g.Blocks) {
			b.End = g.Blocks[bi+1].Start
		} else {
			b.End = n
		}
	}
	// Edges. Branch targets are label instructions, which are always
	// leaders, so BlockOf(target) starts exactly at the target.
	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for bi, b := range g.Blocks {
		last := m.Instructions[b.End-1]
		switch last.Kind {
		case KindGoto:
			if t, ok := m.LabelTarget(last.Label); ok {
				addEdge(bi, g.blockOf[t])
			}
		case KindIf:
			if t, ok := m.LabelTarget(last.Label); ok {
				addEdge(bi, g.blockOf[t])
			}
			if b.End < n {
				addEdge(bi, g.blockOf[b.End])
			}
		case KindReturn:
			// no successors
		default:
			if b.End < n {
				addEdge(bi, g.blockOf[b.End])
			}
		}
	}
	g.markReachable()
	return g
}

// markReachable flood-fills from the entry block. Definitions in
// unreachable blocks must not flow into live code — that is exactly how
// the old line-scanner produced false positives on dead stores.
func (g *CFG) markReachable() {
	if len(g.Blocks) == 0 {
		return
	}
	stack := []int{0}
	g.Blocks[0].Reachable = true
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[bi].Succs {
			if !g.Blocks[s].Reachable {
				g.Blocks[s].Reachable = true
				stack = append(stack, s)
			}
		}
	}
}

// BlockOf returns the block containing instruction index idx.
func (g *CFG) BlockOf(idx int) *Block {
	return g.Blocks[g.blockOf[idx]]
}

// Unreachable returns the blocks no path from the entry reaches.
func (g *CFG) Unreachable() []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if !b.Reachable {
			out = append(out, b)
		}
	}
	return out
}
