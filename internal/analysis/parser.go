package analysis

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
)

// ParseError carries file/line provenance for a malformed smali input.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// ParseFile parses one smali source file into a Class. The parser is
// strict where the analyses need structure (one class per file, balanced
// .method/.end method, well-formed register lists, defined branch targets)
// and lenient elsewhere (unknown opcodes become KindOther, unknown dot
// directives are skipped), and it returns errors — never panics — on
// malformed input.
func ParseFile(file, src string) (*Class, error) {
	return ParseBytes(file, []byte(src))
}

// parserPool recycles parser state (including the lexer's token scratch)
// across files, so a steady-state parse allocates only what escapes into
// the returned IR.
var parserPool = sync.Pool{
	New: func() any { return &parser{toks: make([]token, 0, 16)} },
}

// ParseBytes is ParseFile over raw bytes — the scanner's hot path. The
// source is tokenized in place: no per-line or per-token copies are made,
// and everything retained in the IR is interned or copied out, so src may
// be reused or mutated after ParseBytes returns.
func ParseBytes(file string, src []byte) (*Class, error) {
	p := parserPool.Get().(*parser)
	p.file = file
	cls, err := p.parse(src)
	p.file, p.class, p.method = "", nil, nil
	parserPool.Put(p)
	return cls, err
}

type parser struct {
	file   string
	class  *Class
	method *Method
	toks   []token // lexer scratch, reused line to line
}

func (p *parser) parse(src []byte) (*Class, error) {
	// Mirrors strings.Split(src, "\n") line numbering: a trailing newline
	// yields a final empty line.
	for start, lineNo := 0, 1; ; lineNo++ {
		nl := bytes.IndexByte(src[start:], '\n')
		var line []byte
		if nl < 0 {
			line = src[start:]
		} else {
			line = src[start : start+nl]
		}
		if err := p.line(lineNo, line); err != nil {
			return nil, err
		}
		if nl < 0 {
			break
		}
		start += nl + 1
	}
	if p.method != nil {
		return nil, p.errf(p.method.Line, "method %s truncated: missing .end method", p.method.Name)
	}
	if p.class == nil {
		return nil, p.errf(1, "no .class directive")
	}
	return p.class, nil
}

func (p *parser) errf(line int, format string, args ...any) error {
	return &ParseError{File: p.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) line(n int, raw []byte) error {
	toks, err := lexLine(raw, p.toks[:0])
	p.toks = toks[:0]
	if err != nil {
		return p.errf(n, "%v", err)
	}
	if len(toks) == 0 {
		return nil
	}
	first := toks[0]
	switch {
	case first.kind == tokWord && len(first.text) > 0 && first.text[0] == '.':
		return p.directive(n, toks)
	case first.kind == tokLabel:
		return p.label(n, toks)
	case first.kind == tokWord:
		return p.instruction(n, toks)
	default:
		return p.errf(n, "unexpected %v at start of line", first.kind)
	}
}

func (p *parser) directive(n int, toks []token) error {
	switch string(toks[0].text) {
	case ".class":
		if p.class != nil {
			return p.errf(n, "duplicate .class directive")
		}
		if len(toks) < 2 {
			return p.errf(n, ".class needs a name")
		}
		p.class = &Class{Name: intern(toks[len(toks)-1].text), File: p.file}
		return nil
	case ".method":
		if p.class == nil {
			return p.errf(n, ".method before .class")
		}
		if p.method != nil {
			return p.errf(n, ".method inside method %s", p.method.Name)
		}
		if len(toks) < 2 {
			return p.errf(n, ".method needs a name")
		}
		p.method = &Method{
			Name:   intern(toks[len(toks)-1].text),
			Class:  p.class.Name,
			File:   p.file,
			Line:   n,
			labels: make(map[string]int),
		}
		return nil
	case ".end":
		if len(toks) < 2 || string(toks[1].text) != "method" {
			return p.errf(n, "unsupported .end directive")
		}
		if p.method == nil {
			return p.errf(n, ".end method outside a method")
		}
		if err := p.validateMethod(); err != nil {
			return err
		}
		p.class.Methods = append(p.class.Methods, p.method)
		p.method = nil
		return nil
	default:
		// Unknown directives (.source, .field, .annotation, …) are not
		// part of any analysis; skip them.
		return nil
	}
}

// validateMethod checks every branch resolves to a defined label.
func (p *parser) validateMethod() error {
	for _, ins := range p.method.Instructions {
		if ins.Kind != KindGoto && ins.Kind != KindIf {
			continue
		}
		if _, ok := p.method.labels[ins.Label]; !ok {
			return p.errf(ins.Line, "branch to undefined label :%s", ins.Label)
		}
	}
	return nil
}

func (p *parser) emit(ins Instruction) {
	ins.Index = len(p.method.Instructions)
	p.method.Instructions = append(p.method.Instructions, ins)
}

func (p *parser) label(n int, toks []token) error {
	if p.method == nil {
		return p.errf(n, "label :%s outside a method", toks[0].text)
	}
	if len(toks) != 1 {
		return p.errf(n, "trailing tokens after label :%s", toks[0].text)
	}
	name := intern(toks[0].text)
	if _, dup := p.method.labels[name]; dup {
		return p.errf(n, "duplicate label :%s", name)
	}
	p.method.labels[name] = len(p.method.Instructions)
	p.emit(Instruction{Line: n, Kind: KindLabel, Op: "label", Label: name})
	return nil
}

func (p *parser) instruction(n int, toks []token) error {
	if p.method == nil {
		return p.errf(n, "instruction %q outside a method", toks[0].text)
	}
	op := intern(toks[0].text)
	rest := toks[1:]
	switch {
	case strings.HasPrefix(op, "const"):
		return p.constOp(n, op, rest)
	case strings.HasPrefix(op, "invoke-"):
		return p.invokeOp(n, op, rest)
	case strings.HasPrefix(op, "move"):
		return p.moveOp(n, op, rest)
	case op == "goto":
		if len(rest) != 1 || rest[0].kind != tokLabel {
			return p.errf(n, "goto needs exactly one label operand")
		}
		p.emit(Instruction{Line: n, Kind: KindGoto, Op: op, Label: intern(rest[0].text)})
		return nil
	case strings.HasPrefix(op, "if-"):
		if len(rest) != 3 || rest[0].kind != tokWord || rest[1].kind != tokComma || rest[2].kind != tokLabel {
			return p.errf(n, "%s needs a register and a label", op)
		}
		p.emit(Instruction{Line: n, Kind: KindIf, Op: op, Cond: intern(rest[0].text), Label: intern(rest[2].text)})
		return nil
	case strings.HasPrefix(op, "return"):
		// return-void has no operand; return/return-object/return-wide name
		// the returned register, which the taint summaries read.
		var src string
		if len(rest) == 1 && rest[0].kind == tokWord {
			src = intern(rest[0].text)
		}
		p.emit(Instruction{Line: n, Kind: KindReturn, Op: op, Src: src})
		return nil
	default:
		p.emit(Instruction{Line: n, Kind: KindOther, Op: op})
		return nil
	}
}

// constOp parses `const-string vX, "text"` and `const/4 vX, LITERAL`.
func (p *parser) constOp(n int, op string, rest []token) error {
	if len(rest) != 3 || rest[0].kind != tokWord || rest[1].kind != tokComma {
		return p.errf(n, "%s needs a register and an operand", op)
	}
	operand := rest[2]
	if op == "const-string" {
		if operand.kind != tokString {
			return p.errf(n, "const-string operand must be a string literal")
		}
	} else if operand.kind != tokWord {
		return p.errf(n, "%s operand must be a literal", op)
	}
	p.emit(Instruction{Line: n, Kind: KindConst, Op: op, Dest: intern(rest[0].text), Value: intern(operand.text)})
	return nil
}

// moveOp parses the register-copy family. `move-result*` takes one
// register (the destination; the source is the preceding invoke's return
// value). `move`/`move-object`/`move-wide` and their /from16 variants take
// a destination and a source. Shapes the analyses do not model
// (move-exception, malformed operand lists) stay lenient as KindOther,
// matching how every move opcode parsed before this family existed.
func (p *parser) moveOp(n int, op string, rest []token) error {
	if strings.HasPrefix(op, "move-result") {
		if len(rest) == 1 && rest[0].kind == tokWord {
			p.emit(Instruction{Line: n, Kind: KindMove, Op: op, Dest: intern(rest[0].text)})
			return nil
		}
	} else if len(rest) == 3 && rest[0].kind == tokWord && rest[1].kind == tokComma && rest[2].kind == tokWord {
		p.emit(Instruction{Line: n, Kind: KindMove, Op: op, Dest: intern(rest[0].text), Src: intern(rest[2].text)})
		return nil
	}
	p.emit(Instruction{Line: n, Kind: KindOther, Op: op})
	return nil
}

// invokeOp parses `invoke-* {v0, v1, …}, Lpkg/Cls;->name(sig)ret`.
func (p *parser) invokeOp(n int, op string, rest []token) error {
	if len(rest) == 0 || rest[0].kind != tokLBrace {
		return p.errf(n, "%s needs a {register list}", op)
	}
	args := make([]string, 0, 4)
	i := 1
	for {
		if i >= len(rest) {
			return p.errf(n, "%s: unterminated register list", op)
		}
		if rest[i].kind == tokRBrace {
			break
		}
		if rest[i].kind != tokWord {
			return p.errf(n, "%s: bad register list element", op)
		}
		args = append(args, intern(rest[i].text))
		i++
		if i < len(rest) && rest[i].kind == tokComma {
			i++
			continue
		}
	}
	// An empty register list is valid: no-arg static calls are spelled
	// `invoke-static {}, Lpkg/Cls;->m()V`.
	// rest[i] is the closing brace; expect `, target`.
	if i+2 >= len(rest) || rest[i+1].kind != tokComma || rest[i+2].kind != tokWord {
		return p.errf(n, "%s: missing call target", op)
	}
	if i+3 != len(rest) {
		return p.errf(n, "%s: trailing tokens after call target", op)
	}
	p.emit(Instruction{Line: n, Kind: KindInvoke, Op: op, Args: args, Target: intern(rest[i+2].text)})
	return nil
}
