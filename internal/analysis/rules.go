package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Stable rule IDs, exported so consumers (internal/measure, gia-lint) can
// key on findings without string literals.
const (
	RuleIDInstallAPI    = "gia/install-api"
	RuleIDSDCardStaging = "gia/sdcard-staging"
	RuleIDWorldReadable = "gia/world-readable-staging"
	RuleIDMarketLink    = "gia/market-redirect"
	RuleIDReflection    = "gia/reflection-obfuscation"
)

// Code-level markers shared by the rules (the paper's Section IV-A scan
// targets).
const (
	installMIME  = "application/vnd.android.package-archive"
	marketScheme = "market://details?id="
	playURL      = "play.google.com/store/apps/details?id="
)

// worldReadableModes are the constants that make a staged APK readable by
// the PMS when passed to a file-creation API.
var worldReadableModes = map[string]bool{
	"MODE_WORLD_READABLE": true,
	"0x1":                 true,
	"644":                 true,
}

// fileModeAPIs are call-target substrings whose integer/boolean arguments
// carry a file mode.
var fileModeAPIs = []string{
	"openFileOutput",
	"setReadable",
	"setPosixFilePermissions",
	"chmod",
}

// reflectionMarkers are call-target substrings indicating reflection-built
// API access — the "analysis blocker" pattern that defeated the paper's
// Flowdroid run.
var reflectionMarkers = []string{
	"Ljava/lang/reflect/",
	"Ljava/lang/Class;->forName",
	"->invoke(",
	"Lcom/obf/",
}

// DefaultCanonMarkers returns every substring and exact constant the
// default rules match on. The analysis cache's canonicalizer refuses any
// rewrite that changes a line's occurrence count of one of these, which is
// what makes rule verdicts invariant across sources sharing a canonical
// form. Keep this list in sync with the rule definitions below.
func DefaultCanonMarkers() []string {
	out := []string{installMIME, marketScheme, playURL, "/sdcard"}
	for m := range worldReadableModes {
		out = append(out, m)
	}
	out = append(out, fileModeAPIs...)
	out = append(out, reflectionMarkers...)
	sort.Strings(out)
	return out
}

// DefaultRules returns the full GIA rule set, one Rule per detector of the
// Section IV-A scanner.
func DefaultRules() []Rule {
	return []Rule{
		InstallAPIRule{},
		SDCardStagingRule{},
		WorldReadableRule{},
		MarketRedirectRule{},
		ReflectionRule{},
	}
}

// InstallAPIRule finds the package-archive install marker: the
// application/vnd.android.package-archive MIME constant handed to
// setDataAndType before firing the install Intent.
type InstallAPIRule struct{}

func (InstallAPIRule) ID() string         { return RuleIDInstallAPI }
func (InstallAPIRule) Severity() Severity { return SeverityInfo }
func (InstallAPIRule) Description() string {
	return "package-archive install API (setDataAndType with the APK MIME type)"
}

func (r InstallAPIRule) Check(ci *ClassInfo) []Finding {
	return eachConstString(r, ci, func(v string) (string, bool) {
		if strings.Contains(v, installMIME) {
			return "install API marker " + installMIME, true
		}
		return "", false
	})
}

// SDCardStagingRule finds APK staging on shared external storage — the
// potentially vulnerable half of the paper's classifier: any attacker
// holding WRITE_EXTERNAL_STORAGE can replace the staged file.
type SDCardStagingRule struct{}

func (SDCardStagingRule) ID() string         { return RuleIDSDCardStaging }
func (SDCardStagingRule) Severity() Severity { return SeverityVuln }
func (SDCardStagingRule) Description() string {
	return "APK staged on /sdcard (world-writable shared storage)"
}

func (r SDCardStagingRule) Check(ci *ClassInfo) []Finding {
	return eachConstString(r, ci, func(v string) (string, bool) {
		if strings.Contains(v, "/sdcard") {
			return fmt.Sprintf("external-storage path %q", v), true
		}
		return "", false
	})
}

// MarketRedirectRule counts hard-coded market:// schemes and Play URLs —
// the Table IV redirect census. One finding per link constant, so the
// finding count is the app's link count.
type MarketRedirectRule struct{}

func (MarketRedirectRule) ID() string         { return RuleIDMarketLink }
func (MarketRedirectRule) Severity() Severity { return SeverityInfo }
func (MarketRedirectRule) Description() string {
	return "hard-coded market:// or Play Store redirect link"
}

func (r MarketRedirectRule) Check(ci *ClassInfo) []Finding {
	return eachConstString(r, ci, func(v string) (string, bool) {
		if strings.Contains(v, marketScheme) || strings.Contains(v, playURL) {
			return fmt.Sprintf("market redirect %q", v), true
		}
		return "", false
	})
}

// WorldReadableRule resolves the mode arguments of file-creation APIs
// through the reaching-definitions chain and flags calls a world-readable
// constant may reach — the paper's "potentially secure" internal-staging
// marker. Branch joins are handled as a may-analysis (one world-readable
// arm flags the call), dead stores and unreachable code do not flag, and
// definitions never leak across method boundaries.
type WorldReadableRule struct{}

func (WorldReadableRule) ID() string         { return RuleIDWorldReadable }
func (WorldReadableRule) Severity() Severity { return SeverityWarning }
func (WorldReadableRule) Description() string {
	return "staged file created world-readable (mode resolved through def-use chains)"
}

func (r WorldReadableRule) Check(ci *ClassInfo) []Finding {
	var out []Finding
	for _, mi := range ci.Methods {
		for _, ins := range mi.Method.Instructions {
			if ins.Kind != KindInvoke || !isFileModeAPI(ins.Target) {
				continue
			}
			if !mi.CFG().BlockOf(ins.Index).Reachable {
				continue
			}
			reach := mi.Reaching()
			for _, reg := range ins.Args {
				for _, v := range reach.ConstsAt(ins.Index, reg) {
					if worldReadableModes[v] {
						out = append(out, finding(r, mi.Method, ins,
							fmt.Sprintf("mode %s may reach %s via %s", v, callName(ins.Target), reg)))
					}
				}
			}
		}
	}
	return out
}

// ReflectionRule flags reflection-built API access: the obfuscation
// pattern that leaves an installer's storage behaviour "unknown" to static
// analysis (Section IV-A's analysis-blocker post-mortem).
type ReflectionRule struct{}

func (ReflectionRule) ID() string         { return RuleIDReflection }
func (ReflectionRule) Severity() Severity { return SeverityWarning }
func (ReflectionRule) Description() string {
	return "reflection-obfuscated API access blocks static analysis"
}

func (r ReflectionRule) Check(ci *ClassInfo) []Finding {
	var out []Finding
	for _, mi := range ci.Methods {
		for _, ins := range mi.Method.Instructions {
			if ins.Kind != KindInvoke {
				continue
			}
			for _, marker := range reflectionMarkers {
				if strings.Contains(ins.Target, marker) {
					out = append(out, finding(r, mi.Method, ins,
						"reflective call "+callName(ins.Target)))
					break
				}
			}
		}
	}
	return out
}

// eachConstString applies match to every const-string value in the class,
// emitting one finding per matching instruction.
func eachConstString(r Rule, ci *ClassInfo, match func(string) (string, bool)) []Finding {
	var out []Finding
	for _, mi := range ci.Methods {
		for _, ins := range mi.Method.Instructions {
			if ins.Kind != KindConst || ins.Op != "const-string" {
				continue
			}
			if msg, ok := match(ins.Value); ok {
				out = append(out, finding(r, mi.Method, ins, msg))
			}
		}
	}
	return out
}

func isFileModeAPI(target string) bool {
	for _, api := range fileModeAPIs {
		if strings.Contains(target, api) {
			return true
		}
	}
	return false
}

// callName trims a full smali signature to Class->method for messages.
func callName(target string) string {
	if i := strings.IndexByte(target, '('); i >= 0 {
		target = target[:i]
	}
	if i := strings.LastIndexByte(target, '/'); i >= 0 {
		target = target[i+1:]
	}
	return target
}
