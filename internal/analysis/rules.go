package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Stable rule IDs, exported so consumers (internal/measure, gia-lint) can
// key on findings without string literals.
const (
	RuleIDInstallAPI     = "gia/install-api"
	RuleIDSDCardStaging  = "gia/sdcard-staging"
	RuleIDWorldReadable  = "gia/world-readable-staging"
	RuleIDMarketLink     = "gia/market-redirect"
	RuleIDReflection     = "gia/reflection-obfuscation"
	RuleIDTaintStaging   = "gia/taint-sdcard-staging"
	RuleIDSelfSigCheck   = "gia/self-sig-check"
	RuleIDIntegrityCheck = "gia/integrity-check"
)

// Code-level markers shared by the rules (the paper's Section IV-A scan
// targets).
const (
	installMIME  = "application/vnd.android.package-archive"
	marketScheme = "market://details?id="
	playURL      = "play.google.com/store/apps/details?id="
)

// worldReadableModes are the constants that make a staged APK readable by
// the PMS when passed to a file-creation API.
var worldReadableModes = map[string]bool{
	"MODE_WORLD_READABLE": true,
	"0x1":                 true,
	"644":                 true,
}

// fileModeAPIs are call-target substrings whose integer/boolean arguments
// carry a file mode.
var fileModeAPIs = []string{
	"openFileOutput",
	"setReadable",
	"setPosixFilePermissions",
	"chmod",
}

// reflectionMarkers are call-target substrings indicating reflection-built
// API access — the "analysis blocker" pattern that defeated the paper's
// Flowdroid run.
var reflectionMarkers = []string{
	"Ljava/lang/reflect/",
	"Ljava/lang/Class;->forName",
	"->invoke(",
	"Lcom/obf/",
}

// Anti-repackaging markers: the signature self-check idiom (querying the
// app's own package with GET_SIGNATURES, or asking the PMS to compare
// signatures directly) and the integrity-digest idiom (hashing the code
// archive).
const (
	sigCompareAPI  = "->checkSignatures("
	pkgInfoAPI     = "getPackageInfo"
	getSigFlag     = "GET_SIGNATURES"
	codePathAPI    = "getPackageCodePath"
	classesDexName = "classes.dex"
)

var digestAPIs = []string{
	"Ljava/security/MessageDigest;",
	"Ljava/util/zip/CRC32;",
}

// DefaultCanonMarkers returns every substring and exact constant the
// default rules match on. The analysis cache's canonicalizer refuses any
// rewrite that changes a line's occurrence count of one of these, which is
// what makes rule verdicts invariant across sources sharing a canonical
// form. Keep this list in sync with the rule definitions below.
func DefaultCanonMarkers() []string {
	out := []string{installMIME, marketScheme, playURL,
		sigCompareAPI, pkgInfoAPI, getSigFlag, codePathAPI, classesDexName,
		envGetterPrefix, intentExtraMarker}
	out = append(out, externalPathMarkers...)
	out = append(out, installSinkMarkers...)
	out = append(out, digestAPIs...)
	for m := range worldReadableModes {
		out = append(out, m)
	}
	out = append(out, fileModeAPIs...)
	out = append(out, reflectionMarkers...)
	sort.Strings(out)
	return out
}

// DefaultRules returns the full GIA rule set, one Rule per detector of the
// Section IV-A scanner.
func DefaultRules() []Rule {
	return []Rule{
		InstallAPIRule{},
		SDCardStagingRule{},
		WorldReadableRule{},
		MarketRedirectRule{},
		ReflectionRule{},
		TaintStagingRule{},
		SelfSigCheckRule{},
		IntegrityCheckRule{},
	}
}

// InstallAPIRule finds the package-archive install marker: the
// application/vnd.android.package-archive MIME constant handed to
// setDataAndType before firing the install Intent.
type InstallAPIRule struct{}

func (InstallAPIRule) ID() string         { return RuleIDInstallAPI }
func (InstallAPIRule) Severity() Severity { return SeverityInfo }
func (InstallAPIRule) Description() string {
	return "package-archive install API (setDataAndType with the APK MIME type)"
}

func (r InstallAPIRule) Check(ci *ClassInfo) []Finding {
	return eachConstString(r, ci, func(v string) (string, bool) {
		if strings.Contains(v, installMIME) {
			return "install API marker " + installMIME, true
		}
		return "", false
	})
}

// SDCardStagingRule finds APK staging on shared external storage — the
// potentially vulnerable half of the paper's classifier: any attacker
// holding WRITE_EXTERNAL_STORAGE can replace the staged file.
type SDCardStagingRule struct{}

func (SDCardStagingRule) ID() string         { return RuleIDSDCardStaging }
func (SDCardStagingRule) Severity() Severity { return SeverityVuln }
func (SDCardStagingRule) Description() string {
	return "APK staged on /sdcard (world-writable shared storage)"
}

func (r SDCardStagingRule) Check(ci *ClassInfo) []Finding {
	return eachConstString(r, ci, func(v string) (string, bool) {
		if strings.Contains(v, "/sdcard") {
			return fmt.Sprintf("external-storage path %q", v), true
		}
		return "", false
	})
}

// MarketRedirectRule counts hard-coded market:// schemes and Play URLs —
// the Table IV redirect census. One finding per link constant, so the
// finding count is the app's link count.
type MarketRedirectRule struct{}

func (MarketRedirectRule) ID() string         { return RuleIDMarketLink }
func (MarketRedirectRule) Severity() Severity { return SeverityInfo }
func (MarketRedirectRule) Description() string {
	return "hard-coded market:// or Play Store redirect link"
}

func (r MarketRedirectRule) Check(ci *ClassInfo) []Finding {
	return eachConstString(r, ci, func(v string) (string, bool) {
		if strings.Contains(v, marketScheme) || strings.Contains(v, playURL) {
			return fmt.Sprintf("market redirect %q", v), true
		}
		return "", false
	})
}

// WorldReadableRule resolves the mode arguments of file-creation APIs
// through the reaching-definitions chain and flags calls a world-readable
// constant may reach — the paper's "potentially secure" internal-staging
// marker. Branch joins are handled as a may-analysis (one world-readable
// arm flags the call), dead stores and unreachable code do not flag, and
// definitions never leak across method boundaries.
type WorldReadableRule struct{}

func (WorldReadableRule) ID() string         { return RuleIDWorldReadable }
func (WorldReadableRule) Severity() Severity { return SeverityWarning }
func (WorldReadableRule) Description() string {
	return "staged file created world-readable (mode resolved through def-use chains)"
}

func (r WorldReadableRule) Check(ci *ClassInfo) []Finding {
	var out []Finding
	for _, mi := range ci.Methods {
		for _, ins := range mi.Method.Instructions {
			if ins.Kind != KindInvoke || !isFileModeAPI(ins.Target) {
				continue
			}
			if !mi.CFG().BlockOf(ins.Index).Reachable {
				continue
			}
			reach := mi.Reaching()
			for _, reg := range ins.Args {
				for _, v := range reach.ConstsAt(ins.Index, reg) {
					if worldReadableModes[v] {
						out = append(out, finding(r, mi.Method, ins,
							fmt.Sprintf("mode %s may reach %s via %s", v, callName(ins.Target), reg)))
					}
				}
			}
		}
	}
	return dedupeFindings(out)
}

// ReflectionRule flags reflection-built API access: the obfuscation
// pattern that leaves an installer's storage behaviour "unknown" to static
// analysis (Section IV-A's analysis-blocker post-mortem).
type ReflectionRule struct{}

func (ReflectionRule) ID() string         { return RuleIDReflection }
func (ReflectionRule) Severity() Severity { return SeverityWarning }
func (ReflectionRule) Description() string {
	return "reflection-obfuscated API access blocks static analysis"
}

func (r ReflectionRule) Check(ci *ClassInfo) []Finding {
	var out []Finding
	for _, mi := range ci.Methods {
		for _, ins := range mi.Method.Instructions {
			if ins.Kind != KindInvoke {
				continue
			}
			for _, marker := range reflectionMarkers {
				if strings.Contains(ins.Target, marker) {
					out = append(out, finding(r, mi.Method, ins,
						"reflective call "+callName(ins.Target)))
					break
				}
			}
		}
	}
	return out
}

// TaintStagingRule is the interprocedural half of the staging classifier:
// it tracks external-storage paths (literals, Environment getters) through
// register moves, returns and calls via the class's method summaries, and
// flags any flow into an install sink (setDataAndType / installPackage).
// Unlike SDCardStagingRule it needs no literal at the sink's method — a
// path produced in one method and installed in another is exactly what the
// summaries exist to catch.
type TaintStagingRule struct {
	// IntraOnly disables summary and call-graph use, making every call
	// opaque: the baseline whose findings the interprocedural run must
	// subsume (FuzzSummaries pins that containment).
	IntraOnly bool
}

func (TaintStagingRule) ID() string         { return RuleIDTaintStaging }
func (TaintStagingRule) Severity() Severity { return SeverityVuln }
func (TaintStagingRule) Description() string {
	return "external-storage path flows into an install sink (interprocedural taint)"
}

func (r TaintStagingRule) Check(ci *ClassInfo) []Finding {
	if !classHasTaintSourceAndSink(ci.Class) {
		// The gate is mode-independent, so the intraprocedural baseline and
		// the interprocedural run skip exactly the same classes — the
		// containment FuzzSummaries checks is unaffected.
		return nil
	}
	if r.IntraOnly {
		return taintFindings(r, ci, nil)
	}
	return taintFindings(r, ci, ci.Summaries())
}

// SelfSigCheckRule finds the signature self-check defense: asking the PMS
// to compare signatures outright, or loading the app's own signing info
// with GET_SIGNATURES. Repackaged clones fail these checks, so their
// presence lowers the threat score.
type SelfSigCheckRule struct{}

func (SelfSigCheckRule) ID() string         { return RuleIDSelfSigCheck }
func (SelfSigCheckRule) Severity() Severity { return SeverityInfo }
func (SelfSigCheckRule) Description() string {
	return "anti-repackaging: app verifies its own signing certificate"
}

func (r SelfSigCheckRule) Check(ci *ClassInfo) []Finding {
	var out []Finding
	for _, mi := range ci.Methods {
		usesSigFlag := false
		for _, ins := range mi.Method.Instructions {
			if ins.Kind == KindConst && strings.Contains(ins.Value, getSigFlag) {
				usesSigFlag = true
				break
			}
		}
		for _, ins := range mi.Method.Instructions {
			if ins.Kind != KindInvoke {
				continue
			}
			switch {
			case strings.Contains(ins.Target, sigCompareAPI):
				out = append(out, finding(r, mi.Method, ins,
					"signature comparison via "+callName(ins.Target)))
			case usesSigFlag && strings.Contains(ins.Target, pkgInfoAPI):
				out = append(out, finding(r, mi.Method, ins,
					"own signing info loaded with GET_SIGNATURES"))
			}
		}
	}
	return dedupeFindings(out)
}

// IntegrityCheckRule finds the integrity-digest defense: a method that
// both names the code archive (classes.dex const or getPackageCodePath)
// and drives a digest API over it. A digest used for anything else (e.g. a
// download checksum with no code-archive reference) must not flag.
type IntegrityCheckRule struct{}

func (IntegrityCheckRule) ID() string         { return RuleIDIntegrityCheck }
func (IntegrityCheckRule) Severity() Severity { return SeverityInfo }
func (IntegrityCheckRule) Description() string {
	return "anti-repackaging: app digests its own code archive"
}

func (r IntegrityCheckRule) Check(ci *ClassInfo) []Finding {
	var out []Finding
	for _, mi := range ci.Methods {
		refsCode := false
		for _, ins := range mi.Method.Instructions {
			if ins.Kind == KindConst && strings.Contains(ins.Value, classesDexName) {
				refsCode = true
				break
			}
			if ins.Kind == KindInvoke && strings.Contains(ins.Target, codePathAPI) {
				refsCode = true
				break
			}
		}
		if !refsCode {
			continue
		}
		for _, ins := range mi.Method.Instructions {
			if ins.Kind != KindInvoke {
				continue
			}
			for _, api := range digestAPIs {
				if strings.Contains(ins.Target, api) {
					out = append(out, finding(r, mi.Method, ins,
						"code-archive digest via "+callName(ins.Target)))
					break
				}
			}
		}
	}
	return dedupeFindings(out)
}

// eachConstString applies match to every const-string value in the class,
// emitting one finding per matching instruction. Findings are deduped by
// call site: a value reached through several registers or paths is still
// one defect.
func eachConstString(r Rule, ci *ClassInfo, match func(string) (string, bool)) []Finding {
	var out []Finding
	for _, mi := range ci.Methods {
		for _, ins := range mi.Method.Instructions {
			if ins.Kind != KindConst || ins.Op != "const-string" {
				continue
			}
			if msg, ok := match(ins.Value); ok {
				out = append(out, finding(r, mi.Method, ins, msg))
			}
		}
	}
	return dedupeFindings(out)
}

func isFileModeAPI(target string) bool {
	for _, api := range fileModeAPIs {
		if strings.Contains(target, api) {
			return true
		}
	}
	return false
}

// callName trims a full smali signature to Class->method for messages.
func callName(target string) string {
	if i := strings.IndexByte(target, '('); i >= 0 {
		target = target[:i]
	}
	if i := strings.LastIndexByte(target, '/'); i >= 0 {
		target = target[i+1:]
	}
	return target
}
