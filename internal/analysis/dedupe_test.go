package analysis

import "testing"

// TestWorldReadableDedupesPerCallSite pins the duplicate-finding fix: one
// invoke naming the same world-readable register twice (or two registers
// resolving to the same mode) used to emit one finding per register — one
// defect, one finding.
func TestWorldReadableDedupesPerCallSite(t *testing.T) {
	src := wrap(`    const/4 v3, MODE_WORLD_READABLE
    invoke-virtual {v3, v3}, Ljava/io/File;->setReadable(Z)Z
`)
	got := checkRule(t, WorldReadableRule{}, src)
	if len(got) != 1 {
		t.Errorf("duplicate-register call site: %d findings, want 1: %v", len(got), got)
	}
}

// TestEachConstStringDedupesSameSite drives the dedupe through the
// const-string helper with a hand-built IR: two const instructions
// carrying the same marker on one source line (a shape a macro-expanding
// front end can emit) must yield a single finding.
func TestEachConstStringDedupesSameSite(t *testing.T) {
	m := &Method{
		Name:  "m()V",
		Class: "Lcom/t/C;",
		File:  "t.smali",
		Instructions: []Instruction{
			{Index: 0, Line: 7, Kind: KindConst, Op: "const-string", Dest: "v0", Value: "/sdcard/a/stage.apk"},
			{Index: 1, Line: 7, Kind: KindConst, Op: "const-string", Dest: "v1", Value: "/sdcard/a/stage.apk"},
			{Index: 2, Line: 8, Kind: KindReturn, Op: "return-void"},
		},
	}
	ci := NewClassInfo(&Class{Name: "Lcom/t/C;", File: "t.smali", Methods: []*Method{m}})
	got := SDCardStagingRule{}.Check(ci)
	if len(got) != 1 {
		t.Errorf("same (rule, method, line) twice: %d findings, want 1: %v", len(got), got)
	}
}

// Distinct lines must NOT be collapsed — the market-redirect census counts
// one finding per link constant.
func TestDedupeKeepsDistinctLines(t *testing.T) {
	src := wrap(`    const-string v0, "market://details?id=com.a"
    const-string v1, "market://details?id=com.a"
`)
	got := checkRule(t, MarketRedirectRule{}, src)
	if len(got) != 2 {
		t.Errorf("distinct lines collapsed: %d findings, want 2: %v", len(got), got)
	}
}
