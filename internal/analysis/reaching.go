package analysis

import "sort"

// defSet is the set of defining instruction indices for one register.
type defSet map[int]struct{}

func (s defSet) clone() defSet {
	out := make(defSet, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

// regDefs maps register name → reaching definition sites.
type regDefs map[string]defSet

func (r regDefs) clone() regDefs {
	out := make(regDefs, len(r))
	for reg, s := range r {
		out[reg] = s.clone()
	}
	return out
}

// merge unions other into r, reporting whether r grew.
func (r regDefs) merge(other regDefs) bool {
	changed := false
	for reg, defs := range other {
		dst, ok := r[reg]
		if !ok {
			dst = make(defSet, len(defs))
			r[reg] = dst
		}
		for d := range defs {
			if _, seen := dst[d]; !seen {
				dst[d] = struct{}{}
				changed = true
			}
		}
	}
	return changed
}

// ReachingDefs holds the fixpoint of the classic intra-procedural
// reaching-definitions (may) analysis over a method's CFG. The register
// writers in this dialect are const* and move* instructions; const defs
// carry the value a register may hold (the def-use chain the
// world-readable rule needs), while move defs kill prior constants —
// after `move-result-object v0`, v0 no longer holds any const.
type ReachingDefs struct {
	cfg *CFG
	in  []regDefs // per-block entry state
}

// Reaching computes reaching definitions with a worklist over reachable
// blocks. Unreachable blocks contribute nothing: a dead store of
// MODE_WORLD_READABLE must not taint live code.
func Reaching(g *CFG) *ReachingDefs {
	r := &ReachingDefs{cfg: g, in: make([]regDefs, len(g.Blocks))}
	for i := range r.in {
		r.in[i] = make(regDefs)
	}
	if len(g.Blocks) == 0 {
		return r
	}
	// Seed with every reachable block (in index order) so states propagate
	// even along edges whose source generates no definitions. Unreachable
	// blocks are never processed, so their dead stores cannot flow. The
	// worklist and queued markers are pooled scratch; nothing escapes.
	workPtr := intScratchPool.Get().(*[]int)
	queuedPtr := boolScratchPool.Get().(*[]bool)
	work := (*workPtr)[:0]
	queued := (*queuedPtr)[:0]
	for i := 0; i < len(g.Blocks); i++ {
		queued = append(queued, false)
	}
	for _, b := range g.Blocks {
		if b.Reachable {
			work = append(work, b.Index)
			queued[b.Index] = true
		}
	}
	for head := 0; head < len(work); head++ {
		bi := work[head]
		queued[bi] = false
		out := r.transfer(bi, r.in[bi])
		for _, s := range g.Blocks[bi].Succs {
			if r.in[s].merge(out) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	*workPtr = work[:0]
	intScratchPool.Put(workPtr)
	*queuedPtr = queued[:0]
	boolScratchPool.Put(queuedPtr)
	return r
}

// transfer applies a block's definitions to an entry state: each write
// kills every prior definition of its destination register (strong
// update) and generates itself.
func (r *ReachingDefs) transfer(bi int, entry regDefs) regDefs {
	state := entry.clone()
	b := r.cfg.Blocks[bi]
	for i := b.Start; i < b.End; i++ {
		ins := r.cfg.Method.Instructions[i]
		if writesRegister(ins) {
			state[ins.Dest] = defSet{i: {}}
		}
	}
	return state
}

// writesRegister reports whether ins defines ins.Dest.
func writesRegister(ins Instruction) bool {
	return ins.Kind == KindConst || ins.Kind == KindMove
}

// DefsAt returns the instruction indices of the definitions of reg that
// may reach instruction idx, sorted ascending. An empty result means the
// register is never defined on any path to idx.
func (r *ReachingDefs) DefsAt(idx int, reg string) []int {
	b := r.cfg.BlockOf(idx)
	state := r.in[b.Index][reg].clone()
	if state == nil {
		state = defSet{}
	}
	for i := b.Start; i < idx; i++ {
		ins := r.cfg.Method.Instructions[i]
		if writesRegister(ins) && ins.Dest == reg {
			state = defSet{i: {}}
		}
	}
	out := make([]int, 0, len(state))
	for d := range state {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// ConstsAt returns the distinct constant values register reg may hold at
// instruction idx, sorted for determinism. Move definitions reaching idx
// contribute no value: the register's content came from another register
// or an invoke result, not a literal.
func (r *ReachingDefs) ConstsAt(idx int, reg string) []string {
	defs := r.DefsAt(idx, reg)
	seen := make(map[string]bool, len(defs))
	out := make([]string, 0, len(defs))
	for _, d := range defs {
		ins := r.cfg.Method.Instructions[d]
		if ins.Kind != KindConst {
			continue
		}
		if !seen[ins.Value] {
			seen[ins.Value] = true
			out = append(out, ins.Value)
		}
	}
	sort.Strings(out)
	return out
}
