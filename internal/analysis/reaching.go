package analysis

import "sort"

// defSet is the set of defining instruction indices for one register.
type defSet map[int]struct{}

func (s defSet) clone() defSet {
	out := make(defSet, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

// regDefs maps register name → reaching definition sites.
type regDefs map[string]defSet

func (r regDefs) clone() regDefs {
	out := make(regDefs, len(r))
	for reg, s := range r {
		out[reg] = s.clone()
	}
	return out
}

// merge unions other into r, reporting whether r grew.
func (r regDefs) merge(other regDefs) bool {
	changed := false
	for reg, defs := range other {
		dst, ok := r[reg]
		if !ok {
			dst = make(defSet, len(defs))
			r[reg] = dst
		}
		for d := range defs {
			if _, seen := dst[d]; !seen {
				dst[d] = struct{}{}
				changed = true
			}
		}
	}
	return changed
}

// ReachingDefs holds the fixpoint of the classic intra-procedural
// reaching-definitions (may) analysis over a method's CFG. In this dialect
// the only register writers are const* instructions, so "which definitions
// reach this use" is equivalently "which constant values may this register
// hold here" — the def-use chain the world-readable rule needs.
type ReachingDefs struct {
	cfg *CFG
	in  []regDefs // per-block entry state
}

// Reaching computes reaching definitions with a worklist over reachable
// blocks. Unreachable blocks contribute nothing: a dead store of
// MODE_WORLD_READABLE must not taint live code.
func Reaching(g *CFG) *ReachingDefs {
	r := &ReachingDefs{cfg: g, in: make([]regDefs, len(g.Blocks))}
	for i := range r.in {
		r.in[i] = make(regDefs)
	}
	if len(g.Blocks) == 0 {
		return r
	}
	// Seed with every reachable block (in index order) so states propagate
	// even along edges whose source generates no definitions. Unreachable
	// blocks are never processed, so their dead stores cannot flow. The
	// worklist and queued markers are pooled scratch; nothing escapes.
	workPtr := intScratchPool.Get().(*[]int)
	queuedPtr := boolScratchPool.Get().(*[]bool)
	work := (*workPtr)[:0]
	queued := (*queuedPtr)[:0]
	for i := 0; i < len(g.Blocks); i++ {
		queued = append(queued, false)
	}
	for _, b := range g.Blocks {
		if b.Reachable {
			work = append(work, b.Index)
			queued[b.Index] = true
		}
	}
	for head := 0; head < len(work); head++ {
		bi := work[head]
		queued[bi] = false
		out := r.transfer(bi, r.in[bi])
		for _, s := range g.Blocks[bi].Succs {
			if r.in[s].merge(out) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	*workPtr = work[:0]
	intScratchPool.Put(workPtr)
	*queuedPtr = queued[:0]
	boolScratchPool.Put(queuedPtr)
	return r
}

// transfer applies a block's definitions to an entry state: each const
// kills every prior definition of its destination register (strong
// update) and generates itself.
func (r *ReachingDefs) transfer(bi int, entry regDefs) regDefs {
	state := entry.clone()
	b := r.cfg.Blocks[bi]
	for i := b.Start; i < b.End; i++ {
		ins := r.cfg.Method.Instructions[i]
		if ins.Kind == KindConst {
			state[ins.Dest] = defSet{i: {}}
		}
	}
	return state
}

// DefsAt returns the instruction indices of the definitions of reg that
// may reach instruction idx, sorted ascending. An empty result means the
// register is never defined on any path to idx.
func (r *ReachingDefs) DefsAt(idx int, reg string) []int {
	b := r.cfg.BlockOf(idx)
	state := r.in[b.Index][reg].clone()
	if state == nil {
		state = defSet{}
	}
	for i := b.Start; i < idx; i++ {
		ins := r.cfg.Method.Instructions[i]
		if ins.Kind == KindConst && ins.Dest == reg {
			state = defSet{i: {}}
		}
	}
	out := make([]int, 0, len(state))
	for d := range state {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// ConstsAt returns the distinct constant values register reg may hold at
// instruction idx, sorted for determinism.
func (r *ReachingDefs) ConstsAt(idx int, reg string) []string {
	defs := r.DefsAt(idx, reg)
	seen := make(map[string]bool, len(defs))
	out := make([]string, 0, len(defs))
	for _, d := range defs {
		v := r.cfg.Method.Instructions[d].Value
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
