package analysis

import (
	"bytes"
	"strings"
	"sync"
)

// This file implements source canonicalization for the content-addressed
// analysis cache. The corpus (like the template-built app stores the paper
// scanned) contains thousands of smali sources that are byte-identical
// except for package-name strings: `Lcom/play/app00042/Installer;` vs
// `Lcom/play/app17311/Installer;`, `/sdcard/app00042/stage.apk` vs
// `/sdcard/app17311/stage.apk`. Canonicalize replaces those app-specific
// substrings with fixed placeholder tokens, so every instance of a
// template hashes to one cache key and is analyzed once; Expand inverts
// the substitution on the cached findings.
//
// Soundness: a substitution is a consistent textual renaming, applied
// only when three guards hold, each of which is checked per rewritten
// line and aborts canonicalization for the whole file on violation:
//
//  1. the source contains no "GIA_P" (so placeholders are fresh: every
//     occurrence of a placeholder in the canonical text is one we
//     inserted, which makes Expand an exact inverse);
//  2. a rewritten line's first token is byte-identical to the original
//     (the parser dispatches on the first token — directives, labels,
//     `const*`/`invoke-`/`if-`/`goto`/`return` prefix classification —
//     so instruction kinds cannot change);
//  3. a rewritten line contains each rule marker (see the markers list)
//     exactly as often as the original (rules match markers by substring
//     or exact equality, so their verdicts cannot change).
//
// Substitution values are drawn from the word-token charset
// [A-Za-z0-9_./] and placeholders from the same charset plus '$' (also
// word-legal), so replacements never split or join tokens: tokenization
// skeletons are identical, and every remaining difference is an
// alpha-renaming of registers, labels, names and string contents that the
// analyses are invariant under. FuzzCanonicalKey checks the whole claim
// end to end against the real engine.

// placeholderMark is the fragment whose absence guard 1 requires. It never
// appears in benign smali; any source containing it is cached under its
// raw hash instead.
const placeholderMark = "GIA_P"

var placeholderMarkBytes = []byte(placeholderMark)

// maxSubs bounds the substitution list: slashed package, dotted package,
// short name.
const maxSubs = 3

var placeholders = [maxSubs]string{"$GIA_P0$", "$GIA_P1$", "$GIA_P2$"}

var placeholderBytes = [maxSubs][]byte{
	[]byte(placeholders[0]), []byte(placeholders[1]), []byte(placeholders[2]),
}

// Canonicalizer rewrites app-specific identifier strings to placeholders
// under the soundness guards above. It is immutable and safe for
// concurrent use.
type Canonicalizer struct {
	markers [][]byte
}

// NewCanonicalizer builds a canonicalizer whose guard 3 protects the
// given marker substrings. The markers must cover every substring and
// every exact constant the rule set matches on; DefaultCanonMarkers
// covers DefaultRules.
func NewCanonicalizer(markers []string) *Canonicalizer {
	c := &Canonicalizer{markers: make([][]byte, 0, len(markers))}
	for _, m := range markers {
		if m != "" {
			c.markers = append(c.markers, []byte(m))
		}
	}
	return c
}

// canonBufPool recycles output buffers for canonical sources. The buffer
// only lives for hashing plus (on a cache miss) one parse, so pooling it
// keeps the warm path free of per-file large allocations.
var canonBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

// Canonicalize returns the canonical form of src, the concrete values the
// placeholders stand for, and whether canonicalization applied. When ok
// is false, canon aliases src unchanged and subs is nil: the caller
// caches under the raw content hash, which is trivially sound. When ok is
// true, canon may alias a pooled buffer — ReleaseCanon returns it to the
// pool once the caller is done hashing/parsing it.
func (c *Canonicalizer) Canonicalize(src []byte) (canon []byte, subs []string, ok bool) {
	if bytes.Contains(src, placeholderMarkBytes) {
		return src, nil, false // guard 1
	}
	subs = extractSubs(src)
	if len(subs) == 0 {
		return src, nil, false
	}
	subBytes := make([][]byte, len(subs))
	for i, v := range subs {
		// A value overlapping placeholder text would corrupt earlier
		// insertions; guard 1 already excludes "GIA_P", and values cannot
		// contain '$' (charset), so this is belt and braces.
		for k := range placeholders[:len(subs)] {
			if strings.Contains(placeholders[k], v) {
				return src, nil, false
			}
		}
		subBytes[i] = []byte(v)
	}

	outPtr := canonBufPool.Get().(*[]byte)
	out := (*outPtr)[:0]
	rewroteAny := false
	for start := 0; ; {
		nl := bytes.IndexByte(src[start:], '\n')
		var line []byte
		if nl < 0 {
			line = src[start:]
		} else {
			line = src[start : start+nl]
		}
		newline := line
		if lineHasAny(line, subBytes) {
			newline = rewriteLine(line, subBytes)
			if !c.lineGuardsHold(line, newline) {
				*outPtr = out[:0]
				canonBufPool.Put(outPtr)
				return src, nil, false
			}
			rewroteAny = true
		}
		out = append(out, newline...)
		if nl < 0 {
			break
		}
		out = append(out, '\n')
		start += nl + 1
	}
	if !rewroteAny {
		*outPtr = out[:0]
		canonBufPool.Put(outPtr)
		return src, nil, false
	}
	*outPtr = out
	return out, subs, true
}

// ReleaseCanon returns a canonical buffer obtained from Canonicalize
// (ok == true) to the pool. Call it only when nothing retains the bytes.
func ReleaseCanon(canon []byte) {
	buf := canon[:0]
	canonBufPool.Put(&buf)
}

// extractSubs derives the substitution values from the first .class
// directive: for `.class public Lcom/play/app00042/Main;` they are the
// slashed package path, its dotted spelling, and the short last segment —
// the three forms app templates embed. Values shorter than 3 bytes are
// dropped (too collision-prone to be worth rewriting); duplicates
// collapse. Order matters: longer forms first, so the slashed path is
// consumed before its short suffix.
func extractSubs(src []byte) []string {
	desc, ok := classDescriptor(src)
	if !ok {
		return nil
	}
	// desc is like "com/play/app00042/Main": strip the class name.
	lastSlash := bytes.LastIndexByte(desc, '/')
	if lastSlash <= 0 {
		return nil // default-package class: nothing app-specific to rewrite
	}
	pkg := desc[:lastSlash]
	for _, b := range pkg {
		if !isSubByte(b) {
			return nil
		}
	}
	slashed := string(pkg)
	dotted := strings.ReplaceAll(slashed, "/", ".")
	short := slashed
	if i := strings.LastIndexByte(slashed, '/'); i >= 0 {
		short = slashed[i+1:]
	}
	subs := make([]string, 0, maxSubs)
	for _, v := range []string{slashed, dotted, short} {
		if len(v) < 3 {
			continue
		}
		dup := false
		for _, seen := range subs {
			if seen == v {
				dup = true
				break
			}
		}
		if !dup {
			subs = append(subs, v)
		}
	}
	return subs
}

// classDescriptor finds the first `.class` line and returns the inner
// text of its trailing `L...;` descriptor token. Lines containing quotes
// or comments before the descriptor make extraction ambiguous; bail.
func classDescriptor(src []byte) ([]byte, bool) {
	for start := 0; start <= len(src); {
		nl := bytes.IndexByte(src[start:], '\n')
		var line []byte
		if nl < 0 {
			line = src[start:]
			start = len(src) + 1
		} else {
			line = src[start : start+nl]
			start += nl + 1
		}
		fields := bytes.Fields(line)
		if len(fields) == 0 || string(fields[0]) != ".class" {
			continue
		}
		if bytes.IndexByte(line, '"') >= 0 || bytes.IndexByte(line, '#') >= 0 {
			return nil, false
		}
		last := fields[len(fields)-1]
		if len(last) < 3 || last[0] != 'L' || last[len(last)-1] != ';' {
			return nil, false
		}
		return last[1 : len(last)-1], true
	}
	return nil, false
}

// isSubByte restricts substitution values to bytes that can never split a
// token or collide with lexer syntax: letters, digits, '_', '.', '/'.
func isSubByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '_' || b == '.' || b == '/':
		return true
	}
	return false
}

func lineHasAny(line []byte, subs [][]byte) bool {
	for _, s := range subs {
		if bytes.Contains(line, s) {
			return true
		}
	}
	return false
}

// rewriteLine applies the substitutions in order (longest forms first).
func rewriteLine(line []byte, subs [][]byte) []byte {
	out := line
	for i, s := range subs {
		if bytes.Contains(out, s) {
			out = bytes.ReplaceAll(out, s, placeholderBytes[i])
		}
	}
	return out
}

// lineGuardsHold checks guards 2 and 3 for one rewritten line.
func (c *Canonicalizer) lineGuardsHold(old, new []byte) bool {
	if !bytes.Equal(firstToken(old), firstToken(new)) {
		return false
	}
	hasMarker := false
	for _, m := range c.markers {
		oldCount := bytes.Count(old, m)
		if oldCount != bytes.Count(new, m) {
			return false
		}
		if oldCount > 0 {
			hasMarker = true
		}
	}
	// Marker-bearing lines feed rule messages, and messages trim call
	// targets at their last '/'. Requiring the rewrite to leave every
	// slash in place keeps that trimming outside the substituted spans,
	// so message construction commutes with placeholder expansion.
	if hasMarker && bytes.Count(old, slashBytes) != bytes.Count(new, slashBytes) {
		return false
	}
	return true
}

var slashBytes = []byte("/")

// firstToken returns the first whitespace-delimited run of a line — a
// conservative superset of the lexer's dispatch token.
func firstToken(line []byte) []byte {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	j := i
	for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '\r' {
		j++
	}
	return line[i:j]
}

// Expand inverts the canonical substitution on one string: every
// placeholder inserted by Canonicalize is replaced by its concrete value.
// Strings without placeholders are returned unchanged (and unallocated).
func Expand(s string, subs []string) string {
	if len(subs) == 0 || !strings.Contains(s, placeholderMark) {
		return s
	}
	for i, v := range subs {
		s = strings.ReplaceAll(s, placeholders[i], v)
	}
	return s
}
