//go:build race

package analysis

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
