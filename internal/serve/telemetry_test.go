package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/obs"
)

func TestDeviceRingRecordsTransactions(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{Shards: 1, Seed: 3, Registry: reg, Clock: obs.TickingClock(time.Millisecond)})
	info, err := f.CreateDevice(CreateDeviceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Install(info.ID, InstallRequest{}); err != nil {
		t.Fatal(err)
	}
	k, err := f.DeviceTrack(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	evs := k.Events()
	if len(evs) == 0 {
		t.Fatal("device ring recorded nothing")
	}
	var sawStep, sawSpan bool
	for _, ev := range evs {
		if ev.Name == "invocation" {
			sawStep = true
		}
		if strings.HasPrefix(ev.Name, "ait/") {
			sawSpan = true
		}
	}
	if !sawStep || !sawSpan {
		t.Errorf("ring lacks AIT steps (%v) or outcome span (%v): %+v", sawStep, sawSpan, evs)
	}
	// The ring is bounded at the configured default.
	if f.cfg.FlightDepth != defaultFlightDepth {
		t.Errorf("FlightDepth defaulted to %d, want %d", f.cfg.FlightDepth, defaultFlightDepth)
	}
	if _, err := f.DeviceTrack("nope"); err != ErrNotFound {
		t.Errorf("unknown device track err = %v, want ErrNotFound", err)
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 1, FlightDepth: -1})
	info, err := f.CreateDevice(CreateDeviceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if f.FlightTrace() != nil {
		t.Error("FlightTrace non-nil with recorder disabled")
	}
	if _, err := f.DeviceTrack(info.ID); err == nil {
		t.Error("DeviceTrack must report the recorder disabled")
	}
}

func TestDeviceTraceEndpointJSONL(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{Shards: 1, Registry: reg})
	srv := httptest.NewServer(NewHandler(f, reg))
	t.Cleanup(srv.Close)

	info, err := f.CreateDevice(CreateDeviceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Install(info.ID, InstallRequest{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/devices/" + info.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("trace endpoint returned nothing")
	}
	var ev struct {
		Domain string `json:"domain"`
		Track  string `json:"track"`
		Name   string `json:"name"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("bad jsonl line %q: %v", lines[0], err)
	}
	if ev.Domain != "virtual" || ev.Track != "device/"+info.ID {
		t.Errorf("first event %+v", ev)
	}
	if resp, err := http.Get(srv.URL + "/devices/ghost/trace"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown device trace status = %d", resp.StatusCode)
	}
}

func TestDeviceTraceFollowStreams(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{Shards: 1, Registry: reg})
	srv := httptest.NewServer(NewHandler(f, reg))
	t.Cleanup(srv.Close)

	info, err := f.CreateDevice(CreateDeviceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Install(info.ID, InstallRequest{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/devices/"+info.ID+"/trace?follow=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The already-recorded install appears immediately even in follow
	// mode; one line is proof of life, then we hang up.
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil || !strings.Contains(line, "device/"+info.ID) {
		t.Fatalf("follow stream first line %q err %v", line, err)
	}
	cancel()
}

func TestMetricsPromEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{Shards: 1, Registry: reg})
	srv := httptest.NewServer(NewHandler(f, reg))
	t.Cleanup(srv.Close)
	info, err := f.CreateDevice(CreateDeviceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Install(info.ID, InstallRequest{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE gia_serve_devices_created counter",
		"gia_serve_devices_created 1",
		"# TYPE gia_serve_tx_ns histogram",
		`gia_serve_tx_ns_bucket{le="+Inf"} 1`,
		`gia_serve_tx_ns_quantiles{quantile="0.99"}`,
		"# TYPE gia_serve_shard0_tx_ns histogram",
		"gia_serve_shard0_err_permille 0",
		"gia_arena_misses 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
	// Default format stays the text table.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body2), "== counters ==") {
		t.Error("default /metrics no longer renders the text table")
	}
}

func TestEventsSSE(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{Shards: 1, Registry: reg})
	srv := httptest.NewServer(NewHandler(f, reg))
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	// The subscription races the publish; keep creating devices until one
	// lands on the stream.
	deadline := time.After(8 * time.Second)
	var got []string
	for {
		if _, err := f.CreateDevice(CreateDeviceRequest{}); err != nil {
			t.Fatal(err)
		}
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream ended early; saw %v", got)
			}
			got = append(got, line)
			if strings.Contains(line, `"kind":"device.created"`) {
				cancel()
				return
			}
		case <-deadline:
			t.Fatalf("no device.created event; saw %v", got)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func TestSLOEndpointAndReport(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{Shards: 2, Registry: reg, Clock: obs.TickingClock(time.Millisecond)})
	srv := httptest.NewServer(NewHandler(f, reg))
	t.Cleanup(srv.Close)

	info, err := f.CreateDevice(CreateDeviceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Install(info.ID, InstallRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.SLO()
	if rep.Devices != 1 || rep.Tx != 3 || rep.Errors != 0 || rep.ErrRate != 0 {
		t.Fatalf("SLO report: %+v", rep)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("shard rows = %d, want 2", len(rep.Shards))
	}
	var shardTx int64
	for _, s := range rep.Shards {
		shardTx += s.Tx
		if s.Tx > 0 && s.P50NS <= 0 {
			t.Errorf("shard %d has tx but p50=%d", s.Shard, s.P50NS)
		}
	}
	if shardTx != 3 {
		t.Errorf("per-shard tx sums to %d, want 3", shardTx)
	}
	if rep.P50NS <= 0 || rep.P99NS < rep.P50NS {
		t.Errorf("fleet quantiles p50=%d p99=%d", rep.P50NS, rep.P99NS)
	}

	resp, err := http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded SLOReport
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Tx != 3 || len(decoded.Shards) != 2 {
		t.Errorf("GET /slo decoded %+v", decoded)
	}
}

func TestShardSLORollingWindow(t *testing.T) {
	s := newShardSLO(0, obs.NewRegistry())
	// Fill a window with errors, then push them out with successes.
	for i := 0; i < sloWindow; i++ {
		s.record(1000, true)
	}
	if _, errs, winErrs, winN := s.read(); errs != sloWindow || winErrs != sloWindow || winN != sloWindow {
		t.Fatalf("after error fill: errs=%d winErrs=%d winN=%d", errs, winErrs, winN)
	}
	for i := 0; i < sloWindow; i++ {
		s.record(1000, false)
	}
	total, errs, winErrs, winN := s.read()
	if total != 2*sloWindow || errs != sloWindow {
		t.Fatalf("all-time totals: total=%d errs=%d", total, errs)
	}
	if winErrs != 0 || winN != sloWindow {
		t.Fatalf("rolling window not flushed: winErrs=%d winN=%d", winErrs, winN)
	}
}

func TestReplayViolationDumpsFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{Shards: 1, Registry: reg, DumpDir: dir})

	// GooglePlay stages in app-private storage: the canonical hijack
	// invariant fails there, so the replay is a violation — the
	// flight-recorder dump trigger under GET /replay.
	token := chaos.Schedule{Seed: 7}.Token()
	res, err := f.Replay(ReplayRequest{Token: token, Store: "googleplay"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Fatalf("googleplay replay should violate: %+v", res)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var chrome string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".trace.json") {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			chrome = string(b)
		}
	}
	if chrome == "" {
		t.Fatalf("no Chrome-trace dump in %s (files: %v)", dir, entries)
	}
	if !strings.Contains(chrome, res.Resolved) {
		t.Errorf("dump lacks the replay token %q", res.Resolved)
	}
	if !strings.Contains(chrome, "chaos.violation") {
		t.Error("dump lacks the chaos.violation marker")
	}
	if !strings.Contains(chrome, "invocation") {
		t.Error("dump lacks the AIT step events")
	}
	// The replay's run track was dropped after the dump.
	for _, k := range f.FlightTrace().Tracks() {
		if strings.HasPrefix(k.Name(), "run/") {
			t.Errorf("replay run track leaked: %s", k.Name())
		}
	}
	// Metrics counted the dump.
	if got := reg.Snapshot().Counter("chaos.dumps"); got != 1 {
		t.Errorf("chaos.dumps = %d, want 1", got)
	}
}
