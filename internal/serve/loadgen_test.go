package serve

import (
	"strings"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/obs"
)

// A short load run: offered load is sustained, churned devices come back
// as arena hits, and the report carries obs-derived percentiles.
func TestRunLoadSmoke(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{Shards: 2, Seed: 1, Registry: reg})
	report, err := RunLoad(f, LoadConfig{
		Devices:     16,
		Rate:        400,
		Duration:    500 * time.Millisecond,
		ChurnEvery:  4,
		AttackEvery: 7,
		Seed:        1,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Arrivals == 0 {
		t.Fatal("no arrivals fired")
	}
	if report.Errors != 0 {
		t.Fatalf("load run had %d errors (raced=%d)", report.Errors, report.Raced)
	}
	if report.Churns > 0 && report.ArenaWarmHitRate < 0.9 {
		t.Fatalf("warm arena hit rate %.2f, want > 0.9 (hits=%d misses=%d)",
			report.ArenaWarmHitRate, report.ArenaHits, report.ArenaMisses)
	}
	if report.P50NS <= 0 || report.P99NS < report.P50NS {
		t.Fatalf("bad percentiles: p50=%d p99=%d", report.P50NS, report.P99NS)
	}
	if report.ActiveDevicesEnd != 16 {
		t.Fatalf("active devices at end = %d, want 16", report.ActiveDevicesEnd)
	}
	var b strings.Builder
	report.WriteReport(&b)
	for _, want := range []string{"loadtest:", "p50=", "warm-hit-rate="} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, b.String())
		}
	}
}
