package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/ghost-installer/gia/internal/obs"
)

// handler adapts a Service to HTTP/JSON. Routes (Go 1.22 pattern mux):
//
//	POST   /devices               create/boot a device
//	GET    /devices               list devices
//	GET    /devices/{id}          device status
//	DELETE /devices/{id}          reclaim the device to its shard pool
//	POST   /devices/{id}/install  drive one clean install transaction
//	POST   /devices/{id}/attack   drive one AIT under a GIA strategy
//	GET    /devices/{id}/timeline recorded device timeline
//	POST   /replay                run a chaos replay token
//	GET    /metrics               internal/obs text snapshot (?format=prom
//	                              for Prometheus exposition)
//	GET    /devices/{id}/trace    flight-recorder ring as JSONL
//	                              (?follow=1 streams over chunked HTTP)
//	GET    /events                fleet lifecycle/violation events (SSE)
//	GET    /slo                   per-shard SLO aggregation (JSON)
//	GET    /healthz               liveness probe
//
// The telemetry routes are capability-gated: a Service that also
// implements FlightSource/EventSource/SLOSource (the Fleet does) gets
// them; a bare Service answers 404 there.
type handler struct {
	svc      Service
	reg      *obs.Registry
	requests *obs.Counter
	errors   *obs.Counter
}

// FlightSource is the capability behind GET /devices/{id}/trace.
type FlightSource interface {
	DeviceTrack(id string) (*obs.Track, error)
}

// EventSource is the capability behind GET /events.
type EventSource interface {
	EventHub() *obs.Hub
}

// SLOSource is the capability behind GET /slo (and the -watch summary).
type SLOSource interface {
	SLO() SLOReport
}

// tracePollInterval paces the ?follow=1 ring poll: low enough to feel
// live, high enough that an idle follower costs nothing measurable.
const tracePollInterval = 100 * time.Millisecond

// NewHandler builds the HTTP layer over svc. reg is rendered by
// GET /metrics and receives the serve.http.* counters; nil disables both.
func NewHandler(svc Service, reg *obs.Registry) http.Handler {
	h := &handler{
		svc:      svc,
		reg:      reg,
		requests: reg.Counter("serve.http.requests"),
		errors:   reg.Counter("serve.http.errors"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /devices", h.createDevice)
	mux.HandleFunc("GET /devices", h.listDevices)
	mux.HandleFunc("GET /devices/{id}", h.getDevice)
	mux.HandleFunc("DELETE /devices/{id}", h.deleteDevice)
	mux.HandleFunc("POST /devices/{id}/install", h.install)
	mux.HandleFunc("POST /devices/{id}/attack", h.attack)
	mux.HandleFunc("GET /devices/{id}/timeline", h.timeline)
	mux.HandleFunc("POST /replay", h.replay)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /devices/{id}/trace", h.deviceTrace)
	mux.HandleFunc("GET /events", h.events)
	mux.HandleFunc("GET /slo", h.slo)
	mux.HandleFunc("GET /healthz", h.healthz)
	return h.count(mux)
}

func (h *handler) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.requests.Inc()
		next.ServeHTTP(w, r)
	})
}

// readJSON decodes an optional JSON body into v; an empty body (io.EOF on
// the first token) is the zero request, so clients may POST without a body
// for all-default operations.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return badRequestf("decode body: %v", err)
	}
	return nil
}

func (h *handler) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (h *handler) writeErr(w http.ResponseWriter, err error) {
	h.errors.Inc()
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	h.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (h *handler) createDevice(w http.ResponseWriter, r *http.Request) {
	var req CreateDeviceRequest
	if err := readJSON(r, &req); err != nil {
		h.writeErr(w, err)
		return
	}
	info, err := h.svc.CreateDevice(req)
	if err != nil {
		h.writeErr(w, err)
		return
	}
	h.writeJSON(w, http.StatusCreated, info)
}

func (h *handler) listDevices(w http.ResponseWriter, r *http.Request) {
	devices := h.svc.Devices()
	h.writeJSON(w, http.StatusOK, map[string]any{
		"devices": devices,
		"count":   len(devices),
	})
}

func (h *handler) getDevice(w http.ResponseWriter, r *http.Request) {
	info, err := h.svc.Device(r.PathValue("id"))
	if err != nil {
		h.writeErr(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, info)
}

func (h *handler) deleteDevice(w http.ResponseWriter, r *http.Request) {
	if err := h.svc.DeleteDevice(r.PathValue("id")); err != nil {
		h.writeErr(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, map[string]string{"status": "reclaimed"})
}

func (h *handler) install(w http.ResponseWriter, r *http.Request) {
	var req InstallRequest
	if err := readJSON(r, &req); err != nil {
		h.writeErr(w, err)
		return
	}
	res, err := h.svc.Install(r.PathValue("id"), req)
	if err != nil {
		h.writeErr(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, res)
}

func (h *handler) attack(w http.ResponseWriter, r *http.Request) {
	var req AttackRequest
	if err := readJSON(r, &req); err != nil {
		h.writeErr(w, err)
		return
	}
	res, err := h.svc.Attack(r.PathValue("id"), req)
	if err != nil {
		h.writeErr(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, res)
}

func (h *handler) timeline(w http.ResponseWriter, r *http.Request) {
	entries, err := h.svc.Timeline(r.PathValue("id"))
	if err != nil {
		h.writeErr(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, map[string]any{
		"device":  r.PathValue("id"),
		"entries": entries,
	})
}

func (h *handler) replay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if err := readJSON(r, &req); err != nil {
		h.writeErr(w, err)
		return
	}
	if req.Token == "" {
		h.writeErr(w, badRequestf("missing token"))
		return
	}
	res, err := h.svc.Replay(req)
	if err != nil {
		h.writeErr(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, res)
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	if h.reg == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.reg.Snapshot().WriteProm(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = h.reg.Snapshot().WriteText(w)
}

// deviceTrace serves the device's flight-recorder ring as JSONL. With
// ?follow=1 the response streams over chunked HTTP: the handler pages the
// ring with EventsSince, flushing new events until the client goes away
// or the device is reclaimed.
func (h *handler) deviceTrace(w http.ResponseWriter, r *http.Request) {
	fs, ok := h.svc.(FlightSource)
	if !ok {
		http.Error(w, "flight recorder unavailable", http.StatusNotFound)
		return
	}
	id := r.PathValue("id")
	k, err := fs.DeviceTrack(id)
	if err != nil {
		h.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	follow := r.URL.Query().Get("follow") == "1"
	flusher, canFlush := w.(http.Flusher)
	var since uint64
	for {
		evs, next := k.EventsSince(since)
		since = next
		for _, ev := range evs {
			line, err := obs.EventJSONL(k.Domain(), k.Name(), ev)
			if err != nil {
				return
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		if !follow {
			return
		}
		if canFlush {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(tracePollInterval):
		}
		// A reclaimed device ends the stream (its ring was dropped).
		if _, err := fs.DeviceTrack(id); err != nil {
			return
		}
	}
}

// events serves the fleet hub as Server-Sent Events, one `data:` line of
// HubEvent JSON per event. Slow consumers drop events rather than stall
// the fleet (the hub's non-blocking contract).
func (h *handler) events(w http.ResponseWriter, r *http.Request) {
	es, ok := h.svc.(EventSource)
	if !ok || es.EventHub() == nil {
		http.Error(w, "event stream unavailable", http.StatusNotFound)
		return
	}
	hub := es.EventHub()
	sub := hub.Subscribe(64)
	defer hub.Unsubscribe(sub)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	if canFlush {
		flusher.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, b); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		}
	}
}

// slo serves the per-shard SLO aggregation.
func (h *handler) slo(w http.ResponseWriter, r *http.Request) {
	src, ok := h.svc.(SLOSource)
	if !ok {
		http.Error(w, "slo unavailable", http.StatusNotFound)
		return
	}
	h.writeJSON(w, http.StatusOK, src.SLO())
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}
