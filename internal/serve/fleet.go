package serve

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/arena"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/experiment"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/timeline"
)

// Config sizes a Fleet.
type Config struct {
	// Shards is the number of goroutine-owned device arenas; 0 defaults
	// to 4. Devices are placed on the shard with the deepest idle pool,
	// so reclaimed devices are rebooted as ~18 µs arena resets instead of
	// fresh boots.
	Shards int
	// Seed is the base of the per-device seed derivation.
	Seed int64
	// IdleReclaim returns devices untouched for this long to their
	// shard's pool; 0 disables the reclaim loop.
	IdleReclaim time.Duration
	// ReclaimTick overrides the reclaim scan cadence (default
	// IdleReclaim/4).
	ReclaimTick time.Duration
	// Registry receives the fleet's serve.* and arena.* metrics; nil
	// disables instrumentation (nil obs hooks are free).
	Registry *obs.Registry
	// FlightDepth sizes the per-device flight-recorder rings (events per
	// track, appended at zero allocations). 0 means the 256-event default;
	// negative disables the recorder entirely.
	FlightDepth int
	// DumpDir, when non-empty, receives flight-recorder dumps: chaos
	// replay violations, failed arena resets and serve transaction errors
	// each write the involved rings' tails as Chrome-trace JSON + JSONL.
	DumpDir string
	// Clock is the wall timebase for transaction timing and hub event
	// stamps; nil defaults to a real stopwatch. Tests inject a fake so
	// reported latencies are deterministic.
	Clock obs.Clock
}

// defaultFlightDepth is the per-track ring size when Config.FlightDepth
// is zero: 256 events comfortably covers a full AIT (~8 step instants +
// outcome span) for the last ~25 transactions of a device.
const defaultFlightDepth = 256

// managedDevice is one fleet device. The mutable simulation state (dev,
// scen, rec, the transaction counters) is owned by the shard goroutine:
// it is only touched inside shard.run closures.
type managedDevice struct {
	id       string
	shardRef *shard
	seed     int64
	store    string
	prof     installer.Profile
	patched  bool
	created  time.Time
	lastUsed atomic.Int64 // unix-nano of the last transaction

	dev      *device.Device
	scen     *experiment.Scenario
	rec      *timeline.Recorder
	installs int
	attacks  int
	hijacks  int

	// ring is the device's flight-recorder lane ("device/<id>", virtual
	// domain, clocked by the device scheduler). The obs.Track is internally
	// synchronized, so the HTTP trace/dump readers may touch it off-shard;
	// nil when the recorder is disabled.
	ring *obs.Track
}

// fleetMetrics are the serve.* observability hooks; nil hooks no-op.
type fleetMetrics struct {
	created          *obs.Counter
	reclaimed        *obs.Counter
	idleReclaims     *obs.Counter
	active           *obs.Gauge
	installs         *obs.Counter
	installsClean    *obs.Counter
	installsHijacked *obs.Counter
	installsFailed   *obs.Counter
	attacks          *obs.Counter
	attacksHijacked  *obs.Counter
	replays          *obs.Counter
	replayViolations *obs.Counter
	txNS             *obs.Histogram
}

func instrumentFleet(reg *obs.Registry) fleetMetrics {
	return fleetMetrics{
		created:          reg.Counter("serve.devices.created"),
		reclaimed:        reg.Counter("serve.devices.reclaimed"),
		idleReclaims:     reg.Counter("serve.devices.idle_reclaims"),
		active:           reg.Gauge("serve.devices.active"),
		installs:         reg.Counter("serve.installs"),
		installsClean:    reg.Counter("serve.installs.clean"),
		installsHijacked: reg.Counter("serve.installs.hijacked"),
		installsFailed:   reg.Counter("serve.installs.failed"),
		attacks:          reg.Counter("serve.attacks"),
		attacksHijacked:  reg.Counter("serve.attacks.hijacked"),
		replays:          reg.Counter("serve.replays"),
		replayViolations: reg.Counter("serve.replays.violations"),
		txNS:             reg.Histogram("serve.tx_ns", obs.LatencyBuckets()),
	}
}

// Fleet is the arena-backed Service implementation.
type Fleet struct {
	cfg    Config
	reg    *obs.Registry
	met    fleetMetrics
	shards []*shard
	slos   []*shardSLO
	flight *obs.Trace // ring-mode flight recorder; nil when disabled
	hub    *obs.Hub
	clock  obs.Clock
	// dumpSeq numbers trigger-keyed dump files so concurrent triggers
	// never collide on a name.
	dumpSeq atomic.Int64

	mu        sync.Mutex
	devices   map[string]*managedDevice
	nextID    int64
	nextShard int
	closed    bool
	// wg counts in-flight operations; Close waits for it after flipping
	// closed, which drains every running transaction before the shards
	// stop.
	wg sync.WaitGroup

	// replayMu serializes chaos replays: the replay explorer's worker
	// arena is single-threaded like everything else in the simulation.
	replayMu sync.Mutex
	replayEx *chaos.Explorer

	reclaimStop chan struct{}
	reclaimDone chan struct{}
}

var _ Service = (*Fleet)(nil)

// NewFleet builds the shards and starts the idle-reclaim loop.
func NewFleet(cfg Config) *Fleet {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.FlightDepth == 0 {
		cfg.FlightDepth = defaultFlightDepth
	}
	f := &Fleet{
		cfg:     cfg,
		reg:     cfg.Registry,
		devices: make(map[string]*managedDevice),
		hub:     obs.NewHub(),
		clock:   cfg.Clock,
	}
	if f.clock == nil {
		f.clock = obs.Stopwatch()
	}
	if cfg.FlightDepth > 0 {
		// The recorder is virtual-domain only (device schedulers clock the
		// rings), which is what keeps replay-violation dumps deterministic.
		f.flight = obs.NewTrace()
		f.flight.SetWallClock(nil)
		f.flight.SetRingDepth(cfg.FlightDepth)
	}
	if cfg.Registry != nil {
		f.met = instrumentFleet(cfg.Registry)
	}
	// All shard arenas share one Metrics value, so arena.* counters
	// aggregate across the fleet (the ArenaWorkerState pattern).
	var arenaMet arena.Metrics
	if cfg.Registry != nil {
		arenaMet = arena.Instrument(cfg.Registry)
	}
	// A failed in-place reset is the one corruption signal the arena can
	// raise: broadcast it and dump every ring before the fall-back boot
	// papers over the evidence. The hook runs on the shard goroutine that
	// hit the failure; dumps and hub publishes are both off-shard-safe.
	arenaMet.ResetFailureHook = func(err error) {
		f.hub.Publish("arena.reset_failure", "", err.Error(), f.clock())
		f.dumpAll(fmt.Sprintf("reset-failure-%d", f.dumpSeq.Add(1)))
	}
	prof := experiment.ScenarioDeviceProfile(0)
	f.shards = make([]*shard, cfg.Shards)
	f.slos = make([]*shardSLO, cfg.Shards)
	for i := range f.shards {
		f.shards[i] = newShard(i, prof, arenaMet)
		f.slos[i] = newShardSLO(i, cfg.Registry)
	}
	f.replayEx = &chaos.Explorer{
		Workers:     1,
		Metrics:     cfg.Registry,
		WorkerState: experiment.ArenaWorkerState(cfg.Registry),
		// Replay runs record onto the flight recorder and dump their ring
		// tail on violation, tagged with the replay token.
		Trace:     f.flight,
		DumpDir:   cfg.DumpDir,
		DumpDepth: cfg.FlightDepth,
	}
	if cfg.IdleReclaim > 0 {
		tick := cfg.ReclaimTick
		if tick <= 0 {
			tick = cfg.IdleReclaim / 4
		}
		if tick <= 0 {
			tick = time.Second
		}
		f.reclaimStop = make(chan struct{})
		f.reclaimDone = make(chan struct{})
		go f.reclaimLoop(tick)
	}
	return f
}

// deriveSeed spreads the device counter over the seed space (splitmix64),
// so fleet devices never share RNG streams.
func deriveSeed(base, n int64) int64 {
	z := uint64(base) + uint64(n)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// pickShard places a new device on the shard with the deepest idle pool
// (ties broken round-robin), so a reclaimed device is preferentially
// reused by the next create — the arena hit path. Callers hold f.mu.
func (f *Fleet) pickShard() *shard {
	best := f.shards[f.nextShard%len(f.shards)]
	f.nextShard++
	for _, s := range f.shards {
		if s.idle.Load() > best.idle.Load() {
			best = s
		}
	}
	return best
}

// begin registers an in-flight operation; it fails once the fleet is
// closed. Every public operation brackets itself with begin/end.
func (f *Fleet) begin() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.wg.Add(1)
	return nil
}

func (f *Fleet) end() { f.wg.Done() }

// CreateDevice acquires a device from a shard arena, deploys the store
// scenario on it and registers it in the fleet.
func (f *Fleet) CreateDevice(req CreateDeviceRequest) (DeviceInfo, error) {
	store, prof, err := profileFor(req.Store)
	if err != nil {
		return DeviceInfo{}, err
	}
	if err := f.begin(); err != nil {
		return DeviceInfo{}, err
	}
	defer f.end()

	f.mu.Lock()
	f.nextID++
	sh := f.pickShard()
	d := &managedDevice{
		id:       fmt.Sprintf("d%06d", f.nextID),
		shardRef: sh,
		seed:     deriveSeed(f.cfg.Seed, f.nextID),
		store:    store,
		prof:     prof,
		patched:  req.Patched,
		created:  time.Now(), //gia:wallclock — API-facing creation stamp
	}
	f.mu.Unlock()
	d.lastUsed.Store(time.Now().UnixNano()) //gia:wallclock — idle-reclaim bookkeeping

	payload := []byte("genuine")
	if req.PayloadBytes > 0 {
		payload = bytes.Repeat([]byte{0x5a}, req.PayloadBytes)
	}
	var info DeviceInfo
	var buildErr error
	sh.run(func() {
		dev, err := sh.acquire(d.seed)
		if err != nil {
			buildErr = fmt.Errorf("serve: boot device: %w", err)
			return
		}
		scen, err := experiment.NewScenarioPayloadOn(dev, prof, payload)
		if err != nil {
			// The device never reached a known-good state; hand it back to
			// the pool, where the next acquire resets (or drops) it.
			sh.release(dev)
			buildErr = fmt.Errorf("serve: deploy scenario: %w", err)
			return
		}
		if req.Patched {
			dev.Fuse.SetPatched(true)
		}
		if req.Timeline {
			rec := timeline.New(dev.Sched.Now)
			if err := rec.WatchFS(dev.FS, prof.StagingDir); err != nil {
				sh.release(dev)
				buildErr = fmt.Errorf("serve: watch staging dir: %w", err)
				return
			}
			rec.WatchPackages(dev.PMS)
			d.rec = rec
		}
		if f.flight != nil {
			// The device's ring: scheduler-clocked, fed the installer's
			// per-step AIT instants and outcome spans from here on.
			d.ring = f.flight.VirtualTrack("device/" + d.id)
			d.ring.SetClock(dev.Sched.Now)
		}
		scen.Store.Instrument(f.reg, d.ring)
		d.dev, d.scen = dev, scen
		info = d.info()
	})
	if buildErr != nil {
		return DeviceInfo{}, buildErr
	}

	f.mu.Lock()
	f.devices[d.id] = d
	f.mu.Unlock()
	f.met.created.Inc()
	f.met.active.Add(1)
	f.hub.Publish("device.created", d.id, store, f.clock())
	return info, nil
}

// withDevice runs fn for device id on its owning shard goroutine —
// the only way any fleet code touches simulation state.
func (f *Fleet) withDevice(id string, fn func(*managedDevice) error) error {
	if err := f.begin(); err != nil {
		return err
	}
	defer f.end()
	f.mu.Lock()
	d, ok := f.devices[id]
	f.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	var err error
	d.shardRef.run(func() {
		if d.dev == nil { // reclaimed while we raced here
			err = ErrNotFound
			return
		}
		err = fn(d)
	})
	return err
}

// info renders the status view. Shard-goroutine only.
func (d *managedDevice) info() DeviceInfo {
	return DeviceInfo{
		ID:        d.id,
		Store:     d.store,
		Shard:     d.shardRef.id,
		Seed:      d.seed,
		Patched:   d.patched,
		Timeline:  d.rec != nil,
		CreatedAt: d.created.UTC().Format(time.RFC3339),
		VirtualMs: int64(d.dev.Sched.Now() / time.Millisecond),
		Packages:  len(d.dev.PMS.Packages()),
		Installs:  d.installs,
		Attacks:   d.attacks,
		Hijacks:   d.hijacks,
	}
}

// Device reports one device's status.
func (f *Fleet) Device(id string) (DeviceInfo, error) {
	var info DeviceInfo
	err := f.withDevice(id, func(d *managedDevice) error {
		info = d.info()
		return nil
	})
	return info, err
}

// Devices lists every active device, sorted by ID.
func (f *Fleet) Devices() []DeviceInfo {
	f.mu.Lock()
	ids := make([]string, 0, len(f.devices))
	for id := range f.devices {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	sort.Strings(ids)
	out := make([]DeviceInfo, 0, len(ids))
	for _, id := range ids {
		if info, err := f.Device(id); err == nil {
			out = append(out, info)
		}
	}
	return out
}

// DeleteDevice reclaims the device to its shard's arena pool. The next
// CreateDevice on that shard turns it into a reset-in-place hit.
func (f *Fleet) DeleteDevice(id string) error {
	err := f.withDevice(id, func(d *managedDevice) error {
		if d.rec != nil {
			d.rec.Close()
			d.rec = nil
		}
		d.shardRef.release(d.dev)
		d.dev, d.scen, d.ring = nil, nil, nil
		return nil
	})
	if err != nil {
		return err
	}
	// Drop the flight-recorder lane with the device, or a long-lived
	// daemon leaks one ring per reclaimed device.
	f.flight.Drop(obs.DomainVirtual, "device/"+id)
	f.mu.Lock()
	delete(f.devices, id)
	f.mu.Unlock()
	f.met.reclaimed.Inc()
	f.met.active.Add(-1)
	f.hub.Publish("device.reclaimed", id, "", f.clock())
	return nil
}

// Install publishes a fresh package on the device's store and drives one
// clean install transaction to completion.
func (f *Fleet) Install(id string, req InstallRequest) (InstallResult, error) {
	var out InstallResult
	err := f.withDevice(id, func(d *managedDevice) error {
		start := f.clock()
		d.lastUsed.Store(time.Now().UnixNano()) //gia:wallclock — idle-reclaim bookkeeping
		d.installs++
		pkg := fmt.Sprintf("com.fleet.%s.app%05d", d.id, d.installs)
		payload := []byte(pkg)
		if req.PayloadBytes > 0 {
			payload = bytes.Repeat([]byte{0x5b}, req.PayloadBytes)
		}
		a := apk.Build(apk.Manifest{Package: pkg, VersionCode: 1, Label: pkg},
			map[string][]byte{"classes.dex": payload}, sig.NewKey(pkg+"-dev"))
		d.scen.Store.Store.Publish(a)

		res, completed := driveAIT(d, pkg)
		out = InstallResult{
			Package:   pkg,
			Installed: res.Succeeded(),
			Clean:     res.Clean(),
			Hijacked:  res.Hijacked,
			Attempts:  res.Attempts,
			VirtualMs: int64(d.dev.Sched.Now() / time.Millisecond),
			WallNS:    int64(f.clock() - start),
		}
		switch {
		case !completed:
			out.Err = "transaction did not complete within the horizon"
		case res.Err != nil:
			out.Err = res.Err.Error()
		}
		f.met.installs.Inc()
		switch {
		case out.Clean:
			f.met.installsClean.Inc()
		case out.Hijacked:
			f.met.installsHijacked.Inc()
			d.hijacks++
		default:
			f.met.installsFailed.Inc()
		}
		f.finishTx(d, "install "+pkg, out.WallNS, out.Err)
		return nil
	})
	return out, err
}

// finishTx books one transaction's SLO outcome and, when it errored,
// broadcasts a tx.error hub event and dumps the device's ring tail.
// Shard-goroutine only (SLO state and the hub tolerate any goroutine, but
// the ring read must not race the transaction that just wrote it).
func (f *Fleet) finishTx(d *managedDevice, what string, wallNS int64, errText string) {
	f.met.txNS.Observe(wallNS)
	f.slos[d.shardRef.id].record(wallNS, errText != "")
	if errText == "" {
		return
	}
	f.hub.Publish("tx.error", d.id, what+": "+errText, f.clock())
	if d.ring != nil {
		f.dumpTracks(fmt.Sprintf("txerror-%s-%d", d.id, f.dumpSeq.Add(1)), []*obs.Track{d.ring})
	}
}

// Attack launches a TOCTOU strategy against the device's published target
// and drives one AIT under attack.
func (f *Fleet) Attack(id string, req AttackRequest) (AttackResult, error) {
	strat, err := strategyFor(req.Strategy)
	if err != nil {
		return AttackResult{}, err
	}
	var out AttackResult
	err = f.withDevice(id, func(d *managedDevice) error {
		start := f.clock()
		d.lastUsed.Store(time.Now().UnixNano()) //gia:wallclock — idle-reclaim bookkeeping
		d.attacks++
		atk := attack.NewTOCTOU(d.scen.Mal, attack.ConfigForStore(d.prof, strat), d.scen.Target)
		if err := atk.Launch(); err != nil {
			return fmt.Errorf("serve: launch attack: %w", err)
		}
		res, completed := driveAIT(d, experiment.TargetPackage)
		atk.Stop()
		out = AttackResult{
			Target:       experiment.TargetPackage,
			Strategy:     strat.String(),
			Hijacked:     res.Hijacked,
			Installed:    res.Succeeded(),
			Attempts:     res.Attempts,
			Replacements: len(atk.Replacements()),
			VirtualMs:    int64(d.dev.Sched.Now() / time.Millisecond),
			WallNS:       int64(f.clock() - start),
		}
		switch {
		case !completed:
			out.Err = "transaction did not complete within the horizon"
		case res.Err != nil:
			out.Err = res.Err.Error()
		}
		if res.Hijacked {
			d.hijacks++
			f.met.attacksHijacked.Inc()
		}
		f.met.attacks.Inc()
		f.finishTx(d, "attack "+strat.String(), out.WallNS, out.Err)
		return nil
	})
	return out, err
}

// driveAIT submits one install of pkg and drives the device's clock one
// horizon forward. Shard-goroutine only.
func driveAIT(d *managedDevice, pkg string) (installer.Result, bool) {
	var res installer.Result
	completed := false
	d.scen.Store.RequestInstall(pkg, func(r installer.Result) {
		res = r
		completed = true
	})
	d.dev.Sched.RunUntil(d.dev.Sched.Now() + txHorizon)
	if d.rec != nil && completed {
		d.rec.RecordAIT(res)
	}
	return res, completed
}

// Timeline returns the device's recorded event timeline.
func (f *Fleet) Timeline(id string) ([]TimelineEntry, error) {
	var out []TimelineEntry
	err := f.withDevice(id, func(d *managedDevice) error {
		if d.rec == nil {
			return badRequestf("device %s has no timeline (create with \"timeline\": true)", id)
		}
		entries := d.rec.Entries()
		out = make([]TimelineEntry, len(entries))
		for i, e := range entries {
			out[i] = TimelineEntry{
				AtMs:   float64(e.At) / float64(time.Millisecond),
				Source: e.Source,
				Detail: e.Detail,
			}
		}
		return nil
	})
	return out, err
}

// Replay re-executes a chaos token against the canonical hijack invariant
// on its own single-threaded explorer (not a fleet device: replays carry
// fault plans and arbiter choices that must not leak into live devices).
func (f *Fleet) Replay(req ReplayRequest) (ReplayResult, error) {
	parsed, err := chaos.ParseToken(req.Token)
	if err != nil {
		return ReplayResult{}, badRequestf("parse token: %v", err)
	}
	_, prof, err := profileFor(req.Store)
	if err != nil {
		return ReplayResult{}, err
	}
	strat, err := strategyFor(req.Strategy)
	if err != nil {
		return ReplayResult{}, err
	}
	if err := f.begin(); err != nil {
		return ReplayResult{}, err
	}
	defer f.end()
	f.replayMu.Lock()
	defer f.replayMu.Unlock()
	resolved, rerr := f.replayEx.Replay(req.Token, experiment.HijackRunFunc(prof, strat))
	// The replay's trace lane served its purpose (a violation already
	// dumped its tail, keyed by token); drop it so repeated replays do not
	// accumulate rings.
	f.flight.Drop(obs.DomainVirtual, "run/"+parsed.Token())
	out := ReplayResult{Token: req.Token, Resolved: resolved.Token(), Violated: rerr != nil}
	if rerr != nil {
		out.Detail = rerr.Error()
	}
	f.met.replays.Inc()
	if rerr != nil {
		f.met.replayViolations.Inc()
		f.hub.Publish("replay.violation", resolved.Token(), out.Detail, f.clock())
	}
	return out, nil
}

// reclaimLoop returns devices idle past the configured age to their
// shard's pool.
func (f *Fleet) reclaimLoop(tick time.Duration) {
	defer close(f.reclaimDone)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-f.reclaimStop:
			return
		case <-t.C:
			f.reclaimIdle()
		}
	}
}

func (f *Fleet) reclaimIdle() {
	cutoff := time.Now().Add(-f.cfg.IdleReclaim).UnixNano() //gia:wallclock — idle-reclaim bookkeeping
	f.mu.Lock()
	var stale []string
	for id, d := range f.devices {
		if d.lastUsed.Load() < cutoff {
			stale = append(stale, id)
		}
	}
	f.mu.Unlock()
	for _, id := range stale {
		if err := f.DeleteDevice(id); err == nil {
			f.met.idleReclaims.Inc()
			f.hub.Publish("device.idle_reclaim", id, "", f.clock())
		}
	}
}

// Close drains in-flight transactions, stops the reclaim loop and shuts
// the shard goroutines down. Safe to call more than once.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	if f.reclaimStop != nil {
		close(f.reclaimStop)
		<-f.reclaimDone
	}
	f.wg.Wait()
	for _, s := range f.shards {
		s.close()
	}
}
