package serve

import (
	"errors"
	"sync"
	"testing"

	"github.com/ghost-installer/gia/internal/obs"
)

// The arena/sim substrates are not safe for concurrent use; the daemon's
// guarantee is that every per-device operation — no matter which HTTP
// goroutine it arrives on — executes as a closure on the device's owning
// shard goroutine. This test hammers a single device from many goroutines
// under the race detector (verify.sh runs it with -race): any fleet code
// touching simulation state off the shard goroutine is a detected race.
func TestShardOwnershipSerializesConcurrentOps(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 2, Seed: 21, Registry: obs.NewRegistry()})
	info, err := f.CreateDevice(CreateDeviceRequest{Store: "amazon", Timeline: true})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const opsPerClient = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*opsPerClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				var err error
				switch (c + i) % 4 {
				case 0:
					_, err = f.Install(info.ID, InstallRequest{})
				case 1:
					_, err = f.Attack(info.ID, AttackRequest{})
				case 2:
					_, err = f.Device(info.ID)
				default:
					_, err = f.Timeline(info.ID)
				}
				if err != nil {
					errs <- err
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent op failed: %v", err)
	}

	// The device's per-transaction counters were only ever touched on the
	// shard goroutine, so they must add up exactly.
	got, err := f.Device(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	wantInstalls := 0
	wantAttacks := 0
	for c := 0; c < clients; c++ {
		for i := 0; i < opsPerClient; i++ {
			switch (c + i) % 4 {
			case 0:
				wantInstalls++
			case 1:
				wantAttacks++
			}
		}
	}
	if got.Installs != wantInstalls || got.Attacks != wantAttacks {
		t.Fatalf("counters lost under concurrency: installs=%d want %d, attacks=%d want %d",
			got.Installs, wantInstalls, got.Attacks, wantAttacks)
	}
}

// Creates, deletes and status calls racing across devices and shards:
// the fleet registry (map + placement) is mutex-guarded while simulation
// work stays shard-owned.
func TestConcurrentLifecycleAcrossShards(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 3, Seed: 9, Registry: obs.NewRegistry()})
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				info, err := f.CreateDevice(CreateDeviceRequest{})
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if _, err := f.Install(info.ID, InstallRequest{}); err != nil {
					t.Errorf("install: %v", err)
					return
				}
				if err := f.DeleteDevice(info.ID); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := len(f.Devices()); n != 0 {
		t.Fatalf("devices leaked: %d", n)
	}
}
