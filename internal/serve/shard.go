package serve

import (
	"sync/atomic"

	"github.com/ghost-installer/gia/internal/arena"
	"github.com/ghost-installer/gia/internal/device"
)

// shardQueueDepth bounds the per-shard submission queue; submitters block
// once it fills, which is exactly the backpressure a shard at capacity
// should exert.
const shardQueueDepth = 256

// shard owns one device arena on one goroutine. Arenas and the simulation
// substrates they pool are not safe for concurrent use, so every
// operation touching a shard's arena or any device acquired from it runs
// as a closure on the shard's loop goroutine — run() is the only door.
type shard struct {
	id    int
	arena *arena.Arena
	tasks chan func()
	done  chan struct{}
	// idle mirrors arena.Idle() so the placement decision in
	// Fleet.CreateDevice can read pool depth without entering the shard.
	idle atomic.Int64
}

func newShard(id int, profile device.Profile, met arena.Metrics) *shard {
	a := arena.New(profile)
	a.SetMetrics(met)
	s := &shard{
		id:    id,
		arena: a,
		tasks: make(chan func(), shardQueueDepth),
		done:  make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *shard) loop() {
	defer close(s.done)
	for fn := range s.tasks {
		fn()
	}
}

// run executes fn on the shard goroutine and waits for it to finish. The
// fleet guarantees (via its in-flight WaitGroup) that no run is submitted
// after close.
func (s *shard) run(fn func()) {
	ack := make(chan struct{})
	s.tasks <- func() {
		defer close(ack)
		fn()
	}
	<-ack
}

// acquire and release wrap the arena with the idle mirror. Both must be
// called from the shard goroutine (inside run).
func (s *shard) acquire(seed int64) (*device.Device, error) {
	d, err := s.arena.Acquire(seed)
	s.idle.Store(int64(s.arena.Idle()))
	return d, err
}

func (s *shard) release(d *device.Device) {
	s.arena.Release(d)
	s.idle.Store(int64(s.arena.Idle()))
}

// close drains the task queue and stops the loop goroutine.
func (s *shard) close() {
	close(s.tasks)
	<-s.done
}
