package serve

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ghost-installer/gia/internal/obs"
)

// LoadConfig sizes one open-loop load run against a Service.
type LoadConfig struct {
	// Devices is the concurrent fleet size the run creates up front.
	Devices int
	// Rate is the arrival rate in operations/second. The arrival process
	// is open-loop: arrivals are scheduled on the wall clock independent
	// of completions, so a slow server builds queueing delay instead of
	// silently throttling the offered load.
	Rate float64
	// Duration is how long arrivals keep coming.
	Duration time.Duration
	// ChurnEvery makes every Nth arrival a reclaim+create cycle instead
	// of an install, exercising the arena reuse path; 0 disables churn.
	ChurnEvery int
	// AttackEvery makes every Nth arrival an attack transaction; 0
	// disables attacks.
	AttackEvery int
	// Seed drives the deterministic device-picking sequence.
	Seed int64
	// Store selects the device profile (default "amazon").
	Store string
	// Registry receives the serve.load.e2e_ns latency histogram; the
	// report's quantiles are computed from its snapshot.
	Registry *obs.Registry
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Devices     int           `json:"devices"`
	Rate        float64       `json:"rate"`
	Duration    time.Duration `json:"-"`
	DurationSec float64       `json:"duration_sec"`
	Arrivals    int64         `json:"arrivals"`
	Installs    int64         `json:"installs"`
	Attacks     int64         `json:"attacks"`
	Churns      int64         `json:"churns"`
	Errors      int64         `json:"errors"`
	// Raced counts arrivals that lost the churn race (the slot's device
	// was reclaimed between pick and dispatch) — expected under churn,
	// not errors.
	Raced int64 `json:"raced"`
	// CompletedPerSec is completed operations over the full wall time
	// (arrival window + drain).
	CompletedPerSec float64 `json:"completed_per_sec"`
	// P50NS/P99NS are arrival-to-completion latencies from the obs
	// histogram (serve.load.e2e_ns).
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
	// Arena counters, with warm-rate measured across the loaded window
	// only (the initial fleet boot is all compulsory misses).
	ArenaHits         int64   `json:"arena_hits"`
	ArenaMisses       int64   `json:"arena_misses"`
	ArenaResetFails   int64   `json:"arena_reset_failures"`
	ArenaWarmHitRate  float64 `json:"arena_warm_hit_rate"`
	ArenaResetMeanNS  int64   `json:"arena_reset_mean_ns"`
	ActiveDevicesEnd  int64   `json:"active_devices_end"`
	TotalWallSeconds  float64 `json:"total_wall_sec"`
	ArrivalWindowSecs float64 `json:"arrival_window_sec"`
}

// RunLoad drives an open-loop arrival process against svc: it boots a
// fleet of cfg.Devices devices, then fires cfg.Rate arrivals/second for
// cfg.Duration, each arrival an install (or attack / churn cycle) against
// a deterministically picked device, recording arrival-to-completion
// latency into the serve.load.e2e_ns histogram.
func RunLoad(svc Service, cfg LoadConfig) (LoadReport, error) {
	if cfg.Devices <= 0 {
		cfg.Devices = 100
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	lat := cfg.Registry.Histogram("serve.load.e2e_ns", obs.LatencyBuckets())

	// Boot the fleet. These creates are the warm-up: every one is a
	// compulsory arena miss (nothing is pooled yet).
	slots := make([]atomic.Value, cfg.Devices) // holds device IDs (string)
	for i := range slots {
		info, err := svc.CreateDevice(CreateDeviceRequest{Store: cfg.Store})
		if err != nil {
			return LoadReport{}, fmt.Errorf("loadgen: boot fleet device %d: %w", i, err)
		}
		slots[i].Store(info.ID)
	}
	warmHits, warmMisses, _ := arenaCounters(cfg.Registry)

	var (
		report    LoadReport
		wg        sync.WaitGroup
		installs  atomic.Int64
		attacks   atomic.Int64
		churns    atomic.Int64
		errCount  atomic.Int64
		raced     atomic.Int64
		slotLocks = make([]sync.Mutex, cfg.Devices)
	)
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now() //gia:wallclock — open-loop arrival pacing is real time by design
	deadline := start.Add(cfg.Duration)
	next := start
	rng := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0x1234567
	arrivals := int64(0)
	for time.Now().Before(deadline) { //gia:wallclock — open-loop arrival pacing
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		arrival := next
		next = next.Add(interval)
		arrivals++
		n := arrivals
		// Deterministic device pick (LCG) — the load pattern is
		// reproducible per seed even though completion order is not.
		rng = rng*6364136223846793005 + 1442695040888963407
		slot := int(rng>>33) % cfg.Devices
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			switch {
			case cfg.ChurnEvery > 0 && n%int64(cfg.ChurnEvery) == 0:
				churns.Add(1)
				err = churn(svc, cfg, slots, slotLocks, slot)
			case cfg.AttackEvery > 0 && n%int64(cfg.AttackEvery) == 0:
				attacks.Add(1)
				_, err = svc.Attack(slotID(&slots[slot]), AttackRequest{})
			default:
				installs.Add(1)
				_, err = svc.Install(slotID(&slots[slot]), InstallRequest{})
			}
			switch {
			case err == nil:
				lat.Observe(time.Since(arrival).Nanoseconds())
			case isRace(err):
				raced.Add(1)
			default:
				errCount.Add(1)
			}
		}()
	}
	arrivalWindow := time.Since(start)
	wg.Wait()
	total := time.Since(start)

	hits, misses, resetFails := arenaCounters(cfg.Registry)
	report = LoadReport{
		Devices:           cfg.Devices,
		Rate:              cfg.Rate,
		Duration:          cfg.Duration,
		DurationSec:       cfg.Duration.Seconds(),
		Arrivals:          arrivals,
		Installs:          installs.Load(),
		Attacks:           attacks.Load(),
		Churns:            churns.Load(),
		Errors:            errCount.Load(),
		Raced:             raced.Load(),
		ArenaHits:         hits,
		ArenaMisses:       misses,
		ArenaResetFails:   resetFails,
		TotalWallSeconds:  total.Seconds(),
		ArrivalWindowSecs: arrivalWindow.Seconds(),
	}
	completed := arrivals - report.Errors - report.Raced
	if total > 0 {
		report.CompletedPerSec = float64(completed) / total.Seconds()
	}
	if warmDelta := (hits - warmHits) + (misses - warmMisses); warmDelta > 0 {
		report.ArenaWarmHitRate = float64(hits-warmHits) / float64(warmDelta)
	}
	snap := cfg.Registry.Snapshot()
	for _, h := range snap.Histograms {
		switch h.Name {
		case "serve.load.e2e_ns":
			report.P50NS = h.Quantile(0.50)
			report.P99NS = h.Quantile(0.99)
		case "arena.reset_ns":
			if h.Count > 0 {
				report.ArenaResetMeanNS = h.Sum / h.Count
			}
		}
	}
	report.ActiveDevicesEnd = snap.Gauge("serve.devices.active")
	return report, nil
}

func slotID(v *atomic.Value) string {
	id, _ := v.Load().(string)
	return id
}

// churn reclaims the slot's device and creates a fresh one in its place —
// the create should land on the shard that just pooled the reclaimed
// device, turning it into an arena reset hit.
func churn(svc Service, cfg LoadConfig, slots []atomic.Value, locks []sync.Mutex, slot int) error {
	locks[slot].Lock()
	defer locks[slot].Unlock()
	if err := svc.DeleteDevice(slotID(&slots[slot])); err != nil {
		return err
	}
	info, err := svc.CreateDevice(CreateDeviceRequest{Store: cfg.Store})
	if err != nil {
		return err
	}
	slots[slot].Store(info.ID)
	return nil
}

// isRace classifies a lost churn race: the picked device was reclaimed
// between slot read and dispatch.
func isRace(err error) bool {
	return errors.Is(err, ErrNotFound)
}

// arenaCounters reads the shared arena counters from the registry.
func arenaCounters(reg *obs.Registry) (hits, misses, resetFails int64) {
	snap := reg.Snapshot()
	return snap.Counter("arena.hits"), snap.Counter("arena.misses"), snap.Counter("arena.reset_failures")
}

// WriteReport renders the human-readable load summary.
func (r LoadReport) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "loadtest: %d devices, %.0f ops/s offered for %s (%s store window)\n",
		r.Devices, r.Rate, r.Duration, time.Duration(r.ArrivalWindowSecs*float64(time.Second)).Round(time.Millisecond))
	fmt.Fprintf(w, "  arrivals=%d installs=%d attacks=%d churns=%d errors=%d raced=%d\n",
		r.Arrivals, r.Installs, r.Attacks, r.Churns, r.Errors, r.Raced)
	fmt.Fprintf(w, "  completed %.1f ops/s; e2e latency p50=%s p99=%s\n",
		r.CompletedPerSec, time.Duration(r.P50NS), time.Duration(r.P99NS))
	fmt.Fprintf(w, "  arena: hits=%d misses=%d reset_failures=%d warm-hit-rate=%.1f%% reset-mean=%s\n",
		r.ArenaHits, r.ArenaMisses, r.ArenaResetFails, 100*r.ArenaWarmHitRate, time.Duration(r.ArenaResetMeanNS))
	fmt.Fprintf(w, "  active devices at end: %d\n", r.ActiveDevicesEnd)
}
