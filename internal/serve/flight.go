package serve

import (
	"os"
	"path/filepath"

	"github.com/ghost-installer/gia/internal/obs"
)

// Flight-recorder wiring: the fleet keeps a ring-mode obs.Trace with one
// bounded track per live device (plus the replay explorer's run tracks),
// appended to on every transaction at zero allocations. Three triggers
// dump ring tails retroactively — serve transaction errors and failed
// arena resets here, chaos replay violations inside the explorer — and
// the same rings feed GET /devices/{id}/trace live.

// FlightTrace exposes the fleet's flight-recorder trace (nil when the
// recorder is disabled) — the loadtest telemetry flush reads it.
func (f *Fleet) FlightTrace() *obs.Trace { return f.flight }

// EventHub exposes the fleet's lifecycle/violation event hub (the
// GET /events SSE source).
func (f *Fleet) EventHub() *obs.Hub { return f.hub }

// DeviceTrack returns the named device's flight-recorder ring.
// ErrNotFound for unknown devices; a bad request when the recorder is
// disabled. The track is internally synchronized, so readers never touch
// the shard goroutine.
func (f *Fleet) DeviceTrack(id string) (*obs.Track, error) {
	f.mu.Lock()
	d, ok := f.devices[id]
	f.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if d.ring == nil {
		return nil, badRequestf("flight recorder disabled (run with -flight-recorder-depth > 0)")
	}
	return d.ring, nil
}

// dumpTracks writes the given ring tails under cfg.DumpDir as
// <stem>.trace.json and <stem>.jsonl. Best-effort, like the chaos
// explorer's dumps: failures bump serve.flight.dump_errors.
func (f *Fleet) dumpTracks(stem string, tracks []*obs.Track) {
	if f.cfg.DumpDir == "" || len(tracks) == 0 {
		return
	}
	tails := make([]*obs.Track, 0, len(tracks))
	for _, k := range tracks {
		if k != nil {
			tails = append(tails, obs.TailTrack(k, 0)) // rings are already bounded
		}
	}
	if len(tails) == 0 {
		return
	}
	base := filepath.Join(f.cfg.DumpDir, stem)
	failed := false
	if fh, err := os.Create(base + ".trace.json"); err != nil {
		failed = true
	} else {
		werr := obs.WriteChromeTracks(fh, tails)
		if cerr := fh.Close(); werr != nil || cerr != nil {
			failed = true
		}
	}
	if fh, err := os.Create(base + ".jsonl"); err != nil {
		failed = true
	} else {
		werr := obs.WriteJSONLTracks(fh, tails)
		if cerr := fh.Close(); werr != nil || cerr != nil {
			failed = true
		}
	}
	if failed {
		f.reg.Counter("serve.flight.dump_errors").Inc()
	} else {
		f.reg.Counter("serve.flight.dumps").Inc()
	}
}

// dumpAll dumps every track the flight recorder currently holds (the
// failed-arena-reset trigger: the poisoned device is not identifiable
// from inside the arena, so the whole recorder state is the evidence).
func (f *Fleet) dumpAll(stem string) {
	if f.flight == nil {
		return
	}
	f.dumpTracks(stem, f.flight.Tracks())
}
