package serve

import (
	"fmt"
	"sync"

	"github.com/ghost-installer/gia/internal/obs"
)

// sloWindow is the rolling window (in transactions) the per-shard error
// rate is computed over.
const sloWindow = 256

// shardSLO aggregates one shard's transaction SLO signals: an all-time
// latency histogram (registered as serve.shard<k>.tx_ns, so /metrics and
// the Prometheus exposition carry its buckets and quantiles) plus a
// rolling error-rate window. Records come from shard-goroutine closures,
// reads from HTTP goroutines; the mutex is uncontended in practice.
type shardSLO struct {
	id          int
	hist        *obs.Histogram
	errPermille *obs.Gauge

	mu      sync.Mutex
	window  [sloWindow]bool // true = errored transaction
	total   int64           // all-time transactions
	errs    int64           // all-time errors
	winErrs int             // errors inside the current window
}

// shardHistName names shard k's latency histogram in the registry.
func shardHistName(id int) string { return fmt.Sprintf("serve.shard%d.tx_ns", id) }

func newShardSLO(id int, reg *obs.Registry) *shardSLO {
	return &shardSLO{
		id:          id,
		hist:        reg.Histogram(shardHistName(id), obs.LatencyBuckets()),
		errPermille: reg.Gauge(fmt.Sprintf("serve.shard%d.err_permille", id)),
	}
}

// record books one transaction outcome into the shard's SLO state.
func (s *shardSLO) record(durNS int64, failed bool) {
	s.hist.Observe(durNS)
	s.mu.Lock()
	slot := int(s.total % sloWindow)
	if s.total >= sloWindow && s.window[slot] {
		s.winErrs--
	}
	s.window[slot] = failed
	if failed {
		s.winErrs++
		s.errs++
	}
	s.total++
	n := s.total
	if n > sloWindow {
		n = sloWindow
	}
	permille := int64(s.winErrs) * 1000 / n
	s.mu.Unlock()
	s.errPermille.Set(permille)
}

// read returns (all-time tx, all-time errors, window errors, window size).
func (s *shardSLO) read() (total, errs int64, winErrs, winN int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.total
	if n > sloWindow {
		n = sloWindow
	}
	return s.total, s.errs, s.winErrs, int(n)
}

// ShardSLOView is one shard's row of the SLO report.
type ShardSLOView struct {
	Shard  int   `json:"shard"`
	Tx     int64 `json:"tx"`
	Errors int64 `json:"errors"`
	// ErrRate is the rolling error rate over the shard's last sloWindow
	// transactions (0..1).
	ErrRate float64 `json:"err_rate"`
	P50NS   int64   `json:"p50_ns"`
	P99NS   int64   `json:"p99_ns"`
}

// SLOReport is the fleet-wide SLO aggregation served by GET /slo and the
// gia-serve -watch summary. Fleet quantiles come from serve.tx_ns, shard
// quantiles from serve.shard<k>.tx_ns.
type SLOReport struct {
	Devices int64          `json:"devices"`
	Tx      int64          `json:"tx"`
	Errors  int64          `json:"errors"`
	ErrRate float64        `json:"err_rate"`
	P50NS   int64          `json:"p50_ns"`
	P99NS   int64          `json:"p99_ns"`
	Shards  []ShardSLOView `json:"shards"`
}

// SLO builds the fleet's current SLO report.
func (f *Fleet) SLO() SLOReport {
	snap := f.reg.Snapshot()
	quantiles := func(name string) (p50, p99 int64) {
		for _, h := range snap.Histograms {
			if h.Name == name {
				return h.Quantile(0.5), h.Quantile(0.99)
			}
		}
		return 0, 0
	}
	rep := SLOReport{Devices: snap.Gauge("serve.devices.active")}
	rep.P50NS, rep.P99NS = quantiles("serve.tx_ns")
	var winErrs, winN int
	for _, s := range f.slos {
		total, errs, we, wn := s.read()
		row := ShardSLOView{Shard: s.id, Tx: total, Errors: errs}
		if wn > 0 {
			row.ErrRate = float64(we) / float64(wn)
		}
		row.P50NS, row.P99NS = quantiles(shardHistName(s.id))
		rep.Shards = append(rep.Shards, row)
		rep.Tx += total
		rep.Errors += errs
		winErrs += we
		winN += wn
	}
	if winN > 0 {
		rep.ErrRate = float64(winErrs) / float64(winN)
	}
	return rep
}
