package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/obs"
)

func newTestFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	f := NewFleet(cfg)
	t.Cleanup(f.Close)
	return f
}

func TestFleetLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{Shards: 2, Seed: 11, Registry: reg})

	info, err := f.CreateDevice(CreateDeviceRequest{Store: "amazon", Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Store != "amazon" {
		t.Fatalf("bad device info: %+v", info)
	}

	got, err := f.Device(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != info.ID || !got.Timeline {
		t.Fatalf("status mismatch: %+v", got)
	}

	ins, err := f.Install(info.ID, InstallRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !ins.Clean || ins.Err != "" {
		t.Fatalf("expected clean install, got %+v", ins)
	}

	// Amazon stages on the SD card unpatched: the hijack should land.
	atk, err := f.Attack(info.ID, AttackRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !atk.Hijacked {
		t.Fatalf("expected hijack on unpatched amazon device, got %+v", atk)
	}
	// A second attack re-runs the AIT; the attacker-signed target may be
	// replaced in place (same signer, same version), so this must not
	// error out.
	if _, err := f.Attack(info.ID, AttackRequest{Strategy: "wait-and-see"}); err != nil {
		t.Fatal(err)
	}

	entries, err := f.Timeline(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("timeline empty after install + attacks")
	}

	if err := f.DeleteDevice(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Device(info.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("status after reclaim: %v, want ErrNotFound", err)
	}
	if err := f.DeleteDevice(info.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double reclaim: %v, want ErrNotFound", err)
	}

	// Recreate: the reclaimed device must be served as an arena reset hit.
	if _, err := f.CreateDevice(CreateDeviceRequest{}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if hits := snap.Counter("arena.hits"); hits != 1 {
		t.Fatalf("arena.hits = %d, want 1 (recreate should reuse the reclaimed device)", hits)
	}
	if active := snap.Gauge("serve.devices.active"); active != 1 {
		t.Fatalf("serve.devices.active = %d, want 1", active)
	}
}

func TestPatchedDeviceBlocksHijack(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 1, Seed: 3})
	info, err := f.CreateDevice(CreateDeviceRequest{Store: "amazon", Patched: true})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := f.Attack(info.ID, AttackRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if atk.Hijacked {
		t.Fatalf("hijack landed on a FUSE-patched device: %+v", atk)
	}
}

func TestBadRequests(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 1})
	if _, err := f.CreateDevice(CreateDeviceRequest{Store: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown store: %v, want ErrBadRequest", err)
	}
	info, err := f.CreateDevice(CreateDeviceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attack(info.ID, AttackRequest{Strategy: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown strategy: %v, want ErrBadRequest", err)
	}
	if _, err := f.Timeline(info.ID); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("timeline on non-timeline device: %v, want ErrBadRequest", err)
	}
	if _, err := f.Replay(ReplayRequest{Token: "not-a-token"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad token: %v, want ErrBadRequest", err)
	}
}

func TestReplayToken(t *testing.T) {
	f := newTestFleet(t, Config{Shards: 1})
	token := chaos.Schedule{Seed: 7}.Token()
	res, err := f.Replay(ReplayRequest{Token: token})
	if err != nil {
		t.Fatal(err)
	}
	// A plain fault-free schedule lets the canonical hijack land, so the
	// invariant holds and nothing is violated.
	if res.Violated {
		t.Fatalf("plain schedule reported violated: %+v", res)
	}
	if res.Resolved == "" {
		t.Fatal("missing resolved token")
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	f := NewFleet(Config{Shards: 1, Registry: obs.NewRegistry()})
	info, err := f.CreateDevice(CreateDeviceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		_, err := f.Install(info.ID, InstallRequest{})
		finished <- err
	}()
	<-started
	f.Close()
	// The in-flight install must have been drained, not aborted.
	select {
	case err := <-finished:
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight install failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain the in-flight install")
	}
	if _, err := f.CreateDevice(CreateDeviceRequest{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v, want ErrClosed", err)
	}
	f.Close() // idempotent
}

func TestIdleReclaimLoop(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{
		Shards:      1,
		Registry:    reg,
		IdleReclaim: 50 * time.Millisecond,
		ReclaimTick: 10 * time.Millisecond,
	})
	if _, err := f.CreateDevice(CreateDeviceRequest{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second) //gia:wallclock — test poll deadline
	for time.Now().Before(deadline) {            //gia:wallclock — test poll deadline
		if len(f.Devices()) == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := len(f.Devices()); n != 0 {
		t.Fatalf("idle device not reclaimed: %d still active", n)
	}
	if got := reg.Snapshot().Counter("serve.devices.idle_reclaims"); got != 1 {
		t.Fatalf("serve.devices.idle_reclaims = %d, want 1", got)
	}
}

func TestHTTPAPI(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, Config{Shards: 2, Seed: 5, Registry: reg})
	srv := httptest.NewServer(NewHandler(f, reg))
	defer srv.Close()

	post := func(path string, body, out any) *http.Response {
		t.Helper()
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := http.Post(srv.URL+path, "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp
	}

	var info DeviceInfo
	if resp := post("/devices", CreateDeviceRequest{Store: "amazon", Timeline: true}, &info); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}

	var ins InstallResult
	if resp := post("/devices/"+info.ID+"/install", nil, &ins); resp.StatusCode != http.StatusOK {
		t.Fatalf("install: status %d", resp.StatusCode)
	}
	if !ins.Clean {
		t.Fatalf("install not clean: %+v", ins)
	}

	var atk AttackResult
	if resp := post("/devices/"+info.ID+"/attack", AttackRequest{Strategy: "file-observer"}, &atk); resp.StatusCode != http.StatusOK {
		t.Fatalf("attack: status %d", resp.StatusCode)
	}
	if !atk.Hijacked {
		t.Fatalf("attack did not hijack: %+v", atk)
	}

	resp, err := http.Get(srv.URL + "/devices/" + info.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	var tl struct {
		Entries []TimelineEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tl.Entries) == 0 {
		t.Fatal("timeline empty over HTTP")
	}

	var rep ReplayResult
	if resp := post("/replay", ReplayRequest{Token: chaos.Schedule{Seed: 7}.Token()}, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d", resp.StatusCode)
	}
	if rep.Violated {
		t.Fatalf("replay violated on plain schedule: %+v", rep)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if _, err := text.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{"serve.devices.created", "serve.installs", "serve.attacks.hijacked", "arena.misses", "serve.http.requests"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text.String())
		}
	}

	// Delete over HTTP, then a GET must 404.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/devices/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/devices/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", resp.StatusCode)
	}

	// Unknown store maps to 400.
	if resp := post("/devices", CreateDeviceRequest{Store: "bogus"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad store: status %d, want 400", resp.StatusCode)
	}
}

func TestDeviceInfoJSONShape(t *testing.T) {
	// Pin the wire shape the smoke gate and clients script against.
	b, err := json.Marshal(DeviceInfo{ID: "d000001", Store: "amazon", CreatedAt: "2017-01-01T00:00:00Z"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id"`, `"store"`, `"virtual_ms"`, `"packages"`, `"created_at"`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("DeviceInfo JSON missing %s: %s", want, b)
		}
	}
}

func TestStoreNamesCoverAllProfiles(t *testing.T) {
	names := StoreNames()
	if len(names) != 13 {
		t.Fatalf("StoreNames() = %d entries, want 13 (every paper store profile): %v", len(names), names)
	}
	for _, name := range names {
		if _, _, err := profileFor(name); err != nil {
			t.Fatalf("profileFor(%q): %v", name, err)
		}
	}
}

func TestDeriveSeedDisperses(t *testing.T) {
	seen := make(map[int64]bool)
	for i := int64(1); i <= 4096; i++ {
		s := deriveSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at device %d", i)
		}
		seen[s] = true
	}
}

func ExampleStoreNames() {
	fmt.Println(strings.Join(StoreNames()[:3], ","))
	// Output: amazon,amazon-v2,apkpure
}
