// Package serve turns the simulation library into a long-running fleet
// daemon: a Service manages thousands of concurrent simulated devices
// behind a lifecycle API, drives install transactions and GIA attacks on
// them, replays chaos tokens, and exposes the internal/obs registry.
//
// The layering follows the gbox api-server shape named in ROADMAP.md:
// a service interface (this file), an arena-backed implementation
// (fleet.go, shard.go) and HTTP handlers over it (http.go). Devices live
// on goroutine-owned shards — one device arena per shard goroutine — so
// the not-concurrency-safe arena/sim contract is never violated no matter
// how many HTTP clients hit the same device at once: every per-device
// operation is a closure executed on the owning shard's goroutine.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/installer"
)

// Service errors, mapped onto HTTP statuses by the handler layer.
var (
	// ErrNotFound reports an unknown (or already reclaimed) device ID.
	ErrNotFound = errors.New("serve: device not found")
	// ErrClosed reports an operation against a draining/closed fleet.
	ErrClosed = errors.New("serve: fleet closed")
	// ErrBadRequest wraps client-side parameter errors.
	ErrBadRequest = errors.New("serve: bad request")
)

// txHorizon bounds each simulated transaction drive: attacker pollers
// never drain the event queue on their own (same constant as the
// experiment package's horizon).
const txHorizon = 2 * time.Minute

// CreateDeviceRequest configures a new fleet device.
type CreateDeviceRequest struct {
	// Store selects the installer profile (see StoreNames); default
	// "amazon".
	Store string `json:"store,omitempty"`
	// Patched enables the Section V-C FUSE defense on the device.
	Patched bool `json:"patched,omitempty"`
	// Timeline attaches a per-device timeline recorder (staging-dir FS
	// events, package events, AIT summaries) served by
	// GET /devices/{id}/timeline. Off by default: a long-lived device
	// accumulates entries for every transaction it runs.
	Timeline bool `json:"timeline,omitempty"`
	// PayloadBytes sizes the published target APK's classes.dex; payloads
	// over 64 KiB make downloads multi-chunk. 0 means a minimal payload.
	PayloadBytes int `json:"payload_bytes,omitempty"`
}

// DeviceInfo is the status view of one fleet device.
type DeviceInfo struct {
	ID        string `json:"id"`
	Store     string `json:"store"`
	Shard     int    `json:"shard"`
	Seed      int64  `json:"seed"`
	Patched   bool   `json:"patched,omitempty"`
	Timeline  bool   `json:"timeline,omitempty"`
	CreatedAt string `json:"created_at"`
	// VirtualMs is the device's simulated clock in milliseconds.
	VirtualMs int64 `json:"virtual_ms"`
	Packages  int   `json:"packages"`
	Installs  int   `json:"installs"`
	Attacks   int   `json:"attacks"`
	Hijacks   int   `json:"hijacks"`
}

// InstallRequest submits one clean install transaction. The daemon
// publishes a fresh package per transaction (repeated installs of one
// immutable package would be version-downgrade no-ops).
type InstallRequest struct {
	// PayloadBytes sizes the app payload; 0 uses a small default.
	PayloadBytes int `json:"payload_bytes,omitempty"`
}

// InstallResult reports one driven install transaction.
type InstallResult struct {
	Package   string `json:"package"`
	Installed bool   `json:"installed"`
	Clean     bool   `json:"clean"`
	Hijacked  bool   `json:"hijacked"`
	Attempts  int    `json:"attempts"`
	Err       string `json:"err,omitempty"`
	// VirtualMs is the device clock after the transaction.
	VirtualMs int64 `json:"virtual_ms"`
	// WallNS is the host wall-clock cost of driving the transaction.
	WallNS int64 `json:"wall_ns"`
}

// AttackRequest launches a GIA TOCTOU strategy against the device's
// published target app and drives one AIT under attack.
type AttackRequest struct {
	// Strategy is "file-observer" (default) or "wait-and-see".
	Strategy string `json:"strategy,omitempty"`
}

// AttackResult reports one attacked transaction.
type AttackResult struct {
	Target       string `json:"target"`
	Strategy     string `json:"strategy"`
	Hijacked     bool   `json:"hijacked"`
	Installed    bool   `json:"installed"`
	Attempts     int    `json:"attempts"`
	Replacements int    `json:"replacements"`
	Err          string `json:"err,omitempty"`
	VirtualMs    int64  `json:"virtual_ms"`
	WallNS       int64  `json:"wall_ns"`
}

// ReplayRequest re-executes a chaos replay token (gia1:…) against the
// canonical hijack invariant.
type ReplayRequest struct {
	Token string `json:"token"`
	// Store selects the profile the invariant runs on; default "amazon".
	Store string `json:"store,omitempty"`
	// Strategy selects the attack strategy; default "file-observer".
	Strategy string `json:"strategy,omitempty"`
}

// ReplayResult reports a replayed schedule.
type ReplayResult struct {
	Token string `json:"token"`
	// Resolved is the canonical schedule token actually executed.
	Resolved string `json:"resolved"`
	// Violated reports whether the invariant failed under this schedule.
	Violated bool   `json:"violated"`
	Detail   string `json:"detail,omitempty"`
}

// TimelineEntry is one recorded device event.
type TimelineEntry struct {
	AtMs   float64 `json:"at_ms"`
	Source string  `json:"source"`
	Detail string  `json:"detail"`
}

// Service is the fleet lifecycle contract the HTTP layer (and the load
// generator) is written against.
type Service interface {
	CreateDevice(req CreateDeviceRequest) (DeviceInfo, error)
	Device(id string) (DeviceInfo, error)
	Devices() []DeviceInfo
	// DeleteDevice reclaims the device to its shard's arena pool.
	DeleteDevice(id string) error
	Install(id string, req InstallRequest) (InstallResult, error)
	Attack(id string, req AttackRequest) (AttackResult, error)
	Timeline(id string) ([]TimelineEntry, error)
	Replay(req ReplayRequest) (ReplayResult, error)
}

// storeProfiles maps API store names to installer profiles.
var storeProfiles = map[string]func() installer.Profile{
	"amazon":      installer.Amazon,
	"amazon-v2":   installer.AmazonV2,
	"xiaomi":      installer.Xiaomi,
	"baidu":       installer.Baidu,
	"qihoo360":    installer.Qihoo360,
	"dtignite":    installer.DTIgnite,
	"slideme":     installer.SlideMe,
	"tencent":     installer.Tencent,
	"huawei":      installer.HuaweiStore,
	"sprintzone":  installer.SprintZone,
	"apkpure":     installer.APKPure,
	"galaxy-apps": installer.GalaxyApps,
	"googleplay":  installer.GooglePlay,
}

// StoreNames lists the store profiles the API accepts, sorted.
func StoreNames() []string {
	out := make([]string, 0, len(storeProfiles))
	for name := range storeProfiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func profileFor(store string) (string, installer.Profile, error) {
	if store == "" {
		store = "amazon"
	}
	mk, ok := storeProfiles[store]
	if !ok {
		return "", installer.Profile{}, badRequestf("unknown store %q (want one of %v)", store, StoreNames())
	}
	return store, mk(), nil
}

func strategyFor(name string) (attack.Strategy, error) {
	switch name {
	case "", "file-observer":
		return attack.StrategyFileObserver, nil
	case "wait-and-see":
		return attack.StrategyWaitAndSee, nil
	default:
		return 0, badRequestf("unknown strategy %q (want file-observer or wait-and-see)", name)
	}
}

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}
