package memo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/ghost-installer/gia/internal/obs"
)

func TestDoHitMissOutcomes(t *testing.T) {
	tab := New[int](64)
	k := KeyOf([]byte("alpha"))
	computes := 0
	compute := func() (int, error) { computes++; return 42, nil }

	v, out, err := tab.Do(k, compute)
	if err != nil || v != 42 || out != Miss {
		t.Fatalf("first Do = (%d, %v, %v), want (42, miss, nil)", v, out, err)
	}
	v, out, err = tab.Do(k, compute)
	if err != nil || v != 42 || out != Hit {
		t.Fatalf("second Do = (%d, %v, %v), want (42, hit, nil)", v, out, err)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	st := tab.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Deduped != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSingleflightDedup blocks one compute while many goroutines request
// the same key: exactly one compute must run and every other caller must
// report Deduped with the shared value.
func TestSingleflightDedup(t *testing.T) {
	tab := New[string](64)
	k := KeyOf([]byte("shared"))
	var computes atomic.Int32
	gate := make(chan struct{})
	started := make(chan struct{})

	var once sync.Once
	compute := func() (string, error) {
		computes.Add(1)
		once.Do(func() { close(started) })
		<-gate
		return "value", nil
	}

	const callers = 8
	results := make([]Outcome, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := tab.Do(k, compute)
			if err != nil || v != "value" {
				t.Errorf("caller %d: (%q, %v)", i, v, err)
			}
			results[i] = out
		}(i)
	}
	<-started // the winning caller is inside compute
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	misses, deduped := 0, 0
	for _, out := range results {
		switch out {
		case Miss:
			misses++
		case Deduped:
			deduped++
		}
	}
	// Late arrivals may land after the value is resident (Hit); but exactly
	// one caller computed and nobody recomputed.
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (outcomes %v)", misses, results)
	}
	if st := tab.Stats(); st.Deduped != int64(deduped) || st.Misses != 1 {
		t.Fatalf("stats = %+v, observed %d deduped", st, deduped)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	tab := New[int](64)
	k := KeyOf([]byte("flaky"))
	boom := errors.New("boom")
	calls := 0

	_, out, err := tab.Do(k, func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) || out != Miss {
		t.Fatalf("failing Do = (%v, %v)", out, err)
	}
	v, out, err := tab.Do(k, func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || out != Miss {
		t.Fatalf("retry Do = (%d, %v, %v), want fresh miss", v, out, err)
	}
	if calls != 2 {
		t.Fatalf("compute calls = %d, want 2", calls)
	}
	if st := tab.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (error entry must be removed)", st.Entries)
	}
}

// TestLRUEvictionBound fills the table well past capacity and checks the
// resident count stays bounded, evictions are counted, and an evicted key
// recomputes while a hot key survives.
func TestLRUEvictionBound(t *testing.T) {
	const capacity = 32
	tab := New[int](capacity)
	hot := KeyOf([]byte("hot"))
	if _, _, err := tab.Do(hot, func() (int, error) { return -1, nil }); err != nil {
		t.Fatal(err)
	}
	const total = 10 * capacity
	for i := 0; i < total; i++ {
		i := i
		if _, _, err := tab.Do(KeyOf([]byte(fmt.Sprintf("k%d", i))), func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
		// Keep the hot key recently used in every shard epoch.
		if _, _, err := tab.Do(hot, func() (int, error) { t.Error("hot key evicted"); return -1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := tab.Stats()
	// Per-shard rounding allows a bit of slack above nominal capacity.
	if st.Entries > capacity+numShards {
		t.Fatalf("entries = %d, want <= %d", st.Entries, capacity+numShards)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions after overfilling")
	}
	// An early key must have been evicted and recompute as a miss.
	recomputed := false
	if _, out, _ := tab.Do(KeyOf([]byte("k0")), func() (int, error) { recomputed = true; return 0, nil }); out != Miss || !recomputed {
		t.Fatalf("k0 outcome = %v, recomputed = %v; want evicted miss", out, recomputed)
	}
}

// TestConcurrentMixedKeys exercises the table under the race detector:
// many goroutines, overlapping key sets, eviction pressure.
func TestConcurrentMixedKeys(t *testing.T) {
	tab := New[int](48)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				want := i % 64
				v, _, err := tab.Do(KeyOf([]byte(fmt.Sprintf("key-%d", want))), func() (int, error) {
					return want, nil
				})
				if err != nil || v != want {
					t.Errorf("g%d i%d: got (%d, %v), want %d", g, i, v, err, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := tab.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGet(t *testing.T) {
	tab := New[int](16)
	k := KeyOf([]byte("g"))
	if _, ok := tab.Get(k); ok {
		t.Fatal("Get hit on empty table")
	}
	if _, _, err := tab.Do(k, func() (int, error) { return 9, nil }); err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Get(k); !ok || v != 9 {
		t.Fatalf("Get = (%d, %v), want (9, true)", v, ok)
	}
}

// TestObserveRehomesStats pins the satellite contract: after Observe, the
// table's Stats snapshot and the registry's counters are the same numbers —
// history carried over, future increments visible through both.
func TestObserveRehomesStats(t *testing.T) {
	tab := New[int](16)
	ka, kb := KeyOf([]byte("a")), KeyOf([]byte("b"))
	if _, _, err := tab.Do(ka, func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.Do(ka, func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	tab.Observe(reg, "test.cache")

	// Pre-Observe history must have carried over.
	if got := reg.Snapshot().Counter("test.cache.misses"); got != 1 {
		t.Errorf("carried misses = %d, want 1", got)
	}
	if got := reg.Snapshot().Counter("test.cache.hits"); got != 1 {
		t.Errorf("carried hits = %d, want 1", got)
	}

	// Post-Observe activity shows up in both views identically.
	if _, _, err := tab.Do(kb, func() (int, error) { return 2, nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.Do(kb, func() (int, error) { return 2, nil }); err != nil {
		t.Fatal(err)
	}
	st := tab.Stats()
	snap := reg.Snapshot()
	if st.Hits != snap.Counter("test.cache.hits") ||
		st.Misses != snap.Counter("test.cache.misses") ||
		st.Deduped != snap.Counter("test.cache.deduped") ||
		st.Evictions != snap.Counter("test.cache.evictions") {
		t.Errorf("Stats %+v disagrees with registry snapshot %+v", st, snap)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("Stats = %+v, want 2 hits / 2 misses", st)
	}
}
