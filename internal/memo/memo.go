// Package memo provides a sharded, concurrency-safe, content-addressed
// memo table. Values are keyed by the SHA-256 of their source content, so
// identical inputs — regardless of which artifact they came from — resolve
// to one cached computation. Concurrent requests for the same key are
// deduplicated singleflight-style: the first caller computes, the rest
// wait on the in-flight entry. Resident entries are bounded by a per-shard
// LRU, and hit/miss/dedup/eviction counters make cache behaviour
// observable in scan statistics.
package memo

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"github.com/ghost-installer/gia/internal/obs"
)

// Key is a content address: the SHA-256 of the canonical input bytes.
type Key [sha256.Size]byte

// KeyOf hashes data into its content address.
func KeyOf(data []byte) Key { return sha256.Sum256(data) }

// KeyOfNamed hashes a (name, data) pair into one content address. Use it
// when the cached value depends on an identifier as well as the content —
// e.g. findings that carry the file name they were found in. The pair is
// combined by hashing the two component digests, which cannot collide by
// concatenation and keeps the hot path allocation-free (Sum256 does not
// let its argument escape, so the name's byte conversion stays on the
// caller's stack).
func KeyOfNamed(name string, data []byte) Key {
	nameSum := sha256.Sum256([]byte(name))
	dataSum := sha256.Sum256(data)
	var buf [2 * sha256.Size]byte
	copy(buf[:sha256.Size], nameSum[:])
	copy(buf[sha256.Size:], dataSum[:])
	return sha256.Sum256(buf[:])
}

// Outcome says how a Do call was served.
type Outcome int

const (
	// Miss: this call ran compute and stored the result.
	Miss Outcome = iota
	// Hit: the value was resident; compute never ran.
	Hit
	// Deduped: another goroutine was already computing this key; this
	// call waited for that result instead of recomputing.
	Deduped
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Deduped:
		return "deduped"
	default:
		return "miss"
	}
}

// Stats is a point-in-time snapshot of table behaviour.
type Stats struct {
	Hits      int64
	Misses    int64
	Deduped   int64
	Evictions int64
	Entries   int // resident values right now
}

// numShards spreads lock contention; keys are cryptographic hashes, so
// sharding on the first key byte is uniform.
const numShards = 16

// Table memoizes computations by content address. The zero value is not
// usable; construct with New. A Table is safe for concurrent use.
type Table[V any] struct {
	perShard int
	shards   [numShards]shard[V]

	// The counters live on the obs layer so Observe can re-home them onto
	// a shared registry; New starts them private, making Stats usable with
	// no registry anywhere in sight.
	hits, misses, deduped, evictions *obs.Counter
}

type shard[V any] struct {
	mu    sync.Mutex
	lru   list.List // of *entry[V]; front = most recently used
	byKey map[Key]*entry[V]
}

// entry is one keyed computation. Between insertion into byKey and the
// close of done it is in-flight: val/err are unset and elem is nil.
// After done closes, val/err are immutable and — on success — elem links
// the entry into the LRU.
type entry[V any] struct {
	key  Key
	val  V
	err  error
	done chan struct{}
	elem *list.Element
}

// New builds a table bounded to roughly capacity resident entries
// (rounded up to a multiple of the shard count).
func New[V any](capacity int) *Table[V] {
	if capacity < numShards {
		capacity = numShards
	}
	t := &Table[V]{
		perShard:  (capacity + numShards - 1) / numShards,
		hits:      &obs.Counter{},
		misses:    &obs.Counter{},
		deduped:   &obs.Counter{},
		evictions: &obs.Counter{},
	}
	for i := range t.shards {
		t.shards[i].byKey = make(map[Key]*entry[V])
	}
	return t
}

// Observe re-homes the table's counters onto reg under "<prefix>.hits",
// "<prefix>.misses", "<prefix>.deduped" and "<prefix>.evictions", carrying
// current values over. Stats keeps working unchanged — it becomes a
// snapshot of the registry-owned counters. Call Observe before sharing the
// table across goroutines (it swaps counter pointers unsynchronized).
func (t *Table[V]) Observe(reg *obs.Registry, prefix string) {
	obs.Rehome(reg, prefix+".hits", &t.hits)
	obs.Rehome(reg, prefix+".misses", &t.misses)
	obs.Rehome(reg, prefix+".deduped", &t.deduped)
	obs.Rehome(reg, prefix+".evictions", &t.evictions)
}

func (t *Table[V]) shardFor(k Key) *shard[V] {
	return &t.shards[int(k[0])&(numShards-1)]
}

// Do returns the memoized value for k, running compute on a miss.
// Concurrent calls for one key run compute exactly once; the others block
// until it finishes and share the result. A failed compute is not cached:
// every waiter receives the error and the next Do for k retries.
func (t *Table[V]) Do(k Key, compute func() (V, error)) (V, Outcome, error) {
	s := t.shardFor(k)
	s.mu.Lock()
	if e, ok := s.byKey[k]; ok {
		if e.elem != nil { // resident
			s.lru.MoveToFront(e.elem)
			v := e.val
			s.mu.Unlock()
			t.hits.Add(1)
			return v, Hit, nil
		}
		s.mu.Unlock() // in-flight: wait outside the lock
		t.deduped.Add(1)
		<-e.done
		return e.val, Deduped, e.err
	}
	e := &entry[V]{key: k, done: make(chan struct{})}
	s.byKey[k] = e
	s.mu.Unlock()
	t.misses.Add(1)

	v, err := compute()
	s.mu.Lock()
	if err != nil {
		delete(s.byKey, k)
		e.err = err
	} else {
		e.val = v
		e.elem = s.lru.PushFront(e)
		for s.lru.Len() > t.perShard {
			oldest := s.lru.Back()
			victim := oldest.Value.(*entry[V])
			s.lru.Remove(oldest)
			delete(s.byKey, victim.key)
			t.evictions.Add(1)
		}
	}
	s.mu.Unlock()
	close(e.done)
	return v, Miss, err
}

// Get returns the resident value for k without computing.
func (t *Table[V]) Get(k Key) (V, bool) {
	s := t.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byKey[k]; ok && e.elem != nil {
		s.lru.MoveToFront(e.elem)
		t.hits.Add(1)
		return e.val, true
	}
	var zero V
	return zero, false
}

// Stats snapshots the counters and resident-entry count.
func (t *Table[V]) Stats() Stats {
	st := Stats{
		Hits:      t.hits.Value(),
		Misses:    t.misses.Value(),
		Deduped:   t.deduped.Value(),
		Evictions: t.evictions.Value(),
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		s.mu.Unlock()
	}
	return st
}
