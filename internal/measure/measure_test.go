package measure

import (
	"math"
	"testing"

	"github.com/ghost-installer/gia/internal/corpus"
)

// fullCorpus is generated once: scale 1.0 reproduces the paper populations.
var fullCorpus = corpus.Generate(corpus.Config{Seed: 2017, Scale: 1.0})

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f ± %.4f", name, got, want, tol)
	}
}

func TestClassifierVerdicts(t *testing.T) {
	tests := []struct {
		name string
		app  corpus.AppMeta
		want Category
	}{
		{name: "no install api", app: corpus.AppMeta{}, want: NotInstaller},
		{name: "sdcard installer", app: corpus.AppMeta{HasInstallAPI: true, Storage: corpus.StorageSDCard}, want: PotentiallyVulnerable},
		{name: "internal world-readable", app: corpus.AppMeta{HasInstallAPI: true, Storage: corpus.StorageInternalWorldReadable}, want: PotentiallySecure},
		{name: "unclear", app: corpus.AppMeta{HasInstallAPI: true, Storage: corpus.StorageUnclear}, want: Unknown},
	}
	for _, tt := range tests {
		if got := Classify(tt.app); got != tt.want {
			t.Errorf("%s: Classify = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	c := ClassifyAll(fullCorpus.PlayApps)
	if c.Total != 12750 {
		t.Fatalf("play apps = %d", c.Total)
	}
	if c.Installers != 1493 {
		t.Errorf("installers = %d, want 1493", c.Installers)
	}
	if c.Vulnerable != 779 || c.Secure != 152 {
		t.Errorf("vulnerable/secure = %d/%d, want 779/152", c.Vulnerable, c.Secure)
	}
	within(t, "vulnerable frac (known)", c.VulnerableFracKnown(), 0.837, 0.005)
	within(t, "secure frac (known)", c.SecureFracKnown(), 0.163, 0.005)
	within(t, "vulnerable frac (all)", c.VulnerableFracAll(), 0.522, 0.005)
	within(t, "secure frac (all)", c.SecureFracAll(), 0.102, 0.005)
}

func TestTableIIIShape(t *testing.T) {
	unique := UniquePreinstalled(fullCorpus.Images)
	c := ClassifyAll(unique)
	if c.Installers == 0 {
		t.Fatal("no pre-installed installers")
	}
	// The paper: 97.1% of known pre-installed installers use the SD card.
	within(t, "vulnerable frac (known)", c.VulnerableFracKnown(), 0.971, 0.03)
	within(t, "secure frac (known)", c.SecureFracKnown(), 0.029, 0.03)
	// Including unknowns: 42.9% / 1.26%.
	within(t, "vulnerable frac (all)", c.VulnerableFracAll(), 0.429, 0.05)
}

func TestWriteExternalPrevalence(t *testing.T) {
	n := WriteExternalCount(fullCorpus.PlayApps)
	if n != 8721 {
		t.Errorf("play WRITE_EXTERNAL_STORAGE = %d, want 8721", n)
	}
}

func TestTableIVShape(t *testing.T) {
	b := RedirectCensus(fullCorpus.PlayApps)
	within(t, "redirecting frac", float64(b.Redirecting)/float64(b.Total), 0.847, 0.01)
	within(t, "exactly 1", float64(b.Exactly1)/float64(b.Total), 0.057, 0.006)
	within(t, "<=2", float64(b.AtMost2)/float64(b.Total), 0.110, 0.008)
	within(t, "<=4", float64(b.AtMost4)/float64(b.Total), 0.164, 0.010)
	within(t, "<=8", float64(b.AtMost8)/float64(b.Total), 0.183, 0.010)
}

func TestTableVIShape(t *testing.T) {
	rows := InstallPackagesCensus(fullCorpus.Images)
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	want := map[string]float64{"samsung": 0.0845, "xiaomi": 0.1187, "huawei": 0.1032}
	for _, row := range rows {
		within(t, row.Vendor+" INSTALL_PACKAGES ratio", row.InstallPkgRatio, want[row.Vendor], 0.012)
		if row.AvgSystemApps < 50 {
			t.Errorf("%s avg apps = %.1f", row.Vendor, row.AvgSystemApps)
		}
	}
	// Samsung's row matches the Table VI denominator (≈206 apps, ≈17.7
	// with INSTALL_PACKAGES).
	for _, row := range rows {
		if row.Vendor == "samsung" {
			within(t, "samsung avg apps", row.AvgSystemApps, 206, 20)
			within(t, "samsung avg install apps", row.AvgWithInstall, 17.7, 3)
		}
	}
}

func TestPlatformKeyStudyShape(t *testing.T) {
	rows := PlatformKeyStudy(fullCorpus)
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	wantPerDev := map[string]float64{"samsung": 142, "huawei": 68, "xiaomi": 84}
	wantTotal := map[string]int{"samsung": 884, "huawei": 301, "xiaomi": 216}
	wantStore := map[string]int{"samsung": 61, "huawei": 125, "xiaomi": 30}
	for _, row := range rows {
		if row.DistinctKeys != 1 {
			t.Errorf("%s uses %d platform keys, want exactly 1", row.Vendor, row.DistinctKeys)
		}
		within(t, row.Vendor+" platform apps per device", row.AvgPerDevice, wantPerDev[row.Vendor], 8)
		if row.DistinctTotal != wantTotal[row.Vendor] {
			t.Errorf("%s distinct platform apps = %d, want %d", row.Vendor, row.DistinctTotal, wantTotal[row.Vendor])
		}
		if row.StoreAppsWithKey != wantStore[row.Vendor] {
			t.Errorf("%s store apps with key = %d, want %d", row.Vendor, row.StoreAppsWithKey, wantStore[row.Vendor])
		}
	}
}

func TestHareStudyShape(t *testing.T) {
	// The paper seeded from 10 Samsung images and searched the Samsung
	// image population: 178 seed apps, 27,763 cases, ≈23.5 per image.
	var samsung []corpus.FactoryImage
	for _, img := range fullCorpus.Images {
		if img.Vendor == "samsung" {
			samsung = append(samsung, img)
		}
	}
	res := HareStudy(samsung, 10)
	within(t, "seed apps", float64(res.SeedApps), 178, 25)
	within(t, "avg cases per image", res.AvgPerImage, 23.5, 3.5)
	if res.VulnerableCases < 20000 {
		t.Errorf("cases = %d, want tens of thousands", res.VulnerableCases)
	}
	if res.ImagesSearched != len(samsung) {
		t.Errorf("searched = %d", res.ImagesSearched)
	}
}

func TestFlowAnalysisStudyShape(t *testing.T) {
	res := FlowAnalysisStudy(fullCorpus.PlayApps, 43)
	if res.Sampled != 43 {
		t.Fatalf("sampled = %d", res.Sampled)
	}
	if res.IncompleteCFG+res.HandlerIndirection+res.AnalyzerBugs+res.FlowAnalyzable != res.Sampled {
		t.Error("failure categories do not partition the sample")
	}
	// The paper's point: flow analysis fails on ~70% of installers while
	// the lightweight classifier decides most of them.
	within(t, "flow failure rate", res.FlowFailureRate(), 0.70, 0.20)
	if res.ClassifierDecided <= res.FlowAnalyzable {
		t.Errorf("classifier decided %d, flow analyzable %d — the lightweight tool must win",
			res.ClassifierDecided, res.FlowAnalyzable)
	}
	// Over the whole population the rates tighten to the marginals.
	whole := FlowAnalysisStudy(fullCorpus.PlayApps, 1<<30)
	within(t, "population failure rate", whole.FlowFailureRate(), 0.70, 0.03)
}

func TestScaledCorpusKeepsProportions(t *testing.T) {
	small := corpus.Generate(corpus.Config{Seed: 5, Scale: 0.1})
	c := ClassifyAll(small.PlayApps)
	if c.Total == 0 || c.Installers == 0 {
		t.Fatalf("scaled corpus empty: %+v", c)
	}
	within(t, "scaled vulnerable frac", c.VulnerableFracKnown(), 0.837, 0.02)
	b := RedirectCensus(small.PlayApps)
	within(t, "scaled redirect frac", float64(b.Redirecting)/float64(b.Total), 0.847, 0.03)
}

func TestGenerateDeterministic(t *testing.T) {
	a := corpus.Generate(corpus.Config{Seed: 9, Scale: 0.05})
	b := corpus.Generate(corpus.Config{Seed: 9, Scale: 0.05})
	if len(a.PlayApps) != len(b.PlayApps) || len(a.Images) != len(b.Images) {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range a.PlayApps {
		if a.PlayApps[i].Package != b.PlayApps[i].Package || a.PlayApps[i].MarketLinks != b.PlayApps[i].MarketLinks {
			t.Fatalf("app %d differs", i)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	for _, c := range []Category{NotInstaller, PotentiallyVulnerable, PotentiallySecure, Unknown} {
		if c.String() == "" {
			t.Errorf("empty name for %d", c)
		}
	}
}
