package measure

import (
	"testing"
	"testing/quick"

	"github.com/ghost-installer/gia/internal/corpus"
)

func metaFor(storage corpus.StorageUse, installAPI bool, links int) corpus.AppMeta {
	return corpus.AppMeta{
		Package: "com.scan.me", VersionCode: 1, Signer: "dev",
		HasInstallAPI: installAPI, Storage: storage, MarketLinks: links,
		UsesWriteExternal: storage == corpus.StorageSDCard,
	}
}

func TestExtractMetaSDCardInstaller(t *testing.T) {
	meta := metaFor(corpus.StorageSDCard, true, 0)
	got := ExtractMeta(corpus.BuildAPKFor(meta))
	if !got.HasInstallAPI || !got.UsesSDCard || got.SetsWorldReadable {
		t.Errorf("extracted = %+v", got)
	}
	if !got.UsesWriteExternal {
		t.Error("WRITE_EXTERNAL_STORAGE not extracted from the manifest")
	}
	if ClassifyExtracted(got) != PotentiallyVulnerable {
		t.Errorf("classified as %v", ClassifyExtracted(got))
	}
}

func TestExtractMetaInternalInstallerNeedsDefUse(t *testing.T) {
	// The world-readable mode reaches openFileOutput through a register:
	// only the def-use resolution finds it.
	meta := metaFor(corpus.StorageInternalWorldReadable, true, 0)
	got := ExtractMeta(corpus.BuildAPKFor(meta))
	if !got.HasInstallAPI || got.UsesSDCard || !got.SetsWorldReadable {
		t.Errorf("extracted = %+v", got)
	}
	if ClassifyExtracted(got) != PotentiallySecure {
		t.Errorf("classified as %v", ClassifyExtracted(got))
	}
}

func TestExtractMetaObfuscatedInstallerIsUnknown(t *testing.T) {
	meta := metaFor(corpus.StorageUnclear, true, 0)
	got := ExtractMeta(corpus.BuildAPKFor(meta))
	if !got.HasInstallAPI {
		t.Error("install API marker missed")
	}
	if got.UsesSDCard || got.SetsWorldReadable {
		t.Errorf("reflection-obfuscated app leaked markers: %+v", got)
	}
	if ClassifyExtracted(got) != Unknown {
		t.Errorf("classified as %v", ClassifyExtracted(got))
	}
}

func TestExtractMetaNonInstaller(t *testing.T) {
	meta := metaFor(corpus.StorageNone, false, 3)
	got := ExtractMeta(corpus.BuildAPKFor(meta))
	if got.HasInstallAPI {
		t.Error("phantom install API")
	}
	if got.MarketLinks != 3 {
		t.Errorf("market links = %d, want 3", got.MarketLinks)
	}
	if ClassifyExtracted(got) != NotInstaller {
		t.Errorf("classified as %v", ClassifyExtracted(got))
	}
}

// Property: for any generated ground truth, the artifact round-trip
// (build → extract → classify) agrees with classifying the ground truth
// directly, and the market-link count survives exactly.
func TestPropertyArtifactRoundTrip(t *testing.T) {
	storages := []corpus.StorageUse{
		corpus.StorageNone, corpus.StorageSDCard,
		corpus.StorageInternalWorldReadable, corpus.StorageUnclear,
	}
	f := func(storageIdx, links uint8) bool {
		storage := storages[int(storageIdx)%len(storages)]
		meta := metaFor(storage, storage != corpus.StorageNone, int(links)%20)
		got := ExtractMeta(corpus.BuildAPKFor(meta))
		if ClassifyExtracted(got) != Classify(meta) {
			return false
		}
		return got.MarketLinks == meta.MarketLinks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPipelineReproducesTableIIOnSample runs the full artifact pipeline
// over a corpus slice and checks it agrees with ground-truth
// classification app by app.
func TestPipelineReproducesTableIIOnSample(t *testing.T) {
	small := corpus.Generate(corpus.Config{Seed: 77, Scale: 0.05})
	sample := small.PlayApps
	if len(sample) > 400 {
		sample = sample[:400]
	}
	want := ClassifyAll(sample)
	got := ClassifyArtifacts(sample)
	if got != want {
		t.Errorf("pipeline = %+v, ground truth = %+v", got, want)
	}
}
