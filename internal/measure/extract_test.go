package measure

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/ghost-installer/gia/internal/analysis"
	"github.com/ghost-installer/gia/internal/corpus"
)

func metaFor(storage corpus.StorageUse, installAPI bool, links int) corpus.AppMeta {
	return corpus.AppMeta{
		Package: "com.scan.me", VersionCode: 1, Signer: "dev",
		HasInstallAPI: installAPI, Storage: storage, MarketLinks: links,
		UsesWriteExternal: storage == corpus.StorageSDCard,
	}
}

func TestExtractMetaSDCardInstaller(t *testing.T) {
	meta := metaFor(corpus.StorageSDCard, true, 0)
	got := ExtractMeta(corpus.BuildAPKFor(meta))
	if !got.HasInstallAPI || !got.UsesSDCard || got.SetsWorldReadable {
		t.Errorf("extracted = %+v", got)
	}
	if !got.UsesWriteExternal {
		t.Error("WRITE_EXTERNAL_STORAGE not extracted from the manifest")
	}
	if ClassifyExtracted(got) != PotentiallyVulnerable {
		t.Errorf("classified as %v", ClassifyExtracted(got))
	}
}

func TestExtractMetaInternalInstallerNeedsDefUse(t *testing.T) {
	// The world-readable mode reaches openFileOutput through a register:
	// only the def-use resolution finds it.
	meta := metaFor(corpus.StorageInternalWorldReadable, true, 0)
	got := ExtractMeta(corpus.BuildAPKFor(meta))
	if !got.HasInstallAPI || got.UsesSDCard || !got.SetsWorldReadable {
		t.Errorf("extracted = %+v", got)
	}
	if ClassifyExtracted(got) != PotentiallySecure {
		t.Errorf("classified as %v", ClassifyExtracted(got))
	}
}

func TestExtractMetaObfuscatedInstallerIsUnknown(t *testing.T) {
	meta := metaFor(corpus.StorageUnclear, true, 0)
	got := ExtractMeta(corpus.BuildAPKFor(meta))
	if !got.HasInstallAPI {
		t.Error("install API marker missed")
	}
	if got.UsesSDCard || got.SetsWorldReadable {
		t.Errorf("reflection-obfuscated app leaked markers: %+v", got)
	}
	if ClassifyExtracted(got) != Unknown {
		t.Errorf("classified as %v", ClassifyExtracted(got))
	}
}

func TestExtractMetaNonInstaller(t *testing.T) {
	meta := metaFor(corpus.StorageNone, false, 3)
	got := ExtractMeta(corpus.BuildAPKFor(meta))
	if got.HasInstallAPI {
		t.Error("phantom install API")
	}
	if got.MarketLinks != 3 {
		t.Errorf("market links = %d, want 3", got.MarketLinks)
	}
	if ClassifyExtracted(got) != NotInstaller {
		t.Errorf("classified as %v", ClassifyExtracted(got))
	}
}

// Property: for any generated ground truth, the artifact round-trip
// (build → extract → classify) agrees with classifying the ground truth
// directly, and the market-link count survives exactly.
func TestPropertyArtifactRoundTrip(t *testing.T) {
	storages := []corpus.StorageUse{
		corpus.StorageNone, corpus.StorageSDCard,
		corpus.StorageInternalWorldReadable, corpus.StorageUnclear,
	}
	f := func(storageIdx, links uint8) bool {
		storage := storages[int(storageIdx)%len(storages)]
		meta := metaFor(storage, storage != corpus.StorageNone, int(links)%20)
		got := ExtractMeta(corpus.BuildAPKFor(meta))
		if ClassifyExtracted(got) != Classify(meta) {
			return false
		}
		return got.MarketLinks == meta.MarketLinks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRegisterOverwriteRegression pins the case the old flat line-scanner
// misclassified: the SD-card installer's smali assigns MODE_WORLD_READABLE
// to the mode register and then (in execution order, behind a backward
// goto) overwrites it with MODE_PRIVATE before the staging call. A
// last-write-wins textual scan resolves the register to
// MODE_WORLD_READABLE and flags the app; the CFG-based engine must not.
func TestRegisterOverwriteRegression(t *testing.T) {
	meta := metaFor(corpus.StorageSDCard, true, 0)
	artifact := corpus.BuildAPKFor(meta)
	code := string(artifact.Files["smali/Installer.smali"])
	if !strings.Contains(code, "MODE_WORLD_READABLE") {
		t.Fatal("emitter no longer plants the world-readable decoy; the regression case is gone")
	}
	if !strings.Contains(code, "goto :") {
		t.Fatal("emitter no longer emits branches")
	}
	// The flat scan's verdict: last textual write to v3 before the call.
	lastWrite := ""
	for _, line := range strings.Split(code, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "const/4 v3, ") {
			lastWrite = strings.TrimPrefix(line, "const/4 v3, ")
		}
		if strings.Contains(line, "openFileOutput") {
			break
		}
	}
	if lastWrite != "MODE_WORLD_READABLE" {
		t.Fatalf("fixture lost its teeth: textual last write = %q, want MODE_WORLD_READABLE", lastWrite)
	}
	got := ExtractMeta(artifact)
	if got.SetsWorldReadable {
		t.Error("dead world-readable store flagged: the def-use chain regressed to last-write-wins")
	}
	if ClassifyExtracted(got) != PotentiallyVulnerable {
		t.Errorf("classified as %v, want PotentiallyVulnerable", ClassifyExtracted(got))
	}
}

func TestExtractMetaReflectionBlocker(t *testing.T) {
	if got := ExtractMeta(corpus.BuildAPKFor(metaFor(corpus.StorageUnclear, true, 0))); !got.ReflectionObfuscated {
		t.Error("reflection obfuscation not detected on the unclear installer")
	}
	if got := ExtractMeta(corpus.BuildAPKFor(metaFor(corpus.StorageSDCard, true, 0))); got.ReflectionObfuscated {
		t.Error("phantom reflection blocker on a plain SD-card installer")
	}
}

// TestScanArtifactsStats checks the parallel scanner's aggregate: per-rule
// hit counts consistent with ground truth and non-trivial coverage stats.
func TestScanArtifactsStats(t *testing.T) {
	apps := []corpus.AppMeta{
		metaFor(corpus.StorageSDCard, true, 0),
		metaFor(corpus.StorageInternalWorldReadable, true, 0),
		metaFor(corpus.StorageUnclear, true, 0),
		metaFor(corpus.StorageNone, false, 4),
	}
	metas, stats := ScanArtifacts(apps, 2)
	if len(metas) != len(apps) {
		t.Fatalf("metas = %d", len(metas))
	}
	if stats.APKs != len(apps) || stats.Workers != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.PerRule[analysis.RuleIDInstallAPI] != 3 ||
		stats.PerRule[analysis.RuleIDSDCardStaging] != 1 ||
		stats.PerRule[analysis.RuleIDWorldReadable] != 1 ||
		stats.PerRule[analysis.RuleIDMarketLink] != 4 ||
		stats.PerRule[analysis.RuleIDReflection] == 0 {
		t.Errorf("per-rule = %v", stats.PerRule)
	}
	if stats.Stats.Instructions == 0 || stats.Stats.Classes == 0 || stats.Stats.ParseErrors != 0 {
		t.Errorf("coverage stats = %+v", stats.Stats)
	}
}

// TestFlowAnalysisStudyArtifactsAgrees replays the flow study through the
// artifact pipeline and checks it agrees with the metadata-driven version.
func TestFlowAnalysisStudyArtifactsAgrees(t *testing.T) {
	small := corpus.Generate(corpus.Config{Seed: 11, Scale: 0.02})
	want := FlowAnalysisStudy(small.PlayApps, 43)
	got := FlowAnalysisStudyArtifacts(small.PlayApps, 43)
	if got != want {
		t.Errorf("artifacts study = %+v, metadata study = %+v", got, want)
	}
}

// TestPipelineReproducesTableIIOnSample runs the full artifact pipeline
// over a corpus slice and checks it agrees with ground-truth
// classification app by app.
func TestPipelineReproducesTableIIOnSample(t *testing.T) {
	small := corpus.Generate(corpus.Config{Seed: 77, Scale: 0.05})
	sample := small.PlayApps
	if len(sample) > 400 {
		sample = sample[:400]
	}
	want := ClassifyAll(sample)
	got := ClassifyArtifacts(sample)
	if got != want {
		t.Errorf("pipeline = %+v, ground truth = %+v", got, want)
	}
}
