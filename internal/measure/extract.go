package measure

import (
	"strings"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/corpus"
)

// ExtractedMeta is what the Section IV-A scanner recovers from an APK
// artifact (the Apktool/Soot pipeline of the paper, reimplemented over our
// synthetic smali).
type ExtractedMeta struct {
	Package           string
	HasInstallAPI     bool
	UsesSDCard        bool
	SetsWorldReadable bool
	MarketLinks       int
	UsesWriteExternal bool
}

// Code-level markers.
const (
	installMIME  = "application/vnd.android.package-archive"
	marketScheme = "market://details?id="
	playURL      = "play.google.com/store/apps/details?id="
)

// worldReadableModes are the values that make a staged APK readable by the
// PMS when passed to a file-creation API.
var worldReadableModes = map[string]bool{
	"MODE_WORLD_READABLE": true,
	"0x1":                 true,
	"644":                 true,
}

// ExtractMeta scans an APK's embedded code for the classifier's features.
// It mirrors the paper's tool: find the install-API marker first, then the
// world-readable file APIs (resolving call arguments through a def-use
// chain over register constants) and /sdcard string constants.
func ExtractMeta(a *apk.APK) ExtractedMeta {
	out := ExtractedMeta{Package: a.Manifest.Package}
	for _, p := range a.Manifest.UsesPerms {
		if p == "android.permission.WRITE_EXTERNAL_STORAGE" {
			out.UsesWriteExternal = true
		}
	}
	for name, content := range a.Files {
		if !strings.HasPrefix(name, "smali/") {
			continue
		}
		scanSmali(string(content), &out)
	}
	return out
}

// scanSmali processes one decompiled class.
func scanSmali(code string, out *ExtractedMeta) {
	// defs maps registers to their last constant value (the def-use
	// chain, flattened: smali within one method assigns before use).
	defs := make(map[string]string)
	for _, line := range strings.Split(code, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "const-string "):
			reg, val, ok := parseConst(line, "const-string ")
			if !ok {
				continue
			}
			defs[reg] = val
			if strings.Contains(val, installMIME) {
				out.HasInstallAPI = true
			}
			if strings.Contains(val, "/sdcard") {
				out.UsesSDCard = true
			}
			if strings.Contains(val, marketScheme) || strings.Contains(val, playURL) {
				out.MarketLinks++
			}
		case strings.HasPrefix(line, "const/4 ") || strings.HasPrefix(line, "const/16 "):
			prefix := "const/4 "
			if strings.HasPrefix(line, "const/16 ") {
				prefix = "const/16 "
			}
			if reg, val, ok := parseConst(line, prefix); ok {
				defs[reg] = val
			}
		case strings.Contains(line, "openFileOutput") ||
			strings.Contains(line, "setReadable") ||
			strings.Contains(line, "setPosixFilePermissions") ||
			strings.Contains(line, "chmod"):
			// Resolve the call's register arguments through the defs.
			for _, reg := range callRegisters(line) {
				if worldReadableModes[defs[reg]] {
					out.SetsWorldReadable = true
				}
			}
			// Literal modes on the call line itself.
			for mode := range worldReadableModes {
				if strings.Contains(line, mode) {
					out.SetsWorldReadable = true
				}
			}
		}
	}
}

// parseConst splits `const-string v3, "value"` / `const/4 v3, VALUE`.
func parseConst(line, prefix string) (reg, value string, ok bool) {
	rest := strings.TrimPrefix(line, prefix)
	reg, value, ok = strings.Cut(rest, ", ")
	if !ok {
		return "", "", false
	}
	value = strings.Trim(value, `"`)
	return strings.TrimSpace(reg), value, true
}

// callRegisters extracts the register list of `invoke-* {p0, v2, v3}, ...`.
func callRegisters(line string) []string {
	open := strings.IndexByte(line, '{')
	closing := strings.IndexByte(line, '}')
	if open < 0 || closing < open {
		return nil
	}
	parts := strings.Split(line[open+1:closing], ",")
	regs := make([]string, 0, len(parts))
	for _, p := range parts {
		regs = append(regs, strings.TrimSpace(p))
	}
	return regs
}

// ClassifyExtracted applies the classifier rules to extracted features.
func ClassifyExtracted(m ExtractedMeta) Category {
	switch {
	case !m.HasInstallAPI:
		return NotInstaller
	case m.UsesSDCard && !m.SetsWorldReadable:
		return PotentiallyVulnerable
	case !m.UsesSDCard && m.SetsWorldReadable:
		return PotentiallySecure
	default:
		return Unknown
	}
}

// ClassifyArtifacts runs the full pipeline — build the APK artifact from
// ground truth, extract features from its code, classify — over a
// population, exercising the builder+scanner end to end.
func ClassifyArtifacts(apps []corpus.AppMeta) Classification {
	var c Classification
	c.Total = len(apps)
	for _, meta := range apps {
		artifact := corpus.BuildAPKFor(meta)
		extracted := ExtractMeta(artifact)
		switch ClassifyExtracted(extracted) {
		case NotInstaller:
			continue
		case PotentiallyVulnerable:
			c.Vulnerable++
		case PotentiallySecure:
			c.Secure++
		case Unknown:
			c.Unknown++
		}
		c.Installers++
	}
	return c
}
