package measure

import (
	"runtime"

	"github.com/ghost-installer/gia/internal/analysis"
	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/corpus"
	"github.com/ghost-installer/gia/internal/obs"
)

// ExtractedMeta is what the Section IV-A scanner recovers from an APK
// artifact (the Apktool/Soot pipeline of the paper, reimplemented over our
// synthetic smali).
type ExtractedMeta struct {
	Package           string
	HasInstallAPI     bool
	UsesSDCard        bool
	SetsWorldReadable bool
	MarketLinks       int
	UsesWriteExternal bool
	// ReflectionObfuscated marks the analysis-blocker pattern: the app
	// reaches file APIs through reflection, so its storage behaviour is
	// opaque to static analysis (the paper's "unknown" bucket).
	ReflectionObfuscated bool
	// SelfSigCheck / IntegrityCheck mark the anti-repackaging defenses:
	// the app verifies its own signing certificate, or digests its code
	// archive, before installing anything.
	SelfSigCheck   bool
	IntegrityCheck bool
	// Score is the 0-100 aggregate threat score derived from the findings.
	Score int
}

// engine is the shared uncached analysis engine with the default GIA rule
// set. It is immutable and safe for concurrent use.
var engine = analysis.NewEngine()

// cachedEngine backs the corpus-scale scans with one content-addressed
// analysis cache shared across every table render: template-identical
// smali collapses to a few dozen distinct canonical analyses, so Table II,
// Table III and the flow study pay for the corpus once instead of per
// render. Its findings are byte-identical to the uncached engine's
// (TestCachedMatchesUncached pins this).
var cachedEngine = analysis.NewEngineWithOptions(analysis.EngineOptions{CacheCapacity: 4096})

// ObserveSharedEngines re-homes the telemetry of both shared engines onto
// reg. The two merge onto the same "analysis.scan.*" counters (one
// process-wide view of scan work regardless of which engine served it);
// the cached engine additionally contributes the "analysis.cache.*" memo
// layers. Values accumulated before the call carry over; a nil registry
// is a no-op. Call it before scanning concurrently.
func ObserveSharedEngines(reg *obs.Registry) {
	engine.Observe(reg)
	cachedEngine.Observe(reg)
}

// hasWriteExternal reports whether the artifact's manifest requests the
// permission that suffices for a GIA hijack on shared storage.
func hasWriteExternal(a *apk.APK) bool {
	return a.Manifest.Uses("android.permission.WRITE_EXTERNAL_STORAGE")
}

// ExtractMeta scans an APK's embedded code for the classifier's features.
// It mirrors the paper's tool — find the install-API marker first, then
// the world-readable file APIs and /sdcard string constants — but runs on
// the internal/analysis engine: parsed IR, per-method control-flow graphs
// and reaching definitions instead of a flattened line scan, so register
// reassignment, branch joins, dead stores and method boundaries are
// resolved precisely.
func ExtractMeta(a *apk.APK) ExtractedMeta {
	out := ExtractedMeta{
		Package:           a.Manifest.Package,
		UsesWriteExternal: hasWriteExternal(a),
	}
	applyFindings(&out, engine.ScanAPK(a).Findings)
	return out
}

// applyFindings folds the engine's rule hits into the classifier features.
// Both staging rules map onto UsesSDCard: the intraprocedural rule catches
// the literal-path pattern, the taint rule the cross-method pattern where
// the external path reaches the sink through a helper's return value —
// without the latter, interprocedurally-staged apps fall into the Unknown
// bucket and the Table II/III classifications drift from ground truth.
func applyFindings(out *ExtractedMeta, findings []analysis.Finding) {
	for _, f := range findings {
		switch f.RuleID {
		case analysis.RuleIDInstallAPI:
			out.HasInstallAPI = true
		case analysis.RuleIDSDCardStaging, analysis.RuleIDTaintStaging:
			out.UsesSDCard = true
		case analysis.RuleIDWorldReadable:
			out.SetsWorldReadable = true
		case analysis.RuleIDMarketLink:
			out.MarketLinks++
		case analysis.RuleIDReflection:
			out.ReflectionObfuscated = true
		case analysis.RuleIDSelfSigCheck:
			out.SelfSigCheck = true
		case analysis.RuleIDIntegrityCheck:
			out.IntegrityCheck = true
		}
	}
	out.Score = analysis.Score(findings)
}

// ClassifyExtracted applies the classifier rules to extracted features.
func ClassifyExtracted(m ExtractedMeta) Category {
	switch {
	case !m.HasInstallAPI:
		return NotInstaller
	case m.UsesSDCard && !m.SetsWorldReadable:
		return PotentiallyVulnerable
	case !m.UsesSDCard && m.SetsWorldReadable:
		return PotentiallySecure
	default:
		return Unknown
	}
}

// ScanOptions configure an artifact scan.
type ScanOptions struct {
	// Workers sizes the scanner's worker pool; <= 0 selects NumCPU.
	Workers int
	// NoCache bypasses the shared content-addressed analysis cache and
	// re-analyzes every file from scratch (the -cache=off path).
	NoCache bool
}

func (o ScanOptions) engine() *analysis.Engine {
	if o.NoCache {
		return engine
	}
	return cachedEngine
}

// ScanArtifacts materializes APK artifacts for a population and runs the
// parallel corpus scanner over them, returning per-app extracted features
// plus the aggregate scan statistics (per-rule hit counts, throughput,
// cache counters). Analyses are served from the shared content-addressed
// cache; use ScanArtifactsOpts to opt out.
func ScanArtifacts(apps []corpus.AppMeta, workers int) ([]ExtractedMeta, analysis.ScanStats) {
	return ScanArtifactsOpts(apps, ScanOptions{Workers: workers})
}

// ScanArtifactsOpts is ScanArtifacts with explicit cache/worker control.
func ScanArtifactsOpts(apps []corpus.AppMeta, o ScanOptions) ([]ExtractedMeta, analysis.ScanStats) {
	if o.Workers < 1 {
		o.Workers = runtime.NumCPU()
	}
	artifacts := make([]*apk.APK, len(apps))
	reports, stats := o.engine().ScanCorpus(len(apps), o.Workers, func(i int) *apk.APK {
		artifacts[i] = corpus.BuildAPKFor(apps[i])
		return artifacts[i]
	})
	metas := make([]ExtractedMeta, len(apps))
	for i, rep := range reports {
		metas[i] = ExtractedMeta{
			Package:           apps[i].Package,
			UsesWriteExternal: hasWriteExternal(artifacts[i]),
		}
		applyFindings(&metas[i], rep.Findings)
	}
	return metas, stats
}

// ClassifyArtifacts runs the full pipeline — build the APK artifact from
// ground truth, extract features from its code with the analysis engine,
// classify — over a population, fanned out over the parallel scanner.
func ClassifyArtifacts(apps []corpus.AppMeta) Classification {
	return ClassifyArtifactsOpts(apps, ScanOptions{})
}

// ClassifyArtifactsOpts is ClassifyArtifacts with explicit cache/worker
// control; the classification is identical for any options.
func ClassifyArtifactsOpts(apps []corpus.AppMeta, o ScanOptions) Classification {
	metas, _ := ScanArtifactsOpts(apps, o)
	var c Classification
	c.Total = len(apps)
	for _, m := range metas {
		switch ClassifyExtracted(m) {
		case NotInstaller:
			continue
		case PotentiallyVulnerable:
			c.Vulnerable++
		case PotentiallySecure:
			c.Secure++
		case Unknown:
			c.Unknown++
		}
		c.Installers++
	}
	return c
}

// FlowAnalysisStudyArtifacts replays FlowAnalysisStudy over real artifacts:
// the sample's analysis blockers come from ground truth (the paper could
// only tally Flowdroid's failures post mortem), but the lightweight
// classifier's verdicts are re-derived from the artifacts through the
// analysis engine instead of read off the metadata.
func FlowAnalysisStudyArtifacts(apps []corpus.AppMeta, sample int) FlowResult {
	return FlowAnalysisStudyArtifactsOpts(apps, sample, ScanOptions{})
}

// FlowAnalysisStudyArtifactsOpts is FlowAnalysisStudyArtifacts with
// explicit cache/worker control.
func FlowAnalysisStudyArtifactsOpts(apps []corpus.AppMeta, sample int, o ScanOptions) FlowResult {
	var sampled []corpus.AppMeta
	var res FlowResult
	for _, app := range apps {
		if !app.HasInstallAPI {
			continue
		}
		if len(sampled) >= sample {
			break
		}
		sampled = append(sampled, app)
		res.Sampled++
		switch app.Blocker {
		case corpus.BlockerIncompleteCFG:
			res.IncompleteCFG++
		case corpus.BlockerHandlerIndirection:
			res.HandlerIndirection++
		case corpus.BlockerAnalyzerBug:
			res.AnalyzerBugs++
		default:
			res.FlowAnalyzable++
		}
	}
	metas, _ := ScanArtifactsOpts(sampled, o)
	for _, m := range metas {
		switch ClassifyExtracted(m) {
		case PotentiallyVulnerable, PotentiallySecure:
			res.ClassifierDecided++
		}
	}
	return res
}
