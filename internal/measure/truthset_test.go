package measure

import (
	"testing"

	"github.com/ghost-installer/gia/internal/analysis"
	"github.com/ghost-installer/gia/internal/corpus"
)

// TestTruthSetAccuracy is the taint / anti-repackaging accuracy gate: the
// engine must agree with every hand-labelled case in corpus.TruthSet() —
// 100% on true positives AND true negatives. verify.sh runs this by name;
// a template or rule drift that flips any single case fails the build.
func TestTruthSetAccuracy(t *testing.T) {
	cases := corpus.TruthSet()
	if len(cases) < 8 {
		t.Fatalf("truth set shrank to %d cases", len(cases))
	}
	correct := 0
	for _, tc := range cases {
		rep := engine.ScanAPK(corpus.BuildAPKFor(tc.Meta))
		fired := map[string]bool{}
		for _, f := range rep.Findings {
			fired[f.RuleID] = true
		}
		ok := true
		for rule, want := range map[string]bool{
			analysis.RuleIDTaintStaging:   tc.WantTaintStaging,
			analysis.RuleIDSDCardStaging:  tc.WantSDCardStaging,
			analysis.RuleIDSelfSigCheck:   tc.WantSelfSigCheck,
			analysis.RuleIDIntegrityCheck: tc.WantIntegrity,
		} {
			if fired[rule] != want {
				ok = false
				t.Errorf("%s: %s fired=%v want %v", tc.Name, rule, fired[rule], want)
			}
		}
		if ok {
			correct++
		}
	}
	if correct != len(cases) {
		t.Errorf("truth-set accuracy %d/%d, gate requires 100%%", correct, len(cases))
	}
}

// TestTruthSetCoversBothPolarities guards the gate itself: a truth set
// where some detector never appears as a TP (or never as a TN) couldn't
// catch a rule that always- or never-fires.
func TestTruthSetCoversBothPolarities(t *testing.T) {
	type tally struct{ tp, tn int }
	polar := map[string]*tally{
		analysis.RuleIDTaintStaging:   {},
		analysis.RuleIDSDCardStaging:  {},
		analysis.RuleIDSelfSigCheck:   {},
		analysis.RuleIDIntegrityCheck: {},
	}
	for _, tc := range corpus.TruthSet() {
		for rule, want := range map[string]bool{
			analysis.RuleIDTaintStaging:   tc.WantTaintStaging,
			analysis.RuleIDSDCardStaging:  tc.WantSDCardStaging,
			analysis.RuleIDSelfSigCheck:   tc.WantSelfSigCheck,
			analysis.RuleIDIntegrityCheck: tc.WantIntegrity,
		} {
			if want {
				polar[rule].tp++
			} else {
				polar[rule].tn++
			}
		}
	}
	for rule, c := range polar {
		if c.tp == 0 || c.tn == 0 {
			t.Errorf("%s: truth set has %d TP / %d TN cases; both polarities required", rule, c.tp, c.tn)
		}
	}
}
