package measure

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/ghost-installer/gia/internal/corpus"
)

// TestCachedMatchesUncached is the measure-layer cache-parity oracle: the
// full ScanArtifacts output — per-app extracted features, per-rule hit
// counts, coverage stats and the resulting classifications — must be
// identical with the shared analysis cache on and off, at one worker and
// at NumCPU workers.
func TestCachedMatchesUncached(t *testing.T) {
	c := corpus.Generate(corpus.Config{Seed: 4242, Scale: 0.05})
	apps := c.PlayApps
	if len(apps) > 500 {
		apps = apps[:500]
	}
	workerCounts := []int{1, runtime.NumCPU()}
	for _, workers := range workerCounts {
		cachedMetas, cachedStats := ScanArtifactsOpts(apps, ScanOptions{Workers: workers})
		plainMetas, plainStats := ScanArtifactsOpts(apps, ScanOptions{Workers: workers, NoCache: true})

		if !reflect.DeepEqual(cachedMetas, plainMetas) {
			for i := range cachedMetas {
				if !reflect.DeepEqual(cachedMetas[i], plainMetas[i]) {
					t.Fatalf("workers=%d app %s: cached %+v != uncached %+v",
						workers, apps[i].Package, cachedMetas[i], plainMetas[i])
				}
			}
			t.Fatalf("workers=%d: metas diverge", workers)
		}
		if !reflect.DeepEqual(cachedStats.PerRule, plainStats.PerRule) {
			t.Errorf("workers=%d: per-rule stats diverge: cached %v, uncached %v",
				workers, cachedStats.PerRule, plainStats.PerRule)
		}
		if cachedStats.Stats != plainStats.Stats {
			t.Errorf("workers=%d: coverage stats diverge: cached %+v, uncached %+v",
				workers, cachedStats.Stats, plainStats.Stats)
		}
		if cachedStats.Findings != plainStats.Findings {
			t.Errorf("workers=%d: finding counts diverge: %d vs %d",
				workers, cachedStats.Findings, plainStats.Findings)
		}

		// Classifications agree app by app (and with ground truth).
		for i, m := range cachedMetas {
			if got, want := ClassifyExtracted(m), ClassifyExtracted(plainMetas[i]); got != want {
				t.Fatalf("workers=%d app %s: classified %v cached vs %v uncached",
					workers, apps[i].Package, got, want)
			}
		}

		// The cached run must actually have used the cache, and its
		// outcome counters must account for every file scanned.
		total := cachedStats.CacheHits + cachedStats.CacheMisses + cachedStats.CacheDeduped
		if total != cachedStats.Stats.Files {
			t.Errorf("workers=%d: cache outcomes %d != files scanned %d",
				workers, total, cachedStats.Stats.Files)
		}
		if cachedStats.CacheHits == 0 {
			t.Errorf("workers=%d: template corpus produced zero cache hits", workers)
		}
		if plainStats.CacheHits+plainStats.CacheMisses+plainStats.CacheDeduped != 0 {
			t.Errorf("workers=%d: uncached scan reported cache outcomes: %+v", workers, plainStats)
		}
	}
}

// TestCacheCollapsesTemplateCorpus pins the headline property: a
// template-shared corpus collapses to a few dozen distinct analyses, so
// misses stay near the distinct-template count rather than the app count.
func TestCacheCollapsesTemplateCorpus(t *testing.T) {
	c := corpus.Generate(corpus.Config{Seed: 99, Scale: 0.05})
	apps := c.PlayApps
	_, stats := ScanArtifactsOpts(apps, ScanOptions{Workers: 1})
	if stats.Stats.Files < len(apps) {
		t.Fatalf("scanned %d files for %d apps", stats.Stats.Files, len(apps))
	}
	hitRate := float64(stats.CacheHits) / float64(stats.Stats.Files)
	if hitRate < 0.9 {
		t.Errorf("cache hit rate = %.2f over %d files (hits %d, misses %d); template corpus should collapse",
			hitRate, stats.Stats.Files, stats.CacheHits, stats.CacheMisses)
	}
}
