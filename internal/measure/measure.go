// Package measure reimplements the Section IV measurement tooling: the
// lightweight installer classifier (built on the world-readable
// observation after the Flowdroid-based attempt failed), the
// INSTALL_PACKAGES census, the platform-key usage study, the Hare
// (hanging-permission) cross-image search and the market-redirection
// census.
package measure

import (
	"fmt"
	"sort"

	"github.com/ghost-installer/gia/internal/corpus"
)

// Category is the classifier's verdict for one app.
type Category int

// Classifier verdicts.
const (
	// NotInstaller: the app contains no installation API call.
	NotInstaller Category = iota
	// PotentiallyVulnerable: calls installation APIs, operates on
	// /sdcard, and never sets the staged APK world-readable.
	PotentiallyVulnerable
	// PotentiallySecure: does not use /sdcard and sets the staged APK
	// world-readable (internal staging).
	PotentiallySecure
	// Unknown: an installer whose storage behaviour the lightweight
	// analysis cannot pin down.
	Unknown
)

func (c Category) String() string {
	switch c {
	case NotInstaller:
		return "not-installer"
	case PotentiallyVulnerable:
		return "potentially-vulnerable"
	case PotentiallySecure:
		return "potentially-secure"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Classify is the paper's tool: first find installation API calls, then
// look for the world-readable marker and /sdcard operations.
func Classify(app corpus.AppMeta) Category {
	if !app.HasInstallAPI {
		return NotInstaller
	}
	switch app.Storage {
	case corpus.StorageSDCard:
		return PotentiallyVulnerable
	case corpus.StorageInternalWorldReadable:
		return PotentiallySecure
	default:
		return Unknown
	}
}

// Classification aggregates verdicts over a population (Tables II and III).
type Classification struct {
	Total      int // population size
	Installers int // apps with installation API calls
	Vulnerable int
	Secure     int
	Unknown    int
}

// ClassifyAll runs the classifier over a population.
func ClassifyAll(apps []corpus.AppMeta) Classification {
	var c Classification
	c.Total = len(apps)
	for _, app := range apps {
		switch Classify(app) {
		case NotInstaller:
			continue
		case PotentiallyVulnerable:
			c.Vulnerable++
		case PotentiallySecure:
			c.Secure++
		case Unknown:
			c.Unknown++
		}
		c.Installers++
	}
	return c
}

// Known returns installers whose storage behaviour was determined.
func (c Classification) Known() int { return c.Vulnerable + c.Secure }

// VulnerableFracKnown is the "excluding unknown apps" ratio.
func (c Classification) VulnerableFracKnown() float64 {
	if c.Known() == 0 {
		return 0
	}
	return float64(c.Vulnerable) / float64(c.Known())
}

// SecureFracKnown is the secure share among known installers.
func (c Classification) SecureFracKnown() float64 {
	if c.Known() == 0 {
		return 0
	}
	return float64(c.Secure) / float64(c.Known())
}

// VulnerableFracAll / SecureFracAll are the "including unknown" ratios.
func (c Classification) VulnerableFracAll() float64 {
	if c.Installers == 0 {
		return 0
	}
	return float64(c.Vulnerable) / float64(c.Installers)
}

// SecureFracAll is the secure share including unknowns.
func (c Classification) SecureFracAll() float64 {
	if c.Installers == 0 {
		return 0
	}
	return float64(c.Secure) / float64(c.Installers)
}

// UniquePreinstalled deduplicates pre-installed apps by package name across
// images — the paper's 12,050 → 1,613 reduction.
func UniquePreinstalled(images []corpus.FactoryImage) []corpus.AppMeta {
	seen := make(map[string]corpus.AppMeta)
	for _, img := range images {
		for _, app := range img.Apps {
			if _, ok := seen[app.Package]; !ok {
				seen[app.Package] = app
			}
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]corpus.AppMeta, 0, len(names))
	for _, name := range names {
		out = append(out, seen[name])
	}
	return out
}

// WriteExternalCount counts apps requesting WRITE_EXTERNAL_STORAGE.
func WriteExternalCount(apps []corpus.AppMeta) int {
	n := 0
	for _, app := range apps {
		if app.UsesWriteExternal {
			n++
		}
	}
	return n
}

// VendorInstallCensus is one Table VI row.
type VendorInstallCensus struct {
	Vendor          string
	Images          int
	AvgSystemApps   float64
	AvgWithInstall  float64
	InstallPkgRatio float64
}

// InstallPackagesCensus reproduces Table VI: average number of system apps
// per image and the share holding INSTALL_PACKAGES, per vendor.
func InstallPackagesCensus(images []corpus.FactoryImage) []VendorInstallCensus {
	type acc struct {
		images  int
		apps    int
		install int
	}
	byVendor := make(map[string]*acc)
	for _, img := range images {
		a := byVendor[img.Vendor]
		if a == nil {
			a = &acc{}
			byVendor[img.Vendor] = a
		}
		a.images++
		a.apps += len(img.Apps)
		for _, app := range img.Apps {
			if app.UsesInstallPkgs {
				a.install++
			}
		}
	}
	vendors := make([]string, 0, len(byVendor))
	for v := range byVendor {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)
	out := make([]VendorInstallCensus, 0, len(vendors))
	for _, v := range vendors {
		a := byVendor[v]
		row := VendorInstallCensus{
			Vendor:         v,
			Images:         a.images,
			AvgSystemApps:  float64(a.apps) / float64(a.images),
			AvgWithInstall: float64(a.install) / float64(a.images),
		}
		if a.apps > 0 {
			row.InstallPkgRatio = float64(a.install) / float64(a.apps)
		}
		out = append(out, row)
	}
	return out
}

// RedirectBuckets reproduces Table IV: how many apps hard-code exactly one,
// at most two, four or eight market links, plus the overall redirecting
// share.
type RedirectBuckets struct {
	Total       int
	Redirecting int // >= 1 hard-coded link
	Exactly1    int
	AtMost2     int
	AtMost4     int
	AtMost8     int
}

// RedirectCensus scans a population's hard-coded market links.
func RedirectCensus(apps []corpus.AppMeta) RedirectBuckets {
	var b RedirectBuckets
	b.Total = len(apps)
	for _, app := range apps {
		n := app.MarketLinks
		if n == 0 {
			continue
		}
		b.Redirecting++
		if n == 1 {
			b.Exactly1++
		}
		if n <= 2 {
			b.AtMost2++
		}
		if n <= 4 {
			b.AtMost4++
		}
		if n <= 8 {
			b.AtMost8++
		}
	}
	return b
}

// VendorKeyUsage is one row of the platform-key study.
type VendorKeyUsage struct {
	Vendor           string
	DistinctKeys     int     // platform keys observed across the vendor's images
	AvgPerDevice     float64 // platform-signed apps per image
	DistinctTotal    int     // distinct platform-signed packages overall
	StoreAppsWithKey int     // appstore apps signed with the platform key
}

// PlatformKeyStudy reproduces the Section IV key findings: one platform key
// per vendor, the per-device and total platform-signed app counts, and the
// platform-signed apps found in public appstores.
func PlatformKeyStudy(c *corpus.Corpus) []VendorKeyUsage {
	type acc struct {
		keys     map[string]bool
		images   int
		signed   int
		packages map[string]bool
	}
	byVendor := make(map[string]*acc)
	for _, img := range c.Images {
		a := byVendor[img.Vendor]
		if a == nil {
			a = &acc{keys: make(map[string]bool), packages: make(map[string]bool)}
			byVendor[img.Vendor] = a
		}
		a.images++
		for _, app := range img.Apps {
			if !app.Platform {
				continue
			}
			a.keys[app.Signer] = true
			a.signed++
			a.packages[app.Package] = true
		}
	}
	storeByVendor := make(map[string]int)
	for _, app := range c.StoreApps {
		if app.Platform {
			storeByVendor[app.Vendor]++
		}
	}
	vendors := make([]string, 0, len(byVendor))
	for v := range byVendor {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)
	out := make([]VendorKeyUsage, 0, len(vendors))
	for _, v := range vendors {
		a := byVendor[v]
		out = append(out, VendorKeyUsage{
			Vendor:           v,
			DistinctKeys:     len(a.keys),
			AvgPerDevice:     float64(a.signed) / float64(a.images),
			DistinctTotal:    len(a.packages),
			StoreAppsWithKey: storeByVendor[v],
		})
	}
	return out
}

// FlowResult summarizes the Section IV-A comparison between heavyweight
// taint analysis and the lightweight world-readable classifier.
type FlowResult struct {
	Sampled            int
	IncompleteCFG      int
	HandlerIndirection int
	AnalyzerBugs       int
	FlowAnalyzable     int
	// ClassifierDecided counts the same sample's apps the lightweight
	// classifier reached a verdict on (vulnerable or secure).
	ClassifierDecided int
}

// FlowFailureRate is the share of the sample flow analysis could not handle.
func (r FlowResult) FlowFailureRate() float64 {
	if r.Sampled == 0 {
		return 0
	}
	return float64(r.Sampled-r.FlowAnalyzable) / float64(r.Sampled)
}

// FlowAnalysisStudy replays the paper's attempt to use information-flow
// analysis to find SD-card installers: sample installer-capable apps (the
// paper tested 43) and tally the failure modes, then run the lightweight
// classifier on the same sample for comparison.
func FlowAnalysisStudy(apps []corpus.AppMeta, sample int) FlowResult {
	var res FlowResult
	for _, app := range apps {
		if !app.HasInstallAPI {
			continue
		}
		if res.Sampled >= sample {
			break
		}
		res.Sampled++
		switch app.Blocker {
		case corpus.BlockerIncompleteCFG:
			res.IncompleteCFG++
		case corpus.BlockerHandlerIndirection:
			res.HandlerIndirection++
		case corpus.BlockerAnalyzerBug:
			res.AnalyzerBugs++
		default:
			res.FlowAnalyzable++
		}
		switch Classify(app) {
		case PotentiallyVulnerable, PotentiallySecure:
			res.ClassifierDecided++
		}
	}
	return res
}

// HareResult summarizes the hanging-permission study.
type HareResult struct {
	SeedApps        int // apps using permissions they do not define (from the seed images)
	ImagesSearched  int
	VulnerableCases int // (image, app) pairs where the permission is undefined
	AvgPerImage     float64
}

// HareStudy extracts hare-seed candidates from the first seedImages images
// (the paper used 10 Samsung images), then searches every image for cases
// where a seed app is present but nothing defines the permission it uses.
func HareStudy(images []corpus.FactoryImage, seedImages int) HareResult {
	if seedImages > len(images) {
		seedImages = len(images)
	}
	// Candidate permissions: used-but-not-defined within the seed images.
	seedPerms := make(map[string]bool)
	seedApps := make(map[string]bool)
	for _, img := range images[:seedImages] {
		defined := make(map[string]bool)
		for _, app := range img.Apps {
			for _, p := range app.DefinesPerms {
				defined[p] = true
			}
		}
		for _, app := range img.Apps {
			for _, p := range app.UsesPerms {
				if !defined[p] {
					seedPerms[p] = true
					seedApps[app.Package] = true
				}
			}
		}
	}
	var res HareResult
	res.SeedApps = len(seedApps)
	res.ImagesSearched = len(images)
	for _, img := range images {
		defined := make(map[string]bool)
		for _, app := range img.Apps {
			for _, p := range app.DefinesPerms {
				defined[p] = true
			}
		}
		for _, app := range img.Apps {
			for _, p := range app.UsesPerms {
				if seedPerms[p] && !defined[p] {
					res.VulnerableCases++
				}
			}
		}
	}
	if res.ImagesSearched > 0 {
		res.AvgPerImage = float64(res.VulnerableCases) / float64(res.ImagesSearched)
	}
	return res
}
