// Package par is the shared bounded worker pool of the measurement surface:
// the chaos explorer, the experiment sweeps, the fleet study and the table
// runner all fan out through it. Its contract is the one that makes
// concurrent experiments reproducible:
//
//   - bounded workers: at most Workers(n) goroutines run jobs at any time;
//   - deterministic results: Map returns job results in index order, so the
//     output of a parallel run is bit-identical to a serial one whenever the
//     jobs themselves are deterministic;
//   - deterministic first-error capture: when jobs fail, the error of the
//     lowest-indexed failed job is returned, regardless of which worker
//     observed its failure first;
//   - cancellation: after any job fails, unstarted jobs are skipped
//     (in-flight jobs run to completion);
//   - panic containment: a panicking job is captured as that job's error
//     instead of killing the process from a worker goroutine.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested pool size: n > 0 is used as given; zero or
// negative selects runtime.NumCPU(). Callers that want strict serial
// execution must pass 1 explicitly.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Map runs jobs 0..n-1 on a pool of at most Workers(workers) goroutines and
// returns their results in index order. The first error — by job index, not
// by wall-clock — aborts the map: the results slice is nil and unstarted
// jobs are skipped. A job that panics contributes a descriptive error
// instead of crashing the process.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := runJob(i, fn, &results[i]); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Run is Map for side-effect-only jobs: same pool, same cancellation, same
// lowest-index error capture, no result collection.
func Run(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// runJob executes one job with panic containment, storing its result only
// on success so a failed map never exposes partial values.
func runJob[T any](i int, fn func(int) (T, error), out *T) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("par: job %d panicked: %v", i, p)
		}
	}()
	v, err := fn(i)
	if err != nil {
		return err
	}
	*out = v
	return nil
}

// Frontier drains a dynamic work list on a pool of Workers(workers)
// goroutines: each item is handed to process, which may return follow-up
// items that join the list. Frontier returns once the list is empty and
// every in-flight item has completed. Processing order is unspecified —
// callers needing deterministic aggregates must derive them from item
// payloads (as the chaos explorer does with its total schedule order), not
// from completion order. A panic in process is re-raised on the calling
// goroutine after the remaining workers drain, never from a worker.
func Frontier[T any](workers int, seed []T, process func(T) []T) {
	var (
		mu       sync.Mutex
		items    = append([]T(nil), seed...)
		inflight int
		panicked any
		aborted  bool
	)
	cond := sync.NewCond(&mu)
	var wg sync.WaitGroup
	w := Workers(workers)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(items) == 0 && inflight > 0 && !aborted {
					cond.Wait()
				}
				if len(items) == 0 || aborted {
					mu.Unlock()
					return
				}
				it := items[len(items)-1]
				items = items[:len(items)-1]
				inflight++
				mu.Unlock()

				kids, p := guardedProcess(process, it)

				mu.Lock()
				if p != nil {
					if panicked == nil {
						panicked = p
					}
					aborted = true
				} else {
					items = append(items, kids...)
				}
				inflight--
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

func guardedProcess[T any](process func(T) []T, it T) (kids []T, panicked any) {
	defer func() {
		if p := recover(); p != nil {
			panicked = p
		}
	}()
	return process(it), nil
}
