// Package par is the shared bounded worker pool of the measurement surface:
// the chaos explorer, the experiment sweeps, the fleet study and the table
// runner all fan out through it. Its contract is the one that makes
// concurrent experiments reproducible:
//
//   - bounded workers: at most Workers(n) goroutines run jobs at any time;
//   - deterministic results: Map returns job results in index order, so the
//     output of a parallel run is bit-identical to a serial one whenever the
//     jobs themselves are deterministic;
//   - deterministic first-error capture: when jobs fail, the error of the
//     lowest-indexed failed job is returned, regardless of which worker
//     observed its failure first;
//   - cancellation: after any job fails, unstarted jobs are skipped
//     (in-flight jobs run to completion);
//   - panic containment: a panicking job is captured as that job's error
//     instead of killing the process from a worker goroutine.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ghost-installer/gia/internal/obs"
)

// Instrumentation re-homes the pool's telemetry onto the obs layer. Every
// field is optional. Wall-clock spans and durations are only recorded when
// Clock (and, for spans, Trace with an enabled wall domain) is set —
// chaos sweeps that must export byte-identical traces at any worker count
// leave both unset, because per-worker wall telemetry is inherently
// schedule-dependent.
type Instrumentation struct {
	// Tasks counts completed jobs (Map/Run) and processed items (Frontier).
	// A Frontier item whose process panicked is not counted: the abort
	// tears the run down before the item completes.
	Tasks *obs.Counter
	// Steals counts Frontier items taken from another worker's deque.
	Steals *obs.Counter
	// Queued tracks unclaimed work in the active call.
	Queued *obs.Gauge
	// Busy tracks workers currently running a job.
	Busy *obs.Gauge
	// BusyNS accumulates per-job wall time in nanoseconds (needs Clock).
	BusyNS *obs.Counter
	// JobNS distributes per-job wall time (needs Clock).
	JobNS *obs.Histogram
	// Clock is the wall stopwatch for BusyNS/JobNS and span timestamps.
	Clock obs.Clock
	// Trace, when non-nil with an enabled wall domain, receives one
	// wall-clock span per job on a "par/worker-K" track.
	Trace *obs.Trace
	// PprofLabels labels worker goroutines with their worker index
	// (runtime/pprof label "par.worker") so CPU profiles attribute samples
	// per worker. Off by default: labeling allocates per pool spin-up.
	PprofLabels bool
}

// instr is the package-wide instrumentation; the pool is process-shared,
// so its telemetry is too. Loaded once per worker spin-up — never on the
// per-job fast path when disabled.
var instr atomic.Pointer[Instrumentation]

// SetInstrumentation installs hooks for every subsequent Map, Run and
// Frontier call (nil disables them). Calls already in flight keep the
// instrumentation they started with.
func SetInstrumentation(in *Instrumentation) { instr.Store(in) }

// workerTrack returns worker k's wall track, nil when tracing is off.
func (in *Instrumentation) workerTrack(k int) *obs.Track {
	if in == nil || in.Trace == nil {
		return nil
	}
	return in.Trace.WallTrack("par/worker-" + strconv.Itoa(k))
}

// runLabeled runs work, optionally under a pprof worker label.
func (in *Instrumentation) runLabeled(k int, work func()) {
	if in != nil && in.PprofLabels {
		pprof.Do(context.Background(), pprof.Labels("par.worker", strconv.Itoa(k)), func(context.Context) {
			work()
		})
		return
	}
	work()
}

// jobDone records one finished job's counters; start is the Clock reading
// at job begin (zero when Clock is nil). completed is false for a Frontier
// item whose process panicked: the wall time and busy gauge still settle,
// but the item is not booked as a completed task.
func (in *Instrumentation) jobDone(start time.Duration, completed bool) {
	if in == nil {
		return
	}
	if completed {
		in.Tasks.Add(1)
	}
	if in.Clock != nil {
		d := int64(in.Clock() - start)
		in.BusyNS.Add(d)
		in.JobNS.Observe(d)
	}
	in.Busy.Add(-1)
}

// Workers normalizes a requested pool size: n > 0 is used as given; zero or
// negative selects runtime.NumCPU(). Callers that want strict serial
// execution must pass 1 explicitly.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Map runs jobs 0..n-1 on a pool of at most Workers(workers) goroutines and
// returns their results in index order. The first error — by job index, not
// by wall-clock — aborts the map: the results slice is nil and unstarted
// jobs are skipped. A job that panics contributes a descriptive error
// instead of crashing the process.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorker(workers, n, func(_, i int) (T, error) { return fn(i) })
}

// MapWorker is Map with the worker index exposed: fn(worker, i) runs job i
// on pool worker `worker` (0 <= worker < Workers(workers)). Each worker
// index is owned by exactly one goroutine per call, so per-worker state
// (e.g. a device arena) indexed by it needs no locking inside a call. The
// index says nothing about *which* jobs land on a worker — that remains
// schedule-dependent — so results must stay worker-independent for
// deterministic output.
func MapWorker[T any](workers, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	in := instr.Load()
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			track := in.workerTrack(k)
			in.runLabeled(k, func() {
				for {
					i := int(next.Add(1)) - 1
					if i >= n || failed.Load() {
						return
					}
					var start time.Duration
					if in != nil {
						if q := int64(n) - next.Load(); q > 0 {
							in.Queued.Set(q)
						} else {
							in.Queued.Set(0)
						}
						in.Busy.Add(1)
						if in.Clock != nil {
							start = in.Clock()
						}
					}
					var sp obs.Span
					if track != nil {
						sp = track.Begin("job", strconv.Itoa(i))
					}
					if err := runJob(k, i, fn, &results[i]); err != nil {
						errs[i] = err
						failed.Store(true)
					}
					sp.End()
					in.jobDone(start, true)
				}
			})
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Run is Map for side-effect-only jobs: same pool, same cancellation, same
// lowest-index error capture, no result collection.
func Run(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// runJob executes one job with panic containment, storing its result only
// on success so a failed map never exposes partial values.
func runJob[T any](worker, i int, fn func(int, int) (T, error), out *T) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("par: job %d panicked: %v", i, p)
		}
	}()
	v, err := fn(worker, i)
	if err != nil {
		return err
	}
	*out = v
	return nil
}

// Frontier drains a dynamic work list on a pool of Workers(workers)
// goroutines: each item is handed to process, which may return follow-up
// items that join the list. Frontier returns once the list is empty and
// every in-flight item has completed. Processing order is unspecified —
// callers needing deterministic aggregates must derive them from item
// payloads (as the chaos explorer does with its total schedule order), not
// from completion order. A panic in process is re-raised on the calling
// goroutine after the remaining workers drain, never from a worker.
func Frontier[T any](workers int, seed []T, process func(T) []T) {
	FrontierWorker(workers, seed, func(_ int, it T) []T { return process(it) })
}

// wsDequeCap bounds each worker's private deque. Overflow spills into the
// shared list, so the cap trades steal granularity against the (rare)
// shared-lock fallback; explorer frontiers stay far below it.
const wsDequeCap = 256

// wsDeque is one worker's bounded ring deque. The owner pushes and pops at
// the tail (LIFO, keeping the hot subtree cache-warm); thieves pop at the
// head (FIFO, taking the oldest — largest — subtrees). Operations are a
// few loads under a per-deque mutex, so the only contention is a thief
// hitting the owner's deque, never a global lock.
type wsDeque[T any] struct {
	mu   sync.Mutex
	buf  [wsDequeCap]T
	head int // ring index of the oldest item (steal end)
	n    int
}

// pushTail adds it at the owner end; false when the deque is full.
func (d *wsDeque[T]) pushTail(it T) bool {
	d.mu.Lock()
	if d.n == wsDequeCap {
		d.mu.Unlock()
		return false
	}
	d.buf[(d.head+d.n)%wsDequeCap] = it
	d.n++
	d.mu.Unlock()
	return true
}

// popTail removes the newest item (owner end).
func (d *wsDeque[T]) popTail() (it T, ok bool) {
	d.mu.Lock()
	if d.n > 0 {
		d.n--
		i := (d.head + d.n) % wsDequeCap
		it, ok = d.buf[i], true
		var zero T
		d.buf[i] = zero
	}
	d.mu.Unlock()
	return it, ok
}

// popHead removes the oldest item (steal end).
func (d *wsDeque[T]) popHead() (it T, ok bool) {
	d.mu.Lock()
	if d.n > 0 {
		it, ok = d.buf[d.head], true
		var zero T
		d.buf[d.head] = zero
		d.head = (d.head + 1) % wsDequeCap
		d.n--
	}
	d.mu.Unlock()
	return it, ok
}

// FrontierWorker is Frontier with the worker index exposed, under the same
// ownership contract as MapWorker: index k is owned by one goroutine per
// call, enabling lock-free per-worker state.
//
// Work distribution is stealing: each worker owns a bounded deque it
// pushes follow-ups onto and pops LIFO; an empty worker first drains the
// shared overflow list, then steals FIFO from a sibling's deque. Idle
// workers park on a condvar; a producer wakes them only when someone is
// actually parked, so the steady state (every worker busy on its own
// deque) takes no shared lock at all. The sleep/wake race is closed
// Dekker-style: a producer publishes queued items (atomic add) before
// loading the idle count, a consumer registers idle before re-loading the
// queued count — sequentially consistent atomics guarantee at least one
// side observes the other.
func FrontierWorker[T any](workers int, seed []T, process func(worker int, it T) []T) {
	w := Workers(workers)
	var (
		mu       sync.Mutex
		overflow []T
		panicked any

		aborted     atomic.Bool
		queued      atomic.Int64 // items visible in deques + overflow
		idle        atomic.Int64 // workers parked (or about to park) on cond
		outstanding atomic.Int64 // queued + in-flight; 0 means drained forever
	)
	cond := sync.NewCond(&mu)
	deques := make([]wsDeque[T], w)

	overflow = append(overflow, seed...)
	outstanding.Store(int64(len(seed)))
	queued.Store(int64(len(seed)))

	in := instr.Load()
	if in != nil {
		in.Queued.Set(queued.Load())
	}

	// wake broadcasts to parked workers; producers call it only after
	// publishing new queued items (or the abort/termination flags).
	wake := func() {
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	}

	// next claims one item for worker k: own tail, then overflow, then a
	// steal sweep over the siblings starting at k+1.
	next := func(k int) (it T, ok bool) {
		if it, ok = deques[k].popTail(); ok {
			queued.Add(-1)
			return it, true
		}
		mu.Lock()
		if n := len(overflow); n > 0 {
			it = overflow[n-1]
			var zero T
			overflow[n-1] = zero
			overflow = overflow[:n-1]
			mu.Unlock()
			queued.Add(-1)
			return it, true
		}
		mu.Unlock()
		for off := 1; off < w; off++ {
			if it, ok = deques[(k+off)%w].popHead(); ok {
				queued.Add(-1)
				if in != nil {
					in.Steals.Add(1)
				}
				return it, true
			}
		}
		var zero T
		return zero, false
	}

	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			track := in.workerTrack(k)
			in.runLabeled(k, func() {
				for {
					if aborted.Load() {
						return
					}
					it, ok := next(k)
					if !ok {
						// Nothing visible: park. Registering idle before
						// re-checking queued pairs with the producer's
						// publish-then-check-idle order (see above).
						mu.Lock()
						idle.Add(1)
						for !aborted.Load() && outstanding.Load() != 0 && queued.Load() == 0 {
							cond.Wait()
						}
						done := aborted.Load() || outstanding.Load() == 0
						idle.Add(-1)
						mu.Unlock()
						if done {
							return
						}
						continue
					}
					if in != nil {
						in.Queued.Set(queued.Load())
						in.Busy.Add(1)
					}
					var start time.Duration
					if in != nil && in.Clock != nil {
						start = in.Clock()
					}
					var sp obs.Span
					if track != nil {
						sp = track.Begin("item", "")
					}
					kids, p := guardedProcess(k, process, it)
					sp.End()

					if p != nil {
						mu.Lock()
						if panicked == nil {
							panicked = p
						}
						mu.Unlock()
						aborted.Store(true)
						wake()
						in.jobDone(start, false)
						return
					}
					if len(kids) > 0 {
						// Credit the kids before retiring the parent so
						// outstanding never dips to zero with work pending.
						outstanding.Add(int64(len(kids)))
						for _, kid := range kids {
							if !deques[k].pushTail(kid) {
								mu.Lock()
								overflow = append(overflow, kid)
								mu.Unlock()
							}
						}
						queued.Add(int64(len(kids)))
						if idle.Load() > 0 {
							wake()
						}
					}
					if in != nil {
						in.Queued.Set(queued.Load())
					}
					if outstanding.Add(-1) == 0 {
						wake()
					}
					in.jobDone(start, true)
				}
			})
		}(k)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

func guardedProcess[T any](worker int, process func(int, T) []T, it T) (kids []T, panicked any) {
	defer func() {
		if p := recover(); p != nil {
			panicked = p
		}
	}()
	return process(worker, it), nil
}
