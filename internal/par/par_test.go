package par

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/obs"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroAndNegativeWorkers(t *testing.T) {
	// <= 0 selects NumCPU; the pool must still run every job exactly once.
	for _, workers := range []int{0, -1, -100} {
		var ran atomic.Int64
		got, err := Map(workers, 50, func(i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if err != nil || len(got) != 50 || ran.Load() != 50 {
			t.Fatalf("workers=%d: err=%v len=%d ran=%d", workers, err, len(got), ran.Load())
		}
	}
	if w := Workers(0); w != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", w, runtime.NumCPU())
	}
	if w := Workers(3); w != 3 {
		t.Errorf("Workers(3) = %d", w)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { t.Fatal("job ran"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	// Several jobs fail; the reported error must be the lowest-indexed
	// failure regardless of completion order, and results must be nil.
	errLow := errors.New("low")
	for _, workers := range []int{1, 4, 16} {
		got, err := Map(workers, 40, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 17, 31:
				return 0, fmt.Errorf("high %d", i)
			}
			return i, nil
		})
		if got != nil {
			t.Fatalf("workers=%d: results not nil on error", workers)
		}
		// With workers > 1 a higher-indexed failure may cancel the map
		// before job 3 starts; the captured error must still be the
		// lowest-indexed one that actually failed.
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if workers == 1 && !errors.Is(err, errLow) {
			t.Fatalf("workers=1: err = %v, want %v (lowest index runs first serially)", err, errLow)
		}
	}
}

func TestMapCancellationSkipsUnstartedJobs(t *testing.T) {
	// With one worker the jobs run in index order, so a failure at index 2
	// must prevent every later job from starting.
	var ran []int
	err := Run(1, 100, func(i int) error {
		ran = append(ran, i)
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if len(ran) != 3 {
		t.Fatalf("ran %v, want exactly [0 1 2]", ran)
	}
}

func TestMapPanicContainment(t *testing.T) {
	got, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
	if got != nil || err == nil {
		t.Fatalf("got %v, %v", got, err)
	}
	if !strings.Contains(err.Error(), "job 5 panicked: boom") {
		t.Errorf("err = %v, want panic provenance", err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := Run(workers, 64, func(int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds pool size %d", p, workers)
	}
}

func TestFrontierDrainsDynamicWork(t *testing.T) {
	// Walk a ternary tree of depth 3 via the frontier: every node must be
	// visited exactly once, regardless of worker count.
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		seen := map[string]bool{}
		Frontier(workers, []string{""}, func(path string) []string {
			mu.Lock()
			if seen[path] {
				t.Errorf("node %q visited twice", path)
			}
			seen[path] = true
			mu.Unlock()
			if len(path) >= 3 {
				return nil
			}
			return []string{path + "a", path + "b", path + "c"}
		})
		want := 1 + 3 + 9 + 27
		if len(seen) != want {
			t.Fatalf("workers=%d: visited %d nodes, want %d", workers, len(seen), want)
		}
	}
}

func TestFrontierPanicSurfacesOnCaller(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := p.(string); !ok || s != "frontier boom" {
			t.Fatalf("recovered %v", p)
		}
	}()
	Frontier(2, []int{1, 2, 3, 4}, func(i int) []int {
		if i == 3 {
			panic("frontier boom")
		}
		return nil
	})
}

func TestFrontierDeterministicAggregation(t *testing.T) {
	// Aggregates derived from item payloads (not completion order) must be
	// identical across worker counts — the property the chaos explorer and
	// the experiment engine rely on.
	collect := func(workers int) []int {
		var mu sync.Mutex
		var out []int
		Frontier(workers, []int{10, 20, 30}, func(i int) []int {
			mu.Lock()
			out = append(out, i)
			mu.Unlock()
			if i%10 == 0 {
				return []int{i + 1, i + 2}
			}
			return nil
		})
		sort.Ints(out)
		return out
	}
	a, b := collect(1), collect(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("aggregates differ: %v vs %v", a, b)
	}
}

// TestMapInstrumentation exercises the pool's obs hooks: task counts,
// busy/queued gauges draining to zero, wall durations on an injected
// ticking clock and per-worker trace spans.
func TestMapInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	tr.SetWallClock(obs.TickingClock(time.Microsecond))
	SetInstrumentation(&Instrumentation{
		Tasks:  reg.Counter("par.tasks"),
		Queued: reg.Gauge("par.queued"),
		Busy:   reg.Gauge("par.busy"),
		BusyNS: reg.Counter("par.busy_ns"),
		JobNS:  reg.Histogram("par.job_ns", obs.DurationBuckets()),
		Clock:  obs.TickingClock(time.Microsecond),
		Trace:  tr,
	})
	defer SetInstrumentation(nil)

	const n = 50
	results, err := Map(4, n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n || results[7] != 49 {
		t.Fatalf("results corrupted: len=%d", len(results))
	}

	snap := reg.Snapshot()
	if got := snap.Counter("par.tasks"); got != n {
		t.Errorf("par.tasks = %d, want %d", got, n)
	}
	if got := snap.Gauge("par.busy"); got != 0 {
		t.Errorf("par.busy after drain = %d, want 0", got)
	}
	if got := snap.Counter("par.busy_ns"); got <= 0 {
		t.Errorf("par.busy_ns = %d, want > 0 on a ticking clock", got)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != n {
		t.Errorf("par.job_ns histogram = %+v, want %d observations", snap.Histograms, n)
	}
	spans := 0
	for _, k := range tr.Tracks() {
		if k.Domain() != obs.DomainWall {
			t.Errorf("worker track %q in domain %v, want wall", k.Name(), k.Domain())
		}
		for _, ev := range k.Events() {
			if ev.Instant || ev.Name != "job" || ev.Dur < 0 {
				t.Errorf("worker span: %+v", ev)
			}
			spans++
		}
	}
	if spans != n {
		t.Errorf("worker spans = %d, want %d", spans, n)
	}
}

// TestFrontierInstrumentation checks item accounting on the dynamic list.
func TestFrontierInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	SetInstrumentation(&Instrumentation{
		Tasks:  reg.Counter("par.tasks"),
		Queued: reg.Gauge("par.queued"),
		Busy:   reg.Gauge("par.busy"),
	})
	defer SetInstrumentation(nil)

	// 1 seed item spawning a two-level tree: 1 + 3 + 9 items.
	Frontier(4, []int{0}, func(depth int) []int {
		if depth >= 2 {
			return nil
		}
		return []int{depth + 1, depth + 1, depth + 1}
	})
	snap := reg.Snapshot()
	if got := snap.Counter("par.tasks"); got != 13 {
		t.Errorf("par.tasks = %d, want 13", got)
	}
	if snap.Gauge("par.busy") != 0 || snap.Gauge("par.queued") != 0 {
		t.Errorf("gauges after drain: busy=%d queued=%d", snap.Gauge("par.busy"), snap.Gauge("par.queued"))
	}
}

// TestFrontierStealsCounted forces cross-worker stealing: one seed item
// fans out into far more follow-ups than the seeding worker can process
// before its siblings go hunting, so the steals counter must move while
// every item is still processed exactly once.
func TestFrontierStealsCounted(t *testing.T) {
	reg := obs.NewRegistry()
	SetInstrumentation(&Instrumentation{
		Tasks:  reg.Counter("par.tasks"),
		Steals: reg.Counter("par.frontier.steals"),
		Queued: reg.Gauge("par.queued"),
		Busy:   reg.Gauge("par.busy"),
	})
	defer SetInstrumentation(nil)

	var processed atomic.Int64
	Frontier(4, []int{0}, func(depth int) []int {
		processed.Add(1)
		// Busy-wait a little so siblings find the deque non-empty.
		for i := 0; i < 2000; i++ {
			_ = i * i
		}
		if depth >= 1 {
			return nil
		}
		kids := make([]int, 64)
		for i := range kids {
			kids[i] = depth + 1
		}
		return kids
	})
	snap := reg.Snapshot()
	if got := processed.Load(); got != 65 {
		t.Fatalf("processed %d items, want 65", got)
	}
	if got := snap.Counter("par.tasks"); got != 65 {
		t.Errorf("par.tasks = %d, want 65", got)
	}
	if runtime.NumCPU() > 1 {
		if got := snap.Counter("par.frontier.steals"); got == 0 {
			t.Logf("par.frontier.steals = 0 (no steal observed; timing-dependent on this host)")
		}
	}
}

// TestFrontierPanickedItemNotATask pins the instrumentation fix: an item
// whose process panics must not be booked as a completed task, while the
// busy gauge still settles to zero.
func TestFrontierPanickedItemNotATask(t *testing.T) {
	reg := obs.NewRegistry()
	SetInstrumentation(&Instrumentation{
		Tasks:  reg.Counter("par.tasks"),
		Queued: reg.Gauge("par.queued"),
		Busy:   reg.Gauge("par.busy"),
	})
	defer SetInstrumentation(nil)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		Frontier(1, []int{0}, func(i int) []int {
			if i == 2 {
				panic("boom")
			}
			return []int{i + 1}
		})
	}()
	snap := reg.Snapshot()
	// Serial worker processes 0, 1, then panics on 2: exactly two completed.
	if got := snap.Counter("par.tasks"); got != 2 {
		t.Errorf("par.tasks = %d, want 2 (panicked item excluded)", got)
	}
	if got := snap.Gauge("par.busy"); got != 0 {
		t.Errorf("par.busy after abort = %d, want 0", got)
	}
}

// TestFrontierWorkerOwnership pins the MapWorker-style contract on the
// stealing frontier: each worker index is owned by exactly one goroutine
// at a time, even while items migrate between deques.
func TestFrontierWorkerOwnership(t *testing.T) {
	const workers = 4
	var active [workers]atomic.Int64
	FrontierWorker(workers, []int{0, 0, 0, 0, 0, 0, 0, 0}, func(w, depth int) []int {
		if active[w].Add(1) != 1 {
			t.Errorf("worker %d entered concurrently", w)
		}
		defer active[w].Add(-1)
		if depth >= 2 {
			return nil
		}
		return []int{depth + 1, depth + 1}
	})
}

// TestUninstrumentedPoolUnaffected pins that the default (nil) state keeps
// working after instrumentation is removed.
func TestUninstrumentedPoolUnaffected(t *testing.T) {
	SetInstrumentation(nil)
	out, err := Map(2, 8, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 8 {
		t.Fatalf("uninstrumented Map = (%v, %v)", out, err)
	}
}
