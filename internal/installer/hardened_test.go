package installer

import (
	"strings"
	"testing"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/fileobserver"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

// buildAttackerHelper is a minimal app holding the storage permission.
func buildAttackerHelper(t *testing.T) *apk.APK {
	t.Helper()
	return apk.Build(apk.Manifest{
		Package: "com.replacer", VersionCode: 1, Label: "R",
		UsesPerms: []string{perm.WriteExternalStorage},
	}, nil, sig.NewKey("replacer"))
}

func TestHardenedPrefersInternalWhenSpaceAllows(t *testing.T) {
	d := bootDev(t)
	prof := Hardened(Amazon())
	app, _ := deployWithTarget(t, d, prof, "com.example.app")
	res := runAIT(t, d, app, "com.example.app")
	if !res.Clean() {
		t.Fatal(res.Err)
	}
	// Nothing was staged on the SD card.
	if infos, err := d.FS.List(prof.StagingDir); err == nil && len(infos) > 0 {
		t.Errorf("SD staging dir used despite internal preference: %+v", infos)
	}
	// The internal staging file is world-readable (the PMS requirement).
	staged := false
	for _, s := range res.Trace {
		if s.Name == "downloaded" && strings.HasPrefix(s.Detail, "/data/data/") {
			staged = true
		}
	}
	if !staged {
		t.Errorf("trace shows no internal staging: %v", res.Trace)
	}
}

func TestHardenedFallsBackToSDCardWhenLowOnSpace(t *testing.T) {
	// A low-end device: internal storage too small to hold the APK twice
	// (staging/secure copy + code image), but big enough for the install
	// itself — the Galaxy J5 situation of Section II.
	d, err := device.Boot(device.Profile{Name: "galaxy-j5", Vendor: "samsung", InternalBytes: 40 << 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prof := Hardened(Amazon())
	app, err := Deploy(d, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	big := apk.Build(apk.Manifest{Package: "com.example.app", VersionCode: 1, Label: "Big"},
		nil, sig.NewKey("big-dev"))
	big.Padding = 25 << 10
	app.Store.Publish(big)

	res := runAIT(t, d, app, "com.example.app")
	if !res.Clean() {
		t.Fatalf("low-end hardened install failed: %v", res.Err)
	}
	// It fell back to the SD card for the download, and the secure copy
	// was skipped for the same space reason.
	sdDownloaded, copySkipped := false, false
	for _, s := range res.Trace {
		if s.Name == "downloaded" && strings.HasPrefix(s.Detail, "/sdcard/") {
			sdDownloaded = true
		}
		if s.Name == "secure-copy-skipped" {
			copySkipped = true
		}
	}
	if !sdDownloaded {
		t.Errorf("expected SD fallback, trace: %v", res.Trace)
	}
	if !copySkipped {
		t.Errorf("expected skipped secure copy, trace: %v", res.Trace)
	}
}

func TestHardenedDTIgniteUsesCacheDir(t *testing.T) {
	d := bootDev(t)
	prof := Hardened(DTIgnite())
	app, _ := deployWithTarget(t, d, prof, "com.carrier.bloat")
	res := runAIT(t, d, app, "com.carrier.bloat")
	if !res.Clean() {
		t.Fatal(res.Err)
	}
	q, err := d.DM.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(q.Dest, "/data/data/com.dti.ignite/cache/") {
		t.Errorf("DM dest = %q, want the installer's cache dir", q.Dest)
	}
}

func TestSecureVerifyStopsLateReplacement(t *testing.T) {
	// Keep SD staging (no internal preference) but verify on a secure
	// copy. A replacement landing on the shared file after the copy has
	// no effect on what gets installed.
	d := bootDev(t)
	prof := Baidu()
	prof.SecureVerify = true
	app, genuine := deployWithTarget(t, d, prof, "com.example.app")

	evil, err := d.InstallSystemApp(buildAttackerHelper(t))
	if err != nil {
		t.Fatal(err)
	}
	// Replace the shared-storage file right after its CLOSE_WRITE — i.e.
	// even *before* a Section III-B attacker would normally strike.
	replaced := false
	obs := fileobserver.New(d.FS, prof.StagingDir, fileobserver.CloseWrite, func(ev fileobserver.Event) {
		if !replaced && ev.Actor == app.UID() {
			replaced = true
			// Schedule right after the secure copy's read completes.
			d.Sched.After(1, func() {
				if werr := d.FS.WriteFile(ev.Path, []byte("evil"), evil.UID, vfs.ModeShared); werr != nil {
					t.Errorf("replacement write failed: %v", werr)
				}
			})
		}
	})
	if err := obs.StartWatching(); err != nil {
		t.Fatal(err)
	}
	defer obs.StopWatching()

	res := runAIT(t, d, app, "com.example.app")
	if !replaced {
		t.Fatal("replacement never happened")
	}
	if !res.Clean() {
		t.Fatalf("hardened install not clean: err=%v hijacked=%v", res.Err, res.Hijacked)
	}
	if !res.Installed.Cert.Equal(genuine.Cert()) {
		t.Error("installed package does not carry the genuine certificate")
	}
}
