package installer

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/fileobserver"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

func bootDev(t *testing.T) *device.Device {
	t.Helper()
	d, err := device.Boot(device.Profile{Name: "galaxy-s6", Vendor: "samsung", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// deployWithTarget deploys prof and publishes a target app on its store.
func deployWithTarget(t *testing.T, d *device.Device, prof Profile, target string) (*App, *apk.APK) {
	t.Helper()
	app, err := Deploy(d, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	targetAPK := apk.Build(apk.Manifest{
		Package: target, VersionCode: 1, Label: "Target", Icon: "icon",
		UsesPerms: []string{perm.Internet},
	}, map[string][]byte{"classes.dex": []byte("genuine-" + target)}, sig.NewKey(target+"-dev"))
	app.Store.Publish(targetAPK)
	return app, targetAPK
}

func runAIT(t *testing.T, d *device.Device, app *App, target string) Result {
	t.Helper()
	var res Result
	got := false
	app.RequestInstall(target, func(r Result) { res, got = r, true })
	d.Run()
	if !got {
		t.Fatal("AIT never completed")
	}
	return res
}

func TestCleanInstallAcrossAllProfiles(t *testing.T) {
	for _, prof := range AllStoreProfiles() {
		prof := prof
		t.Run(prof.Package, func(t *testing.T) {
			d := bootDev(t)
			app, targetAPK := deployWithTarget(t, d, prof, "com.example.app")
			res := runAIT(t, d, app, "com.example.app")
			if !res.Clean() {
				t.Fatalf("result = err %v, hijacked %v", res.Err, res.Hijacked)
			}
			if res.Installed.Name() != "com.example.app" {
				t.Errorf("installed %s", res.Installed.Name())
			}
			if !res.Installed.Cert.Equal(targetAPK.Cert()) {
				t.Error("installed cert differs from developer cert")
			}
			if res.Attempts != 1 {
				t.Errorf("attempts = %d", res.Attempts)
			}
			// The trace covers all four AIT steps (Figure 1).
			seen := map[int]bool{}
			for _, s := range res.Trace {
				seen[s.Step] = true
				if s.String() == "" {
					t.Error("empty trace line")
				}
			}
			for step := StepInvocation; step <= StepInstall; step++ {
				if !seen[step] {
					t.Errorf("trace missing step %d: %v", step, res.Trace)
				}
			}
		})
	}
}

func TestVerifyReadsFingerprint(t *testing.T) {
	// Count CLOSE_NOWRITE events on the staged file between download
	// completion and install: the per-store fingerprints of Section III-B.
	tests := []struct {
		prof Profile
		want int
	}{
		{prof: Amazon(), want: 7},
		{prof: Qihoo360(), want: 3},
		{prof: Baidu(), want: 2},
		{prof: Xiaomi(), want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.prof.Package, func(t *testing.T) {
			d := bootDev(t)
			app, _ := deployWithTarget(t, d, tt.prof, "com.example.app")

			downloaded := false
			noWrites := 0
			obs := fileobserver.New(d.FS, tt.prof.StagingDir, fileobserver.AllEvents, func(ev fileobserver.Event) {
				switch ev.Mask {
				case fileobserver.CloseWrite:
					downloaded, noWrites = true, 0
				case fileobserver.CloseNoWrite:
					if downloaded && ev.Actor == app.UID() {
						noWrites++
					}
				}
			})
			if err := obs.StartWatching(); err != nil {
				t.Fatal(err)
			}
			defer obs.StopWatching()

			res := runAIT(t, d, app, "com.example.app")
			if !res.Clean() {
				t.Fatalf("install failed: %v", res.Err)
			}
			if noWrites != tt.want {
				t.Errorf("verification CLOSE_NOWRITE count = %d, want %d", noWrites, tt.want)
			}
		})
	}
}

func TestAmazonRandomizesNames(t *testing.T) {
	d := bootDev(t)
	app, _ := deployWithTarget(t, d, Amazon(), "com.example.app")
	res := runAIT(t, d, app, "com.example.app")
	if !res.Clean() {
		t.Fatal(res.Err)
	}
	infos, err := d.FS.List(Amazon().StagingDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("staging dir = %+v", infos)
	}
	if strings.Contains(infos[0].Name, "com.example.app") {
		t.Errorf("staged name %q not randomized", infos[0].Name)
	}
}

func TestXiaomiTempRenameSignalsCompletion(t *testing.T) {
	d := bootDev(t)
	app, _ := deployWithTarget(t, d, Xiaomi(), "com.example.app")
	var moves []string
	obs := fileobserver.New(d.FS, Xiaomi().StagingDir, fileobserver.MovedTo, func(ev fileobserver.Event) {
		moves = append(moves, ev.Name)
	})
	if err := obs.StartWatching(); err != nil {
		t.Fatal(err)
	}
	defer obs.StopWatching()
	res := runAIT(t, d, app, "com.example.app")
	if !res.Clean() {
		t.Fatal(res.Err)
	}
	if len(moves) != 1 || moves[0] != "com.example.app.apk" {
		t.Errorf("MOVED_TO events = %v — the rename is the attacker's completion signal", moves)
	}
}

func TestDTIgniteDownloadsThroughDM(t *testing.T) {
	d := bootDev(t)
	app, _ := deployWithTarget(t, d, DTIgnite(), "com.carrier.bloat")
	res := runAIT(t, d, app, "com.carrier.bloat")
	if !res.Clean() {
		t.Fatal(res.Err)
	}
	// The DM recorded the download under DTIgnite's identity.
	q, err := d.DM.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Package != "com.dti.ignite" || !strings.HasPrefix(q.Dest, "/sdcard/DTIgnite/") {
		t.Errorf("dm record = %+v", q)
	}
}

func TestGooglePlayStagesInternallyWorldReadable(t *testing.T) {
	d := bootDev(t)
	prof := GooglePlay()
	app, _ := deployWithTarget(t, d, prof, "com.example.app")

	var stagedMode vfs.Mode
	obs := fileobserver.New(d.FS, prof.StagingDir, fileobserver.CloseWrite, func(ev fileobserver.Event) {
		if info, err := d.FS.Stat(ev.Path); err == nil {
			stagedMode = info.Mode
		}
	})
	if err := obs.StartWatching(); err != nil {
		t.Fatal(err)
	}
	defer obs.StopWatching()

	res := runAIT(t, d, app, "com.example.app")
	if !res.Clean() {
		t.Fatal(res.Err)
	}
	if !stagedMode.WorldReadable() {
		t.Errorf("internal staged mode = %o, want world-readable", stagedMode)
	}
	// And crucially: another app cannot overwrite the internal staging
	// file, unlike the SD card.
	evil := vfs.UID(10999)
	err := d.FS.WriteFile(prof.StagingDir+"/x.apk", []byte("evil"), evil, vfs.ModeShared)
	if !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("foreign write into Play staging dir = %v, want ErrPermission", err)
	}
}

func TestNotInCatalog(t *testing.T) {
	d := bootDev(t)
	app, err := Deploy(d, Amazon(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	app.RequestInstall("com.missing", func(r Result) { res = r })
	d.Run()
	if !errors.Is(res.Err, ErrNotInCatalog) {
		t.Errorf("err = %v", res.Err)
	}
}

func TestCorruptedDownloadTriggersRedownload(t *testing.T) {
	d := bootDev(t)
	prof := Baidu()
	app, _ := deployWithTarget(t, d, prof, "com.example.app")

	// The corrupting app must actually hold WRITE_EXTERNAL_STORAGE or the
	// FUSE daemon rejects the write.
	evil, err := d.InstallSystemApp(apk.Build(apk.Manifest{
		Package: "com.clumsy", VersionCode: 1, Label: "Clumsy",
		UsesPerms: []string{perm.WriteExternalStorage},
	}, nil, sig.NewKey("clumsy")))
	if err != nil {
		t.Fatal(err)
	}

	// A clumsy attacker corrupts the file immediately at CLOSE_WRITE —
	// before verification — so the hash check fails and the store
	// transparently re-downloads. Only the first attempt is attacked.
	attacked := false
	obs := fileobserver.New(d.FS, prof.StagingDir, fileobserver.CloseWrite, func(ev fileobserver.Event) {
		if !attacked && ev.Actor == app.UID() {
			attacked = true
			if werr := d.FS.WriteFile(ev.Path, []byte("garbage"), evil.UID, vfs.ModeShared); werr != nil {
				t.Errorf("corrupting write failed: %v", werr)
			}
		}
	})
	if err := obs.StartWatching(); err != nil {
		t.Fatal(err)
	}
	defer obs.StopWatching()

	res := runAIT(t, d, app, "com.example.app")
	if !res.Clean() {
		t.Fatalf("res = %+v", res.Err)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (transparent redownload)", res.Attempts)
	}
}

func TestVeneziaJSBridgeCommandInjection(t *testing.T) {
	d := bootDev(t)
	app, _ := deployWithTarget(t, d, Amazon(), "com.victim.app")

	// A background app sends a singleTop Intent carrying script to the
	// exported Venezia activity; the bridge executes it with Amazon's
	// INSTALL_PACKAGES privilege.
	err := d.AMS.StartActivity("com.malware", intents.Intent{
		TargetPkg: "com.amazon.venezia", Component: ActivityVenezia,
		SingleTop: true,
		Extras:    map[string]string{"jsPayload": "install:com.victim.app"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	if _, ok := d.PMS.Installed("com.victim.app"); !ok {
		t.Fatal("silent install via JS bridge did not happen")
	}
	logs := app.PushInstalls()
	if len(logs) != 1 || !logs[0].Succeeded() {
		t.Errorf("push log = %+v", logs)
	}

	// And uninstall works the same way.
	err = d.AMS.StartActivity("com.malware", intents.Intent{
		TargetPkg: "com.amazon.venezia", Component: ActivityVenezia,
		SingleTop: true,
		Extras:    map[string]string{"jsPayload": "uninstall:com.victim.app"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	if _, ok := d.PMS.Installed("com.victim.app"); ok {
		t.Error("silent uninstall via JS bridge did not happen")
	}
}

func TestVeneziaSanitizedBridgeIgnoresPayload(t *testing.T) {
	d := bootDev(t)
	prof := Amazon()
	prof.JSBridgeSanitized = true
	_, _ = deployWithTarget(t, d, prof, "com.victim.app")

	err := d.AMS.StartActivity("com.malware", intents.Intent{
		TargetPkg: "com.amazon.venezia", Component: ActivityVenezia,
		SingleTop: true,
		Extras:    map[string]string{"jsPayload": "install:com.victim.app"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	if _, ok := d.PMS.Installed("com.victim.app"); ok {
		t.Error("sanitized bridge still executed the payload")
	}
}

func xiaomiPushPayload(t *testing.T, pkg string) string {
	t.Helper()
	inner, err := json.Marshal(map[string]string{"type": "app", "appId": "1234", "packageName": pkg})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := json.Marshal(map[string]string{"jsonContent": string(inner)})
	if err != nil {
		t.Fatal(err)
	}
	return string(outer)
}

func TestXiaomiForgedPushInstallsSilently(t *testing.T) {
	d := bootDev(t)
	_, _ = deployWithTarget(t, d, Xiaomi(), "com.evil.app")

	n, err := d.AMS.SendBroadcast("com.malware", intents.Intent{
		Action: PushAction("com.xiaomi.market"),
		Extras: map[string]string{"payload": xiaomiPushPayload(t, "com.evil.app")},
	})
	if err != nil || n != 1 {
		t.Fatalf("broadcast = %d, %v", n, err)
	}
	d.Run()
	if _, ok := d.PMS.Installed("com.evil.app"); !ok {
		t.Fatal("forged push did not install the app — the Xiaomi flaw must reproduce")
	}
}

func TestGuardedPushReceiverBlocksForgery(t *testing.T) {
	d := bootDev(t)
	prof := Xiaomi()
	prof.PushAuth = ReceiverGuarded
	_, _ = deployWithTarget(t, d, prof, "com.evil.app")

	n, err := d.AMS.SendBroadcast("com.malware", intents.Intent{
		Action: PushAction("com.xiaomi.market"),
		Extras: map[string]string{"payload": xiaomiPushPayload(t, "com.evil.app")},
	})
	if n != 0 || !errors.Is(err, intents.ErrPermission) {
		t.Fatalf("guarded broadcast = %d, %v", n, err)
	}
	d.Run()
	if _, ok := d.PMS.Installed("com.evil.app"); ok {
		t.Error("guarded receiver still installed the forged app")
	}
}

func TestDRMTamperedImageRefusesToRun(t *testing.T) {
	d := bootDev(t)
	prof := Amazon()
	key := sig.NewKey(prof.Package + "-signer")
	attacker := sig.NewKey("attacker")

	// Build the genuine image, then repackage it keeping the DRM entry.
	genuine := apk.WithDRM(apk.Build(apk.Manifest{
		Package: prof.Package, VersionCode: 1, Label: prof.Label,
		UsesPerms: []string{perm.InstallPackages, perm.WriteExternalStorage},
	}, map[string][]byte{"classes.dex": []byte("store")}, key), key)
	tampered := apk.Repackage(genuine, map[string][]byte{"classes.dex": []byte("evil")}, attacker, false)
	if _, err := DeployImage(d, prof, attacker, tampered); !errors.Is(err, ErrDRMTampered) {
		t.Fatalf("tampered deploy = %v, want ErrDRMTampered", err)
	}
	// Stripping the DRM (the paper's bypass) deploys fine.
	stripped := apk.Repackage(genuine, map[string][]byte{"classes.dex": []byte("evil")}, attacker, true)
	if _, err := DeployImage(d, prof, attacker, stripped); err != nil {
		t.Fatalf("DRM-stripped deploy failed: %v", err)
	}
}

func TestOrdinaryDeveloperSelfUpdateViaPIA(t *testing.T) {
	d := bootDev(t)
	prof := OrdinaryDeveloper("com.indie.game")
	app, err := Deploy(d, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The update is a newer version signed by the same developer key.
	app.Store.Publish(apk.Build(apk.Manifest{
		Package: "com.indie.game", VersionCode: 2, Label: prof.Label,
	}, map[string][]byte{"classes.dex": []byte("v2")}, app.Key))
	res := runAIT(t, d, app, "com.indie.game")
	if !res.Clean() {
		t.Fatalf("self-update failed: %v", res.Err)
	}
	// It went through the consent dialog, not a silent install.
	hasConsent := false
	for _, s := range res.Trace {
		if s.Name == "consent" {
			hasConsent = true
		}
	}
	if !hasConsent {
		t.Errorf("trace lacks consent step: %v", res.Trace)
	}
}

func TestInstrumentedAITMatchesTrace(t *testing.T) {
	d := bootDev(t)
	app, _ := deployWithTarget(t, d, Amazon(), "com.example.app")
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	app.Instrument(reg, tr.VirtualTrack("device"))
	res := runAIT(t, d, app, "com.example.app")
	if !res.Clean() {
		t.Fatalf("result = err %v, hijacked %v", res.Err, res.Hijacked)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("installer.aits"); got != 1 {
		t.Errorf("installer.aits = %d, want 1", got)
	}
	if got := snap.Counter("installer.installed.clean"); got != 1 {
		t.Errorf("installer.installed.clean = %d, want 1", got)
	}
	if got := snap.Counter("installer.installed.hijacked"); got != 0 {
		t.Errorf("installer.installed.hijacked = %d, want 0", got)
	}
	if got := snap.Counter("installer.failed"); got != 0 {
		t.Errorf("installer.failed = %d, want 0", got)
	}

	// The track carries one instant per TraceStep plus one closing span
	// whose extent covers the whole transaction.
	evs := tr.Tracks()[0].Events()
	if want := len(res.Trace) + 1; len(evs) != want {
		t.Fatalf("track has %d events, want %d", len(evs), want)
	}
	for i, st := range res.Trace {
		ev := evs[i]
		if !ev.Instant || ev.Name != st.Name || ev.Detail != st.Detail || ev.Start != st.At {
			t.Errorf("event %d = %+v, want instant mirroring step %+v", i, ev, st)
		}
	}
	sp := evs[len(evs)-1]
	if sp.Instant || sp.Name != "ait/com.example.app" || sp.Detail != "clean" {
		t.Errorf("closing span = %+v", sp)
	}
	last := res.Trace[len(res.Trace)-1]
	if sp.Start != 0 && sp.Start > res.Trace[0].At {
		t.Errorf("span starts at %v, after first step %v", sp.Start, res.Trace[0].At)
	}
	if sp.Start+sp.Dur != last.At {
		t.Errorf("span ends at %v, want %v (last step)", sp.Start+sp.Dur, last.At)
	}
}

func TestInstrumentedAITFailure(t *testing.T) {
	d := bootDev(t)
	app, err := Deploy(d, Amazon(), nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	app.Instrument(reg, nil)
	res := runAIT(t, d, app, "com.not.in.catalog")
	if res.Err == nil {
		t.Fatal("expected catalog miss")
	}
	snap := reg.Snapshot()
	if got := snap.Counter("installer.aits"); got != 1 {
		t.Errorf("installer.aits = %d, want 1", got)
	}
	if got := snap.Counter("installer.failed"); got != 1 {
		t.Errorf("installer.failed = %d, want 1", got)
	}
}
