// Package installer implements the App Installation Transaction (AIT) as
// real installer apps implement it: per-store behavioural profiles whose
// parameters — storage choice, name randomization, number of verification
// reads, check-to-install gap, re-download policy, exposed interfaces — are
// taken from the paper's analysis of Amazon, Xiaomi, Baidu, Qihoo360,
// DTIgnite, SlideMe, Google Play and ordinary self-updating apps.
package installer

import (
	"time"
)

// StorageChoice selects where the installer stages the downloaded APK.
type StorageChoice int

// Staging locations.
const (
	// StorageSDCard stages on shared external storage — the choice of
	// every major third-party store (Section II) and the GIA root cause.
	StorageSDCard StorageChoice = iota + 1
	// StorageInternal stages in the installer's private directory, made
	// world-readable so the PMS can open it.
	StorageInternal
)

// ReceiverAuth describes how the store's push receiver authenticates
// command messages.
type ReceiverAuth int

// Receiver authentication modes.
const (
	// ReceiverNone: the store has no push receiver.
	ReceiverNone ReceiverAuth = iota
	// ReceiverUnauthenticated: exported receiver, no sender check — the
	// Xiaomi appstore flaw (Section III-D).
	ReceiverUnauthenticated
	// ReceiverGuarded: the receiver is protected by a signature
	// permission (the paper's suggested fix).
	ReceiverGuarded
)

// Profile is one installer's AIT implementation.
type Profile struct {
	Package   string
	Label     string
	StoreHost string

	// Silent installers hold INSTALL_PACKAGES and call the PMS directly;
	// others go through the PIA consent dialog.
	Silent bool
	// Storage selects SD card vs internal staging.
	Storage StorageChoice
	// StagingDir is the (stable) directory used for downloads. The paper
	// notes directories are rarely randomized even when names are.
	StagingDir string
	// RandomizeNames gives each staged APK a random file name (Amazon).
	RandomizeNames bool
	// TempNameRename downloads under a temporary name and renames to the
	// official one on completion (Xiaomi) — itself a completion signal.
	TempNameRename bool

	// HashCheck verifies the downloaded content digest against the
	// store's metadata before installing.
	HashCheck bool
	// VerifyReads is how many times the verifier opens and reads the
	// staged file — the CLOSE_NOWRITE fingerprint the FileObserver
	// attacker counts (Amazon 7, Qihoo360 3, Baidu 2, Xiaomi 1).
	VerifyReads int
	// VerifyReadTime is the virtual duration of one verification read.
	VerifyReadTime time.Duration
	// GapMin/GapMax bound the window between verification completion and
	// the PMS/PIA opening the file.
	GapMin, GapMax time.Duration
	// Redownloads is how many times a failed hash check triggers a
	// transparent re-download (giving the attacker another try).
	Redownloads int

	// UseManifestVerification routes the install through
	// installPackageWithVerification (new Amazon appstore).
	UseManifestVerification bool
	// UseSignatureVerification is the paper's Section V-A fix: record the
	// APK's signer certificate at download completion and have the PMS
	// verify it at install time. Replacements with a foreign signature —
	// including same-manifest repackages — are rejected.
	UseSignatureVerification bool
	// UseDM downloads through the system Download Manager (DTIgnite)
	// instead of the store's own HTTP stack.
	UseDM bool
	// DialogMin/DialogMax bound the PIA consent-dialog duration for
	// non-silent installers.
	DialogMin, DialogMax time.Duration

	// JSBridge exposes a WebView JavaScript-to-Java bridge on the store's
	// main activity that executes install/uninstall commands from Intent
	// extras without authenticating the sender (Amazon Venezia).
	JSBridge bool
	// JSBridgeSanitized applies the paper's fix: payload sanitization and
	// a capability-limited bridge.
	JSBridgeSanitized bool
	// PushAuth describes the store's cloud-push receiver.
	PushAuth ReceiverAuth
	// DRMSelfCheck makes the store app validate its own signing identity
	// at startup (Amazon's DRM).
	DRMSelfCheck bool

	// The two Section VII developer suggestions:
	//
	// PreferInternal (Suggestion 1) stages in the installer's private
	// internal storage whenever the device has room for the APK twice
	// (staging copy + code image), falling back to the SD card only when
	// space is short.
	PreferInternal bool
	// SecureVerify (Suggestion 2) copies the downloaded APK into the
	// installer's private internal directory immediately after download
	// and verifies + installs from that secure copy, closing the
	// check-to-install window on shared storage.
	SecureVerify bool
}

// Hardened returns a copy of prof with the Section VII suggestions applied:
// prefer internal staging when space allows, and verify the hash on a
// private copy right before installation otherwise.
func Hardened(prof Profile) Profile {
	prof.PreferInternal = true
	prof.SecureVerify = true
	return prof
}

// Store profiles measured in the paper. Timing parameters are calibrated so
// the wait-and-see delays match Section III-B: DTIgnite ≈ 2 s after
// download completion, Amazon and Baidu ≈ 500 ms.
func Amazon() Profile {
	return Profile{
		Package: "com.amazon.venezia", Label: "Amazon Appstore",
		StoreHost: "mas.amazon.com",
		Silent:    true, Storage: StorageSDCard,
		StagingDir:     "/sdcard/amazon_appstore",
		RandomizeNames: true,
		HashCheck:      true, VerifyReads: 7, VerifyReadTime: 65 * time.Millisecond,
		GapMin: 120 * time.Millisecond, GapMax: 200 * time.Millisecond,
		Redownloads:  2,
		JSBridge:     true,
		DRMSelfCheck: true,
	}
}

// AmazonV2 is the post-May-2015 Amazon appstore
// (17.0000.893.3C_647000010): same AIT plus installPackageWithVerification
// and DRM self-checking.
func AmazonV2() Profile {
	p := Amazon()
	p.UseManifestVerification = true
	return p
}

// Xiaomi is the Xiaomi appstore: one verification read, temp-name rename on
// completion, unauthenticated cloud-push receiver.
func Xiaomi() Profile {
	return Profile{
		Package: "com.xiaomi.market", Label: "Mi Store",
		StoreHost: "app.mi.com",
		Silent:    true, Storage: StorageSDCard,
		StagingDir:     "/sdcard/MiMarket/download",
		TempNameRename: true,
		HashCheck:      true, VerifyReads: 1, VerifyReadTime: 120 * time.Millisecond,
		GapMin: 20 * time.Millisecond, GapMax: 60 * time.Millisecond,
		Redownloads: 2,
		PushAuth:    ReceiverUnauthenticated,
	}
}

// Baidu is the Baidu appstore: two verification reads.
func Baidu() Profile {
	return Profile{
		Package: "com.baidu.appsearch", Label: "Baidu App Store",
		StoreHost: "appstore.baidu.com",
		Silent:    true, Storage: StorageSDCard,
		StagingDir: "/sdcard/baidu/AppSearch/downloads",
		HashCheck:  true, VerifyReads: 2, VerifyReadTime: 220 * time.Millisecond,
		GapMin: 120 * time.Millisecond, GapMax: 200 * time.Millisecond,
		Redownloads: 2,
	}
}

// Qihoo360 is the Qihoo 360 mobile assistant: three verification reads.
func Qihoo360() Profile {
	return Profile{
		Package: "com.qihoo.appstore", Label: "360 Mobile Assistant",
		StoreHost: "app.360.cn",
		Silent:    true, Storage: StorageSDCard,
		StagingDir: "/sdcard/360Download",
		HashCheck:  true, VerifyReads: 3, VerifyReadTime: 150 * time.Millisecond,
		GapMin: 20 * time.Millisecond, GapMax: 70 * time.Millisecond,
		Redownloads: 2,
	}
}

// DTIgnite is the carrier bloatware pusher: downloads through the system
// Download Manager to /sdcard/DTIgnite and installs silently about two
// seconds after the download completes.
func DTIgnite() Profile {
	return Profile{
		Package: "com.dti.ignite", Label: "DT Ignite",
		StoreHost: "cdn.digitalturbine.com",
		Silent:    true, Storage: StorageSDCard,
		StagingDir: "/sdcard/DTIgnite",
		UseDM:      true,
		HashCheck:  true, VerifyReads: 2, VerifyReadTime: 180 * time.Millisecond,
		GapMin: 1750 * time.Millisecond, GapMax: 2100 * time.Millisecond,
		Redownloads: 1,
	}
}

// SlideMe is the SlideMe market, installed by users as a non-system app, so
// installs go through the PIA consent dialog.
func SlideMe() Profile {
	return Profile{
		Package: "com.slideme.sam.manager", Label: "SlideME Market",
		StoreHost: "slideme.org",
		Silent:    false, Storage: StorageSDCard,
		StagingDir: "/sdcard/slideme",
		HashCheck:  true, VerifyReads: 2, VerifyReadTime: 150 * time.Millisecond,
		GapMin: 10 * time.Millisecond, GapMax: 40 * time.Millisecond,
		DialogMin: 2 * time.Second, DialogMax: 5 * time.Second,
		Redownloads: 1,
	}
}

// Tencent is the Tencent MyApp store.
func Tencent() Profile {
	return Profile{
		Package: "com.tencent.android.qqdownloader", Label: "Tencent MyApp",
		StoreHost: "android.myapp.com",
		Silent:    true, Storage: StorageSDCard,
		StagingDir: "/sdcard/tencent/tassistant/apk",
		HashCheck:  true, VerifyReads: 2, VerifyReadTime: 170 * time.Millisecond,
		GapMin: 20 * time.Millisecond, GapMax: 60 * time.Millisecond,
		Redownloads: 2,
	}
}

// HuaweiStore is the Huawei AppGallery.
func HuaweiStore() Profile {
	return Profile{
		Package: "com.huawei.appmarket", Label: "Huawei AppGallery",
		StoreHost: "appstore.huawei.com",
		Silent:    true, Storage: StorageSDCard,
		StagingDir: "/sdcard/HwMarket",
		HashCheck:  true, VerifyReads: 2, VerifyReadTime: 160 * time.Millisecond,
		GapMin: 20 * time.Millisecond, GapMax: 60 * time.Millisecond,
		Redownloads: 2,
		PushAuth:    ReceiverUnauthenticated,
	}
}

// SprintZone is Sprint's pre-installed pusher (statically analysed in the
// paper; the AIT shape mirrors DTIgnite's).
func SprintZone() Profile {
	p := DTIgnite()
	p.Package = "com.sprint.zone"
	p.Label = "Sprint Zone"
	p.StoreHost = "zone.sprint.com"
	p.StagingDir = "/sdcard/SprintZone"
	return p
}

// APKPure is the store Section II highlights: it became popular precisely
// by serving Google Play apps through the SD card so that storage-starved
// users can install them. Side-loaded by users, so installs go through the
// PIA consent dialog.
func APKPure() Profile {
	return Profile{
		Package: "com.apkpure.aegon", Label: "APKPure",
		StoreHost: "apkpure.com",
		Silent:    false, Storage: StorageSDCard,
		StagingDir: "/sdcard/APKPure",
		HashCheck:  true, VerifyReads: 2, VerifyReadTime: 150 * time.Millisecond,
		GapMin: 10 * time.Millisecond, GapMax: 40 * time.Millisecond,
		DialogMin: 2 * time.Second, DialogMax: 5 * time.Second,
		Redownloads: 1,
	}
}

// GalaxyApps is Samsung's own store: like Google Play, the manufacturer
// controls its devices' storage and stages internally.
func GalaxyApps() Profile {
	return Profile{
		Package: "com.sec.android.app.samsungapps", Label: "Galaxy Apps",
		StoreHost: "apps.samsung.com",
		Silent:    true, Storage: StorageInternal,
		StagingDir: "/data/data/com.sec.android.app.samsungapps/files",
		HashCheck:  true, VerifyReads: 1, VerifyReadTime: 110 * time.Millisecond,
		GapMin: 10 * time.Millisecond, GapMax: 30 * time.Millisecond,
		Redownloads: 2,
	}
}

// GooglePlay stages in internal storage (the secure pattern): APK staged
// under the store's private directory, made world-readable for the PMS.
func GooglePlay() Profile {
	return Profile{
		Package: "com.android.vending", Label: "Google Play",
		StoreHost: "play.google.com",
		Silent:    true, Storage: StorageInternal,
		StagingDir: "/data/data/com.android.vending/files",
		HashCheck:  true, VerifyReads: 1, VerifyReadTime: 100 * time.Millisecond,
		GapMin: 10 * time.Millisecond, GapMax: 30 * time.Millisecond,
		Redownloads: 2,
	}
}

// OrdinaryDeveloper is the self-updating ordinary app of Section II: stages
// on the SD card because internal staging failed with a read error, and
// performs no hash verification at all.
func OrdinaryDeveloper(pkg string) Profile {
	return Profile{
		Package: pkg, Label: pkg,
		StoreHost: "updates.example.com",
		Silent:    false, Storage: StorageSDCard,
		StagingDir: "/sdcard/Download",
		HashCheck:  false,
		GapMin:     5 * time.Millisecond, GapMax: 20 * time.Millisecond,
		DialogMin: 2 * time.Second, DialogMax: 5 * time.Second,
	}
}

// AllStoreProfiles returns every store profile the paper tested, for the
// sweep experiments.
func AllStoreProfiles() []Profile {
	return []Profile{
		Amazon(), AmazonV2(), Xiaomi(), Baidu(), Qihoo360(),
		DTIgnite(), SlideMe(), Tencent(), HuaweiStore(), SprintZone(),
		APKPure(), GalaxyApps(), GooglePlay(),
	}
}

// InternalStorageStores names the profiles that stage internally (the
// negative controls of the hijack studies).
func InternalStorageStores() map[string]bool {
	return map[string]bool{
		GooglePlay().Package: true,
		GalaxyApps().Package: true,
	}
}
