package installer

import (
	"testing"
	"time"
)

// paperWaitDelay mirrors attack.WaitDelayFor without importing the attack
// package (which would create an import cycle in tests).
func paperWaitDelay(storePkg string) time.Duration {
	switch storePkg {
	case "com.dti.ignite", "com.sprint.zone":
		return 2 * time.Second
	default:
		return 500 * time.Millisecond
	}
}

// TestProfileTimingCalibration guards the timing model against profile
// edits: for the stores the paper attacked with the wait-and-see strategy,
// the pre-measured delay must land strictly between the end of the hash
// check and the earliest possible install trigger, with margin for the
// attacker's detection lag (EOCD polling, up to 50 ms) and reaction
// latency (up to 6 ms).
func TestProfileTimingCalibration(t *testing.T) {
	const (
		pollLag  = 50 * time.Millisecond
		reactMax = 6 * time.Millisecond
	)
	waitAndSeeStores := map[string]bool{
		"com.amazon.venezia":  true,
		"com.baidu.appsearch": true,
		"com.dti.ignite":      true,
		"com.sprint.zone":     true,
	}
	for _, prof := range AllStoreProfiles() {
		if prof.Storage != StorageSDCard || !waitAndSeeStores[prof.Package] {
			continue
		}
		checkEnd := time.Duration(prof.VerifyReads) * prof.VerifyReadTime
		installMin := checkEnd + prof.GapMin
		delay := paperWaitDelay(prof.Package)
		strikeMin := delay + 1 // strike happens at least at delay after completion
		strikeMax := delay + pollLag + reactMax

		if strikeMin <= checkEnd {
			t.Errorf("%s: earliest strike %v not after the check end %v — would corrupt before verification",
				prof.Package, strikeMin, checkEnd)
		}
		if strikeMax >= installMin {
			t.Errorf("%s: latest strike %v not before the earliest install %v — would miss the window",
				prof.Package, strikeMax, installMin)
		}
	}
}

// TestFileObserverWindowCalibration checks every SD-card store leaves a
// gap wide enough for a FileObserver attacker with up to 6 ms reaction.
func TestFileObserverWindowCalibration(t *testing.T) {
	const reactMax = 6 * time.Millisecond
	for _, prof := range AllStoreProfiles() {
		if prof.Storage != StorageSDCard {
			continue
		}
		if prof.GapMin <= reactMax {
			t.Errorf("%s: trigger gap %v not larger than the attacker's max reaction %v",
				prof.Package, prof.GapMin, reactMax)
		}
	}
}
