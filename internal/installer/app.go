package installer

import (
	"encoding/json"
	"errors"
	"fmt"
	"path"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/market"
	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

// Errors returned by AIT runs.
var (
	ErrNotInCatalog = errors.New("installer: package not in store catalog")
	ErrHashMismatch = errors.New("installer: downloaded apk failed hash verification")
	ErrDRMTampered  = errors.New("installer: DRM self-check failed, refusing to run")
)

// Component names registered by store apps.
const (
	ActivityMain       = "Main"
	ActivityAppDetails = "AppDetails"
	// ActivityVenezia is Amazon's WebView activity with the JS-Java
	// bridge (com.amazon.venezia.Venezia in the paper).
	ActivityVenezia = "Venezia"
	// ReceiverPush is the cloud-push broadcast receiver.
	ReceiverPush = "PushReceiver"
)

// PushAction returns the broadcast action a store's push receiver listens
// on.
func PushAction(storePkg string) string { return storePkg + ".action.PUSH" }

// pushGuardPerm is the signature permission guarding a fixed receiver.
func pushGuardPerm(storePkg string) string { return storePkg + ".permission.PUSH" }

// Transfer cadence for stores' self-implemented HTTP downloads.
const (
	selfChunkSize   = 64 << 10
	selfBytesPerSec = 4 << 20
)

// App is a deployed installer app instance on one device.
type App struct {
	Dev     *device.Device
	Prof    Profile
	Pkg     *pm.Package
	Key     *sig.Key
	Store   *market.Server
	uid     vfs.UID
	nextDL  int
	pushLog []Result
	met     appMetrics
}

// appMetrics are the app's AIT observability hooks; the zero value (all
// nil) disables them at zero cost. See Instrument.
type appMetrics struct {
	aits     *obs.Counter
	clean    *obs.Counter
	hijacked *obs.Counter
	failed   *obs.Counter
	track    *obs.Track
}

func (m *appMetrics) active() bool { return m.aits != nil || m.track != nil }

// record closes out one AIT on the hooks: an outcome counter plus, when a
// track is attached, one virtual-time span covering the whole transaction.
func (m *appMetrics) record(app *App, start time.Duration, r Result) {
	outcome := "failed"
	switch {
	case r.Clean():
		outcome = "clean"
		m.clean.Add(1)
	case r.Succeeded():
		outcome = "hijacked"
		m.hijacked.Add(1)
	default:
		m.failed.Add(1)
	}
	if m.track != nil {
		m.track.SpanAt(start, app.Dev.Sched.Now()-start,
			"ait/"+r.Requested, outcome)
	}
}

// Instrument hooks the app's AIT telemetry onto reg (counters
// "installer.aits", "installer.installed.clean",
// "installer.installed.hijacked", "installer.failed") and, when track is
// non-nil, emits the AIT trace onto it in virtual time: one instant per
// TraceStep and one span per transaction. Either argument may be nil;
// calling Instrument with both nil restores the uninstrumented state.
func (a *App) Instrument(reg *obs.Registry, track *obs.Track) {
	a.met = appMetrics{track: track}
	if reg != nil {
		a.met.aits = reg.Counter("installer.aits")
		a.met.clean = reg.Counter("installer.installed.clean")
		a.met.hijacked = reg.Counter("installer.installed.hijacked")
		a.met.failed = reg.Counter("installer.failed")
	}
}

// imageCache memoizes default-key installer images: an image is a pure
// function of the profile and its derived signing key, and the sweeps and
// fleet studies deploy the same handful of stores onto thousands of
// devices. Cached images are shared and must stay immutable.
var imageCache struct {
	sync.Mutex
	m map[Profile]*apk.APK
}

// Deploy builds the installer's APK from its profile, installs it as part
// of the system image, registers its components with the AMS and connects
// (or creates) its store server.
func Deploy(dev *device.Device, prof Profile, key *sig.Key) (*App, error) {
	if key == nil {
		key = sig.NewKey(prof.Package + "-signer")
		imageCache.Lock()
		image := imageCache.m[prof]
		imageCache.Unlock()
		if image == nil {
			image = buildImage(prof, key)
			imageCache.Lock()
			if imageCache.m == nil {
				imageCache.m = make(map[Profile]*apk.APK)
			}
			imageCache.m[prof] = image
			imageCache.Unlock()
		}
		return DeployImage(dev, prof, key, image)
	}
	return DeployImage(dev, prof, key, buildImage(prof, key))
}

// buildImage assembles the store's system-image APK for prof, signed by key.
func buildImage(prof Profile, key *sig.Key) *apk.APK {
	uses := []string{perm.Internet, perm.WriteExternalStorage, perm.ReadExternalStorage}
	if prof.Silent {
		uses = append(uses, perm.InstallPackages, perm.DeletePackages)
	}
	m := apk.Manifest{
		Package:     prof.Package,
		VersionCode: 1,
		Label:       prof.Label,
		Icon:        "icon-" + prof.Package,
		UsesPerms:   uses,
		Components: []apk.Component{
			{Type: apk.ComponentActivity, Name: ActivityMain, Exported: true},
			{Type: apk.ComponentActivity, Name: ActivityAppDetails, Exported: true},
		},
	}
	if prof.JSBridge {
		m.Components = append(m.Components, apk.Component{
			Type: apk.ComponentActivity, Name: ActivityVenezia, Exported: true,
		})
	}
	switch prof.PushAuth {
	case ReceiverUnauthenticated:
		m.Components = append(m.Components, apk.Component{
			Type: apk.ComponentReceiver, Name: ReceiverPush, Exported: true,
		})
	case ReceiverGuarded:
		m.DefinesPerms = append(m.DefinesPerms, apk.PermissionDef{
			Name: pushGuardPerm(prof.Package), ProtectionLevel: "signature",
		})
		m.Components = append(m.Components, apk.Component{
			Type: apk.ComponentReceiver, Name: ReceiverPush, Exported: true,
			GuardedBy: pushGuardPerm(prof.Package),
		})
	}
	image := apk.Build(m, map[string][]byte{"classes.dex": []byte("store-code-" + prof.Package)}, key)
	if prof.DRMSelfCheck {
		image = apk.WithDRM(image, key)
	}
	return image
}

// DeployImage deploys a pre-built installer image (used to model the
// repackaged-Amazon attack, where the image is attacker-modified). The
// image's DRM self-check, if present, runs at startup.
func DeployImage(dev *device.Device, prof Profile, key *sig.Key, image *apk.APK) (*App, error) {
	if !image.DRMSelfCheck() {
		return nil, fmt.Errorf("%s: %w", prof.Package, ErrDRMTampered)
	}
	pkg, err := dev.InstallSystemApp(image)
	if err != nil {
		return nil, fmt.Errorf("installer: deploy %s: %w", prof.Package, err)
	}
	store := dev.Market.Acquire(prof.StoreHost)
	app := &App{Dev: dev, Prof: prof, Pkg: pkg, Key: key, Store: store, uid: pkg.UID}
	app.registerComponents()
	return app, nil
}

func (a *App) registerComponents() {
	ams := a.Dev.AMS
	ams.RegisterActivity(a.Prof.Package, ActivityMain, true, "", func(in intents.Intent) string {
		return a.Prof.Label + ":home"
	})
	// AppDetails renders whatever app the incoming Intent asks for — the
	// surface the redirect-Intent attack repaints.
	ams.RegisterActivity(a.Prof.Package, ActivityAppDetails, true, "", func(in intents.Intent) string {
		return a.Prof.Label + ":details:" + in.Extra("appId")
	})
	if a.Prof.JSBridge {
		ams.RegisterActivity(a.Prof.Package, ActivityVenezia, true, "", a.handleVenezia)
	}
	if a.Prof.PushAuth != ReceiverNone {
		guard := ""
		if a.Prof.PushAuth == ReceiverGuarded {
			guard = pushGuardPerm(a.Prof.Package)
		}
		ams.RegisterReceiver(a.Prof.Package, ReceiverPush, PushAction(a.Prof.Package), true, guard, a.handlePush)
	}
}

// handleVenezia is the JS-Java bridge: the activity renders cloud content
// and executes the JavaScript it carries. The vulnerable version never
// authenticates the Intent's origin nor filters script payloads, so
// "install:<pkg>" / "uninstall:<pkg>" commands run with the store's
// INSTALL_PACKAGES privilege.
func (a *App) handleVenezia(in intents.Intent) string {
	payload := in.Extra("jsPayload")
	if payload == "" {
		return a.Prof.Label + ":webview"
	}
	if a.Prof.JSBridgeSanitized {
		// The fix: script content from Intents is dropped and the bridge
		// no longer exposes install/uninstall.
		return a.Prof.Label + ":webview:sanitized"
	}
	for _, cmd := range strings.Split(payload, ";") {
		verb, arg, ok := strings.Cut(strings.TrimSpace(cmd), ":")
		if !ok {
			continue
		}
		switch verb {
		case "install":
			a.RequestInstall(arg, func(r Result) { a.pushLog = append(a.pushLog, r) })
		case "uninstall":
			_ = a.Dev.PMS.Uninstall(a.uid, arg)
		}
	}
	return a.Prof.Label + ":webview:executed"
}

// handlePush processes cloud push messages. The vulnerable variant parses
// the forged payload of Section III-D² and silently installs the named app.
func (a *App) handlePush(in intents.Intent) {
	var msg struct {
		JSONContent string `json:"jsonContent"`
	}
	raw := in.Extra("payload")
	if raw == "" {
		return
	}
	if err := json.Unmarshal([]byte(raw), &msg); err != nil {
		return
	}
	var cmd struct {
		Type        string `json:"type"`
		AppID       string `json:"appId"`
		PackageName string `json:"packageName"`
	}
	if err := json.Unmarshal([]byte(msg.JSONContent), &cmd); err != nil {
		return
	}
	if cmd.Type != "app" || cmd.PackageName == "" {
		return
	}
	a.RequestInstall(cmd.PackageName, func(r Result) { a.pushLog = append(a.pushLog, r) })
}

// PushInstalls returns the results of installs triggered through the push
// receiver or the JS bridge.
func (a *App) PushInstalls() []Result { return append([]Result(nil), a.pushLog...) }

// UID returns the installer's UID.
func (a *App) UID() vfs.UID { return a.uid }

// stagingName picks the staged file name for a target package.
func (a *App) stagingName(target string) string {
	if a.Prof.RandomizeNames {
		var buf [12]byte
		const hexdigits = "0123456789abcdef"
		v := a.Dev.Sched.Uint32()
		for i := 7; i >= 0; i-- {
			buf[i] = hexdigits[v&0xf]
			v >>= 4
		}
		copy(buf[8:], ".apk")
		return string(buf[:])
	}
	return target + ".apk"
}

// selfDownload models the store's own HTTP download: chunked writes on the
// virtual clock, same observable event stream as the DM.
func (a *App) selfDownload(url, dest string, mode vfs.Mode, done func(error)) {
	data, err := a.Dev.Market.Fetch(url)
	if err != nil {
		done(fmt.Errorf("installer: fetch %s: %w", url, err))
		return
	}
	h, err := a.Dev.FS.Open(dest, a.uid, vfs.FlagWrite|vfs.FlagCreate|vfs.FlagTrunc, mode)
	if err != nil {
		done(fmt.Errorf("installer: open staging file: %w", err))
		return
	}
	// A non-final chunk only appends to the staged file and schedules the
	// next chunk strictly later (selfBytesPerSec keeps even a 1-byte chunk
	// above zero virtual time), so it carries a vfs footprint scoped to the
	// staging directory for the explorer's partial-order reduction. The
	// final chunk closes the handle and runs the arbitrary done callback, so
	// it stays opaque; write-failure reachability (injected faults, a full
	// mount, a watcher on the staging dir) is revalidated at dispatch time
	// by the device's sim.FootprintCheck.
	stagingFP := sim.Footprint{Kind: sim.FootVFS, Key: path.Dir(h.Path())}
	var writeNext func(rest []byte)
	writeNext = func(rest []byte) {
		if len(rest) == 0 {
			done(h.Close())
			return
		}
		n := selfChunkSize
		if len(rest) < n {
			n = len(rest)
		}
		fp := sim.Footprint{}
		if len(rest) > n {
			fp = stagingFP
		}
		chunkTime := time.Duration(float64(n) / float64(selfBytesPerSec) * float64(time.Second))
		a.Dev.Sched.AfterFnTagged(chunkTime, fp, func() {
			if _, err := h.Write(rest[:n]); err != nil {
				_ = h.Close()
				done(fmt.Errorf("installer: write chunk: %w", err))
				return
			}
			writeNext(rest[n:])
		})
	}
	writeNext(data)
}

// internalFilesDir / internalCacheDir are the installer's private dirs.
func (a *App) internalFilesDir() string { return "/data/data/" + a.Prof.Package + "/files" }
func (a *App) internalCacheDir() string { return "/data/data/" + a.Prof.Package + "/cache" }

// chooseStaging applies Suggestion 1: stage internally when the profile
// prefers it and the internal mount has room for the APK twice (staging
// copy plus the PMS code image); otherwise use the profile's SD-card dir.
func (a *App) chooseStaging(listing market.Listing) (dir string, internal bool) {
	if a.Prof.Storage == StorageInternal {
		return a.Prof.StagingDir, true
	}
	if !a.Prof.PreferInternal {
		return a.Prof.StagingDir, false
	}
	used, capacity, err := a.Dev.FS.MountUsage("/data")
	if err == nil && (capacity == 0 || capacity-used >= 2*listing.SizeBytes) {
		if a.Prof.UseDM {
			// The Download Manager only accepts the caller's cache dir
			// as an internal destination.
			return a.internalCacheDir(), true
		}
		return a.internalFilesDir(), true
	}
	return a.Prof.StagingDir, false
}

// download stages the listing's APK and calls done with the final path.
func (a *App) download(listing market.Listing, done func(path string, err error)) {
	stagingDir, internal := a.chooseStaging(listing)
	if err := a.Dev.FS.MkdirAll(stagingDir, a.uid, vfs.ModeDir); err != nil && !errors.Is(err, vfs.ErrExist) {
		done("", fmt.Errorf("installer: staging dir: %w", err))
		return
	}
	// Internal staging must be world-readable or the PMS cannot open it
	// (Section II) — the very marker the measurement classifier detects.
	mode := vfs.ModeShared
	if internal {
		mode = vfs.ModeWorldReadable
	}
	finalPath := stagingDir + "/" + a.stagingName(listing.Package)
	dlPath := finalPath
	if a.Prof.TempNameRename {
		a.nextDL++
		dlPath = stagingDir + "/.tmp-" + strconv.Itoa(a.nextDL) + ".part"
	}
	finish := func(err error) {
		if err != nil {
			done("", err)
			return
		}
		if a.Prof.TempNameRename {
			if err := a.Dev.FS.Rename(dlPath, finalPath, a.uid); err != nil {
				done("", fmt.Errorf("installer: rename temp download: %w", err))
				return
			}
		}
		done(finalPath, nil)
	}
	if a.Prof.UseDM {
		_, err := a.Dev.DM.Enqueue(a.uid, a.Prof.Package, listing.URL, dlPath, func(d *dm.Download) {
			if d.Status != dm.StatusSuccessful {
				finish(fmt.Errorf("installer: dm download: %w", d.Err))
				return
			}
			if internal {
				// The DM presents shared modes; the PMS needs the
				// staged copy world-readable.
				if err := a.Dev.FS.Chmod(dlPath, vfs.ModeWorldReadable, a.uid); err != nil {
					finish(fmt.Errorf("installer: chmod staged: %w", err))
					return
				}
			}
			finish(nil)
		})
		if err != nil {
			done("", fmt.Errorf("installer: dm enqueue: %w", err))
		}
		return
	}
	a.selfDownload(listing.URL, dlPath, mode, finish)
}

// secureCopy implements Suggestion 2: duplicate a shared-storage download
// into the installer's private internal directory, so verification and
// installation operate on a copy no other app can touch.
func (a *App) secureCopy(stagedPath string) (string, error) {
	data, err := a.Dev.FS.ReadFile(stagedPath, a.uid)
	if err != nil {
		return "", fmt.Errorf("installer: secure copy read: %w", err)
	}
	// The copy and the PMS code image will coexist, so the move off
	// shared storage needs room for the APK twice — the same economics
	// that drive stores to the SD card in the first place.
	used, capacity, err := a.Dev.FS.MountUsage("/data")
	if err == nil && capacity > 0 && capacity-used < 2*int64(len(data)) {
		return "", fmt.Errorf("installer: secure copy needs %d bytes, %d free: %w",
			2*len(data), capacity-used, vfs.ErrNoSpace)
	}
	if err := a.Dev.FS.MkdirAll(a.internalFilesDir(), a.uid, vfs.ModeDir); err != nil && !errors.Is(err, vfs.ErrExist) {
		return "", fmt.Errorf("installer: secure copy dir: %w", err)
	}
	dest := a.internalFilesDir() + "/secure-" + path.Base(stagedPath)
	if err := a.Dev.FS.WriteFileShared(dest, data, a.uid, vfs.ModeWorldReadable); err != nil {
		return "", fmt.Errorf("installer: secure copy write: %w", err)
	}
	return dest, nil
}
