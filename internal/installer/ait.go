package installer

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/market"
	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

// AIT step numbers (Figure 1).
const (
	StepInvocation = 1
	StepDownload   = 2
	StepTrigger    = 3
	StepInstall    = 4
)

// TraceStep is one entry of an AIT trace — the Figure 1 reproduction.
type TraceStep struct {
	Step   int
	Name   string
	At     time.Duration
	Detail string
}

func (s TraceStep) String() string {
	return fmt.Sprintf("[%8.3fms] step %d %-12s %s",
		float64(s.At)/float64(time.Millisecond), s.Step, s.Name, s.Detail)
}

// Result is the outcome of one App Installation Transaction.
type Result struct {
	Store     string
	Requested string
	Installed *pm.Package
	// Hijacked reports that the package installed at the end of the AIT
	// is not the content the store published.
	Hijacked bool
	Err      error
	Attempts int
	Trace    []TraceStep
}

// Succeeded reports whether some package was installed (hijacked or not).
func (r Result) Succeeded() bool { return r.Err == nil && r.Installed != nil }

// Clean reports a successful, unhijacked install.
func (r Result) Clean() bool { return r.Succeeded() && !r.Hijacked }

// ait tracks one in-flight transaction.
type ait struct {
	app     *App
	listing market.Listing
	result  Result
	done    func(Result)
	// recordedCert is the signer grabbed at download completion when the
	// profile uses signature verification (Section V-A).
	recordedCert sig.Certificate
}

func (t *ait) step(step int, name, detail string) {
	at := t.app.Dev.Sched.Now()
	t.result.Trace = append(t.result.Trace, TraceStep{
		Step: step, Name: name, At: at, Detail: detail,
	})
	t.app.met.track.InstantAt(at, name, detail)
}

func (t *ait) fail(err error) {
	t.result.Err = err
	t.done(t.result)
}

// RequestInstall runs the full AIT for target through this installer's
// profile. done fires (in virtual time) when the transaction reaches a
// terminal state. The caller drives the device scheduler.
func (a *App) RequestInstall(target string, done func(Result)) {
	t := &ait{
		app: a,
		// Presized trace: a clean AIT records ~8 steps, and growing the
		// slice from nil costs four allocations per transaction.
		result: Result{
			Store:     a.Prof.Package,
			Requested: target,
			Trace:     make([]TraceStep, 0, 12),
		},
		done: done,
	}
	if done == nil {
		t.done = func(Result) {}
	}
	a.met.aits.Add(1)
	if a.met.active() {
		start, inner := a.Dev.Sched.Now(), t.done
		t.done = func(r Result) {
			a.met.record(a, start, r)
			inner(r)
		}
	}
	t.step(StepInvocation, "invocation", "install request for "+target)
	listing, ok := a.Store.Lookup(target)
	if !ok {
		t.fail(fmt.Errorf("%s on %s: %w", target, a.Prof.StoreHost, ErrNotInCatalog))
		return
	}
	t.listing = listing
	t.attemptDownload()
}

func (t *ait) attemptDownload() {
	t.result.Attempts++
	t.step(StepDownload, "download", t.listing.URL)
	t.app.download(t.listing, func(path string, err error) {
		if err != nil {
			t.fail(err)
			return
		}
		t.step(StepDownload, "downloaded", path)
		// Section V-A fix: grab the signer certificate the moment the
		// download completes, before any attacker waiting for the
		// verification pass can strike.
		if t.app.Prof.UseSignatureVerification {
			data, err := t.app.Dev.FS.ReadFileShared(path, t.app.uid)
			if err != nil {
				t.fail(fmt.Errorf("installer: signature grab: %w", err))
				return
			}
			parsed, err := apk.Decode(data)
			if err != nil {
				t.fail(fmt.Errorf("installer: signature grab: %w", err))
				return
			}
			t.recordedCert = parsed.Cert()
			t.step(StepDownload, "signature-recorded", t.recordedCert.String())
		}
		// Suggestion 2: move the file out of shared storage before any
		// verification, closing the replacement window. When internal
		// space cannot hold the copy (low-end devices), fall back to
		// SD-card verification — the case the paper covers with the
		// FileObserver-based user-level defense.
		if t.app.Prof.SecureVerify && strings.HasPrefix(path, "/sdcard/") {
			secure, err := t.app.secureCopy(path)
			switch {
			case err == nil:
				t.step(StepDownload, "secure-copy", secure)
				path = secure
			case errors.Is(err, vfs.ErrNoSpace):
				t.step(StepDownload, "secure-copy-skipped", "insufficient internal space; verifying on shared storage")
			default:
				t.fail(err)
				return
			}
		}
		t.verify(path)
	})
}

// verify performs the profile's hash check: VerifyReads sequential reads of
// the staged file, each one an OPEN/ACCESS/CLOSE_NOWRITE sequence — the
// fingerprint the Section III-B attacker counts — with the digest compared
// after the last read.
func (t *ait) verify(path string) {
	if !t.app.Prof.HashCheck {
		t.step(StepTrigger, "verify", "no hash check (ordinary developer)")
		t.gapThenTrigger(path)
		return
	}
	reads := t.app.Prof.VerifyReads
	if reads < 1 {
		reads = 1
	}
	// One closure re-armed per read, not a fresh pair per read: the
	// verification loop runs for every AIT and its closures dominated the
	// installer's share of the arena-reuse allocation profile.
	k := 1
	var read func()
	read = func() {
		data, err := t.app.Dev.FS.ReadFileShared(path, t.app.uid)
		if err != nil {
			t.fail(fmt.Errorf("installer: verify read: %w", err))
			return
		}
		if k < reads {
			k++
			t.app.Dev.Sched.AfterFn(t.app.Prof.VerifyReadTime, read)
			return
		}
		if apk.ContentDigest(data) != t.listing.ContentHash {
			t.step(StepTrigger, "verify", "hash mismatch")
			t.retryOrFail(path)
			return
		}
		t.step(StepTrigger, "verify", "hash ok after "+strconv.Itoa(reads)+" reads")
		t.gapThenTrigger(path)
	}
	t.app.Dev.Sched.AfterFn(t.app.Prof.VerifyReadTime, read)
}

// retryOrFail implements the transparent re-download many stores perform
// when the staged file looks corrupted — which hands the attacker another
// attempt (Section III-B).
func (t *ait) retryOrFail(path string) {
	if t.result.Attempts > t.app.Prof.Redownloads {
		t.fail(fmt.Errorf("%s after %d attempts: %w", path, t.result.Attempts, ErrHashMismatch))
		return
	}
	_ = t.app.Dev.FS.Remove(path, t.app.uid)
	t.step(StepDownload, "redownload", "attempt "+strconv.Itoa(t.result.Attempts+1))
	t.attemptDownload()
}

// gapThenTrigger models the window between verification completion and the
// moment the PMS/PIA opens the file.
func (t *ait) gapThenTrigger(path string) {
	gap := t.app.Dev.Sched.Uniform(t.app.Prof.GapMin, t.app.Prof.GapMax)
	t.app.Dev.Sched.AfterFn(gap, func() { t.trigger(path) })
}

func (t *ait) trigger(path string) {
	if t.app.Prof.Silent {
		if t.app.Prof.UseSignatureVerification {
			t.step(StepTrigger, "trigger", "installPackageWithSignature")
			p, err := t.app.Dev.PMS.InstallPackageWithSignature(t.app.uid, path, t.recordedCert)
			if err != nil && errors.Is(err, pm.ErrSignatureVerify) {
				// The staged file changed hands since the download:
				// treat it like a corrupted download and retry.
				t.step(StepInstall, "install", "signature mismatch at install")
				t.retryOrFail(path)
				return
			}
			t.finishInstall(p, err)
			return
		}
		if t.app.Prof.UseManifestVerification {
			t.step(StepTrigger, "trigger", "installPackageWithVerification")
			p, err := t.app.Dev.PMS.InstallPackageWithVerification(t.app.uid, path, t.listing.ManifestHash)
			t.finishInstall(p, err)
			return
		}
		t.step(StepTrigger, "trigger", "installPackage")
		p, err := t.app.Dev.PMS.InstallPackage(t.app.uid, path)
		t.finishInstall(p, err)
		return
	}
	// PIA path: record manifest, show the consent dialog, then approve.
	t.step(StepTrigger, "trigger", "PackageInstallerActivity")
	sess, err := t.app.Dev.PIA.Begin(path)
	if err != nil {
		t.fail(fmt.Errorf("installer: pia begin: %w", err))
		return
	}
	dialog := t.app.Dev.Sched.Uniform(t.app.Prof.DialogMin, t.app.Prof.DialogMax)
	t.step(StepInstall, "consent", "dialog for "+sess.Prompt().Label)
	t.app.Dev.Sched.AfterFn(dialog, func() {
		p, err := sess.Approve()
		t.finishInstall(p, err)
	})
}

func (t *ait) finishInstall(p *pm.Package, err error) {
	if err != nil {
		t.fail(fmt.Errorf("installer: install: %w", err))
		return
	}
	t.result.Installed = p
	t.result.Hijacked = p.Image().EncodedDigest() != t.listing.ContentHash
	detail := "installed " + p.Name()
	if t.result.Hijacked {
		detail += " (HIJACKED: content differs from store listing)"
	}
	t.step(StepInstall, "installed", detail)
	t.done(t.result)
}
