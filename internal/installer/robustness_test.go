package installer

import (
	"testing"

	"github.com/ghost-installer/gia/internal/intents"
)

// The store interfaces must be robust against malformed input: junk
// payloads may not crash the device or trigger installs.
func TestPushReceiverRejectsMalformedPayloads(t *testing.T) {
	d := bootDev(t)
	_, _ = deployWithTarget(t, d, Xiaomi(), "com.example.app")

	payloads := []string{
		"",                                     // no payload at all
		"not json",                             // unparsable outer
		`{"jsonContent":"also not json"}`,      // unparsable inner
		`{"jsonContent":"{\"type\":\"web\"}"}`, // wrong type
		`{"jsonContent":"{\"type\":\"app\"}"}`, // missing package
		`{"jsonContent":"{\"type\":\"app\",\"packageName\":\"com.not.on.store\"}"}`, // unknown package
	}
	for _, payload := range payloads {
		extras := map[string]string{}
		if payload != "" {
			extras["payload"] = payload
		}
		if _, err := d.AMS.SendBroadcast("com.malware", intents.Intent{
			Action: PushAction("com.xiaomi.market"),
			Extras: extras,
		}); err != nil {
			t.Fatalf("broadcast %q: %v", payload, err)
		}
	}
	d.Run()
	// Nothing beyond the store itself is installed.
	if got := len(d.PMS.Packages()); got != 1 {
		t.Errorf("packages after junk payloads = %d, want 1 (the store)", got)
	}
}

func TestJSBridgeIgnoresMalformedCommands(t *testing.T) {
	d := bootDev(t)
	_, _ = deployWithTarget(t, d, Amazon(), "com.example.app")

	for _, payload := range []string{
		"",                   // no script
		"garbage",            // not verb:arg
		"launch:com.example", // unknown verb
		"install:",           // empty target -> not in catalog, logged
		";;;",                // separators only
	} {
		if err := d.AMS.StartActivity("com.malware", intents.Intent{
			TargetPkg: "com.amazon.venezia", Component: ActivityVenezia,
			SingleTop: true,
			Extras:    map[string]string{"jsPayload": payload},
		}); err != nil {
			t.Fatalf("start with %q: %v", payload, err)
		}
		d.Run()
	}
	if _, ok := d.PMS.Installed("com.example.app"); ok {
		t.Error("junk commands installed the target")
	}
}

func TestRequestInstallNilCallback(t *testing.T) {
	d := bootDev(t)
	app, _ := deployWithTarget(t, d, Baidu(), "com.example.app")
	app.RequestInstall("com.example.app", nil) // must not panic
	d.Run()
	if _, ok := d.PMS.Installed("com.example.app"); !ok {
		t.Error("install with nil callback did not complete")
	}
}

func TestResultHelpers(t *testing.T) {
	var r Result
	if r.Succeeded() || r.Clean() {
		t.Error("zero result reports success")
	}
	r.Err = ErrNotInCatalog
	if r.Succeeded() {
		t.Error("errored result reports success")
	}
}
