// Package pm implements the PackageManagerService (PMS): package
// installation and removal, UID assignment, signature-continuity checks,
// permission definition and granting, and the two install entry points the
// paper analyses — installPackage and installPackageWithVerification
// (AIT Step 4).
//
// Two deliberate weaknesses of the real service are preserved because the
// attacks depend on them:
//
//   - installPackageWithVerification checks only the *manifest* digest, so a
//     repackaged APK with an unchanged manifest passes (Section III-B,
//     "Attack on new Amazon appstore" and "Attack on PIA");
//   - the PMS reads the staged APK with its own identity, so an APK staged
//     in an app-private internal directory must be world-readable — the
//     observation the Section IV measurement classifier is built on.
package pm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

// Errors returned by the service.
var (
	ErrPermissionDenied    = errors.New("pm: caller lacks the required permission")
	ErrNotInstalled        = errors.New("pm: package not installed")
	ErrSignatureMismatch   = errors.New("pm: update signature does not match installed package")
	ErrVersionDowngrade    = errors.New("pm: version downgrade rejected")
	ErrManifestVerify      = errors.New("pm: manifest digest verification failed")
	ErrSignatureVerify     = errors.New("pm: staged apk signature does not match the recorded signer")
	ErrUnreadableAPK       = errors.New("pm: staged apk is not readable by the package manager")
	ErrSharedUIDMismatch   = errors.New("pm: sharedUserId certificate mismatch")
	ErrInsufficientStorage = errors.New("pm: insufficient storage")
)

// FirstAppUID is the first UID handed to installed applications.
const FirstAppUID vfs.UID = 10000

// Broadcast actions emitted on package state changes.
const (
	ActionPackageAdded    = "android.intent.action.PACKAGE_ADDED"
	ActionPackageReplaced = "android.intent.action.PACKAGE_REPLACED"
	ActionPackageRemoved  = "android.intent.action.PACKAGE_REMOVED"
	ActionPackageInstall  = "android.intent.action.PACKAGE_INSTALL"
)

// Event describes a package state change.
type Event struct {
	Action  string
	Package string
	UID     vfs.UID
}

// Package is an installed application.
type Package struct {
	Manifest    apk.Manifest
	Cert        sig.Certificate
	UID         vfs.UID
	SystemImage bool // pre-installed on the factory image
	CodePath    string
	InstallTime time.Duration
	granted     []string // sorted insertion not required; tiny linear list
	image       *apk.APK
}

// Name returns the package name.
func (p *Package) Name() string { return p.Manifest.Package }

// grant records a held permission. A slice beats a map here: most simulated
// packages hold only a couple of permissions, and many none, so lookups are
// a short linear scan and no per-package map is ever allocated.
func (p *Package) grant(name string) {
	if !p.Granted(name) {
		p.granted = append(p.granted, name)
	}
}

// Granted reports whether the package holds the named permission.
func (p *Package) Granted(name string) bool {
	for _, held := range p.granted {
		if held == name {
			return true
		}
	}
	return false
}

// GrantedPerms returns the sorted list of held permissions.
func (p *Package) GrantedPerms() []string {
	out := append([]string(nil), p.granted...)
	sort.Strings(out)
	return out
}

// Image returns the installed APK image.
func (p *Package) Image() *apk.APK { return p.image }

// Options configure a Service.
type Options struct {
	// PlatformKey signs the system image; apps signed with it receive
	// signature and signatureOrSystem permissions.
	PlatformKey *sig.Key
	// RuntimePermissions enables the Android 6.0 model: dangerous
	// permissions are granted on request rather than at install. The
	// STORAGE-group silent grant applies either way.
	RuntimePermissions bool
	// Now supplies virtual time for install timestamps.
	Now func() time.Duration
}

// Service is the PackageManagerService.
type Service struct {
	fs       *vfs.FS
	registry *perm.Registry
	opts     Options

	packages  map[string]*Package
	sharedUID map[string]vfs.UID
	byUID     map[vfs.UID][]*Package
	nextUID   vfs.UID

	listeners []func(Event)
}

// New creates a service over fs with the given permission registry.
func New(fs *vfs.FS, registry *perm.Registry, opts Options) *Service {
	if opts.Now == nil {
		opts.Now = func() time.Duration { return 0 }
	}
	if opts.PlatformKey == nil {
		opts.PlatformKey = sig.NewKey("aosp-platform")
	}
	return &Service{
		fs:        fs,
		registry:  registry,
		opts:      opts,
		packages:  make(map[string]*Package),
		sharedUID: make(map[string]vfs.UID),
		byUID:     make(map[vfs.UID][]*Package),
		nextUID:   FirstAppUID,
	}
}

// Reset returns the service to its just-created state: no packages, no
// shared UIDs, UID allocation rewound and all listeners dropped (the device
// re-subscribes its own wiring after a reset, exactly as Boot does).
func (s *Service) Reset() {
	clear(s.packages)
	clear(s.sharedUID)
	clear(s.byUID)
	s.nextUID = FirstAppUID
	s.listeners = s.listeners[:0]
}

// PlatformCert returns the device's platform certificate.
func (s *Service) PlatformCert() sig.Certificate { return s.opts.PlatformKey.Certificate() }

// Registry exposes the permission registry.
func (s *Service) Registry() *perm.Registry { return s.registry }

// Subscribe registers a listener for package events.
func (s *Service) Subscribe(fn func(Event)) { s.listeners = append(s.listeners, fn) }

func (s *Service) emit(ev Event) {
	for _, fn := range s.listeners {
		fn(ev)
	}
}

// Installed returns the installed package by name.
func (s *Service) Installed(name string) (*Package, bool) {
	p, ok := s.packages[name]
	return p, ok
}

// Packages returns all installed packages sorted by name.
func (s *Service) Packages() []*Package {
	names := make([]string, 0, len(s.packages))
	for name := range s.packages {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Package, 0, len(names))
	for _, name := range names {
		out = append(out, s.packages[name])
	}
	return out
}

// PackagesForUID returns the packages sharing uid.
func (s *Service) PackagesForUID(uid vfs.UID) []*Package {
	return append([]*Package(nil), s.byUID[uid]...)
}

// UIDHolds reports whether any package running as uid holds the permission.
// This is the check the FUSE daemon and component guards consult. System
// UIDs implicitly hold everything.
func (s *Service) UIDHolds(uid vfs.UID, permission string) bool {
	if uid.IsSystem() {
		return true
	}
	for _, p := range s.byUID[uid] {
		if p.Granted(permission) {
			return true
		}
	}
	return false
}

// callerMay reports whether uid may exercise a signatureOrSystem capability
// permission such as INSTALL_PACKAGES.
func (s *Service) callerMay(uid vfs.UID, permission string) bool {
	return s.UIDHolds(uid, permission)
}

// readStaged loads the staged APK with the service's identity.
func (s *Service) readStaged(path string) (*apk.APK, []byte, error) {
	return ReadStaged(s.fs, path)
}

// ReadStaged loads a staged APK the way the real PMS (and PIA) does: with
// the system's own identity. Files inside another app's private
// internal-storage directory are only readable if world-readable; files on
// external storage are always readable to the system. The returned APK has
// a verified signature.
func ReadStaged(fs *vfs.FS, path string) (*apk.APK, []byte, error) {
	info, err := fs.Stat(path)
	if err != nil {
		return nil, nil, fmt.Errorf("stat staged apk: %w", err)
	}
	if strings.HasPrefix(path, "/data/") && !info.Owner.IsSystem() && !info.Mode.WorldReadable() {
		return nil, nil, fmt.Errorf("%s (mode %o): %w", path, info.Mode, ErrUnreadableAPK)
	}
	data, err := fs.ReadFileShared(path, vfs.System)
	if err != nil {
		return nil, nil, fmt.Errorf("read staged apk: %w", err)
	}
	parsed, err := apk.Decode(data)
	if err != nil {
		return nil, nil, fmt.Errorf("parse staged apk: %w", err)
	}
	if err := parsed.VerifySignatureShared(); err != nil {
		return nil, nil, err
	}
	return parsed, data, nil
}

// InstallPackage is PackageManager.installPackage: a silent install on
// behalf of caller, which must hold INSTALL_PACKAGES.
func (s *Service) InstallPackage(caller vfs.UID, stagedPath string) (*Package, error) {
	if !s.callerMay(caller, perm.InstallPackages) {
		return nil, fmt.Errorf("installPackage by uid %d: %w", caller, ErrPermissionDenied)
	}
	return s.install(stagedPath, false)
}

// InstallPackageWithVerification additionally verifies the digest of the
// staged APK's manifest against wantManifest before installing — and
// nothing else, which is why same-manifest repackaging defeats it.
func (s *Service) InstallPackageWithVerification(caller vfs.UID, stagedPath string, wantManifest sig.Digest) (*Package, error) {
	if !s.callerMay(caller, perm.InstallPackages) {
		return nil, fmt.Errorf("installPackageWithVerification by uid %d: %w", caller, ErrPermissionDenied)
	}
	parsed, _, err := s.readStaged(stagedPath)
	if err != nil {
		return nil, err
	}
	if parsed.ManifestDigest() != wantManifest {
		return nil, fmt.Errorf("%s: %w", stagedPath, ErrManifestVerify)
	}
	return s.install(stagedPath, false)
}

// InstallPackageWithSignature is the paper's proposed replacement for
// installPackageWithVerification (Section V-A, "Verification API"): the
// installer records the *signature certificate* of the APK when it is
// downloaded and the PMS verifies the staged file still carries it at
// install time. Unlike the manifest-only check, a same-manifest repackage
// cannot pass: the repackager cannot reproduce the original signature.
func (s *Service) InstallPackageWithSignature(caller vfs.UID, stagedPath string, wantCert sig.Certificate) (*Package, error) {
	if !s.callerMay(caller, perm.InstallPackages) {
		return nil, fmt.Errorf("installPackageWithSignature by uid %d: %w", caller, ErrPermissionDenied)
	}
	parsed, _, err := s.readStaged(stagedPath)
	if err != nil {
		return nil, err
	}
	if !parsed.Cert().Equal(wantCert) {
		return nil, fmt.Errorf("%s signed by %s, expected %s: %w",
			stagedPath, parsed.Cert(), wantCert, ErrSignatureVerify)
	}
	return s.install(stagedPath, false)
}

// InstallSystem installs a pre-built APK as part of the factory image,
// bypassing caller checks. Used when booting a device profile.
func (s *Service) InstallSystem(image *apk.APK) (*Package, error) {
	return s.installParsed(image, "", true)
}

// InstallFromParsed installs an already-parsed APK (used by the PIA, which
// has read and verified the file itself).
func (s *Service) InstallFromParsed(image *apk.APK) (*Package, error) {
	return s.installParsed(image, "", false)
}

func (s *Service) install(stagedPath string, system bool) (*Package, error) {
	parsed, data, err := s.readStaged(stagedPath)
	if err != nil {
		return nil, err
	}
	p, err := s.installParsed(parsed, stagedPath, system)
	if err != nil {
		return nil, err
	}
	// Copy the code image into /data/app — the second copy that makes
	// internal-storage staging cost twice the APK size.
	codePath := "/data/app/" + p.Name() + ".apk"
	if err := s.fs.MkdirAll("/data/app", vfs.System, vfs.ModeDir); err != nil {
		return nil, fmt.Errorf("prepare /data/app: %w", err)
	}
	if err := s.fs.WriteFileShared(codePath, data, vfs.System, vfs.ModePrivate); err != nil {
		s.removeState(p)
		if errors.Is(err, vfs.ErrNoSpace) {
			return nil, fmt.Errorf("copy code image: %w", ErrInsufficientStorage)
		}
		return nil, fmt.Errorf("copy code image: %w", err)
	}
	p.CodePath = codePath
	return p, nil
}

func (s *Service) installParsed(image *apk.APK, stagedPath string, system bool) (*Package, error) {
	if err := image.VerifySignatureShared(); err != nil {
		return nil, err
	}
	m := image.Manifest
	replaced := false
	if existing, ok := s.packages[m.Package]; ok {
		// Signature continuity: updates must come from the same signer.
		if !existing.Cert.Equal(image.Cert()) {
			return nil, fmt.Errorf("%s: %w", m.Package, ErrSignatureMismatch)
		}
		if m.VersionCode < existing.Manifest.VersionCode {
			return nil, fmt.Errorf("%s: %d < %d: %w", m.Package, m.VersionCode, existing.Manifest.VersionCode, ErrVersionDowngrade)
		}
		s.removeState(existing)
		replaced = true
	}
	uid, err := s.assignUID(m, image.Cert())
	if err != nil {
		return nil, err
	}
	p := &Package{
		Manifest:    m,
		Cert:        image.Cert(),
		UID:         uid,
		SystemImage: system,
		InstallTime: s.opts.Now(),
		image:       image,
	}
	// Define the manifest's permissions. First definer wins: a name
	// already defined (possibly by a Hare hijacker) is silently kept.
	for _, def := range m.DefinesPerms {
		level, err := perm.ParseLevel(def.ProtectionLevel)
		if err != nil {
			return nil, fmt.Errorf("%s defines %s: %w", m.Package, def.Name, err)
		}
		_ = s.registry.Define(perm.Definition{
			Name: def.Name, Level: level, DefinedBy: m.Package,
		})
	}
	s.grantPermissions(p)
	s.packages[m.Package] = p
	s.byUID[uid] = append(s.byUID[uid], p)
	_ = stagedPath // retained for trace tooling
	action := ActionPackageAdded
	if replaced {
		action = ActionPackageReplaced
	}
	s.emit(Event{Action: action, Package: m.Package, UID: uid})
	return p, nil
}

// Uninstall removes a package. The caller must hold DELETE_PACKAGES or be a
// system process.
func (s *Service) Uninstall(caller vfs.UID, name string) error {
	if !s.callerMay(caller, perm.DeletePackages) {
		return fmt.Errorf("uninstall %s by uid %d: %w", name, caller, ErrPermissionDenied)
	}
	p, ok := s.packages[name]
	if !ok {
		return fmt.Errorf("%s: %w", name, ErrNotInstalled)
	}
	s.removeState(p)
	if p.CodePath != "" {
		_ = s.fs.Remove(p.CodePath, vfs.System)
	}
	// Removing the definer leaves other users of its permissions hanging —
	// a Hare situation.
	s.registry.Undefine(name)
	s.emit(Event{Action: ActionPackageRemoved, Package: name, UID: p.UID})
	return nil
}

func (s *Service) removeState(p *Package) {
	delete(s.packages, p.Name())
	peers := s.byUID[p.UID]
	for i, other := range peers {
		if other == p {
			s.byUID[p.UID] = append(peers[:i:i], peers[i+1:]...)
			break
		}
	}
	if len(s.byUID[p.UID]) == 0 {
		delete(s.byUID, p.UID)
	}
}

func (s *Service) assignUID(m apk.Manifest, cert sig.Certificate) (vfs.UID, error) {
	if m.SharedUserID != "" {
		if uid, ok := s.sharedUID[m.SharedUserID]; ok {
			// Every member of a shared UID must share a certificate.
			for _, peer := range s.byUID[uid] {
				if !peer.Cert.Equal(cert) {
					return 0, fmt.Errorf("sharedUserId %s: %w", m.SharedUserID, ErrSharedUIDMismatch)
				}
			}
			return uid, nil
		}
		uid := s.nextUID
		s.nextUID++
		s.sharedUID[m.SharedUserID] = uid
		return uid, nil
	}
	uid := s.nextUID
	s.nextUID++
	return uid, nil
}

// grantPermissions applies the protection-level rules to every permission
// the manifest requests.
func (s *Service) grantPermissions(p *Package) {
	if p.granted == nil && len(p.Manifest.UsesPerms) > 0 {
		p.granted = make([]string, 0, len(p.Manifest.UsesPerms))
	}
	for _, name := range p.Manifest.UsesPerms {
		def, ok := s.registry.Lookup(name)
		if !ok {
			// Hanging reference: used but undefined. Not granted — but
			// grabbable by whoever defines it first.
			continue
		}
		switch def.Level {
		case perm.Normal:
			p.grant(name)
		case perm.Dangerous:
			if !s.opts.RuntimePermissions {
				p.grant(name)
			}
		case perm.Signature:
			if s.definerCert(def).Equal(p.Cert) {
				p.grant(name)
			}
		case perm.SignatureOrSystem:
			if s.definerCert(def).Equal(p.Cert) || p.SystemImage || p.Cert.Equal(s.PlatformCert()) {
				p.grant(name)
			}
		}
	}
}

// definerCert resolves the certificate that owns a permission definition.
func (s *Service) definerCert(def perm.Definition) sig.Certificate {
	if def.DefinedBy == "android" {
		return s.PlatformCert()
	}
	if definer, ok := s.packages[def.DefinedBy]; ok {
		return definer.Cert
	}
	return sig.Certificate{}
}

// RequestPermission implements the runtime (Android 6.0) grant flow for
// dangerous permissions. If the app already holds another permission in the
// same group, the new one is granted silently, without consulting the user —
// the STORAGE-group behaviour the adversary exploits (Section III-A).
// Otherwise the grant depends on userApproves.
func (s *Service) RequestPermission(pkgName, permission string, userApproves bool) (granted, silent bool, err error) {
	p, ok := s.packages[pkgName]
	if !ok {
		return false, false, fmt.Errorf("%s: %w", pkgName, ErrNotInstalled)
	}
	if !p.Manifest.Uses(permission) {
		return false, false, fmt.Errorf("%s does not declare %s: %w", pkgName, permission, ErrPermissionDenied)
	}
	def, ok := s.registry.Lookup(permission)
	if !ok {
		return false, false, nil
	}
	if def.Level != perm.Dangerous {
		return p.Granted(permission), false, nil
	}
	if p.Granted(permission) {
		return true, true, nil
	}
	// Same-group silent grant.
	for _, held := range p.granted {
		if s.registry.SameGroup(held, permission) {
			p.grant(permission)
			return true, true, nil
		}
	}
	if userApproves {
		p.grant(permission)
		return true, false, nil
	}
	return false, false, nil
}

// Grant force-grants a permission (used to model pre-granted permissions on
// factory images).
func (s *Service) Grant(pkgName, permission string) error {
	p, ok := s.packages[pkgName]
	if !ok {
		return fmt.Errorf("%s: %w", pkgName, ErrNotInstalled)
	}
	p.grant(permission)
	return nil
}
