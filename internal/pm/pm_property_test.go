package pm

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

// Property: whatever subset of permissions an app requests, the grant set
// is a subset of the request set; normal permissions are always granted;
// undefined names never are; signatureOrSystem never goes to a
// non-platform, non-system app.
func TestPropertyGrantRules(t *testing.T) {
	pool := []string{
		perm.Internet,                // normal -> always granted
		perm.ReadContacts,            // dangerous -> granted pre-M
		perm.InstallPackages,         // signatureOrSystem -> never for ordinary apps
		"com.undefined.NOPE",         // hanging -> never granted
		perm.KillBackgroundProcesses, // normal
	}
	seq := 0
	f := func(mask uint8) bool {
		seq++
		s, fs := newPropService(t)
		installer := installSystemInstaller(t, s)
		var uses []string
		for i, p := range pool {
			if mask&(1<<i) != 0 {
				uses = append(uses, p)
			}
		}
		pkgName := fmt.Sprintf("com.prop.app%d", seq)
		a := apk.Build(apk.Manifest{Package: pkgName, VersionCode: 1, Label: "P", UsesPerms: uses},
			nil, sig.NewKey(pkgName))
		if err := fs.WriteFile("/sdcard/p.apk", a.Encode(), vfs.Root, vfs.ModeShared); err != nil {
			return false
		}
		p, err := s.InstallPackage(installer, "/sdcard/p.apk")
		if err != nil {
			return false
		}
		for _, granted := range p.GrantedPerms() {
			if !p.Manifest.Uses(granted) {
				return false // granted something never requested
			}
		}
		for _, u := range uses {
			switch u {
			case perm.Internet, perm.KillBackgroundProcesses, perm.ReadContacts:
				if !p.Granted(u) {
					return false
				}
			case perm.InstallPackages, "com.undefined.NOPE":
				if p.Granted(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func newPropService(t *testing.T) (*Service, *vfs.FS) {
	t.Helper()
	return newTestService(t, Options{})
}

// Property: install → uninstall always returns the package table and the
// permission registry to their previous state (no leaked definitions).
func TestPropertyInstallUninstallRoundTrip(t *testing.T) {
	s, fs := newTestService(t, Options{})
	installer := installSystemInstaller(t, s)
	seq := 0
	f := func(defineCount uint8) bool {
		seq++
		pkgName := fmt.Sprintf("com.rt.app%d", seq)
		var defs []apk.PermissionDef
		for i := 0; i < int(defineCount%5); i++ {
			defs = append(defs, apk.PermissionDef{
				Name:            fmt.Sprintf("%s.P%d", pkgName, i),
				ProtectionLevel: "normal",
			})
		}
		before := len(s.Registry().Names())
		beforePkgs := len(s.Packages())
		a := apk.Build(apk.Manifest{Package: pkgName, VersionCode: 1, Label: "RT", DefinesPerms: defs},
			nil, sig.NewKey(pkgName))
		if err := fs.WriteFile("/sdcard/rt.apk", a.Encode(), vfs.Root, vfs.ModeShared); err != nil {
			return false
		}
		if _, err := s.InstallPackage(installer, "/sdcard/rt.apk"); err != nil {
			return false
		}
		if len(s.Registry().Names()) != before+len(defs) {
			return false
		}
		if err := s.Uninstall(installer, pkgName); err != nil {
			return false
		}
		return len(s.Registry().Names()) == before && len(s.Packages()) == beforePkgs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
