package pm

import (
	"errors"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

func newTestService(t *testing.T, opts Options) (*Service, *vfs.FS) {
	t.Helper()
	fs := vfs.New(func() time.Duration { return 0 })
	for _, dir := range []string{"/data/app", "/data/data", "/sdcard"} {
		if err := fs.MkdirAll(dir, vfs.Root, vfs.ModeDir); err != nil {
			t.Fatal(err)
		}
	}
	return New(fs, perm.NewRegistry(), opts), fs
}

// installSystemInstaller installs a platform-ish installer app holding
// INSTALL_PACKAGES and DELETE_PACKAGES and returns its UID.
func installSystemInstaller(t *testing.T, s *Service) vfs.UID {
	t.Helper()
	m := apk.Manifest{
		Package:     "com.vendor.installer",
		VersionCode: 1,
		Label:       "Installer",
		UsesPerms:   []string{perm.InstallPackages, perm.DeletePackages, perm.WriteExternalStorage},
	}
	p, err := s.InstallSystem(apk.Build(m, nil, sig.NewKey("vendor-installer")))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Granted(perm.InstallPackages) {
		t.Fatal("system installer not granted INSTALL_PACKAGES")
	}
	return p.UID
}

func buildAPK(pkg string, version int, key *sig.Key, uses ...string) *apk.APK {
	return apk.Build(apk.Manifest{
		Package:     pkg,
		VersionCode: version,
		Label:       pkg,
		UsesPerms:   uses,
	}, map[string][]byte{"classes.dex": []byte("code-" + pkg)}, key)
}

func stage(t *testing.T, fs *vfs.FS, path string, a *apk.APK, owner vfs.UID, mode vfs.Mode) {
	t.Helper()
	if err := fs.WriteFile(path, a.Encode(), owner, mode); err != nil {
		t.Fatal(err)
	}
}

func TestInstallRequiresInstallPackages(t *testing.T) {
	s, fs := newTestService(t, Options{})
	stage(t, fs, "/sdcard/app.apk", buildAPK("com.x", 1, sig.NewKey("dev")), vfs.Root, vfs.ModeShared)

	if _, err := s.InstallPackage(vfs.UID(10050), "/sdcard/app.apk"); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("unprivileged install = %v, want ErrPermissionDenied", err)
	}
	installer := installSystemInstaller(t, s)
	p, err := s.InstallPackage(installer, "/sdcard/app.apk")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "com.x" || p.UID < FirstAppUID {
		t.Errorf("installed package = %+v", p)
	}
	if p.CodePath != "/data/app/com.x.apk" || !fs.Exists(p.CodePath) {
		t.Errorf("code path = %q", p.CodePath)
	}
}

func TestInternalStagingMustBeWorldReadable(t *testing.T) {
	s, fs := newTestService(t, Options{})
	installer := installSystemInstaller(t, s)
	owner := vfs.UID(10040)
	if err := fs.MkdirAll("/data/data/com.store/files", owner, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	a := buildAPK("com.y", 1, sig.NewKey("dev"))

	// Private mode: the PMS cannot read it (the Stack Overflow trap).
	stage(t, fs, "/data/data/com.store/files/y.apk", a, owner, vfs.ModePrivate)
	if _, err := s.InstallPackage(installer, "/data/data/com.store/files/y.apk"); !errors.Is(err, ErrUnreadableAPK) {
		t.Fatalf("private staged install = %v, want ErrUnreadableAPK", err)
	}

	// World-readable fixes it — the marker the Section IV classifier keys on.
	if err := fs.Chmod("/data/data/com.store/files/y.apk", vfs.ModeWorldReadable, owner); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallPackage(installer, "/data/data/com.store/files/y.apk"); err != nil {
		t.Fatalf("world-readable staged install: %v", err)
	}
}

func TestSignatureContinuityOnUpdate(t *testing.T) {
	s, fs := newTestService(t, Options{})
	installer := installSystemInstaller(t, s)
	dev := sig.NewKey("dev")
	stage(t, fs, "/sdcard/v1.apk", buildAPK("com.app", 1, dev), vfs.Root, vfs.ModeShared)
	if _, err := s.InstallPackage(installer, "/sdcard/v1.apk"); err != nil {
		t.Fatal(err)
	}

	// Same signer, higher version: OK, emits PACKAGE_REPLACED.
	var actions []string
	s.Subscribe(func(ev Event) { actions = append(actions, ev.Action) })
	stage(t, fs, "/sdcard/v2.apk", buildAPK("com.app", 2, dev), vfs.Root, vfs.ModeShared)
	if _, err := s.InstallPackage(installer, "/sdcard/v2.apk"); err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0] != ActionPackageReplaced {
		t.Errorf("actions = %v", actions)
	}

	// Different signer: rejected.
	stage(t, fs, "/sdcard/v3.apk", buildAPK("com.app", 3, sig.NewKey("attacker")), vfs.Root, vfs.ModeShared)
	if _, err := s.InstallPackage(installer, "/sdcard/v3.apk"); !errors.Is(err, ErrSignatureMismatch) {
		t.Errorf("wrong-signer update = %v, want ErrSignatureMismatch", err)
	}

	// Downgrade: rejected.
	stage(t, fs, "/sdcard/v0.apk", buildAPK("com.app", 1, dev), vfs.Root, vfs.ModeShared)
	if _, err := s.InstallPackage(installer, "/sdcard/v0.apk"); !errors.Is(err, ErrVersionDowngrade) {
		t.Errorf("downgrade = %v, want ErrVersionDowngrade", err)
	}
}

func TestInstallWithVerificationChecksOnlyManifest(t *testing.T) {
	s, fs := newTestService(t, Options{})
	installer := installSystemInstaller(t, s)
	dev := sig.NewKey("bank")
	attacker := sig.NewKey("attacker")
	orig := buildAPK("com.bank", 1, dev)
	stage(t, fs, "/sdcard/bank.apk", orig, vfs.Root, vfs.ModeShared)

	// Wrong manifest digest: rejected.
	other := buildAPK("com.other", 1, dev)
	if _, err := s.InstallPackageWithVerification(installer, "/sdcard/bank.apk", other.ManifestDigest()); !errors.Is(err, ErrManifestVerify) {
		t.Fatalf("wrong digest = %v, want ErrManifestVerify", err)
	}
	// Correct digest: accepted.
	if _, err := s.InstallPackageWithVerification(installer, "/sdcard/bank.apk", orig.ManifestDigest()); err != nil {
		t.Fatal(err)
	}
	if err := s.Uninstall(installer, "com.bank"); err != nil {
		t.Fatal(err)
	}

	// The paper's weakness: a repackaged APK with the same manifest
	// (malicious payload, attacker's signature) passes verification.
	evil := apk.Repackage(orig, map[string][]byte{"classes.dex": []byte("malware")}, attacker, false)
	stage(t, fs, "/sdcard/bank2.apk", evil, vfs.Root, vfs.ModeShared)
	p, err := s.InstallPackageWithVerification(installer, "/sdcard/bank2.apk", orig.ManifestDigest())
	if err != nil {
		t.Fatalf("same-manifest repackage rejected: %v — the modelled API must accept it", err)
	}
	if !p.Cert.Equal(attacker.Certificate()) {
		t.Error("installed package does not carry the attacker's certificate")
	}
}

func TestPermissionGrantLevels(t *testing.T) {
	platform := sig.NewKey("samsung-platform")
	s, fs := newTestService(t, Options{PlatformKey: platform})
	installer := installSystemInstaller(t, s)

	// A defining app with a signature-level permission.
	definer := apk.Build(apk.Manifest{
		Package: "com.definer", VersionCode: 1, Label: "Definer",
		DefinesPerms: []apk.PermissionDef{{Name: "com.definer.API", ProtectionLevel: "signature"}},
	}, nil, sig.NewKey("definer-key"))
	if _, err := s.InstallSystem(definer); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name     string
		pkg      string
		key      *sig.Key
		uses     string
		wantHeld bool
	}{
		{name: "normal auto-granted", pkg: "com.n", key: sig.NewKey("a"), uses: perm.Internet, wantHeld: true},
		{name: "dangerous granted at install (pre-M)", pkg: "com.d", key: sig.NewKey("b"), uses: perm.ReadContacts, wantHeld: true},
		{name: "signature denied to other signer", pkg: "com.s1", key: sig.NewKey("c"), uses: "com.definer.API", wantHeld: false},
		{name: "signature granted to same signer", pkg: "com.s2", key: sig.NewKey("definer-key"), uses: "com.definer.API", wantHeld: true},
		{name: "signatureOrSystem denied to ordinary app", pkg: "com.p1", key: sig.NewKey("d"), uses: perm.InstallPackages, wantHeld: false},
		{name: "signatureOrSystem granted to platform-signed app", pkg: "com.p2", key: platform, uses: perm.InstallPackages, wantHeld: true},
		{name: "hanging permission not granted", pkg: "com.h", key: sig.NewKey("e"), uses: "com.undefined.PERM", wantHeld: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			stage(t, fs, "/sdcard/t.apk", buildAPK(tt.pkg, 1, tt.key, tt.uses), vfs.Root, vfs.ModeShared)
			p, err := s.InstallPackage(installer, "/sdcard/t.apk")
			if err != nil {
				t.Fatal(err)
			}
			if p.Granted(tt.uses) != tt.wantHeld {
				t.Errorf("Granted(%s) = %v, want %v", tt.uses, p.Granted(tt.uses), tt.wantHeld)
			}
		})
	}
}

func TestHareHijack(t *testing.T) {
	platform := sig.NewKey("samsung-platform")
	s, fs := newTestService(t, Options{PlatformKey: platform})
	installer := installSystemInstaller(t, s)
	harePerm := "com.vlingo.midas.contacts.permission.READ"

	// The malware arrives first, defines the hanging permission at normal
	// level and requests it.
	malware := apk.Build(apk.Manifest{
		Package: "com.malware", VersionCode: 1, Label: "Game",
		UsesPerms:    []string{harePerm},
		DefinesPerms: []apk.PermissionDef{{Name: harePerm, ProtectionLevel: "normal"}},
	}, nil, sig.NewKey("attacker"))
	stage(t, fs, "/sdcard/m.apk", malware, vfs.Root, vfs.ModeShared)
	mp, err := s.InstallPackage(installer, "/sdcard/m.apk")
	if err != nil {
		t.Fatal(err)
	}
	if !mp.Granted(harePerm) {
		t.Fatal("malware not granted its self-defined permission")
	}

	// The Hare-creating system app (S-Voice) uses the permission but does
	// not define it. Its definition attempt is moot — the name is taken.
	svoice := apk.Build(apk.Manifest{
		Package: "com.vlingo.midas", VersionCode: 1, Label: "S Voice",
		UsesPerms: []string{harePerm},
		Components: []apk.Component{
			{Type: apk.ComponentService, Name: "com.vlingo.midas.Contacts", Exported: true, GuardedBy: harePerm},
		},
	}, nil, platform)
	stage(t, fs, "/sdcard/s.apk", svoice, vfs.Root, vfs.ModeShared)
	if _, err := s.InstallPackage(installer, "/sdcard/s.apk"); err != nil {
		t.Fatal(err)
	}
	if got := s.Registry().DefinerOf(harePerm); got != "com.malware" {
		t.Errorf("definer = %q, want com.malware", got)
	}
	// The malware's UID passes the guard on the contacts service.
	if !s.UIDHolds(mp.UID, harePerm) {
		t.Error("malware UID does not hold the hijacked permission")
	}
}

func TestRuntimeStorageGroupSilentGrant(t *testing.T) {
	s, fs := newTestService(t, Options{RuntimePermissions: true})
	installer := installSystemInstaller(t, s)
	a := buildAPK("com.game", 1, sig.NewKey("dev"), perm.ReadExternalStorage, perm.WriteExternalStorage)
	stage(t, fs, "/sdcard/g.apk", a, vfs.Root, vfs.ModeShared)
	p, err := s.InstallPackage(installer, "/sdcard/g.apk")
	if err != nil {
		t.Fatal(err)
	}
	if p.Granted(perm.ReadExternalStorage) || p.Granted(perm.WriteExternalStorage) {
		t.Fatal("dangerous permissions granted at install under the runtime model")
	}

	// The user approves READ for a legitimate purpose...
	granted, silent, err := s.RequestPermission("com.game", perm.ReadExternalStorage, true)
	if err != nil || !granted || silent {
		t.Fatalf("READ request = %v/%v/%v", granted, silent, err)
	}
	// ...and WRITE arrives silently via the shared STORAGE group.
	granted, silent, err = s.RequestPermission("com.game", perm.WriteExternalStorage, false /* user would say no */)
	if err != nil || !granted || !silent {
		t.Fatalf("WRITE request = granted=%v silent=%v err=%v, want silent grant", granted, silent, err)
	}
}

func TestRequestPermissionDeniedWithoutApproval(t *testing.T) {
	s, fs := newTestService(t, Options{RuntimePermissions: true})
	installer := installSystemInstaller(t, s)
	a := buildAPK("com.app", 1, sig.NewKey("dev"), perm.ReadContacts)
	stage(t, fs, "/sdcard/a.apk", a, vfs.Root, vfs.ModeShared)
	if _, err := s.InstallPackage(installer, "/sdcard/a.apk"); err != nil {
		t.Fatal(err)
	}
	granted, _, err := s.RequestPermission("com.app", perm.ReadContacts, false)
	if err != nil || granted {
		t.Errorf("unapproved request = %v, %v", granted, err)
	}
	// Undeclared permissions cannot be requested.
	if _, _, err := s.RequestPermission("com.app", perm.Internet, true); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("undeclared request = %v", err)
	}
}

func TestSharedUserID(t *testing.T) {
	s, fs := newTestService(t, Options{})
	installer := installSystemInstaller(t, s)
	key := sig.NewKey("suite")
	build := func(pkg string, k *sig.Key) *apk.APK {
		return apk.Build(apk.Manifest{Package: pkg, VersionCode: 1, Label: pkg, SharedUserID: "com.suite.shared"}, nil, k)
	}
	stage(t, fs, "/sdcard/a.apk", build("com.suite.a", key), vfs.Root, vfs.ModeShared)
	pa, err := s.InstallPackage(installer, "/sdcard/a.apk")
	if err != nil {
		t.Fatal(err)
	}
	stage(t, fs, "/sdcard/b.apk", build("com.suite.b", key), vfs.Root, vfs.ModeShared)
	pb, err := s.InstallPackage(installer, "/sdcard/b.apk")
	if err != nil {
		t.Fatal(err)
	}
	if pa.UID != pb.UID {
		t.Errorf("shared uid mismatch: %d vs %d", pa.UID, pb.UID)
	}
	if got := s.PackagesForUID(pa.UID); len(got) != 2 {
		t.Errorf("PackagesForUID = %d packages", len(got))
	}
	// A different signer cannot join the shared UID.
	stage(t, fs, "/sdcard/c.apk", build("com.suite.c", sig.NewKey("intruder")), vfs.Root, vfs.ModeShared)
	if _, err := s.InstallPackage(installer, "/sdcard/c.apk"); !errors.Is(err, ErrSharedUIDMismatch) {
		t.Errorf("intruder join = %v, want ErrSharedUIDMismatch", err)
	}
}

func TestUninstallCreatesHangingPermissions(t *testing.T) {
	s, fs := newTestService(t, Options{})
	installer := installSystemInstaller(t, s)
	definer := apk.Build(apk.Manifest{
		Package: "com.definer", VersionCode: 1, Label: "D",
		DefinesPerms: []apk.PermissionDef{{Name: "com.definer.P", ProtectionLevel: "normal"}},
	}, nil, sig.NewKey("d"))
	stage(t, fs, "/sdcard/d.apk", definer, vfs.Root, vfs.ModeShared)
	if _, err := s.InstallPackage(installer, "/sdcard/d.apk"); err != nil {
		t.Fatal(err)
	}
	if !s.Registry().Defined("com.definer.P") {
		t.Fatal("permission not defined on install")
	}
	if err := s.Uninstall(installer, "com.definer"); err != nil {
		t.Fatal(err)
	}
	if s.Registry().Defined("com.definer.P") {
		t.Error("permission survives uninstall — no Hare possible")
	}
	if _, ok := s.Installed("com.definer"); ok {
		t.Error("package still installed")
	}
	if err := s.Uninstall(installer, "com.definer"); !errors.Is(err, ErrNotInstalled) {
		t.Errorf("double uninstall = %v", err)
	}
	if err := s.Uninstall(vfs.UID(10055), "whatever"); !errors.Is(err, ErrPermissionDenied) {
		t.Errorf("unprivileged uninstall = %v", err)
	}
}

func TestInsufficientStorage(t *testing.T) {
	s, fs := newTestService(t, Options{})
	installer := installSystemInstaller(t, s)
	a := buildAPK("com.big", 1, sig.NewKey("dev"))
	encoded := a.Encode()
	// Capacity smaller than the code-image copy.
	if err := fs.Mount("/data", nil, int64(len(encoded))-1); err != nil {
		t.Fatal(err)
	}
	stage(t, fs, "/sdcard/big.apk", a, vfs.Root, vfs.ModeShared)
	if _, err := s.InstallPackage(installer, "/sdcard/big.apk"); !errors.Is(err, ErrInsufficientStorage) {
		t.Fatalf("over-capacity install = %v, want ErrInsufficientStorage", err)
	}
	if _, ok := s.Installed("com.big"); ok {
		t.Error("failed install left package state behind")
	}
}

func TestTruncatedStagedAPKRejected(t *testing.T) {
	s, fs := newTestService(t, Options{})
	installer := installSystemInstaller(t, s)
	data := buildAPK("com.t", 1, sig.NewKey("dev")).Encode()
	if err := fs.WriteFile("/sdcard/t.apk", data[:len(data)/2], vfs.Root, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallPackage(installer, "/sdcard/t.apk"); !errors.Is(err, apk.ErrTruncated) && !errors.Is(err, apk.ErrCorrupt) {
		t.Errorf("truncated install = %v", err)
	}
}

func TestUIDHoldsSystemImplicit(t *testing.T) {
	s, _ := newTestService(t, Options{})
	if !s.UIDHolds(vfs.System, perm.InstallPackages) {
		t.Error("system UID lacks implicit permissions")
	}
	if s.UIDHolds(vfs.UID(10099), perm.InstallPackages) {
		t.Error("unknown app UID holds permissions")
	}
}
