package experiment

import (
	"fmt"

	"github.com/ghost-installer/gia/internal/analysis"
	"github.com/ghost-installer/gia/internal/corpus"
	"github.com/ghost-installer/gia/internal/measure"
)

// NewCorpus builds the measurement corpus at the given scale (1.0 = the
// paper's population sizes).
func NewCorpus(seed int64, scale float64) *corpus.Corpus {
	return corpus.Generate(corpus.Config{Seed: seed, Scale: scale})
}

// TableI reproduces the attack/AIT-step summary.
func TableI() Table {
	return Table{
		ID:     "Table I",
		Title:  "Summary of AIT problems",
		Header: []string{"Section", "Attack Name", "AIT steps [Step No]"},
		Rows: [][]string{
			{"3.2", "Hijacking Installation", "Installation Trigger[3]"},
			{"3.2", "Hijacking Installation", "APK Install[4]"},
			{"3.3", "Exploiting DM", "APK Download[2]"},
			{"3.4", "Attacking Installer Interfaces", "AIT Invocation[1]"},
		},
	}
}

// TableII classifies the top Google Play apps.
func TableII(c *corpus.Corpus) Table {
	return tableII(c, measure.ScanOptions{})
}

// tableII runs the full artifact pipeline — build each APK, scan it with
// the analysis engine (served from the shared content-addressed cache
// unless o.NoCache), classify — instead of reading classifications off the
// ground-truth metadata. TestTableIIMatchesGroundTruth pins that the
// measured values are unchanged.
func tableII(c *corpus.Corpus, o measure.ScanOptions) Table {
	cls := measure.ClassifyArtifactsOpts(c.PlayApps, o)
	writeExt := measure.WriteExternalCount(c.PlayApps)
	return classificationTable("Table II",
		"Potentially vulnerable Google Play apps due to SD-Card usage", cls,
		fmt.Sprintf("%d/%d apps request WRITE_EXTERNAL_STORAGE (sufficient for hijack)", writeExt, cls.Total))
}

// TableIII classifies the unique pre-installed apps.
func TableIII(c *corpus.Corpus) Table {
	return tableIII(c, measure.ScanOptions{})
}

// tableIII is TableIII over the artifact pipeline; see tableII.
func tableIII(c *corpus.Corpus, o measure.ScanOptions) Table {
	unique := measure.UniquePreinstalled(c.Images)
	cls := measure.ClassifyArtifactsOpts(unique, o)
	return classificationTable("Table III",
		"Potentially vulnerable pre-installed apps due to SD-Card usage", cls,
		fmt.Sprintf("deduplicated by package name across %d images", len(c.Images)))
}

func classificationTable(id, title string, cls measure.Classification, note string) Table {
	return Table{
		ID:     id,
		Title:  title,
		Header: []string{"Type", "SD-Card (potentially vulnerable)", "Internal Storage (potentially secure)"},
		Rows: [][]string{
			{"Excluding Unknown Apps",
				ratio(cls.Vulnerable, cls.Known()),
				ratio(cls.Secure, cls.Known())},
			{"Including Unknown Apps",
				ratio(cls.Vulnerable, cls.Installers),
				ratio(cls.Secure, cls.Installers)},
		},
		Notes: []string{
			fmt.Sprintf("%d of %d apps contain installation API calls", cls.Installers, cls.Total),
			note,
		},
	}
}

// TableIV counts hard-coded market URLs/schemes among Play apps.
func TableIV(c *corpus.Corpus) Table {
	b := measure.RedirectCensus(c.PlayApps)
	return Table{
		ID:     "Table IV",
		Title:  "Number of fixed url or redirection scheme",
		Header: []string{"# of hardcoded url or scheme", "1", "<=2", "<=4", "<=8"},
		Rows: [][]string{
			{"# apps",
				ratio(b.Exactly1, b.Total),
				ratio(b.AtMost2, b.Total),
				ratio(b.AtMost4, b.Total),
				ratio(b.AtMost8, b.Total)},
		},
		Notes: []string{
			fmt.Sprintf("%s of the top apps redirect users with a fixed URL or scheme",
				pct(float64(b.Redirecting)/float64(b.Total))),
		},
	}
}

// TableVI reports the per-vendor INSTALL_PACKAGES census.
func TableVI(c *corpus.Corpus) Table {
	rows := measure.InstallPackagesCensus(c.Images)
	t := Table{
		ID:     "Table VI",
		Title:  "Average number of system apps and INSTALL_PACKAGES ratio per vendor",
		Header: []string{"Vendor", "Images", "Avg system apps", "Avg w/ INSTALL_PACKAGES", "Ratio"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Vendor,
			fmt.Sprintf("%d", r.Images),
			fmt.Sprintf("%.1f", r.AvgSystemApps),
			fmt.Sprintf("%.1f", r.AvgWithInstall),
			pct(r.InstallPkgRatio),
		})
	}
	return t
}

// KeyStudy reports the platform-key usage findings.
func KeyStudy(c *corpus.Corpus) Table {
	rows := measure.PlatformKeyStudy(c)
	t := Table{
		ID:     "Key Study",
		Title:  "Platform key usage (Section IV-B)",
		Header: []string{"Vendor", "Distinct platform keys", "Platform-signed apps/device", "Distinct platform-signed apps", "Store apps w/ platform key"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Vendor,
			fmt.Sprintf("%d", r.DistinctKeys),
			fmt.Sprintf("%.0f", r.AvgPerDevice),
			fmt.Sprintf("%d", r.DistinctTotal),
			fmt.Sprintf("%d", r.StoreAppsWithKey),
		})
	}
	t.Notes = append(t.Notes, "each vendor signs every device model with a single platform key")
	return t
}

// FlowStudy reports the Section IV-A tool comparison: Flowdroid-style
// taint analysis fails on most installers, while the lightweight
// world-readable classifier decides the majority.
func FlowStudy(c *corpus.Corpus, sample int) Table {
	return flowStudy(c, sample, measure.ScanOptions{})
}

// flowStudy renders two rows: the ground-truth tally (what the paper could
// reconstruct from Flowdroid's failure logs) and the artifact pipeline,
// whose classifier verdicts are re-derived by scanning the built APKs
// through the analysis engine. The rows agreeing is the study's point.
func flowStudy(c *corpus.Corpus, sample int, o measure.ScanOptions) Table {
	flowRow := func(label string, res measure.FlowResult) []string {
		return []string{
			label,
			fmt.Sprintf("%d", res.Sampled),
			ratio(res.IncompleteCFG, res.Sampled),
			ratio(res.HandlerIndirection, res.Sampled),
			ratio(res.AnalyzerBugs, res.Sampled),
			ratio(res.FlowAnalyzable, res.Sampled),
			ratio(res.ClassifierDecided, res.Sampled),
		}
	}
	return Table{
		ID:     "Flow Study",
		Title:  "Flow analysis vs the lightweight classifier (Section IV-A)",
		Header: []string{"Pipeline", "Sampled", "Incomplete CFG", "handleMessage loss", "Analyzer bugs", "Flow-analyzable", "Classifier decided"},
		Rows: [][]string{
			flowRow("ground truth", measure.FlowAnalysisStudy(c.PlayApps, sample)),
			flowRow("artifact scan", measure.FlowAnalysisStudyArtifactsOpts(c.PlayApps, sample, o)),
		},
		Notes: []string{"the paper tested 43 apps; 14% stopped on CFGs, 14% on handleMessage, 42% on Flowdroid bugs"},
	}
}

// ThreatScoreTable renders the 0-100 threat-score distribution the
// interprocedural engine assigns to the Play population: a histogram over
// the five score buckets, the mean/max score, and how many apps carry an
// anti-repackaging defense (which deducts from the score).
func ThreatScoreTable(c *corpus.Corpus) Table {
	return threatScoreTable(c, measure.ScanOptions{})
}

func threatScoreTable(c *corpus.Corpus, o measure.ScanOptions) Table {
	metas, stats := measure.ScanArtifactsOpts(c.PlayApps, o)
	defended := 0
	for _, m := range metas {
		if m.SelfSigCheck || m.IntegrityCheck {
			defended++
		}
	}
	t := Table{
		ID:     "Threat Scores",
		Title:  "Threat-score distribution over the Play population (0-100)",
		Header: []string{"Score bucket", "Apps", "Share"},
	}
	for b := 0; b < analysis.ScoreBuckets; b++ {
		t.Rows = append(t.Rows, []string{
			analysis.ScoreBucketLabel(b),
			fmt.Sprintf("%d", stats.ScoreHist[b]),
			ratio(stats.ScoreHist[b], stats.APKs),
		})
	}
	t.Notes = []string{
		fmt.Sprintf("mean score %.1f, max %d over %d apps", stats.MeanScore(), stats.ScoreMax, stats.APKs),
		fmt.Sprintf("%d/%d apps carry a self-signature or integrity check (score deduction)", defended, len(metas)),
	}
	return t
}

// HareStudy reports the hanging-permission escalation surface.
func HareStudy(c *corpus.Corpus) Table {
	var samsung []corpus.FactoryImage
	for _, img := range c.Images {
		if img.Vendor == "samsung" {
			samsung = append(samsung, img)
		}
	}
	res := measure.HareStudy(samsung, 10)
	return Table{
		ID:     "Hare Study",
		Title:  "Privilege escalation via hanging attribute references (Section IV-B)",
		Header: []string{"Seed apps (10 images)", "Images searched", "Vulnerable cases", "Avg cases/image"},
		Rows: [][]string{{
			fmt.Sprintf("%d", res.SeedApps),
			fmt.Sprintf("%d", res.ImagesSearched),
			fmt.Sprintf("%d", res.VulnerableCases),
			fmt.Sprintf("%.1f", res.AvgPerImage),
		}},
	}
}
