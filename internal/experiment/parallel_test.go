package experiment

import (
	"errors"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/fault"
)

// stubPerfClock swaps the wall-clock stopwatch for a constant, so the perf
// tables — the only wall-clock-dependent output — render identically no
// matter how measurements interleave across workers.
func stubPerfClock(t *testing.T) {
	t.Helper()
	orig := perfClock
	perfClock = func() func() time.Duration {
		return func() time.Duration { return time.Millisecond }
	}
	t.Cleanup(func() { perfClock = orig })
}

// TestParallelMatchesSerial pins the engine's reproducibility contract: a
// full AllTables run renders byte-identically with 1 worker and with 8.
func TestParallelMatchesSerial(t *testing.T) {
	stubPerfClock(t)
	opts := Options{Seed: 2017, Scale: 0.02, PerfReps: 2, DAPPInstalls: 6, Workers: 1}
	serial, err := AllTables(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	parallel, err := AllTables(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("table count: %d serial vs %d parallel", len(serial), len(parallel))
	}
	for i := range serial {
		if s, p := serial[i].Render(), parallel[i].Render(); s != p {
			t.Errorf("table %s differs between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
				serial[i].ID, s, p)
		}
	}
}

// TestPerfFaultPathsPropagate pins the fault-path fix: a failing operation
// inside a perf measurement loop used to panic out of the whole process;
// now it must surface as the measurement's error, all the way out of
// AllTables. FaultPlan probing is not concurrency-safe, so these cases run
// the engine with one worker.
func TestPerfFaultPathsPropagate(t *testing.T) {
	stubPerfClock(t)
	orig := perfInjector
	t.Cleanup(func() { perfInjector = orig })

	// A write failing mid-measurement (past the Skip window) aborts the
	// FUSE DAC table with the injected error.
	perfInjector = chaos.NewFaultPlan(1, chaos.Rule{Site: fault.SiteVFSWrite, Kind: fault.KindError, Skip: 3})
	if _, err := TableVIII(2); err == nil {
		t.Error("TableVIII swallowed an injected write fault")
	} else if !errors.Is(err, fault.ErrInjected) {
		t.Errorf("TableVIII error = %v, want wrapped fault.ErrInjected", err)
	}

	perfInjector = chaos.NewFaultPlan(1, chaos.Rule{Site: fault.SiteVFSRead, Kind: fault.KindError, Skip: 1})
	if _, err := DAPPSignaturePerf([]int{1 << 12}, 2); err == nil {
		t.Error("DAPPSignaturePerf swallowed an injected read fault")
	}

	perfInjector = chaos.NewFaultPlan(1, chaos.Rule{Site: fault.SiteIntentDeliver, Kind: fault.KindError, Skip: 2})
	if _, err := TableIX(3); err == nil {
		t.Error("TableIX swallowed an injected delivery fault")
	}

	perfInjector = chaos.NewFaultPlan(1, chaos.Rule{Site: fault.SiteVFSWrite, Kind: fault.KindError, Skip: 3})
	if _, err := AllTables(Options{Seed: 3, Scale: 0.02, PerfReps: 2, DAPPInstalls: 6, Workers: 1}); err == nil {
		t.Error("AllTables swallowed the perf fault")
	} else if !errors.Is(err, fault.ErrInjected) {
		t.Errorf("AllTables error = %v, want wrapped fault.ErrInjected", err)
	}
}
