package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestWriteReport(t *testing.T) {
	tables := []Table{
		TableI(),
		{ID: "Pipe", Title: "escaping", Header: []string{"a|b"}, Rows: [][]string{{"x|y"}, {"short"}}, Notes: []string{"n"}},
	}
	var b strings.Builder
	if err := WriteReport(&b, Options{Seed: 7, Scale: 0.5, PerfReps: 10}, tables); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# GIA reproduction report",
		"seed 7",
		"- Table I — Summary of AIT problems",
		"## Table I — Summary of AIT problems",
		"| Section | Attack Name | AIT steps [Step No] |",
		"Hijacking Installation",
		`a\|b`, // pipes escaped in headers
		`x\|y`, // and cells
		"*Note: n*",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Short rows are padded to the header width.
	if !strings.Contains(out, "| short |") {
		t.Errorf("short row mishandled:\n%s", out)
	}
}

func TestTableJSON(t *testing.T) {
	out, err := TableI().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"id": "Table I"`) {
		t.Errorf("json = %s", out)
	}
}

func TestReportDuration(t *testing.T) {
	if got := ReportDuration(1500 * time.Nanosecond); got != "2µs" {
		t.Errorf("ReportDuration = %q", got)
	}
}
