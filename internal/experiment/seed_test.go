package experiment

import (
	"fmt"
	"testing"

	"github.com/ghost-installer/gia/internal/installer"
)

// TestDeriveSeedFleetScaleDistinct pins the seed-collision fix: at fleet
// scale (6 stores × 2000 devices — past every stride the old additive
// scheme used) every (stream, index) pair must map to a distinct scenario
// seed.
func TestDeriveSeedFleetScaleDistinct(t *testing.T) {
	profiles := []installer.Profile{
		installer.Amazon(), installer.Xiaomi(), installer.Baidu(),
		installer.Qihoo360(), installer.DTIgnite(), installer.HuaweiStore(),
	}
	const devices = 2000
	seen := make(map[int64]string, len(profiles)*devices)
	for _, prof := range profiles {
		for d := int64(0); d < devices; d++ {
			coord := fmt.Sprintf("%s/%d", prof.Package, d)
			s := deriveSeed(2017, "fleet/"+prof.Package, d)
			if prev, dup := seen[s]; dup {
				t.Fatalf("derived seed collision: %s and %s both map to %d", prev, coord, s)
			}
			seen[s] = coord
		}
	}

	// The legacy stride this replaces (seed + store*1000 + device) collides
	// as soon as devicesPerStore crosses the hard-coded 1000 — store 0
	// device 1000 and store 1 device 0 ran identical worlds.
	legacy := func(store, device int) int64 { return 2017 + int64(store*1000+device) }
	if legacy(0, 1000) != legacy(1, 0) {
		t.Fatal("legacy stride arithmetic changed; regression demonstration is stale")
	}
}

// TestDeriveSeedStreamsDecorrelated pins the stream contract: the same
// (root, index) under different stream labels draws unrelated seeds, and
// the same coordinates always rederive the same seed.
func TestDeriveSeedStreamsDecorrelated(t *testing.T) {
	if a, b := deriveSeed(5, "fleet/com.amazon.venezia", 3), deriveSeed(5, "hijack/file-observer", 3); a == b {
		t.Errorf("streams collide: both derive %d", a)
	}
	if a, b := deriveSeed(5, "fleet/x", 0), deriveSeed(5, "fleet/x", 0); a != b {
		t.Errorf("derivation not deterministic: %d vs %d", a, b)
	}
	if a, b := deriveSeed(5, "fleet/x", 0), deriveSeed(6, "fleet/x", 0); a == b {
		t.Errorf("roots collide: both derive %d", a)
	}
}

// TestSeed2017Outcomes pins the headline study verdicts at the default
// bench seed under the new derivation: reseeding must not have flipped the
// paper's reproduced conclusions.
func TestSeed2017Outcomes(t *testing.T) {
	fleet, err := FleetStudy(3, 2017, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 6 {
		t.Fatalf("fleet outcomes = %d", len(fleet))
	}
	for _, o := range fleet {
		if o.Rate() != 1.0 {
			t.Errorf("%s fleet rate = %.2f, want 1.0", o.Store, o.Rate())
		}
	}

	dms, err := DMStudy(2017)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range dms {
		fixed := o.Policy.String() == "fixed"
		if o.Succeeded == fixed {
			t.Errorf("dm %s/%s succeeded=%v, want %v", o.Policy, o.Operation, o.Succeeded, !fixed)
		}
	}

	sug, err := SuggestionStudy(2017, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range sug {
		if !o.StockHijacked {
			t.Errorf("suggestion %s/%v: stock resisted", o.Store, o.Strategy)
		}
		if o.HardenedHijacked || !o.HardenedClean {
			t.Errorf("suggestion %s/%v: hardened fell (hijacked=%v clean=%v)",
				o.Store, o.Strategy, o.HardenedHijacked, o.HardenedClean)
		}
	}
}
