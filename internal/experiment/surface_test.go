package experiment

import (
	"testing"

	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/installer"
)

func vectorsByKey(vs []Vector) map[string]Vector {
	out := make(map[string]Vector, len(vs))
	for _, v := range vs {
		out[v.Name+"/"+v.Target] = v
	}
	return out
}

func TestSurveyVulnerableConfiguration(t *testing.T) {
	vs := Survey([]installer.Profile{
		installer.Amazon(), installer.AmazonV2(), installer.Xiaomi(),
		installer.SlideMe(), installer.GooglePlay(),
	}, dm.PolicyLegacy)
	m := vectorsByKey(vs)

	expectApplicable := []string{
		"toctou-hijack/com.amazon.venezia",
		"js-bridge-injection/com.amazon.venezia",
		"manifest-verify-bypass/com.amazon.venezia",
		"toctou-hijack/com.xiaomi.market",
		"push-forgery/com.xiaomi.market",
		"pia-same-manifest/com.slideme.sam.manager",
		"dm-symlink/AOSP DownloadManager",
		"redirect-intent/any installer UI",
	}
	for _, key := range expectApplicable {
		v, ok := m[key]
		if !ok {
			t.Fatalf("missing vector %s; have %v", key, vs)
		}
		if !v.Applicable {
			t.Errorf("%s not applicable: %s", key, v.Reason)
		}
		if v.Reason == "" {
			t.Errorf("%s lacks a reason", key)
		}
	}
	// Google Play resists the TOCTOU.
	if v := m["toctou-hijack/com.android.vending"]; v.Applicable {
		t.Errorf("play toctou marked applicable: %s", v.Reason)
	}
}

func TestSurveyHardenedConfiguration(t *testing.T) {
	amazonFixed := installer.Amazon()
	amazonFixed.JSBridgeSanitized = true
	amazonFixed.UseSignatureVerification = true
	xiaomiFixed := installer.Xiaomi()
	xiaomiFixed.PushAuth = installer.ReceiverGuarded
	hardened := installer.Hardened(installer.Baidu())

	vs := Survey([]installer.Profile{amazonFixed, xiaomiFixed, hardened}, dm.PolicyFixed)
	m := vectorsByKey(vs)

	for _, key := range []string{
		"toctou-hijack/com.amazon.venezia",
		"js-bridge-injection/com.amazon.venezia",
		"push-forgery/com.xiaomi.market",
		"toctou-hijack/com.baidu.appsearch",
		"dm-symlink/AOSP DownloadManager",
	} {
		v, ok := m[key]
		if !ok {
			t.Fatalf("missing vector %s", key)
		}
		if v.Applicable {
			t.Errorf("%s still applicable after hardening: %s", key, v.Reason)
		}
	}
	// Redirect Intent remains an OS-level problem regardless of stores.
	if v := m["redirect-intent/any installer UI"]; !v.Applicable {
		t.Error("redirect intent marked inapplicable — only the IntentFirewall addresses it")
	}
	if SurfaceTable([]installer.Profile{amazonFixed}, dm.PolicyFixed).Render() == "" {
		t.Error("surface table renders empty")
	}
}
