package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/defense"
	"github.com/ghost-installer/gia/internal/installer"
)

// buildPaddedAPK and decodeForPerf are small indirections shared with the
// perf experiments.
func buildPaddedAPK(padding int) []byte {
	a := attackFreeAPK()
	a.Padding = padding
	return a.Encode()
}

// TableVII verifies the effectiveness of every defense live and reports the
// implementation complexity of the defense code in this repository.
func TableVII(seed int64) (Table, error) {
	t := Table{
		ID:     "Table VII",
		Title:  "Effectiveness & complexity of the defenses",
		Header: []string{"Strategy", "Tackled attack", "AIT step", "LOC", "Effective"},
	}
	loc := DefenseLOC()

	// DAPP vs installation hijacking.
	dappOK, err := verifyDAPP(seed)
	if err != nil {
		return Table{}, err
	}
	// FUSE DAC scheme vs installation hijacking.
	fuseOK, err := verifyFUSE(seed + 100)
	if err != nil {
		return Table{}, err
	}
	// Intent detection + origin vs the redirect attack.
	redirect, err := RedirectStudy(seed + 200)
	if err != nil {
		return Table{}, err
	}
	detectOK, originOK := false, false
	for _, o := range redirect {
		switch o.Defense {
		case "intent detection":
			detectOK = !o.UserDeceived && o.Alerts > 0
		case "intent origin":
			originOK = o.OriginSeen == "com.fun.game"
		}
	}

	yn := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "NO"
	}
	t.Rows = [][]string{
		{"User-level app (DAPP)", "Installation Hijacking", "3,4", fmt.Sprintf("%d", loc["dapp"]), yn(dappOK)},
		{"FUSE DAC scheme", "Installation Hijacking", "3,4", fmt.Sprintf("%d", loc["fuse"]), yn(fuseOK)},
		{"Intent Detection scheme", "Redirect Intent", "1", fmt.Sprintf("%d", loc["detection"]), yn(detectOK)},
		{"Intent origin scheme", "Redirect Intent", "1", fmt.Sprintf("%d", loc["origin"]), yn(originOK)},
	}
	t.Notes = append(t.Notes, "LOC measured from this repository's defense implementations")
	return t, nil
}

func verifyDAPP(seed int64) (bool, error) {
	prof := installer.Amazon()
	s, err := NewScenario(prof, seed)
	if err != nil {
		return false, err
	}
	dapp, err := defense.Deploy(s.Dev, []string{prof.StagingDir})
	if err != nil {
		return false, err
	}
	atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), s.Target)
	if err := atk.Launch(); err != nil {
		return false, err
	}
	res := s.RunAIT()
	atk.Stop()
	// DAPP detects rather than blocks: the hijack lands, but the user is
	// alerted before using the app.
	return res.Hijacked && dapp.Thwarted(TargetPackage), nil
}

func verifyFUSE(seed int64) (bool, error) {
	prof := installer.Amazon()
	s, err := NewScenario(prof, seed)
	if err != nil {
		return false, err
	}
	s.Dev.Fuse.SetPatched(true)
	atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), s.Target)
	if err := atk.Launch(); err != nil {
		return false, err
	}
	res := s.RunAIT()
	atk.Stop()
	// The FUSE patch blocks the replacement outright: clean install.
	return res.Clean() && len(atk.Replacements()) == 0, nil
}

// Recorded defense sizes, used when the sources are not on disk (e.g. a
// deployed binary). A unit test keeps them in sync with the repository.
var recordedLOC = map[string]int{
	"dapp":      150,
	"fuse":      130,
	"detection": 60,
	"origin":    25,
}

// DefenseLOC counts the non-blank, non-comment lines of each defense
// implementation in this repository, falling back to recorded values when
// the sources are unavailable at run time.
func DefenseLOC() map[string]int {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return recordedLOC
	}
	root := filepath.Dir(filepath.Dir(self)) // .../internal
	out := make(map[string]int, len(recordedLOC))
	for key, fallback := range recordedLOC {
		out[key] = fallback
	}
	if n, err := countLOC(filepath.Join(root, "defense", "dapp.go")); err == nil {
		out["dapp"] = n
	}
	if n, err := countLOC(filepath.Join(root, "fuse", "fuse.go")); err == nil {
		out["fuse"] = n
	}
	if n, err := countLOC(filepath.Join(root, "intents", "firewall.go")); err == nil {
		// The firewall file hosts both schemes: split by the rough share
		// of detection (checkIntent bookkeeping) vs origin (stamping).
		out["detection"] = n * 7 / 10
		out["origin"] = n - out["detection"]
	}
	return out
}

// countLOC counts non-blank, non-comment lines.
func countLOC(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		n++
	}
	return n, nil
}
