package experiment

import (
	"fmt"

	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/installer"
)

// Vector is one potential GIA entry point on a device configuration.
type Vector struct {
	Name       string
	Target     string
	AITStep    int
	Applicable bool
	Reason     string
}

// Survey enumerates the Ghost Installer attack surface of a device built
// from the given installer profiles and DM policy — the assessment a
// security team would run before the live attacks. The verdicts follow the
// paper's per-step analysis.
func Survey(profiles []installer.Profile, dmPolicy dm.SymlinkPolicy) []Vector {
	var out []Vector
	for _, prof := range profiles {
		sdCard := prof.Storage == installer.StorageSDCard
		toctou := Vector{
			Name: "toctou-hijack", Target: prof.Package, AITStep: 3,
			Applicable: sdCard && !prof.SecureVerify && !prof.UseSignatureVerification,
		}
		switch {
		case !sdCard:
			toctou.Reason = "stages in internal storage"
		case prof.SecureVerify:
			toctou.Reason = "verifies on a private copy (Suggestion 2)"
		case prof.UseSignatureVerification:
			toctou.Reason = "records and verifies the signer (Section V-A fix)"
		default:
			toctou.Reason = fmt.Sprintf("stages in %s; fingerprint %d reads", prof.StagingDir, prof.VerifyReads)
		}
		out = append(out, toctou)

		if !prof.Silent {
			out = append(out, Vector{
				Name: "pia-same-manifest", Target: prof.Package, AITStep: 4,
				Applicable: sdCard,
				Reason:     "consent dialog + manifest-only checksum; same-manifest repackage passes",
			})
		}
		if prof.UseManifestVerification {
			out = append(out, Vector{
				Name: "manifest-verify-bypass", Target: prof.Package, AITStep: 4,
				Applicable: sdCard,
				Reason:     "installPackageWithVerification checks only the manifest digest",
			})
		}
		if prof.JSBridge {
			v := Vector{
				Name: "js-bridge-injection", Target: prof.Package, AITStep: 1,
				Applicable: !prof.JSBridgeSanitized,
			}
			if prof.JSBridgeSanitized {
				v.Reason = "payload sanitization applied"
			} else {
				v.Reason = "exported WebView activity executes unauthenticated script"
			}
			out = append(out, v)
		}
		switch prof.PushAuth {
		case installer.ReceiverUnauthenticated:
			out = append(out, Vector{
				Name: "push-forgery", Target: prof.Package, AITStep: 1,
				Applicable: true,
				Reason:     "exported push receiver without sender authentication",
			})
		case installer.ReceiverGuarded:
			out = append(out, Vector{
				Name: "push-forgery", Target: prof.Package, AITStep: 1,
				Applicable: false,
				Reason:     "receiver guarded by a signature permission",
			})
		}
	}
	dmVector := Vector{
		Name: "dm-symlink", Target: "AOSP DownloadManager", AITStep: 2,
		Applicable: dmPolicy != dm.PolicyFixed,
	}
	if dmPolicy == dm.PolicyFixed {
		dmVector.Reason = "resolve-once policy: no check-to-use gap"
	} else {
		dmVector.Reason = fmt.Sprintf("policy %v dereferences the stored path after the check", dmPolicy)
	}
	out = append(out, dmVector)
	out = append(out, Vector{
		Name: "redirect-intent", Target: "any installer UI", AITStep: 1,
		Applicable: true,
		Reason:     "stock Android lets a background app repaint a foreground activity without origin info",
	})
	return out
}

// SurfaceTable renders the survey.
func SurfaceTable(profiles []installer.Profile, dmPolicy dm.SymlinkPolicy) Table {
	t := Table{
		ID:     "Surface Survey",
		Title:  "GIA attack surface of the device configuration",
		Header: []string{"Vector", "Target", "AIT step", "Applicable", "Reason"},
	}
	for _, v := range Survey(profiles, dmPolicy) {
		t.Rows = append(t.Rows, []string{
			v.Name, v.Target, fmt.Sprintf("%d", v.AITStep),
			fmt.Sprintf("%v", v.Applicable), v.Reason,
		})
	}
	return t
}
