package experiment

import (
	"testing"

	"github.com/ghost-installer/gia/internal/measure"
)

// TestCacheTableParity is the -cache=off vs -cache=on gate: every table
// that scans artifacts must render byte-identically with the analysis
// cache disabled and enabled, at one worker and at the default pool size.
func TestCacheTableParity(t *testing.T) {
	builders := []struct {
		name string
		f    func(o measure.ScanOptions) Table
	}{
		{"Table II", func(o measure.ScanOptions) Table { return tableII(smallCorpus, o) }},
		{"Table III", func(o measure.ScanOptions) Table { return tableIII(smallCorpus, o) }},
		{"Flow Study", func(o measure.ScanOptions) Table { return flowStudy(smallCorpus, 43, o) }},
		{"Threat Scores", func(o measure.ScanOptions) Table { return threatScoreTable(smallCorpus, o) }},
	}
	for _, b := range builders {
		for _, workers := range []int{1, 0} {
			on := b.f(measure.ScanOptions{Workers: workers}).Render()
			off := b.f(measure.ScanOptions{Workers: workers, NoCache: true}).Render()
			if on != off {
				t.Errorf("%s (workers=%d) diverges between cache modes:\n-- cache on --\n%s\n-- cache off --\n%s",
					b.name, workers, on, off)
			}
		}
	}
}

// TestFlowStudyRowsAgree pins the study's point: the artifact pipeline's
// classifier column reproduces the ground-truth tally.
func TestFlowStudyRowsAgree(t *testing.T) {
	tab := FlowStudy(smallCorpus, 43)
	if len(tab.Rows) != 2 {
		t.Fatalf("flow study rows = %d, want ground truth + artifact scan", len(tab.Rows))
	}
	gt, scan := tab.Rows[0], tab.Rows[1]
	if gt[0] != "ground truth" || scan[0] != "artifact scan" {
		t.Fatalf("row labels = %q, %q", gt[0], scan[0])
	}
	for i := 1; i < len(gt); i++ {
		if gt[i] != scan[i] {
			t.Errorf("column %q: ground truth %q != artifact scan %q", tab.Header[i], gt[i], scan[i])
		}
	}
}
