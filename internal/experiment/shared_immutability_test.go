package experiment

import (
	"bytes"
	"testing"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/installer"
)

// Regression: market.Fetch hands out its hosted listing bytes without a
// defensive copy, and the staging pipeline adopts shared buffers
// (WriteFileShared / ReadFileShared). An attacker's TOCTOU overwrite of a
// downloaded APK therefore must never propagate through those aliases
// into the market's hosted bytes: a second Fetch of the same URL has to
// be byte-identical to the first, before and after a successful hijack.
func TestTOCTOUOverwriteNeverMutatesMarketBytes(t *testing.T) {
	// DTIgnite stages through the system Download Manager (dm.writeChunks),
	// and a payload larger than one 64 KiB transfer chunk keeps the
	// destination handle open across many in-place chunk writes — the
	// exact window where an overwrite-style replacement interleaves.
	prof := installer.DTIgnite()
	payload := bytes.Repeat([]byte{0xab}, 100<<10)
	s, err := NewScenarioPayload(prof, 99, payload)
	if err != nil {
		t.Fatal(err)
	}
	listing, ok := s.Store.Store.Lookup(TargetPackage)
	if !ok {
		t.Fatal("target listing missing")
	}
	first, err := s.Dev.Market.Fetch(listing.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Fetch aliases the hosted bytes; pristine is our private copy.
	pristine := append([]byte(nil), first...)

	cfg := attack.ConfigForStore(prof, attack.StrategyWaitAndSee)
	// Overwrite rewrites the staged file's bytes rather than renaming a
	// pre-staged copy over it — the mutation-heavy replacement method.
	cfg.Method = attack.MethodOverwrite
	atk := attack.NewTOCTOU(s.Mal, cfg, s.Target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	res := s.RunAIT()
	atk.Stop()
	if !res.Hijacked {
		t.Fatalf("sanity: hijack must land for the overwrite to matter (attempts=%d err=%v)", res.Attempts, res.Err)
	}
	if len(atk.Replacements()) == 0 {
		t.Fatal("sanity: no replacement recorded")
	}

	// The alias handed out before the attack must be untouched...
	if !bytes.Equal(first, pristine) {
		t.Fatal("market-hosted listing bytes mutated through the fetch alias")
	}
	// ...and a second fetch of the same URL must be byte-identical.
	second, err := s.Dev.Market.Fetch(listing.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second, pristine) {
		t.Fatal("second Fetch of the hijacked listing differs from the original bytes")
	}
	// The cached immutable target build must match what the market serves.
	if !bytes.Equal(s.Target.Encode(), pristine) {
		t.Fatal("target APK encode diverged from the hosted listing")
	}
}
