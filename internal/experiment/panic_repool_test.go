package experiment

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/arena"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/devicetest"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/obs"
)

// panicDrive is the deterministic AIT hijack drive both fingerprints run:
// one on a fresh boot, one on the device the panicked run re-pooled.
func panicDrive(prof installer.Profile) devicetest.Drive {
	return func(dev *device.Device) (string, error) {
		s, err := NewScenarioOn(dev, prof)
		if err != nil {
			return "", err
		}
		atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), s.Target)
		if err := atk.Launch(); err != nil {
			return "", err
		}
		res := s.RunAIT()
		atk.Stop()
		return fmt.Sprintf("hijacked=%v attempts=%d err=%v", res.Hijacked, res.Attempts, res.Err), nil
	}
}

// runGuarded (chaos/explorer.go) recovers a panicking RunFunc, and the
// deferred release in aitRun-style runs re-pools the device mid-mutation
// during the unwind. A device released that way must never be served
// dirty: the next Acquire either resets it to boot-equivalence (pinned by
// the devicetest fingerprint) or drops it via the reset-failure path.
func TestPanickedRunReleaseNeverServesDirtyDevice(t *testing.T) {
	prof := installer.Amazon()
	const seed = 4242

	fresh, err := device.Boot(ScenarioDeviceProfile(seed))
	if err != nil {
		t.Fatal(err)
	}
	want, err := devicetest.Capture(fresh, panicDrive(prof))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	met := arena.Instrument(reg)
	var ar *arena.Arena
	ex := &chaos.Explorer{Workers: 1, MaxSchedules: 8, WorkerState: func() any {
		a := arena.New(ScenarioDeviceProfile(0))
		a.SetMetrics(met)
		ar = a
		return a
	}}

	// The panicking run: a full scenario with an in-flight install and a
	// live attacker, killed by a panic from inside a scheduled callback.
	// The unwind passes through the deferred release, re-pooling the
	// device with the transaction half-applied.
	panicky := func(r *chaos.Run) error {
		dev, release, err := runDevice(r)
		if err != nil {
			return err
		}
		defer release()
		s, err := NewScenarioOn(dev, prof)
		if err != nil {
			return err
		}
		s.Instrument(r)
		atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), s.Target)
		if err := atk.Launch(); err != nil {
			return err
		}
		s.Store.RequestInstall(TargetPackage, nil)
		dev.Sched.After(30*time.Millisecond, func() { panic("chaos: die mid-transaction") })
		dev.Sched.RunUntil(dev.Sched.Now() + 2*time.Minute)
		return nil
	}
	_, err = ex.Check(chaos.Schedule{Seed: 77}, panicky)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("sanity: expected a recovered panic violation, got %v", err)
	}
	if ar == nil {
		t.Fatal("worker arena never built")
	}
	if got := ar.Idle(); got != 1 {
		t.Fatalf("dirty device not re-pooled by the deferred release: idle=%d", got)
	}

	dev2, err := ar.Acquire(seed)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	failures := snap.Counter("arena.reset_failures")
	hits := snap.Counter("arena.hits")
	if failures == 0 && hits != 1 {
		t.Fatalf("acquire after panic neither reset (hits=%d) nor dropped (reset_failures=%d)", hits, failures)
	}
	if got := ar.Idle(); got != 0 {
		t.Fatalf("pool still holds a device after acquire: idle=%d", got)
	}

	got, err := devicetest.Capture(dev2, panicDrive(prof))
	if err != nil {
		t.Fatal(err)
	}
	if d := devicetest.Diff(want, got); d != "" {
		t.Fatalf("device served dirty after a panicked run's release:\n%s", d)
	}
}
