package experiment

import (
	"bytes"
	"fmt"
	"time"

	"github.com/ghost-installer/gia/internal/arena"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/obs"
)

// Instrument attaches a chaos run to the scenario: the schedule (arbiter +
// choice replay) is imposed on the scheduler and the run's fault plan is
// installed on every substrate with injection sites. Call it right after
// NewScenario, before driving the clock.
func (s *Scenario) Instrument(r *chaos.Run) {
	r.Attach(s.Dev.Sched, s.Dev.FS, s.Dev.DM, s.Dev.AMS, s.Dev.Fuse)
}

// ArenaWorkerState is the chaos.Explorer.WorkerState factory for studies
// whose RunFuncs build scenarios through aitRun: each pool worker gets a
// private device arena over the standard scenario profile, so device.Boot
// is a one-time cost per worker and every subsequent schedule resets the
// pooled device in place. A non-nil registry wires the arena's hit/miss/
// reset counters and reset-latency histogram (shared across workers).
func ArenaWorkerState(reg *obs.Registry) func() any {
	var met arena.Metrics
	if reg != nil {
		met = arena.Instrument(reg)
	}
	return func() any {
		a := arena.New(ScenarioDeviceProfile(0))
		a.SetMetrics(met)
		return a
	}
}

// runDevice yields the device a chaos run builds its world on: acquired
// from the pool worker's arena when the explorer carries one (see
// ArenaWorkerState), booted fresh otherwise. release returns an arena
// device to its pool and is a no-op for booted ones.
func runDevice(r *chaos.Run) (dev *device.Device, release func(), err error) {
	if ar, ok := r.State().(*arena.Arena); ok {
		dev, err := ar.Acquire(r.Seed())
		if err != nil {
			return nil, nil, err
		}
		return dev, func() { ar.Release(dev) }, nil
	}
	dev, err = device.Boot(ScenarioDeviceProfile(r.Seed()))
	if err != nil {
		return nil, nil, err
	}
	return dev, func() {}, nil
}

// aitRun builds a store scenario from the run's seed, launches a TOCTOU
// attack with the given strategy, drives the AIT and reports the result.
// A non-nil payload sizes the target APK (multi-chunk downloads need more
// than 64 KiB); patched enables the Section V-C FUSE defense.
func aitRun(prof installer.Profile, strategy attack.Strategy, payload []byte, patched bool, r *chaos.Run) (installer.Result, error) {
	dev, release, err := runDevice(r)
	if err != nil {
		return installer.Result{}, fmt.Errorf("device: %w", err)
	}
	defer release()
	if payload == nil {
		payload = []byte("genuine")
	}
	s, err := NewScenarioPayloadOn(dev, prof, payload)
	if err != nil {
		return installer.Result{}, fmt.Errorf("scenario: %w", err)
	}
	if patched {
		s.Dev.Fuse.SetPatched(true)
	}
	s.Instrument(r)
	// The run's trace lane (when the explorer carries a Trace) gets the
	// installer's per-step AIT instants and outcome spans, so a violation
	// dump shows the transaction steps leading up to the failure.
	if k := r.Track(); k != nil {
		s.Store.Instrument(nil, k)
	}
	atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, strategy), s.Target)
	if err := atk.Launch(); err != nil {
		return installer.Result{}, fmt.Errorf("launch: %w", err)
	}
	res := s.RunAIT()
	atk.Stop()
	return res, nil
}

// HijackRunFunc is the canonical chaos invariant of the exploration bench:
// one complete AIT hijack scenario per schedule, asserting the hijack
// lands. Devices come from the worker arena when the explorer carries one.
func HijackRunFunc(prof installer.Profile, strategy attack.Strategy) chaos.RunFunc {
	return func(r *chaos.Run) error {
		res, err := aitRun(prof, strategy, nil, false, r)
		if err != nil {
			return err
		}
		if !res.Hijacked {
			return fmt.Errorf("hijack missed (attempts=%d, err=%v)", res.Attempts, res.Err)
		}
		return nil
	}
}

// ExplorationRow is one row of the chaos study.
type ExplorationRow struct {
	Name      string
	Invariant string
	Explored  int
	Violated  int
	MaxBranch int
	Truncated bool
	// Token is the minimized replay token of the first violation ("-" when
	// the invariant held everywhere).
	Token string
	// Replayed reports whether replaying Token reproduced the violation.
	Replayed bool
}

// ExplorationStudy drives the chaos harness over the Section III-B TOCTOU
// race four ways:
//
//  1. exhaustive enumeration of same-instant event orderings: deadlines are
//     quantized onto a 10ms grid so the wait-and-see poller genuinely ties
//     with the download's chunk writes, and every permutation of every tie
//     is explored — the hijack must land on all of them;
//  2. a seed × jitter sweep (1000 schedules) asserting the FileObserver
//     hijack always lands against the stock (legacy) store;
//  3. the same sweep with the Section V-C FUSE patch asserting it never
//     does;
//  4. a fault-injection run truncating every download after its first
//     chunk (the transfer still reports success), which starves hash
//     verification and flips the hijack outcome; the violating schedule is
//     minimized to a token and replayed.
func ExplorationStudy(seed int64, workers int) ([]ExplorationRow, error) {
	var rows []ExplorationRow

	// Row 1: exhaustive orderings. The 900 KiB payload makes the download
	// long enough for the wait-and-see poller to contend with ~14 chunk
	// writes; 10ms quantization turns that contention into same-instant
	// ties (128 schedules for the default seed).
	bigPayload := bytes.Repeat([]byte("x"), 900<<10)
	wsHijacks := func(r *chaos.Run) error {
		res, err := aitRun(installer.Amazon(), attack.StrategyWaitAndSee, bigPayload, false, r)
		if err != nil {
			return err
		}
		if !res.Hijacked {
			return fmt.Errorf("hijack missed (attempts=%d, err=%v)", res.Attempts, res.Err)
		}
		return nil
	}
	exOrd := &chaos.Explorer{
		Workers: workers, MaxSchedules: 2000,
		Plan:        chaos.Quantize(10*time.Millisecond, 0, 0),
		WorkerState: ArenaWorkerState(nil),
	}
	res := exOrd.ExploreOrders(chaos.Schedule{Seed: seed}, wsHijacks)
	rows = append(rows, explorationRow("exhaustive orderings (wait-and-see)", "hijack lands", exOrd, res, wsHijacks))

	// Rows 2-3: seed × jitter grids, 250 seeds × 4 jitters = 1000
	// schedules each. Jitter stays well under the verify→install gap so
	// the invariant is genuinely schedule-independent.
	seeds := make([]int64, 250)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	jitters := []time.Duration{0, time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond}
	ex := &chaos.Explorer{Workers: workers, WorkerState: ArenaWorkerState(nil)}

	foHijacks := HijackRunFunc(installer.Amazon(), attack.StrategyFileObserver)
	res = ex.Sweep(seeds, jitters, foHijacks)
	rows = append(rows, explorationRow("seed x jitter sweep (legacy)", "hijack lands", ex, res, foHijacks))

	patchBlocks := func(r *chaos.Run) error {
		res, err := aitRun(installer.Amazon(), attack.StrategyFileObserver, nil, true, r)
		if err != nil {
			return err
		}
		if res.Hijacked {
			return fmt.Errorf("hijack landed through the FUSE patch")
		}
		return nil
	}
	res = ex.Sweep(seeds, jitters, patchBlocks)
	rows = append(rows, explorationRow("seed x jitter sweep (FUSE patch)", "hijack never lands", ex, res, patchBlocks))

	// Row 4: fault injection through the Download Manager (DTIgnite is the
	// DM-backed store). Every download past its first 64 KiB chunk is
	// silently truncated, so hash verification fails, the redownload
	// budget drains, and the hijack misses — deliberately violating the
	// row's invariant. The harness minimizes that to a replayable token.
	dtiPayload := bytes.Repeat([]byte("x"), 200<<10)
	dtiHijacks := func(r *chaos.Run) error {
		res, err := aitRun(installer.DTIgnite(), attack.StrategyFileObserver, dtiPayload, false, r)
		if err != nil {
			return err
		}
		if !res.Hijacked {
			return fmt.Errorf("hijack missed (attempts=%d, err=%v)", res.Attempts, res.Err)
		}
		return nil
	}
	exFault := &chaos.Explorer{
		Workers: workers,
		Plan: chaos.NewFaultPlan(seed, chaos.Rule{
			Site: fault.SiteDMChunk, Kind: fault.KindTruncate, Skip: 1,
		}),
		WorkerState: ArenaWorkerState(nil),
	}
	fres := exFault.Sweep([]int64{seed}, nil, dtiHijacks)
	rows = append(rows, explorationRow("truncated download fault", "hijack lands", exFault, fres, dtiHijacks))
	return rows, nil
}

func explorationRow(name, invariant string, ex *chaos.Explorer, res *chaos.Result, fn chaos.RunFunc) ExplorationRow {
	row := ExplorationRow{
		Name:      name,
		Invariant: invariant,
		Explored:  res.Explored,
		Violated:  res.Violations,
		MaxBranch: res.MaxBranch,
		Truncated: res.Truncated,
		Token:     "-",
	}
	if res.First != nil {
		min := ex.Minimize(res.First.Schedule, fn)
		row.Token = min.Token()
		_, err := ex.Replay(row.Token, fn)
		row.Replayed = err != nil
	}
	return row
}

// ChaosTable renders the exploration study.
func ChaosTable(seed int64, workers int) (Table, error) {
	rows, err := ExplorationStudy(seed, workers)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Chaos Study",
		Title:  "Schedule exploration and fault injection over the TOCTOU race",
		Header: []string{"Exploration", "Invariant", "Schedules", "Violations", "Max tie", "Replay token"},
	}
	for _, r := range rows {
		sched := fmt.Sprintf("%d", r.Explored)
		if r.Truncated {
			sched += " (capped)"
		}
		tok := r.Token
		if r.Token != "-" {
			if r.Replayed {
				tok += " (replays)"
			} else {
				tok += " (STALE)"
			}
		}
		t.Rows = append(t.Rows, []string{
			r.Name, r.Invariant, sched,
			fmt.Sprintf("%d", r.Violated),
			fmt.Sprintf("%d", r.MaxBranch),
			tok,
		})
	}
	t.Notes = append(t.Notes,
		"orderings row quantizes event deadlines onto a 10ms grid and walks every permutation of every same-instant tie (arbiter choice tree)",
		"sweep rows impose 250 seeds x 4 jitter bounds (0-5ms) on the full AIT+attack world",
		"fault row silently truncates DM transfers after the first chunk — the hijack misses and the schedule minimizes to the token shown")
	return t, nil
}
