package experiment

import (
	"strings"
	"testing"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/corpus"
	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/installer"
)

func installerInternalStores() map[string]bool { return installer.InternalStorageStores() }

// smallCorpus keeps the measurement experiments fast in unit tests.
var smallCorpus = corpus.Generate(corpus.Config{Seed: 2017, Scale: 0.1})

func TestTableIStatic(t *testing.T) {
	tab := TableI()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "Hijacking Installation") {
		t.Error("render missing attack name")
	}
}

func TestMeasurementTablesRender(t *testing.T) {
	for _, tab := range []Table{
		TableII(smallCorpus), TableIII(smallCorpus), TableIV(smallCorpus),
		TableVI(smallCorpus), KeyStudy(smallCorpus), HareStudy(smallCorpus),
	} {
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", tab.ID)
		}
		out := tab.Render()
		if !strings.Contains(out, tab.ID) || len(out) < 40 {
			t.Errorf("%s render too small:\n%s", tab.ID, out)
		}
	}
}

func TestTableIIShapeMatchesPaper(t *testing.T) {
	tab := TableII(smallCorpus)
	// 83.7% vulnerable among known installers, at corpus scale 0.1.
	if !strings.Contains(tab.Rows[0][1], "83.") && !strings.Contains(tab.Rows[0][1], "84.") {
		t.Errorf("vulnerable cell = %q, want ≈83.7%%", tab.Rows[0][1])
	}
}

func TestHijackStudyShape(t *testing.T) {
	outcomes, err := HijackStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	byStore := make(map[string]map[attack.Strategy]HijackOutcome)
	for _, o := range outcomes {
		if byStore[o.Store] == nil {
			byStore[o.Store] = make(map[attack.Strategy]HijackOutcome)
		}
		byStore[o.Store][o.Strategy] = o
	}
	// Every SD-card store falls to the FileObserver strategy; the
	// internal-storage stores (Play, Galaxy Apps) hold.
	internal := installerInternalStores()
	for store, m := range byStore {
		if internal[store] {
			for strat, o := range m {
				if o.Hijacked {
					t.Errorf("%s hijacked via %v — internal storage must hold", store, strat)
				}
			}
			continue
		}
		if !m[attack.StrategyFileObserver].Hijacked {
			t.Errorf("%s not hijacked by file-observer: %+v", store, m[attack.StrategyFileObserver])
		}
	}
	// The paper's wait-and-see demonstrations.
	for _, store := range []string{"com.dti.ignite", "com.amazon.venezia", "com.baidu.appsearch"} {
		if !byStore[store][attack.StrategyWaitAndSee].Hijacked {
			t.Errorf("%s not hijacked by wait-and-see: %+v", store, byStore[store][attack.StrategyWaitAndSee])
		}
	}
}

func TestDMStudyShape(t *testing.T) {
	outcomes, err := DMStudy(5)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]DMOutcome)
	for _, o := range outcomes {
		got[o.Policy.String()+"/"+o.Operation] = o
	}
	for _, key := range []string{"legacy-4.4/steal-private-file", "legacy-4.4/delete-dm-database",
		"recheck-6.0/steal-private-file", "recheck-6.0/delete-dm-database"} {
		if !got[key].Succeeded {
			t.Errorf("%s did not succeed (tries=%d)", key, got[key].Tries)
		}
	}
	for _, key := range []string{"fixed/steal-private-file", "fixed/delete-dm-database"} {
		if got[key].Succeeded {
			t.Errorf("%s succeeded against the fixed DM", key)
		}
	}
	if got["legacy-4.4/delete-dm-database"].DMHealthy {
		t.Error("DM database survived the legacy delete")
	}
	if !got["fixed/delete-dm-database"].DMHealthy {
		t.Error("DM database lost under the fixed policy")
	}
	if _, err := DMTable(5); err != nil {
		t.Fatal(err)
	}
	_ = dm.PolicyFixed
}

func TestRedirectStudyShape(t *testing.T) {
	outcomes, err := RedirectStudy(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("outcomes = %+v", outcomes)
	}
	if !outcomes[0].UserDeceived {
		t.Errorf("stock Android resisted the redirect: %+v", outcomes[0])
	}
	if outcomes[1].UserDeceived || outcomes[1].Alerts == 0 {
		t.Errorf("detection scheme failed: %+v", outcomes[1])
	}
	if outcomes[2].OriginSeen != "com.fun.game" {
		t.Errorf("origin scheme failed: %+v", outcomes[2])
	}
}

func TestInjectionStudyShape(t *testing.T) {
	outcomes, err := InjectionStudy(13)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"amazon js-bridge":               true,
		"amazon js-bridge (sanitized)":   false,
		"xiaomi push receiver":           true,
		"xiaomi push receiver (guarded)": false,
	}
	for _, o := range outcomes {
		if o.Installed != want[o.Surface] {
			t.Errorf("%s installed=%v, want %v", o.Surface, o.Installed, want[o.Surface])
		}
	}
}

func TestTableVDynamic(t *testing.T) {
	tab, err := TableV(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	reproduced := 0
	for _, row := range tab.Rows {
		if row[1] == "attack reproduced" {
			reproduced++
		}
	}
	if reproduced != 4 {
		t.Errorf("reproduced = %d of 4 dynamic targets\n%s", reproduced, tab.Render())
	}
}

func TestTableVIIAllDefensesEffective(t *testing.T) {
	tab, err := TableVII(19)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[4] != "yes" {
			t.Errorf("defense %q not effective:\n%s", row[0], tab.Render())
		}
		if row[3] == "0" {
			t.Errorf("defense %q has zero LOC", row[0])
		}
	}
}

func TestDefenseLOCSane(t *testing.T) {
	loc := DefenseLOC()
	for key, n := range loc {
		if n < 10 || n > 400 {
			t.Errorf("LOC[%s] = %d, outside a plausible range", key, n)
		}
	}
	// The paper's point: all defenses are lightweight (double-digit to
	// low-hundreds LOC).
	total := loc["dapp"] + loc["fuse"] + loc["detection"] + loc["origin"]
	if total > 800 {
		t.Errorf("total defense LOC = %d — no longer lightweight", total)
	}
}

func TestPerfTables(t *testing.T) {
	viii, err := TableVIII(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(viii.Rows) != 2 {
		t.Fatalf("table VIII rows = %d", len(viii.Rows))
	}
	ix, err := TableIX(10)
	if err != nil {
		t.Fatal(err)
	}
	x, err := TableX(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []Table{viii, ix, x} {
		if strings.TrimSpace(tab.Render()) == "" {
			t.Errorf("%s renders empty", tab.ID)
		}
	}
}

func TestDAPPSignaturePerfScalesWithSize(t *testing.T) {
	res, err := DAPPSignaturePerf([]int{1 << 10, 1 << 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res[1].NsOp <= res[0].NsOp {
		t.Errorf("parsing a 1 MiB apk (%f ns) not slower than 1 KiB (%f ns)", res[1].NsOp, res[0].NsOp)
	}
}

func TestFigure1Trace(t *testing.T) {
	tab, err := Figure1(23)
	if err != nil {
		t.Fatal(err)
	}
	steps := make(map[string]map[string]bool)
	for _, row := range tab.Rows {
		if steps[row[0]] == nil {
			steps[row[0]] = make(map[string]bool)
		}
		steps[row[0]][row[1]] = true
	}
	for store, seen := range steps {
		for _, step := range []string{"1", "2", "3", "4"} {
			if !seen[step] {
				t.Errorf("%s trace missing step %s", store, step)
			}
		}
	}
}

func TestDAPPStudy(t *testing.T) {
	res, err := DAPPStudy(29, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanInstalls != 12 {
		t.Errorf("clean installs = %d", res.CleanInstalls)
	}
	if res.FalsePositives != 0 {
		t.Errorf("false positives = %d, want 0 (the 45-day study)", res.FalsePositives)
	}
	if res.Attacks == 0 || res.Detected != res.Attacks {
		t.Errorf("detected %d of %d attacks", res.Detected, res.Attacks)
	}
}
