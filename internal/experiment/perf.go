package experiment

import (
	"fmt"
	"time"

	"github.com/ghost-installer/gia/internal/fuse"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/procfs"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

// PerfResult is one measured configuration.
type PerfResult struct {
	Name string
	NsOp float64
	Reps int
}

// FuseDACPerf measures the wall-clock cost of 1 MiB writes and reads on the
// FUSE-wrapped SD card with the original vs the modified (Section V-C) DAC
// scheme — the Table VIII experiment. reps mirrors the paper's 100
// iterations.
func FuseDACPerf(reps int) (origWrite, modWrite, origRead, modRead PerfResult) {
	if reps <= 0 {
		reps = 100
	}
	payload := make([]byte, 1<<20)
	run := func(patched bool) (write, read PerfResult) {
		fs := vfs.New(func() time.Duration { return 0 })
		daemon := fuse.New("/sdcard", func(vfs.UID, string) bool { return true })
		daemon.SetPatched(patched)
		_ = fs.MkdirAll("/sdcard/store", vfs.Root, vfs.ModeDir)
		_ = fs.Mount("/sdcard", daemon, 0)
		const owner vfs.UID = 10010

		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := fs.WriteFile("/sdcard/store/app.apk", payload, owner, vfs.ModeShared); err != nil {
				panic(fmt.Sprintf("experiment: fuse perf write: %v", err))
			}
		}
		write = PerfResult{NsOp: float64(time.Since(start).Nanoseconds()) / float64(reps), Reps: reps}

		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := fs.ReadFile("/sdcard/store/app.apk", owner); err != nil {
				panic(fmt.Sprintf("experiment: fuse perf read: %v", err))
			}
		}
		read = PerfResult{NsOp: float64(time.Since(start).Nanoseconds()) / float64(reps), Reps: reps}
		return write, read
	}
	// Warm-up plus three interleaved rounds, keeping the per-config
	// minimum: minima are robust against allocator growth and GC pauses
	// triggered by whatever ran earlier in the process.
	run(false)
	run(true)
	minOf := func(a, b PerfResult) PerfResult {
		if b.NsOp < a.NsOp {
			return b
		}
		return a
	}
	ow, or := run(false)
	mw, mr := run(true)
	for round := 0; round < 2; round++ {
		w, r := run(false)
		ow, or = minOf(ow, w), minOf(or, r)
		w, r = run(true)
		mw, mr = minOf(mw, w), minOf(mr, r)
	}
	ow.Name, or.Name = "write (org DAC)", "read (org DAC)"
	mw.Name, mr.Name = "write (mod DAC)", "read (mod DAC)"
	return ow, mw, or, mr
}

// TableVIII renders the FUSE DAC overhead measurement.
func TableVIII(reps int) Table {
	ow, mw, or, mr := FuseDACPerf(reps)
	return Table{
		ID:     "Table VIII",
		Title:  "FUSE DAC scheme performance (1 MiB ops on the SD card)",
		Header: []string{"Op", "org DAC ns/op", "mod DAC ns/op", "mod/org"},
		Rows: [][]string{
			{"write", fmt.Sprintf("%.0f", ow.NsOp), fmt.Sprintf("%.0f", mw.NsOp), pct(mw.NsOp / ow.NsOp)},
			{"read", fmt.Sprintf("%.0f", or.NsOp), fmt.Sprintf("%.0f", mr.NsOp), pct(mr.NsOp / or.NsOp)},
		},
		Notes: []string{fmt.Sprintf("%d repetitions per configuration, wall-clock", ow.Reps)},
	}
}

// intentDeliveryPerf measures wall-clock intent delivery cost with a given
// firewall configuration. It returns ns per delivered intent.
func intentDeliveryPerf(reps int, detection, origin bool) float64 {
	sched := sim.New(1)
	procs := procfs.NewTable()
	ams := intents.New(sched, procs, intents.Options{
		DeliveryLatency: time.Microsecond,
		Perms:           func(vfs.UID, string) bool { return true },
		UIDOf:           func(string) (vfs.UID, bool) { return 10001, true },
	})
	ams.Firewall().EnableDetection(detection)
	ams.Firewall().EnableOrigin(origin)
	// Alternate two senders so detection bookkeeping takes its real path
	// (alerts are suppressed by spacing beyond the threshold).
	ams.Firewall().SetThreshold(time.Nanosecond)
	ams.RegisterActivity("com.recv", "A", true, "", func(intents.Intent) string { return "x" })
	senders := []string{"com.a", "com.b"}

	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := ams.StartActivity(senders[i%2], intents.Intent{TargetPkg: "com.recv", Component: "A"}); err != nil {
			panic(fmt.Sprintf("experiment: intent perf: %v", err))
		}
		sched.Run()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// checkIntentPerf measures the CheckIntent logic in isolation (the paper's
// "Our Logic" column): ns per call with the given schemes enabled.
func checkIntentPerf(reps int, detection, origin bool) float64 {
	sched := sim.New(1)
	procs := procfs.NewTable()
	ams := intents.New(sched, procs, intents.Options{DeliveryLatency: time.Microsecond})
	fw := ams.Firewall()
	fw.EnableDetection(detection)
	fw.EnableOrigin(origin)
	fw.SetThreshold(time.Nanosecond)
	senders := []string{"com.a", "com.b"}
	in := intents.Intent{TargetPkg: "com.recv", Component: "A"}
	// Amplify to get above timer resolution.
	const amplify = 100
	start := time.Now()
	for i := 0; i < reps*amplify; i++ {
		fw.CheckIntent(senders[i%2], "com.recv", &in)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps*amplify)
}

// RealDeviceDeliveryNs is the paper's measured end-to-end Intent delivery
// time on the Nexus 5 (Table IX: 4,804,339 ns), used to put the simulated
// logic cost in real-device perspective.
const RealDeviceDeliveryNs = 4_804_339.0

// IntentPerf measures total simulated delivery cost and the direct cost of
// the added CheckIntent logic, reproducing Tables IX and X. The logic cost
// is measured in isolation (as the paper instrumented its checkIntent).
func IntentPerf(reps int, origin bool) (total, logic float64) {
	if reps <= 0 {
		reps = 50
	}
	detection := !origin
	// Minimum of three rounds for both measurements.
	for round := 0; round < 3; round++ {
		t := intentDeliveryPerf(reps, detection, origin)
		l := checkIntentPerf(reps, detection, origin)
		if round == 0 || t < total {
			total = t
		}
		if round == 0 || l < logic {
			logic = l
		}
	}
	return total, logic
}

func intentPerfTable(id, title string, reps int, origin bool) Table {
	total, logic := IntentPerf(reps, origin)
	simShare := 0.0
	if total > 0 {
		simShare = logic / total
		if simShare > 1 {
			simShare = 1
		}
	}
	return Table{
		ID:     id,
		Title:  title,
		Header: []string{"Logic ns/intent", "Sim delivery ns", "Share of sim delivery", "Share of real-device delivery (4.8 ms)"},
		Rows: [][]string{{
			fmt.Sprintf("%.0f", logic),
			fmt.Sprintf("%.0f", total),
			pct(simShare),
			fmt.Sprintf("%.4f%%", 100*logic/RealDeviceDeliveryNs),
		}},
		Notes: []string{
			"the simulated delivery path lacks binder/zygote/rendering costs, so the real-device column is the comparable one",
		},
	}
}

// TableIX renders the Intent detection scheme overhead.
func TableIX(reps int) Table {
	return intentPerfTable("Table IX", "Intent detection scheme performance", reps, false)
}

// TableX renders the Intent origin scheme overhead.
func TableX(reps int) Table {
	return intentPerfTable("Table X", "Intent origin scheme performance", reps, true)
}

// DAPPSignaturePerf measures DAPP's hot path — reading and parsing a staged
// APK to grab its signature — as a function of APK size (the Section VI-B
// CPU/RAM spike discussion).
func DAPPSignaturePerf(sizes []int, reps int) []PerfResult {
	if reps <= 0 {
		reps = 20
	}
	var out []PerfResult
	for _, size := range sizes {
		fs := vfs.New(func() time.Duration { return 0 })
		_ = fs.MkdirAll("/sdcard/store", vfs.Root, vfs.ModeDir)
		data := buildPaddedAPK(size)
		if err := fs.WriteFile("/sdcard/store/a.apk", data, vfs.UID(10010), vfs.ModeShared); err != nil {
			panic(fmt.Sprintf("experiment: dapp perf stage: %v", err))
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			raw, err := fs.ReadFile("/sdcard/store/a.apk", vfs.UID(10020))
			if err != nil {
				panic(fmt.Sprintf("experiment: dapp perf read: %v", err))
			}
			if _, err := decodeForPerf(raw); err != nil {
				panic(fmt.Sprintf("experiment: dapp perf decode: %v", err))
			}
		}
		out = append(out, PerfResult{
			Name: fmt.Sprintf("%d-byte apk", len(data)),
			NsOp: float64(time.Since(start).Nanoseconds()) / float64(reps),
			Reps: reps,
		})
	}
	return out
}
