package experiment

import (
	"fmt"
	"time"

	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/fuse"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/procfs"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

// perfClock hands each measurement its stopwatch: the returned function
// reports the elapsed time since perfClock was called. The default reads
// the monotonic stopwatch from internal/obs (the one blessed wall-clock
// entry point — gia-vet forbids raw time.Now in this package); tests swap
// in a deterministic counter so parallel and serial AllTables runs render
// byte-identical perf tables.
var perfClock = func() func() time.Duration {
	return obs.Stopwatch()
}

// perfInjector, when non-nil, is installed on every simulator a perf
// measurement builds. The perf paths used to panic on injected faults —
// taking down a whole AllTables run from inside a measurement loop — so the
// fault tests drive this hook to pin the error propagation instead.
var perfInjector fault.Injector

// PerfResult is one measured configuration.
type PerfResult struct {
	Name string
	NsOp float64
	Reps int
}

// FuseDACPerf measures the wall-clock cost of 1 MiB writes and reads on the
// FUSE-wrapped SD card with the original vs the modified (Section V-C) DAC
// scheme — the Table VIII experiment. reps mirrors the paper's 100
// iterations. A failing operation aborts the measurement with its error:
// an injected or real fault must surface, not poison the timings.
func FuseDACPerf(reps int) (origWrite, modWrite, origRead, modRead PerfResult, err error) {
	if reps <= 0 {
		reps = 100
	}
	payload := make([]byte, 1<<20)
	run := func(patched bool) (write, read PerfResult, err error) {
		fs := vfs.New(func() time.Duration { return 0 })
		fs.SetFaultInjector(perfInjector)
		daemon := fuse.New("/sdcard", func(vfs.UID, string) bool { return true })
		daemon.SetPatched(patched)
		_ = fs.MkdirAll("/sdcard/store", vfs.Root, vfs.ModeDir)
		_ = fs.Mount("/sdcard", daemon, 0)
		const owner vfs.UID = 10010

		elapsed := perfClock()
		for i := 0; i < reps; i++ {
			if err := fs.WriteFile("/sdcard/store/app.apk", payload, owner, vfs.ModeShared); err != nil {
				return write, read, fmt.Errorf("experiment: fuse perf write: %w", err)
			}
		}
		write = PerfResult{NsOp: float64(elapsed().Nanoseconds()) / float64(reps), Reps: reps}

		elapsed = perfClock()
		for i := 0; i < reps; i++ {
			if _, err := fs.ReadFile("/sdcard/store/app.apk", owner); err != nil {
				return write, read, fmt.Errorf("experiment: fuse perf read: %w", err)
			}
		}
		read = PerfResult{NsOp: float64(elapsed().Nanoseconds()) / float64(reps), Reps: reps}
		return write, read, nil
	}
	// Warm-up plus three interleaved rounds, keeping the per-config
	// minimum: minima are robust against allocator growth and GC pauses
	// triggered by whatever ran earlier in the process.
	if _, _, err := run(false); err != nil {
		return origWrite, modWrite, origRead, modRead, err
	}
	if _, _, err := run(true); err != nil {
		return origWrite, modWrite, origRead, modRead, err
	}
	minOf := func(a, b PerfResult) PerfResult {
		if b.NsOp < a.NsOp {
			return b
		}
		return a
	}
	ow, or, err := run(false)
	if err != nil {
		return origWrite, modWrite, origRead, modRead, err
	}
	mw, mr, err := run(true)
	if err != nil {
		return origWrite, modWrite, origRead, modRead, err
	}
	for round := 0; round < 2; round++ {
		w, r, err := run(false)
		if err != nil {
			return origWrite, modWrite, origRead, modRead, err
		}
		ow, or = minOf(ow, w), minOf(or, r)
		w, r, err = run(true)
		if err != nil {
			return origWrite, modWrite, origRead, modRead, err
		}
		mw, mr = minOf(mw, w), minOf(mr, r)
	}
	ow.Name, or.Name = "write (org DAC)", "read (org DAC)"
	mw.Name, mr.Name = "write (mod DAC)", "read (mod DAC)"
	return ow, mw, or, mr, nil
}

// TableVIII renders the FUSE DAC overhead measurement.
func TableVIII(reps int) (Table, error) {
	ow, mw, or, mr, err := FuseDACPerf(reps)
	if err != nil {
		return Table{}, err
	}
	return Table{
		ID:     "Table VIII",
		Title:  "FUSE DAC scheme performance (1 MiB ops on the SD card)",
		Header: []string{"Op", "org DAC ns/op", "mod DAC ns/op", "mod/org"},
		Rows: [][]string{
			{"write", fmt.Sprintf("%.0f", ow.NsOp), fmt.Sprintf("%.0f", mw.NsOp), pct(mw.NsOp / ow.NsOp)},
			{"read", fmt.Sprintf("%.0f", or.NsOp), fmt.Sprintf("%.0f", mr.NsOp), pct(mr.NsOp / or.NsOp)},
		},
		Notes: []string{fmt.Sprintf("%d repetitions per configuration, wall-clock", ow.Reps)},
	}, nil
}

// intentDeliveryPerf measures wall-clock intent delivery cost with a given
// firewall configuration. It returns ns per delivered intent.
func intentDeliveryPerf(reps int, detection, origin bool) (float64, error) {
	sched := sim.New(1)
	procs := procfs.NewTable()
	ams := intents.New(sched, procs, intents.Options{
		DeliveryLatency: time.Microsecond,
		Perms:           func(vfs.UID, string) bool { return true },
		UIDOf:           func(string) (vfs.UID, bool) { return 10001, true },
	})
	ams.SetFaultInjector(perfInjector)
	ams.Firewall().EnableDetection(detection)
	ams.Firewall().EnableOrigin(origin)
	// Alternate two senders so detection bookkeeping takes its real path
	// (alerts are suppressed by spacing beyond the threshold).
	ams.Firewall().SetThreshold(time.Nanosecond)
	ams.RegisterActivity("com.recv", "A", true, "", func(intents.Intent) string { return "x" })
	senders := []string{"com.a", "com.b"}

	elapsed := perfClock()
	for i := 0; i < reps; i++ {
		if err := ams.StartActivity(senders[i%2], intents.Intent{TargetPkg: "com.recv", Component: "A"}); err != nil {
			return 0, fmt.Errorf("experiment: intent perf: %w", err)
		}
		sched.Run()
	}
	return float64(elapsed().Nanoseconds()) / float64(reps), nil
}

// checkIntentPerf measures the CheckIntent logic in isolation (the paper's
// "Our Logic" column): ns per call with the given schemes enabled.
func checkIntentPerf(reps int, detection, origin bool) float64 {
	sched := sim.New(1)
	procs := procfs.NewTable()
	ams := intents.New(sched, procs, intents.Options{DeliveryLatency: time.Microsecond})
	fw := ams.Firewall()
	fw.EnableDetection(detection)
	fw.EnableOrigin(origin)
	fw.SetThreshold(time.Nanosecond)
	senders := []string{"com.a", "com.b"}
	in := intents.Intent{TargetPkg: "com.recv", Component: "A"}
	// Amplify to get above timer resolution.
	const amplify = 100
	elapsed := perfClock()
	for i := 0; i < reps*amplify; i++ {
		fw.CheckIntent(senders[i%2], "com.recv", &in)
	}
	return float64(elapsed().Nanoseconds()) / float64(reps*amplify)
}

// RealDeviceDeliveryNs is the paper's measured end-to-end Intent delivery
// time on the Nexus 5 (Table IX: 4,804,339 ns), used to put the simulated
// logic cost in real-device perspective.
const RealDeviceDeliveryNs = 4_804_339.0

// IntentPerf measures total simulated delivery cost and the direct cost of
// the added CheckIntent logic, reproducing Tables IX and X. The logic cost
// is measured in isolation (as the paper instrumented its checkIntent).
func IntentPerf(reps int, origin bool) (total, logic float64, err error) {
	if reps <= 0 {
		reps = 50
	}
	detection := !origin
	// Minimum of three rounds for both measurements.
	for round := 0; round < 3; round++ {
		t, err := intentDeliveryPerf(reps, detection, origin)
		if err != nil {
			return 0, 0, err
		}
		l := checkIntentPerf(reps, detection, origin)
		if round == 0 || t < total {
			total = t
		}
		if round == 0 || l < logic {
			logic = l
		}
	}
	return total, logic, nil
}

func intentPerfTable(id, title string, reps int, origin bool) (Table, error) {
	total, logic, err := IntentPerf(reps, origin)
	if err != nil {
		return Table{}, err
	}
	simShare := 0.0
	if total > 0 {
		simShare = logic / total
		if simShare > 1 {
			simShare = 1
		}
	}
	return Table{
		ID:     id,
		Title:  title,
		Header: []string{"Logic ns/intent", "Sim delivery ns", "Share of sim delivery", "Share of real-device delivery (4.8 ms)"},
		Rows: [][]string{{
			fmt.Sprintf("%.0f", logic),
			fmt.Sprintf("%.0f", total),
			pct(simShare),
			fmt.Sprintf("%.4f%%", 100*logic/RealDeviceDeliveryNs),
		}},
		Notes: []string{
			"the simulated delivery path lacks binder/zygote/rendering costs, so the real-device column is the comparable one",
		},
	}, nil
}

// TableIX renders the Intent detection scheme overhead.
func TableIX(reps int) (Table, error) {
	return intentPerfTable("Table IX", "Intent detection scheme performance", reps, false)
}

// TableX renders the Intent origin scheme overhead.
func TableX(reps int) (Table, error) {
	return intentPerfTable("Table X", "Intent origin scheme performance", reps, true)
}

// DAPPSignaturePerf measures DAPP's hot path — reading and parsing a staged
// APK to grab its signature — as a function of APK size (the Section VI-B
// CPU/RAM spike discussion).
func DAPPSignaturePerf(sizes []int, reps int) ([]PerfResult, error) {
	if reps <= 0 {
		reps = 20
	}
	var out []PerfResult
	for _, size := range sizes {
		fs := vfs.New(func() time.Duration { return 0 })
		fs.SetFaultInjector(perfInjector)
		_ = fs.MkdirAll("/sdcard/store", vfs.Root, vfs.ModeDir)
		data := buildPaddedAPK(size)
		if err := fs.WriteFile("/sdcard/store/a.apk", data, vfs.UID(10010), vfs.ModeShared); err != nil {
			return nil, fmt.Errorf("experiment: dapp perf stage: %w", err)
		}
		elapsed := perfClock()
		for i := 0; i < reps; i++ {
			raw, err := fs.ReadFile("/sdcard/store/a.apk", vfs.UID(10020))
			if err != nil {
				return nil, fmt.Errorf("experiment: dapp perf read: %w", err)
			}
			if _, err := decodeForPerf(raw); err != nil {
				return nil, fmt.Errorf("experiment: dapp perf decode: %w", err)
			}
		}
		out = append(out, PerfResult{
			Name: fmt.Sprintf("%d-byte apk", len(data)),
			NsOp: float64(elapsed().Nanoseconds()) / float64(reps),
			Reps: reps,
		})
	}
	return out, nil
}
