// Package experiment regenerates every table and figure of the paper's
// evaluation: the qualitative attack inventories (Tables I and V), the
// measurement-study tables (II, III, IV, VI, plus the platform-key and Hare
// studies), the defense effectiveness/complexity matrix (VII), the
// performance tables (VIII, IX, X), the AIT trace of Figure 1, and the
// in-text studies of Sections III and VI.
package experiment

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// JSON returns the table as indented JSON (for machine consumption of
// experiment results).
func (t Table) JSON() (string, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiment: marshal table %s: %w", t.ID, err)
	}
	return string(data), nil
}

// Render produces an aligned plain-text table.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

func ratio(n, d int) string {
	if d == 0 {
		return "0/0"
	}
	return fmt.Sprintf("%d/%d (%.1f%%)", n, d, 100*float64(n)/float64(d))
}
