package experiment

import "github.com/ghost-installer/gia/internal/corpus"

// Options configure a full experiment sweep.
type Options struct {
	Seed     int64
	Scale    float64 // corpus scale (1.0 = paper-sized populations)
	PerfReps int     // repetitions for Tables VIII/IX/X
	// DAPPInstalls sizes the DAPP false-positive trace (default 24; the
	// paper's full trace used 924 installs).
	DAPPInstalls int
}

// AllTables regenerates every paper table and figure plus the in-text
// studies, in presentation order.
func AllTables(opts Options) ([]Table, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	c := corpus.Generate(corpus.Config{Seed: opts.Seed, Scale: opts.Scale})
	var tables []Table
	add := func(t Table, err error) error {
		if err != nil {
			return err
		}
		tables = append(tables, t)
		return nil
	}
	if err := add(TableI(), nil); err != nil {
		return nil, err
	}
	if err := add(TableII(c), nil); err != nil {
		return nil, err
	}
	if err := add(TableIII(c), nil); err != nil {
		return nil, err
	}
	if err := add(TableIV(c), nil); err != nil {
		return nil, err
	}
	if err := add(TableV(opts.Seed)); err != nil {
		return nil, err
	}
	if err := add(TableVI(c), nil); err != nil {
		return nil, err
	}
	if err := add(TableVII(opts.Seed)); err != nil {
		return nil, err
	}
	if err := add(TableVIII(opts.PerfReps), nil); err != nil {
		return nil, err
	}
	if err := add(TableIX(opts.PerfReps), nil); err != nil {
		return nil, err
	}
	if err := add(TableX(opts.PerfReps), nil); err != nil {
		return nil, err
	}
	if err := add(Figure1(opts.Seed)); err != nil {
		return nil, err
	}
	if err := add(HijackTable(opts.Seed)); err != nil {
		return nil, err
	}
	if err := add(DMTable(opts.Seed)); err != nil {
		return nil, err
	}
	if err := add(RedirectTable(opts.Seed)); err != nil {
		return nil, err
	}
	if err := add(KeyStudy(c), nil); err != nil {
		return nil, err
	}
	if err := add(HareStudy(c), nil); err != nil {
		return nil, err
	}
	if err := add(SuggestionTable(opts.Seed)); err != nil {
		return nil, err
	}
	if err := add(FlowStudy(c, 43), nil); err != nil {
		return nil, err
	}
	installs := opts.DAPPInstalls
	if installs <= 0 {
		installs = 24
	}
	if err := add(DAPPTable(opts.Seed, installs, 6)); err != nil {
		return nil, err
	}
	if err := add(FleetTable(5, opts.Seed)); err != nil {
		return nil, err
	}
	if err := add(ChaosTable(opts.Seed, 0)); err != nil {
		return nil, err
	}
	return tables, nil
}
