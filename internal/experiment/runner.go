package experiment

import (
	"github.com/ghost-installer/gia/internal/corpus"
	"github.com/ghost-installer/gia/internal/measure"
	"github.com/ghost-installer/gia/internal/par"
)

// Options configure a full experiment sweep.
type Options struct {
	Seed     int64
	Scale    float64 // corpus scale (1.0 = paper-sized populations)
	PerfReps int     // repetitions for Tables VIII/IX/X
	// DAPPInstalls sizes the DAPP false-positive trace (default 24; the
	// paper's full trace used 924 installs).
	DAPPInstalls int
	// Workers bounds the experiment engine's shared worker pool; <= 0
	// selects NumCPU. Independent tables generate concurrently and the
	// fleet/suggestion/chaos studies fan out on the same bound. Every
	// study builds private simulators from derived seeds, so the rendered
	// output is bit-identical for any worker count.
	Workers int
	// NoAnalysisCache disables the content-addressed analysis cache that
	// backs the artifact-scanning tables (II, III, Flow Study); every smali
	// file is then re-analyzed from scratch. The rendered tables are
	// identical either way (TestCacheTableParity pins this) — the switch
	// exists for benchmarking and as a soundness escape hatch.
	NoAnalysisCache bool
}

// AllTables regenerates every paper table and figure plus the in-text
// studies, in presentation order. The tables are independent of each other
// (they share only the read-only corpus), so they run concurrently on the
// worker pool; results come back in presentation order and, on failure, the
// error of the earliest failing table is returned.
func AllTables(opts Options) ([]Table, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	installs := opts.DAPPInstalls
	if installs <= 0 {
		installs = 24
	}
	// Generated once up front; the table builders only read it.
	c := corpus.Generate(corpus.Config{Seed: opts.Seed, Scale: opts.Scale})
	scanOpts := measure.ScanOptions{Workers: opts.Workers, NoCache: opts.NoAnalysisCache}
	jobs := []func() (Table, error){
		func() (Table, error) { return TableI(), nil },
		func() (Table, error) { return tableII(c, scanOpts), nil },
		func() (Table, error) { return tableIII(c, scanOpts), nil },
		func() (Table, error) { return TableIV(c), nil },
		func() (Table, error) { return TableV(opts.Seed) },
		func() (Table, error) { return TableVI(c), nil },
		func() (Table, error) { return TableVII(opts.Seed) },
		func() (Table, error) { return TableVIII(opts.PerfReps) },
		func() (Table, error) { return TableIX(opts.PerfReps) },
		func() (Table, error) { return TableX(opts.PerfReps) },
		func() (Table, error) { return Figure1(opts.Seed) },
		func() (Table, error) { return HijackTable(opts.Seed) },
		func() (Table, error) { return DMTable(opts.Seed) },
		func() (Table, error) { return RedirectTable(opts.Seed) },
		func() (Table, error) { return KeyStudy(c), nil },
		func() (Table, error) { return HareStudy(c), nil },
		func() (Table, error) { return SuggestionTable(opts.Seed, opts.Workers) },
		func() (Table, error) { return flowStudy(c, 43, scanOpts), nil },
		func() (Table, error) { return threatScoreTable(c, scanOpts), nil },
		func() (Table, error) { return DAPPTable(opts.Seed, installs, 6) },
		func() (Table, error) { return FleetTable(5, opts.Seed, opts.Workers) },
		func() (Table, error) { return ChaosTable(opts.Seed, opts.Workers) },
	}
	return par.Map(opts.Workers, len(jobs), func(i int) (Table, error) { return jobs[i]() })
}
