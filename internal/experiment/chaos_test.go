package experiment

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/installer"
)

// TestExplorationStudy pins the chaos study's shape: the orderings row
// explores a real choice tree with no violations, both 1000-schedule sweeps
// are flake-free, and the truncation fault flips the hijack outcome into a
// minimized, replayable token.
func TestExplorationStudy(t *testing.T) {
	rows, err := ExplorationStudy(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byName := map[string]ExplorationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}

	ord := byName["exhaustive orderings (wait-and-see)"]
	if ord.MaxBranch < 2 {
		t.Errorf("orderings row found no same-instant ties (MaxBranch=%d)", ord.MaxBranch)
	}
	if ord.Explored < 4 || ord.Truncated {
		t.Errorf("orderings row explored %d (truncated=%v), want an untruncated tree", ord.Explored, ord.Truncated)
	}
	if ord.Violated != 0 {
		t.Errorf("orderings row: %d violations (token %s); hijack should land under every ordering", ord.Violated, ord.Token)
	}

	for _, name := range []string{"seed x jitter sweep (legacy)", "seed x jitter sweep (FUSE patch)"} {
		row := byName[name]
		if row.Explored != 1000 {
			t.Errorf("%s: explored %d schedules, want 1000", name, row.Explored)
		}
		if row.Violated != 0 {
			t.Errorf("%s: %d violations (token %s); the invariant flaked", name, row.Violated, row.Token)
		}
	}

	fr := byName["truncated download fault"]
	if fr.Violated != 1 {
		t.Fatalf("fault row: %d violations, want exactly 1 (the injected truncation)", fr.Violated)
	}
	if fr.Token == "-" {
		t.Fatal("fault row produced no replay token")
	}
	if _, err := chaos.ParseToken(fr.Token); err != nil {
		t.Fatalf("fault row token %q does not parse: %v", fr.Token, err)
	}
	if !fr.Replayed {
		t.Errorf("fault row token %s did not reproduce the violation on replay", fr.Token)
	}
}

// TestPORSoundnessGoldenWorkload diffs POR-reduced against exhaustive
// exploration on the real wait-and-see AIT workload (the orderings row of
// the chaos study): identical violation sets on a genuinely-branching choice
// tree, with the reduced walk never exploring more schedules. The staging
// directory is watched by the attacker for the whole race, so the
// dispatch-time footprint check keeps most ties opaque here — the gate
// checks soundness on the golden world, not that pruning fires (the
// synthetic worlds in internal/chaos pin that).
func TestPORSoundnessGoldenWorkload(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 900<<10)
	fn := func(r *chaos.Run) error {
		res, err := aitRun(installer.Amazon(), attack.StrategyWaitAndSee, payload, false, r)
		if err != nil {
			return err
		}
		if !res.Hijacked {
			return fmt.Errorf("hijack missed (attempts=%d, err=%v)", res.Attempts, res.Err)
		}
		return nil
	}
	explore := func(disablePOR bool) *chaos.Result {
		ex := &chaos.Explorer{
			Workers: 0, MaxSchedules: 2000, DisablePOR: disablePOR,
			Plan:        chaos.Quantize(10*time.Millisecond, 0, 0),
			WorkerState: ArenaWorkerState(nil),
		}
		return ex.ExploreOrders(chaos.Schedule{Seed: 1}, fn)
	}
	red, exh := explore(false), explore(true)
	if exh.MaxBranch < 2 || exh.Explored < 4 || exh.Truncated {
		t.Fatalf("exhaustive walk has no real branching: %+v", exh)
	}
	if red.Explored > exh.Explored {
		t.Errorf("reduced explored %d > exhaustive %d", red.Explored, exh.Explored)
	}
	if red.Violations != 0 || exh.Violations != 0 {
		t.Errorf("violation sets diverge: reduced %d, exhaustive %d (hijack must land on every ordering)",
			red.Violations, exh.Violations)
	}
	if red.MaxBranch != exh.MaxBranch {
		t.Errorf("MaxBranch: reduced %d, exhaustive %d", red.MaxBranch, exh.MaxBranch)
	}
	t.Logf("golden workload: exhaustive %d schedules, reduced %d (+%d POR-skipped)",
		exh.Explored, red.Explored, red.PORSkipped)
}

// TestChaosTable smoke-checks the rendered table.
func TestChaosTable(t *testing.T) {
	tbl, err := ChaosTable(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tbl.Rows))
	}
	out := tbl.Render()
	for _, want := range []string{"Chaos Study", "gia1:", "(replays)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
