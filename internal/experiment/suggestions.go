package experiment

import (
	"fmt"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/par"
)

// SuggestionOutcome is one row of the Section VII developer-suggestion
// study: the same attack run against the stock and the hardened profile.
type SuggestionOutcome struct {
	Store            string
	Strategy         attack.Strategy
	StockHijacked    bool
	HardenedHijacked bool
	HardenedClean    bool
}

// SuggestionStudy applies the paper's developer suggestions (prefer
// internal staging; verify on a private copy) to the vulnerable store
// profiles and replays both hijack strategies: the stock profile falls,
// the hardened one does not. The (store, strategy) cells are independent
// worlds, so they fan out on a worker pool of the given size (<= 0 selects
// NumCPU); the outcome order is fixed for any pool size.
func SuggestionStudy(seed int64, workers int) ([]SuggestionOutcome, error) {
	profiles := []installer.Profile{
		installer.Amazon(), installer.Xiaomi(), installer.Baidu(), installer.DTIgnite(),
	}
	type job struct {
		prof     installer.Profile
		strategy attack.Strategy
		index    int64
	}
	var jobs []job
	for _, prof := range profiles {
		strategies := []attack.Strategy{attack.StrategyFileObserver, attack.StrategyWaitAndSee}
		if prof.TempNameRename {
			// The paper attacked Xiaomi via its rename signal (the
			// FileObserver strategy); the generic wait-and-see delay
			// does not apply to its short window.
			strategies = strategies[:1]
		}
		for j, strategy := range strategies {
			jobs = append(jobs, job{prof: prof, strategy: strategy, index: int64(j)})
		}
	}
	return par.Map(workers, len(jobs), func(i int) (SuggestionOutcome, error) {
		jb := jobs[i]
		run := func(p installer.Profile, localSeed int64) (installer.Result, error) {
			s, err := NewScenario(p, localSeed)
			if err != nil {
				return installer.Result{}, err
			}
			atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(jb.prof, jb.strategy), s.Target)
			if err := atk.Launch(); err != nil {
				return installer.Result{}, err
			}
			res := s.RunAIT()
			atk.Stop()
			return res, nil
		}
		// The stock and hardened runs deliberately share one derived seed:
		// the comparison must isolate the profile change from the timing
		// draws.
		localSeed := deriveSeed(seed, "suggestion/"+jb.prof.Package, jb.index)
		stock, err := run(jb.prof, localSeed)
		if err != nil {
			return SuggestionOutcome{}, err
		}
		hardened, err := run(installer.Hardened(jb.prof), localSeed)
		if err != nil {
			return SuggestionOutcome{}, err
		}
		return SuggestionOutcome{
			Store:            jb.prof.Package,
			Strategy:         jb.strategy,
			StockHijacked:    stock.Hijacked,
			HardenedHijacked: hardened.Hijacked,
			HardenedClean:    hardened.Clean(),
		}, nil
	})
}

// SuggestionTable renders the suggestion study.
func SuggestionTable(seed int64, workers int) (Table, error) {
	outcomes, err := SuggestionStudy(seed, workers)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Suggestion Study",
		Title:  "Section VII developer suggestions vs the hijack attacks",
		Header: []string{"Store", "Strategy", "Stock hijacked", "Hardened hijacked", "Hardened clean"},
	}
	for _, o := range outcomes {
		t.Rows = append(t.Rows, []string{
			o.Store, o.Strategy.String(),
			fmt.Sprintf("%v", o.StockHijacked),
			fmt.Sprintf("%v", o.HardenedHijacked),
			fmt.Sprintf("%v", o.HardenedClean),
		})
	}
	t.Notes = append(t.Notes,
		"hardened = prefer internal staging (Suggestion 1) + verify on a private copy (Suggestion 2)")
	return t, nil
}
