package experiment

import (
	"fmt"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/installer"
)

// SuggestionOutcome is one row of the Section VII developer-suggestion
// study: the same attack run against the stock and the hardened profile.
type SuggestionOutcome struct {
	Store            string
	Strategy         attack.Strategy
	StockHijacked    bool
	HardenedHijacked bool
	HardenedClean    bool
}

// SuggestionStudy applies the paper's developer suggestions (prefer
// internal staging; verify on a private copy) to the vulnerable store
// profiles and replays both hijack strategies: the stock profile falls,
// the hardened one does not.
func SuggestionStudy(seed int64) ([]SuggestionOutcome, error) {
	profiles := []installer.Profile{
		installer.Amazon(), installer.Xiaomi(), installer.Baidu(), installer.DTIgnite(),
	}
	var out []SuggestionOutcome
	for i, prof := range profiles {
		strategies := []attack.Strategy{attack.StrategyFileObserver, attack.StrategyWaitAndSee}
		if prof.TempNameRename {
			// The paper attacked Xiaomi via its rename signal (the
			// FileObserver strategy); the generic wait-and-see delay
			// does not apply to its short window.
			strategies = strategies[:1]
		}
		for j, strategy := range strategies {
			run := func(p installer.Profile, localSeed int64) (installer.Result, error) {
				s, err := NewScenario(p, localSeed)
				if err != nil {
					return installer.Result{}, err
				}
				atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, strategy), s.Target)
				if err := atk.Launch(); err != nil {
					return installer.Result{}, err
				}
				res := s.RunAIT()
				atk.Stop()
				return res, nil
			}
			stock, err := run(prof, seed+int64(i*10+j))
			if err != nil {
				return nil, err
			}
			hardened, err := run(installer.Hardened(prof), seed+int64(i*10+j))
			if err != nil {
				return nil, err
			}
			out = append(out, SuggestionOutcome{
				Store:            prof.Package,
				Strategy:         strategy,
				StockHijacked:    stock.Hijacked,
				HardenedHijacked: hardened.Hijacked,
				HardenedClean:    hardened.Clean(),
			})
		}
	}
	return out, nil
}

// SuggestionTable renders the suggestion study.
func SuggestionTable(seed int64) (Table, error) {
	outcomes, err := SuggestionStudy(seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Suggestion Study",
		Title:  "Section VII developer suggestions vs the hijack attacks",
		Header: []string{"Store", "Strategy", "Stock hijacked", "Hardened hijacked", "Hardened clean"},
	}
	for _, o := range outcomes {
		t.Rows = append(t.Rows, []string{
			o.Store, o.Strategy.String(),
			fmt.Sprintf("%v", o.StockHijacked),
			fmt.Sprintf("%v", o.HardenedHijacked),
			fmt.Sprintf("%v", o.HardenedClean),
		})
	}
	t.Notes = append(t.Notes,
		"hardened = prefer internal staging (Suggestion 1) + verify on a private copy (Suggestion 2)")
	return t, nil
}
