package experiment

import (
	"fmt"
	"sync"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/defense"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

// horizon bounds each simulated run: attacker pollers never drain the
// event queue on their own.
const horizon = 2 * time.Minute

// TargetPackage is the app the stores deliver in dynamic scenarios.
const TargetPackage = "com.popular.app"

// Scenario is one device + store + published target + resident malware.
type Scenario struct {
	Dev    *device.Device
	Store  *installer.App
	Mal    *attack.Malware
	Target *apk.APK
}

// NewScenario boots a device, deploys the store profile, publishes the
// target app and plants the malware.
func NewScenario(prof installer.Profile, seed int64) (*Scenario, error) {
	return NewScenarioPayload(prof, seed, []byte("genuine"))
}

// NewScenarioPayload is NewScenario with a caller-chosen classes.dex
// payload; a payload larger than one transfer chunk (64 KiB) makes the
// download multi-chunk, which the chaos fault rows rely on to truncate a
// transfer mid-flight.
func NewScenarioPayload(prof installer.Profile, seed int64, payload []byte) (*Scenario, error) {
	dev, err := device.Boot(ScenarioDeviceProfile(seed))
	if err != nil {
		return nil, err
	}
	return NewScenarioPayloadOn(dev, prof, payload)
}

// ScenarioDeviceProfile is the device every dynamic scenario runs on —
// exposed so arena-based callers can pool devices of the same profile and
// build scenarios on them with NewScenarioOn.
func ScenarioDeviceProfile(seed int64) device.Profile {
	return device.Profile{Name: "galaxy-s6-verizon", Vendor: "samsung", Seed: seed}
}

// NewScenarioOn builds the store + target + malware fixture on an
// already-booted (or arena-acquired) device.
func NewScenarioOn(dev *device.Device, prof installer.Profile) (*Scenario, error) {
	return NewScenarioPayloadOn(dev, prof, []byte("genuine"))
}

// targetCache memoizes the published target APK by payload: a sweep builds
// the identical artifact for every schedule, and signing keys are
// deterministic per subject, so the build (clone + sign + encode) is a
// one-time cost per distinct payload. Cached targets are shared across
// scenarios and must be treated as immutable — attacks repackage, never
// mutate.
var targetCache struct {
	sync.Mutex
	m map[string]*apk.APK
}

func targetAPK(payload []byte) *apk.APK {
	targetCache.Lock()
	target := targetCache.m[string(payload)]
	targetCache.Unlock()
	if target != nil {
		return target
	}
	target = apk.Build(apk.Manifest{
		Package: TargetPackage, VersionCode: 1, Label: "Popular App", Icon: "icon-popular",
		UsesPerms: []string{perm.Internet},
	}, map[string][]byte{"classes.dex": payload}, sig.NewKey("popular-dev"))
	targetCache.Lock()
	if targetCache.m == nil {
		targetCache.m = make(map[string]*apk.APK)
	}
	targetCache.m[string(payload)] = target
	targetCache.Unlock()
	return target
}

// NewScenarioPayloadOn is NewScenarioOn with a caller-chosen payload.
func NewScenarioPayloadOn(dev *device.Device, prof installer.Profile, payload []byte) (*Scenario, error) {
	store, err := installer.Deploy(dev, prof, nil)
	if err != nil {
		return nil, err
	}
	target := targetAPK(payload)
	store.Store.Publish(target)
	mal, err := attack.DeployMalware(dev, "com.fun.game")
	if err != nil {
		return nil, err
	}
	return &Scenario{Dev: dev, Store: store, Mal: mal, Target: target}, nil
}

// RunAIT triggers one installation of the target and drives the clock.
func (s *Scenario) RunAIT() installer.Result {
	var res installer.Result
	s.Store.RequestInstall(TargetPackage, func(r installer.Result) { res = r })
	s.Dev.Sched.RunUntil(s.Dev.Sched.Now() + horizon)
	return res
}

// HijackOutcome is one row of the hijack study.
type HijackOutcome struct {
	Store        string
	Strategy     attack.Strategy
	Fingerprint  int
	WaitDelay    time.Duration
	Hijacked     bool
	Attempts     int
	Replacements int
	Err          error
}

// HijackStudy runs both Section III-B strategies against every SD-card
// store profile (and Google Play as the internal-storage control).
func HijackStudy(seed int64) ([]HijackOutcome, error) {
	profiles := installer.AllStoreProfiles()
	var out []HijackOutcome
	for i, prof := range profiles {
		for _, strategy := range []attack.Strategy{attack.StrategyFileObserver, attack.StrategyWaitAndSee} {
			// Stream per strategy, index per profile position: profiles can
			// share a package name (Amazon v1/v2), so the position is the
			// collision-free coordinate.
			s, err := NewScenario(prof, deriveSeed(seed, "hijack/"+strategy.String(), int64(i)))
			if err != nil {
				return nil, err
			}
			cfg := attack.ConfigForStore(prof, strategy)
			atk := attack.NewTOCTOU(s.Mal, cfg, s.Target)
			if err := atk.Launch(); err != nil {
				return nil, err
			}
			res := s.RunAIT()
			atk.Stop()
			storeName := prof.Package
			if prof.UseManifestVerification {
				storeName += " (v2, manifest-verify)"
			}
			out = append(out, HijackOutcome{
				Store:        storeName,
				Strategy:     strategy,
				Fingerprint:  prof.VerifyReads,
				WaitDelay:    cfg.WaitDelay,
				Hijacked:     res.Hijacked,
				Attempts:     res.Attempts,
				Replacements: len(atk.Replacements()),
				Err:          res.Err,
			})
		}
	}
	return out, nil
}

// HijackTable renders the hijack study.
func HijackTable(seed int64) (Table, error) {
	outcomes, err := HijackStudy(seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Hijack Study",
		Title:  "Installation hijacking per store and strategy (Section III-B)",
		Header: []string{"Store", "Strategy", "Fingerprint", "Wait delay", "Hijacked", "Attempts"},
	}
	for _, o := range outcomes {
		fp := fmt.Sprintf("%d reads", o.Fingerprint)
		wait := "-"
		if o.Strategy == attack.StrategyWaitAndSee {
			fp = "-"
			wait = o.WaitDelay.String()
		}
		t.Rows = append(t.Rows, []string{
			o.Store, o.Strategy.String(), fp, wait,
			fmt.Sprintf("%v", o.Hijacked), fmt.Sprintf("%d", o.Attempts),
		})
	}
	t.Notes = append(t.Notes,
		"google play (internal storage) is the negative control",
		"wait-and-see uses the paper's measured delays (2 s DTIgnite, 500 ms Amazon/Baidu); stores the paper attacked via FileObserver fingerprints may resist the generic 500 ms delay")
	return t, nil
}

// TableV verifies the vulnerable pre-installed installers and reports their
// real-world footprint.
func TableV(seed int64) (Table, error) {
	type entry struct {
		prof     installer.Profile
		devices  string
		carriers string
		vendors  string
		static   bool // SprintZone was statically verified only
	}
	entries := []entry{
		{prof: installer.Amazon(), devices: "Verizon & US Cellular Android devices (Galaxy S4/S5/S6/S6 edge, Note 3/4)", carriers: "Verizon, US Cellular", vendors: "Samsung, LG, HTC, Motorola"},
		{prof: installer.DTIgnite(), devices: "devices of 30+ carriers (50M+ pushed installs)", carriers: "Verizon, T-Mobile, AT&T, Vodafone, Singtel", vendors: "via affected carriers"},
		{prof: installer.Xiaomi(), devices: "all Xiaomi devices", carriers: "China Mobile, China Telecom, China Unicom", vendors: "Xiaomi"},
		{prof: installer.HuaweiStore(), devices: "all Huawei devices", carriers: "China Mobile, China Telecom, China Unicom", vendors: "Huawei"},
		{prof: installer.SprintZone(), devices: "Sprint-released Android devices", carriers: "Sprint", vendors: "via Sprint", static: true},
	}
	t := Table{
		ID:     "Table V",
		Title:  "Impact of vulnerable pre-installed apps with INSTALL_PACKAGES",
		Header: []string{"Vulnerable app", "Verified", "Affected devices", "Affected carriers", "Affected vendors"},
	}
	for _, e := range entries {
		verified := "attack reproduced"
		if e.static {
			verified = "static analysis only"
		} else {
			s, err := NewScenario(e.prof, deriveSeed(seed, "tablev/"+e.prof.Package, 0))
			if err != nil {
				return Table{}, err
			}
			atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(e.prof, attack.StrategyFileObserver), s.Target)
			if err := atk.Launch(); err != nil {
				return Table{}, err
			}
			res := s.RunAIT()
			atk.Stop()
			if !res.Hijacked {
				verified = fmt.Sprintf("NOT reproduced (%v)", res.Err)
			}
		}
		t.Rows = append(t.Rows, []string{e.prof.Label, verified, e.devices, e.carriers, e.vendors})
	}
	return t, nil
}

// DMOutcome is one row of the Download Manager study.
type DMOutcome struct {
	Policy    dm.SymlinkPolicy
	Operation string
	Succeeded bool
	Tries     int
	DMHealthy bool
}

// DMStudy exercises the Section III-C attack across the three DM policies.
func DMStudy(seed int64) ([]DMOutcome, error) {
	var out []DMOutcome
	for _, policy := range []dm.SymlinkPolicy{dm.PolicyLegacy, dm.PolicyRecheck, dm.PolicyFixed} {
		for j, op := range []string{"steal-private-file", "delete-dm-database"} {
			dev, err := device.Boot(device.Profile{Name: "nexus5", Vendor: "lge", DMPolicy: policy, Seed: deriveSeed(seed, "dm/"+policy.String(), int64(j))})
			if err != nil {
				return nil, err
			}
			mal, err := attack.DeployMalware(dev, "com.fun.game")
			if err != nil {
				return nil, err
			}
			victim, err := dev.PMS.InstallFromParsed(apk.Build(apk.Manifest{
				Package: "com.android.vending", VersionCode: 1, Label: "Play",
			}, nil, sig.NewKey("play")))
			if err != nil {
				return nil, err
			}
			dev.Run()
			secret := "/data/data/com.android.vending/files/url-tokens"
			if err := dev.FS.WriteFile(secret, []byte("tokens"), victim.UID, vfs.ModePrivate); err != nil {
				return nil, err
			}
			atk, err := attack.NewDMSymlink(mal)
			if err != nil {
				return nil, err
			}
			o := DMOutcome{Policy: policy, Operation: op}
			switch op {
			case "steal-private-file":
				atk.Steal(secret, 50, func(b []byte, err error) {
					o.Succeeded = err == nil && string(b) == "tokens"
				})
			case "delete-dm-database":
				atk.Delete(dm.DBPath, 50, func(err error) { o.Succeeded = err == nil })
			}
			dev.Sched.RunUntil(dev.Sched.Now() + horizon)
			o.Tries = atk.Tries()
			o.DMHealthy = dev.DM.Healthy()
			out = append(out, o)
		}
	}
	return out, nil
}

// DMTable renders the DM study.
func DMTable(seed int64) (Table, error) {
	outcomes, err := DMStudy(seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "DM Study",
		Title:  "Download Manager symlink TOCTOU across policies (Section III-C)",
		Header: []string{"DM policy", "Operation", "Succeeded", "Tries", "DM healthy after"},
	}
	for _, o := range outcomes {
		t.Rows = append(t.Rows, []string{
			o.Policy.String(), o.Operation,
			fmt.Sprintf("%v", o.Succeeded), fmt.Sprintf("%d", o.Tries),
			fmt.Sprintf("%v", o.DMHealthy),
		})
	}
	return t, nil
}

// RedirectOutcome is one row of the redirect study.
type RedirectOutcome struct {
	Defense      string
	ScreenShows  string
	UserDeceived bool
	Alerts       int
	OriginSeen   string
}

// RedirectStudy runs the Facebook→Play redirect attack under each Intent
// defense configuration (Section III-D vs Section V-C).
func RedirectStudy(seed int64) ([]RedirectOutcome, error) {
	configs := []struct {
		name      string
		detection bool
		origin    bool
	}{
		{name: "none (stock Android)"},
		{name: "intent detection", detection: true},
		{name: "intent origin", origin: true},
	}
	var out []RedirectOutcome
	for _, cfg := range configs {
		dev, err := device.Boot(device.Profile{Name: "nexus5", Vendor: "lge", Seed: deriveSeed(seed, "redirect/"+cfg.name, 0)})
		if err != nil {
			return nil, err
		}
		if _, err := installer.Deploy(dev, installer.GooglePlay(), nil); err != nil {
			return nil, err
		}
		if _, err := dev.PMS.InstallFromParsed(apk.Build(apk.Manifest{
			Package: "com.facebook.katana", VersionCode: 1, Label: "Facebook",
		}, nil, sig.NewKey("facebook"))); err != nil {
			return nil, err
		}
		dev.AMS.RegisterActivity("com.facebook.katana", "Feed", true, "", func(intents.Intent) string { return "facebook:feed" })
		dev.Run()
		dev.AMS.Firewall().EnableDetection(cfg.detection)
		dev.AMS.Firewall().EnableOrigin(cfg.origin)

		var origin string
		if cfg.origin {
			// With the origin scheme, the store can display the sender:
			// re-register AppDetails with an origin-aware handler.
			dev.AMS.RegisterActivity("com.android.vending", installer.ActivityAppDetails, true, "",
				func(in intents.Intent) string {
					if o, ok := in.Origin(); ok {
						origin = o
					}
					return "Google Play:details:" + in.Extra("appId") + ":from=" + origin
				})
		}

		mal, err := attack.DeployMalware(dev, "com.fun.game")
		if err != nil {
			return nil, err
		}
		red := attack.NewRedirect(mal, attack.RedirectConfig{
			VictimPkg:      "com.facebook.katana",
			StorePkg:       "com.android.vending",
			StoreActivity:  installer.ActivityAppDetails,
			LookalikeAppID: "com.faceb00k.orca",
		})
		if err := red.Launch(); err != nil {
			return nil, err
		}
		_ = dev.AMS.StartActivity(device.SystemSender, intents.Intent{TargetPkg: "com.facebook.katana", Component: "Feed"})
		dev.Sched.RunUntil(dev.Sched.Now() + 200*time.Millisecond)
		_ = dev.AMS.StartActivity("com.facebook.katana", intents.Intent{
			TargetPkg: "com.android.vending", Component: installer.ActivityAppDetails,
			Extras: map[string]string{"appId": "com.facebook.orca"},
		})
		dev.Sched.RunUntil(dev.Sched.Now() + time.Second)
		red.Stop()

		screen := dev.AMS.Screen()
		alerts := dev.AMS.Firewall().Alerts()
		deceived := screen.Pkg == "com.android.vending" &&
			containsLookalike(screen.Content, "com.faceb00k.orca") &&
			len(alerts) == 0 && origin == ""
		out = append(out, RedirectOutcome{
			Defense:      cfg.name,
			ScreenShows:  screen.Content,
			UserDeceived: deceived,
			Alerts:       len(alerts),
			OriginSeen:   origin,
		})
	}
	return out, nil
}

func containsLookalike(content, appID string) bool {
	return len(content) >= len(appID) && stringsContains(content, appID)
}

func stringsContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// RedirectTable renders the redirect study.
func RedirectTable(seed int64) (Table, error) {
	outcomes, err := RedirectStudy(seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Redirect Study",
		Title:  "Redirect-Intent attack vs the Intent defenses (Sections III-D, V-C)",
		Header: []string{"Defense", "User deceived", "Alerts", "Origin visible to recipient"},
	}
	for _, o := range outcomes {
		origin := o.OriginSeen
		if origin == "" {
			origin = "-"
		}
		t.Rows = append(t.Rows, []string{
			o.Defense, fmt.Sprintf("%v", o.UserDeceived),
			fmt.Sprintf("%d", o.Alerts), origin,
		})
	}
	return t, nil
}

// InjectionOutcome is one row of the command-injection study.
type InjectionOutcome struct {
	Surface   string
	Fixed     bool
	Installed bool
}

// InjectionStudy exercises the Amazon JS-bridge and Xiaomi push-receiver
// command injections, with and without the paper's fixes.
func InjectionStudy(seed int64) ([]InjectionOutcome, error) {
	var out []InjectionOutcome
	run := func(name string, prof installer.Profile, fixed bool, fire func(dev *device.Device) error) error {
		s, err := NewScenario(prof, seed)
		if err != nil {
			return err
		}
		if err := fire(s.Dev); err != nil && !fixed {
			return err
		}
		s.Dev.Sched.RunUntil(s.Dev.Sched.Now() + horizon)
		_, installed := s.Dev.PMS.Installed(TargetPackage)
		out = append(out, InjectionOutcome{Surface: name, Fixed: fixed, Installed: installed})
		return nil
	}
	amazon := installer.Amazon()
	amazonFixed := installer.Amazon()
	amazonFixed.JSBridgeSanitized = true
	xiaomi := installer.Xiaomi()
	xiaomiFixed := installer.Xiaomi()
	xiaomiFixed.PushAuth = installer.ReceiverGuarded

	jsFire := func(dev *device.Device) error {
		return dev.AMS.StartActivity("com.fun.game", intents.Intent{
			TargetPkg: amazon.Package, Component: installer.ActivityVenezia,
			SingleTop: true,
			Extras:    map[string]string{"jsPayload": "install:" + TargetPackage},
		})
	}
	pushFire := func(dev *device.Device) error {
		_, err := dev.AMS.SendBroadcast("com.fun.game", intents.Intent{
			Action: installer.PushAction(xiaomi.Package),
			Extras: map[string]string{"payload": `{"jsonContent":"{\"type\":\"app\",\"appId\":\"1\",\"packageName\":\"` + TargetPackage + `\"}"}`},
		})
		return err
	}
	if err := run("amazon js-bridge", amazon, false, jsFire); err != nil {
		return nil, err
	}
	if err := run("amazon js-bridge (sanitized)", amazonFixed, true, jsFire); err != nil {
		return nil, err
	}
	if err := run("xiaomi push receiver", xiaomi, false, pushFire); err != nil {
		return nil, err
	}
	if err := run("xiaomi push receiver (guarded)", xiaomiFixed, true, pushFire); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure1 reproduces the AIT step diagram as a per-store trace table.
func Figure1(seed int64) (Table, error) {
	t := Table{
		ID:     "Figure 1",
		Title:  "App Installation Transaction (AIT) steps",
		Header: []string{"Store", "Step", "Phase", "Virtual time", "Detail"},
	}
	for _, prof := range []installer.Profile{installer.Amazon(), installer.DTIgnite(), installer.SlideMe(), installer.GooglePlay()} {
		s, err := NewScenario(prof, deriveSeed(seed, "figure1/"+prof.Package, 0))
		if err != nil {
			return Table{}, err
		}
		res := s.RunAIT()
		if res.Err != nil {
			return Table{}, fmt.Errorf("figure 1 trace for %s: %w", prof.Package, res.Err)
		}
		for _, step := range res.Trace {
			t.Rows = append(t.Rows, []string{
				prof.Package,
				fmt.Sprintf("%d", step.Step),
				step.Name,
				fmt.Sprintf("%.1fms", float64(step.At)/float64(time.Millisecond)),
				step.Detail,
			})
		}
	}
	return t, nil
}

// DAPPTable renders the Section VI DAPP evaluation: clean installs with
// zero false positives plus full detection of landed hijacks.
func DAPPTable(seed int64, cleanInstalls, attacks int) (Table, error) {
	res, err := DAPPStudy(seed, cleanInstalls, attacks)
	if err != nil {
		return Table{}, err
	}
	return Table{
		ID:     "DAPP Study",
		Title:  "DAPP effectiveness (Section VI): false positives and detection",
		Header: []string{"Clean installs", "False positives", "Hijacks landed", "Hijacks detected"},
		Rows: [][]string{{
			fmt.Sprintf("%d", res.CleanInstalls),
			fmt.Sprintf("%d", res.FalsePositives),
			fmt.Sprintf("%d", res.Attacks),
			fmt.Sprintf("%d", res.Detected),
		}},
		Notes: []string{"the paper's trace: 924 installs over 45 days, zero false alarms"},
	}, nil
}

// DAPPStudyResult summarizes the Section VI DAPP evaluation.
type DAPPStudyResult struct {
	CleanInstalls  int
	FalsePositives int
	Attacks        int
	Detected       int
}

// DAPPStudy reproduces the false-positive and detection study: many clean
// installs across store profiles (the paper's 45-day / 924-install trace)
// plus hijack attempts that DAPP must flag.
func DAPPStudy(seed int64, cleanInstalls, attacks int) (DAPPStudyResult, error) {
	var res DAPPStudyResult
	profiles := []installer.Profile{
		installer.Amazon(), installer.Xiaomi(), installer.Baidu(),
		installer.Qihoo360(), installer.DTIgnite(), installer.Tencent(),
	}
	// Clean phase: one long-lived device and DAPP, many installs.
	s, err := NewScenario(profiles[0], seed)
	if err != nil {
		return res, err
	}
	stores := []*installer.App{s.Store}
	dirs := []string{profiles[0].StagingDir}
	for _, prof := range profiles[1:] {
		app, err := installer.Deploy(s.Dev, prof, nil)
		if err != nil {
			return res, err
		}
		stores = append(stores, app)
		dirs = append(dirs, prof.StagingDir)
	}
	dapp, err := defense.Deploy(s.Dev, dirs)
	if err != nil {
		return res, err
	}
	for i := 0; i < cleanInstalls; i++ {
		store := stores[i%len(stores)]
		pkg := fmt.Sprintf("com.daily.app%04d", i)
		store.Store.Publish(apk.Build(apk.Manifest{
			Package: pkg, VersionCode: 1, Label: pkg,
		}, map[string][]byte{"classes.dex": []byte(pkg)}, sig.NewKey(pkg+"-dev")))
		store.RequestInstall(pkg, nil)
		s.Dev.Sched.RunUntil(s.Dev.Sched.Now() + horizon)
		res.CleanInstalls++
	}
	res.FalsePositives = len(dapp.Alerts())

	// Attack phase: fresh scenarios with DAPP armed, hijacks must be
	// detected.
	for i := 0; i < attacks; i++ {
		prof := profiles[i%len(profiles)]
		as, err := NewScenario(prof, deriveSeed(seed, "dapp/attack", int64(i)))
		if err != nil {
			return res, err
		}
		adapp, err := defense.Deploy(as.Dev, []string{prof.StagingDir})
		if err != nil {
			return res, err
		}
		atk := attack.NewTOCTOU(as.Mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), as.Target)
		if err := atk.Launch(); err != nil {
			return res, err
		}
		r := as.RunAIT()
		atk.Stop()
		if r.Hijacked {
			res.Attacks++
			if adapp.Thwarted(TargetPackage) {
				res.Detected++
			}
		}
	}
	return res, nil
}
