package experiment

import (
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/installer"
)

func TestReactionLatencySweepShape(t *testing.T) {
	// Amazon's check-to-install gap is 120–200 ms: a fast attacker always
	// wins, one slower than the maximum gap always loses.
	points, err := ReactionLatencySweep(installer.Amazon(),
		[]time.Duration{5 * time.Millisecond, 300 * time.Millisecond}, 6, 401, 0)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].SuccessRate != 1.0 {
		t.Errorf("fast attacker success = %v, want 1.0", points[0].SuccessRate)
	}
	if points[1].SuccessRate != 0.0 {
		t.Errorf("slow attacker success = %v, want 0.0", points[1].SuccessRate)
	}
	// A latency inside the gap spread wins sometimes but not always.
	mid, err := ReactionLatencySweep(installer.Amazon(),
		[]time.Duration{160 * time.Millisecond}, 12, 409, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mid[0].SuccessRate <= 0.0 || mid[0].SuccessRate >= 1.0 {
		t.Errorf("mid-gap success = %v, want strictly between 0 and 1", mid[0].SuccessRate)
	}
}

func TestWaitDelaySweepShape(t *testing.T) {
	// DTIgnite: check ends ≈360 ms, install at ≈2.1–2.5 s. 100 ms is too
	// early (corrupts before the check), 2 s is the paper's sweet spot,
	// 10 s is too late.
	points, err := WaitDelaySweep(installer.DTIgnite(),
		[]time.Duration{100 * time.Millisecond, 2 * time.Second, 10 * time.Second}, 5, 421, 0)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].SuccessRate != 0 {
		t.Errorf("too-early delay success = %v, want 0", points[0].SuccessRate)
	}
	if points[1].SuccessRate != 1 {
		t.Errorf("paper delay success = %v, want 1", points[1].SuccessRate)
	}
	if points[2].SuccessRate != 0 {
		t.Errorf("too-late delay success = %v, want 0", points[2].SuccessRate)
	}
}

func TestDMGapSweepShape(t *testing.T) {
	// With the flip period fixed at 300 µs, a wide gap is easy to hit and
	// a tiny gap is hard — but with retries even the tiny gap falls,
	// matching the paper's conclusion that only resolve-once fixes it.
	points, err := DMGapSweep([]time.Duration{2 * time.Millisecond, 50 * time.Microsecond}, 50, 4, 431, 0)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].SuccessRate != 1 {
		t.Errorf("wide-gap success = %v, want 1", points[0].SuccessRate)
	}
	if points[1].SuccessRate == 0 {
		t.Errorf("narrow-gap success = 0 — retries must eventually land")
	}
}

func TestDetectionThresholdSweepShape(t *testing.T) {
	outcomes, err := DetectionThresholdSweep([]time.Duration{
		time.Millisecond, // far below the attacker's ~20 ms reaction: misses
		time.Second,      // the paper's choice: catches, no FPs
		30 * time.Second, // oversized: catches, but benign navigation alarms
	}, 443, 0)
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].AttackDetected {
		t.Error("1 ms threshold detected the attack — attacker reaction is slower than that")
	}
	if !outcomes[1].AttackDetected || outcomes[1].FalsePositives != 0 {
		t.Errorf("1 s threshold: detected=%v fps=%d, want detected with 0 FPs",
			outcomes[1].AttackDetected, outcomes[1].FalsePositives)
	}
	if !outcomes[2].AttackDetected || outcomes[2].FalsePositives == 0 {
		t.Errorf("30 s threshold: detected=%v fps=%d, want detected with FPs on benign navigation",
			outcomes[2].AttackDetected, outcomes[2].FalsePositives)
	}
}

func TestSuggestionStudyShape(t *testing.T) {
	outcomes, err := SuggestionStudy(457, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 7 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.StockHijacked {
			t.Errorf("%s/%v: stock profile resisted — nothing to harden against", o.Store, o.Strategy)
		}
		if o.HardenedHijacked || !o.HardenedClean {
			t.Errorf("%s/%v: hardened profile fell (hijacked=%v clean=%v)",
				o.Store, o.Strategy, o.HardenedHijacked, o.HardenedClean)
		}
	}
	if _, err := SuggestionTable(457, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFleetStudyAllDevicesFall(t *testing.T) {
	outcomes, err := FleetStudy(4, 811, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 6 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	for _, o := range outcomes {
		if o.Rate() != 1.0 {
			t.Errorf("%s fleet rate = %.2f, want 1.0 (the attack must not depend on timing draws)", o.Store, o.Rate())
		}
	}
	if _, err := FleetTable(2, 813, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSweepTableRenders(t *testing.T) {
	tab := SweepTable("Ablation", "x", "latency", []SweepPoint{{Param: time.Millisecond, SuccessRate: 0.5, Trials: 10}})
	if len(tab.Rows) != 1 || tab.Render() == "" {
		t.Errorf("table = %+v", tab)
	}
}
