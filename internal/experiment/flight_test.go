package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/obs"
)

// flightDumpSet runs the golden TOCTOU fault workload (the DTIgnite
// truncated-download row of the exploration study — every schedule
// violates) with a ring-mode trace and a dump directory, and returns the
// dump files it produced, name → contents.
func flightDumpSet(t *testing.T, workers int, seeds []int64) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	tr := obs.NewTrace()
	tr.SetWallClock(nil) // virtual-only: the determinism precondition
	tr.SetRingDepth(256)
	payload := bytes.Repeat([]byte("x"), 200<<10)
	fn := func(r *chaos.Run) error {
		res, err := aitRun(installer.DTIgnite(), attack.StrategyFileObserver, payload, false, r)
		if err != nil {
			return err
		}
		if !res.Hijacked {
			return fmt.Errorf("hijack missed (attempts=%d, err=%v)", res.Attempts, res.Err)
		}
		return nil
	}
	ex := &chaos.Explorer{
		Workers: workers,
		Plan: chaos.NewFaultPlan(seeds[0], chaos.Rule{
			Site: fault.SiteDMChunk, Kind: fault.KindTruncate, Skip: 1,
		}),
		Trace:       tr,
		DumpDir:     dir,
		DumpDepth:   64,
		WorkerState: ArenaWorkerState(nil),
	}
	res := ex.Sweep(seeds, nil, fn)
	if res.Violations != len(seeds) {
		t.Fatalf("violations = %d, want %d (truncation fault must starve every schedule)", res.Violations, len(seeds))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestFlightDumpParityAcrossWorkers is the flight-recorder determinism
// gate (verify.sh): the violation dump set — file names and bytes — must
// be identical at 1 worker and at NumCPU workers, because dumps are keyed
// by replay token and run tracks are virtual-only.
func TestFlightDumpParityAcrossWorkers(t *testing.T) {
	seeds := make([]int64, 8)
	for i := range seeds {
		seeds[i] = 11 + int64(i)
	}
	one := flightDumpSet(t, 1, seeds)
	many := flightDumpSet(t, runtime.NumCPU(), seeds)
	names := func(m map[string][]byte) []string {
		out := make([]string, 0, len(m))
		for n := range m {
			out = append(out, n)
		}
		sort.Strings(out)
		return out
	}
	n1, nn := names(one), names(many)
	if len(n1) != len(nn) {
		t.Fatalf("dump sets differ: 1 worker %v vs NumCPU %v", n1, nn)
	}
	// One Chrome trace + one JSONL per violating schedule.
	if len(n1) != 2*len(seeds) {
		t.Fatalf("dump count = %d files, want %d", len(n1), 2*len(seeds))
	}
	for i := range n1 {
		if n1[i] != nn[i] {
			t.Fatalf("dump name %d: %q vs %q", i, n1[i], nn[i])
		}
		if !bytes.Equal(one[n1[i]], many[n1[i]]) {
			t.Errorf("dump %q differs between 1 and NumCPU workers", n1[i])
		}
	}
}

// TestFlightDumpContents pins what a dump carries: the replay token in
// the filename and in the chaos.violation marker event, and the AIT step
// instants leading up to the failure (the installer instrumentation wired
// into the run track by aitRun).
func TestFlightDumpContents(t *testing.T) {
	dumps := flightDumpSet(t, 1, []int64{11})
	var chrome, jsonl string
	for name, b := range dumps {
		switch {
		case strings.HasSuffix(name, ".trace.json"):
			chrome = string(b)
			if !strings.HasPrefix(name, "violation-gia1-") {
				t.Errorf("dump name %q not keyed by sanitized token", name)
			}
		case strings.HasSuffix(name, ".jsonl"):
			jsonl = string(b)
		}
	}
	if chrome == "" || jsonl == "" {
		t.Fatalf("missing dump form: %v", dumps)
	}
	for _, form := range []string{chrome, jsonl} {
		if !strings.Contains(form, "chaos.violation") {
			t.Error("dump lacks the chaos.violation marker")
		}
		if !strings.Contains(form, "gia1:") {
			t.Error("dump lacks the replay token")
		}
		if !strings.Contains(form, "invocation") {
			t.Error("dump lacks the AIT step instants")
		}
	}
	lines := strings.Split(strings.TrimRight(jsonl, "\n"), "\n")
	if len(lines) == 0 || len(lines) > 65 {
		t.Errorf("jsonl dump holds %d events, want 1..65 (DumpDepth 64 + marker ride-along)", len(lines))
	}
}

// BenchmarkFlightRecorder measures recorder overhead on the golden TOCTOU
// fault workload (the EXPERIMENTS.md table): schedules/s with the
// recorder off, recording into rings, and recording + dumping every
// violation (this workload violates on every schedule, so "dumping" is
// the worst case — two files per schedule).
func BenchmarkFlightRecorder(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), 200<<10)
	fn := func(r *chaos.Run) error {
		res, err := aitRun(installer.DTIgnite(), attack.StrategyFileObserver, payload, false, r)
		if err != nil {
			return err
		}
		if !res.Hijacked {
			return fmt.Errorf("hijack missed (attempts=%d, err=%v)", res.Attempts, res.Err)
		}
		return nil
	}
	run := func(b *testing.B, tr *obs.Trace, dumpDir string) {
		seeds := make([]int64, b.N)
		for i := range seeds {
			seeds[i] = 11 + int64(i)
		}
		ex := &chaos.Explorer{
			Workers: 1,
			Plan: chaos.NewFaultPlan(seeds[0], chaos.Rule{
				Site: fault.SiteDMChunk, Kind: fault.KindTruncate, Skip: 1,
			}),
			Trace:       tr,
			DumpDir:     dumpDir,
			WorkerState: ArenaWorkerState(nil),
		}
		b.ResetTimer()
		res := ex.Sweep(seeds, nil, fn)
		b.StopTimer()
		if res.Violations != b.N {
			b.Fatalf("violations = %d, want %d", res.Violations, b.N)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "schedules/s")
	}
	b.Run("off", func(b *testing.B) { run(b, nil, "") })
	b.Run("on", func(b *testing.B) {
		tr := obs.NewTrace()
		tr.SetWallClock(nil)
		tr.SetRingDepth(256)
		run(b, tr, "")
	})
	b.Run("dumping", func(b *testing.B) {
		tr := obs.NewTrace()
		tr.SetWallClock(nil)
		tr.SetRingDepth(256)
		run(b, tr, b.TempDir())
	})
}
