package experiment

// Seed derivation for the experiment engine.
//
// Every study fans out over stores × trials × devices, and each leaf builds
// its whole world from one int64 seed. The old additive strides
// (seed+i*1000+d, i*10+j, trial*31+latency, …) silently collide once a
// study is scaled past the hard-coded stride — exactly the fleet-scale runs
// the ROADMAP cares about — feeding duplicated timing draws into supposedly
// independent devices. deriveSeed replaces them with a SplitMix64-style
// mix, the contract being:
//
//   - for a fixed (root, stream), every index maps to a distinct seed: the
//     golden-ratio stride is odd (injective mod 2^64) and the SplitMix64
//     finalizer is a bijection, so collisions across indexes are impossible
//     at any fleet size;
//   - distinct streams decorrelate whole studies: the stream label is
//     hashed (FNV-1a) into the state before finalizing, so "fleet/<store>"
//     and "hijack/<store>" draw from unrelated sequences even under the
//     same root seed.

// deriveSeed maps (root, stream, index) to a statistically independent
// scenario seed. stream names the study and its fixed coordinates (for
// example "fleet/com.amazon.venezia"); index enumerates the trial or device
// within the stream.
func deriveSeed(root int64, stream string, index int64) int64 {
	x := splitmix64(uint64(root) ^ fnv1a(stream))
	x += uint64(index) * 0x9E3779B97F4A7C15
	return int64(splitmix64(x))
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator — a
// bijection on uint64 with full avalanche.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv1a hashes a stream label (FNV-1a, 64-bit).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
