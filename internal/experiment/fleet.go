package experiment

import (
	"fmt"
	"sort"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/par"
)

// FleetOutcome aggregates hijack results over many simulated devices of
// one store profile.
type FleetOutcome struct {
	Store    string
	Devices  int
	Hijacked int
}

// Rate is the per-store hijack rate.
func (o FleetOutcome) Rate() float64 {
	if o.Devices == 0 {
		return 0
	}
	return float64(o.Hijacked) / float64(o.Devices)
}

// FleetStudy scales the attack across a fleet of devices — the paper's
// "hundreds of millions of users" claim in miniature. Each device gets a
// collision-free derived seed (timing jitter, random names, different
// gaps); the attack must not depend on any particular draw. Devices own
// private simulators, so the study fans out on a worker pool of the given
// size (<= 0 selects NumCPU); the aggregate is identical for any pool size.
func FleetStudy(devicesPerStore int, seed int64, workers int) ([]FleetOutcome, error) {
	profiles := []installer.Profile{
		installer.Amazon(), installer.Xiaomi(), installer.Baidu(),
		installer.Qihoo360(), installer.DTIgnite(), installer.HuaweiStore(),
	}
	type job struct {
		prof   installer.Profile
		device int
	}
	jobs := make([]job, 0, len(profiles)*devicesPerStore)
	for _, prof := range profiles {
		for d := 0; d < devicesPerStore; d++ {
			jobs = append(jobs, job{prof: prof, device: d})
		}
	}
	hijacked, err := par.Map(workers, len(jobs), func(i int) (bool, error) {
		j := jobs[i]
		s, err := NewScenario(j.prof, deriveSeed(seed, "fleet/"+j.prof.Package, int64(j.device)))
		if err != nil {
			return false, err
		}
		atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(j.prof, attack.StrategyFileObserver), s.Target)
		if err := atk.Launch(); err != nil {
			return false, err
		}
		res := s.RunAIT()
		atk.Stop()
		return res.Hijacked, nil
	})
	if err != nil {
		return nil, err
	}
	byStore := make(map[string]*FleetOutcome, len(profiles))
	for _, prof := range profiles {
		byStore[prof.Package] = &FleetOutcome{Store: prof.Package}
	}
	for i, hit := range hijacked {
		o := byStore[jobs[i].prof.Package]
		o.Devices++
		if hit {
			o.Hijacked++
		}
	}
	names := make([]string, 0, len(byStore))
	for name := range byStore {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FleetOutcome, 0, len(names))
	for _, name := range names {
		out = append(out, *byStore[name])
	}
	return out, nil
}

// FleetTable renders the fleet study.
func FleetTable(devicesPerStore int, seed int64, workers int) (Table, error) {
	outcomes, err := FleetStudy(devicesPerStore, seed, workers)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Fleet Study",
		Title:  "Hijack reliability across a device fleet (per-device timing jitter)",
		Header: []string{"Store", "Devices", "Hijacked", "Rate"},
	}
	total, hijacked := 0, 0
	for _, o := range outcomes {
		total += o.Devices
		hijacked += o.Hijacked
		t.Rows = append(t.Rows, []string{
			o.Store, fmt.Sprintf("%d", o.Devices), fmt.Sprintf("%d", o.Hijacked), pct(o.Rate()),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("fleet total: %d/%d devices hijacked", hijacked, total))
	return t, nil
}
