package experiment

import (
	"fmt"
	"sort"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/installer"
)

// FleetOutcome aggregates hijack results over many simulated devices of
// one store profile.
type FleetOutcome struct {
	Store    string
	Devices  int
	Hijacked int
}

// Rate is the per-store hijack rate.
func (o FleetOutcome) Rate() float64 {
	if o.Devices == 0 {
		return 0
	}
	return float64(o.Hijacked) / float64(o.Devices)
}

// FleetStudy scales the attack across a fleet of devices — the paper's
// "hundreds of millions of users" claim in miniature. Each device gets a
// fresh seed (timing jitter, random names, different gaps); the attack
// must not depend on any particular draw.
func FleetStudy(devicesPerStore int, seed int64) ([]FleetOutcome, error) {
	profiles := []installer.Profile{
		installer.Amazon(), installer.Xiaomi(), installer.Baidu(),
		installer.Qihoo360(), installer.DTIgnite(), installer.HuaweiStore(),
	}
	byStore := make(map[string]*FleetOutcome)
	for i, prof := range profiles {
		o := &FleetOutcome{Store: prof.Package}
		byStore[prof.Package] = o
		for d := 0; d < devicesPerStore; d++ {
			s, err := NewScenario(prof, seed+int64(i*1000+d))
			if err != nil {
				return nil, err
			}
			atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), s.Target)
			if err := atk.Launch(); err != nil {
				return nil, err
			}
			res := s.RunAIT()
			atk.Stop()
			o.Devices++
			if res.Hijacked {
				o.Hijacked++
			}
		}
	}
	names := make([]string, 0, len(byStore))
	for name := range byStore {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FleetOutcome, 0, len(names))
	for _, name := range names {
		out = append(out, *byStore[name])
	}
	return out, nil
}

// FleetTable renders the fleet study.
func FleetTable(devicesPerStore int, seed int64) (Table, error) {
	outcomes, err := FleetStudy(devicesPerStore, seed)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "Fleet Study",
		Title:  "Hijack reliability across a device fleet (per-device timing jitter)",
		Header: []string{"Store", "Devices", "Hijacked", "Rate"},
	}
	total, hijacked := 0, 0
	for _, o := range outcomes {
		total += o.Devices
		hijacked += o.Hijacked
		t.Rows = append(t.Rows, []string{
			o.Store, fmt.Sprintf("%d", o.Devices), fmt.Sprintf("%d", o.Hijacked), pct(o.Rate()),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("fleet total: %d/%d devices hijacked", hijacked, total))
	return t, nil
}
