package experiment

import (
	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/sig"
)

// attackFreeAPK builds a benign APK used by the performance experiments.
func attackFreeAPK() *apk.APK {
	return apk.Build(apk.Manifest{
		Package: "com.perf.sample", VersionCode: 1, Label: "Perf Sample",
	}, map[string][]byte{"classes.dex": []byte("sample")}, sig.NewKey("perf"))
}

// decodeForPerf parses an encoded APK (DAPP's signature-grab hot path).
func decodeForPerf(raw []byte) (*apk.APK, error) { return apk.Decode(raw) }
