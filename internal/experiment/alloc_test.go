package experiment

import (
	"testing"

	"github.com/ghost-installer/gia/internal/arena"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/installer"
)

// TestAITAllocBudget pins the allocation cost of one complete AIT hijack
// schedule on a warm arena device — the unit of work every chaos sweep and
// study repeats thousands of times. The budget is deliberately loose
// against run-to-run jitter (map growth thresholds, pooled capacities) but
// tight enough to catch a regression that reintroduces per-schedule
// device rebuilding or payload copying.
func TestAITAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	a := arena.New(ScenarioDeviceProfile(0))
	prof := installer.Amazon()
	seed := int64(1)
	oneSchedule := func() {
		dev, err := a.Acquire(seed)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		s, err := NewScenarioPayloadOn(dev, prof, nil)
		if err != nil {
			t.Fatalf("scenario: %v", err)
		}
		atk := attack.NewTOCTOU(s.Mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), s.Target)
		if err := atk.Launch(); err != nil {
			t.Fatalf("launch: %v", err)
		}
		res := s.RunAIT()
		atk.Stop()
		a.Release(dev)
		if !res.Hijacked {
			t.Fatalf("hijack missed under seed %d: %v", seed, res.Err)
		}
	}
	// Warm up: first acquisition boots the device, and the process-wide
	// memo caches (signing keys, repackaged APKs, market listings) fill.
	oneSchedule()
	perAIT := testing.AllocsPerRun(100, func() {
		seed++
		oneSchedule()
	})
	// Measured ~76 objects/schedule after the residual-allocator pass
	// (path-string reuse, node slab, closure hoisting, lazy rng seeding);
	// ~2.5x headroom.
	const budget = 200.0
	if perAIT > budget {
		t.Fatalf("one AIT schedule allocates %.0f objects, budget %.0f", perAIT, budget)
	}
	t.Logf("per-AIT allocations: %.0f (budget %.0f)", perAIT, budget)
}
