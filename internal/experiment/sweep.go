package experiment

import (
	"fmt"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/par"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

// SweepPoint is one configuration of an ablation sweep.
type SweepPoint struct {
	Param       time.Duration
	SuccessRate float64
	Trials      int
}

// sweepGrid fans a params × trials grid out on the worker pool (<= 0
// selects NumCPU) and folds per-trial wins into one SweepPoint per
// parameter. run builds a private world from its derived seed, so trials
// are embarrassingly parallel; the fold is by grid index, so the points
// are identical for any pool size.
func sweepGrid(params []time.Duration, trials, workers int, run func(param time.Duration, trial int) (bool, error)) ([]SweepPoint, error) {
	wins, err := par.Map(workers, len(params)*trials, func(i int) (bool, error) {
		return run(params[i/trials], i%trials)
	})
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for pi, param := range params {
		n := 0
		for t := 0; t < trials; t++ {
			if wins[pi*trials+t] {
				n++
			}
		}
		out = append(out, SweepPoint{Param: param, SuccessRate: float64(n) / float64(trials), Trials: trials})
	}
	return out, nil
}

// ReactionLatencySweep measures hijack success as a function of the
// attacker's reaction latency — the ablation behind Section III-B's claim
// that the check-to-install window is "reliably" catchable: success holds
// until the latency outgrows the store's trigger gap.
func ReactionLatencySweep(prof installer.Profile, latencies []time.Duration, trials int, seed int64, workers int) ([]SweepPoint, error) {
	return sweepGrid(latencies, trials, workers, func(latency time.Duration, trial int) (bool, error) {
		s, err := NewScenario(prof, deriveSeed(seed, "reaction/"+latency.String(), int64(trial)))
		if err != nil {
			return false, err
		}
		cfg := attack.ConfigForStore(prof, attack.StrategyFileObserver)
		cfg.ReactMin, cfg.ReactMax = latency, latency
		atk := attack.NewTOCTOU(s.Mal, cfg, s.Target)
		if err := atk.Launch(); err != nil {
			return false, err
		}
		res := s.RunAIT()
		atk.Stop()
		return res.Hijacked, nil
	})
}

// WaitDelaySweep measures wait-and-see success as a function of the
// pre-measured delay: too early corrupts the file before the check (burning
// the retry budget), in-window wins, too late installs the genuine app.
func WaitDelaySweep(prof installer.Profile, delays []time.Duration, trials int, seed int64, workers int) ([]SweepPoint, error) {
	return sweepGrid(delays, trials, workers, func(delay time.Duration, trial int) (bool, error) {
		s, err := NewScenario(prof, deriveSeed(seed, "waitdelay/"+delay.String(), int64(trial)))
		if err != nil {
			return false, err
		}
		cfg := attack.ConfigForStore(prof, attack.StrategyWaitAndSee)
		cfg.WaitDelay = delay
		atk := attack.NewTOCTOU(s.Mal, cfg, s.Target)
		if err := atk.Launch(); err != nil {
			return false, err
		}
		res := s.RunAIT()
		atk.Stop()
		return res.Hijacked, nil
	})
}

// DMGapSweep measures the 6.0 recheck policy's exposure as a function of
// the check-to-use gap (with the attacker's flip period fixed): shrinking
// the gap lowers but does not eliminate the win rate — only the fixed
// resolve-once policy does.
func DMGapSweep(gaps []time.Duration, maxTries, trials int, seed int64, workers int) ([]SweepPoint, error) {
	return sweepGrid(gaps, trials, workers, func(gap time.Duration, trial int) (bool, error) {
		dev, err := device.Boot(device.Profile{
			Name: "nexus5", Vendor: "lge",
			DMPolicy: dm.PolicyRecheck, DMRecheckGap: gap,
			Seed: deriveSeed(seed, "dmgap/"+gap.String(), int64(trial)),
		})
		if err != nil {
			return false, err
		}
		mal, err := attack.DeployMalware(dev, "com.fun.game")
		if err != nil {
			return false, err
		}
		victim, err := dev.PMS.InstallFromParsed(apk.Build(apk.Manifest{
			Package: "com.android.vending", VersionCode: 1, Label: "Play",
		}, nil, sig.NewKey("play")))
		if err != nil {
			return false, err
		}
		dev.Run()
		secret := "/data/data/com.android.vending/files/secret"
		if err := dev.FS.WriteFile(secret, []byte("tokens"), victim.UID, vfs.ModePrivate); err != nil {
			return false, err
		}
		atk, err := attack.NewDMSymlink(mal)
		if err != nil {
			return false, err
		}
		won := false
		atk.Steal(secret, maxTries, func(b []byte, err error) {
			won = err == nil && string(b) == "tokens"
		})
		dev.Sched.RunUntil(dev.Sched.Now() + horizon)
		return won, nil
	})
}

// ThresholdOutcome reports one detection-threshold configuration.
type ThresholdOutcome struct {
	Threshold      time.Duration
	AttackDetected bool
	FalsePositives int
	BenignSends    int
}

// DetectionThresholdSweep ablates the IntentFirewall's 1-second window:
// small thresholds miss the redirect attack (whose racing Intent lands tens
// of milliseconds after the legitimate one), while oversized thresholds
// start flagging ordinary user navigation.
func DetectionThresholdSweep(thresholds []time.Duration, seed int64, workers int) ([]ThresholdOutcome, error) {
	return par.Map(workers, len(thresholds), func(i int) (ThresholdOutcome, error) {
		th := thresholds[i]
		return detectionThresholdTrial(th, deriveSeed(seed, "threshold/"+th.String(), 0))
	})
}

// detectionThresholdTrial runs one threshold configuration on a private
// device: the redirect attack, a cool-down, then benign navigation.
func detectionThresholdTrial(th time.Duration, seed int64) (ThresholdOutcome, error) {
	var out ThresholdOutcome
	dev, err := device.Boot(device.Profile{Name: "nexus5", Vendor: "lge", Seed: seed})
	if err != nil {
		return out, err
	}
	if _, err := installer.Deploy(dev, installer.GooglePlay(), nil); err != nil {
		return out, err
	}
	if _, err := dev.PMS.InstallFromParsed(apk.Build(apk.Manifest{
		Package: "com.facebook.katana", VersionCode: 1, Label: "Facebook",
	}, nil, sig.NewKey("facebook"))); err != nil {
		return out, err
	}
	dev.AMS.RegisterActivity("com.facebook.katana", "Feed", true, "", func(intents.Intent) string { return "feed" })
	dev.Run()
	dev.AMS.Firewall().EnableDetection(true)
	dev.AMS.Firewall().SetThreshold(th)

	mal, err := attack.DeployMalware(dev, "com.fun.game")
	if err != nil {
		return out, err
	}
	red := attack.NewRedirect(mal, attack.RedirectConfig{
		VictimPkg: "com.facebook.katana", StorePkg: "com.android.vending",
		StoreActivity: installer.ActivityAppDetails, LookalikeAppID: "com.faceb00k.orca",
	})
	if err := red.Launch(); err != nil {
		return out, err
	}
	_ = dev.AMS.StartActivity(device.SystemSender, intents.Intent{TargetPkg: "com.facebook.katana", Component: "Feed"})
	dev.Sched.RunUntil(dev.Sched.Now() + 200*time.Millisecond)
	_ = dev.AMS.StartActivity("com.facebook.katana", intents.Intent{
		TargetPkg: "com.android.vending", Component: installer.ActivityAppDetails,
		Extras: map[string]string{"appId": "com.facebook.orca"},
	})
	dev.Sched.RunUntil(dev.Sched.Now() + time.Second)
	red.Stop()
	attackAlerts := len(dev.AMS.Firewall().Alerts())
	dev.AMS.Firewall().ResetAlerts()
	// Cool down past the threshold so the attack-phase IR records
	// cannot pair with the first benign Intent.
	dev.Sched.RunUntil(dev.Sched.Now() + th + time.Second)

	// Benign phase: the user hops between apps, each opening the
	// store page for a different app at human pace (1.5–4 s apart).
	benignApps := []string{"com.facebook.katana", "com.spotify.music", "com.netflix.mediaclient"}
	for _, pkg := range benignApps[1:] {
		if _, err := dev.PMS.InstallFromParsed(apk.Build(apk.Manifest{
			Package: pkg, VersionCode: 1, Label: pkg,
		}, nil, sig.NewKey(pkg))); err != nil {
			return out, err
		}
	}
	dev.Run()
	sends := 0
	for round := 0; round < 8; round++ {
		pkg := benignApps[round%len(benignApps)]
		_ = dev.AMS.StartActivity(pkg, intents.Intent{
			TargetPkg: "com.android.vending", Component: installer.ActivityAppDetails,
			Extras: map[string]string{"appId": fmt.Sprintf("com.suggested.app%d", round)},
		})
		sends++
		pace := dev.Sched.Uniform(1500*time.Millisecond, 4*time.Second)
		dev.Sched.RunUntil(dev.Sched.Now() + pace)
	}
	out = ThresholdOutcome{
		Threshold:      th,
		AttackDetected: attackAlerts > 0,
		FalsePositives: len(dev.AMS.Firewall().Alerts()),
		BenignSends:    sends,
	}
	return out, nil
}

// SweepTable renders a sweep as a table.
func SweepTable(id, title, paramName string, points []SweepPoint) Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{paramName, "Hijack success rate", "Trials"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			p.Param.String(), pct(p.SuccessRate), fmt.Sprintf("%d", p.Trials),
		})
	}
	return t
}
