package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for a registry snapshot.
// Metric names are the registry's dotted names mapped into the Prometheus
// grammar and prefixed "gia_" — "serve.tx_ns" becomes "gia_serve_tx_ns" —
// so one fleet daemon scrape target carries every subsystem's counters.
// Deterministic like every renderer here: the snapshot is already sorted
// by name, buckets are emitted in layout order, and quantile series use a
// fixed q list.

// promQuantiles is the fixed quantile set exported per histogram. The
// estimates come from HistogramSnap.Quantile (bucket interpolation), so
// they are scrape-time reads, not streaming summaries.
var promQuantiles = []float64{0.5, 0.9, 0.99}

// promName maps a dotted registry name into the Prometheus metric grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*, prefixing "gia_".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("gia_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in Prometheus text exposition format:
// counters and gauges as single samples, histograms as cumulative
// _bucket{le=...} series ending at +Inf plus _sum and _count, and an
// interpolated quantile gauge series per histogram.
func (s Snapshot) WriteProm(w io.Writer) error {
	for _, c := range s.Counters {
		n := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s_quantiles gauge\n", n); err != nil {
			return err
		}
		for _, q := range promQuantiles {
			if _, err := fmt.Fprintf(w, "%s_quantiles{quantile=\"%g\"} %d\n", n, q, h.Quantile(q)); err != nil {
				return err
			}
		}
	}
	return nil
}
