//go:build !race

package obs

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation assertions skip under it (instrumentation changes
// allocation counts).
const raceEnabled = false
