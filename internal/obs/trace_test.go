package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestDualClockDomains(t *testing.T) {
	tr := NewTrace()
	tr.SetWallClock(TickingClock(time.Millisecond))

	var vnow time.Duration
	vt := tr.VirtualTrack("device")
	vt.SetClock(func() time.Duration { return vnow })
	vnow = 5 * time.Millisecond
	vt.Instant("boot", "done")
	sp := vt.Begin("ait", "")
	vnow = 25 * time.Millisecond
	sp.EndDetail("clean")

	wt := tr.WallTrack("worker-0")
	wsp := wt.Begin("job", "0")
	wsp.End()

	tracks := tr.Tracks()
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d, want 2", len(tracks))
	}
	// Sorted order: virtual before wall.
	if tracks[0].Domain() != DomainVirtual || tracks[1].Domain() != DomainWall {
		t.Fatalf("track order: %v then %v", tracks[0].Domain(), tracks[1].Domain())
	}
	vevs := tracks[0].Events()
	if len(vevs) != 2 || !vevs[0].Instant || vevs[0].Start != 5*time.Millisecond {
		t.Fatalf("virtual events: %+v", vevs)
	}
	if vevs[1].Dur != 20*time.Millisecond || vevs[1].Detail != "clean" {
		t.Errorf("virtual span: %+v", vevs[1])
	}
	wevs := tracks[1].Events()
	if len(wevs) != 1 || wevs[0].Start != time.Millisecond || wevs[0].Dur != time.Millisecond {
		t.Errorf("wall span on ticking clock: %+v", wevs)
	}
}

func TestWallDomainDisabled(t *testing.T) {
	tr := NewTrace()
	tr.SetWallClock(nil)
	if k := tr.WallTrack("worker-0"); k != nil {
		t.Fatal("wall track must be nil with the wall domain disabled")
	}
	// The nil track is a usable no-op.
	var k *Track
	sp := k.Begin("a", "b")
	sp.End()
	k.Instant("c", "d")
	k.InstantAt(time.Second, "e", "f")
	k.SpanAt(0, time.Second, "g", "h")
	if k.Events() != nil || k.Name() != "" {
		t.Error("nil track must stay empty")
	}
	if len(tr.Tracks()) != 0 {
		t.Error("disabled wall domain must not register tracks")
	}
}

// buildTrace records the same events regardless of insertion order
// shenanigans, for export determinism checks.
func buildTrace() *Trace {
	tr := NewTrace()
	tr.SetWallClock(TickingClock(100 * time.Microsecond))
	b := tr.VirtualTrack("run/b")
	a := tr.VirtualTrack("run/a")
	a.InstantAt(time.Millisecond, "fs", `create "x"`)
	a.SpanAt(time.Millisecond, 3*time.Millisecond, "ait", "step 2")
	b.InstantAt(2*time.Millisecond, "pm", "installed")
	w := tr.WallTrack("worker-0")
	sp := w.Begin("job", "7")
	sp.End()
	return tr
}

func TestChromeExportDeterministic(t *testing.T) {
	var one, two bytes.Buffer
	tr := buildTrace()
	if err := tr.WriteChrome(&one); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("two Chrome exports of one trace differ")
	}
	// The whole file must be valid JSON with the expected envelope.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(one.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, one.String())
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.Unit)
	}
	// 2 process metas + 3 thread metas + 4 events.
	if len(doc.TraceEvents) != 9 {
		t.Errorf("traceEvents = %d, want 9:\n%s", len(doc.TraceEvents), one.String())
	}
	// Virtual tracks sort before wall tracks, names ascending.
	if !strings.Contains(one.String(), `"name":"run/a"`) || !strings.Contains(one.String(), `"name":"worker-0"`) {
		t.Errorf("missing thread names:\n%s", one.String())
	}
	ia, ib := strings.Index(one.String(), `"run/a"`), strings.Index(one.String(), `"run/b"`)
	if ia > ib {
		t.Error("virtual tracks not name-sorted in export")
	}
}

func TestJSONLExport(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("jsonl lines = %d, want 4:\n%s", len(lines), buf.String())
	}
	var ev jsonlEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Domain != "virtual" || ev.Track != "run/a" || ev.Name != "fs" || ev.AtNS != int64(time.Millisecond) || !ev.Instant {
		t.Errorf("first jsonl event: %+v", ev)
	}
	var again bytes.Buffer
	if err := tr.WriteJSONL(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two JSONL exports of one trace differ")
	}
}

func TestNilTraceExports(t *testing.T) {
	var tr *Trace
	if tr.VirtualTrack("x") != nil || tr.WallTrack("y") != nil {
		t.Error("nil trace must hand out nil tracks")
	}
	tr.SetWallClock(TickingClock(time.Second))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-trace Chrome export invalid: %v", err)
	}
	buf.Reset()
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("nil-trace JSONL export must be empty")
	}
}

func TestUnfinishedSpanExportsZeroWidth(t *testing.T) {
	tr := NewTrace()
	k := tr.VirtualTrack("run")
	k.SetClock(func() time.Duration { return 7 * time.Millisecond })
	_ = k.Begin("open", "never ended")
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dur":0.000`) {
		t.Errorf("unfinished span not clamped to zero width:\n%s", buf.String())
	}
}
