package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHubFanOut(t *testing.T) {
	h := NewHub()
	a := h.Subscribe(4)
	b := h.Subscribe(4)
	ev := h.Publish("device.created", "device/1", "shard 0", time.Second)
	if ev.Seq != 1 || ev.Kind != "device.created" || ev.AtNS != int64(time.Second) {
		t.Fatalf("published event: %+v", ev)
	}
	for _, sub := range []*Subscription{a, b} {
		got := <-sub.C()
		if got != ev {
			t.Fatalf("subscriber got %+v, want %+v", got, ev)
		}
	}
	h.Unsubscribe(a)
	if _, ok := <-a.C(); ok {
		t.Fatal("unsubscribed channel not closed")
	}
	h.Publish("device.deleted", "device/1", "", 2*time.Second)
	if got := <-b.C(); got.Seq != 2 {
		t.Fatalf("remaining subscriber got seq %d, want 2", got.Seq)
	}
	h.Unsubscribe(b)
	h.Unsubscribe(b) // double-unsubscribe is a no-op
}

func TestHubSlowSubscriberDropsNotBlocks(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(2)
	for i := 0; i < 5; i++ {
		h.Publish("tick", "", "", 0)
	}
	if s.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", s.Dropped())
	}
	if got := <-s.C(); got.Seq != 1 {
		t.Fatalf("buffered head seq = %d, want 1 (oldest kept)", got.Seq)
	}
	h.Unsubscribe(s)
}

func TestHubNilSafe(t *testing.T) {
	var h *Hub
	if h.Subscribe(1) != nil {
		t.Fatal("nil hub must hand out nil subscriptions")
	}
	h.Unsubscribe(nil)
	if ev := h.Publish("k", "s", "d", 0); ev.Seq != 0 {
		t.Fatalf("nil hub published %+v", ev)
	}
}

// TestHubPublishUnsubscribeRace pins the ordering guarantee between a
// racing Publish and Unsubscribe: no send on a closed channel, ever. Run
// under -race this also proves the copy-on-write list is sound.
func TestHubPublishUnsubscribeRace(t *testing.T) {
	h := NewHub()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Publish("tick", "", "", 0)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		s := h.Subscribe(1)
		go func() {
			for range s.C() {
			}
		}()
		h.Unsubscribe(s)
	}
	close(stop)
	wg.Wait()
}
