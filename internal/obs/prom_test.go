package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePromExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.tx.total").Add(7)
	reg.Gauge("serve.devices").Set(3)
	h := reg.Histogram("serve.tx_ns", []int64{10, 100})
	for _, v := range []int64{5, 50, 5000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gia_serve_tx_total counter\ngia_serve_tx_total 7\n",
		"# TYPE gia_serve_devices gauge\ngia_serve_devices 3\n",
		"# TYPE gia_serve_tx_ns histogram\n",
		`gia_serve_tx_ns_bucket{le="10"} 1`,
		`gia_serve_tx_ns_bucket{le="100"} 2`,
		`gia_serve_tx_ns_bucket{le="+Inf"} 3`,
		"gia_serve_tx_ns_sum 5055\n",
		"gia_serve_tx_ns_count 3\n",
		`gia_serve_tx_ns_quantiles{quantile="0.5"}`,
		`gia_serve_tx_ns_quantiles{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Deterministic render: two snapshots of the same state are identical.
	var again bytes.Buffer
	if err := reg.Snapshot().WriteProm(&again); err != nil {
		t.Fatal(err)
	}
	if out != again.String() {
		t.Error("two prom renders of one registry state differ")
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"serve.tx_ns":        "gia_serve_tx_ns",
		"arena.reset-ns":     "gia_arena_reset_ns",
		"shard/0 p99":        "gia_shard_0_p99",
		"already_legal":      "gia_already_legal",
		"UPPER.case9":        "gia_UPPER_case9",
		"weird:{}[]\"chars'": "gia_weird______chars_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
