// Package obs is the repository's unified observability layer: a metrics
// registry (counters, gauges, histograms), dual-clock span tracks and
// exporters (Chrome trace-event JSON, JSONL, text snapshot).
//
// Two rules shape the whole package:
//
//   - Every hook is a nil-safe no-op. Calling Add, Set, Observe, Begin or
//     Instant on a nil receiver returns immediately and allocates nothing,
//     so instrumented hot paths (the smali parser, the memo table, the
//     worker pool) cost zero when observability is disabled and stay inside
//     the PR-4 allocation budgets.
//
//   - Two clock domains never mix. Virtual-time tracks read the simulated
//     clock (sim.Scheduler.Now) and are fully deterministic: the same seed
//     produces byte-identical exports at any worker count. Wall-clock
//     tracks read an injectable monotonic stopwatch (Clock); tests inject a
//     ticking fake so goldens stay stable, CLIs use the real stopwatch.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil Counter is a valid
// disabled counter: Add and Inc are no-ops, Value reports zero.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (zero on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time level (queue depth, busy workers). The nil
// Gauge is a valid disabled gauge.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge's level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reports the current level (zero on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into a fixed bucket layout chosen at
// registration: counts[i] holds observations <= bounds[i], the last bucket
// is the overflow. The nil Histogram is a valid disabled histogram.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	sum    atomic.Int64
}

// DurationBuckets is the standard latency layout in nanoseconds:
// 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s.
func DurationBuckets() []int64 {
	return []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
}

// LatencyBuckets is the fine-grained latency layout in nanoseconds — a
// 1-2-5 series per decade from 1µs to 10s — for histograms whose
// quantiles are reported (DurationBuckets' full decades make p50/p99
// interpolation too coarse to be meaningful).
func LatencyBuckets() []int64 {
	out := make([]int64, 0, 22)
	for scale := int64(1e3); scale <= 1e9; scale *= 10 {
		out = append(out, scale, 2*scale, 5*scale)
	}
	return append(out, 1e10)
}

// Observe records one sample. The linear bucket scan is deliberate: layouts
// are small (≤ a dozen buckets) and the scan allocates nothing.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// snapshot copies the histogram's state.
func (h *Histogram) snapshot(name string) HistogramSnap {
	s := HistogramSnap{
		Name:   name,
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Registry names and owns metrics. Looking a name up twice returns the
// same metric, so independently instrumented components aggregate onto one
// counter by agreeing on a name. The nil Registry is a valid disabled
// registry: every lookup returns nil, which is itself a disabled metric.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gaugs: make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaugs[name]
	if !ok {
		g = &Gauge{}
		r.gaugs[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket layout on first use (an existing histogram keeps its
// original layout). bounds must be ascending.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Rehome points *c at reg's counter named name, carrying the current value
// over, so a component's private counter becomes a registry-owned one
// without losing history or breaking the component's own accessors.
// Nil-safe in every position.
func Rehome(reg *Registry, name string, c **Counter) {
	if reg == nil || c == nil {
		return
	}
	nc := reg.Counter(name)
	if *c != nil && *c != nc {
		nc.Add((*c).Value())
	}
	*c = nc
}

// NamedValue is one named counter or gauge reading.
type NamedValue struct {
	Name  string
	Value int64
}

// HistogramSnap is one histogram reading.
type HistogramSnap struct {
	Name   string
	Count  int64
	Sum    int64
	Bounds []int64
	Counts []int64
}

// Quantile estimates the q-quantile by linear interpolation inside the
// bucket containing the target rank. Out-of-range q is clamped to [0, 1]
// and NaN is treated as 0 (an invalid quantile must not masquerade as the
// maximum). Samples in the overflow bucket are reported as the largest
// bound — the histogram cannot know how far past it they landed. An empty
// histogram reports 0.
func (h HistogramSnap) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if !(q > 0) { // also catches NaN, which fails every comparison
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := int64(0)
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time view of a registry, sorted by name within
// each kind so renders are deterministic.
type Snapshot struct {
	Counters   []NamedValue
	Gauges     []NamedValue
	Histograms []HistogramSnap
}

// Snapshot captures every registered metric. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters = append(s.Counters, NamedValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gaugs {
		s.Gauges = append(s.Gauges, NamedValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter reports the snapshotted value of the named counter (zero when
// absent) — a convenience for tests and render code.
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge reports the snapshotted level of the named gauge (zero when absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// WriteText renders the snapshot as an aligned text table.
func (s Snapshot) WriteText(w io.Writer) error {
	if len(s.Counters) > 0 {
		if _, err := fmt.Fprintln(w, "== counters =="); err != nil {
			return err
		}
		for _, c := range s.Counters {
			if _, err := fmt.Fprintf(w, "%-40s %12d\n", c.Name, c.Value); err != nil {
				return err
			}
		}
	}
	if len(s.Gauges) > 0 {
		if _, err := fmt.Fprintln(w, "== gauges =="); err != nil {
			return err
		}
		for _, g := range s.Gauges {
			if _, err := fmt.Fprintf(w, "%-40s %12d\n", g.Name, g.Value); err != nil {
				return err
			}
		}
	}
	if len(s.Histograms) > 0 {
		if _, err := fmt.Fprintln(w, "== histograms =="); err != nil {
			return err
		}
		for _, h := range s.Histograms {
			if _, err := fmt.Fprintf(w, "%-40s count=%d sum=%d\n", h.Name, h.Count, h.Sum); err != nil {
				return err
			}
			for i, n := range h.Counts {
				if n == 0 {
					continue
				}
				label := "+inf"
				if i < len(h.Bounds) {
					label = fmt.Sprintf("%d", h.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "  le %-12s %12d\n", label, n); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
