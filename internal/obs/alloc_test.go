package obs

import (
	"testing"
	"time"
)

// disabledHooks exercises every hook a hot path may contain, against nil
// receivers — exactly what instrumented code does when observability is
// off. It must allocate nothing.
func disabledHooks() {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var k *Track
	var tr *Trace
	var reg *Registry

	c.Add(1)
	c.Inc()
	_ = c.Value()
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	sp := k.Begin("span", "detail")
	sp.End()
	sp.EndDetail("outcome")
	k.Instant("point", "detail")
	k.InstantAt(time.Millisecond, "point", "detail")
	k.SpanAt(0, time.Millisecond, "span", "detail")
	k.SetClock(nil)
	_ = tr.VirtualTrack("v")
	_ = tr.WallTrack("w")
	_ = reg.Counter("c")
	_ = reg.Gauge("g")
	_ = reg.Histogram("h", nil)
}

// TestDisabledHooksZeroAlloc is the PR's core budget guarantee: with
// observability disabled, every hook site costs zero allocations, so the
// PR-4 per-instruction budgets are unaffected by compiled-in hooks.
func TestDisabledHooksZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	if allocs := testing.AllocsPerRun(1000, disabledHooks); allocs != 0 {
		t.Errorf("disabled hooks allocate %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkDisabledHooks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledHooks()
	}
}

func BenchmarkEnabledCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench.hits")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTrace()
	tr.SetWallClock(TickingClock(time.Microsecond))
	k := tr.WallTrack("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := k.Begin("job", "")
		sp.End()
	}
}
