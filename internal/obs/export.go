package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Exporters. Both renderers are deterministic: tracks are emitted in
// sorted (domain, name) order, events in per-track recording order, and
// floating-point timestamps use a fixed 'f'/3 format — so a run traced
// twice (or at a different worker count, for virtual-only traces) produces
// byte-identical files.

// chromePID maps a clock domain to a Chrome trace "process": the two
// domains must never share a timeline, so each gets its own pid.
func chromePID(d Domain) int {
	if d == DomainWall {
		return 2
	}
	return 1
}

// usec renders a duration as Chrome's microsecond timestamps with fixed
// precision (strconv, not %g: %g switches to scientific notation on large
// runs, which some viewers reject and which is not byte-stable across
// magnitudes).
func usec(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Microsecond), 'f', 3, 64)
}

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Marshalling a string cannot fail; keep the exporter total anyway.
		return `""`
	}
	return string(b)
}

// WriteChrome renders the trace in Chrome trace-event JSON (the format
// chrome://tracing and Perfetto load): virtual-time tracks as threads of
// process 1 ("virtual time"), wall-clock tracks as threads of process 2
// ("wall clock"), spans as complete ("X") events and instants as "i"
// events. A nil trace writes an empty, still-loadable file.
func (t *Trace) WriteChrome(w io.Writer) error {
	return WriteChromeTracks(w, t.Tracks())
}

// WriteChromeTracks renders an explicit track list — already in the
// caller's intended order, normally Trace.Tracks' sorted (domain, name)
// order — in Chrome trace-event JSON. Flight-recorder dumps use it to
// export a subset of tracks (the rings involved in a violation) without
// copying them into a throwaway Trace.
func WriteChromeTracks(w io.Writer, tracks []*Track) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.WriteString(line)
		return err
	}

	domainSeen := map[Domain]bool{}
	for _, k := range tracks {
		if !domainSeen[k.domain] {
			domainSeen[k.domain] = true
			name := "virtual time"
			if k.domain == DomainWall {
				name = "wall clock"
			}
			meta := fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
				chromePID(k.domain), jstr(name))
			if err := emit(meta); err != nil {
				return err
			}
		}
	}
	for i, k := range tracks {
		meta := fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			chromePID(k.domain), i+1, jstr(k.name))
		if err := emit(meta); err != nil {
			return err
		}
	}
	for i, k := range tracks {
		pid, tid := chromePID(k.domain), i+1
		for _, ev := range k.Events() {
			var line string
			switch {
			case ev.Instant:
				line = fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":{"detail":%s}}`,
					jstr(ev.Name), jstr(k.domain.String()), usec(ev.Start), pid, tid, jstr(ev.Detail))
			default:
				dur := ev.Dur
				if dur < 0 {
					dur = 0 // never ended; render as a zero-width span
				}
				line = fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"detail":%s}}`,
					jstr(ev.Name), jstr(k.domain.String()), usec(ev.Start), usec(dur), pid, tid, jstr(ev.Detail))
			}
			if err := emit(line); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// jsonlEvent fixes the JSONL field order.
type jsonlEvent struct {
	Domain  string `json:"domain"`
	Track   string `json:"track"`
	Name    string `json:"name"`
	AtNS    int64  `json:"at_ns"`
	DurNS   int64  `json:"dur_ns,omitempty"`
	Detail  string `json:"detail,omitempty"`
	Instant bool   `json:"instant,omitempty"`
}

// EventJSONL renders one event in the JSONL export form (no trailing
// newline) — the unit the streaming trace endpoint emits per line.
func EventJSONL(d Domain, track string, ev Event) ([]byte, error) {
	dur := ev.Dur
	if dur < 0 {
		dur = 0
	}
	return json.Marshal(jsonlEvent{
		Domain:  d.String(),
		Track:   track,
		Name:    ev.Name,
		AtNS:    int64(ev.Start),
		DurNS:   int64(dur),
		Detail:  ev.Detail,
		Instant: ev.Instant,
	})
}

// WriteJSONL renders the trace as one JSON object per line — the
// machine-diffable stream form of WriteChrome, with the same deterministic
// ordering. A nil trace writes nothing.
func (t *Trace) WriteJSONL(w io.Writer) error {
	return WriteJSONLTracks(w, t.Tracks())
}

// WriteJSONLTracks renders an explicit track list as JSONL, in the order
// given (see WriteChromeTracks).
func WriteJSONLTracks(w io.Writer, tracks []*Track) error {
	bw := bufio.NewWriter(w)
	for _, k := range tracks {
		for _, ev := range k.Events() {
			line, err := EventJSONL(k.domain, k.name, ev)
			if err != nil {
				return err
			}
			if _, err := bw.Write(line); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
