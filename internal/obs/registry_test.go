package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from parallel writers —
// lookups and updates interleaved — and checks the totals. Run under
// -race this is the package's data-race gate.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("shared.hits").Inc()
				reg.Counter("shared.bytes").Add(3)
				reg.Gauge("shared.depth").Add(1)
				reg.Gauge("shared.depth").Add(-1)
				reg.Histogram("shared.lat", DurationBuckets()).Observe(int64(i))
			}
		}()
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counter("shared.hits"); got != goroutines*perG {
		t.Errorf("shared.hits = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Counter("shared.bytes"); got != 3*goroutines*perG {
		t.Errorf("shared.bytes = %d, want %d", got, 3*goroutines*perG)
	}
	if got := snap.Gauge("shared.depth"); got != 0 {
		t.Errorf("shared.depth = %d, want 0", got)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != goroutines*perG {
		t.Errorf("histogram count = %+v, want %d observations", snap.Histograms, goroutines*perG)
	}
}

func TestRegistrySameNameSameMetric(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("two lookups of one counter name returned different counters")
	}
	if reg.Gauge("x") != reg.Gauge("x") {
		t.Error("two lookups of one gauge name returned different gauges")
	}
	if reg.Histogram("x", DurationBuckets()) != reg.Histogram("x", nil) {
		t.Error("two lookups of one histogram name returned different histograms")
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("a")
	g := reg.Gauge("b")
	h := reg.Histogram("c", DurationBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	c.Add(5)
	c.Inc()
	g.Set(9)
	g.Add(-2)
	h.Observe(17)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil metrics must read zero")
	}
	if snap := reg.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestRehomeCarriesValueOver(t *testing.T) {
	c := &Counter{}
	c.Add(41)
	reg := NewRegistry()
	Rehome(reg, "carried", &c)
	c.Inc()
	if got := reg.Snapshot().Counter("carried"); got != 42 {
		t.Errorf("rehomed counter = %d, want 42", got)
	}
	// Rehoming the already-registered counter must not double its value.
	Rehome(reg, "carried", &c)
	if got := reg.Snapshot().Counter("carried"); got != 42 {
		t.Errorf("idempotent rehome = %d, want 42", got)
	}
	// Nil registry leaves the counter alone.
	Rehome(nil, "carried", &c)
	if c.Value() != 42 {
		t.Errorf("rehome onto nil registry mutated the counter: %d", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	snap := reg.Snapshot().Histograms[0]
	want := []int64{2, 2, 2} // ≤10, ≤100, overflow
	for i, n := range want {
		if snap.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (snap %+v)", i, snap.Counts[i], n, snap)
		}
	}
	if snap.Sum != 1+10+11+100+101+5000 {
		t.Errorf("sum = %d", snap.Sum)
	}
}

func TestSnapshotWriteTextDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Counter("a.count").Add(1)
	reg.Gauge("z.depth").Set(7)
	reg.Histogram("m.lat", []int64{10}).Observe(4)

	var one, two bytes.Buffer
	if err := reg.Snapshot().WriteText(&one); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WriteText(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("two renders of one snapshot differ")
	}
	if !strings.Contains(one.String(), "a.count") || strings.Index(one.String(), "a.count") > strings.Index(one.String(), "b.count") {
		t.Errorf("counters not sorted by name:\n%s", one.String())
	}
}
