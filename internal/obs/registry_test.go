package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from parallel writers —
// lookups and updates interleaved — and checks the totals. Run under
// -race this is the package's data-race gate.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("shared.hits").Inc()
				reg.Counter("shared.bytes").Add(3)
				reg.Gauge("shared.depth").Add(1)
				reg.Gauge("shared.depth").Add(-1)
				reg.Histogram("shared.lat", DurationBuckets()).Observe(int64(i))
			}
		}()
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counter("shared.hits"); got != goroutines*perG {
		t.Errorf("shared.hits = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Counter("shared.bytes"); got != 3*goroutines*perG {
		t.Errorf("shared.bytes = %d, want %d", got, 3*goroutines*perG)
	}
	if got := snap.Gauge("shared.depth"); got != 0 {
		t.Errorf("shared.depth = %d, want 0", got)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != goroutines*perG {
		t.Errorf("histogram count = %+v, want %d observations", snap.Histograms, goroutines*perG)
	}
}

func TestRegistrySameNameSameMetric(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("two lookups of one counter name returned different counters")
	}
	if reg.Gauge("x") != reg.Gauge("x") {
		t.Error("two lookups of one gauge name returned different gauges")
	}
	if reg.Histogram("x", DurationBuckets()) != reg.Histogram("x", nil) {
		t.Error("two lookups of one histogram name returned different histograms")
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("a")
	g := reg.Gauge("b")
	h := reg.Histogram("c", DurationBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	c.Add(5)
	c.Inc()
	g.Set(9)
	g.Add(-2)
	h.Observe(17)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil metrics must read zero")
	}
	if snap := reg.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestRehomeCarriesValueOver(t *testing.T) {
	c := &Counter{}
	c.Add(41)
	reg := NewRegistry()
	Rehome(reg, "carried", &c)
	c.Inc()
	if got := reg.Snapshot().Counter("carried"); got != 42 {
		t.Errorf("rehomed counter = %d, want 42", got)
	}
	// Rehoming the already-registered counter must not double its value.
	Rehome(reg, "carried", &c)
	if got := reg.Snapshot().Counter("carried"); got != 42 {
		t.Errorf("idempotent rehome = %d, want 42", got)
	}
	// Nil registry leaves the counter alone.
	Rehome(nil, "carried", &c)
	if c.Value() != 42 {
		t.Errorf("rehome onto nil registry mutated the counter: %d", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	snap := reg.Snapshot().Histograms[0]
	want := []int64{2, 2, 2} // ≤10, ≤100, overflow
	for i, n := range want {
		if snap.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (snap %+v)", i, snap.Counts[i], n, snap)
		}
	}
	if snap.Sum != 1+10+11+100+101+5000 {
		t.Errorf("sum = %d", snap.Sum)
	}
}

func TestSnapshotWriteTextDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Counter("a.count").Add(1)
	reg.Gauge("z.depth").Set(7)
	reg.Histogram("m.lat", []int64{10}).Observe(4)

	var one, two bytes.Buffer
	if err := reg.Snapshot().WriteText(&one); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WriteText(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("two renders of one snapshot differ")
	}
	if !strings.Contains(one.String(), "a.count") || strings.Index(one.String(), "a.count") > strings.Index(one.String(), "b.count") {
		t.Errorf("counters not sorted by name:\n%s", one.String())
	}
}

func TestLatencyBucketsShape(t *testing.T) {
	b := LatencyBuckets()
	if len(b) != 22 {
		t.Fatalf("len = %d, want 22", len(b))
	}
	if b[0] != 1e3 || b[len(b)-1] != 1e10 {
		t.Fatalf("range = [%d, %d], want [1e3, 1e10]", b[0], b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, b)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", LatencyBuckets())
	// 1000 samples uniformly spread across 1µs..1ms.
	for i := 0; i < 1000; i++ {
		h.Observe(int64(1e3 + i*1e3))
	}
	snap := reg.Snapshot().Histograms[0]
	p50 := snap.Quantile(0.50)
	if p50 < 2e5 || p50 > 8e5 {
		t.Fatalf("p50 = %d, want ~5e5", p50)
	}
	p99 := snap.Quantile(0.99)
	if p99 < 8e5 || p99 > 1.2e6 {
		t.Fatalf("p99 = %d, want ~1e6", p99)
	}
	if got := snap.Quantile(0); got < 0 || got > 2e3 {
		t.Fatalf("p0 = %d, want ~1e3 bucket floor", got)
	}
	if got := snap.Quantile(1); got > 1e6 {
		t.Fatalf("p100 = %d, want <= 1e6", got)
	}
	var empty HistogramSnap
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	// Overflow-bucket samples clamp to the largest bound.
	h2 := reg.Histogram("q2", []int64{10, 100})
	h2.Observe(5000)
	s2 := reg.Snapshot().Histograms
	for _, s := range s2 {
		if s.Name == "q2" {
			if got := s.Quantile(0.5); got != 100 {
				t.Fatalf("overflow quantile = %d, want 100", got)
			}
		}
	}
}

// TestQuantileEdgeCases pins the degenerate inputs Quantile must survive:
// empty histograms, all-overflow mass, exact endpoints and garbage q.
func TestQuantileEdgeCases(t *testing.T) {
	overflowOnly := HistogramSnap{
		Count: 5, Bounds: []int64{10, 100}, Counts: []int64{0, 0, 5},
	}
	uniform := HistogramSnap{
		Count: 10, Bounds: []int64{10, 100}, Counts: []int64{5, 5, 0},
	}
	gapped := HistogramSnap{ // empty first bucket, mass in the second
		Count: 4, Bounds: []int64{10, 100, 1000}, Counts: []int64{0, 4, 0, 0},
	}
	cases := []struct {
		name string
		h    HistogramSnap
		q    float64
		want int64
	}{
		{"empty histogram", HistogramSnap{}, 0.5, 0},
		{"zero-count with bounds", HistogramSnap{Bounds: []int64{10}, Counts: []int64{0, 0}}, 0.5, 0},
		{"no bounds", HistogramSnap{Count: 3, Counts: []int64{3}}, 0.5, 0},
		{"all overflow q=0.5", overflowOnly, 0.5, 100},
		{"all overflow q=0", overflowOnly, 0, 100},
		{"all overflow q=1", overflowOnly, 1, 100},
		{"q=0 lands at first bucket floor", uniform, 0, 0},
		{"q=1 lands at last occupied bound", uniform, 1, 100},
		{"q below range clamps to 0", uniform, -3, 0},
		{"q above range clamps to 1", uniform, 7, 100},
		{"NaN treated as q=0", uniform, math.NaN(), 0},
		{"NaN on gapped histogram", gapped, math.NaN(), 10},
		{"q=0 skips empty leading bucket", gapped, 0, 10},
		{"q=1 gapped", gapped, 1, 100},
		{"median interpolates", uniform, 0.5, 10},
	}
	for _, tc := range cases {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestRehomeMergesExistingRegistryCounter covers the collision case: the
// target registry already owns a counter under the name. The private
// counter's history must merge into it — not shadow it, not vanish.
func TestRehomeMergesExistingRegistryCounter(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("shared.hits").Add(10) // pre-existing registry history

	private := &Counter{}
	private.Add(32)
	Rehome(reg, "shared.hits", &private)
	if got := reg.Snapshot().Counter("shared.hits"); got != 42 {
		t.Fatalf("merged counter = %d, want 42 (10 registry + 32 private)", got)
	}
	// Both handles now point at the same counter: increments through
	// either side aggregate.
	private.Inc()
	reg.Counter("shared.hits").Inc()
	if got := reg.Snapshot().Counter("shared.hits"); got != 44 {
		t.Fatalf("post-merge aggregate = %d, want 44", got)
	}
	if private != reg.Counter("shared.hits") {
		t.Fatal("rehomed handle is not the registry's counter")
	}
	// A second component rehoming its own private counter onto the same
	// name merges again rather than resetting.
	other := &Counter{}
	other.Add(6)
	Rehome(reg, "shared.hits", &other)
	if got := reg.Snapshot().Counter("shared.hits"); got != 50 {
		t.Fatalf("second merge = %d, want 50", got)
	}
	// Rehoming a nil private counter adopts the registry counter as-is.
	var fresh *Counter
	Rehome(reg, "shared.hits", &fresh)
	if fresh.Value() != 50 {
		t.Fatalf("nil-source rehome = %d, want 50", fresh.Value())
	}
}
