package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// HubEvent is one fleet lifecycle/violation/reclaim notification fanned
// out to live subscribers (the /events SSE endpoint). Seq is a global
// publish counter, so a subscriber can detect its own gaps.
type HubEvent struct {
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Source string `json:"source,omitempty"`
	Detail string `json:"detail,omitempty"`
	AtNS   int64  `json:"at_ns"`
}

// Hub is a fan-out broadcaster built for hot-path publishers. Publish
// never blocks and takes no hub-wide lock: the subscriber list is an
// immutable slice behind an atomic pointer (copy-on-write on
// Subscribe/Unsubscribe, which are rare) and sends are non-blocking — a
// subscriber that cannot keep up loses events, counted per subscription
// in Subscription.Dropped, instead of stalling the publisher (a serve
// transaction path). The nil Hub is a valid disabled hub.
type Hub struct {
	subs atomic.Pointer[[]*Subscription]
	seq  atomic.Uint64
	mu   sync.Mutex // serializes the copy-on-write writers only
}

// Subscription is one subscriber's buffered event stream. The tiny
// per-subscription mutex exists only to order a racing Publish against
// Unsubscribe's close — it is uncontended and never held across a
// blocking operation, so publishers stay wait-free in practice.
type Subscription struct {
	mu      sync.Mutex
	closed  bool
	ch      chan HubEvent
	dropped atomic.Uint64
}

// send delivers ev without blocking, dropping it if the buffer is full or
// the subscription is already closed.
func (s *Subscription) send(ev HubEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.ch <- ev:
	default:
		s.dropped.Add(1)
	}
}

// C is the subscriber's receive channel. It is closed only by
// Hub.Unsubscribe, so ranging over it ends when the caller unsubscribes.
func (s *Subscription) C() <-chan HubEvent { return s.ch }

// Dropped reports how many events this subscriber lost to a full buffer.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// NewHub builds an empty hub.
func NewHub() *Hub { return &Hub{} }

// Subscribe registers a new subscriber with the given channel buffer
// (minimum 1). A nil hub returns nil.
func (h *Hub) Subscribe(buf int) *Subscription {
	if h == nil {
		return nil
	}
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{ch: make(chan HubEvent, buf)}
	h.mu.Lock()
	defer h.mu.Unlock()
	var cur []*Subscription
	if p := h.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]*Subscription, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	h.subs.Store(&next)
	return s
}

// Unsubscribe removes s and closes its channel. Removing an unknown or
// already-removed subscription is a no-op; nil-safe in both positions.
func (h *Hub) Unsubscribe(s *Subscription) {
	if h == nil || s == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var cur []*Subscription
	if p := h.subs.Load(); p != nil {
		cur = *p
	}
	for i, have := range cur {
		if have == s {
			next := make([]*Subscription, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			h.subs.Store(&next)
			s.mu.Lock()
			s.closed = true
			close(s.ch)
			s.mu.Unlock()
			return
		}
	}
}

// Publish broadcasts one event to every current subscriber without
// blocking and returns it (Seq assigned). A nil hub returns a zero event.
func (h *Hub) Publish(kind, source, detail string, at time.Duration) HubEvent {
	if h == nil {
		return HubEvent{}
	}
	ev := HubEvent{
		Seq:    h.seq.Add(1),
		Kind:   kind,
		Source: source,
		Detail: detail,
		AtNS:   int64(at),
	}
	p := h.subs.Load()
	if p == nil {
		return ev
	}
	for _, s := range *p {
		s.send(ev)
	}
	return ev
}
