package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func ringTrack(t *testing.T, depth int) *Track {
	t.Helper()
	tr := NewTrace()
	tr.SetRingDepth(depth)
	return tr.VirtualTrack("ring")
}

func TestRingOverwritesOldest(t *testing.T) {
	k := ringTrack(t, 4)
	for i := 0; i < 10; i++ {
		k.InstantAt(time.Duration(i), "ev", fmt.Sprintf("%d", i))
	}
	evs := k.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("%d", 6+i); ev.Detail != want {
			t.Errorf("event %d = %q, want %q (oldest-first window)", i, ev.Detail, want)
		}
	}
	if k.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", k.Dropped())
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	k := ringTrack(t, 8)
	k.InstantAt(1, "a", "")
	k.InstantAt(2, "b", "")
	evs := k.Events()
	if len(evs) != 2 || evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatalf("partial ring events: %+v", evs)
	}
	if k.Dropped() != 0 {
		t.Errorf("dropped = %d on a non-full ring", k.Dropped())
	}
}

func TestRingEventsSincePages(t *testing.T) {
	k := ringTrack(t, 16)
	k.InstantAt(1, "a", "")
	k.InstantAt(2, "b", "")
	evs, next := k.EventsSince(0)
	if len(evs) != 2 || next != 2 {
		t.Fatalf("first page: %d events, next=%d", len(evs), next)
	}
	// No new events: empty page, cursor unchanged.
	evs, next = k.EventsSince(next)
	if len(evs) != 0 || next != 2 {
		t.Fatalf("idle page: %d events, next=%d", len(evs), next)
	}
	k.InstantAt(3, "c", "")
	evs, next = k.EventsSince(next)
	if len(evs) != 1 || evs[0].Name != "c" || next != 3 {
		t.Fatalf("incremental page: %+v next=%d", evs, next)
	}
}

func TestRingEventsSinceSkipsEvicted(t *testing.T) {
	k := ringTrack(t, 4)
	k.InstantAt(0, "old", "")
	_, next := k.EventsSince(0)
	for i := 0; i < 8; i++ {
		k.InstantAt(time.Duration(i+1), "new", fmt.Sprintf("%d", i))
	}
	// The consumer's cursor (1) points below the retained window; it gets
	// the window, not a panic or duplicates.
	evs, next2 := k.EventsSince(next)
	if len(evs) != 4 || next2 != 9 {
		t.Fatalf("lagging consumer: %d events, next=%d", len(evs), next2)
	}
	if evs[0].Detail != "4" {
		t.Errorf("window starts at %q, want \"4\"", evs[0].Detail)
	}
}

func TestRingSpanEndAfterEviction(t *testing.T) {
	k := ringTrack(t, 2)
	k.SetClock(func() time.Duration { return 5 })
	sp := k.Begin("open", "")
	for i := 0; i < 3; i++ {
		k.InstantAt(time.Duration(i), "flood", "")
	}
	sp.End() // the open event was evicted; must be a quiet no-op
	for _, ev := range k.Events() {
		if ev.Name == "open" {
			t.Fatalf("evicted span still present: %+v", ev)
		}
	}
	// A span that survives in the ring still closes normally.
	sp2 := k.Begin("kept", "")
	sp2.EndDetail("done")
	evs := k.Events()
	last := evs[len(evs)-1]
	if last.Name != "kept" || last.Detail != "done" || last.Dur != 0 {
		t.Fatalf("surviving ring span: %+v", last)
	}
}

func TestTailTrack(t *testing.T) {
	k := ringTrack(t, 8)
	for i := 0; i < 5; i++ {
		k.InstantAt(time.Duration(i), "ev", fmt.Sprintf("%d", i))
	}
	tail := TailTrack(k, 3)
	if tail.Name() != "ring" || tail.Domain() != DomainVirtual {
		t.Fatalf("tail identity: %q/%v", tail.Name(), tail.Domain())
	}
	evs := tail.Events()
	if len(evs) != 3 || evs[0].Detail != "2" || evs[2].Detail != "4" {
		t.Fatalf("tail events: %+v", evs)
	}
	if all := TailTrack(k, 0).Events(); len(all) != 5 {
		t.Errorf("TailTrack(0) = %d events, want all 5", len(all))
	}
	if TailTrack(nil, 3) != nil {
		t.Error("TailTrack(nil) must be nil")
	}
}

func TestSetRingDepthOnlyAffectsNewTracks(t *testing.T) {
	tr := NewTrace()
	unbounded := tr.VirtualTrack("before")
	tr.SetRingDepth(2)
	ring := tr.VirtualTrack("after")
	for i := 0; i < 5; i++ {
		unbounded.InstantAt(time.Duration(i), "ev", "")
		ring.InstantAt(time.Duration(i), "ev", "")
	}
	if got := len(unbounded.Events()); got != 5 {
		t.Errorf("pre-existing track bounded: %d events", got)
	}
	if got := len(ring.Events()); got != 2 {
		t.Errorf("ring track holds %d events, want 2", got)
	}
}

func TestTraceDrop(t *testing.T) {
	tr := NewTrace()
	tr.SetRingDepth(4)
	k := tr.VirtualTrack("device/1")
	k.InstantAt(1, "ev", "")
	tr.Drop(DomainVirtual, "device/1")
	if len(tr.Tracks()) != 0 {
		t.Fatal("dropped track still listed")
	}
	// Re-creating the name starts a fresh ring.
	if got := len(tr.VirtualTrack("device/1").Events()); got != 0 {
		t.Errorf("recreated track inherited %d events", got)
	}
	tr.Drop(DomainWall, "missing") // no-op
	var nilTr *Trace
	nilTr.Drop(DomainVirtual, "x") // nil-safe
	nilTr.SetRingDepth(8)
}

func TestRingExportsUseWindow(t *testing.T) {
	tr := NewTrace()
	tr.SetWallClock(nil)
	tr.SetRingDepth(2)
	k := tr.VirtualTrack("run")
	for i := 0; i < 5; i++ {
		k.InstantAt(time.Duration(i)*time.Millisecond, "ev", fmt.Sprintf("%d", i))
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("ring JSONL lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"detail":"3"`) || !strings.Contains(lines[1], `"detail":"4"`) {
		t.Errorf("ring export window wrong:\n%s", buf.String())
	}
}

// TestRingAppendZeroAlloc is the flight recorder's core budget guarantee:
// once a ring track exists, recording an event is a slot store — zero
// allocations per append — so the recorder can stay always-on inside the
// serve transaction path and the chaos hot loops. verify.sh gates on it.
func TestRingAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	tr := NewTrace()
	tr.SetRingDepth(64)
	k := tr.VirtualTrack("hot")
	k.SetClock(func() time.Duration { return 42 })
	allocs := testing.AllocsPerRun(1000, func() {
		k.InstantAt(7, "step", "detail")
		k.SpanAt(1, 2, "span", "detail")
		k.Instant("point", "detail")
		sp := k.Begin("open", "")
		sp.EndDetail("done")
	})
	if allocs != 0 {
		t.Errorf("ring appends allocate %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkRingAppend(b *testing.B) {
	tr := NewTrace()
	tr.SetRingDepth(256)
	k := tr.VirtualTrack("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.InstantAt(time.Duration(i), "ev", "detail")
	}
}
