package obs

import (
	"sort"
	"sync"
	"time"
)

// Clock reads a monotonic timestamp measured from some fixed origin. The
// virtual domain uses sim.Scheduler.Now; the wall domain uses Stopwatch
// (or a deterministic fake in tests).
type Clock func() time.Duration

// Stopwatch returns a real monotonic wall clock starting at zero now.
func Stopwatch() Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// TickingClock returns a deterministic fake wall clock that advances by
// step on every reading — enough to give test spans distinct, stable
// timestamps without touching the real clock.
func TickingClock(step time.Duration) Clock {
	var mu sync.Mutex
	var now time.Duration
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		now += step
		return now
	}
}

// Domain is a trace clock domain. Events never compare across domains:
// exporters render each domain as its own process.
type Domain uint8

const (
	// DomainVirtual is simulated time, measured from device boot.
	DomainVirtual Domain = iota
	// DomainWall is host time, measured from an injectable stopwatch.
	DomainWall
)

func (d Domain) String() string {
	if d == DomainWall {
		return "wall"
	}
	return "virtual"
}

// Event is one recorded trace event. An Event with Instant set marks a
// point in time; otherwise it is a span of Dur starting at Start (Dur < 0
// means the span never ended).
type Event struct {
	Name    string
	Detail  string
	Start   time.Duration
	Dur     time.Duration
	Instant bool
}

// Trace collects tracks across both clock domains. The nil Trace is a
// valid disabled trace: VirtualTrack and WallTrack return nil tracks,
// whose methods are all no-ops. A Trace is safe for concurrent use.
type Trace struct {
	mu     sync.Mutex
	wall   Clock
	tracks map[trackKey]*Track
}

type trackKey struct {
	domain Domain
	name   string
}

// NewTrace builds an empty trace. The wall domain starts on a real
// stopwatch; SetWallClock swaps in a fake (or nil to disable wall tracks,
// which is what keeps multi-worker chaos exports deterministic).
func NewTrace() *Trace {
	return &Trace{wall: Stopwatch(), tracks: make(map[trackKey]*Track)}
}

// SetWallClock replaces the wall-domain clock. Passing nil disables the
// wall domain: WallTrack returns nil until a clock is installed again.
func (t *Trace) SetWallClock(c Clock) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wall = c
}

// VirtualTrack returns the named virtual-time track, creating it on first
// use. The track has no clock until SetClock binds it to a scheduler;
// until then only the explicit-timestamp recorders (InstantAt, SpanAt)
// place events meaningfully. A nil trace returns nil.
func (t *Trace) VirtualTrack(name string) *Track {
	if t == nil {
		return nil
	}
	return t.track(DomainVirtual, name, nil)
}

// WallTrack returns the named wall-clock track, creating it on first use
// with the trace's wall clock. It returns nil — a disabled track — when
// the trace is nil or the wall domain is disabled.
func (t *Trace) WallTrack(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	wall := t.wall
	t.mu.Unlock()
	if wall == nil {
		return nil
	}
	return t.track(DomainWall, name, wall)
}

func (t *Trace) track(d Domain, name string, clock Clock) *Track {
	key := trackKey{domain: d, name: name}
	t.mu.Lock()
	defer t.mu.Unlock()
	k, ok := t.tracks[key]
	if !ok {
		k = &Track{domain: d, name: name, clock: clock}
		t.tracks[key] = k
	}
	return k
}

// Tracks returns every track sorted by (domain, name) — the deterministic
// order all exporters use.
func (t *Trace) Tracks() []*Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*Track, 0, len(t.tracks))
	for _, k := range t.tracks {
		out = append(out, k)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].domain != out[j].domain {
			return out[i].domain < out[j].domain
		}
		return out[i].name < out[j].name
	})
	return out
}

// Track is one named event lane of a trace (a device, a worker, a chaos
// run). The nil Track is a valid disabled track. A Track is safe for
// concurrent use.
type Track struct {
	domain Domain
	name   string

	mu     sync.Mutex
	clock  Clock
	events []Event
}

// Domain reports the track's clock domain.
func (k *Track) Domain() Domain {
	if k == nil {
		return DomainVirtual
	}
	return k.domain
}

// Name reports the track's name (empty on a nil track).
func (k *Track) Name() string {
	if k == nil {
		return ""
	}
	return k.name
}

// SetClock binds the track's implicit-timestamp recorders (Begin, Instant)
// to a clock — for virtual tracks, the owning scheduler's Now.
func (k *Track) SetClock(c Clock) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.clock = c
}

// now must be called with k.mu held.
func (k *Track) now() time.Duration {
	if k.clock == nil {
		return 0
	}
	return k.clock()
}

// Begin opens a span at the current clock reading and returns its handle.
// On a nil track the returned zero Span is itself a no-op.
func (k *Track) Begin(name, detail string) Span {
	if k == nil {
		return Span{}
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.events = append(k.events, Event{Name: name, Detail: detail, Start: k.now(), Dur: -1})
	return Span{k: k, idx: len(k.events) - 1}
}

// Instant records a point event at the current clock reading.
func (k *Track) Instant(name, detail string) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.events = append(k.events, Event{Name: name, Detail: detail, Start: k.now(), Instant: true})
}

// InstantAt records a point event with an explicit timestamp. Hooks that
// fire with a scheduler lock held use this instead of Instant, because the
// clock they would read takes that same lock.
func (k *Track) InstantAt(at time.Duration, name, detail string) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.events = append(k.events, Event{Name: name, Detail: detail, Start: at, Instant: true})
}

// SpanAt records a completed span with explicit timestamps.
func (k *Track) SpanAt(start, dur time.Duration, name, detail string) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.events = append(k.events, Event{Name: name, Detail: detail, Start: start, Dur: dur})
}

// Events returns a copy of the track's events in recording order.
func (k *Track) Events() []Event {
	if k == nil {
		return nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]Event(nil), k.events...)
}

// Span is an open span handle. The zero Span (from a nil track's Begin)
// is a no-op. Spans are values: copying one is fine, End is idempotent in
// effect only if called once — call it exactly once per Begin.
type Span struct {
	k   *Track
	idx int
}

// End closes the span at the track clock's current reading.
func (s Span) End() { s.EndDetail("") }

// EndDetail closes the span and, when detail is non-empty, replaces the
// span's detail with the outcome observed at completion.
func (s Span) EndDetail(detail string) {
	if s.k == nil {
		return
	}
	s.k.mu.Lock()
	defer s.k.mu.Unlock()
	ev := &s.k.events[s.idx]
	ev.Dur = s.k.now() - ev.Start
	if detail != "" {
		ev.Detail = detail
	}
}
