package obs

import (
	"sort"
	"sync"
	"time"
)

// Clock reads a monotonic timestamp measured from some fixed origin. The
// virtual domain uses sim.Scheduler.Now; the wall domain uses Stopwatch
// (or a deterministic fake in tests).
type Clock func() time.Duration

// Stopwatch returns a real monotonic wall clock starting at zero now.
func Stopwatch() Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// TickingClock returns a deterministic fake wall clock that advances by
// step on every reading — enough to give test spans distinct, stable
// timestamps without touching the real clock.
func TickingClock(step time.Duration) Clock {
	var mu sync.Mutex
	var now time.Duration
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		now += step
		return now
	}
}

// Domain is a trace clock domain. Events never compare across domains:
// exporters render each domain as its own process.
type Domain uint8

const (
	// DomainVirtual is simulated time, measured from device boot.
	DomainVirtual Domain = iota
	// DomainWall is host time, measured from an injectable stopwatch.
	DomainWall
)

func (d Domain) String() string {
	if d == DomainWall {
		return "wall"
	}
	return "virtual"
}

// Event is one recorded trace event. An Event with Instant set marks a
// point in time; otherwise it is a span of Dur starting at Start (Dur < 0
// means the span never ended).
type Event struct {
	Name    string
	Detail  string
	Start   time.Duration
	Dur     time.Duration
	Instant bool
}

// Trace collects tracks across both clock domains. The nil Trace is a
// valid disabled trace: VirtualTrack and WallTrack return nil tracks,
// whose methods are all no-ops. A Trace is safe for concurrent use.
type Trace struct {
	mu        sync.Mutex
	wall      Clock
	ringDepth int
	tracks    map[trackKey]*Track
}

type trackKey struct {
	domain Domain
	name   string
}

// NewTrace builds an empty trace. The wall domain starts on a real
// stopwatch; SetWallClock swaps in a fake (or nil to disable wall tracks,
// which is what keeps multi-worker chaos exports deterministic).
func NewTrace() *Trace {
	return &Trace{wall: Stopwatch(), tracks: make(map[trackKey]*Track)}
}

// SetWallClock replaces the wall-domain clock. Passing nil disables the
// wall domain: WallTrack returns nil until a clock is installed again.
func (t *Trace) SetWallClock(c Clock) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wall = c
}

// SetRingDepth turns the trace into a flight recorder: tracks created
// after the call are bounded rings holding the last n events each, with
// slot storage preallocated so appends never allocate and overwritten
// events counted in Track.Dropped. n <= 0 restores unbounded tracks.
// Existing tracks keep their mode — size the recorder before wiring
// instrumentation.
func (t *Trace) SetRingDepth(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	t.ringDepth = n
}

// Drop removes the named track from the trace, so long-lived processes
// (the fleet daemon reclaiming devices) do not accumulate dead tracks.
// Dropping a track that does not exist is a no-op.
func (t *Trace) Drop(d Domain, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.tracks, trackKey{domain: d, name: name})
}

// VirtualTrack returns the named virtual-time track, creating it on first
// use. The track has no clock until SetClock binds it to a scheduler;
// until then only the explicit-timestamp recorders (InstantAt, SpanAt)
// place events meaningfully. A nil trace returns nil.
func (t *Trace) VirtualTrack(name string) *Track {
	if t == nil {
		return nil
	}
	return t.track(DomainVirtual, name, nil)
}

// WallTrack returns the named wall-clock track, creating it on first use
// with the trace's wall clock. It returns nil — a disabled track — when
// the trace is nil or the wall domain is disabled.
func (t *Trace) WallTrack(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	wall := t.wall
	t.mu.Unlock()
	if wall == nil {
		return nil
	}
	return t.track(DomainWall, name, wall)
}

func (t *Trace) track(d Domain, name string, clock Clock) *Track {
	key := trackKey{domain: d, name: name}
	t.mu.Lock()
	defer t.mu.Unlock()
	k, ok := t.tracks[key]
	if !ok {
		k = &Track{domain: d, name: name, clock: clock}
		if t.ringDepth > 0 {
			// Ring slots are preallocated here, once, so the append path
			// is a slot store — zero allocations per event.
			k.depth = t.ringDepth
			k.events = make([]Event, t.ringDepth)
			k.seqs = make([]uint64, t.ringDepth)
		}
		t.tracks[key] = k
	}
	return k
}

// Tracks returns every track sorted by (domain, name) — the deterministic
// order all exporters use.
func (t *Trace) Tracks() []*Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*Track, 0, len(t.tracks))
	for _, k := range t.tracks {
		out = append(out, k)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].domain != out[j].domain {
			return out[i].domain < out[j].domain
		}
		return out[i].name < out[j].name
	})
	return out
}

// Track is one named event lane of a trace (a device, a worker, a chaos
// run). The nil Track is a valid disabled track. A Track is safe for
// concurrent use.
//
// A track runs in one of two modes, fixed at creation. Unbounded (the
// default): events accumulate until exported. Ring (Trace.SetRingDepth):
// events land in a preallocated circular buffer of depth slots, the
// append path allocates nothing, and once the ring is full each append
// evicts the oldest event (counted by Dropped). Every append in either
// mode is assigned a monotonically increasing sequence number, which is
// what EventsSince pages on and what lets a Span survive — or detect —
// eviction of its open event.
type Track struct {
	domain Domain
	name   string
	depth  int // ring capacity; 0 = unbounded

	mu      sync.Mutex
	clock   Clock
	events  []Event
	seqs    []uint64 // ring mode: sequence number held by each slot
	seq     uint64   // next sequence number (== total events appended)
	dropped uint64   // ring mode: events evicted by overwrite
}

// Domain reports the track's clock domain.
func (k *Track) Domain() Domain {
	if k == nil {
		return DomainVirtual
	}
	return k.domain
}

// Name reports the track's name (empty on a nil track).
func (k *Track) Name() string {
	if k == nil {
		return ""
	}
	return k.name
}

// SetClock binds the track's implicit-timestamp recorders (Begin, Instant)
// to a clock — for virtual tracks, the owning scheduler's Now.
func (k *Track) SetClock(c Clock) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.clock = c
}

// now must be called with k.mu held.
func (k *Track) now() time.Duration {
	if k.clock == nil {
		return 0
	}
	return k.clock()
}

// append records ev and returns its sequence number; k.mu must be held.
// In ring mode this is a slot store (the event's string fields are header
// copies into preallocated storage) — no allocation on any append.
func (k *Track) append(ev Event) uint64 {
	seq := k.seq
	if k.depth > 0 {
		slot := int(seq % uint64(k.depth))
		if seq >= uint64(k.depth) {
			k.dropped++
		}
		k.events[slot] = ev
		k.seqs[slot] = seq
	} else {
		k.events = append(k.events, ev)
	}
	k.seq = seq + 1
	return seq
}

// Begin opens a span at the current clock reading and returns its handle.
// On a nil track the returned zero Span is itself a no-op.
func (k *Track) Begin(name, detail string) Span {
	if k == nil {
		return Span{}
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	seq := k.append(Event{Name: name, Detail: detail, Start: k.now(), Dur: -1})
	return Span{k: k, seq: seq}
}

// Instant records a point event at the current clock reading.
func (k *Track) Instant(name, detail string) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.append(Event{Name: name, Detail: detail, Start: k.now(), Instant: true})
}

// InstantAt records a point event with an explicit timestamp. Hooks that
// fire with a scheduler lock held use this instead of Instant, because the
// clock they would read takes that same lock.
func (k *Track) InstantAt(at time.Duration, name, detail string) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.append(Event{Name: name, Detail: detail, Start: at, Instant: true})
}

// SpanAt records a completed span with explicit timestamps.
func (k *Track) SpanAt(start, dur time.Duration, name, detail string) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.append(Event{Name: name, Detail: detail, Start: start, Dur: dur})
}

// firstLive returns the sequence number of the oldest event still held;
// k.mu must be held.
func (k *Track) firstLive() uint64 {
	if k.depth > 0 && k.seq > uint64(k.depth) {
		return k.seq - uint64(k.depth)
	}
	return 0
}

// copyRange appends events [from, k.seq) in sequence order to dst; k.mu
// must be held and from must be >= firstLive.
func (k *Track) copyRange(dst []Event, from uint64) []Event {
	if k.depth > 0 {
		for s := from; s < k.seq; s++ {
			dst = append(dst, k.events[int(s%uint64(k.depth))])
		}
		return dst
	}
	return append(dst, k.events[from:]...)
}

// Events returns a copy of the track's events in recording order (for a
// ring track, the retained window oldest-first).
func (k *Track) Events() []Event {
	if k == nil {
		return nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	from := k.firstLive()
	return k.copyRange(make([]Event, 0, k.seq-from), from)
}

// EventsSince returns the events with sequence number >= since that the
// track still holds, oldest-first, plus the next sequence number to poll
// from. Streaming consumers (the /devices/{id}/trace?follow=1 handler)
// call it in a loop: events appended between calls appear exactly once,
// and events evicted before a slow consumer caught up are skipped (the
// gap is visible as next - since - len(events) on the previous call).
func (k *Track) EventsSince(since uint64) ([]Event, uint64) {
	if k == nil {
		return nil, 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	from := k.firstLive()
	if since > from {
		from = since
	}
	if from >= k.seq {
		return nil, k.seq
	}
	return k.copyRange(make([]Event, 0, k.seq-from), from), k.seq
}

// Dropped reports how many events a ring track has evicted by overwrite
// (always zero on unbounded and nil tracks).
func (k *Track) Dropped() uint64 {
	if k == nil {
		return 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.dropped
}

// TailTrack builds an unbounded snapshot track holding k's last n events
// (all of them when n <= 0 or n exceeds what the track holds) — the shape
// flight-recorder dumps feed to WriteChromeTracks/WriteJSONLTracks. A nil
// track yields nil.
func TailTrack(k *Track, n int) *Track {
	if k == nil {
		return nil
	}
	evs := k.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return &Track{domain: k.domain, name: k.name, events: evs, seq: uint64(len(evs))}
}

// Span is an open span handle. The zero Span (from a nil track's Begin)
// is a no-op. Spans are values: copying one is fine, End is idempotent in
// effect only if called once — call it exactly once per Begin. On a ring
// track whose open event has been evicted by newer appends, End quietly
// does nothing.
type Span struct {
	k   *Track
	seq uint64
}

// End closes the span at the track clock's current reading.
func (s Span) End() { s.EndDetail("") }

// EndDetail closes the span and, when detail is non-empty, replaces the
// span's detail with the outcome observed at completion.
func (s Span) EndDetail(detail string) {
	if s.k == nil {
		return
	}
	s.k.mu.Lock()
	defer s.k.mu.Unlock()
	ev := s.k.eventAt(s.seq)
	if ev == nil {
		return // evicted from the ring before the span closed
	}
	ev.Dur = s.k.now() - ev.Start
	if detail != "" {
		ev.Detail = detail
	}
}

// eventAt returns the live event holding sequence number seq, or nil if
// the ring has evicted it; k.mu must be held.
func (k *Track) eventAt(seq uint64) *Event {
	if k.depth > 0 {
		slot := int(seq % uint64(k.depth))
		if seq >= k.seq || k.seqs[slot] != seq {
			return nil
		}
		return &k.events[slot]
	}
	if seq >= uint64(len(k.events)) {
		return nil
	}
	return &k.events[seq]
}
