package device

import (
	"fmt"
	"strings"

	"github.com/ghost-installer/gia/internal/vfs"
)

// systemFS is the access policy for internal storage (/data, /system).
// It models why the paper calls internal storage "the secure option":
//
//   - system processes may do anything;
//   - an app may create, modify and delete files only inside its own
//     /data/data/<pkg> subtree (identified by the subtree root's owner);
//   - everything else is read-only, and reads of files in another app's
//     private directory additionally require the world-readable bit — the
//     bit installers must set on internally staged APKs.
type systemFS struct{}

var _ vfs.Policy = systemFS{}

func (systemFS) Check(fs *vfs.FS, req vfs.Request) error {
	if req.Actor.IsSystem() {
		return nil
	}
	if ownsAppDir(fs, req.Path, req.Actor) {
		if req.Op == vfs.OpRename && !ownsAppDir(fs, req.Other, req.Actor) {
			return fmt.Errorf("systemfs: rename %s to %s: %w", req.Path, req.Other, vfs.ErrPermission)
		}
		return nil
	}
	if req.Op == vfs.OpRead && req.Info != nil && req.Info.Mode.WorldReadable() {
		return nil
	}
	return fmt.Errorf("systemfs: %s %s by uid %d: %w", req.Op, req.Path, req.Actor, vfs.ErrPermission)
}

func (systemFS) DeriveMode(fs *vfs.FS, path string, actor vfs.UID, requested vfs.Mode) vfs.Mode {
	return requested
}

// ownsAppDir reports whether path lies inside an app-private directory
// (/data/data/<pkg>/...) whose root is owned by actor.
func ownsAppDir(fs *vfs.FS, path string, actor vfs.UID) bool {
	rest, ok := strings.CutPrefix(path, "/data/data/")
	if !ok {
		return false
	}
	pkg, _, _ := strings.Cut(rest, "/")
	if pkg == "" {
		return false
	}
	info, err := fs.Stat("/data/data/" + pkg)
	if err != nil {
		return false
	}
	return info.Owner == actor
}
