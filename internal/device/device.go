// Package device composes the substrates into a bootable simulated Android
// device: virtual clock, filesystem with internal storage and a FUSE-wrapped
// SD card, PackageManagerService, PackageInstallerActivity, Download
// Manager, ActivityManagerService with IntentFirewall, process table and a
// connection to remote app markets.
package device

import (
	"fmt"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/fuse"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/market"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/pia"
	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/procfs"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/vfs"
)

// Profile describes the device to boot.
type Profile struct {
	Name   string // e.g. "galaxy-s6-verizon"
	Vendor string // e.g. "samsung"
	// PlatformKey signs the system image. Defaults to a vendor-derived key.
	PlatformKey *sig.Key
	// InternalBytes caps /data (0 = unlimited); SDCardBytes caps /sdcard.
	InternalBytes int64
	SDCardBytes   int64
	// RuntimePermissions selects the Android 6.0 permission model.
	RuntimePermissions bool
	// DMPolicy selects the Download Manager symlink policy
	// (default PolicyLegacy, the 4.4 behaviour).
	DMPolicy dm.SymlinkPolicy
	// DMRecheckGap overrides the 6.0 policy's check-to-use gap (for the
	// ablation experiments; zero keeps the default).
	DMRecheckGap time.Duration
	// Seed drives all randomness for the device's scheduler.
	Seed int64
}

// Device is one booted simulated phone.
type Device struct {
	Profile Profile
	Sched   *sim.Scheduler
	FS      *vfs.FS
	Fuse    *fuse.Daemon
	PMS     *pm.Service
	PIA     *pia.Activity
	DM      *dm.Manager
	AMS     *intents.AMS
	Procs   *procfs.Table
	Market  *market.Mux

	foregroundSvc map[string]bool
	// fpCheck revalidates event footprints at dispatch time for the chaos
	// explorer's partial-order reduction (sim.SetFootprintCheck). Built once
	// at Boot and reinstalled by Reset, since Scheduler.Reset clears hooks.
	fpCheck sim.FootprintCheck
	// dataDirs caches the per-package app-private directory paths. It
	// deliberately survives Reset: the strings depend only on the package
	// name, and sweeps install the same packages every schedule.
	dataDirs map[string][3]string
}

// dataDirsFor returns the app-private tree for pkg (root, cache, files),
// building the path strings once per package name per device.
func (d *Device) dataDirsFor(pkg string) [3]string {
	if dirs, ok := d.dataDirs[pkg]; ok {
		return dirs
	}
	root := "/data/data/" + pkg
	dirs := [3]string{root, root + "/cache", root + "/files"}
	if d.dataDirs == nil {
		d.dataDirs = make(map[string][3]string)
	}
	if len(d.dataDirs) < 1024 {
		d.dataDirs[pkg] = dirs
	}
	return dirs
}

// Boot constructs and wires a device from a profile.
func Boot(p Profile) (*Device, error) {
	if p.PlatformKey == nil {
		vendor := p.Vendor
		if vendor == "" {
			vendor = "aosp"
		}
		p.PlatformKey = sig.NewKey(vendor + "-platform")
	}
	if p.DMPolicy == 0 {
		p.DMPolicy = dm.PolicyLegacy
	}
	sched := sim.New(p.Seed)
	fs := vfs.New(sched.Now)
	if err := prepareSkeleton(fs); err != nil {
		return nil, err
	}

	registry := perm.NewRegistry()
	pms := pm.New(fs, registry, pm.Options{
		PlatformKey:        p.PlatformKey,
		RuntimePermissions: p.RuntimePermissions,
		Now:                sched.Now,
	})

	fuseDaemon := fuse.New("/sdcard", pms.UIDHolds)
	fuseDaemon.SetClock(sched.Now)
	if err := fs.Mount("/sdcard", fuseDaemon, p.SDCardBytes); err != nil {
		return nil, fmt.Errorf("device: mount sdcard: %w", err)
	}
	if err := fs.Mount("/data", systemFS{}, p.InternalBytes); err != nil {
		return nil, fmt.Errorf("device: mount data: %w", err)
	}
	if err := fs.Mount("/system", systemFS{}, 0); err != nil {
		return nil, fmt.Errorf("device: mount system: %w", err)
	}

	mux := market.NewMux()
	dmgr, err := dm.New(fs, sched, mux, dm.Options{Policy: p.DMPolicy, RecheckGap: p.DMRecheckGap})
	if err != nil {
		return nil, fmt.Errorf("device: boot dm: %w", err)
	}

	procs := procfs.NewTable()
	d := &Device{
		Profile: p,
		Sched:   sched,
		FS:      fs,
		Fuse:    fuseDaemon,
		PMS:     pms,
		DM:      dmgr,
		Procs:   procs,
		Market:  mux,
	}
	d.AMS = intents.New(sched, procs, intents.Options{
		Perms: pms.UIDHolds,
		UIDOf: func(pkg string) (vfs.UID, bool) {
			if pkg == SystemSender {
				return vfs.System, true
			}
			if installed, ok := pms.Installed(pkg); ok {
				return installed.UID, true
			}
			return 0, false
		},
		IsSystemPkg: d.IsSystemPkg,
	})
	d.PIA = pia.New(fs, pms)

	pms.Subscribe(d.onPackageEvent)
	// FootVFS footprints promise a write confined to one directory; whether
	// that still holds when the event fires (no watcher appeared, no vfs
	// write fault armed, no capacity-limited mount in reach) only the
	// filesystem knows. Other kinds carry their whole claim statically.
	d.fpCheck = func(fp sim.Footprint) bool {
		if fp.Kind == sim.FootVFS {
			return fs.WriteQuiet(fp.Key)
		}
		return true
	}
	sched.SetFootprintCheck(d.fpCheck)
	// Everything the boot wiring has created so far — the skeleton, the
	// DM's database directory — is factory image: stamp it so Reset keeps
	// those directories in place instead of rebuilding them per run.
	fs.MarkBaseline()
	return d, nil
}

// prepareSkeleton creates the factory directory layout shared by Boot and
// Reset.
func prepareSkeleton(fs *vfs.FS) error {
	for _, dir := range []string{"/data/app", "/data/data", "/sdcard/Download", "/system/app"} {
		if err := fs.MkdirAll(dir, vfs.Root, vfs.ModeDir); err != nil {
			return fmt.Errorf("device: prepare %s: %w", dir, err)
		}
	}
	return nil
}

// Reset returns the device to the state Boot leaves it in, under a new
// seed, without reconstructing any component: every service is cleared in
// place and the boot wiring (mounts, package-event subscription, factory
// directories) is re-established. It is the arena's fast path; the
// devicetest harness pins Reset ≡ Boot across attack/defense scenarios.
func (d *Device) Reset(seed int64) error {
	d.Profile.Seed = seed
	d.Sched.Reset(seed)
	d.FS.Reset()
	if err := prepareSkeleton(d.FS); err != nil {
		return err
	}
	d.PMS.Registry().Reset()
	d.PMS.Reset()
	d.Fuse.Reset()
	d.Market.Reset()
	if err := d.DM.Reset(dm.Options{Policy: d.Profile.DMPolicy, RecheckGap: d.Profile.DMRecheckGap}); err != nil {
		return fmt.Errorf("device: reset dm: %w", err)
	}
	d.Procs.Reset()
	d.AMS.Reset()
	d.foregroundSvc = nil
	// PIA is stateless beyond its fs/pms references; nothing to clear.
	d.PMS.Subscribe(d.onPackageEvent)
	d.Sched.SetFootprintCheck(d.fpCheck)
	return nil
}

// SystemSender is the package name used for OS-originated Intents.
const SystemSender = "android"

// onPackageEvent wires PMS state changes into the rest of the device:
// app-private directories, process registration and the PACKAGE_* system
// broadcasts that apps (including the DAPP defense) listen for.
func (d *Device) onPackageEvent(ev pm.Event) {
	switch ev.Action {
	case pm.ActionPackageAdded, pm.ActionPackageReplaced:
		dirs := d.dataDirsFor(ev.Package)
		if !d.FS.Exists(dirs[0]) {
			// The system creates the app-private tree and hands it to
			// the app's UID (installd's job on a real device).
			for _, dir := range dirs {
				_ = d.FS.MkdirAll(dir, vfs.System, vfs.ModeDir)
				_ = d.FS.Chown(dir, ev.UID, vfs.System)
			}
		}
		d.Procs.Register(ev.Package)
	case pm.ActionPackageRemoved:
		d.AMS.UnregisterPackage(ev.Package)
		_ = d.FS.RemoveAll("/data/data/"+ev.Package, vfs.System)
	}
	// Skip the broadcast outright when nobody subscribes to this action:
	// every install fires one, and the Extras map plus delivery machinery
	// are pure overhead in the (common) receiver-less sweep schedules.
	if !d.AMS.HasReceiver(ev.Action) {
		return
	}
	_, _ = d.AMS.SendBroadcast(SystemSender, intents.Intent{
		Action:    ev.Action,
		Extras:    map[string]string{"package": ev.Package},
		TargetPkg: "", // all interested receivers
	})
}

// IsSystemPkg reports whether pkg is a system app: pre-installed or signed
// with the device's platform key. The OS itself also qualifies.
func (d *Device) IsSystemPkg(pkg string) bool {
	if pkg == SystemSender {
		return true
	}
	p, ok := d.PMS.Installed(pkg)
	if !ok {
		return false
	}
	return p.SystemImage || p.Cert.Equal(d.PMS.PlatformCert())
}

// InstallSystemApp installs an APK as part of the factory image.
func (d *Device) InstallSystemApp(a *apk.APK) (*pm.Package, error) {
	p, err := d.PMS.InstallSystem(a)
	if err != nil {
		return nil, err
	}
	// Keep a copy under /system/app like a real image.
	path := "/system/app/" + p.Name() + ".apk"
	if err := d.FS.WriteFileShared(path, a.Encode(), vfs.Root, vfs.ModeWorldReadable); err != nil {
		return nil, fmt.Errorf("device: copy system apk: %w", err)
	}
	p.CodePath = path
	return p, nil
}

// UIDOf returns the UID of an installed package.
func (d *Device) UIDOf(pkg string) (vfs.UID, error) {
	p, ok := d.PMS.Installed(pkg)
	if !ok {
		return 0, fmt.Errorf("device: %s: %w", pkg, pm.ErrNotInstalled)
	}
	return p.UID, nil
}

// Foreground brings pkg's process to the foreground (the user opens the
// app). The package must be installed.
func (d *Device) Foreground(pkg string) error {
	if _, ok := d.PMS.Installed(pkg); !ok {
		return fmt.Errorf("device: %s: %w", pkg, pm.ErrNotInstalled)
	}
	d.Procs.Register(pkg)
	return d.Procs.SetForeground(pkg)
}

// Run drains the event queue (convenience passthrough).
func (d *Device) Run() { d.Sched.Run() }

// Snapshot is a structured view of device state for diagnostics and
// assertions.
type Snapshot struct {
	Packages     []PackageInfo
	SDCardUsed   int64
	InternalUsed int64
	DMHealthy    bool
	Foreground   string
}

// PackageInfo summarizes one installed package.
type PackageInfo struct {
	Name        string
	UID         vfs.UID
	VersionCode int
	Signer      string
	SystemImage bool
	Granted     []string
}

// Snapshot captures the device's current state.
func (d *Device) Snapshot() Snapshot {
	var s Snapshot
	for _, p := range d.PMS.Packages() {
		s.Packages = append(s.Packages, PackageInfo{
			Name:        p.Name(),
			UID:         p.UID,
			VersionCode: p.Manifest.VersionCode,
			Signer:      p.Cert.Subject,
			SystemImage: p.SystemImage,
			Granted:     p.GrantedPerms(),
		})
	}
	s.SDCardUsed, _, _ = d.FS.MountUsage("/sdcard")
	s.InternalUsed, _, _ = d.FS.MountUsage("/data")
	s.DMHealthy = d.DM.Healthy()
	s.Foreground, _ = d.Procs.Foreground()
	return s
}

// StartForeground registers a foreground service for pkg, pinning a
// notification in the notification center. Foreground services survive
// KILL_BACKGROUND_PROCESSES — how DAPP protects itself (Section V-B).
func (d *Device) StartForeground(pkg string) {
	if d.foregroundSvc == nil {
		d.foregroundSvc = make(map[string]bool)
	}
	d.foregroundSvc[pkg] = true
}

// HasForegroundService reports whether pkg pinned a foreground service.
func (d *Device) HasForegroundService(pkg string) bool { return d.foregroundSvc[pkg] }

// KillBackground is the killBackgroundProcesses API: the caller must hold
// KILL_BACKGROUND_PROCESSES, and apps with a foreground service are immune.
// It reports whether the target process died.
func (d *Device) KillBackground(caller vfs.UID, pkg string) (bool, error) {
	if !d.PMS.UIDHolds(caller, perm.KillBackgroundProcesses) {
		return false, fmt.Errorf("device: kill %s by uid %d: %w", pkg, caller, pm.ErrPermissionDenied)
	}
	if d.foregroundSvc[pkg] {
		return false, nil
	}
	d.Procs.Unregister(pkg)
	return true, nil
}
