package device

import (
	"errors"
	"testing"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

func TestForegroundServiceProtectsFromKill(t *testing.T) {
	d := bootTestDevice(t)
	// A killer with the permission and a victim without protection.
	killer, err := d.PMS.InstallFromParsed(apk.Build(apk.Manifest{
		Package: "com.killer", VersionCode: 1, Label: "K",
		UsesPerms: []string{perm.KillBackgroundProcesses},
	}, nil, sig.NewKey("k")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PMS.InstallFromParsed(apk.Build(apk.Manifest{
		Package: "com.victim", VersionCode: 1, Label: "V",
	}, nil, sig.NewKey("v"))); err != nil {
		t.Fatal(err)
	}
	d.Run()

	if d.HasForegroundService("com.victim") {
		t.Fatal("fresh app has a foreground service")
	}
	died, err := d.KillBackground(killer.UID, "com.victim")
	if err != nil || !died {
		t.Fatalf("kill = %v, %v", died, err)
	}

	// With a foreground service the app survives.
	if _, err := d.PMS.InstallFromParsed(apk.Build(apk.Manifest{
		Package: "com.protected", VersionCode: 1, Label: "P",
	}, nil, sig.NewKey("p"))); err != nil {
		t.Fatal(err)
	}
	d.Run()
	d.StartForeground("com.protected")
	if !d.HasForegroundService("com.protected") {
		t.Fatal("foreground service not registered")
	}
	died, err = d.KillBackground(killer.UID, "com.protected")
	if err != nil || died {
		t.Fatalf("protected kill = %v, %v", died, err)
	}

	// Without the permission, the call is rejected.
	victim, _ := d.PMS.Installed("com.protected")
	if _, err := d.KillBackground(victim.UID, "com.killer"); !errors.Is(err, pm.ErrPermissionDenied) {
		t.Errorf("unprivileged kill = %v", err)
	}
}

func TestSystemSenderResolvesInAMS(t *testing.T) {
	d := bootTestDevice(t)
	var origin string
	d.AMS.Firewall().EnableOrigin(true)
	d.AMS.RegisterActivity("com.app", "A", true, "", func(in intents.Intent) string {
		origin, _ = in.Origin()
		return "a"
	})
	if err := d.AMS.StartActivity(SystemSender, intents.Intent{TargetPkg: "com.app", Component: "A"}); err != nil {
		t.Fatal(err)
	}
	d.Run()
	if origin != SystemSender {
		t.Errorf("origin = %q", origin)
	}
}

func TestSystemFSProtectsForeignAppData(t *testing.T) {
	d := bootTestDevice(t)
	owner, err := d.PMS.InstallFromParsed(apk.Build(apk.Manifest{
		Package: "com.owner", VersionCode: 1, Label: "O",
	}, nil, sig.NewKey("o")))
	if err != nil {
		t.Fatal(err)
	}
	intruder, err := d.PMS.InstallFromParsed(apk.Build(apk.Manifest{
		Package: "com.intruder", VersionCode: 1, Label: "I",
	}, nil, sig.NewKey("i")))
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	// Owner works inside its own tree, including renames.
	if err := d.FS.WriteFile("/data/data/com.owner/files/f", []byte("x"), owner.UID, vfs.ModePrivate); err != nil {
		t.Fatal(err)
	}
	if err := d.FS.Rename("/data/data/com.owner/files/f", "/data/data/com.owner/files/g", owner.UID); err != nil {
		t.Fatal(err)
	}
	// Intruder cannot create, read private files, or rename out.
	if err := d.FS.WriteFile("/data/data/com.owner/files/evil", []byte("x"), intruder.UID, vfs.ModeShared); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("foreign create = %v", err)
	}
	if _, err := d.FS.ReadFile("/data/data/com.owner/files/g", intruder.UID); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("foreign private read = %v", err)
	}
	if err := d.FS.Rename("/data/data/com.owner/files/g", "/data/data/com.intruder/files/g", owner.UID); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("rename across app dirs = %v", err)
	}
	// World-readable files in a foreign dir are readable (the staged-APK
	// pattern), but still not writable.
	if err := d.FS.WriteFile("/data/data/com.owner/files/pub", []byte("x"), owner.UID, vfs.ModeWorldReadable); err != nil {
		t.Fatal(err)
	}
	if _, err := d.FS.ReadFile("/data/data/com.owner/files/pub", intruder.UID); err != nil {
		t.Errorf("foreign world-readable read = %v", err)
	}
	if err := d.FS.WriteFile("/data/data/com.owner/files/pub", []byte("y"), intruder.UID, 0); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("foreign world-readable write = %v", err)
	}
	// And /system is read-only for apps.
	if err := d.FS.WriteFile("/system/app/evil.apk", []byte("x"), intruder.UID, vfs.ModeShared); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("write to /system = %v", err)
	}
}

func TestSnapshot(t *testing.T) {
	d := bootTestDevice(t)
	p, err := d.PMS.InstallFromParsed(apk.Build(apk.Manifest{
		Package: "com.app", VersionCode: 3, Label: "A",
		UsesPerms: []string{perm.Internet},
	}, nil, sig.NewKey("app-dev")))
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	if err := d.Foreground("com.app"); err != nil {
		t.Fatal(err)
	}
	if err := d.FS.WriteFile("/sdcard/x", []byte("12345"), vfs.System, 0); err != nil {
		t.Fatal(err)
	}

	s := d.Snapshot()
	if len(s.Packages) != 1 {
		t.Fatalf("packages = %+v", s.Packages)
	}
	info := s.Packages[0]
	if info.Name != "com.app" || info.UID != p.UID || info.VersionCode != 3 ||
		info.Signer != "app-dev" || info.SystemImage {
		t.Errorf("package info = %+v", info)
	}
	if len(info.Granted) != 1 || info.Granted[0] != perm.Internet {
		t.Errorf("granted = %v", info.Granted)
	}
	if s.SDCardUsed != 5 {
		t.Errorf("sdcard used = %d", s.SDCardUsed)
	}
	if s.InternalUsed == 0 {
		t.Error("internal used = 0 despite app data dirs")
	}
	if !s.DMHealthy || s.Foreground != "com.app" {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestUIDOfMissingPackage(t *testing.T) {
	d := bootTestDevice(t)
	if _, err := d.UIDOf("com.none"); !errors.Is(err, pm.ErrNotInstalled) {
		t.Errorf("UIDOf missing = %v", err)
	}
}
