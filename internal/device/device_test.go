package device

import (
	"errors"
	"testing"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

func bootTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := Boot(Profile{Name: "test-device", Vendor: "samsung", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func installerAPK(key *sig.Key) *apk.APK {
	return apk.Build(apk.Manifest{
		Package: "com.vendor.store", VersionCode: 1, Label: "Store",
		UsesPerms: []string{perm.InstallPackages, perm.WriteExternalStorage, perm.ReadExternalStorage},
	}, nil, key)
}

func TestBootLayout(t *testing.T) {
	d := bootTestDevice(t)
	for _, dir := range []string{"/data/app", "/data/data", "/sdcard/Download", "/system/app"} {
		if !d.FS.Exists(dir) {
			t.Errorf("missing %s", dir)
		}
	}
	if d.Fuse.Root() != "/sdcard" {
		t.Errorf("fuse root = %q", d.Fuse.Root())
	}
	if !d.DM.Healthy() {
		t.Error("DM unhealthy after boot")
	}
}

func TestInstallSystemAppWiring(t *testing.T) {
	d := bootTestDevice(t)
	p, err := d.InstallSystemApp(installerAPK(d.Profile.PlatformKey))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Granted(perm.InstallPackages) {
		t.Error("system app lacks INSTALL_PACKAGES")
	}
	// Data dirs created, proc registered, /system/app copy exists.
	for _, path := range []string{
		"/data/data/com.vendor.store/files",
		"/data/data/com.vendor.store/cache",
		"/system/app/com.vendor.store.apk",
	} {
		if !d.FS.Exists(path) {
			t.Errorf("missing %s", path)
		}
	}
	if _, err := d.Procs.PIDOf("com.vendor.store"); err != nil {
		t.Errorf("process not registered: %v", err)
	}
	if uid, err := d.UIDOf("com.vendor.store"); err != nil || uid != p.UID {
		t.Errorf("UIDOf = %d, %v", uid, err)
	}
	if !d.IsSystemPkg("com.vendor.store") {
		t.Error("system app not recognized as system")
	}
	if d.IsSystemPkg("com.random") {
		t.Error("unknown package recognized as system")
	}
	if !d.IsSystemPkg(SystemSender) {
		t.Error("android sender not system")
	}
}

func TestPackageAddedBroadcastReachesReceivers(t *testing.T) {
	d := bootTestDevice(t)
	var added []string
	d.AMS.RegisterReceiver("com.dapp", "Watcher", pm.ActionPackageAdded, true, "", func(in intents.Intent) {
		added = append(added, in.Extra("package"))
	})
	if _, err := d.InstallSystemApp(installerAPK(d.Profile.PlatformKey)); err != nil {
		t.Fatal(err)
	}
	d.Run()
	if len(added) != 1 || added[0] != "com.vendor.store" {
		t.Errorf("added = %v", added)
	}
}

func TestUninstallCleansUp(t *testing.T) {
	d := bootTestDevice(t)
	if _, err := d.InstallSystemApp(installerAPK(d.Profile.PlatformKey)); err != nil {
		t.Fatal(err)
	}
	d.AMS.RegisterActivity("com.vendor.store", "Main", true, "", func(intents.Intent) string { return "" })
	if err := d.PMS.Uninstall(vfs.System, "com.vendor.store"); err != nil {
		t.Fatal(err)
	}
	d.Run()
	if d.FS.Exists("/data/data/com.vendor.store") {
		t.Error("data dir survives uninstall")
	}
	if err := d.AMS.StartActivity("com.x", intents.Intent{TargetPkg: "com.vendor.store", Component: "Main"}); !errors.Is(err, intents.ErrNoSuchComponent) {
		t.Errorf("activity survives uninstall: %v", err)
	}
}

func TestForeground(t *testing.T) {
	d := bootTestDevice(t)
	if err := d.Foreground("com.none"); !errors.Is(err, pm.ErrNotInstalled) {
		t.Errorf("foreground of missing pkg = %v", err)
	}
	if _, err := d.InstallSystemApp(installerAPK(d.Profile.PlatformKey)); err != nil {
		t.Fatal(err)
	}
	if err := d.Foreground("com.vendor.store"); err != nil {
		t.Fatal(err)
	}
	if fg, ok := d.Procs.Foreground(); !ok || fg != "com.vendor.store" {
		t.Errorf("foreground = %q, %v", fg, ok)
	}
}

func TestLowEndDeviceCapacity(t *testing.T) {
	d, err := Boot(Profile{Name: "galaxy-j5", Vendor: "samsung", InternalBytes: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// An APK bigger than the remaining internal space cannot be staged
	// internally — the economic reason stores pick the SD card.
	big := apk.Build(apk.Manifest{Package: "com.big", VersionCode: 1, Label: "Big"}, nil, sig.NewKey("d"))
	big.Padding = 2048
	err = d.FS.WriteFile("/data/data/stage.apk", big.Encode(), vfs.System, vfs.ModeWorldReadable)
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Errorf("internal staging = %v, want ErrNoSpace", err)
	}
	// The SD card (uncapped here) takes it fine.
	if err := d.FS.WriteFile("/sdcard/stage.apk", big.Encode(), vfs.System, 0); err != nil {
		t.Errorf("sdcard staging: %v", err)
	}
}

func TestFuseWiredToPMSGrants(t *testing.T) {
	d := bootTestDevice(t)
	// An app without WRITE_EXTERNAL_STORAGE cannot write to /sdcard.
	noPerm := apk.Build(apk.Manifest{Package: "com.noperm", VersionCode: 1, Label: "N"}, nil, sig.NewKey("n"))
	p, err := d.InstallSystemApp(noPerm)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FS.WriteFile("/sdcard/x", []byte("x"), p.UID, 0); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("write without storage perm = %v", err)
	}
	// With the permission it works.
	withPerm := apk.Build(apk.Manifest{
		Package: "com.hasperm", VersionCode: 1, Label: "H",
		UsesPerms: []string{perm.WriteExternalStorage},
	}, nil, sig.NewKey("h"))
	p2, err := d.InstallSystemApp(withPerm)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FS.WriteFile("/sdcard/y", []byte("y"), p2.UID, 0); err != nil {
		t.Errorf("write with storage perm: %v", err)
	}
}
