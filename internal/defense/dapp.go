// Package defense implements the paper's protections against Ghost
// Installer Attacks. The system-level defenses live with the subsystems
// they patch (the FUSE daemon's DAC scheme in internal/fuse, the
// IntentFirewall detection and origin schemes in internal/intents); this
// package provides *DAPP*, the user-level protection app of Section V-B,
// plus helpers to switch whole defense configurations on and off.
package defense

import (
	"fmt"
	"strings"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/fileobserver"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

// AlertKind classifies a DAPP detection.
type AlertKind int

// Detection kinds.
const (
	// SignatureMismatch: the package installed by the PMS does not carry
	// the signature grabbed when its APK finished downloading.
	SignatureMismatch AlertKind = iota + 1
	// RaceSuspected: a write, move or delete touched a staged APK
	// shortly after its download completed and before installation.
	RaceSuspected
)

func (k AlertKind) String() string {
	switch k {
	case SignatureMismatch:
		return "signature-mismatch"
	case RaceSuspected:
		return "race-suspected"
	default:
		return fmt.Sprintf("alert(%d)", int(k))
	}
}

// Alert is one DAPP detection event.
type Alert struct {
	Kind    AlertKind
	Package string
	Path    string
	At      time.Duration
	Detail  string
}

// DAPPPackage is the defense app's package name.
const DAPPPackage = "org.gia.dapp"

// record is the signature grabbed for one staged APK.
type record struct {
	pkg          string
	cert         sig.Certificate
	downloadedAt time.Duration
	tampered     bool
}

// DAPP is the user-level defense app: an unprivileged app distributed
// through an ordinary store, running a foreground service, watching staged
// APKs with FileObserver and verifying signatures at PACKAGE_ADDED time.
type DAPP struct {
	dev  *device.Device
	pkg  *pm.Package
	obs  []*fileobserver.Observer
	recs map[string]*record // staged path -> signature record

	// SuspicionWindow bounds "shortly after download completion" for the
	// race heuristics.
	SuspicionWindow time.Duration

	alerts  []Alert
	onAlert func(Alert)
}

// Deploy installs DAPP and arms it over the given staging directories
// (typically every store staging dir on the SD card).
func Deploy(dev *device.Device, watchDirs []string) (*DAPP, error) {
	image := apk.Build(apk.Manifest{
		Package: DAPPPackage, VersionCode: 1, Label: "DAPP",
		UsesPerms: []string{perm.ReadExternalStorage, perm.WriteExternalStorage},
	}, map[string][]byte{"classes.dex": []byte("dapp")}, sig.NewKey("gia-project"))
	pkg, err := dev.PMS.InstallFromParsed(image)
	if err != nil {
		return nil, fmt.Errorf("defense: install dapp: %w", err)
	}
	d := &DAPP{
		dev:             dev,
		pkg:             pkg,
		recs:            make(map[string]*record),
		SuspicionWindow: 30 * time.Second,
	}
	// startForeground keeps DAPP alive against
	// KILL_BACKGROUND_PROCESSES-armed malware.
	dev.StartForeground(DAPPPackage)
	dev.AMS.RegisterReceiver(DAPPPackage, "InstallWatcher", pm.ActionPackageAdded, true, "", d.onPackageAdded)
	dev.AMS.RegisterReceiver(DAPPPackage, "ReplaceWatcher", pm.ActionPackageReplaced, true, "", d.onPackageAdded)
	for _, dir := range watchDirs {
		obs := fileobserver.New(dev.FS, dir, fileobserver.AllEvents, d.onFileEvent)
		if err := obs.StartWatching(); err != nil {
			return nil, fmt.Errorf("defense: watch %s: %w", dir, err)
		}
		d.obs = append(d.obs, obs)
	}
	return d, nil
}

// Stop disarms every observer.
func (d *DAPP) Stop() {
	for _, o := range d.obs {
		o.StopWatching()
	}
}

// OnAlert registers a notification callback.
func (d *DAPP) OnAlert(fn func(Alert)) { d.onAlert = fn }

// Alerts returns all detections so far.
func (d *DAPP) Alerts() []Alert { return append([]Alert(nil), d.alerts...) }

// ResetAlerts clears detection history between experiment runs.
func (d *DAPP) ResetAlerts() { d.alerts = nil }

// Thwarted reports whether any alert concerns pkg.
func (d *DAPP) Thwarted(pkg string) bool {
	for _, a := range d.alerts {
		if a.Package == pkg {
			return true
		}
	}
	return false
}

func (d *DAPP) alert(a Alert) {
	a.At = d.dev.Sched.Now()
	d.alerts = append(d.alerts, a)
	if d.onAlert != nil {
		d.onAlert(a)
	}
}

// onFileEvent is the situation-awareness module: grab signatures at
// download completion and flag the race patterns of Section V-B —
// MOVED_TO over a staged APK, DELETE right after the download, or a second
// CLOSE_WRITE shortly after completion.
func (d *DAPP) onFileEvent(ev fileobserver.Event) {
	if ev.Actor == d.pkg.UID {
		return
	}
	if !strings.HasSuffix(ev.Name, ".apk") && !strings.HasSuffix(ev.Name, ".bin") &&
		!strings.HasSuffix(ev.Name, ".part") {
		// Non-package files are out of scope.
		if _, tracked := d.recs[ev.Path]; !tracked {
			return
		}
	}
	now := d.dev.Sched.Now()
	rec := d.recs[ev.Path]
	fresh := rec != nil && now-rec.downloadedAt < d.SuspicionWindow

	switch ev.Mask {
	case fileobserver.CloseWrite, fileobserver.MovedTo:
		if fresh {
			// Any rewrite or move-over shortly after completion is a
			// replacement attempt.
			rec.tampered = true
			d.alert(Alert{
				Kind: RaceSuspected, Package: rec.pkg, Path: ev.Path,
				Detail: fmt.Sprintf("%s on staged apk %v after download", fileobserver.MaskName(ev.Mask), now-rec.downloadedAt),
			})
			return
		}
		d.grabSignature(ev.Path)
	case fileobserver.Delete:
		if fresh {
			rec.tampered = true
			d.alert(Alert{
				Kind: RaceSuspected, Package: rec.pkg, Path: ev.Path,
				Detail: "staged apk deleted right after download",
			})
		}
	}
}

// grabSignature reads the finished APK and records its signer — the moment
// matters: DAPP reads at CLOSE_WRITE, before any attacker waiting for the
// verification pass has struck.
func (d *DAPP) grabSignature(path string) {
	data, err := d.dev.FS.ReadFileShared(path, d.pkg.UID)
	if err != nil {
		return // internal staging or unreadable: out of DAPP's reach
	}
	parsed, err := apk.Decode(data)
	if err != nil {
		return // partial or non-APK content
	}
	d.recs[path] = &record{
		pkg:          parsed.Manifest.Package,
		cert:         parsed.Cert(),
		downloadedAt: d.dev.Sched.Now(),
	}
}

// onPackageAdded compares the installed package's certificate against the
// signature grabbed at download time.
func (d *DAPP) onPackageAdded(in intents.Intent) {
	pkgName := in.Extra("package")
	installed, ok := d.dev.PMS.Installed(pkgName)
	if !ok {
		return
	}
	rec := d.latestRecordFor(pkgName)
	if rec == nil {
		return // not staged under a watched dir
	}
	if !rec.cert.Equal(installed.Cert) {
		d.alert(Alert{
			Kind: SignatureMismatch, Package: pkgName,
			Detail: fmt.Sprintf("downloaded signer %s, installed signer %s",
				rec.cert.Fingerprint.Short(), installed.Cert.Fingerprint.Short()),
		})
	}
}

// latestRecordFor finds the most recent record whose manifest names pkg.
func (d *DAPP) latestRecordFor(pkg string) *record {
	var best *record
	for _, rec := range d.recs {
		if rec.pkg != pkg {
			continue
		}
		if best == nil || rec.downloadedAt > best.downloadedAt {
			best = rec
		}
	}
	return best
}

// UID returns DAPP's UID.
func (d *DAPP) UID() vfs.UID { return d.pkg.UID }
