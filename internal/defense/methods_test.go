package defense

import (
	"testing"

	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/installer"
)

// TestDAPPDetectsEveryReplacementMethod exercises the three replacement
// tricks Section V-B enumerates — move-over, in-place rewrite, and
// delete-then-rewrite — and checks DAPP flags each of them both by its
// race heuristic and by the final signature comparison.
func TestDAPPDetectsEveryReplacementMethod(t *testing.T) {
	methods := []attack.ReplaceMethod{
		attack.MethodRename, attack.MethodOverwrite, attack.MethodDeleteRewrite,
	}
	for i, method := range methods {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			prof := installer.Amazon()
			f := newFixture(t, prof, 701+int64(i))
			cfg := attack.ConfigForStore(prof, attack.StrategyFileObserver)
			cfg.Method = method
			atk := attack.NewTOCTOU(f.mal, cfg, f.target)
			if err := atk.Launch(); err != nil {
				t.Fatal(err)
			}
			defer atk.Stop()

			res := f.runAIT(t)
			if !res.Hijacked {
				t.Fatalf("method %v did not hijack: %v", method, res.Err)
			}
			kinds := map[AlertKind]bool{}
			for _, a := range f.dapp.Alerts() {
				kinds[a.Kind] = true
			}
			if !kinds[RaceSuspected] {
				t.Errorf("method %v: no race alert; alerts = %v", method, f.dapp.Alerts())
			}
			if !kinds[SignatureMismatch] {
				t.Errorf("method %v: no signature alert; alerts = %v", method, f.dapp.Alerts())
			}
		})
	}
}

// TestPatchedFUSEBlocksEveryReplacementMethod confirms the system-level
// defense stops all three mechanics, not just the rename.
func TestPatchedFUSEBlocksEveryReplacementMethod(t *testing.T) {
	for i, method := range []attack.ReplaceMethod{
		attack.MethodRename, attack.MethodOverwrite, attack.MethodDeleteRewrite,
	} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			prof := installer.Amazon()
			f := newFixture(t, prof, 801+int64(i))
			f.dev.Fuse.SetPatched(true)
			cfg := attack.ConfigForStore(prof, attack.StrategyFileObserver)
			cfg.Method = method
			atk := attack.NewTOCTOU(f.mal, cfg, f.target)
			if err := atk.Launch(); err != nil {
				t.Fatal(err)
			}
			defer atk.Stop()

			res := f.runAIT(t)
			if !res.Clean() {
				t.Fatalf("method %v defeated the FUSE patch: hijacked=%v err=%v", method, res.Hijacked, res.Err)
			}
		})
	}
}
